// Package ctxsearch is the public façade of the context-based literature
// search library — a from-scratch reproduction of "Evaluating Different
// Ranking Functions for Context-Based Literature Search" (ICDE 2007).
//
// The library implements the paper's five tasks end to end:
//
//  1. assign papers to ontology-term contexts (text-based and pattern-based
//     context paper sets),
//  2. compute per-context prestige scores (citation-, text-, and
//     pattern-based score functions),
//  3. locate search contexts for a keyword query,
//  4. search within the selected contexts, and
//  5. rank results by R = w_p·prestige + w_m·text-match.
//
// A typical session:
//
//	sys, err := ctxsearch.NewSyntheticSystem(ctxsearch.DefaultConfig())
//	// or ctxsearch.NewSystem(yourOntology, yourCorpus, cfg)
//	cs := sys.BuildTextContextSet()
//	scores := sys.ScoreText(cs)
//	engine := sys.Engine(cs, scores)
//	results := engine.Search("regulation of rna synthesis", ctxsearch.SearchOptions{})
package ctxsearch

import (
	"fmt"
	"sync"

	"ctxsearch/internal/buildstats"
	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/par"
	"ctxsearch/internal/pattern"
	"ctxsearch/internal/prestige"
	"ctxsearch/internal/search"
	"ctxsearch/internal/vector"
)

// Re-exported types so callers outside this module can name everything the
// façade returns.
type (
	// Ontology is the context hierarchy (a GO-like is-a DAG).
	Ontology = ontology.Ontology
	// TermID identifies an ontology term.
	TermID = ontology.TermID
	// Term is one ontology term.
	Term = ontology.Term
	// Corpus is the paper collection.
	Corpus = corpus.Corpus
	// Paper is one full-text publication.
	Paper = corpus.Paper
	// PaperID identifies a paper.
	PaperID = corpus.PaperID
	// ContextSet is a paper-to-context assignment.
	ContextSet = contextset.ContextSet
	// Scores holds per-context per-paper prestige scores (the map/builder
	// form; freeze into a Matrix for the query path).
	Scores = prestige.Scores
	// Matrix is the frozen CSR form of Scores the query hot path and the v2
	// state file use.
	Matrix = prestige.Matrix
	// Scorer computes prestige scores for a context.
	Scorer = prestige.Scorer
	// Engine is the context-based search engine.
	Engine = search.Engine
	// SearchResult is one ranked search result.
	SearchResult = search.Result
	// SearchOptions configure a search invocation.
	SearchOptions = search.Options
	// ContextScore is one selected search context with its match score.
	ContextScore = search.ContextScore
	// Hit is one baseline keyword-search result.
	Hit = index.Hit
)

// Config assembles every knob of the pipeline.
type Config struct {
	// Synthetic-data parameters (used by NewSyntheticSystem).
	Seed          int64
	OntologyTerms int
	MaxDepth      int
	Papers        int

	// ContextSet configures both context paper set constructions.
	ContextSet contextset.Config
	// PageRank configures the citation-based score function.
	PageRank citegraph.PageRankOpts
	// TextWeights configures the text-based score function.
	TextWeights prestige.TextWeights
	// Pattern and Match configure the pattern-based score function.
	Pattern pattern.Config
	Match   pattern.MatchConfig
	// Relevancy combines prestige and matching at query time.
	Relevancy search.Weights
	// MinContextSize excludes small contexts from scoring, mirroring the
	// paper's ≤100-papers exclusion (scaled: the default is 0.15% of the
	// corpus with a floor of 5).
	MinContextSize int
	// TuneCorpus, when non-nil, adjusts the synthetic corpus generator's
	// configuration before generation (NewSyntheticSystem only) — e.g. to
	// sweep citation-structure knobs in ablations.
	TuneCorpus func(*corpus.GenConfig)
	// Workers bounds the parallelism of prestige scoring across contexts
	// (0 = GOMAXPROCS, 1 = serial). Results are identical at any setting;
	// per-context scoring is deterministic and independent.
	Workers int
	// BuildWorkers bounds the parallelism of the offline build — corpus
	// analysis, TF-IDF warming, inverted-index and positional-index
	// construction (0 = GOMAXPROCS, 1 = serial). The built structures are
	// bit-identical at any setting: papers are sharded into contiguous ID
	// ranges and per-shard results merge deterministically.
	BuildWorkers int
	// IndexBlockSize sets the inverted index's block-max granularity
	// (postings per block) backing the pruned top-k evaluator: 0 selects
	// index.DefaultBlockSize, a negative value disables block tables
	// entirely (global per-term bounds only — the pre-block evaluator).
	// Search results are bit-identical at every setting; only pruning
	// power, and with it query latency, changes.
	IndexBlockSize int
	// TopKWorkers sets the inverted index's default intra-query
	// parallelism for bounded top-k queries (see
	// index.Options.TopKWorkers): 0 or 1 keeps the evaluator serial, n > 1
	// budgets up to n range workers per query, admitted adaptively by
	// posting mass and GOMAXPROCS. Result pages are byte-identical at
	// every setting.
	TopKWorkers int
}

// DefaultConfig returns the experiments' configuration at a laptop-friendly
// scale (2,000 papers, 400 terms).
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		OntologyTerms:  400,
		MaxDepth:       9,
		Papers:         2000,
		ContextSet:     contextset.DefaultConfig(),
		PageRank:       citegraph.PageRankOpts{},
		TextWeights:    prestige.DefaultTextWeights(),
		Pattern:        pattern.DefaultConfig(),
		Match:          pattern.DefaultMatchConfig(),
		Relevancy:      search.DefaultWeights(),
		MinContextSize: -1, // -1 = derive from corpus size
	}
}

// indexBlockSize resolves IndexBlockSize to the value index.BuildWorkersBlock
// expects: the package default for 0, 0 (disabled) for negatives.
func (c *Config) indexBlockSize() int {
	switch {
	case c.IndexBlockSize < 0:
		return 0
	case c.IndexBlockSize == 0:
		return index.DefaultBlockSize
	}
	return c.IndexBlockSize
}

func (c *Config) minContextSize(corpusLen int) int {
	if c.MinContextSize >= 0 {
		return c.MinContextSize
	}
	m := corpusLen * 15 / 10000 // 0.15%, the paper's 100/72027 ratio
	if m < 5 {
		m = 5
	}
	return m
}

// BuildStats is the offline-build timing summary (re-exported from the
// internal buildstats package). Retrieve a system's with System.BuildStats.
type BuildStats = buildstats.Stats

// System bundles the analysed corpus, the ontology and every index the
// scorers need. Construct with NewSystem or NewSyntheticSystem.
type System struct {
	cfg      Config
	Ontology *Ontology
	Corpus   *Corpus

	analyzer *corpus.Analyzer
	index    *index.Index
	stats    *buildstats.Stats

	// posIndex is built eagerly by NewSystem; a frozen system (NewFrozenSystem)
	// leaves it nil and posOnce builds it on first use — serving plain vector
	// queries from a mapped state never pays for positional postings.
	posOnce  sync.Once
	posIndex *pattern.PosIndex

	// Scorers are cached: the citation and text scorers embed the corpus
	// citation graph and co-author index, which are expensive to extract and
	// immutable — callers (and the experiments harness) share one instance.
	citationOnce sync.Once
	citation     *prestige.CitationScorer
	textOnce     sync.Once
	text         *prestige.TextScorer
	patternOnce  sync.Once
	pattern      *prestige.PatternScorer
}

// NewSystem analyses a user-provided ontology and corpus, fanning the build
// out to Config.BuildWorkers workers (0 = GOMAXPROCS). The built indexes
// are bit-identical at every worker count; timing lands in BuildStats.
func NewSystem(o *Ontology, c *Corpus, cfg Config) (*System, error) {
	if o == nil || o.Len() == 0 {
		return nil, fmt.Errorf("ctxsearch: ontology is empty")
	}
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("ctxsearch: corpus is empty")
	}
	workers := cfg.BuildWorkers
	st := buildstats.New(par.Workers(c.Len(), workers))
	s := &System{cfg: cfg, Ontology: o, Corpus: c, stats: st}
	st.Time("analyze", c.Len(), "papers", func() {
		s.analyzer = corpus.NewAnalyzerWorkers(c, workers)
	})
	st.Time("tfidf-warm", c.Len(), "papers", func() {
		s.analyzer.Warm(workers)
	})
	st.Time("index", c.Len(), "papers", func() {
		s.index = index.BuildWorkersBlock(s.analyzer, workers, cfg.indexBlockSize())
		s.index.SetDefaultTopKWorkers(cfg.TopKWorkers)
	})
	st.Time("posindex", c.Len(), "papers", func() {
		s.posIndex = pattern.NewPosIndexWorkers(s.analyzer, workers)
	})
	return s, nil
}

// NewFrozenSystem binds a system to pre-built text-index postings and a
// document-frequency table — the artefacts a v4 state file carries — so
// boot skips every per-paper analysis stage of NewSystem. The analyzer is
// frozen (per-paper features are recomputed lazily only for endpoints that
// render them, bit-identically to the eager build), the inverted index
// binds the borrowed CSR arrays in O(terms), and the positional index is
// built only if a pattern-based stage asks for it. Query results are
// byte-identical to a NewSystem over the same corpus.
func NewFrozenSystem(o *Ontology, c *Corpus, parts *index.Parts, df *vector.DF, cfg Config) (*System, error) {
	if o == nil || o.Len() == 0 {
		return nil, fmt.Errorf("ctxsearch: ontology is empty")
	}
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("ctxsearch: corpus is empty")
	}
	if parts == nil || df == nil {
		return nil, fmt.Errorf("ctxsearch: frozen system needs index parts and a DF table")
	}
	st := buildstats.New(par.Workers(c.Len(), cfg.BuildWorkers))
	s := &System{cfg: cfg, Ontology: o, Corpus: c, stats: st}
	var err error
	st.Time("bind-index", len(parts.Terms), "terms", func() {
		s.analyzer = corpus.NewAnalyzerFrozen(c, df)
		s.index, err = index.FromParts(s.analyzer, parts)
	})
	if err != nil {
		return nil, fmt.Errorf("ctxsearch: binding index: %w", err)
	}
	s.index.SetDefaultTopKWorkers(cfg.TopKWorkers)
	return s, nil
}

// NewSyntheticSystem generates a deterministic synthetic ontology + corpus
// at the configured scale and analyses them — the substitution for the
// paper's 72k PubMed papers and the Gene Ontology.
func NewSyntheticSystem(cfg Config) (*System, error) {
	o, err := ontology.Generate(ontology.GenConfig{
		Seed:             cfg.Seed,
		NumTerms:         cfg.OntologyTerms,
		MaxDepth:         cfg.MaxDepth,
		SecondParentProb: 0.12,
	})
	if err != nil {
		return nil, fmt.Errorf("ctxsearch: generating ontology: %w", err)
	}
	gen := corpus.DefaultGenConfig(cfg.Papers)
	gen.Seed = cfg.Seed
	if cfg.TuneCorpus != nil {
		cfg.TuneCorpus(&gen)
	}
	c, err := corpus.Generate(o, gen)
	if err != nil {
		return nil, fmt.Errorf("ctxsearch: generating corpus: %w", err)
	}
	return NewSystem(o, c, cfg)
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// MinContextSize returns the effective small-context exclusion cutoff.
func (s *System) MinContextSize() int { return s.cfg.minContextSize(s.Corpus.Len()) }

// BuildStats returns the system's offline-build timing record. Stages
// recorded after construction (context sets, prestige scoring) append to the
// same record; Summary() renders the whole pipeline.
func (s *System) BuildStats() *BuildStats { return s.stats }

// contextWorkers resolves the context-set construction parallelism: an
// explicit ContextSet.Workers wins, otherwise BuildWorkers applies (both
// zero = GOMAXPROCS).
func (s *System) contextWorkers() contextset.Config {
	cfg := s.cfg.ContextSet
	if cfg.Workers == 0 {
		cfg.Workers = s.cfg.BuildWorkers
	}
	return cfg
}

// BuildTextContextSet constructs the text-based context paper set (§4).
func (s *System) BuildTextContextSet() *ContextSet {
	var cs *ContextSet
	s.stats.Time("contextset-text", s.Corpus.Len(), "papers", func() {
		cs = contextset.BuildTextBased(s.analyzer, s.Ontology, s.contextWorkers())
	})
	return cs
}

// BuildPatternContextSet constructs the simplified pattern-based context
// paper set (§4).
func (s *System) BuildPatternContextSet() *ContextSet {
	var cs *ContextSet
	s.stats.Time("contextset-pattern", s.Corpus.Len(), "papers", func() {
		cs = contextset.BuildPatternBased(s.PosIndex(), s.analyzer, s.Ontology, s.contextWorkers())
	})
	return cs
}

// CitationScorer returns the citation-based prestige scorer (§3.1), built
// once per System — it embeds the corpus-wide citation graph. Use WithOpts /
// WithCrossContext for ablation variants sharing the graph.
func (s *System) CitationScorer() *prestige.CitationScorer {
	s.citationOnce.Do(func() {
		s.citation = prestige.NewCitationScorer(s.Corpus, s.cfg.PageRank)
	})
	return s.citation
}

// TextScorer returns the text-based prestige scorer (§3.2), built once per
// System — it embeds the citation graph and co-author index. Use
// WithRepSource for the cross-set representative variant sharing both.
func (s *System) TextScorer() *prestige.TextScorer {
	s.textOnce.Do(func() {
		s.text = prestige.NewTextScorer(s.analyzer, s.cfg.TextWeights)
	})
	return s.text
}

// PatternScorer returns the pattern-based prestige scorer (§3.3), built once
// per System; its mined-pattern cache then persists across score runs.
func (s *System) PatternScorer() *prestige.PatternScorer {
	s.patternOnce.Do(func() {
		s.pattern = prestige.NewPatternScorer(s.PosIndex(), s.Ontology, s.cfg.Pattern, s.cfg.Match)
	})
	return s.pattern
}

// score runs a scorer over a context set with the configured exclusion and
// applies hierarchical max propagation (§3). Scoring fans out across
// contexts per Config.Workers.
func (s *System) score(sc prestige.Scorer, cs *ContextSet) Scores {
	var out Scores
	s.stats.Time("score-"+sc.Name(), len(cs.Contexts()), "contexts", func() {
		scores := prestige.ScoreAllParallel(sc, cs, s.MinContextSize(), s.cfg.Workers)
		out = prestige.PropagateMax(s.Ontology, scores)
	})
	return out
}

// ScoreCitation computes citation-based prestige scores over a context set.
func (s *System) ScoreCitation(cs *ContextSet) Scores { return s.score(s.CitationScorer(), cs) }

// ScoreText computes text-based prestige scores over a context set.
func (s *System) ScoreText(cs *ContextSet) Scores { return s.score(s.TextScorer(), cs) }

// ScorePattern computes pattern-based prestige scores over a context set.
func (s *System) ScorePattern(cs *ContextSet) Scores { return s.score(s.PatternScorer(), cs) }

// Engine assembles the context-based search engine over a context set and
// its prestige scores (freezing the map form into the query-time matrix).
func (s *System) Engine(cs *ContextSet, scores Scores) *Engine {
	return search.NewEngine(s.index, cs, scores, s.cfg.Relevancy)
}

// EngineFrozen assembles the engine directly from a frozen prestige matrix —
// the cold-start path when the matrix came out of a v2 state file, skipping
// the freeze entirely.
func (s *System) EngineFrozen(cs *ContextSet, m *Matrix) *Engine {
	return search.NewEngineFrozen(s.index, cs, m, s.cfg.Relevancy)
}

// BaselineTFIDF runs the whole-corpus TF-IDF keyword baseline.
func (s *System) BaselineTFIDF(query string, threshold float64, limit int) []Hit {
	return search.BaselineTFIDF(s.index, query, threshold, limit)
}

// BaselinePubMed runs the PubMed-style unranked baseline (descending PMID).
func (s *System) BaselinePubMed(query string) []PaperID {
	return search.BaselinePubMed(s.index, query)
}

// Analyzer exposes the analysed corpus features (advanced use: custom
// scorers and metrics).
func (s *System) Analyzer() *corpus.Analyzer { return s.analyzer }

// Index exposes the inverted index (advanced use).
func (s *System) Index() *index.Index { return s.index }

// PosIndex exposes the positional index (advanced use). On a frozen system
// the first call builds it — the only stage of a mapped-state boot that
// re-reads paper text, paid solely by pattern-based features.
func (s *System) PosIndex() *pattern.PosIndex {
	s.posOnce.Do(func() {
		if s.posIndex == nil {
			s.stats.Time("posindex", s.Corpus.Len(), "papers", func() {
				s.posIndex = pattern.NewPosIndexWorkers(s.analyzer, s.cfg.BuildWorkers)
			})
		}
	})
	return s.posIndex
}
