// Benchmarks regenerating every figure of the paper's evaluation section
// (see DESIGN.md's experiment index). Each benchmark measures the
// computation of one figure's data series over a shared reduced-scale setup
// (the expensive corpus/context/score construction is done once and timed
// by BenchmarkSetup).
//
// Run with: go test -bench=. -benchmem
package ctxsearch_test

import (
	"sync"
	"testing"

	"ctxsearch"
	"ctxsearch/internal/experiments"
)

var (
	benchOnce  sync.Once
	benchSetup *experiments.Setup
	benchErr   error
)

func getSetup(b *testing.B) *experiments.Setup {
	b.Helper()
	benchOnce.Do(func() {
		benchSetup, benchErr = experiments.NewSetup(experiments.BenchScale(), nil)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSetup
}

// BenchmarkSetup measures the full pre-processing pipeline the paper runs
// before any query: corpus analysis, both context paper sets, and all five
// score-function×context-set combinations.
func BenchmarkSetup(b *testing.B) {
	scale := experiments.BenchScale()
	scale.Papers = 150
	scale.Terms = 50
	scale.Queries = 10
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewSetup(scale, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSystemBuild measures the end-to-end offline build (analysis, TF-IDF
// warm, inverted index, positional index) at a fixed worker count; the
// synthetic ontology/corpus generation is excluded by reusing them across
// iterations.
func benchSystemBuild(b *testing.B, workers int) {
	cfg := ctxsearch.DefaultConfig()
	cfg.OntologyTerms = 80
	cfg.Papers = 400
	cfg.BuildWorkers = workers
	seed, err := ctxsearch.NewSyntheticSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	o, c := seed.Ontology, seed.Corpus
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ctxsearch.NewSystem(o, c, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSystemBuildWorkers1(b *testing.B) { benchSystemBuild(b, 1) }
func BenchmarkSystemBuildWorkers8(b *testing.B) { benchSystemBuild(b, 8) }

// BenchmarkFig51 regenerates Figure 5.1 (precision, text vs citation on the
// text-based context paper set).
func BenchmarkFig51(b *testing.B) {
	s := getSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig := s.Fig51()
		if len(fig.Series) != 2 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkFig52 regenerates Figure 5.2 (precision, pattern vs citation on
// the pattern-based context paper set).
func BenchmarkFig52(b *testing.B) {
	s := getSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig := s.Fig52()
		if len(fig.Series) != 2 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkFig53 regenerates Figure 5.3 (top-k% overlapping ratio per
// context level for all three score-function pairs).
func BenchmarkFig53(b *testing.B) {
	s := getSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig := s.Fig53()
		if len(fig.Pairs) != 3 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkFig54 regenerates Figure 5.4 (overall separability histograms of
// both context paper sets).
func BenchmarkFig54(b *testing.B) {
	s := getSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x, y := s.Fig54()
		if len(x.Series) == 0 || len(y.Series) == 0 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkFig55 regenerates Figure 5.5 (text-based score separability per
// context level).
func BenchmarkFig55(b *testing.B) {
	s := getSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if fig := s.Fig55(); len(fig.Series) == 0 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkFig56 regenerates Figure 5.6 (pattern-based score separability
// per context level).
func BenchmarkFig56(b *testing.B) {
	s := getSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if fig := s.Fig56(); len(fig.Series) == 0 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkFig57 regenerates Figure 5.7 (citation-based score separability
// per context level).
func BenchmarkFig57(b *testing.B) {
	s := getSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if fig := s.Fig57(); len(fig.Series) == 0 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkClaimBaseline regenerates the §1 headline claim comparison
// (output-size reduction and accuracy gain vs the keyword baseline).
func BenchmarkClaimBaseline(b *testing.B) {
	s := getSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := s.ClaimBaseline(); r.Queries == 0 {
			b.Fatal("no queries")
		}
	}
}

// BenchmarkAblateTeleport regenerates ablation A1 (PageRank E1 vs E2).
func BenchmarkAblateTeleport(b *testing.B) {
	s := getSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := s.AblateTeleport(); r.Contexts == 0 {
			b.Fatal("no contexts")
		}
	}
}

// BenchmarkAblateHITS regenerates ablation A2 (HITS vs PageRank
// correlation).
func BenchmarkAblateHITS(b *testing.B) {
	s := getSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.AblateHITS()
	}
}

// BenchmarkAblateCutoff regenerates ablation A3 (small-context exclusion
// sweep).
func BenchmarkAblateCutoff(b *testing.B) {
	s := getSetup(b)
	cutoffs := []int{0, 5, 10, 25, 50, 100}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := s.AblateCutoff(cutoffs); len(r.Contexts) != len(cutoffs) {
			b.Fatal("bad sweep")
		}
	}
}

// BenchmarkExtCrossContext regenerates extension E1 (§7 weighted
// cross-context citations).
func BenchmarkExtCrossContext(b *testing.B) {
	s := getSetup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.AblateCrossContext()
	}
}

// BenchmarkSearch measures one end-to-end context-based query (tasks 3–5).
func BenchmarkSearch(b *testing.B) {
	s := getSetup(b)
	engine := s.Sys.Engine(s.TextSet, s.TextOnTextSet)
	query := s.Queries[0].Text
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = engine.Search(query, ctxsearch.SearchOptions{})
	}
}
