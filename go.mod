module ctxsearch

go 1.22
