#!/usr/bin/env bash
# Black-box smoke test of `ctxsearch serve`: builds the real binary, boots
# it on an ephemeral port, waits for /readyz to flip, exercises the API and
# its limit validation with curl, then sends SIGTERM and requires a clean
# (graceful) exit. A second phase boots a 3-shard multi-process cluster
# (three `ctxsearch shard` processes plus a stateless coordinator) and
# drives one search through the coordinator. Run via `make serve-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
bin="$workdir/ctxsearch"
logfile="$workdir/serve.log"
pid=""
extra_pids=()

cleanup() {
    local p
    for p in "${extra_pids[@]:-}"; do
        [[ -n "$p" ]] && kill -KILL "$p" 2>/dev/null || true
    done
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    local f
    for f in "$workdir"/*.log; do
        echo "--- $(basename "$f") ---" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

# wait_addr LOGFILE PID: echoes the host:port from the "listening on" line.
wait_addr() {
    local addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$1" | head -n1)"
        [[ -n "$addr" ]] && break
        kill -0 "$2" 2>/dev/null || return 1
        sleep 0.1
    done
    [[ -n "$addr" ]] || return 1
    echo "$addr"
}

# wait_ready BASEURL: polls /readyz until 200 (up to 30s — shard processes
# each build the full corpus before restricting to their range).
wait_ready() {
    local code=""
    for _ in $(seq 1 300); do
        code="$(curl -s -o /dev/null -w '%{http_code}' "$1/readyz")"
        [[ "$code" == "200" ]] && return 0
        sleep 0.1
    done
    return 1
}

echo "serve-smoke: building binary"
go build -o "$bin" ./cmd/ctxsearch

echo "serve-smoke: booting server on an ephemeral port"
"$bin" -papers 300 -terms 60 -addr 127.0.0.1:0 serve >"$logfile" 2>&1 &
pid=$!

# The listen line appears as soon as the port binds (before the engine is
# built); readiness flips later via /readyz.
addr="$(wait_addr "$logfile" "$pid")" || fail "never saw the listening line"
base="http://$addr"
echo "serve-smoke: listening on $addr"

# Liveness must answer even before readiness.
code="$(curl -s -o /dev/null -w '%{http_code}' "$base/healthz")"
[[ "$code" == "200" ]] || fail "/healthz = $code, want 200"

wait_ready "$base" || fail "/readyz never flipped to 200"
echo "serve-smoke: ready"

code="$(curl -s -o /dev/null -w '%{http_code}' "$base/search?q=transcription&limit=5")"
[[ "$code" == "200" ]] || fail "/search = $code, want 200"

# Validation: an over-cap limit is a client error, not a 500.
code="$(curl -s -o /dev/null -w '%{http_code}' "$base/search?q=transcription&limit=1001")"
[[ "$code" == "400" ]] || fail "over-cap limit = $code, want 400"

code="$(curl -s -o /dev/null -w '%{http_code}' "$base/stats")"
[[ "$code" == "200" ]] || fail "/stats = $code, want 200"

echo "serve-smoke: SIGTERM"
kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
    fail "server still running 10s after SIGTERM"
fi
wait "$pid" || fail "server exited non-zero after SIGTERM"
pid=""

echo "serve-smoke: phase 2 — 3-shard multi-process cluster"

# Boot three shard processes. Each builds the same deterministic corpus
# (same -papers/-terms seed) and serves its own third of the paper IDs.
shard_urls=()
for i in 0 1 2; do
    shardlog="$workdir/shard$i.log"
    "$bin" -papers 300 -terms 60 -addr 127.0.0.1:0 \
        -shard-index "$i" -shard-count 3 shard >"$shardlog" 2>&1 &
    extra_pids+=($!)
done
for i in 0 1 2; do
    saddr="$(wait_addr "$workdir/shard$i.log" "${extra_pids[$i]}")" \
        || fail "shard $i never listened"
    shard_urls+=("http://$saddr")
    echo "serve-smoke: shard $i listening on $saddr"
done

# The coordinator is stateless: no corpus flags, just the shard URLs.
coordlog="$workdir/coord.log"
"$bin" -addr 127.0.0.1:0 \
    -shard-urls "$(IFS=,; echo "${shard_urls[*]}")" serve >"$coordlog" 2>&1 &
extra_pids+=($!)
caddr="$(wait_addr "$coordlog" "${extra_pids[3]}")" || fail "coordinator never listened"
cbase="http://$caddr"
echo "serve-smoke: coordinator listening on $caddr"

# Readiness: every shard, then the coordinator (which fans /readyz out and
# answers 200 only once all shards are ready).
for i in 0 1 2; do
    wait_ready "${shard_urls[$i]}" || fail "shard $i /readyz never flipped to 200"
done
wait_ready "$cbase" || fail "coordinator /readyz never flipped to 200"
echo "serve-smoke: cluster ready"

# One search through the coordinator must return results merged from the
# shard pages.
body="$(curl -s -w '\n%{http_code}' "$cbase/search?q=transcription&limit=5")"
code="${body##*$'\n'}"
[[ "$code" == "200" ]] || fail "coordinator /search = $code, want 200"
grep -q '"paper_id"' <<<"$body" || fail "coordinator /search returned no result rows: $body"
grep -q '"partial"' <<<"$body" && fail "healthy cluster flagged a partial response: $body"

# Stats through the coordinator must include the sharding counters.
curl -s "$cbase/stats" | grep -q '"sharding"' || fail "coordinator /stats has no sharding block"

# Graceful drain: coordinator first, then the shards.
echo "serve-smoke: SIGTERM cluster"
for p in "${extra_pids[@]}"; do
    kill -TERM "$p" 2>/dev/null || true
done
for p in "${extra_pids[@]}"; do
    for _ in $(seq 1 100); do
        kill -0 "$p" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$p" 2>/dev/null; then
        fail "cluster process $p still running 10s after SIGTERM"
    fi
    wait "$p" || fail "cluster process $p exited non-zero after SIGTERM"
done
extra_pids=()

echo "serve-smoke: PASS"
