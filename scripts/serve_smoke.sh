#!/usr/bin/env bash
# Black-box smoke test of `ctxsearch serve`: builds the real binary, boots
# it on an ephemeral port, waits for /readyz to flip, exercises the API and
# its limit validation with curl, then sends SIGTERM and requires a clean
# (graceful) exit. Run via `make serve-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
bin="$workdir/ctxsearch"
logfile="$workdir/serve.log"
pid=""

cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$logfile" >&2 || true
    exit 1
}

echo "serve-smoke: building binary"
go build -o "$bin" ./cmd/ctxsearch

echo "serve-smoke: booting server on an ephemeral port"
"$bin" -papers 300 -terms 60 -addr 127.0.0.1:0 serve >"$logfile" 2>&1 &
pid=$!

# The listen line appears as soon as the port binds (before the engine is
# built); readiness flips later via /readyz.
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$logfile" | head -n1)"
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || fail "server exited before listening"
    sleep 0.1
done
[[ -n "$addr" ]] || fail "never saw the listening line"
base="http://$addr"
echo "serve-smoke: listening on $addr"

# Liveness must answer even before readiness.
code="$(curl -s -o /dev/null -w '%{http_code}' "$base/healthz")"
[[ "$code" == "200" ]] || fail "/healthz = $code, want 200"

for _ in $(seq 1 100); do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$base/readyz")"
    [[ "$code" == "200" ]] && break
    sleep 0.1
done
[[ "$code" == "200" ]] || fail "/readyz never flipped to 200 (last $code)"
echo "serve-smoke: ready"

code="$(curl -s -o /dev/null -w '%{http_code}' "$base/search?q=transcription&limit=5")"
[[ "$code" == "200" ]] || fail "/search = $code, want 200"

# Validation: an over-cap limit is a client error, not a 500.
code="$(curl -s -o /dev/null -w '%{http_code}' "$base/search?q=transcription&limit=1001")"
[[ "$code" == "400" ]] || fail "over-cap limit = $code, want 400"

code="$(curl -s -o /dev/null -w '%{http_code}' "$base/stats")"
[[ "$code" == "200" ]] || fail "/stats = $code, want 200"

echo "serve-smoke: SIGTERM"
kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
    fail "server still running 10s after SIGTERM"
fi
wait "$pid" || fail "server exited non-zero after SIGTERM"
pid=""

echo "serve-smoke: PASS"
