#!/usr/bin/env bash
# Black-box smoke test of `ctxsearch serve`: builds the real binary, boots
# it on an ephemeral port, waits for /readyz to flip, exercises the API and
# its limit validation with curl, then sends SIGTERM and requires a clean
# (graceful) exit. A second phase boots a 3-shard multi-process cluster
# (three `ctxsearch shard` processes plus a stateless coordinator) and
# drives one search through the coordinator. A third (chaos) phase boots a
# 2-range x 2-replica cluster, kills one replica per range mid-traffic,
# requires every search to stay byte-identical to the pre-kill baseline,
# then restarts a replica on its recorded port and requires readiness to
# recover. Run via `make serve-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
bin="$workdir/ctxsearch"
logfile="$workdir/serve.log"
pid=""
extra_pids=()

# cleanup kills every process this script started — on normal exit, on
# failure, and on INT/TERM (an interrupted CI job must not leave orphan
# shard processes holding ports).
cleanup() {
    local p
    for p in "${extra_pids[@]:-}"; do
        [[ -n "$p" ]] && kill -KILL "$p" 2>/dev/null || true
    done
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

# fail dumps the tail of every process log before exiting — on a phase
# failure the relevant evidence is at the end of whichever log has it.
fail() {
    echo "serve-smoke: FAIL: $*" >&2
    local f
    for f in "$workdir"/*.log; do
        [[ -e "$f" ]] || continue
        echo "--- $(basename "$f") (last 40 lines) ---" >&2
        tail -n 40 "$f" >&2 || true
    done
    exit 1
}

# wait_addr LOGFILE PID: echoes the host:port from the "listening on" line.
wait_addr() {
    local addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$1" | head -n1)"
        [[ -n "$addr" ]] && break
        kill -0 "$2" 2>/dev/null || return 1
        sleep 0.1
    done
    [[ -n "$addr" ]] || return 1
    echo "$addr"
}

# wait_ready BASEURL: polls /readyz until 200 (up to 30s — shard processes
# each build the full corpus before restricting to their range).
wait_ready() {
    local code=""
    for _ in $(seq 1 300); do
        code="$(curl -s -o /dev/null -w '%{http_code}' "$1/readyz")"
        [[ "$code" == "200" ]] && return 0
        sleep 0.1
    done
    return 1
}

echo "serve-smoke: building binary"
go build -o "$bin" ./cmd/ctxsearch

echo "serve-smoke: booting server on an ephemeral port"
"$bin" -papers 300 -terms 60 -addr 127.0.0.1:0 serve >"$logfile" 2>&1 &
pid=$!

# The listen line appears as soon as the port binds (before the engine is
# built); readiness flips later via /readyz.
addr="$(wait_addr "$logfile" "$pid")" || fail "never saw the listening line"
base="http://$addr"
echo "serve-smoke: listening on $addr"

# Liveness must answer even before readiness.
code="$(curl -s -o /dev/null -w '%{http_code}' "$base/healthz")"
[[ "$code" == "200" ]] || fail "/healthz = $code, want 200"

wait_ready "$base" || fail "/readyz never flipped to 200"
echo "serve-smoke: ready"

code="$(curl -s -o /dev/null -w '%{http_code}' "$base/search?q=transcription&limit=5")"
[[ "$code" == "200" ]] || fail "/search = $code, want 200"

# Validation: an over-cap limit is a client error, not a 500.
code="$(curl -s -o /dev/null -w '%{http_code}' "$base/search?q=transcription&limit=1001")"
[[ "$code" == "400" ]] || fail "over-cap limit = $code, want 400"

code="$(curl -s -o /dev/null -w '%{http_code}' "$base/stats")"
[[ "$code" == "200" ]] || fail "/stats = $code, want 200"

echo "serve-smoke: SIGTERM"
kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
    fail "server still running 10s after SIGTERM"
fi
wait "$pid" || fail "server exited non-zero after SIGTERM"
pid=""

echo "serve-smoke: phase 2 — 3-shard multi-process cluster"

# Boot three shard processes. Each builds the same deterministic corpus
# (same -papers/-terms seed) and serves its own third of the paper IDs.
shard_urls=()
for i in 0 1 2; do
    shardlog="$workdir/shard$i.log"
    "$bin" -papers 300 -terms 60 -addr 127.0.0.1:0 \
        -shard-index "$i" -shard-count 3 shard >"$shardlog" 2>&1 &
    extra_pids+=($!)
done
for i in 0 1 2; do
    saddr="$(wait_addr "$workdir/shard$i.log" "${extra_pids[$i]}")" \
        || fail "shard $i never listened"
    shard_urls+=("http://$saddr")
    echo "serve-smoke: shard $i listening on $saddr"
done

# The coordinator is stateless: no corpus flags, just the shard URLs.
coordlog="$workdir/coord.log"
"$bin" -addr 127.0.0.1:0 \
    -shard-urls "$(IFS=,; echo "${shard_urls[*]}")" serve >"$coordlog" 2>&1 &
extra_pids+=($!)
caddr="$(wait_addr "$coordlog" "${extra_pids[3]}")" || fail "coordinator never listened"
cbase="http://$caddr"
echo "serve-smoke: coordinator listening on $caddr"

# Readiness: every shard, then the coordinator (which fans /readyz out and
# answers 200 only once all shards are ready).
for i in 0 1 2; do
    wait_ready "${shard_urls[$i]}" || fail "shard $i /readyz never flipped to 200"
done
wait_ready "$cbase" || fail "coordinator /readyz never flipped to 200"
echo "serve-smoke: cluster ready"

# One search through the coordinator must return results merged from the
# shard pages.
body="$(curl -s -w '\n%{http_code}' "$cbase/search?q=transcription&limit=5")"
code="${body##*$'\n'}"
[[ "$code" == "200" ]] || fail "coordinator /search = $code, want 200"
grep -q '"paper_id"' <<<"$body" || fail "coordinator /search returned no result rows: $body"
grep -q '"partial"' <<<"$body" && fail "healthy cluster flagged a partial response: $body"

# Stats through the coordinator must include the sharding counters.
curl -s "$cbase/stats" | grep -q '"sharding"' || fail "coordinator /stats has no sharding block"

# Graceful drain: coordinator first, then the shards.
echo "serve-smoke: SIGTERM cluster"
for p in "${extra_pids[@]}"; do
    kill -TERM "$p" 2>/dev/null || true
done
for p in "${extra_pids[@]}"; do
    for _ in $(seq 1 100); do
        kill -0 "$p" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$p" 2>/dev/null; then
        fail "cluster process $p still running 10s after SIGTERM"
    fi
    wait "$p" || fail "cluster process $p exited non-zero after SIGTERM"
done
extra_pids=()

echo "serve-smoke: phase 3 — chaos: 2 ranges x 2 replicas, replica kill mid-traffic"

# Boot two replicas per shard range (indices 0,0,1,1). Replicas of a range
# build identical deterministic artifacts, so any replica serves exactly
# the same bytes for a given shard request.
rep_pids=()
rep_urls=()
n=0
for idx in 0 0 1 1; do
    replog="$workdir/replica$n.log"
    "$bin" -papers 300 -terms 60 -addr 127.0.0.1:0 \
        -shard-index "$idx" -shard-count 2 shard >"$replog" 2>&1 &
    rep_pids+=($!)
    extra_pids+=($!)
    n=$((n+1))
done
for n in 0 1 2 3; do
    raddr="$(wait_addr "$workdir/replica$n.log" "${rep_pids[$n]}")" \
        || fail "replica $n never listened"
    rep_urls+=("http://$raddr")
    echo "serve-smoke: replica $n listening on $raddr"
done
for n in 0 1 2 3; do
    wait_ready "${rep_urls[$n]}" || fail "replica $n /readyz never flipped to 200"
done

# Coordinator with the replica syntax ("|" between replicas of a range),
# caching off so every search exercises the fan-out, and fast
# probe/breaker settings so recovery is visible within the test window.
chaoslog="$workdir/chaoscoord.log"
"$bin" -addr 127.0.0.1:0 -cache-entries 0 \
    -max-retries 3 -probe-interval 100ms -breaker-cooldown 300ms \
    -shard-urls "${rep_urls[0]}|${rep_urls[1]},${rep_urls[2]}|${rep_urls[3]}" \
    serve >"$chaoslog" 2>&1 &
coord_pid=$!
extra_pids+=("$coord_pid")
caddr="$(wait_addr "$chaoslog" "$coord_pid")" || fail "chaos coordinator never listened"
cbase="http://$caddr"
wait_ready "$cbase" || fail "chaos coordinator /readyz never flipped to 200"
echo "serve-smoke: chaos cluster ready on $caddr"

# Baseline page with every replica healthy.
baseline="$(curl -s "$cbase/search?q=transcription&limit=10")"
grep -q '"paper_id"' <<<"$baseline" || fail "chaos baseline has no result rows: $baseline"

# Crash (SIGKILL, not graceful) one replica of each range mid-traffic.
echo "serve-smoke: killing replica 0 of each range"
for n in 0 2; do
    kill -KILL "${rep_pids[$n]}" 2>/dev/null || true
    wait "${rep_pids[$n]}" 2>/dev/null || true
done

# Every search after the crash must stay byte-identical to the baseline:
# failover and retries may change which replica answers, never the page.
for i in $(seq 1 8); do
    body="$(curl -s "$cbase/search?q=transcription&limit=10")"
    [[ "$body" == "$baseline" ]] \
        || fail "search $i after replica kill diverged from baseline: $body"
done
echo "serve-smoke: searches byte-identical with one replica down per range"

# Each range still has a live replica, so the cluster must report ready.
wait_ready "$cbase" || fail "coordinator not ready with one live replica per range"

# The per-replica table must be visible in /stats.
curl -s "$cbase/stats" | grep -q '"replicas"' || fail "chaos /stats has no replicas table"

# Restart the killed replica of range 0 on its recorded port and require
# readiness — and identical pages — to survive the rejoin.
raddr="${rep_urls[0]#http://}"
echo "serve-smoke: restarting replica 0 on $raddr"
"$bin" -papers 300 -terms 60 -addr "$raddr" \
    -shard-index 0 -shard-count 2 shard >"$workdir/replica0b.log" 2>&1 &
rep_pids[0]=$!
extra_pids+=($!)
wait_ready "${rep_urls[0]}" || fail "restarted replica never became ready"
wait_ready "$cbase" || fail "coordinator not ready after replica rejoin"
body="$(curl -s "$cbase/search?q=transcription&limit=10")"
[[ "$body" == "$baseline" ]] || fail "search after replica rejoin diverged from baseline"
echo "serve-smoke: replica rejoined, pages still byte-identical"

# Drain the survivors (replica 2 of the flat list stays dead by design).
echo "serve-smoke: SIGTERM chaos cluster"
live_pids=("$coord_pid" "${rep_pids[0]}" "${rep_pids[1]}" "${rep_pids[3]}")
for p in "${live_pids[@]}"; do
    kill -TERM "$p" 2>/dev/null || true
done
for p in "${live_pids[@]}"; do
    for _ in $(seq 1 100); do
        kill -0 "$p" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$p" 2>/dev/null; then
        fail "chaos process $p still running 10s after SIGTERM"
    fi
    wait "$p" || fail "chaos process $p exited non-zero after SIGTERM"
done
extra_pids=()

echo "serve-smoke: PASS"
