package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNGrams(t *testing.T) {
	toks := []string{"rna", "polymerase", "ii", "activity"}
	if got := NGrams(toks, 2); !reflect.DeepEqual(got, []string{"rna polymerase", "polymerase ii", "ii activity"}) {
		t.Errorf("bigrams = %v", got)
	}
	if got := NGrams(toks, 4); !reflect.DeepEqual(got, []string{"rna polymerase ii activity"}) {
		t.Errorf("4-grams = %v", got)
	}
	if got := NGrams(toks, 5); got != nil {
		t.Errorf("oversize n should return nil, got %v", got)
	}
	if got := NGrams(toks, 0); got != nil {
		t.Errorf("n=0 should return nil, got %v", got)
	}
}

func TestNGramsCountProperty(t *testing.T) {
	f := func(words []string, n uint8) bool {
		k := int(n%5) + 1
		got := NGrams(words, k)
		want := len(words) - k + 1
		if want < 0 {
			want = 0
		}
		return len(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFindPhrases(t *testing.T) {
	toks := strings.Fields("the rna polymerase ii transcription factor binds rna polymerase ii")
	got := FindPhrases(toks, []string{"rna polymerase ii", "transcription factor", "absent phrase"})
	if len(got) != 2 {
		t.Fatalf("found %d phrases, want 2: %v", len(got), got)
	}
	if got[0].Key() != "rna polymerase ii" || !reflect.DeepEqual(got[0].Starts, []int{1, 7}) {
		t.Errorf("phrase 0 = %+v", got[0])
	}
	if got[1].Key() != "transcription factor" || !reflect.DeepEqual(got[1].Starts, []int{4}) {
		t.Errorf("phrase 1 = %+v", got[1])
	}
}

func TestFindPhrasesEmpty(t *testing.T) {
	if got := FindPhrases(nil, []string{"x"}); got != nil {
		t.Errorf("nil tokens: %v", got)
	}
	if got := FindPhrases([]string{"x"}, nil); got != nil {
		t.Errorf("nil phrases: %v", got)
	}
	if got := FindPhrases([]string{"x"}, []string{""}); got != nil {
		t.Errorf("empty phrase: %v", got)
	}
}

func TestWindowAround(t *testing.T) {
	toks := strings.Fields("a b c d e f g")
	l, r := WindowAround(toks, 3, 1, 2)
	if !reflect.DeepEqual(l, []string{"b", "c"}) || !reflect.DeepEqual(r, []string{"e", "f"}) {
		t.Errorf("window = %v | %v", l, r)
	}
	// clipped at boundaries
	l, r = WindowAround(toks, 0, 2, 3)
	if len(l) != 0 || !reflect.DeepEqual(r, []string{"c", "d", "e"}) {
		t.Errorf("clipped window = %v | %v", l, r)
	}
	l, r = WindowAround(toks, 6, 1, 3)
	if !reflect.DeepEqual(l, []string{"d", "e", "f"}) || len(r) != 0 {
		t.Errorf("tail window = %v | %v", l, r)
	}
}
