// Package textproc provides the text-processing substrate used throughout
// the context-based search system: tokenization, stopword filtering, a full
// Porter stemmer, and n-gram (phrase) extraction.
//
// All ranking functions in the paper operate on term statistics produced by
// this package, so its behaviour is deliberately deterministic and
// dependency-free.
package textproc

import (
	"strings"
	"unicode"
)

// Token is a single processed token with its position in the source text.
// Positions are token offsets (0-based), not byte offsets; pattern matching
// uses them to recover word adjacency.
type Token struct {
	// Text is the normalised (lowercased, stemmed if requested) token text.
	Text string
	// Pos is the 0-based token position within the tokenized text.
	Pos int
}

// Tokenizer converts raw text into normalised tokens. The zero value is not
// usable; construct with NewTokenizer.
type Tokenizer struct {
	stem      bool
	dropStops bool
	minLen    int
	stemmer   *PorterStemmer
	stops     map[string]struct{}
}

// TokenizerOption configures a Tokenizer.
type TokenizerOption func(*Tokenizer)

// WithStemming enables Porter stemming of each token.
func WithStemming() TokenizerOption { return func(t *Tokenizer) { t.stem = true } }

// WithStopwords enables dropping of English stopwords.
func WithStopwords() TokenizerOption { return func(t *Tokenizer) { t.dropStops = true } }

// WithMinLength drops tokens shorter than n runes (after normalisation).
func WithMinLength(n int) TokenizerOption { return func(t *Tokenizer) { t.minLen = n } }

// NewTokenizer returns a Tokenizer with the given options applied. With no
// options it lowercases and splits on non-alphanumeric boundaries only.
func NewTokenizer(opts ...TokenizerOption) *Tokenizer {
	t := &Tokenizer{minLen: 1, stemmer: NewPorterStemmer(), stops: stopwordSet}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Tokenize splits text into normalised tokens. Hyphenated compounds are kept
// together when both sides are alphabetic ("co-citation" → "co-citation"),
// matching how biomedical index terms are written; all other punctuation
// splits. Positions count every emitted token.
func (t *Tokenizer) Tokenize(text string) []Token {
	raw := splitWords(text)
	out := make([]Token, 0, len(raw))
	pos := 0
	for _, w := range raw {
		w = strings.ToLower(w)
		if t.dropStops {
			if _, stop := t.stops[w]; stop {
				continue
			}
		}
		if t.stem {
			w = t.stemmer.Stem(w)
		}
		if len([]rune(w)) < t.minLen {
			continue
		}
		out = append(out, Token{Text: w, Pos: pos})
		pos++
	}
	return out
}

// Terms is a convenience wrapper returning only the token strings.
func (t *Tokenizer) Terms(text string) []string {
	toks := t.Tokenize(text)
	out := make([]string, len(toks))
	for i, tk := range toks {
		out[i] = tk.Text
	}
	return out
}

// splitWords performs the raw lexical split: maximal runs of letters/digits,
// with single interior hyphens between letters preserved.
func splitWords(text string) []string {
	var words []string
	runes := []rune(text)
	n := len(runes)
	start := -1
	flush := func(end int) {
		if start >= 0 && end > start {
			words = append(words, string(runes[start:end]))
		}
		start = -1
	}
	isWord := func(r rune) bool { return unicode.IsLetter(r) || unicode.IsDigit(r) }
	for i := 0; i < n; i++ {
		r := runes[i]
		switch {
		case isWord(r):
			if start < 0 {
				start = i
			}
		case r == '-' && start >= 0 && i+1 < n && unicode.IsLetter(runes[i+1]) && unicode.IsLetter(runes[i-1]):
			// keep interior hyphen
		default:
			flush(i)
		}
	}
	flush(n)
	return words
}

// IsStopword reports whether w (already lowercased) is in the built-in
// English stopword list.
func IsStopword(w string) bool {
	_, ok := stopwordSet[w]
	return ok
}
