package textproc

// PorterStemmer implements the classic Porter (1980) suffix-stripping
// algorithm. The implementation follows the original paper's five steps
// exactly; it operates on lowercase ASCII words and returns non-ASCII or
// very short words unchanged.
//
// The stemmer is stateless and safe for concurrent use.
type PorterStemmer struct{}

// NewPorterStemmer returns a ready-to-use stemmer.
func NewPorterStemmer() *PorterStemmer { return &PorterStemmer{} }

// Stem returns the Porter stem of word. Words of length ≤ 2 are returned
// unchanged, per the original algorithm.
func (ps *PorterStemmer) Stem(word string) string {
	if len(word) <= 2 || !isASCIILower(word) {
		return word
	}
	b := []byte(word)
	b = step1a(b)
	b = step1b(b)
	b = step1c(b)
	b = step2(b)
	b = step3(b)
	b = step4(b)
	b = step5a(b)
	b = step5b(b)
	return string(b)
}

func isASCIILower(w string) bool {
	for i := 0; i < len(w); i++ {
		c := w[i]
		if c < 'a' || c > 'z' {
			if c == '-' { // hyphenated compounds: stem only if pure letters
				return false
			}
			return false
		}
	}
	return true
}

// isConsonant reports whether b[i] is a consonant in Porter's sense:
// a letter other than a,e,i,o,u, and y when preceded by a vowel is a vowel.
func isConsonant(b []byte, i int) bool {
	switch b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(b, i-1)
	}
	return true
}

// measure computes m, the number of VC sequences in b[:end].
func measure(b []byte, end int) int {
	m := 0
	i := 0
	// skip initial consonants
	for i < end && isConsonant(b, i) {
		i++
	}
	for {
		// skip vowels
		for i < end && !isConsonant(b, i) {
			i++
		}
		if i >= end {
			return m
		}
		// skip consonants
		for i < end && isConsonant(b, i) {
			i++
		}
		m++
		if i >= end {
			return m
		}
	}
}

func hasVowel(b []byte, end int) bool {
	for i := 0; i < end; i++ {
		if !isConsonant(b, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether b ends with a double consonant (*d).
func endsDoubleConsonant(b []byte) bool {
	n := len(b)
	return n >= 2 && b[n-1] == b[n-2] && isConsonant(b, n-1)
}

// endsCVC reports the *o condition: stem ends cvc where the final consonant
// is not w, x or y.
func endsCVC(b []byte, end int) bool {
	if end < 3 {
		return false
	}
	i := end - 1
	if !isConsonant(b, i) || isConsonant(b, i-1) || !isConsonant(b, i-2) {
		return false
	}
	switch b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(b []byte, s string) bool {
	return len(b) >= len(s) && string(b[len(b)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r when the measure of the remaining
// stem satisfies cond (called with the stem length). Returns (result, true)
// if the suffix matched at all, regardless of whether cond passed.
func replaceSuffix(b []byte, s, r string, cond func(stemLen int) bool) ([]byte, bool) {
	if !hasSuffix(b, s) {
		return b, false
	}
	stemLen := len(b) - len(s)
	if cond != nil && !cond(stemLen) {
		return b, true
	}
	out := make([]byte, 0, stemLen+len(r))
	out = append(out, b[:stemLen]...)
	out = append(out, r...)
	return out, true
}

func step1a(b []byte) []byte {
	switch {
	case hasSuffix(b, "sses"):
		return b[:len(b)-2]
	case hasSuffix(b, "ies"):
		return b[:len(b)-2]
	case hasSuffix(b, "ss"):
		return b
	case hasSuffix(b, "s"):
		return b[:len(b)-1]
	}
	return b
}

func step1b(b []byte) []byte {
	if hasSuffix(b, "eed") {
		if measure(b, len(b)-3) > 0 {
			return b[:len(b)-1]
		}
		return b
	}
	matched := false
	var stem []byte
	if hasSuffix(b, "ed") && hasVowel(b, len(b)-2) {
		stem = b[:len(b)-2]
		matched = true
	} else if hasSuffix(b, "ing") && hasVowel(b, len(b)-3) {
		stem = b[:len(b)-3]
		matched = true
	}
	if !matched {
		return b
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleConsonant(stem):
		last := stem[len(stem)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem, len(stem)) == 1 && endsCVC(stem, len(stem)):
		return append(stem, 'e')
	}
	return stem
}

func step1c(b []byte) []byte {
	if hasSuffix(b, "y") && hasVowel(b, len(b)-1) {
		out := make([]byte, len(b))
		copy(out, b)
		out[len(out)-1] = 'i'
		return out
	}
	return b
}

// step2 maps double suffixes to single ones when m(stem) > 0.
var step2Rules = []struct{ from, to string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
	// "logi" -> "log" is the one departure from the 1980 paper adopted in
	// Porter's official revised definition; without it "ontology" stems to
	// "ontologi" while "ontological" stems to "ontolog".
	{"logi", "log"},
}

func step2(b []byte) []byte {
	for _, r := range step2Rules {
		if out, ok := replaceSuffix(b, r.from, r.to, func(sl int) bool { return measure(b, sl) > 0 }); ok {
			return out
		}
	}
	return b
}

var step3Rules = []struct{ from, to string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(b []byte) []byte {
	for _, r := range step3Rules {
		if out, ok := replaceSuffix(b, r.from, r.to, func(sl int) bool { return measure(b, sl) > 0 }); ok {
			return out
		}
	}
	return b
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(b []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(b, s) {
			continue
		}
		stemLen := len(b) - len(s)
		if measure(b, stemLen) <= 1 {
			return b
		}
		if s == "ion" {
			// (m>1 and (*S or *T)) ION
			if stemLen == 0 || (b[stemLen-1] != 's' && b[stemLen-1] != 't') {
				return b
			}
		}
		return b[:stemLen]
	}
	return b
}

func step5a(b []byte) []byte {
	if !hasSuffix(b, "e") {
		return b
	}
	stemLen := len(b) - 1
	m := measure(b, stemLen)
	if m > 1 || (m == 1 && !endsCVC(b, stemLen)) {
		return b[:stemLen]
	}
	return b
}

func step5b(b []byte) []byte {
	if measure(b, len(b)) > 1 && endsDoubleConsonant(b) && b[len(b)-1] == 'l' {
		return b[:len(b)-1]
	}
	return b
}
