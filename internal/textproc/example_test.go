package textproc_test

import (
	"fmt"

	"ctxsearch/internal/textproc"
)

func ExampleTokenizer_Terms() {
	tok := textproc.NewTokenizer(textproc.WithStemming(), textproc.WithStopwords())
	fmt.Println(tok.Terms("The regulation of RNA binding activities"))
	// Output: [regul rna bind activ]
}

func ExamplePorterStemmer_Stem() {
	ps := textproc.NewPorterStemmer()
	for _, w := range []string{"transcription", "binding", "regulated", "ontology"} {
		fmt.Printf("%s → %s\n", w, ps.Stem(w))
	}
	// Output:
	// transcription → transcript
	// binding → bind
	// regulated → regul
	// ontology → ontolog
}

func ExampleNGrams() {
	fmt.Println(textproc.NGrams([]string{"rna", "polymerase", "ii"}, 2))
	// Output: [rna polymerase polymerase ii]
}
