package textproc

import (
	"testing"
	"testing/quick"
)

// Classic vocabulary pairs from Porter's published examples plus
// domain-relevant words.
func TestPorterVocabulary(t *testing.T) {
	ps := NewPorterStemmer()
	cases := map[string]string{
		// step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// step 1c
		"happy": "happi",
		"sky":   "sky",
		// step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// step 5
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// domain words
		"transcription": "transcript",
		"regulation":    "regul",
		"binding":       "bind",
		"genes":         "gene",
		"ontology":      "ontolog",
		"citations":     "citat",
	}
	for in, want := range cases {
		if got := ps.Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPorterShortWords(t *testing.T) {
	ps := NewPorterStemmer()
	for _, w := range []string{"", "a", "is", "go"} {
		if got := ps.Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestPorterNonASCIIUnchanged(t *testing.T) {
	ps := NewPorterStemmer()
	for _, w := range []string{"naïve", "café", "co-citation", "GENE", "p53a"} {
		if got := ps.Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

// Property: stemming is deterministic and never lengthens a word. (Porter is
// deliberately NOT idempotent — e.g. "agree"→"agre"→"agr" — so we do not
// assert that.)
func TestPorterProperties(t *testing.T) {
	ps := NewPorterStemmer()
	f := func(raw []byte) bool {
		w := make([]byte, 0, len(raw))
		for _, c := range raw {
			w = append(w, 'a'+c%26)
		}
		s := ps.Stem(string(w))
		if len(s) > len(w) {
			return false
		}
		return ps.Stem(string(w)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// The canonical non-idempotence example, pinned so refactors don't silently
// change behaviour.
func TestPorterNotIdempotent(t *testing.T) {
	ps := NewPorterStemmer()
	if s := ps.Stem("agreed"); s != "agre" {
		t.Fatalf("Stem(agreed) = %q", s)
	}
	if s := ps.Stem("agre"); s != "agr" {
		t.Fatalf("Stem(agre) = %q", s)
	}
}

func TestMeasure(t *testing.T) {
	cases := map[string]int{
		"tr": 0, "ee": 0, "tree": 0, "y": 0, "by": 0,
		"trouble": 1, "oats": 1, "trees": 1, "ivy": 1,
		"troubles": 2, "private": 2, "oaten": 2, "orrery": 2,
	}
	for w, want := range cases {
		if got := measure([]byte(w), len(w)); got != want {
			t.Errorf("measure(%q) = %d, want %d", w, got, want)
		}
	}
}
