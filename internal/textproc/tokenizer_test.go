package textproc

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	tok := NewTokenizer()
	got := tok.Terms("Gene Ontology, terms: RNA polymerase II!")
	want := []string{"gene", "ontology", "terms", "rna", "polymerase", "ii"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizeHyphens(t *testing.T) {
	tok := NewTokenizer()
	cases := map[string][]string{
		"co-citation analysis":   {"co-citation", "analysis"},
		"text-based scoring":     {"text-based", "scoring"},
		"-leading and trailing-": {"leading", "and", "trailing"},
		"double--hyphen":         {"double", "hyphen"},
		"a-1 mix 1-a":            {"a", "1", "mix", "1", "a"},
	}
	for in, want := range cases {
		if got := tok.Terms(in); !reflect.DeepEqual(got, want) {
			t.Errorf("Terms(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestTokenizeStopwords(t *testing.T) {
	tok := NewTokenizer(WithStopwords())
	got := tok.Terms("the regulation of transcription is a process")
	want := []string{"regulation", "transcription", "process"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizeMinLength(t *testing.T) {
	tok := NewTokenizer(WithMinLength(3))
	got := tok.Terms("an RNA of id abc")
	want := []string{"rna", "abc"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizePositionsAreDense(t *testing.T) {
	tok := NewTokenizer(WithStopwords())
	toks := tok.Tokenize("the cell membrane of the nucleus")
	for i, tk := range toks {
		if tk.Pos != i {
			t.Fatalf("token %d has Pos %d", i, tk.Pos)
		}
	}
}

func TestTokenizeStemming(t *testing.T) {
	tok := NewTokenizer(WithStemming())
	got := tok.Terms("regulations binding activities")
	want := []string{"regul", "bind", "activ"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizeEmptyAndPunctOnly(t *testing.T) {
	tok := NewTokenizer()
	if got := tok.Terms(""); len(got) != 0 {
		t.Errorf("empty input produced %v", got)
	}
	if got := tok.Terms("!!! ,,, ---"); len(got) != 0 {
		t.Errorf("punct-only input produced %v", got)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") {
		t.Error("'the' should be a stopword")
	}
	if IsStopword("genome") {
		t.Error("'genome' should not be a stopword")
	}
}

func TestStopwordsReturnsCopy(t *testing.T) {
	s := Stopwords()
	delete(s, "the")
	if !IsStopword("the") {
		t.Fatal("mutating the returned copy affected the built-in set")
	}
}

// Property: tokenization output never contains uppercase letters or empty
// tokens, for arbitrary input.
func TestTokenizeNormalisedProperty(t *testing.T) {
	tok := NewTokenizer()
	f := func(s string) bool {
		for _, w := range tok.Terms(s) {
			if w == "" {
				return false
			}
			for _, r := range w {
				if r >= 'A' && r <= 'Z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: tokenization is idempotent — retokenizing the joined output
// yields the same terms.
func TestTokenizeIdempotentProperty(t *testing.T) {
	tok := NewTokenizer()
	f := func(s string) bool {
		first := tok.Terms(s)
		joined := ""
		for i, w := range first {
			if i > 0 {
				joined += " "
			}
			joined += w
		}
		second := tok.Terms(joined)
		return reflect.DeepEqual(first, second)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
