package textproc

import (
	"strings"
	"testing"
)

var benchText = strings.Repeat("the rna polymerase ii transcription factor binds to enhancer-dependent "+
	"regulatory elements during cellular differentiation and controls gene expression programs ", 40)

func BenchmarkTokenize(b *testing.B) {
	tok := NewTokenizer()
	b.ReportAllocs()
	b.SetBytes(int64(len(benchText)))
	for i := 0; i < b.N; i++ {
		_ = tok.Terms(benchText)
	}
}

func BenchmarkTokenizeStemStop(b *testing.B) {
	tok := NewTokenizer(WithStemming(), WithStopwords())
	b.ReportAllocs()
	b.SetBytes(int64(len(benchText)))
	for i := 0; i < b.N; i++ {
		_ = tok.Terms(benchText)
	}
}

func BenchmarkPorterStem(b *testing.B) {
	ps := NewPorterStemmer()
	words := []string{"transcription", "regulation", "activities", "binding", "localization", "phosphorylation"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ps.Stem(words[i%len(words)])
	}
}

func BenchmarkFindPhrases(b *testing.B) {
	tok := NewTokenizer()
	toks := tok.Terms(benchText)
	phrases := []string{"rna polymerase ii", "transcription factor", "gene expression"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = FindPhrases(toks, phrases)
	}
}
