package textproc

import "strings"

// NGrams returns all contiguous n-grams of the given length from tokens,
// joined with single spaces. Returns nil when len(tokens) < n or n <= 0.
func NGrams(tokens []string, n int) []string {
	if n <= 0 || len(tokens) < n {
		return nil
	}
	out := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		out = append(out, strings.Join(tokens[i:i+n], " "))
	}
	return out
}

// Phrase is an ordered word sequence with its occurrence positions in a
// token stream. Positions index the first word of each occurrence.
type Phrase struct {
	Words  []string
	Starts []int
}

// Key returns the canonical space-joined form of the phrase.
func (p Phrase) Key() string { return strings.Join(p.Words, " ") }

// FindPhrases locates every occurrence of each query phrase (given as
// space-joined word sequences) in the token stream and returns the phrases
// that occur at least once, with their start positions.
func FindPhrases(tokens []string, phrases []string) []Phrase {
	if len(tokens) == 0 || len(phrases) == 0 {
		return nil
	}
	// Index first words for quick candidate lookup.
	firstIdx := make(map[string][]int)
	for i, t := range tokens {
		firstIdx[t] = append(firstIdx[t], i)
	}
	var out []Phrase
	for _, ph := range phrases {
		words := strings.Fields(ph)
		if len(words) == 0 {
			continue
		}
		var starts []int
		for _, i := range firstIdx[words[0]] {
			if i+len(words) > len(tokens) {
				continue
			}
			match := true
			for j := 1; j < len(words); j++ {
				if tokens[i+j] != words[j] {
					match = false
					break
				}
			}
			if match {
				starts = append(starts, i)
			}
		}
		if len(starts) > 0 {
			out = append(out, Phrase{Words: words, Starts: starts})
		}
	}
	return out
}

// WindowAround returns up to w tokens on each side of the span
// [start, start+length) in tokens, as (left, right) slices. The returned
// slices are copies and safe to retain.
func WindowAround(tokens []string, start, length, w int) (left, right []string) {
	lo := start - w
	if lo < 0 {
		lo = 0
	}
	hi := start + length + w
	if hi > len(tokens) {
		hi = len(tokens)
	}
	left = append([]string(nil), tokens[lo:start]...)
	right = append([]string(nil), tokens[start+length:hi]...)
	return left, right
}
