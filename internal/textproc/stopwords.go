package textproc

import "strings"

// stopwordList is a standard English stopword list (derived from the classic
// SMART/Glasgow lists, trimmed to words that actually appear in scientific
// prose). Kept as a single string so the set is easy to audit.
const stopwordList = `
a about above after again against all also although always am among an and
any are as at be because been before being below between both but by can
cannot could did do does doing down during each either few first for from
further had has have having he her here hers herself him himself his how
however i if in into is it its itself just last latter less may me might
more most must my myself neither no nor not now of off often on once only
onto or other our ours ourselves out over own per rather same second she
should since so some such than that the their theirs them themselves then
there therefore these they third this those through thus to too under until
up upon us very was we well were what when where whether which while who
whom whose why will with within without would yet you your yours yourself
yourselves
`

var stopwordSet = func() map[string]struct{} {
	m := make(map[string]struct{}, 256)
	for _, w := range strings.Fields(stopwordList) {
		m[w] = struct{}{}
	}
	return m
}()

// Stopwords returns a copy of the built-in stopword set. Callers may mutate
// the returned map freely.
func Stopwords() map[string]struct{} {
	m := make(map[string]struct{}, len(stopwordSet))
	for w := range stopwordSet {
		m[w] = struct{}{}
	}
	return m
}
