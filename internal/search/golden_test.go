package search

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// goldenQueries builds a seeded query battery from the fixture's own
// context vocabulary: exact term names, cross-context word mixes, and a few
// fixed phrasings. Every query exercises the full pipeline (selection →
// per-context scoring → merge).
func goldenQueries(f *fixture) []string {
	var names []string
	for _, ctx := range f.scores.Contexts() {
		if t := f.onto.Term(ctx); t != nil {
			names = append(names, t.Name)
		}
		if len(names) >= 12 {
			break
		}
	}
	queries := append([]string(nil), names...)
	// Cross-context mixes: words of two names interleaved select several
	// partially matching contexts at once.
	for i := 0; i+1 < len(names); i += 2 {
		queries = append(queries, names[i]+" "+names[i+1])
	}
	queries = append(queries,
		"regulation of rna protein binding",
		"transport activity complex formation",
		"qqqzzz unknown words", // selects nothing: both paths must agree on nil
	)
	return queries
}

// goldenOptions is the option matrix the battery runs under.
func goldenOptions() []Options {
	return []Options{
		{},
		{MaxContexts: 1},
		{MaxContexts: 4, MinContextMatch: 0.01},
		{MaxContexts: 8, MinContextMatch: 0.01},
		{Threshold: 0.25},
		{Threshold: 0.1, MaxContexts: 6, MinContextMatch: 0.05},
		{Limit: 5},
		{Offset: 3, Limit: 4, MaxContexts: 8, MinContextMatch: 0.01},
		{Offset: 1000}, // past the end: both paths must return an empty page
		{ExpandContexts: true, MinExpandSim: 0.3, MaxContexts: 8, MinContextMatch: 0.01},
	}
}

func diffResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: optimized returned %d results, naive %d\ngot:  %v\nwant: %v",
			label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d differs\ngot:  %+v\nwant: %+v", label, i, got[i], want[i])
		}
	}
}

// TestSearchGoldenEquality asserts the optimized single-pass Search returns
// exactly the same results — documents, scores bit for bit, and maximising
// contexts — as the retained naive per-context reference, across the
// seeded query battery and the full option matrix.
func TestSearchGoldenEquality(t *testing.T) {
	f := buildFixture(t)
	for qi, q := range goldenQueries(f) {
		for oi, opts := range goldenOptions() {
			label := fmt.Sprintf("query %d %q / opts %d %+v", qi, q, oi, opts)
			diffResults(t, label, f.engine.Search(q, opts), f.engine.searchNaive(q, opts))
		}
	}
}

// TestSearchBooleanGoldenEquality is the boolean-query counterpart,
// covering AND/OR/NOT, phrases and field-scoped terms.
func TestSearchBooleanGoldenEquality(t *testing.T) {
	f := buildFixture(t)
	var names []string
	for _, ctx := range f.scores.Contexts() {
		if t := f.onto.Term(ctx); t != nil && len(strings.Fields(t.Name)) >= 2 {
			names = append(names, t.Name)
		}
		if len(names) >= 6 {
			break
		}
	}
	if len(names) < 2 {
		t.Fatal("fixture has too few multi-word context names")
	}
	w := func(n, i int) string { return strings.Fields(names[n])[i] }
	queries := []string{
		w(0, 0) + " AND " + w(0, 1),
		w(0, 0) + " OR " + w(1, 0),
		"(" + w(0, 0) + " OR " + w(1, 0) + ") AND " + w(0, 1),
		w(0, 0) + " AND NOT " + w(1, 1),
		`"` + names[0] + `"`,
		"title:" + w(0, 0) + " " + w(0, 1),
	}
	for qi, q := range queries {
		for oi, opts := range goldenOptions() {
			label := fmt.Sprintf("boolean query %d %q / opts %d %+v", qi, q, oi, opts)
			got, gotErr := f.engine.SearchBoolean(q, opts)
			want, wantErr := f.engine.searchBooleanNaive(q, opts)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s: error mismatch: optimized %v, naive %v", label, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			diffResults(t, label, got, want)
		}
	}
}

// TestSearchConcurrent hammers one engine from many goroutines — the
// accumulator pool, the bitset cache and the per-context worker pool must
// all be safe under concurrent queries (run with -race) and every
// goroutine must see identical results.
func TestSearchConcurrent(t *testing.T) {
	f := buildFixture(t)
	queries := goldenQueries(f)
	opts := Options{MaxContexts: 8, MinContextMatch: 0.01}
	want := make([][]Result, len(queries))
	for i, q := range queries {
		want[i] = f.engine.Search(q, opts)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				i := (g + rep) % len(queries)
				got := f.engine.Search(queries[i], opts)
				if len(got) != len(want[i]) {
					errs <- fmt.Sprintf("goroutine %d: query %q returned %d results, want %d", g, queries[i], len(got), len(want[i]))
					return
				}
				for j := range got {
					if got[j] != want[i][j] {
						errs <- fmt.Sprintf("goroutine %d: query %q result %d differs", g, queries[i], j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
