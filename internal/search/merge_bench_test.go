package search

import (
	"context"
	"testing"

	"ctxsearch/internal/index"
)

// Prestige-heavy merge benchmark: isolates the per-(context, hit) prestige
// lookup that dominates mergeHits when many contexts are selected and the
// hit list is large. The hit list covers every paper of the selected
// contexts' union (threshold 0, no limit), so each of the k context rows
// performs one prestige lookup per hit — the innermost operation the CSR
// prestige matrix replaces two chained map lookups with. BENCH_PR3.json
// records the before/after numbers.

// mergeFixture returns the engine plus a maximal hit list for the bench
// query: every doc in the union of the 8 selected contexts, scored.
func mergeFixture(b *testing.B) (*Engine, []ContextScore, []index.Hit) {
	b.Helper()
	f := buildFixture(b)
	opts := Options{MaxContexts: 8, MinContextMatch: 0.01}
	query := "regulation of rna protein binding transport activity"
	ctxs := f.engine.SelectContexts(query, opts)
	if len(ctxs) == 0 {
		b.Fatal("bench query selects no contexts")
	}
	qv := f.engine.ix.Analyzer().QueryVector(query)
	hits := f.engine.ix.SearchVector(qv, index.Options{WithinSet: f.engine.unionBitset(ctxs)})
	if len(hits) == 0 {
		b.Fatal("bench query has no hits")
	}
	return f.engine, ctxs, hits
}

func BenchmarkMergeHitsPrestige(b *testing.B) {
	e, ctxs, hits := mergeFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := e.mergeHits(ctx, ctxs, hits, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("no merged results")
		}
	}
}

// BenchmarkMergeHitsPrestigeSerial forces the serial scoring path so the
// per-lookup cost is visible without worker-pool scheduling noise.
func BenchmarkMergeHitsPrestigeSerial(b *testing.B) {
	e, ctxs, hits := mergeFixture(b)
	old := parallelMergeThreshold
	parallelMergeThreshold = 1 << 30
	defer func() { parallelMergeThreshold = old }()
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := e.mergeHits(ctx, ctxs, hits, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("no merged results")
		}
	}
}
