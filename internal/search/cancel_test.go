package search

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// multiContextQuery returns a query that selects at least two contexts, so
// the scoring stage has several rows to cancel between.
func multiContextQuery(t *testing.T, f *fixture) string {
	t.Helper()
	var names []string
	for _, ctx := range f.scores.Contexts() {
		if tm := f.onto.Term(ctx); tm != nil {
			names = append(names, tm.Name)
		}
		if len(names) >= 2 {
			break
		}
	}
	if len(names) < 2 {
		t.Fatal("fixture has too few scored contexts")
	}
	q := names[0] + " " + names[1]
	if sel := f.engine.SelectContexts(q, cancelOpts()); len(sel) < 2 {
		t.Skipf("query %q selects only %d contexts", q, len(sel))
	}
	return q
}

func cancelOpts() Options {
	return Options{MaxContexts: 8, MinContextMatch: 0.01}
}

// setScoreRowHook installs a fault-injection hook for the duration of the
// test. Tests using it must not run in parallel (none in this package do).
func setScoreRowHook(t *testing.T, h func()) {
	t.Helper()
	scoreRowHook = h
	t.Cleanup(func() { scoreRowHook = nil })
}

// TestSearchContextMatchesSearch pins the context-threaded path to the
// plain one: with a background context both must return identical results.
func TestSearchContextMatchesSearch(t *testing.T) {
	f := buildFixture(t)
	for _, q := range goldenQueries(f) {
		for _, opts := range goldenOptions() {
			got, err := f.engine.SearchContext(context.Background(), q, opts)
			if err != nil {
				t.Fatalf("SearchContext(%q): %v", q, err)
			}
			diffResults(t, q, got, f.engine.Search(q, opts))
		}
	}
}

// TestSearchCancelledBeforeStart: a context cancelled before the call must
// return ctx.Err() without doing any scoring work.
func TestSearchCancelledBeforeStart(t *testing.T) {
	f := buildFixture(t)
	q := multiContextQuery(t, f)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	setScoreRowHook(t, func() { t.Error("scoring ran under a cancelled context") })
	if res, err := f.engine.SearchContext(ctx, q, cancelOpts()); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("SearchContext = (%v, %v), want (nil, context.Canceled)", res, err)
	}
	if res, err := f.engine.SearchBooleanContext(ctx, q, cancelOpts()); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("SearchBooleanContext = (%v, %v), want (nil, context.Canceled)", res, err)
	}
	if sel, err := f.engine.SelectContextsContext(ctx, q, cancelOpts()); !errors.Is(err, context.Canceled) || sel != nil {
		t.Fatalf("SelectContextsContext = (%v, %v), want (nil, context.Canceled)", sel, err)
	}
}

// TestSearchCancelledMidScoring injects slow per-context scoring, cancels
// while a row is in flight, and requires the search to return
// context.Canceled within 100ms of the cancellation.
func TestSearchCancelledMidScoring(t *testing.T) {
	f := buildFixture(t)
	q := multiContextQuery(t, f)
	started := make(chan struct{}, 16)
	setScoreRowHook(t, func() {
		select {
		case started <- struct{}{}:
		default:
		}
		time.Sleep(30 * time.Millisecond)
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		res []Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := f.engine.SearchContext(ctx, q, cancelOpts())
		done <- outcome{res, err}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("scoring never started")
	}
	cancelledAt := time.Now()
	cancel()
	select {
	case o := <-done:
		if elapsed := time.Since(cancelledAt); elapsed > 100*time.Millisecond {
			t.Fatalf("search returned %v after cancellation (want <100ms)", elapsed)
		}
		if !errors.Is(o.err, context.Canceled) || o.res != nil {
			t.Fatalf("SearchContext = (%v, %v), want (nil, context.Canceled)", o.res, o.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled search never returned")
	}
}

// TestSearchDeadlineExpiry: an expired deadline mid-scoring surfaces as
// context.DeadlineExceeded promptly.
func TestSearchDeadlineExpiry(t *testing.T) {
	f := buildFixture(t)
	q := multiContextQuery(t, f)
	setScoreRowHook(t, func() { time.Sleep(15 * time.Millisecond) })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := f.engine.SearchContext(ctx, q, cancelOpts())
	if !errors.Is(err, context.DeadlineExceeded) || res != nil {
		t.Fatalf("SearchContext = (%v, %v), want (nil, context.DeadlineExceeded)", res, err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("deadline-expired search took %v", elapsed)
	}
}

// TestCancelledBurstNoGoroutineLeak forces the worker-pool path, fires a
// concurrent burst of searches whose contexts are cancelled mid-flight, and
// requires the goroutine count to settle back to baseline ±2 — the pool
// must always drain.
func TestCancelledBurstNoGoroutineLeak(t *testing.T) {
	f := buildFixture(t)
	q := multiContextQuery(t, f)
	old := parallelMergeThreshold
	parallelMergeThreshold = 0 // force the pool even on the small fixture
	t.Cleanup(func() { parallelMergeThreshold = old })
	setScoreRowHook(t, func() { time.Sleep(2 * time.Millisecond) })

	baseline := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+g%5)*time.Millisecond)
				_, _ = f.engine.SearchContext(ctx, q, cancelOpts())
				cancel()
			}
		}(g)
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBooleanSearchCancelledMidScoring is the boolean-path counterpart of
// the mid-scoring cancellation test.
func TestBooleanSearchCancelledMidScoring(t *testing.T) {
	f := buildFixture(t)
	q := multiContextQuery(t, f)
	started := make(chan struct{}, 16)
	setScoreRowHook(t, func() {
		select {
		case started <- struct{}{}:
		default:
		}
		time.Sleep(30 * time.Millisecond)
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := f.engine.SearchBooleanContext(ctx, q, cancelOpts())
		errc <- err
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Skip("boolean query produced no scoring work")
	}
	cancelledAt := time.Now()
	cancel()
	select {
	case err := <-errc:
		if elapsed := time.Since(cancelledAt); elapsed > 100*time.Millisecond {
			t.Fatalf("boolean search returned %v after cancellation", elapsed)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled boolean search never returned")
	}
}
