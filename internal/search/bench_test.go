// Query-path benchmarks at the reduced experiments.BenchScale(): context
// selection and full context-based search at several fan-out widths (k
// selected contexts). BENCH_PR1.json records the before/after numbers of
// the PR-1 query-path overhaul measured with these benchmarks.
package search_test

import (
	"sync"
	"testing"

	"ctxsearch"
	"ctxsearch/internal/experiments"
)

var (
	benchOnce sync.Once
	benchEng  *ctxsearch.Engine
	benchErr  error
)

// benchQuery is broad on purpose: its vocabulary overlaps many generated
// term names, so SelectContexts has real candidate-ranking work to do and
// MaxContexts=k genuinely controls the per-query fan-out.
const benchQuery = "regulation of rna protein binding transport activity"

func benchEngine(b *testing.B) *ctxsearch.Engine {
	b.Helper()
	benchOnce.Do(func() {
		scale := experiments.BenchScale()
		cfg := ctxsearch.DefaultConfig()
		cfg.Seed = scale.Seed
		cfg.Papers = scale.Papers
		cfg.OntologyTerms = scale.Terms
		sys, err := ctxsearch.NewSyntheticSystem(cfg)
		if err != nil {
			benchErr = err
			return
		}
		cs := sys.BuildTextContextSet()
		benchEng = sys.Engine(cs, sys.ScoreText(cs))
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEng
}

// benchOpts selects exactly k contexts for benchQuery.
func benchOpts(b *testing.B, e *ctxsearch.Engine, k int) ctxsearch.SearchOptions {
	b.Helper()
	opts := ctxsearch.SearchOptions{MaxContexts: k, MinContextMatch: 0.01}
	if got := len(e.SelectContexts(benchQuery, opts)); got != k {
		b.Fatalf("benchmark query selects %d contexts, want %d", got, k)
	}
	return opts
}

func BenchmarkSelectContexts(b *testing.B) {
	e := benchEngine(b)
	opts := ctxsearch.SearchOptions{MinContextMatch: 0.01}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(e.SelectContexts(benchQuery, opts)) == 0 {
			b.Fatal("no contexts selected")
		}
	}
}

func benchmarkEngineSearch(b *testing.B, k int) {
	e := benchEngine(b)
	opts := benchOpts(b, e, k)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(e.Search(benchQuery, opts)) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkEngineSearch1(b *testing.B) { benchmarkEngineSearch(b, 1) }
func BenchmarkEngineSearch4(b *testing.B) { benchmarkEngineSearch(b, 4) }
func BenchmarkEngineSearch8(b *testing.B) { benchmarkEngineSearch(b, 8) }

// benchmarkEngineSearchTopK measures the bounded-selection merge: the
// same 8-context query as BenchmarkEngineSearch8, but asking for one
// page instead of the full ranked list. The exhaustive baseline for
// BENCH_PR5.json is BenchmarkEngineSearch8 (Limit 0).
func benchmarkEngineSearchTopK(b *testing.B, limit int) {
	e := benchEngine(b)
	opts := benchOpts(b, e, 8)
	opts.Limit = limit
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(e.Search(benchQuery, opts)) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkEngineSearchTop10(b *testing.B)  { benchmarkEngineSearchTopK(b, 10) }
func BenchmarkEngineSearchTop100(b *testing.B) { benchmarkEngineSearchTopK(b, 100) }

func BenchmarkEngineSearchBoolean(b *testing.B) {
	e := benchEngine(b)
	opts := benchOpts(b, e, 4)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := e.SearchBoolean("regulation AND (rna OR protein) binding", opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("no results")
		}
	}
}
