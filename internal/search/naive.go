package search

import (
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
	"ctxsearch/internal/prestige"
)

// This file retains the straightforward per-context formulation of
// Search/SearchBoolean that the optimized single-pass implementation in
// search.go replaced: one full index pass per selected context with a
// map-based Within filter, merged through a map keyed by paper. It is the
// executable specification — the golden tests assert the optimized path
// returns exactly the same results — and the honest baseline for the
// query-path benchmarks. It is not wired into any production caller.

// refScores returns the map-form scores the reference implementation reads:
// the map the engine was built from, or (for engines built from a frozen
// matrix) a thawed copy — so naive-vs-optimized comparisons are always a
// genuine map-vs-matrix comparison.
func (e *Engine) refScores() prestige.Scores {
	if e.scores != nil {
		return e.scores
	}
	return e.matrix.Thaw()
}

// searchNaive is the reference implementation of Search.
func (e *Engine) searchNaive(query string, opts Options) []Result {
	ctxs := e.SelectContexts(query, opts)
	if len(ctxs) == 0 {
		return nil
	}
	scores := e.refScores()
	qv := e.ix.Analyzer().QueryVector(query)
	best := make(map[corpus.PaperID]Result)
	for _, cscore := range ctxs {
		ctx := cscore.Context
		within := e.cs.PaperSet(ctx)
		hits := e.ix.SearchVector(qv, index.Options{Within: within})
		for _, h := range hits {
			p := scores.Get(ctx, h.Doc)
			if e.weights.ContextWeighted {
				p *= cscore.Score
			}
			r := e.weights.Prestige*p + e.weights.Matching*h.Score
			if r < opts.Threshold {
				continue
			}
			if cur, ok := best[h.Doc]; !ok || r > cur.Relevancy {
				best[h.Doc] = Result{Doc: h.Doc, Relevancy: r, Match: h.Score, Prestige: p, Context: ctx}
			}
		}
	}
	out := make([]Result, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	SortResults(out)
	return Paginate(out, opts)
}

// searchBooleanNaive is the reference implementation of SearchBoolean.
func (e *Engine) searchBooleanNaive(query string, opts Options) ([]Result, error) {
	q, err := e.ix.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	ctxs := e.SelectContexts(query, opts)
	if len(ctxs) == 0 {
		return nil, nil
	}
	scores := e.refScores()
	best := make(map[corpus.PaperID]Result)
	for _, cscore := range ctxs {
		ctx := cscore.Context
		within := e.cs.PaperSet(ctx)
		hits, err := e.ix.SearchQuery(q, index.Options{Within: within})
		if err != nil {
			return nil, err
		}
		for _, h := range hits {
			p := scores.Get(ctx, h.Doc)
			if e.weights.ContextWeighted {
				p *= cscore.Score
			}
			r := e.weights.Prestige*p + e.weights.Matching*h.Score
			if r < opts.Threshold {
				continue
			}
			if cur, ok := best[h.Doc]; !ok || r > cur.Relevancy {
				best[h.Doc] = Result{Doc: h.Doc, Relevancy: r, Match: h.Score, Prestige: p, Context: ctx}
			}
		}
	}
	out := make([]Result, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	SortResults(out)
	return Paginate(out, opts), nil
}
