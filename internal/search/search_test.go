package search

import (
	"testing"

	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
)

type fixture struct {
	onto   *ontology.Ontology
	c      *corpus.Corpus
	ix     *index.Index
	cs     *contextset.ContextSet
	scores prestige.Scores
	engine *Engine
}

var cached *fixture

func buildFixture(t testing.TB) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	o, err := ontology.Generate(ontology.GenConfig{Seed: 6, NumTerms: 60, MaxDepth: 6, SecondParentProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(250))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	ix := index.Build(a)
	cs := contextset.BuildTextBased(a, o, contextset.DefaultConfig())
	scorer := prestige.NewTextScorer(a, prestige.DefaultTextWeights())
	scores := prestige.ScoreAll(scorer, cs, 0)
	prestige.PropagateMax(o, scores)
	cached = &fixture{
		onto: o, c: c, ix: ix, cs: cs, scores: scores,
		engine: NewEngine(ix, cs, scores, DefaultWeights()),
	}
	return cached
}

// queryForSomeContext returns a scored context's term name to use as query.
func queryForSomeContext(t *testing.T, f *fixture) (string, ontology.TermID) {
	t.Helper()
	for _, ctx := range f.scores.Contexts() {
		if f.cs.Size(ctx) >= 5 {
			return f.onto.Term(ctx).Name, ctx
		}
	}
	t.Fatal("no usable context")
	return "", ""
}

func TestSelectContexts(t *testing.T) {
	f := buildFixture(t)
	name, ctx := queryForSomeContext(t, f)
	sel := f.engine.SelectContexts(name, Options{})
	if len(sel) == 0 {
		t.Fatalf("no contexts selected for %q", name)
	}
	found := false
	for _, cs := range sel {
		if cs.Context == ctx {
			found = true
		}
		if cs.Score <= 0 || cs.Score > 1 {
			t.Fatalf("context score out of range: %v", cs)
		}
	}
	if !found {
		t.Fatalf("exact-name query did not select its context %s: %v", ctx, sel)
	}
	// Scores sorted descending.
	for i := 1; i < len(sel); i++ {
		if sel[i].Score > sel[i-1].Score {
			t.Fatal("selected contexts not sorted")
		}
	}
	// Exact name must rank its context first or near-first (ties possible
	// with sibling names).
	if sel[0].Score < 0.99 && sel[0].Context != ctx {
		// The queried context must at least share the top score.
		if sel[0].Score > f.engine.scoreFor(ctx, name) {
			t.Logf("note: another context outranked the exact match: %v", sel[0])
		}
	}
}

// scoreFor is a test helper exposing the selection score of one context.
func (e *Engine) scoreFor(ctx ontology.TermID, query string) float64 {
	for _, cs := range e.SelectContexts(query, Options{MaxContexts: 1 << 20, MinContextMatch: 1e-9}) {
		if cs.Context == ctx {
			return cs.Score
		}
	}
	return 0
}

func TestSelectContextsEmptyQuery(t *testing.T) {
	f := buildFixture(t)
	if sel := f.engine.SelectContexts("", Options{}); sel != nil {
		t.Fatalf("empty query selected %v", sel)
	}
	if sel := f.engine.SelectContexts("qqqzzzxxx totally alien", Options{}); len(sel) != 0 {
		t.Fatalf("alien query selected %v", sel)
	}
}

func TestSelectContextsMaxContexts(t *testing.T) {
	f := buildFixture(t)
	name, _ := queryForSomeContext(t, f)
	sel := f.engine.SelectContexts(name, Options{MaxContexts: 2, MinContextMatch: 0.01})
	if len(sel) > 2 {
		t.Fatalf("cap violated: %v", sel)
	}
}

func TestSearchBasics(t *testing.T) {
	f := buildFixture(t)
	name, _ := queryForSomeContext(t, f)
	results := f.engine.Search(name, Options{})
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for i, r := range results {
		if r.Relevancy < 0 || r.Relevancy > 1.0000001 {
			t.Fatalf("relevancy out of range: %+v", r)
		}
		if i > 0 && r.Relevancy > results[i-1].Relevancy {
			t.Fatal("results not sorted by relevancy")
		}
		// Relevancy must equal the weighted combination.
		w := DefaultWeights()
		want := w.Prestige*r.Prestige + w.Matching*r.Match
		if diff := r.Relevancy - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("relevancy %v != %v", r.Relevancy, want)
		}
		// Every result must belong to its winning context.
		if !f.cs.Contains(r.Context, r.Doc) {
			t.Fatalf("result %d not in winning context %s", r.Doc, r.Context)
		}
	}
}

func TestSearchThresholdAndLimit(t *testing.T) {
	f := buildFixture(t)
	name, _ := queryForSomeContext(t, f)
	all := f.engine.Search(name, Options{})
	if len(all) < 2 {
		t.Skip("not enough results to test limits")
	}
	limited := f.engine.Search(name, Options{Limit: 1})
	if len(limited) != 1 || limited[0].Doc != all[0].Doc {
		t.Fatalf("limit broken: %v vs %v", limited, all[0])
	}
	thresh := all[0].Relevancy + 0.01
	strict := f.engine.Search(name, Options{Threshold: thresh})
	if len(strict) != 0 {
		t.Fatalf("threshold above max returned %v", strict)
	}
	mid := all[len(all)/2].Relevancy
	partial := f.engine.Search(name, Options{Threshold: mid})
	for _, r := range partial {
		if r.Relevancy < mid {
			t.Fatalf("threshold leak: %v < %v", r.Relevancy, mid)
		}
	}
}

func TestSearchReducesOutputSize(t *testing.T) {
	// The headline claim of [2]: context-based search output is smaller
	// than whole-corpus keyword search output because only papers in
	// selected contexts participate.
	f := buildFixture(t)
	name, _ := queryForSomeContext(t, f)
	ctxResults := f.engine.Search(name, Options{})
	baseline := BaselineTFIDF(f.ix, name, 0, 0)
	if len(ctxResults) > len(baseline) {
		t.Fatalf("context search (%d) larger than baseline (%d)", len(ctxResults), len(baseline))
	}
}

func TestBaselinePubMedOrder(t *testing.T) {
	f := buildFixture(t)
	name, _ := queryForSomeContext(t, f)
	ids := BaselinePubMed(f.ix, name)
	if len(ids) == 0 {
		t.Fatal("baseline returned nothing")
	}
	for i := 1; i < len(ids); i++ {
		if f.c.Paper(ids[i]).PMID > f.c.Paper(ids[i-1]).PMID {
			t.Fatal("PubMed baseline not in descending PMID order")
		}
	}
}

func TestSearchNoContexts(t *testing.T) {
	f := buildFixture(t)
	if got := f.engine.Search("qqqzzz unknown words", Options{}); got != nil {
		t.Fatalf("alien query returned %v", got)
	}
}
