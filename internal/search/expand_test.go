package search

import (
	"testing"
)

func TestExpandContextsAddsRelatives(t *testing.T) {
	f := buildFixture(t)
	name, ctx := queryForSomeContext(t, f)
	plain := f.engine.SelectContexts(name, Options{MaxContexts: 50})
	expanded := f.engine.SelectContexts(name, Options{MaxContexts: 50, ExpandContexts: true, MinExpandSim: 0.3})
	if len(expanded) < len(plain) {
		t.Fatalf("expansion shrank the selection: %d < %d", len(expanded), len(plain))
	}
	// The anchor context must still be present, and expansion must never
	// put an expanded context above the top direct match.
	if expanded[0].Context != plain[0].Context {
		t.Fatalf("expansion displaced the top match: %v vs %v", expanded[0], plain[0])
	}
	_ = ctx
	// All scores remain in (0,1].
	for _, cs := range expanded {
		if cs.Score <= 0 || cs.Score > 1 {
			t.Fatalf("expanded score out of range: %v", cs)
		}
	}
}

func TestExpandContextsSearchStillWorks(t *testing.T) {
	f := buildFixture(t)
	name, _ := queryForSomeContext(t, f)
	results := f.engine.Search(name, Options{ExpandContexts: true, MinExpandSim: 0.4})
	if len(results) == 0 {
		t.Fatal("expanded search returned nothing")
	}
	for i := 1; i < len(results); i++ {
		if results[i].Relevancy > results[i-1].Relevancy {
			t.Fatal("expanded results not sorted")
		}
	}
}

func TestContextWeightedToggle(t *testing.T) {
	f := buildFixture(t)
	name, _ := queryForSomeContext(t, f)
	literal := NewEngine(f.ix, f.cs, f.scores, Weights{Prestige: 0.5, Matching: 0.5, ContextWeighted: false})
	weighted := NewEngine(f.ix, f.cs, f.scores, Weights{Prestige: 0.5, Matching: 0.5, ContextWeighted: true})
	rl := literal.Search(name, Options{})
	rw := weighted.Search(name, Options{})
	if len(rl) == 0 || len(rw) == 0 {
		t.Skip("no results to compare")
	}
	// The literal engine's relevancy for a given doc is ≥ the weighted
	// one's (context score ≤ 1 only shrinks the prestige term).
	wByDoc := map[int]float64{}
	for _, r := range rw {
		wByDoc[int(r.Doc)] = r.Relevancy
	}
	for _, r := range rl {
		if w, ok := wByDoc[int(r.Doc)]; ok && w > r.Relevancy+1e-9 {
			t.Fatalf("weighted relevancy exceeds literal for doc %d: %v > %v", r.Doc, w, r.Relevancy)
		}
	}
}

func TestSearchOffsetPagination(t *testing.T) {
	f := buildFixture(t)
	name, _ := queryForSomeContext(t, f)
	all := f.engine.Search(name, Options{})
	if len(all) < 3 {
		t.Skip("not enough results")
	}
	page2 := f.engine.Search(name, Options{Offset: 2, Limit: 2})
	if len(page2) == 0 || page2[0].Doc != all[2].Doc {
		t.Fatalf("offset pagination broken: %v vs %v", page2, all[2])
	}
	// Offset beyond the result set returns an empty page — non-nil, so
	// the API layer encodes a valid empty page rather than null.
	if got := f.engine.Search(name, Options{Offset: len(all) + 5}); got == nil || len(got) != 0 {
		t.Fatalf("oversized offset returned %v, want empty non-nil page", got)
	}
}

func TestSearchBoolean(t *testing.T) {
	f := buildFixture(t)
	name, _ := queryForSomeContext(t, f)
	plain := f.engine.Search(name, Options{})
	if len(plain) == 0 {
		t.Skip("no plain results")
	}
	// The same words as an AND query: results must be a subset of the
	// plain (OR-ish vector) search and still sorted.
	boolResults, err := f.engine.SearchBoolean(name, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plainSet := map[int]bool{}
	for _, r := range plain {
		plainSet[int(r.Doc)] = true
	}
	for i, r := range boolResults {
		if !plainSet[int(r.Doc)] {
			t.Fatalf("boolean result %d not in plain results", r.Doc)
		}
		if i > 0 && r.Relevancy > boolResults[i-1].Relevancy {
			t.Fatal("boolean results not sorted")
		}
	}
	// A NOT clause prunes.
	if len(boolResults) > 0 {
		firstWord := f.ix.Analyzer().Tokenizer().Terms(name)[0]
		pruned, err := f.engine.SearchBoolean(name+" AND NOT "+firstWord, Options{})
		if err == nil && len(pruned) >= len(boolResults) && len(boolResults) > 0 {
			t.Fatalf("NOT clause did not prune: %d vs %d", len(pruned), len(boolResults))
		}
	}
	// Unparsable queries error.
	if _, err := f.engine.SearchBoolean("(((", Options{}); err == nil {
		t.Fatal("bad query must error")
	}
}
