// Package search implements tasks 3–5 of the context-based paradigm: locate
// search contexts for a keyword query, search within the selected contexts,
// and rank the merged results by relevancy
//
//	R(p, q, ci) = w_prestige·Prestige_Score(p, ci) + w_matching·Text_Matching_Score(p, q)
//
// plus the plain keyword-search baselines the paper compares against
// (PubMed-style unranked listing and TF-IDF ranking over the whole corpus).
package search

import (
	"sort"

	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
)

// Weights combine prestige and text-matching into the relevancy score.
type Weights struct {
	Prestige float64
	Matching float64
	// ContextWeighted multiplies the prestige term by the context's
	// selection score before merging, so prestige earned in a weakly
	// matching context cannot dominate the merged result list. The paper
	// leaves the merge step unspecified; this is our resolution (disable
	// for the literal R formula).
	ContextWeighted bool
}

// DefaultWeights returns the relevancy weights used by the experiments.
func DefaultWeights() Weights {
	return Weights{Prestige: 0.5, Matching: 0.5, ContextWeighted: true}
}

// Options configure one search invocation.
type Options struct {
	// Threshold drops results with relevancy below it.
	Threshold float64
	// Limit caps the number of results (0 = unlimited); Offset skips the
	// first N results (pagination).
	Limit  int
	Offset int
	// MaxContexts caps how many contexts are selected for the query
	// (0 = default 8).
	MaxContexts int
	// MinContextMatch is the minimum query↔term-name overlap for a context
	// to be selected (0 = default 0.2).
	MinContextMatch float64
	// ExpandContexts additionally selects contexts semantically close (Lin
	// similarity) to the best word-overlap match — users phrasing a concept
	// without its exact term words still reach the right subtree.
	ExpandContexts bool
	// MinExpandSim is the Lin similarity floor for expansion (0 = 0.5).
	MinExpandSim float64
}

// Result is one ranked search result.
type Result struct {
	Doc corpus.PaperID
	// Relevancy is the combined score R(p, q, ci) maximised over the
	// selected contexts containing the paper.
	Relevancy float64
	// Match and Prestige are the components at the maximising context;
	// Prestige is the effective value (context-weighted when the engine's
	// Weights.ContextWeighted is set).
	Match    float64
	Prestige float64
	// Context is the maximising context.
	Context ontology.TermID
}

// Engine is the context-based search engine. Construct with NewEngine after
// prestige scores have been computed for the context set.
type Engine struct {
	ix      *index.Index
	cs      *contextset.ContextSet
	scores  prestige.Scores
	weights Weights
	// termTokens caches tokenized term names for context selection.
	termTokens map[ontology.TermID][]string
}

// NewEngine assembles an engine from an index, a context paper set and the
// prestige scores computed over it.
func NewEngine(ix *index.Index, cs *contextset.ContextSet, scores prestige.Scores, w Weights) *Engine {
	e := &Engine{
		ix:         ix,
		cs:         cs,
		scores:     scores,
		weights:    w,
		termTokens: make(map[ontology.TermID][]string),
	}
	tok := ix.Analyzer().Tokenizer()
	for ctx := range scores {
		if t := cs.Ontology().Term(ctx); t != nil {
			e.termTokens[ctx] = tok.Terms(t.Name)
		}
	}
	return e
}

// ContextScore is a candidate context for a query.
type ContextScore struct {
	Context ontology.TermID
	Score   float64
}

// SelectContexts implements task 3: rank scored contexts by the overlap of
// the query words with the context term's name (Jaccard over stemmed
// words), returning those above MinContextMatch, best first, capped at
// MaxContexts.
func (e *Engine) SelectContexts(query string, opts Options) []ContextScore {
	maxCtx := opts.MaxContexts
	if maxCtx <= 0 {
		maxCtx = 8
	}
	minMatch := opts.MinContextMatch
	if minMatch <= 0 {
		minMatch = 0.2
	}
	qWords := e.ix.Analyzer().Tokenizer().Terms(query)
	if len(qWords) == 0 {
		return nil
	}
	qSet := make(map[string]bool, len(qWords))
	for _, w := range qWords {
		qSet[w] = true
	}
	var cands []ContextScore
	for ctx, words := range e.termTokens {
		inter := 0
		seen := map[string]bool{}
		for _, w := range words {
			if qSet[w] && !seen[w] {
				inter++
				seen[w] = true
			}
		}
		if inter == 0 {
			continue
		}
		// Jaccard: |q ∩ name| / |q ∪ name| over distinct stemmed words.
		distinctName := map[string]bool{}
		for _, w := range words {
			distinctName[w] = true
		}
		union := len(qSet) + len(distinctName) - inter
		score := float64(inter) / float64(union)
		if score >= minMatch {
			cands = append(cands, ContextScore{ctx, score})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Context < cands[j].Context
	})
	if opts.ExpandContexts && len(cands) > 0 {
		cands = e.expandSemantically(cands, opts)
	}
	if len(cands) > maxCtx {
		cands = cands[:maxCtx]
	}
	return cands
}

// expandSemantically adds scored contexts semantically close to the best
// word-overlap match, scored by Lin similarity damped below the anchor's
// score so expansions never outrank direct matches.
func (e *Engine) expandSemantically(cands []ContextScore, opts Options) []ContextScore {
	minSim := opts.MinExpandSim
	if minSim <= 0 {
		minSim = 0.5
	}
	anchor := cands[0]
	have := make(map[ontology.TermID]bool, len(cands))
	for _, c := range cands {
		have[c.Context] = true
	}
	onto := e.cs.Ontology()
	var extra []ContextScore
	for ctx := range e.termTokens {
		if have[ctx] {
			continue
		}
		if lin := onto.LinSimilarity(anchor.Context, ctx); lin >= minSim {
			extra = append(extra, ContextScore{ctx, anchor.Score * lin * 0.9})
		}
	}
	sort.Slice(extra, func(i, j int) bool {
		if extra[i].Score != extra[j].Score {
			return extra[i].Score > extra[j].Score
		}
		return extra[i].Context < extra[j].Context
	})
	out := append(cands, extra...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// Search implements tasks 4 and 5: keyword search inside each selected
// context, relevancy scoring, and merging into a single ranked result set
// (per paper, the maximising context wins).
func (e *Engine) Search(query string, opts Options) []Result {
	ctxs := e.SelectContexts(query, opts)
	if len(ctxs) == 0 {
		return nil
	}
	qv := e.ix.Analyzer().QueryVector(query)
	best := make(map[corpus.PaperID]Result)
	for _, cscore := range ctxs {
		ctx := cscore.Context
		within := e.cs.PaperSet(ctx)
		hits := e.ix.SearchVector(qv, index.Options{Within: within})
		for _, h := range hits {
			p := e.scores.Get(ctx, h.Doc)
			if e.weights.ContextWeighted {
				p *= cscore.Score
			}
			r := e.weights.Prestige*p + e.weights.Matching*h.Score
			if r < opts.Threshold {
				continue
			}
			if cur, ok := best[h.Doc]; !ok || r > cur.Relevancy {
				best[h.Doc] = Result{Doc: h.Doc, Relevancy: r, Match: h.Score, Prestige: p, Context: ctx}
			}
		}
	}
	out := make([]Result, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Relevancy != out[j].Relevancy {
			return out[i].Relevancy > out[j].Relevancy
		}
		return out[i].Doc < out[j].Doc
	})
	if opts.Offset > 0 {
		if opts.Offset >= len(out) {
			return nil
		}
		out = out[opts.Offset:]
	}
	if opts.Limit > 0 && len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	return out
}

// SearchBoolean runs a context-based search with a boolean query (the
// index package's AND/OR/NOT/"phrase"/field:term language): context
// selection and the text-matching score use the query's positive terms,
// while the boolean structure filters candidates inside each selected
// context. Returns an error for unparsable or purely negative queries.
func (e *Engine) SearchBoolean(query string, opts Options) ([]Result, error) {
	q, err := e.ix.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	ctxs := e.SelectContexts(query, opts)
	if len(ctxs) == 0 {
		return nil, nil
	}
	best := make(map[corpus.PaperID]Result)
	for _, cscore := range ctxs {
		ctx := cscore.Context
		within := e.cs.PaperSet(ctx)
		hits, err := e.ix.SearchQuery(q, index.Options{Within: within})
		if err != nil {
			return nil, err
		}
		for _, h := range hits {
			p := e.scores.Get(ctx, h.Doc)
			if e.weights.ContextWeighted {
				p *= cscore.Score
			}
			r := e.weights.Prestige*p + e.weights.Matching*h.Score
			if r < opts.Threshold {
				continue
			}
			if cur, ok := best[h.Doc]; !ok || r > cur.Relevancy {
				best[h.Doc] = Result{Doc: h.Doc, Relevancy: r, Match: h.Score, Prestige: p, Context: ctx}
			}
		}
	}
	out := make([]Result, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Relevancy != out[j].Relevancy {
			return out[i].Relevancy > out[j].Relevancy
		}
		return out[i].Doc < out[j].Doc
	})
	if opts.Offset > 0 {
		if opts.Offset >= len(out) {
			return nil, nil
		}
		out = out[opts.Offset:]
	}
	if opts.Limit > 0 && len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	return out, nil
}

// BaselineTFIDF is the whole-corpus TF-IDF ranked keyword search (the
// "simple text-based score" of ACM Portal / Google Scholar in the paper's
// intro).
func BaselineTFIDF(ix *index.Index, query string, threshold float64, limit int) []index.Hit {
	return ix.Search(query, index.Options{Threshold: threshold, Limit: limit})
}

// BaselinePubMed mimics PubMed's behaviour in the paper's intro: all
// keyword matches (any positive cosine), listed in descending PMID order —
// no relevance ranking at all.
func BaselinePubMed(ix *index.Index, query string) []corpus.PaperID {
	hits := ix.Search(query, index.Options{})
	out := make([]corpus.PaperID, len(hits))
	for i, h := range hits {
		out[i] = h.Doc
	}
	c := ix.Analyzer().Corpus()
	sort.Slice(out, func(i, j int) bool {
		return c.Paper(out[i]).PMID > c.Paper(out[j]).PMID
	})
	return out
}
