// Package search implements tasks 3–5 of the context-based paradigm: locate
// search contexts for a keyword query, search within the selected contexts,
// and rank the merged results by relevancy
//
//	R(p, q, ci) = w_prestige·Prestige_Score(p, ci) + w_matching·Text_Matching_Score(p, q)
//
// plus the plain keyword-search baselines the paper compares against
// (PubMed-style unranked listing and TF-IDF ranking over the whole corpus).
//
// The query hot path is engineered for throughput: context selection walks
// an inverted token→contexts map (only contexts sharing a query token are
// visited), and Search/SearchBoolean score the union of the selected
// contexts' paper bitsets in a single index pass, distributing each hit to
// its contexts by O(1) bitset membership and fanning the per-context
// relevancy computation over a worker pool. Results are identical to the
// retained naive per-context implementation (see naive.go and the golden
// tests).
package search

import (
	"cmp"
	"context"
	"runtime"
	"slices"
	"sort"
	"sync"

	"ctxsearch/internal/bitset"
	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
	"ctxsearch/internal/topk"
)

// parallelMergeThreshold is the ctxs×hits work size below which per-context
// scoring stays serial (the goroutine overhead isn't worth it). It is a
// variable rather than a constant so the fault-injection tests can force
// the worker-pool path on small fixtures.
var parallelMergeThreshold = 4096

// scoreRowHook, when non-nil, runs before each per-context scoring row.
// It is a fault-injection point for the cancellation tests (simulated slow
// scoring); production code never sets it.
var scoreRowHook func()

// topkChunk is the minimum hit-window size of the bounded top-k merge.
// A variable so tests can shrink it and exercise multi-window runs (and
// the early-termination break) on small fixtures.
var topkChunk = 256

// Weights combine prestige and text-matching into the relevancy score.
type Weights struct {
	Prestige float64
	Matching float64
	// ContextWeighted multiplies the prestige term by the context's
	// selection score before merging, so prestige earned in a weakly
	// matching context cannot dominate the merged result list. The paper
	// leaves the merge step unspecified; this is our resolution (disable
	// for the literal R formula).
	ContextWeighted bool
}

// DefaultWeights returns the relevancy weights used by the experiments.
func DefaultWeights() Weights {
	return Weights{Prestige: 0.5, Matching: 0.5, ContextWeighted: true}
}

// Options configure one search invocation.
type Options struct {
	// Threshold drops results with relevancy below it.
	Threshold float64
	// Limit caps the number of results (0 = unlimited); Offset skips the
	// first N results (pagination).
	Limit  int
	Offset int
	// MaxContexts caps how many contexts are selected for the query
	// (0 = default 8).
	MaxContexts int
	// MinContextMatch is the minimum query↔term-name overlap for a context
	// to be selected (0 = default 0.2).
	MinContextMatch float64
	// ExpandContexts additionally selects contexts semantically close (Lin
	// similarity) to the best word-overlap match — users phrasing a concept
	// without its exact term words still reach the right subtree.
	ExpandContexts bool
	// MinExpandSim is the Lin similarity floor for expansion (0 = 0.5).
	MinExpandSim float64
}

// Result is one ranked search result.
type Result struct {
	Doc corpus.PaperID
	// Relevancy is the combined score R(p, q, ci) maximised over the
	// selected contexts containing the paper.
	Relevancy float64
	// Match and Prestige are the components at the maximising context;
	// Prestige is the effective value (context-weighted when the engine's
	// Weights.ContextWeighted is set).
	Match    float64
	Prestige float64
	// Context is the maximising context.
	Context ontology.TermID
}

// Engine is the context-based search engine. Construct with NewEngine after
// prestige scores have been computed for the context set.
type Engine struct {
	ix *index.Index
	cs *contextset.ContextSet
	// matrix is the frozen CSR prestige matrix the hot path reads: one
	// packed run per context, resolved once per merge row, each hit looked
	// up by binary search over int32 doc IDs instead of two chained map
	// lookups.
	matrix *prestige.Matrix
	// scores is the map form the engine was built from, retained only for
	// the naive reference implementation (nil when built via
	// NewEngineFrozen; production paths never read it).
	scores  prestige.Scores
	weights Weights
	// termTokens caches tokenized term names for context selection.
	termTokens map[ontology.TermID][]string
	// tokenCtxs inverts termTokens: for every distinct token of a term
	// name, the contexts whose name contains it (sorted by term ID).
	// SelectContexts only visits contexts sharing ≥1 query token instead
	// of scanning every scored context.
	tokenCtxs map[string][]ontology.TermID
	// distinctTokens caches |distinct name tokens| per context — the
	// Jaccard denominator piece that used to be recomputed per query.
	distinctTokens map[ontology.TermID]int
	// mergePool recycles mergeHits' scratch buffers (the partial-score slab
	// and the dense doc→hit table) across queries.
	mergePool sync.Pool
}

// mergeScratch is the reusable per-merge arena: one flat slab backing all
// per-context partial rows, and a dense doc→(hit index+1) table through
// which each context's CSR run is scattered — O(1) per run entry instead of
// one binary search per (context, hit) pair. The table is sparsely reset
// (only the hit docs are zeroed) when the merge returns it to the pool.
type mergeScratch struct {
	rows  []float64
	hitOf []int32
}

// NewEngine assembles an engine from an index, a context paper set and the
// prestige scores computed over it. The map form is frozen into the CSR
// matrix the query path reads; the map itself is kept only as the naive
// reference's score source.
func NewEngine(ix *index.Index, cs *contextset.ContextSet, scores prestige.Scores, w Weights) *Engine {
	e := NewEngineFrozen(ix, cs, scores.Freeze(), w)
	e.scores = scores
	return e
}

// NewEngineFrozen assembles an engine directly from a frozen prestige
// matrix — the cold-start path when the matrix was loaded from a v2 state
// file, skipping the freeze entirely.
func NewEngineFrozen(ix *index.Index, cs *contextset.ContextSet, matrix *prestige.Matrix, w Weights) *Engine {
	e := &Engine{
		ix:             ix,
		cs:             cs,
		matrix:         matrix,
		weights:        w,
		termTokens:     make(map[ontology.TermID][]string),
		tokenCtxs:      make(map[string][]ontology.TermID),
		distinctTokens: make(map[ontology.TermID]int),
	}
	tok := ix.Analyzer().Tokenizer()
	for _, ctx := range matrix.Contexts() {
		if t := cs.Ontology().Term(ctx); t != nil {
			words := tok.Terms(t.Name)
			e.termTokens[ctx] = words
			seen := make(map[string]bool, len(words))
			for _, w := range words {
				if !seen[w] {
					seen[w] = true
					e.tokenCtxs[w] = append(e.tokenCtxs[w], ctx)
				}
			}
			e.distinctTokens[ctx] = len(seen)
		}
	}
	for _, ctxs := range e.tokenCtxs {
		sort.Slice(ctxs, func(i, j int) bool { return ctxs[i] < ctxs[j] })
	}
	return e
}

// SetTopKWorkers sets the underlying index's default intra-query
// parallelism for bounded top-k queries (see index.Options.TopKWorkers).
// Call before serving queries.
func (e *Engine) SetTopKWorkers(n int) { e.ix.SetDefaultTopKWorkers(n) }

// TopKStats exposes the index's top-k evaluator counters — the server
// surfaces them per generation under /stats.
func (e *Engine) TopKStats() index.TopKStats { return e.ix.TopKStats() }

// ResetTopKStats zeroes the evaluator counters; the server calls it when a
// generation is installed so /stats reads per-generation.
func (e *Engine) ResetTopKStats() { e.ix.ResetTopKStats() }

// ContextScore is a candidate context for a query.
type ContextScore struct {
	Context ontology.TermID
	Score   float64
}

// SelectContexts implements task 3: rank scored contexts by the overlap of
// the query words with the context term's name (Jaccard over stemmed
// words), returning those above MinContextMatch, best first, capped at
// MaxContexts. Only contexts sharing at least one token with the query are
// visited (inverted token→contexts map built in NewEngine).
func (e *Engine) SelectContexts(query string, opts Options) []ContextScore {
	sel, _ := e.SelectContextsContext(context.Background(), query, opts)
	return sel
}

// SelectContextsContext is SelectContexts with cooperative cancellation:
// candidate accumulation and semantic expansion check ctx between stages. A
// completed call returns exactly what SelectContexts would; a cancelled
// call returns (nil, ctx.Err()).
func (e *Engine) SelectContextsContext(ctx context.Context, query string, opts Options) ([]ContextScore, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	maxCtx := opts.MaxContexts
	if maxCtx <= 0 {
		maxCtx = 8
	}
	minMatch := opts.MinContextMatch
	if minMatch <= 0 {
		minMatch = 0.2
	}
	qWords := e.ix.Analyzer().Tokenizer().Terms(query)
	if len(qWords) == 0 {
		return nil, nil
	}
	qSet := make(map[string]bool, len(qWords))
	for _, w := range qWords {
		qSet[w] = true
	}
	// inter[ctx] = |distinct query words ∩ distinct name words|, counted
	// via the inverted map: each distinct query word bumps every context
	// whose name contains it exactly once.
	inter := make(map[ontology.TermID]int)
	for w := range qSet {
		for _, ctx := range e.tokenCtxs[w] {
			inter[ctx]++
		}
	}
	cands := make([]ContextScore, 0, len(inter))
	for ctx, in := range inter {
		// Jaccard: |q ∩ name| / |q ∪ name| over distinct stemmed words.
		union := len(qSet) + e.distinctTokens[ctx] - in
		score := float64(in) / float64(union)
		if score >= minMatch {
			cands = append(cands, ContextScore{ctx, score})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Context < cands[j].Context
	})
	if opts.ExpandContexts && len(cands) > 0 {
		expanded, err := e.expandSemantically(ctx, cands, opts)
		if err != nil {
			return nil, err
		}
		cands = expanded
	}
	if len(cands) > maxCtx {
		cands = cands[:maxCtx]
	}
	return cands, ctx.Err()
}

// expandSemantically adds scored contexts semantically close to the best
// word-overlap match, scored by Lin similarity damped below the anchor's
// score so expansions never outrank direct matches. The scan over all
// scored contexts checks cancellation periodically.
func (e *Engine) expandSemantically(ctx context.Context, cands []ContextScore, opts Options) ([]ContextScore, error) {
	minSim := opts.MinExpandSim
	if minSim <= 0 {
		minSim = 0.5
	}
	anchor := cands[0]
	have := make(map[ontology.TermID]bool, len(cands))
	for _, c := range cands {
		have[c.Context] = true
	}
	onto := e.cs.Ontology()
	var extra []ContextScore
	visited := 0
	for tid := range e.termTokens {
		if visited&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		visited++
		if have[tid] {
			continue
		}
		if lin := onto.LinSimilarity(anchor.Context, tid); lin >= minSim {
			extra = append(extra, ContextScore{tid, anchor.Score * lin * 0.9})
		}
	}
	sort.Slice(extra, func(i, j int) bool {
		if extra[i].Score != extra[j].Score {
			return extra[i].Score > extra[j].Score
		}
		return extra[i].Context < extra[j].Context
	})
	out := append(cands, extra...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

// unionBitset ORs the paper bitsets of the selected contexts.
func (e *Engine) unionBitset(ctxs []ContextScore) bitset.Set {
	var union bitset.Set
	for _, c := range ctxs {
		union.UnionWith(e.cs.PaperBitset(c.Context))
	}
	return union
}

// Search implements tasks 4 and 5: keyword search inside each selected
// context, relevancy scoring, and merging into a single ranked result set
// (per paper, the maximising context wins).
//
// Unlike the naive formulation (one index pass per context), the postings
// are walked once over the union of the selected contexts' paper sets; each
// hit is then distributed to the contexts containing it by bitset
// membership, with the per-context relevancy computation fanned over a
// worker pool and merged deterministically in context order.
func (e *Engine) Search(query string, opts Options) []Result {
	out, _ := e.SearchContext(context.Background(), query, opts)
	return out
}

// SearchContext is Search with cooperative cancellation threaded through
// every stage — context selection, the union index pass, and the parallel
// per-context scoring pool — so an abandoned or deadline-expired query
// stops within a few scoring rows instead of running to completion. A
// completed call returns exactly the results Search would (the golden
// tests pin this); a cancelled call returns (nil, ctx.Err()).
func (e *Engine) SearchContext(ctx context.Context, query string, opts Options) ([]Result, error) {
	ctxs, err := e.SelectContextsContext(ctx, query, opts)
	if err != nil {
		return nil, err
	}
	if len(ctxs) == 0 {
		return nil, nil
	}
	qv := e.ix.Analyzer().QueryVector(query)
	iopts := index.Options{WithinSet: e.unionBitset(ctxs), Threshold: e.indexThreshold(ctxs, opts)}
	hits, err := e.ix.SearchVectorContext(ctx, qv, iopts)
	if err != nil {
		return nil, err
	}
	merged, err := e.mergeHits(ctx, ctxs, hits, opts)
	if err != nil {
		return nil, err
	}
	return Paginate(merged, opts), nil
}

// SearchBoolean runs a context-based search with a boolean query (the
// index package's AND/OR/NOT/"phrase"/field:term language): context
// selection and the text-matching score use the query's positive terms,
// while the boolean structure filters candidates inside each selected
// context. Returns an error for unparsable or purely negative queries.
// Like Search, the boolean evaluation and text scoring run once over the
// union of the selected contexts instead of once per context.
func (e *Engine) SearchBoolean(query string, opts Options) ([]Result, error) {
	return e.SearchBooleanContext(context.Background(), query, opts)
}

// SearchBooleanContext is SearchBoolean with cooperative cancellation (see
// SearchContext for the semantics).
func (e *Engine) SearchBooleanContext(ctx context.Context, query string, opts Options) ([]Result, error) {
	q, err := e.ix.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	ctxs, err := e.SelectContextsContext(ctx, query, opts)
	if err != nil {
		return nil, err
	}
	if len(ctxs) == 0 {
		return nil, nil
	}
	iopts := index.Options{WithinSet: e.unionBitset(ctxs), Threshold: e.indexThreshold(ctxs, opts)}
	hits, err := e.ix.SearchQueryContext(ctx, q, iopts)
	if err != nil {
		return nil, err
	}
	merged, err := e.mergeHits(ctx, ctxs, hits, opts)
	if err != nil {
		return nil, err
	}
	return Paginate(merged, opts), nil
}

// prestigeBound returns the largest effective prestige any paper can
// attain in the selected contexts: the maximum over contexts of the
// prestige row maximum times the context weight. Multiplication by a
// non-negative weight is monotone in IEEE arithmetic, so every stored
// score obeys the bound exactly — the pruning built on it needs no
// epsilon.
func (e *Engine) prestigeBound(ctxs []ContextScore) float64 {
	var bound float64
	for _, c := range ctxs {
		w := 1.0
		if e.weights.ContextWeighted {
			w = c.Score
		}
		if b := e.matrix.Run(c.Context).Max * w; b > bound {
			bound = b
		}
	}
	return bound
}

// indexThreshold derives a cosine-score floor for the index pass from the
// relevancy threshold: a merged result needs w_p·prestige + w_m·match ≥
// Threshold, and prestige never exceeds prestigeBound, so hits matching
// below (Threshold − w_p·bound)/w_m can never survive the merge. The
// division makes the algebra inexact, so the floor is deflated (1e-9
// relative and 1e-12 absolute) and then verified against the monotone
// bound expression the merge actually obeys; when even the deflated floor
// can't be proven safe, the filter is skipped — correctness never depends
// on it.
func (e *Engine) indexThreshold(ctxs []ContextScore, opts Options) float64 {
	w := e.weights
	if opts.Threshold <= 0 || w.Matching <= 0 || w.Prestige < 0 {
		return 0
	}
	bound := w.Prestige * e.prestigeBound(ctxs)
	t := (opts.Threshold-bound)/w.Matching*(1-1e-9) - 1e-12
	if t <= 0 {
		return 0
	}
	// Every dropped hit has match < t, and relevancy ≤ bound + w_m·match ≤
	// bound + w_m·t by float monotonicity; require that to sit strictly
	// under the threshold the merge loop compares against.
	if bound+w.Matching*t >= opts.Threshold {
		return 0
	}
	return t
}

// WorseResult is the bounded-merge heap order: a is worse than b when it
// ranks later under SortResults (lower relevancy, ties by higher doc ID).
// Documents are unique within a result list, so this is a strict total
// order and the selected top k equal the full sort's prefix exactly.
func WorseResult(a, b Result) bool {
	return a.Relevancy < b.Relevancy || (a.Relevancy == b.Relevancy && a.Doc > b.Doc)
}

// merger carries the scratch state shared by the exhaustive and bounded
// merge paths: the pooled arena, the per-context membership bitsets, and
// the partial-score rows of the current hit window.
type merger struct {
	e      *Engine
	ctxs   []ContextScore
	member []bitset.Set
	ms     *mergeScratch
	// partial[i][j] is the effective prestige of the current window's
	// j-th hit in ctxs[i], -1 when the paper is outside the context.
	// Workers write disjoint rows (slices of the arena slab).
	partial [][]float64
}

func (e *Engine) newMerger(ctxs []ContextScore) *merger {
	ms, _ := e.mergePool.Get().(*mergeScratch)
	if ms == nil {
		ms = &mergeScratch{}
	}
	member := make([]bitset.Set, len(ctxs))
	for i, c := range ctxs {
		member[i] = e.cs.PaperBitset(c.Context)
	}
	return &merger{e: e, ctxs: ctxs, member: member, ms: ms, partial: make([][]float64, len(ctxs))}
}

func (m *merger) close() { m.e.mergePool.Put(m.ms) }

// score fills m.partial for one window of hits, fanning the per-context
// rows over a worker pool when the window is large enough (mirrors
// prestige.ScoreAllParallel).
//
// Cancellation: workers check ctx between context rows (skipping rows
// once it fires) and the feeder stops handing out work, so the pool
// drains promptly with no goroutine leaks. A cancelled call returns
// ctx.Err() with the scratch state already reset.
func (m *merger) score(ctx context.Context, hits []index.Hit) error {
	e, ms := m.e, m.ms
	maxDoc := 0
	for _, h := range hits {
		if int(h.Doc) > maxDoc {
			maxDoc = int(h.Doc)
		}
	}
	if len(ms.hitOf) <= maxDoc {
		ms.hitOf = make([]int32, maxDoc+1)
	}
	for j, h := range hits {
		ms.hitOf[h.Doc] = int32(j + 1)
	}
	// Sparse reset before returning: only the table entries this window
	// touched. The partial rows stay valid for the caller's merge loop.
	defer func() {
		for _, h := range hits {
			ms.hitOf[h.Doc] = 0
		}
	}()
	need := len(m.ctxs) * len(hits)
	if cap(ms.rows) < need {
		ms.rows = make([]float64, need)
	}
	rows := ms.rows[:need]
	for i := range m.partial {
		m.partial[i] = rows[i*len(hits) : (i+1)*len(hits)]
	}
	scoreCtx := func(i int) {
		if h := scoreRowHook; h != nil {
			h()
		}
		row := m.partial[i]
		c := m.ctxs[i]
		mb := m.member[i]
		run := e.matrix.Run(c.Context)
		w := 1.0
		if e.weights.ContextWeighted {
			w = c.Score
		}
		for j, h := range hits {
			if mb.Contains(int(h.Doc)) {
				row[j] = 0
			} else {
				row[j] = -1
			}
		}
		if len(run.Docs) <= len(hits)*8 {
			// Scatter the context's CSR run through the dense doc→hit table:
			// O(|run|) with O(1) array reads. Docs are sorted, so the scan
			// stops at the last hit doc.
			hitOf := ms.hitOf
			for k, d := range run.Docs {
				if int(d) > maxDoc {
					break
				}
				if j := hitOf[d]; j > 0 && row[j-1] >= 0 {
					row[j-1] = run.Vals[k] * w
				}
			}
		} else {
			// Run much longer than the hit list: per-hit binary search over
			// the run's packed doc IDs wins.
			for j, h := range hits {
				if row[j] >= 0 {
					row[j] = run.Get(h.Doc) * w
				}
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(m.ctxs) {
		workers = len(m.ctxs)
	}
	if workers <= 1 || len(m.ctxs)*len(hits) < parallelMergeThreshold {
		for i := range m.ctxs {
			if err := ctx.Err(); err != nil {
				return err
			}
			scoreCtx(i)
		}
		return nil
	}
	var wg sync.WaitGroup
	work := make(chan int)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				// Check between context rows; keep receiving so the
				// feeder never blocks on a dead pool.
				if ctx.Err() != nil {
					continue
				}
				scoreCtx(i)
			}
		}()
	}
feed:
	for i := range m.ctxs {
		select {
		case work <- i:
		case <-done:
			break feed
		}
	}
	close(work)
	wg.Wait()
	return ctx.Err()
}

// mergeRow resolves one hit of the current window against every selected
// context: the maximising context wins (first in selection order on ties,
// matching the naive per-context loop), and hits whose best relevancy
// falls under the threshold report ok=false.
func (m *merger) mergeRow(j int, h index.Hit, opts Options) (Result, bool) {
	e := m.e
	bestI := -1
	var bestR float64
	for i := range m.ctxs {
		p := m.partial[i][j]
		if p < 0 {
			continue // not a member (prestige itself is ≥ 0)
		}
		r := e.weights.Prestige*p + e.weights.Matching*h.Score
		if r < opts.Threshold {
			continue
		}
		if bestI < 0 || r > bestR {
			bestI, bestR = i, r
		}
	}
	if bestI < 0 {
		return Result{}, false
	}
	return Result{
		Doc:       h.Doc,
		Relevancy: bestR,
		Match:     h.Score,
		Prestige:  m.partial[bestI][j],
		Context:   m.ctxs[bestI].Context,
	}, true
}

// boundedK returns the selection size offset+limit when the bounded
// top-k merge applies, and 0 when the exhaustive merge must run: no
// limit was requested, the page covers the whole hit list anyway, or a
// negative weight breaks the upper-bound algebra the pruning rests on.
func (e *Engine) boundedK(opts Options, nhits int) int {
	if opts.Limit <= 0 || opts.Offset < 0 || e.weights.Prestige < 0 || e.weights.Matching < 0 {
		return 0
	}
	k := opts.Offset + opts.Limit
	if k >= nhits {
		return 0
	}
	return k
}

// mergeHits turns one union-pass hit list into ranked results: for every
// hit, the relevancy R(p, q, ci) is computed in every selected context
// containing the paper, and the maximising context wins. The merge visits
// contexts in selection order, so the output is deterministic and
// independent of worker scheduling.
//
// When the caller asked for a page (Limit > 0), the bounded path keeps
// only the offset+limit best results in a selection heap and prunes with
// the per-query prestige bound; otherwise every surviving hit is ranked.
// Both paths return results in SortResults order, byte-identical to the
// naive reference for the requested page (the golden tests pin this).
func (e *Engine) mergeHits(ctx context.Context, ctxs []ContextScore, hits []index.Hit, opts Options) ([]Result, error) {
	if len(hits) == 0 {
		return nil, ctx.Err()
	}
	m := e.newMerger(ctxs)
	defer m.close()
	if k := e.boundedK(opts, len(hits)); k > 0 {
		return m.mergeTopK(ctx, hits, opts, k)
	}
	if err := m.score(ctx, hits); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(hits))
	for j, h := range hits {
		if j&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if res, ok := m.mergeRow(j, h, opts); ok {
			out = append(out, res)
		}
	}
	SortResults(out)
	return out, nil
}

// mergeTopK is the bounded merge: hits are processed in windows of
// descending match score, every surviving result is offered to a
// k-bounded selection heap, and the loop stops as soon as the window's
// best attainable relevancy — w_p·prestigeBound + w_m·(window's top match
// score), an exact upper bound because every operation is monotone in
// IEEE arithmetic — can no longer beat the heap's k-th result or reach
// the threshold. Work done is proportional to the page actually served,
// not the hit count, while the returned page is byte-identical to the
// exhaustive merge's prefix: scores are computed by the same float
// expressions, and the heap's (relevancy, doc) order is the total order
// SortResults uses.
func (m *merger) mergeTopK(ctx context.Context, hits []index.Hit, opts Options, k int) ([]Result, error) {
	e := m.e
	bound := e.weights.Prestige * e.prestigeBound(m.ctxs)
	heap := topk.New(k, WorseResult)
	chunk := k
	if chunk < topkChunk {
		chunk = topkChunk
	}
	for lo := 0; lo < len(hits); lo += chunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// hits[lo] has the window's (and every later window's) best match
		// score, so this bound only decreases: break, don't skip.
		ub := bound + e.weights.Matching*hits[lo].Score
		if ub < opts.Threshold || (heap.Full() && ub < heap.Min().Relevancy) {
			break
		}
		hi := lo + chunk
		if hi > len(hits) {
			hi = len(hits)
		}
		win := hits[lo:hi]
		if err := m.score(ctx, win); err != nil {
			return nil, err
		}
		for j, h := range win {
			if res, ok := m.mergeRow(j, h, opts); ok {
				heap.Offer(res)
			}
		}
	}
	out := heap.Items()
	SortResults(out)
	return out, nil
}

// SortResults orders results by descending relevancy, ties by ascending
// document ID. The comparator is a total order (documents are unique within
// a result list), so the unstable sort still yields a deterministic,
// naive-identical ordering; slices.SortFunc avoids sort.Slice's
// reflection-based swapper on the query hot path.
func SortResults(out []Result) {
	slices.SortFunc(out, func(a, b Result) int {
		if a.Relevancy != b.Relevancy {
			if a.Relevancy > b.Relevancy {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.Doc, b.Doc)
	})
}

// Paginate applies Offset/Limit to a ranked result list. An offset at or
// past the end returns an empty, non-nil slice: "a valid page past the
// last result" is distinct from "the query produced nothing" (nil), and
// the server encodes the former as [] rather than null. A limit larger
// than the remaining results returns just the remainder — never an
// over-slice.
func Paginate(out []Result, opts Options) []Result {
	if opts.Offset > 0 {
		if opts.Offset >= len(out) {
			return []Result{}
		}
		out = out[opts.Offset:]
	}
	if opts.Limit > 0 && len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	return out
}

// BaselineTFIDF is the whole-corpus TF-IDF ranked keyword search (the
// "simple text-based score" of ACM Portal / Google Scholar in the paper's
// intro).
func BaselineTFIDF(ix *index.Index, query string, threshold float64, limit int) []index.Hit {
	return ix.Search(query, index.Options{Threshold: threshold, Limit: limit})
}

// BaselinePubMed mimics PubMed's behaviour in the paper's intro: all
// keyword matches (any positive cosine), listed in descending PMID order —
// no relevance ranking at all.
func BaselinePubMed(ix *index.Index, query string) []corpus.PaperID {
	hits := ix.Search(query, index.Options{})
	out := make([]corpus.PaperID, len(hits))
	for i, h := range hits {
		out[i] = h.Doc
	}
	c := ix.Analyzer().Corpus()
	sort.Slice(out, func(i, j int) bool {
		return c.Paper(out[i]).PMID > c.Paper(out[j]).PMID
	})
	return out
}
