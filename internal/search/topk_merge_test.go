package search

import (
	"fmt"
	"math/rand"
	"testing"

	"ctxsearch/internal/corpus"
)

// TestPaginate pins the page-slicing contract: an offset at or past the
// end is an empty non-nil page, a limit past the remainder returns just
// the remainder, and in-range pages slice exactly.
func TestPaginate(t *testing.T) {
	results := func(n int) []Result {
		out := make([]Result, n)
		for i := range out {
			out[i] = Result{Doc: corpus.PaperID(i)}
		}
		return out
	}
	tests := []struct {
		name    string
		in      []Result
		opts    Options
		want    []corpus.PaperID
		nonNil  bool
		aliases bool // page must alias the input (no copy on the hot path)
	}{
		{name: "no paging", in: results(3), opts: Options{}, want: []corpus.PaperID{0, 1, 2}, aliases: true},
		{name: "limit only", in: results(5), opts: Options{Limit: 2}, want: []corpus.PaperID{0, 1}, aliases: true},
		{name: "offset only", in: results(4), opts: Options{Offset: 1}, want: []corpus.PaperID{1, 2, 3}, aliases: true},
		{name: "offset and limit", in: results(6), opts: Options{Offset: 2, Limit: 2}, want: []corpus.PaperID{2, 3}, aliases: true},
		{name: "limit past remainder", in: results(4), opts: Options{Offset: 2, Limit: 100}, want: []corpus.PaperID{2, 3}, aliases: true},
		{name: "limit exceeds all", in: results(3), opts: Options{Limit: 100}, want: []corpus.PaperID{0, 1, 2}, aliases: true},
		{name: "offset equals length", in: results(3), opts: Options{Offset: 3}, want: nil, nonNil: true},
		{name: "offset past length", in: results(3), opts: Options{Offset: 7, Limit: 5}, want: nil, nonNil: true},
		{name: "offset past empty", in: results(0), opts: Options{Offset: 1}, want: nil, nonNil: true},
		{name: "empty no paging", in: results(0), opts: Options{}, want: nil},
	}
	for _, tc := range tests {
		got := Paginate(tc.in, tc.opts)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: got %d results, want %d", tc.name, len(got), len(tc.want))
		}
		for i, d := range tc.want {
			if got[i].Doc != d {
				t.Fatalf("%s: result %d = doc %d, want %d", tc.name, i, got[i].Doc, d)
			}
		}
		if tc.nonNil && got == nil {
			t.Fatalf("%s: page is nil, want empty non-nil", tc.name)
		}
		if tc.aliases && len(got) > 0 && &got[0] != &tc.in[tc.opts.Offset] {
			t.Fatalf("%s: page copied instead of sliced", tc.name)
		}
	}
}

// TestSearchTopKGoldenEquality asserts the bounded top-k merge returns
// byte-identical pages to the naive per-context reference across
// randomized (limit, offset, threshold, context-count) combinations. The
// window size is shrunk so small fixtures run many windows and exercise
// the early-termination break, and the trials hit both the serial and
// pooled scoring paths.
func TestSearchTopKGoldenEquality(t *testing.T) {
	f := buildFixture(t)
	oldChunk := topkChunk
	topkChunk = 4
	t.Cleanup(func() { topkChunk = oldChunk })

	queries := goldenQueries(f)
	rng := rand.New(rand.NewSource(42))
	for qi, q := range queries {
		for trial := 0; trial < 12; trial++ {
			opts := Options{
				Limit:           1 + rng.Intn(20),
				MaxContexts:     1 + rng.Intn(8),
				MinContextMatch: 0.01,
			}
			if rng.Intn(2) == 0 {
				opts.Offset = rng.Intn(15)
			}
			if rng.Intn(3) == 0 {
				opts.Threshold = rng.Float64() * 0.4
			}
			label := fmt.Sprintf("query %d %q trial %d opts %+v", qi, q, trial, opts)
			diffResults(t, label, f.engine.Search(q, opts), f.engine.searchNaive(q, opts))
		}
	}
}

// TestSearchTopKPooledGoldenEquality repeats a slice of the bounded-merge
// battery with the worker pool forced on, so the windowed scoring runs
// through the parallel path too.
func TestSearchTopKPooledGoldenEquality(t *testing.T) {
	f := buildFixture(t)
	oldChunk, oldThreshold := topkChunk, parallelMergeThreshold
	topkChunk, parallelMergeThreshold = 4, 0
	t.Cleanup(func() { topkChunk, parallelMergeThreshold = oldChunk, oldThreshold })

	rng := rand.New(rand.NewSource(7))
	for qi, q := range goldenQueries(f) {
		opts := Options{
			Limit:       1 + rng.Intn(10),
			Offset:      rng.Intn(5),
			MaxContexts: 8, MinContextMatch: 0.01,
			Threshold: rng.Float64() * 0.2,
		}
		label := fmt.Sprintf("pooled query %d %q opts %+v", qi, q, opts)
		diffResults(t, label, f.engine.Search(q, opts), f.engine.searchNaive(q, opts))
	}
}

// TestSearchBooleanTopKGoldenEquality covers the bounded merge on the
// boolean query path (same hit ordering contract, different index pass).
func TestSearchBooleanTopKGoldenEquality(t *testing.T) {
	f := buildFixture(t)
	oldChunk := topkChunk
	topkChunk = 4
	t.Cleanup(func() { topkChunk = oldChunk })

	name, _ := queryForSomeContext(t, f)
	queries := []string{name, name + " OR transport", "NOT qqqzzz " + name}
	rng := rand.New(rand.NewSource(3))
	for qi, q := range queries {
		for trial := 0; trial < 8; trial++ {
			opts := Options{
				Limit:       1 + rng.Intn(12),
				Offset:      rng.Intn(6),
				MaxContexts: 1 + rng.Intn(8), MinContextMatch: 0.01,
				Threshold: rng.Float64() * 0.3,
			}
			label := fmt.Sprintf("boolean query %d %q trial %d opts %+v", qi, q, trial, opts)
			got, gotErr := f.engine.SearchBoolean(q, opts)
			want, wantErr := f.engine.searchBooleanNaive(q, opts)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s: error mismatch: optimized %v, naive %v", label, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			diffResults(t, label, got, want)
		}
	}
}

// TestIndexThresholdSafety pins the derived cosine floor: it must never
// exceed the relevancy-threshold surface the merge loop enforces (the
// monotone-bound check), and a zero or unusable configuration must
// disable the filter entirely.
func TestIndexThresholdSafety(t *testing.T) {
	f := buildFixture(t)
	e := f.engine
	name, _ := queryForSomeContext(t, f)
	ctxs := e.SelectContexts(name, Options{MaxContexts: 8, MinContextMatch: 0.01})
	if len(ctxs) == 0 {
		t.Fatal("fixture query selected no contexts")
	}
	if got := e.indexThreshold(ctxs, Options{}); got != 0 {
		t.Fatalf("no relevancy threshold must mean no index floor, got %v", got)
	}
	bound := e.weights.Prestige * e.prestigeBound(ctxs)
	for _, th := range []float64{0.01, 0.1, 0.3, 0.5, 0.9} {
		floor := e.indexThreshold(ctxs, Options{Threshold: th})
		if floor == 0 {
			continue // filter declined — always safe
		}
		// Any hit dropped by the floor (match < floor) has relevancy at
		// most bound + w_m·floor; that must sit strictly under th.
		if bound+e.weights.Matching*floor >= th {
			t.Fatalf("threshold %v: floor %v can drop hits at the threshold surface", th, floor)
		}
	}
	// Negative weights break the bound algebra: the filter must decline.
	bad := &Engine{matrix: e.matrix, weights: Weights{Prestige: -0.5, Matching: 0.5}}
	if got := bad.indexThreshold(ctxs, Options{Threshold: 0.5}); got != 0 {
		t.Fatalf("negative prestige weight must disable the floor, got %v", got)
	}
}

// TestBoundedKGate pins when the bounded merge may run: only for a
// requested page smaller than the hit list, under non-negative weights.
func TestBoundedKGate(t *testing.T) {
	f := buildFixture(t)
	e := f.engine
	if k := e.boundedK(Options{Limit: 10, Offset: 5}, 100); k != 15 {
		t.Fatalf("boundedK = %d, want 15", k)
	}
	if k := e.boundedK(Options{}, 100); k != 0 {
		t.Fatalf("no limit must use the exhaustive merge, got k=%d", k)
	}
	if k := e.boundedK(Options{Limit: 50, Offset: 60}, 100); k != 0 {
		t.Fatalf("page covering the hit list must use the exhaustive merge, got k=%d", k)
	}
	bad := &Engine{weights: Weights{Prestige: 0.5, Matching: -0.5}}
	if k := bad.boundedK(Options{Limit: 10}, 100); k != 0 {
		t.Fatalf("negative weight must use the exhaustive merge, got k=%d", k)
	}
}
