package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ctxsearch"
	"ctxsearch/internal/shard"
)

var cachedMatrix *ctxsearch.Matrix

// frozenMatrix freezes the shared test scores once.
func frozenMatrix(t *testing.T) (*ctxsearch.System, *ctxsearch.ContextSet, *ctxsearch.Matrix, string) {
	t.Helper()
	sys, cs, scores, query := testState(t)
	if cachedMatrix == nil {
		cachedMatrix = scores.Freeze()
	}
	return sys, cs, cachedMatrix, query
}

// shardCluster boots n shard servers (each holding the full system but a
// range-restricted searcher) plus a coordinator in front of them.
func shardCluster(t *testing.T, n int, scfg ShardConfig) (*Coordinator, []*httptest.Server) {
	t.Helper()
	sys, cs, m, _ := frozenMatrix(t)
	g := shard.NewGroup(sys.Analyzer(), cs, m, sys.Config().Relevancy, n, shard.Options{})
	var backends []*httptest.Server
	var urls []string
	for i := 0; i < g.NumShards(); i++ {
		srv := NewPending(Config{})
		srv.SetReadySharded(sys, cs, m, g.Engine(i))
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		backends = append(backends, ts)
		urls = append(urls, ts.URL)
	}
	coord := NewCoordinator(urls, Config{}, scfg)
	t.Cleanup(coord.Close)
	return coord, backends
}

// coordGet serves one request through the coordinator handler.
func coordGet(t *testing.T, c *Coordinator, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	return rec
}

// coordQueries builds the query battery from the shared fixture.
func coordQueries(t *testing.T) []string {
	t.Helper()
	sys, _, _, _ := frozenMatrix(t)
	_, _, scores, _ := testState(t)
	var names []string
	for _, ctx := range scores.Contexts() {
		if term := sys.Ontology.Term(ctx); term != nil {
			names = append(names, term.Name)
		}
		if len(names) >= 6 {
			break
		}
	}
	queries := append([]string(nil), names...)
	if len(names) >= 2 {
		queries = append(queries, names[0]+" "+names[1])
	}
	queries = append(queries, "qqqzzz unknown words")
	return queries
}

// TestCoordinatorGoldenEquality is the HTTP half of the tentpole guarantee:
// for several shard counts, the coordinator's /search body is byte-identical
// to a single-engine server's across randomized paging options, on both the
// vector and boolean paths.
func TestCoordinatorGoldenEquality(t *testing.T) {
	sys, cs, m, _ := frozenMatrix(t)
	ref := NewPending(Config{})
	ref.SetReadyFrozen(sys, cs, m)
	queries := coordQueries(t)
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 2, 3, 5} {
		coord, _ := shardCluster(t, n, ShardConfig{})
		for qi, q := range queries {
			for trial := 0; trial < 4; trial++ {
				params := "q=" + urlQuery(q) + fmt.Sprintf("&limit=%d", 1+rng.Intn(20))
				if rng.Intn(2) == 0 {
					params += fmt.Sprintf("&offset=%d", rng.Intn(15))
				}
				if rng.Intn(3) == 0 {
					params += fmt.Sprintf("&threshold=%.2f", rng.Float64()*0.4)
				}
				if rng.Intn(3) == 0 {
					params += "&boolean=1"
				}
				want := get(t, ref, "/search?"+params)
				got := coordGet(t, coord, "/search?"+params)
				label := fmt.Sprintf("shards=%d query %d %q trial %d params %s", n, qi, q, trial, params)
				if got.Code != want.Code {
					t.Fatalf("%s: coordinator %d, single server %d\n%s", label, got.Code, want.Code, got.Body)
				}
				if got.Body.String() != want.Body.String() {
					t.Fatalf("%s: bodies differ\ncoordinator: %s\nsingle:      %s", label, got.Body, want.Body)
				}
			}
		}
	}
}

// TestCoordinatorValidation: the coordinator enforces the same request
// validation as a server, without touching any shard.
func TestCoordinatorValidation(t *testing.T) {
	coord, _ := shardCluster(t, 2, ShardConfig{})
	_, _, _, query := frozenMatrix(t)
	for _, path := range []string{
		"/search",
		"/search?q=" + urlQuery(query) + "&limit=zero",
		"/search?q=" + urlQuery(query) + "&limit=1001",
		"/search?q=" + urlQuery(query) + "&offset=100001",
		"/search?q=" + urlQuery(query) + "&threshold=2",
	} {
		if rec := coordGet(t, coord, path); rec.Code != 400 {
			t.Fatalf("%s = %d, want 400", path, rec.Code)
		}
	}
}

// TestCoordinatorRelaysClientError: a query every shard rejects (unparsable
// boolean) comes back as the shard's 400, not a 503 and not a partial page.
func TestCoordinatorRelaysClientError(t *testing.T) {
	coord, _ := shardCluster(t, 3, ShardConfig{AllowPartial: true})
	rec := coordGet(t, coord, "/search?q="+urlQuery("AND AND (")+"&boolean=1")
	if rec.Code != 400 {
		t.Fatalf("unparsable boolean through coordinator = %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "error") {
		t.Fatalf("400 body lacks error payload: %s", rec.Body)
	}
}

// TestCoordinatorDeadShard: a connection-refused shard fails the query with
// 503 by default.
func TestCoordinatorDeadShard(t *testing.T) {
	_, backends := shardCluster(t, 3, ShardConfig{})
	_, _, _, query := frozenMatrix(t)
	// Re-front the same shards with one of them shut down.
	urls := []string{backends[0].URL, backends[1].URL, backends[2].URL}
	dead := httptest.NewServer(http.NewServeMux())
	urls[1] = dead.URL
	dead.Close() // now refuses connections
	coord := NewCoordinator(urls, Config{}, ShardConfig{})
	t.Cleanup(coord.Close)
	rec := coordGet(t, coord, "/search?q="+urlQuery(query)+"&limit=5")
	if rec.Code != 503 {
		t.Fatalf("dead shard = %d, want 503: %s", rec.Code, rec.Body)
	}
	snap := coord.Metrics().Snapshot()
	if snap.Shards[1].Errors == 0 {
		t.Fatalf("dead shard not counted as error: %+v", snap)
	}

	// /stats fails over past the dead shard: every round-robin position
	// must still answer 200 with the coordinator's own counters attached.
	for k := 0; k < 3; k++ {
		rec := coordGet(t, coord, "/stats")
		if rec.Code != 200 {
			t.Fatalf("stats pick %d with dead shard = %d, want 200: %s", k, rec.Code, rec.Body)
		}
		var st StatsResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatalf("stats pick %d: %v", k, err)
		}
		if st.Sharding == nil {
			t.Fatalf("stats pick %d lost the sharding counters", k)
		}
	}
}

// TestCoordinatorHangingShard: a shard that never answers resolves into a
// 503 within the per-shard timeout — the coordinator never hangs.
func TestCoordinatorHangingShard(t *testing.T) {
	_, backends := shardCluster(t, 2, ShardConfig{})
	_, _, _, query := frozenMatrix(t)
	// The handler must block without reading the request body: with the
	// body unread the server cannot observe the coordinator abandoning the
	// connection, which is exactly the worst-case hang. The stop channel
	// releases it at cleanup so the httptest server can close.
	stop := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-stop:
		}
	}))
	t.Cleanup(func() {
		close(stop)
		hang.Close()
	})
	coord := NewCoordinator([]string{backends[0].URL, hang.URL}, Config{}, ShardConfig{ShardTimeout: 100 * time.Millisecond})
	t.Cleanup(coord.Close)
	start := time.Now()
	rec := coordGet(t, coord, "/search?q="+urlQuery(query)+"&limit=5")
	elapsed := time.Since(start)
	if rec.Code != 503 {
		t.Fatalf("hanging shard = %d, want 503: %s", rec.Code, rec.Body)
	}
	if elapsed > time.Second {
		t.Fatalf("coordinator took %v to give up on a hanging shard", elapsed)
	}
	snap := coord.Metrics().Snapshot()
	if snap.Shards[1].Timeouts == 0 {
		t.Fatalf("hang not counted as timeout: %+v", snap)
	}
}

// TestCoordinatorPartial: with AllowPartial, a failing shard degrades the
// page (200, "partial": true, healthy shards' rows only) instead of failing
// it; the degraded body is never cached, so a recovered shard immediately
// restores the exact, unflagged page.
func TestCoordinatorPartial(t *testing.T) {
	sys, cs, m, query := frozenMatrix(t)
	g := shard.NewGroup(sys.Analyzer(), cs, m, sys.Config().Relevancy, 2, shard.Options{})

	srv0 := NewPending(Config{})
	srv0.SetReadySharded(sys, cs, m, g.Engine(0))
	ts0 := httptest.NewServer(srv0)
	t.Cleanup(ts0.Close)

	// Shard 1 fails its first /shard/search with a 500, then recovers.
	srv1 := NewPending(Config{})
	srv1.SetReadySharded(sys, cs, m, g.Engine(1))
	var failures atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/shard/") && failures.Add(1) == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		srv1.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	// MaxRetries is disabled: a retry would heal the one-shot 500 and
	// never produce the partial page this test is about.
	coord := NewCoordinator([]string{ts0.URL, flaky.URL}, Config{}, ShardConfig{AllowPartial: true, MaxRetries: -1})
	t.Cleanup(coord.Close)
	ref := NewPending(Config{})
	ref.SetReadyFrozen(sys, cs, m)
	path := "/search?q=" + urlQuery(query) + "&limit=10"

	rec := coordGet(t, coord, path)
	if rec.Code != 200 {
		t.Fatalf("degraded search = %d: %s", rec.Code, rec.Body)
	}
	var degraded SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &degraded); err != nil {
		t.Fatal(err)
	}
	if !degraded.Partial {
		t.Fatalf("degraded response not flagged partial: %s", rec.Body)
	}
	var full SearchResponse
	if err := json.Unmarshal(get(t, ref, path).Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	// The degraded page holds only shard 0's rows — a strict subset when
	// the full page draws from both shards, but always consistent rows.
	seen := map[int]bool{}
	for _, r := range full.Results {
		seen[r.PaperID] = true
	}
	for _, r := range degraded.Results {
		if int(g.Ranges()[0].Hi) <= r.PaperID {
			t.Fatalf("degraded page has row from failed shard: %+v", r)
		}
	}
	_ = seen

	// Recovered: same request now serves the exact page, unflagged —
	// proving the partial body was not cached.
	rec = coordGet(t, coord, path)
	want := get(t, ref, path)
	if rec.Code != 200 || rec.Body.String() != want.Body.String() {
		t.Fatalf("recovered search not exact:\ncoordinator: %s\nsingle:      %s", rec.Body, want.Body)
	}
	snap := coord.Metrics().Snapshot()
	if snap.Partial != 1 {
		t.Fatalf("partial counter = %d, want 1", snap.Partial)
	}
}

// TestCoordinatorCache: identical queries hit the coordinator's body cache
// instead of re-fanning out.
func TestCoordinatorCache(t *testing.T) {
	coord, _ := shardCluster(t, 2, ShardConfig{})
	_, _, _, query := frozenMatrix(t)
	path := "/search?q=" + urlQuery(query) + "&limit=7"
	first := coordGet(t, coord, path)
	second := coordGet(t, coord, path)
	if first.Code != 200 || second.Code != 200 || first.Body.String() != second.Body.String() {
		t.Fatalf("cached replay differs: %d %d", first.Code, second.Code)
	}
	snap := coord.Metrics().Snapshot()
	if got := snap.Shards[0].Requests; got != 1 {
		t.Fatalf("shard 0 saw %d search requests, want 1 (second must be served from cache)", got)
	}
	cst := coord.cache.Stats()
	if cst.Hits != 1 || cst.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", cst)
	}
}

// TestCoordinatorProxyEndpoints: /papers/{id}, /contexts and /stats answer
// through the coordinator exactly as from a single server (modulo the
// coordinator-specific cache and sharding stats).
func TestCoordinatorProxyEndpoints(t *testing.T) {
	sys, cs, m, query := frozenMatrix(t)
	coord, _ := shardCluster(t, 3, ShardConfig{})
	ref := NewPending(Config{})
	ref.SetReadyFrozen(sys, cs, m)

	for _, path := range []string{"/papers/0", "/papers/5", "/contexts?q=" + urlQuery(query), "/papers/999999"} {
		want := get(t, ref, path)
		got := coordGet(t, coord, path)
		if got.Code != want.Code || got.Body.String() != want.Body.String() {
			t.Fatalf("%s: coordinator (%d) %s\nsingle (%d) %s", path, got.Code, got.Body, want.Code, want.Body)
		}
	}

	// Run one search so the sharding section has traffic, then check /stats.
	coordGet(t, coord, "/search?q="+urlQuery(query)+"&limit=3")
	rec := coordGet(t, coord, "/stats")
	if rec.Code != 200 {
		t.Fatalf("stats = %d: %s", rec.Code, rec.Body)
	}
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Papers != sys.Corpus.Len() {
		t.Fatalf("stats papers = %d, want %d", stats.Papers, sys.Corpus.Len())
	}
	if stats.Sharding == nil {
		t.Fatal("coordinator stats lack sharding section")
	}
	if stats.Sharding.Searches == 0 || len(stats.Sharding.Shards) != 3 {
		t.Fatalf("sharding stats = %+v", stats.Sharding)
	}
	var requests uint64
	for _, s := range stats.Sharding.Shards {
		requests += s.Requests
	}
	if requests == 0 {
		t.Fatal("no shard requests counted")
	}
}

// TestCoordinatorReadyz: the coordinator is ready only when every shard is.
func TestCoordinatorReadyz(t *testing.T) {
	sys, cs, m, _ := frozenMatrix(t)
	g := shard.NewGroup(sys.Analyzer(), cs, m, sys.Config().Relevancy, 2, shard.Options{})

	ready := NewPending(Config{})
	ready.SetReadySharded(sys, cs, m, g.Engine(0))
	tsReady := httptest.NewServer(ready)
	t.Cleanup(tsReady.Close)

	pending := NewPending(Config{})
	tsPending := httptest.NewServer(pending)
	t.Cleanup(tsPending.Close)

	coord := NewCoordinator([]string{tsReady.URL, tsPending.URL}, Config{}, ShardConfig{})
	t.Cleanup(coord.Close)
	if rec := coordGet(t, coord, "/readyz"); rec.Code != 503 {
		t.Fatalf("readyz with pending shard = %d", rec.Code)
	}
	if rec := coordGet(t, coord, "/healthz"); rec.Code != 200 {
		t.Fatalf("healthz = %d", rec.Code)
	}
	pending.SetReadySharded(sys, cs, m, g.Engine(1))
	if rec := coordGet(t, coord, "/readyz"); rec.Code != 200 {
		t.Fatalf("readyz with all shards ready = %d: %s", rec.Code, rec.Body)
	}
}

// TestShardSearchEndpoint pins the internal endpoint's contract directly:
// rendered rows in engine order, validation of the extended limit range.
func TestShardSearchEndpoint(t *testing.T) {
	sys, cs, m, query := frozenMatrix(t)
	srv := NewPending(Config{})
	srv.SetReadyFrozen(sys, cs, m)

	post := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/shard/search", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}

	rec := post(fmt.Sprintf(`{"q":%q,"limit":5}`, query))
	if rec.Code != 200 {
		t.Fatalf("shard search = %d: %s", rec.Code, rec.Body)
	}
	var resp ShardSearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 || len(resp.Results) > 5 {
		t.Fatalf("shard rows = %d", len(resp.Results))
	}
	for i := 1; i < len(resp.Results); i++ {
		if worseRow(resp.Results[i-1], resp.Results[i]) {
			t.Fatalf("shard rows not in engine order at %d: %+v", i, resp.Results)
		}
	}

	// The coordinator's folded limit (offset+limit) must be accepted beyond
	// the public MaxLimit, up to the combined cap.
	if rec := post(fmt.Sprintf(`{"q":%q,"limit":%d}`, query, MaxOffset+MaxLimit)); rec.Code != 200 {
		t.Fatalf("folded limit rejected: %d %s", rec.Code, rec.Body)
	}
	if rec := post(fmt.Sprintf(`{"q":%q,"limit":%d}`, query, MaxOffset+MaxLimit+1)); rec.Code != 400 {
		t.Fatalf("oversized limit = %d, want 400", rec.Code)
	}
	if rec := post(`{"q":""}`); rec.Code != 400 {
		t.Fatalf("empty query = %d, want 400", rec.Code)
	}
	if rec := post(`{`); rec.Code != 400 {
		t.Fatalf("bad JSON = %d, want 400", rec.Code)
	}
	if rec := post(fmt.Sprintf(`{"q":%q,"limit":5,"threshold":3}`, query)); rec.Code != 400 {
		t.Fatalf("bad threshold = %d, want 400", rec.Code)
	}
}
