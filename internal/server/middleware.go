package server

import (
	"context"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// The middleware stack is shared by the single-engine Server and the
// scatter-gather Coordinator: package-level wrappers parameterised on the
// logger / semaphore / deadline they need, composed by each handler's
// constructor.

// statusRecorder captures the status code and whether anything was written,
// for request logging and for recovery's "can I still write a 500?" check.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.status = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if !sr.wrote {
		sr.status = http.StatusOK
		sr.wrote = true
	}
	return sr.ResponseWriter.Write(b)
}

// withLogging logs every request with status and latency. A handler that
// wrote nothing (client abandoned the request) is logged as 499,
// nginx-style.
func withLogging(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		status := rec.status
		if !rec.wrote {
			status = 499
		}
		logger.Printf("%s %s %d %s", r.Method, r.URL.RequestURI(), status, time.Since(start).Round(time.Microsecond))
	})
}

// withRecovery turns a handler panic into a logged 500 instead of killing
// the process (net/http would only kill the connection's goroutine, but a
// panic during response writing can still leave a half-written reply, and
// panics outside an http.Server — e.g. under httptest recorders — would
// propagate). http.ErrAbortHandler keeps its conventional meaning.
func withRecovery(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			if sr, ok := w.(*statusRecorder); !ok || !sr.wrote {
				writeErr(w, http.StatusInternalServerError, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// retryAfterSecs renders a duration as a Retry-After header value: the
// duration rounded up to whole seconds, floored at 1 (Retry-After: 0 tells
// clients to hammer). It is the single source of retry hints — the shed
// path derives it from the request deadline, the coordinator's 503s from
// the shard timeout and breaker cool-down — so every backpressure signal
// the server emits stays consistent with the configuration that caused it.
func retryAfterSecs(d time.Duration) string {
	secs := (int64(d) + int64(time.Second) - 1) / int64(time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// withShedding bounds concurrently served requests with a semaphore and
// sheds the excess immediately with 429 + Retry-After — under overload a
// fast rejection beats a queued request that will only time out later.
// retryAfter is the Retry-After value for shed responses (derive it with
// retryAfterSecs from the request deadline: by then the requests holding
// the semaphore have either finished or timed out). A nil semaphore
// disables shedding.
func withShedding(inflight chan struct{}, retryAfter string, next http.Handler) http.Handler {
	if inflight == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case inflight <- struct{}{}:
			defer func() { <-inflight }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", retryAfter)
			writeErr(w, http.StatusTooManyRequests, "server overloaded (%d requests in flight)", cap(inflight))
		}
	})
}

// withTimeout attaches the per-request deadline to the request context. The
// handlers thread that context through the scoring pipeline (or the shard
// fan-out) and map its expiry to a 503 (writeQueryErr), so a slow or
// abandoned query stops computing instead of running to completion. A
// non-positive deadline disables the wrapper.
func withTimeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
