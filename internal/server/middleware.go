package server

import (
	"context"
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// The middleware stack is shared by the single-engine Server and the
// scatter-gather Coordinator: package-level wrappers parameterised on the
// logger / semaphore / deadline they need, composed by each handler's
// constructor.

// statusRecorder captures the status code and whether anything was written,
// for request logging and for recovery's "can I still write a 500?" check.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.status = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if !sr.wrote {
		sr.status = http.StatusOK
		sr.wrote = true
	}
	return sr.ResponseWriter.Write(b)
}

// withLogging logs every request with status and latency. A handler that
// wrote nothing (client abandoned the request) is logged as 499,
// nginx-style.
func withLogging(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		status := rec.status
		if !rec.wrote {
			status = 499
		}
		logger.Printf("%s %s %d %s", r.Method, r.URL.RequestURI(), status, time.Since(start).Round(time.Microsecond))
	})
}

// withRecovery turns a handler panic into a logged 500 instead of killing
// the process (net/http would only kill the connection's goroutine, but a
// panic during response writing can still leave a half-written reply, and
// panics outside an http.Server — e.g. under httptest recorders — would
// propagate). http.ErrAbortHandler keeps its conventional meaning.
func withRecovery(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			if sr, ok := w.(*statusRecorder); !ok || !sr.wrote {
				writeErr(w, http.StatusInternalServerError, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withShedding bounds concurrently served requests with a semaphore and
// sheds the excess immediately with 429 + Retry-After — under overload a
// fast rejection beats a queued request that will only time out later.
// A nil semaphore disables shedding.
func withShedding(inflight chan struct{}, next http.Handler) http.Handler {
	if inflight == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case inflight <- struct{}{}:
			defer func() { <-inflight }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "server overloaded (%d requests in flight)", cap(inflight))
		}
	})
}

// withTimeout attaches the per-request deadline to the request context. The
// handlers thread that context through the scoring pipeline (or the shard
// fan-out) and map its expiry to a 503 (writeQueryErr), so a slow or
// abandoned query stops computing instead of running to completion. A
// non-positive deadline disables the wrapper.
func withTimeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
