package server

import (
	"context"
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the status code and whether anything was written,
// for request logging and for recovery's "can I still write a 500?" check.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.status = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if !sr.wrote {
		sr.status = http.StatusOK
		sr.wrote = true
	}
	return sr.ResponseWriter.Write(b)
}

// withLogging logs every request with status and latency. A handler that
// wrote nothing (client abandoned the request) is logged as 499,
// nginx-style.
func (s *Server) withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		status := rec.status
		if !rec.wrote {
			status = 499
		}
		s.logger.Printf("%s %s %d %s", r.Method, r.URL.RequestURI(), status, time.Since(start).Round(time.Microsecond))
	})
}

// withRecovery turns a handler panic into a logged 500 instead of killing
// the process (net/http would only kill the connection's goroutine, but a
// panic during response writing can still leave a half-written reply, and
// panics outside an http.Server — e.g. under httptest recorders — would
// propagate). http.ErrAbortHandler keeps its conventional meaning.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			if sr, ok := w.(*statusRecorder); !ok || !sr.wrote {
				writeErr(w, http.StatusInternalServerError, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withShedding bounds concurrently served requests with a semaphore and
// sheds the excess immediately with 429 + Retry-After — under overload a
// fast rejection beats a queued request that will only time out later.
func (s *Server) withShedding(next http.Handler) http.Handler {
	if s.inflight == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "server overloaded (%d requests in flight)", cap(s.inflight))
		}
	})
}

// withTimeout attaches the per-request deadline to the request context. The
// handlers thread that context through the scoring pipeline and map its
// expiry to a 503 (writeQueryErr), so a slow or abandoned query stops
// computing instead of running to completion.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	d := s.cfg.queryTimeout()
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
