package server

import (
	"context"
	"encoding/json"
	"testing"

	"ctxsearch/internal/index"
)

// TestStatsTopKPerGeneration: /stats carries the bounded-query evaluator's
// counters, and they read per installed generation — traffic accumulates
// them, a SetReady* swap zeroes them — rather than per process lifetime.
func TestStatsTopKPerGeneration(t *testing.T) {
	sys, cs, scores, query := testState(t)
	srv := New(sys, cs, scores)

	topk := func() index.TopKStats {
		t.Helper()
		rec := get(t, srv, "/stats")
		if rec.Code != 200 {
			t.Fatalf("stats = %d: %s", rec.Code, rec.Body)
		}
		var resp StatsResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.TopK == nil {
			t.Fatal("stats response has no topk section")
		}
		return *resp.TopK
	}

	if st := topk(); st.Visited != 0 {
		t.Fatalf("fresh generation reports visited %d, want 0", st.Visited)
	}
	// Bounded queries run the top-k evaluator on the same index the
	// installed engine wraps (the engine's own /search path scores its
	// context restriction exhaustively and leaves these counters alone).
	qv := sys.Analyzer().QueryVector(query)
	if _, err := sys.Index().SearchVectorContext(context.Background(), qv, index.Options{Limit: 5}); err != nil {
		t.Fatal(err)
	}
	if st := topk(); st.Visited == 0 {
		t.Fatal("bounded query did not move the generation's visited counter")
	}
	// Installing a generation resets the counters: /stats must not leak
	// the previous generation's traffic.
	srv.SetReady(sys, cs, scores)
	if st := topk(); st.Visited != 0 {
		t.Fatalf("post-swap generation reports visited %d, want 0", st.Visited)
	}
}
