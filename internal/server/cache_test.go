package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// freshServer builds an isolated server (not the shared cached fixture)
// so cache counters start at zero.
func freshServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	sys, cs, scores, query := testState(t)
	return NewWithConfig(sys, cs, scores, cfg), query
}

func cacheStats(t *testing.T, s *Server) StatsResponse {
	t.Helper()
	rec := get(t, s, "/stats")
	if rec.Code != 200 {
		t.Fatalf("stats = %d", rec.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSearchCacheHitMiss(t *testing.T) {
	s, query := freshServer(t, Config{})
	path := "/search?q=" + urlQuery(query) + "&limit=5"
	first := get(t, s, path)
	if first.Code != 200 {
		t.Fatalf("search = %d: %s", first.Code, first.Body)
	}
	second := get(t, s, path)
	if second.Code != 200 || second.Body.String() != first.Body.String() {
		t.Fatalf("cached response differs:\nfirst:  %s\nsecond: %s", first.Body, second.Body)
	}
	st := cacheStats(t, s)
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.CacheEntries != 1 {
		t.Fatalf("cache stats = hits %d, misses %d, entries %d; want 1, 1, 1",
			st.CacheHits, st.CacheMisses, st.CacheEntries)
	}
	// Different options are different cache keys.
	if rec := get(t, s, path+"&offset=1"); rec.Code != 200 {
		t.Fatalf("offset search = %d", rec.Code)
	}
	if st := cacheStats(t, s); st.CacheMisses != 2 {
		t.Fatalf("distinct options must miss: misses = %d", st.CacheMisses)
	}
}

func TestSearchCacheDisabled(t *testing.T) {
	s, query := freshServer(t, Config{CacheEntries: -1})
	path := "/search?q=" + urlQuery(query) + "&limit=3"
	a, b := get(t, s, path), get(t, s, path)
	if a.Code != 200 || b.Code != 200 || a.Body.String() != b.Body.String() {
		t.Fatalf("uncached responses differ or failed: %d %d", a.Code, b.Code)
	}
	if st := cacheStats(t, s); st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("disabled cache must not count: %+v", st)
	}
}

// TestSearchCacheErrorNotCached asserts failed queries (here: an
// unparsable boolean query) are never cached — each attempt recomputes.
func TestSearchCacheErrorNotCached(t *testing.T) {
	s, _ := freshServer(t, Config{})
	path := "/search?q=" + urlQuery("AND AND") + "&boolean=1"
	for i := 0; i < 2; i++ {
		if rec := get(t, s, path); rec.Code != 400 {
			t.Fatalf("attempt %d: bad boolean query = %d", i, rec.Code)
		}
	}
	st := cacheStats(t, s)
	if st.CacheMisses != 2 || st.CacheHits != 0 || st.CacheEntries != 0 {
		t.Fatalf("errors must not be cached: %+v", st)
	}
}

// TestSearchDefaultLimit pins the implicit first page: no limit parameter
// means DefaultLimit results, identical to asking for limit=100
// explicitly (modulo the cache key).
func TestSearchDefaultLimit(t *testing.T) {
	s, query := freshServer(t, Config{})
	implicit := get(t, s, "/search?q="+urlQuery(query))
	if implicit.Code != 200 {
		t.Fatalf("default-limit search = %d: %s", implicit.Code, implicit.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(implicit.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 || len(resp.Results) > DefaultLimit {
		t.Fatalf("default limit served %d results", len(resp.Results))
	}
	explicit := get(t, s, fmt.Sprintf("/search?q=%s&limit=%d", urlQuery(query), DefaultLimit))
	if explicit.Code != 200 || explicit.Body.String() != implicit.Body.String() {
		t.Fatal("omitted limit must equal explicit limit=100")
	}
}

// TestSearchCacheInvalidatedOnSwap asserts an engine swap (SetReadyFrozen)
// drops every cached response: the next identical request recomputes.
func TestSearchCacheInvalidatedOnSwap(t *testing.T) {
	sys, cs, scores, query := testState(t)
	s := NewWithConfig(sys, cs, scores, Config{})
	path := "/search?q=" + urlQuery(query) + "&limit=5"
	first := get(t, s, path)
	if first.Code != 200 {
		t.Fatalf("search = %d", first.Code)
	}
	get(t, s, path) // warm hit
	s.SetReadyFrozen(sys, cs, scores.Freeze())
	after := get(t, s, path)
	if after.Code != 200 || after.Body.String() != first.Body.String() {
		t.Fatal("post-swap response differs for identical state")
	}
	st := cacheStats(t, s)
	if st.CacheMisses != 2 || st.CacheHits != 1 {
		t.Fatalf("swap must invalidate: misses %d hits %d, want 2 and 1", st.CacheMisses, st.CacheHits)
	}
}

// TestSearchCacheSingleflight fires concurrent identical cold requests
// and asserts the engine ran once while every caller got the full
// response (run under -race by make race).
func TestSearchCacheSingleflight(t *testing.T) {
	s, query := freshServer(t, Config{QueryTimeout: 10 * time.Second})
	var loads atomic.Int32
	gate := make(chan struct{})
	s.testHook = func(context.Context) {
		loads.Add(1)
		<-gate
	}
	path := "/search?q=" + urlQuery(query) + "&limit=5"
	const callers = 8
	bodies := make([]string, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := get(t, s, path)
			if rec.Code != 200 {
				t.Errorf("caller %d: %d", i, rec.Code)
			}
			bodies[i] = rec.Body.String()
		}(i)
	}
	// Wait until at least one caller is coalesced behind the leader's
	// flight before releasing it.
	for s.cache.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("engine ran %d times for one key, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("caller %d got a different body", i)
		}
	}
}

// TestDebugHandler asserts the pprof suite is served by the dedicated
// debug handler and is absent from the public API handler.
func TestDebugHandler(t *testing.T) {
	dbg := DebugHandler()
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	dbg.ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index = %d: %.120s", rec.Code, rec.Body)
	}
	s, _ := testServer(t)
	if rec := get(t, s, "/debug/pprof/"); rec.Code == 200 {
		t.Fatal("profiling endpoints must never be served on the public port")
	}
}
