package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ctxsearch"
	"ctxsearch/internal/index"
	"ctxsearch/internal/shard"
	"ctxsearch/internal/store"
)

var (
	cachedMappedSys  *ctxsearch.System
	cachedMappedCS   *ctxsearch.ContextSet
	cachedMappedMat  *ctxsearch.Matrix
	cachedMappedRef  *store.Mapped
	cachedMappedPrts *index.Parts
)

// mappedState saves the shared fixture as a v4 flat-binary state, opens it
// (zero-copy where the platform allows), and binds a frozen system directly
// to the mapped arrays — the exact cold-start path `serve` takes. Cached
// once; the mapping is deliberately never closed (it backs every test).
func mappedState(t *testing.T) (*ctxsearch.System, *ctxsearch.ContextSet, *ctxsearch.Matrix, *index.Parts, *store.Mapped) {
	t.Helper()
	sys, cs, m, _ := frozenMatrix(t)
	if cachedMappedSys == nil {
		st := &store.State{
			ContextSet: cs,
			Matrices:   map[string]*ctxsearch.Matrix{"text": m},
			Index:      sys.Index().Parts(),
			DF:         sys.Analyzer().DF(),
		}
		path := filepath.Join(t.TempDir(), "state.bin")
		if err := store.SaveFileV4(path, st); err != nil {
			t.Fatal(err)
		}
		mapped, err := store.Open(path, sys.Ontology)
		if err != nil {
			t.Fatal(err)
		}
		mcs, err := mapped.ContextSet()
		if err != nil {
			t.Fatal(err)
		}
		mmat, err := mapped.Matrix("text")
		if err != nil {
			t.Fatal(err)
		}
		parts, err := mapped.IndexParts()
		if err != nil {
			t.Fatal(err)
		}
		df, err := mapped.DF()
		if err != nil {
			t.Fatal(err)
		}
		fsys, err := ctxsearch.NewFrozenSystem(sys.Ontology, sys.Corpus, parts, df, sys.Config())
		if err != nil {
			t.Fatal(err)
		}
		cachedMappedSys, cachedMappedCS, cachedMappedMat = fsys, mcs, mmat
		cachedMappedRef, cachedMappedPrts = mapped, parts
	}
	return cachedMappedSys, cachedMappedCS, cachedMappedMat, cachedMappedPrts, cachedMappedRef
}

// mappedParams mirrors the coordinator golden battery's randomized paging,
// threshold and boolean shapes.
func mappedParams(q string, rng *rand.Rand) string {
	params := "q=" + urlQuery(q) + fmt.Sprintf("&limit=%d", 1+rng.Intn(20))
	if rng.Intn(2) == 0 {
		params += fmt.Sprintf("&offset=%d", rng.Intn(15))
	}
	if rng.Intn(3) == 0 {
		params += fmt.Sprintf("&threshold=%.2f", rng.Float64()*0.4)
	}
	if rng.Intn(3) == 0 {
		params += "&boolean=1"
	}
	return params
}

// TestMappedGoldenEquality is the tentpole's HTTP contract: a server whose
// engine reads straight out of the mapped v4 arrays answers every endpoint
// byte-identically to one built from the in-memory (gob-equivalent) state.
func TestMappedGoldenEquality(t *testing.T) {
	sys, cs, m, _ := frozenMatrix(t)
	fsys, mcs, mmat, _, mapped := mappedState(t)

	ref := NewPending(Config{})
	ref.SetReadyFrozen(sys, cs, m)
	mappedSrv := NewPending(Config{})
	mappedSrv.SetReadyMapped(fsys, mcs, mmat, fsys.EngineFrozen(mcs, mmat), mapped)

	rng := rand.New(rand.NewSource(23))
	for qi, q := range coordQueries(t) {
		for trial := 0; trial < 6; trial++ {
			params := mappedParams(q, rng)
			want := get(t, ref, "/search?"+params)
			got := get(t, mappedSrv, "/search?"+params)
			label := fmt.Sprintf("query %d %q trial %d params %s", qi, q, trial, params)
			if got.Code != want.Code {
				t.Fatalf("%s: mapped %d, gob %d\n%s", label, got.Code, want.Code, got.Body)
			}
			if got.Body.String() != want.Body.String() {
				t.Fatalf("%s: bodies differ\nmapped: %s\ngob:    %s", label, got.Body, want.Body)
			}
		}
	}
	_, _, _, query := frozenMatrix(t)
	for _, path := range []string{
		"/papers/0", "/papers/5", "/papers/999999", "/papers/xyz",
		"/contexts?q=" + urlQuery(query), "/contexts",
	} {
		want := get(t, ref, path)
		got := get(t, mappedSrv, path)
		if got.Code != want.Code || got.Body.String() != want.Body.String() {
			t.Fatalf("%s: mapped (%d) %s\ngob (%d) %s", path, got.Code, got.Body, want.Code, want.Body)
		}
	}
}

// TestMappedShardedGolden: in-process shard groups sliced from the mapped
// postings (serve -shards N over a v4 state) stay byte-identical to the
// single gob-state server.
func TestMappedShardedGolden(t *testing.T) {
	sys, cs, m, _ := frozenMatrix(t)
	fsys, mcs, mmat, parts, mapped := mappedState(t)
	ref := NewPending(Config{})
	ref.SetReadyFrozen(sys, cs, m)

	rng := rand.New(rand.NewSource(29))
	for _, n := range []int{2, 3} {
		g, err := shard.NewGroupParts(fsys.Analyzer(), parts, mcs, mmat, fsys.Config().Relevancy, n, shard.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv := NewPending(Config{})
		srv.SetReadyMapped(fsys, mcs, mmat, g, mapped)
		for qi, q := range coordQueries(t) {
			for trial := 0; trial < 3; trial++ {
				params := mappedParams(q, rng)
				want := get(t, ref, "/search?"+params)
				got := get(t, srv, "/search?"+params)
				label := fmt.Sprintf("shards=%d query %d %q trial %d params %s", n, qi, q, trial, params)
				if got.Code != want.Code || got.Body.String() != want.Body.String() {
					t.Fatalf("%s: mapped-sharded (%d) %s\ngob (%d) %s", label, got.Code, got.Body, want.Code, want.Body)
				}
			}
		}
	}
}

// TestMappedCoordinatorGolden: a multi-process deployment where every shard
// process opened the same v4 mapping (RangeEngineParts) answers through the
// coordinator byte-identically to the single gob-state server.
func TestMappedCoordinatorGolden(t *testing.T) {
	sys, cs, m, query := frozenMatrix(t)
	fsys, mcs, mmat, parts, mapped := mappedState(t)
	ref := NewPending(Config{})
	ref.SetReadyFrozen(sys, cs, m)

	const n = 3
	var urls []string
	for i := 0; i < n; i++ {
		eng, _, err := shard.RangeEngineParts(fsys.Analyzer(), parts, mcs, mmat, fsys.Config().Relevancy, i, n)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewPending(Config{})
		srv.SetReadyMapped(fsys, mcs, mmat, eng, mapped)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	coord := NewCoordinator(urls, Config{}, ShardConfig{})
	t.Cleanup(coord.Close)

	rng := rand.New(rand.NewSource(31))
	for qi, q := range coordQueries(t) {
		for trial := 0; trial < 3; trial++ {
			params := mappedParams(q, rng)
			want := get(t, ref, "/search?"+params)
			got := coordGet(t, coord, "/search?"+params)
			label := fmt.Sprintf("query %d %q trial %d params %s", qi, q, trial, params)
			if got.Code != want.Code || got.Body.String() != want.Body.String() {
				t.Fatalf("%s: coordinator-over-mapped (%d) %s\ngob (%d) %s", label, got.Code, got.Body, want.Code, want.Body)
			}
		}
	}
	for _, path := range []string{"/papers/0", "/papers/999999", "/contexts?q=" + urlQuery(query)} {
		want := get(t, ref, path)
		got := coordGet(t, coord, path)
		if got.Code != want.Code || got.Body.String() != want.Body.String() {
			t.Fatalf("%s: coordinator-over-mapped (%d) %s\ngob (%d) %s", path, got.Code, got.Body, want.Code, want.Body)
		}
	}
}

// TestMappedStats: /stats reports the mapped-state flag and the recorded
// cold-start duration; a plain frozen server reports neither.
func TestMappedStats(t *testing.T) {
	sys, cs, m, _ := frozenMatrix(t)
	fsys, mcs, mmat, _, mapped := mappedState(t)

	srv := NewPending(Config{})
	srv.SetReadyMapped(fsys, mcs, mmat, fsys.EngineFrozen(mcs, mmat), mapped)
	srv.SetColdStart(250 * time.Millisecond)
	var st StatsResponse
	if err := json.Unmarshal(get(t, srv, "/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.MappedState {
		t.Fatal("mapped server does not report mapped_state")
	}
	if st.ColdStartMS != 250 {
		t.Fatalf("cold_start_ms = %v, want 250", st.ColdStartMS)
	}

	plain := NewPending(Config{})
	plain.SetReadyFrozen(sys, cs, m)
	var pst StatsResponse
	if err := json.Unmarshal(get(t, plain, "/stats").Body.Bytes(), &pst); err != nil {
		t.Fatal(err)
	}
	if pst.MappedState || pst.ColdStartMS != 0 {
		t.Fatalf("frozen server reports mapped_state=%v cold_start_ms=%v", pst.MappedState, pst.ColdStartMS)
	}
}

// openMappedSystem opens its own mapping of a v4 file and binds a frozen
// system to it — an independent replica generation for the swap test.
func openMappedSystem(t *testing.T, path string, onto *ctxsearch.Ontology, c *ctxsearch.Corpus, cfg ctxsearch.Config) (*ctxsearch.System, *ctxsearch.ContextSet, *ctxsearch.Matrix, *store.Mapped) {
	t.Helper()
	mapped, err := store.Open(path, onto)
	if err != nil {
		t.Fatal(err)
	}
	mcs, err := mapped.ContextSet()
	if err != nil {
		t.Fatal(err)
	}
	mmat, err := mapped.Matrix("text")
	if err != nil {
		t.Fatal(err)
	}
	parts, err := mapped.IndexParts()
	if err != nil {
		t.Fatal(err)
	}
	df, err := mapped.DF()
	if err != nil {
		t.Fatal(err)
	}
	fsys, err := ctxsearch.NewFrozenSystem(onto, c, parts, df, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fsys, mcs, mmat, mapped
}

// TestMappedSwapUnderLoad drives concurrent queries through a server while a
// new mapping generation is swapped in (open-new, swap, close-old). Every
// request must answer 200 from a coherent generation; the old mapping must
// end up fully released (its pages can be unmapped) once in-flight requests
// drain. Run under -race this pins the munmap-vs-reader ordering.
func TestMappedSwapUnderLoad(t *testing.T) {
	sys, cs, m, query := frozenMatrix(t)
	st := &store.State{
		ContextSet: cs,
		Matrices:   map[string]*ctxsearch.Matrix{"text": m},
		Index:      sys.Index().Parts(),
		DF:         sys.Analyzer().DF(),
	}
	path := filepath.Join(t.TempDir(), "swap.bin")
	if err := store.SaveFileV4(path, st); err != nil {
		t.Fatal(err)
	}

	sysA, csA, mA, mappedA := openMappedSystem(t, path, sys.Ontology, sys.Corpus, sys.Config())
	srv := NewPending(Config{})
	srv.SetReadyMapped(sysA, csA, mA, sysA.EngineFrozen(csA, mA), mappedA)

	paths := []string{
		"/search?q=" + urlQuery(query) + "&limit=10",
		"/search?q=" + urlQuery(query) + "&limit=5&offset=2",
		"/papers/0",
		"/contexts?q=" + urlQuery(query),
		"/stats",
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := paths[(w+i)%len(paths)]
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("GET", p, nil))
				if rec.Code != 200 {
					select {
					case errc <- fmt.Errorf("%s = %d during swap: %s", p, rec.Code, rec.Body):
					default:
					}
					return
				}
			}
		}(w)
	}

	// Swap three generations in while the load runs; SetReadyMapped closes
	// the previous generation's mapping each time.
	last := mappedA
	for gen := 0; gen < 3; gen++ {
		time.Sleep(20 * time.Millisecond)
		sysB, csB, mB, mappedB := openMappedSystem(t, path, sys.Ontology, sys.Corpus, sys.Config())
		srv.SetReadyMapped(sysB, csB, mB, sysB.EngineFrozen(csB, mB), mappedB)
		last = mappedB
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// The retired generation is fully released: a new reader cannot pin it.
	if mappedA.Retain() {
		t.Fatal("swapped-out mapping still retainable after drain")
	}
	// The live generation still serves.
	rec := get(t, srv, paths[0])
	if rec.Code != 200 {
		t.Fatalf("post-swap search = %d: %s", rec.Code, rec.Body)
	}
	if !last.Retain() {
		t.Fatal("live mapping not retainable")
	}
	last.Release()
	// Server shutdown closes the final generation.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if last.Retain() {
		t.Fatal("mapping retainable after server close")
	}
}
