package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"ctxsearch"
)

var (
	cachedSys    *ctxsearch.System
	cachedCS     *ctxsearch.ContextSet
	cachedScores ctxsearch.Scores
	cachedServer *Server
	cachedQuery  string
)

// testState builds (once) the engine state shared by every server fixture,
// so fault tests can wrap it in servers with different Configs.
func testState(t *testing.T) (*ctxsearch.System, *ctxsearch.ContextSet, ctxsearch.Scores, string) {
	t.Helper()
	if cachedSys == nil {
		cfg := ctxsearch.DefaultConfig()
		cfg.Papers = 200
		cfg.OntologyTerms = 50
		cfg.MaxDepth = 6
		cfg.MinContextSize = 3
		sys, err := ctxsearch.NewSyntheticSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cachedSys = sys
		cachedCS = sys.BuildTextContextSet()
		cachedScores = sys.ScoreText(cachedCS)
		cachedQuery = sys.Ontology.Term(cachedScores.Contexts()[0]).Name
	}
	return cachedSys, cachedCS, cachedScores, cachedQuery
}

func testServer(t *testing.T) (*Server, string) {
	t.Helper()
	sys, cs, scores, query := testState(t)
	if cachedServer == nil {
		cachedServer = New(sys, cs, scores)
	}
	return cachedServer, query
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != 200 {
		t.Fatalf("healthz = %d", rec.Code)
	}
}

func TestSearchEndpoint(t *testing.T) {
	s, query := testServer(t)
	rec := get(t, s, "/search?q="+urlQuery(query)+"&limit=5")
	if rec.Code != 200 {
		t.Fatalf("search = %d: %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 || len(resp.Results) > 5 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	for _, r := range resp.Results {
		if r.Title == "" || r.Context == "" || r.Relevancy <= 0 {
			t.Fatalf("bad result %+v", r)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	s, query := testServer(t)
	if rec := get(t, s, "/search"); rec.Code != 400 {
		t.Fatalf("missing q = %d", rec.Code)
	}
	if rec := get(t, s, "/search?q="+urlQuery(query)+"&limit=zero"); rec.Code != 400 {
		t.Fatalf("bad limit = %d", rec.Code)
	}
	if rec := get(t, s, "/search?q="+urlQuery(query)+"&threshold=2"); rec.Code != 400 {
		t.Fatalf("bad threshold = %d", rec.Code)
	}
	// Paging caps: adversarially large limit/offset are rejected, the caps
	// themselves are accepted.
	if rec := get(t, s, "/search?q="+urlQuery(query)+"&limit=1001"); rec.Code != 400 {
		t.Fatalf("over-cap limit = %d", rec.Code)
	}
	if rec := get(t, s, "/search?q="+urlQuery(query)+"&offset=100001"); rec.Code != 400 {
		t.Fatalf("over-cap offset = %d", rec.Code)
	}
	if rec := get(t, s, "/search?q="+urlQuery(query)+"&limit=1000&offset=100000"); rec.Code != 200 {
		t.Fatalf("at-cap paging = %d: %s", rec.Code, rec.Body)
	}
}

func TestContextsEndpoint(t *testing.T) {
	s, query := testServer(t)
	rec := get(t, s, "/contexts?q="+urlQuery(query))
	if rec.Code != 200 {
		t.Fatalf("contexts = %d", rec.Code)
	}
	var infos []ContextInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("no contexts")
	}
	for _, ci := range infos {
		if ci.Term == "" || ci.Name == "" || ci.Level < 2 || ci.Papers <= 0 {
			t.Fatalf("bad context info %+v", ci)
		}
	}
	if rec := get(t, s, "/contexts"); rec.Code != 400 {
		t.Fatalf("missing q = %d", rec.Code)
	}
}

func TestPaperEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/papers/0")
	if rec.Code != 200 {
		t.Fatalf("paper = %d", rec.Code)
	}
	var resp PaperResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Title == "" || len(resp.Authors) == 0 {
		t.Fatalf("bad paper %+v", resp)
	}
	if rec := get(t, s, "/papers/999999"); rec.Code != 404 {
		t.Fatalf("missing paper = %d", rec.Code)
	}
	if rec := get(t, s, "/papers/xyz"); rec.Code != 400 {
		t.Fatalf("bad id = %d", rec.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/stats")
	if rec.Code != 200 {
		t.Fatalf("stats = %d", rec.Code)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Papers != 200 || resp.OntologyTerms != 50 || resp.Contexts == 0 {
		t.Fatalf("bad stats %+v", resp)
	}
	if resp.ContextSetKind != "text-based" {
		t.Fatalf("kind = %q", resp.ContextSetKind)
	}
}

// urlQuery escapes spaces for query strings without importing net/url in
// every call site.
func urlQuery(s string) string {
	out := ""
	for _, r := range s {
		if r == ' ' {
			out += "+"
		} else {
			out += fmt.Sprintf("%c", r)
		}
	}
	return out
}

func TestSearchBooleanAndOffset(t *testing.T) {
	s, query := testServer(t)
	// boolean=1 routes through Engine.SearchBoolean (implicit AND between
	// the query's words).
	rec := get(t, s, "/search?q="+urlQuery(query)+"&boolean=1&limit=5")
	if rec.Code != 200 {
		t.Fatalf("boolean search = %d: %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("boolean search returned nothing")
	}
	// An unparsable boolean query is a 400, not a 500.
	if rec := get(t, s, "/search?q="+urlQuery("NOT (")+"&boolean=1"); rec.Code != 400 {
		t.Fatalf("bad boolean query = %d", rec.Code)
	}
	// offset pages past the first result.
	full := get(t, s, "/search?q="+urlQuery(query)+"&limit=3")
	var fullResp SearchResponse
	if err := json.Unmarshal(full.Body.Bytes(), &fullResp); err != nil {
		t.Fatal(err)
	}
	if len(fullResp.Results) >= 2 {
		paged := get(t, s, "/search?q="+urlQuery(query)+"&limit=1&offset=1")
		var pagedResp SearchResponse
		if err := json.Unmarshal(paged.Body.Bytes(), &pagedResp); err != nil {
			t.Fatal(err)
		}
		if len(pagedResp.Results) != 1 || pagedResp.Results[0].PaperID != fullResp.Results[1].PaperID {
			t.Fatalf("offset paging broken: %+v vs %+v", pagedResp.Results, fullResp.Results[1])
		}
	}
	if rec := get(t, s, "/search?q="+urlQuery(query)+"&offset=-1"); rec.Code != 400 {
		t.Fatalf("bad offset = %d", rec.Code)
	}
}
