package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// RunConfig configures Run's http.Server and shutdown behaviour. Zero
// values take the defaults below; WriteTimeout should stay comfortably
// above Config.QueryTimeout so deadline-expired queries can still deliver
// their 503.
type RunConfig struct {
	ReadTimeout     time.Duration // default 5s (full request read)
	WriteTimeout    time.Duration // default 30s
	IdleTimeout     time.Duration // default 120s (keep-alive connections)
	ShutdownTimeout time.Duration // default 10s (drain window on shutdown)
	// OnListen, when set, receives the bound address before serving starts
	// — with ":0" this is the only way to learn the chosen port.
	OnListen func(net.Addr)
}

func (c RunConfig) withDefaults() RunConfig {
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 120 * time.Second
	}
	if c.ShutdownTimeout <= 0 {
		c.ShutdownTimeout = 10 * time.Second
	}
	return c
}

// Run serves h on addr until ctx is cancelled (e.g. by SIGINT/SIGTERM via
// signal.NotifyContext), then shuts down gracefully: the listener closes,
// in-flight requests get up to ShutdownTimeout to finish, and only then are
// stragglers cut off. Returns nil on a clean drain, the serve error if the
// listener fails first.
func Run(ctx context.Context, addr string, h http.Handler, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	hs := &http.Server{
		Handler:      h,
		ReadTimeout:  cfg.ReadTimeout,
		WriteTimeout: cfg.WriteTimeout,
		IdleTimeout:  cfg.IdleTimeout,
	}
	if cfg.OnListen != nil {
		cfg.OnListen(ln.Addr())
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("server: %w", err)
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), cfg.ShutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close()
		return fmt.Errorf("server: shutdown: %w", err)
	}
	<-errc // Serve has returned http.ErrServerClosed
	return nil
}
