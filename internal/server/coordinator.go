package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"ctxsearch/internal/cache"
	"ctxsearch/internal/par"
	"ctxsearch/internal/shard"
	"ctxsearch/internal/topk"
)

// DefaultShardTimeout bounds each shard sub-request of a scatter-gather
// query. It is deliberately shorter than DefaultQueryTimeout so a slow
// shard resolves into a 503 (or a flagged partial page) while the client
// request still has budget to carry the answer.
const DefaultShardTimeout = time.Second

// ShardConfig tunes the coordinator's fan-out behaviour.
type ShardConfig struct {
	// ShardTimeout bounds each per-shard sub-request
	// (0 = DefaultShardTimeout, negative = no per-shard deadline — the
	// request deadline still applies).
	ShardTimeout time.Duration
	// AllowPartial serves a degraded page flagged "partial": true when some
	// shards fail, instead of a 503. Client errors (a shard's 400) are
	// always relayed, never degraded around.
	AllowPartial bool
	// FanOut caps concurrent shard sub-requests per query (0 = all shards
	// at once).
	FanOut int
}

func (c ShardConfig) shardTimeout() time.Duration {
	if c.ShardTimeout == 0 {
		return DefaultShardTimeout
	}
	if c.ShardTimeout < 0 {
		return 0
	}
	return c.ShardTimeout
}

// Coordinator is the multi-process scatter-gather front: a stateless
// http.Handler that fans /search out to shard servers' POST /shard/search,
// merges the rendered pages exactly (the healthy-path body is
// byte-identical to a single-engine server's), and proxies the per-paper
// endpoints to the shards round-robin. It holds no corpus state at all —
// it can boot instantly and restart freely.
//
// Failure policy: a shard that answers 400 fails the query with that 400
// (bad queries are deterministic across shards). A shard that times out,
// refuses connections or answers 5xx either fails the query with 503
// (default) or, with ShardConfig.AllowPartial, degrades it into a page
// flagged "partial": true computed from the healthy shards. Partial pages
// are never cached, so a recovered shard immediately restores exact
// answers. Every sub-request is bounded by ShardTimeout — a dead or hung
// shard can delay a query by at most that, never hang it.
type Coordinator struct {
	cfg      Config
	scfg     ShardConfig
	logger   *log.Logger
	urls     []string
	client   *http.Client
	handler  http.Handler
	inflight chan struct{}
	// cache mirrors the Server's /search body cache. Only exact (all-shard)
	// responses are inserted; see errPartial.
	cache   *cache.Cache[[]byte]
	metrics *shard.Metrics
	// rr distributes proxied single-shard requests (/contexts,
	// /papers/{id}, /stats) across shards. Every shard holds the full
	// corpus-global system state, so any shard answers these exactly.
	rr atomic.Uint64
}

// NewCoordinator assembles a coordinator over the given shard base URLs
// (e.g. "http://127.0.0.1:8101"). The middleware stack matches the
// single-engine server's: request deadline, load shedding, panic recovery
// and request logging, with /healthz and /readyz exempt from shedding.
func NewCoordinator(urls []string, cfg Config, scfg ShardConfig) *Coordinator {
	if len(urls) == 0 {
		panic("server: NewCoordinator needs at least one shard URL")
	}
	c := &Coordinator{
		cfg:     cfg,
		scfg:    scfg,
		logger:  cfg.Logger,
		urls:    make([]string, len(urls)),
		client:  &http.Client{},
		metrics: shard.NewMetrics(len(urls)),
	}
	for i, u := range urls {
		c.urls[i] = strings.TrimRight(u, "/")
	}
	if c.logger == nil {
		c.logger = log.New(io.Discard, "", 0)
	}
	if n := cfg.maxInflight(); n > 0 {
		c.inflight = make(chan struct{}, n)
	}
	c.cache = cache.New[[]byte](cfg.cacheEntries(), cfg.cacheTTL())

	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", c.handleSearch)
	mux.HandleFunc("GET /contexts", c.handleProxy)
	mux.HandleFunc("GET /papers/{id}", c.handleProxy)
	mux.HandleFunc("GET /stats", c.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", c.handleReadyz)

	api := withShedding(c.inflight, withTimeout(cfg.queryTimeout(), mux))
	root := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/readyz":
			mux.ServeHTTP(w, r)
		default:
			api.ServeHTTP(w, r)
		}
	})
	c.handler = withLogging(c.logger, withRecovery(c.logger, root))
	return c
}

// NumShards returns the number of shard backends.
func (c *Coordinator) NumShards() int { return len(c.urls) }

// Metrics returns the coordinator's fan-out counters.
func (c *Coordinator) Metrics() *shard.Metrics { return c.metrics }

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.handler.ServeHTTP(w, r)
}

// shardCallError is one failed shard sub-request. status is the shard's
// HTTP status when a response arrived (0 for transport failures); body
// carries the shard's error payload for relaying client errors.
type shardCallError struct {
	shard  int
	status int
	body   []byte
	err    error
}

func (e *shardCallError) Error() string {
	if e.err != nil {
		return fmt.Sprintf("shard %d: %v", e.shard, e.err)
	}
	return fmt.Sprintf("shard %d: status %d", e.shard, e.status)
}

func (e *shardCallError) Unwrap() error { return e.err }

// errPartial smuggles a degraded response body through cache.Do, which
// never caches loads that return an error — exactly the behaviour partial
// pages need (a recovered shard must not be masked by a cached degraded
// page).
type errPartial struct{ body []byte }

func (*errPartial) Error() string { return "partial response" }

// callShard runs one POST /shard/search sub-request under the per-shard
// deadline and decodes the page.
func (c *Coordinator) callShard(ctx context.Context, i int, payload []byte) ([]SearchResult, *shardCallError) {
	if d := c.scfg.shardTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.urls[i]+"/shard/search", bytes.NewReader(payload))
	if err != nil {
		return nil, &shardCallError{shard: i, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		// client.Do wraps the context error; surface it for the
		// timeout-vs-error metrics split.
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = ctxErr
		}
		return nil, &shardCallError{shard: i, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = ctxErr
		}
		return nil, &shardCallError{shard: i, err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &shardCallError{shard: i, status: resp.StatusCode, body: body}
	}
	var page ShardSearchResponse
	if err := json.Unmarshal(body, &page); err != nil {
		return nil, &shardCallError{shard: i, err: fmt.Errorf("bad shard response: %w", err)}
	}
	return page.Results, nil
}

// worseRow orders rendered rows exactly as search.WorseResult orders engine
// rows (descending relevancy, ties by ascending paper id): relevancy is
// serialised at full precision, so the JSON round-trip through the shard
// preserves the engine's total order bit for bit.
func worseRow(a, b SearchResult) bool {
	if a.Relevancy != b.Relevancy {
		return a.Relevancy < b.Relevancy
	}
	return a.PaperID > b.PaperID
}

func sortRows(rows []SearchResult) {
	sort.Slice(rows, func(i, j int) bool { return worseRow(rows[j], rows[i]) })
}

func (c *Coordinator) handleSearch(w http.ResponseWriter, r *http.Request) {
	p, ok := parseSearchParams(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	body, err := c.cache.Do(searchCacheKey(p.q, p.boolean, p.opts), func() ([]byte, error) {
		return c.buildSearchResponse(ctx, p)
	})
	var pb *errPartial
	if errors.As(err, &pb) {
		body, err = pb.body, nil
	}
	if err != nil {
		c.writeShardErr(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// buildSearchResponse fans one query out to every shard and merges. The
// returned error is either a *shardCallError / pipeline error (request
// failed) or *errPartial (degraded body that must bypass the cache).
func (c *Coordinator) buildSearchResponse(ctx context.Context, p searchParams) ([]byte, error) {
	// The scatter transformation: every shard returns its own top
	// offset+limit rows; the offset is applied after the merge.
	// parseSearchParams guarantees limit >= 1.
	k := p.opts.Offset + p.opts.Limit
	payload, err := json.Marshal(ShardSearchRequest{
		Q:         p.q,
		Boolean:   p.boolean,
		Limit:     k,
		Threshold: p.opts.Threshold,
	})
	if err != nil {
		return nil, err
	}
	n := len(c.urls)
	pages := make([][]SearchResult, n)
	errs := make([]*shardCallError, n)
	var maxShard shard.AtomicMaxDuration
	par.For(n, c.scfg.FanOut, func(i int) {
		t0 := time.Now()
		pages[i], errs[i] = c.callShard(ctx, i, payload)
		maxShard.Observe(time.Since(t0))
		if errs[i] != nil {
			c.metrics.ObserveShard(i, errs[i])
		} else {
			c.metrics.ObserveShard(i, nil)
		}
	})

	partial := false
	healthy := 0
	for _, e := range errs {
		switch {
		case e == nil:
			healthy++
		case e.status >= 400 && e.status < 500:
			// A client error is deterministic across shards (same query,
			// same analyzer): relay the first one instead of degrading.
			return nil, e
		}
	}
	if healthy < n {
		if !c.scfg.AllowPartial || healthy == 0 {
			for _, e := range errs {
				if e != nil {
					return nil, e
				}
			}
		}
		partial = true
	}

	t0 := time.Now()
	heap := topk.New(k, worseRow)
	for _, page := range pages {
		for _, row := range page {
			if heap.Full() && !worseRow(heap.Min(), row) {
				break // pages are sorted: every later row is worse still
			}
			heap.Offer(row)
		}
	}
	merged := heap.Items()
	sortRows(merged)
	rows := []SearchResult{}
	if p.opts.Offset < len(merged) {
		rows = append(rows, merged[p.opts.Offset:]...)
	}
	c.metrics.ObserveSearch(maxShard.Load(), time.Since(t0))

	body, err := json.Marshal(SearchResponse{Query: p.q, Results: rows, Partial: partial})
	if err != nil {
		return nil, err
	}
	if partial {
		c.metrics.ObservePartial()
		return nil, &errPartial{body: body}
	}
	return body, nil
}

// writeShardErr maps a failed scatter-gather to a response: relayed client
// errors keep the shard's status and body, everything else (timeouts, dead
// shards, 5xx) is a 503 — the coordinator is healthy, the backend is not.
func (c *Coordinator) writeShardErr(w http.ResponseWriter, r *http.Request, err error) {
	var sce *shardCallError
	if errors.As(err, &sce) {
		if sce.status >= 400 && sce.status < 500 && json.Valid(sce.body) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(sce.status)
			_, _ = w.Write(sce.body)
			return
		}
		c.logger.Printf("shard failure on %s %s: %v", r.Method, r.URL.Path, sce)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "shard %d unavailable", sce.shard)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "query deadline exceeded")
		return
	}
	if errors.Is(err, context.Canceled) {
		c.logger.Printf("client abandoned %s %s", r.Method, r.URL.Path)
		return
	}
	writeErr(w, http.StatusBadGateway, "shard backend error: %v", err)
}

// handleProxy forwards a single-shard request (round-robin) and relays the
// response verbatim. Every shard holds the full corpus, so these endpoints
// are exact from any one of them.
func (c *Coordinator) handleProxy(w http.ResponseWriter, r *http.Request) {
	i := int(c.rr.Add(1)-1) % len(c.urls)
	status, hdr, body, err := c.fetch(r.Context(), i, r.URL.RequestURI())
	if err != nil {
		c.metrics.ObserveShard(i, err)
		c.writeShardErr(w, r, &shardCallError{shard: i, err: err})
		return
	}
	c.metrics.ObserveShard(i, nil)
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// fetch GETs one shard endpoint under the per-shard deadline.
func (c *Coordinator) fetch(ctx context.Context, i int, uri string) (int, http.Header, []byte, error) {
	if d := c.scfg.shardTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.urls[i]+uri, nil)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = ctxErr
		}
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, body, nil
}

// handleStats serves corpus statistics from one shard (they are global on
// every shard) overlaid with the coordinator's own cache and fan-out
// counters. Any shard can answer, so a failed pick falls through to the
// next — /stats is exactly the endpoint an operator hits during a shard
// outage, and the coordinator's own counters must stay reachable as long
// as one shard is up.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	start := int(c.rr.Add(1)-1) % len(c.urls)
	var body []byte
	var lastErr *shardCallError
	for k := 0; k < len(c.urls); k++ {
		i := (start + k) % len(c.urls)
		status, _, b, err := c.fetch(r.Context(), i, "/stats")
		if err == nil && status == http.StatusOK {
			c.metrics.ObserveShard(i, nil)
			body = b
			break
		}
		if err == nil {
			err = fmt.Errorf("status %d", status)
		}
		c.metrics.ObserveShard(i, err)
		lastErr = &shardCallError{shard: i, status: status, err: err}
	}
	if body == nil {
		c.writeShardErr(w, r, lastErr)
		return
	}
	var resp StatsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		c.writeShardErr(w, r, &shardCallError{err: err})
		return
	}
	cst := c.cache.Stats()
	resp.CacheHits = cst.Hits
	resp.CacheMisses = cst.Misses
	resp.CacheCoalesced = cst.Coalesced
	resp.CacheEntries = cst.Entries
	snap := c.metrics.Snapshot()
	resp.Sharding = &snap
	writeJSON(w, http.StatusOK, resp)
}

// handleReadyz reports ready only when every shard's /readyz is ready — a
// coordinator that cannot answer exactly is not ready.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	n := len(c.urls)
	down := make([]bool, n)
	par.For(n, c.scfg.FanOut, func(i int) {
		status, _, _, err := c.fetch(r.Context(), i, "/readyz")
		down[i] = err != nil || status != http.StatusOK
	})
	var notReady []string
	for i, d := range down {
		if d {
			notReady = append(notReady, c.urls[i])
		}
	}
	if len(notReady) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "starting", "waiting_for": notReady,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
