package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"ctxsearch/internal/cache"
	"ctxsearch/internal/par"
	"ctxsearch/internal/resilience"
	"ctxsearch/internal/shard"
	"ctxsearch/internal/topk"
)

// DefaultShardTimeout bounds each shard sub-request of a scatter-gather
// query. It is deliberately shorter than DefaultQueryTimeout so a slow
// shard resolves into a 503 (or a flagged partial page) while the client
// request still has budget to carry the answer.
const DefaultShardTimeout = time.Second

// DefaultMaxRetries is how many times a failed range call is retried on
// another (or, with one replica, the same) backend before giving up.
const DefaultMaxRetries = 2

// ShardConfig tunes the coordinator's fan-out and resilience behaviour.
type ShardConfig struct {
	// ShardTimeout bounds each per-replica sub-request — each retry and
	// hedge gets a fresh allowance (0 = DefaultShardTimeout, negative = no
	// per-attempt deadline — the request deadline still applies).
	ShardTimeout time.Duration
	// AllowPartial serves a degraded page flagged "partial": true when some
	// shard ranges fail, instead of a 503. Client errors (a shard's 400) are
	// always relayed, never degraded around.
	AllowPartial bool
	// FanOut caps concurrent range sub-requests per query (0 = all ranges
	// at once).
	FanOut int

	// MaxRetries caps retry attempts per range call, on top of the first
	// attempt (0 = DefaultMaxRetries, negative = no retries). Each retry
	// prefers a replica not yet tried and must be covered by the retry
	// budget.
	MaxRetries int
	// RetryBudget is the retry token bucket's capacity (0 =
	// resilience.DefaultBudgetCapacity, negative = unbounded retries — for
	// tests only). RetryRatio is the per-request deposit (0 =
	// resilience.DefaultBudgetRatio).
	RetryBudget float64
	RetryRatio  float64
	// HedgeAfter, when positive, fires a hedge request to a second replica
	// if the first has not answered within this delay, taking whichever
	// succeeds first and cancelling the loser. Hedges draw from the retry
	// budget. Zero disables hedging.
	HedgeAfter time.Duration
	// BreakerThreshold and BreakerCooldown tune the per-backend circuit
	// breakers (0 = resilience defaults).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeInterval is the active health-probe period per backend (0 =
	// resilience.DefaultProbeInterval, negative = no prober — every backend
	// is assumed healthy).
	ProbeInterval time.Duration
	// Backoff spaces retries out (zero value = resilience defaults; set
	// Jitter negative for deterministic delays in tests).
	Backoff resilience.Backoff
}

func (c ShardConfig) shardTimeout() time.Duration {
	if c.ShardTimeout == 0 {
		return DefaultShardTimeout
	}
	if c.ShardTimeout < 0 {
		return 0
	}
	return c.ShardTimeout
}

func (c ShardConfig) maxRetries() int {
	if c.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	if c.MaxRetries < 0 {
		return 0
	}
	return c.MaxRetries
}

// Coordinator is the multi-process scatter-gather front: a stateless
// http.Handler that fans /search out to shard servers' POST /shard/search,
// merges the rendered pages exactly (the healthy-path body is
// byte-identical to a single-engine server's), and proxies the per-paper
// endpoints to the backends. It holds no corpus state at all — it can boot
// instantly and restart freely.
//
// Each shard range may be served by several replicas (all built from the
// same deterministic artifact, so any replica's page is byte-identical).
// The resilience layer stacks four mechanisms around replica calls:
//
//   - a circuit breaker per backend trips after consecutive failures and
//     stops sending until a cool-down probe succeeds, so a dead replica
//     costs at most a handful of requests, not one per query;
//   - failed range calls retry on the next replica with exponential
//     backoff, governed by a global retry token budget that bounds retry
//     amplification during outages (R requests can add at most
//     capacity + R·ratio retries);
//   - optional hedging races a second replica when the first is slow;
//   - an active health prober feeds breaker state so recovery is detected
//     without sacrificing user queries.
//
// Failure policy: a shard that answers 400 fails the query with that 400
// (bad queries are deterministic across shards). A range whose replicas
// all fail either fails the query with 503 (default) or, with
// ShardConfig.AllowPartial, degrades it into a page flagged "partial":
// true computed from the healthy ranges. Partial pages are never cached,
// so a recovered range immediately restores exact answers. Every attempt
// is bounded by ShardTimeout — a dead or hung replica can delay a query,
// never hang it.
type Coordinator struct {
	cfg      Config
	scfg     ShardConfig
	logger   *log.Logger
	handler  http.Handler
	inflight chan struct{}
	// cache mirrors the Server's /search body cache. Only exact (all-range)
	// responses are inserted; see errPartial.
	cache   *cache.Cache[[]byte]
	metrics *shard.Metrics

	// backends is the flat list of replica base URLs; ranges[ri] lists the
	// backend indices replicating range ri; rangeOf inverts that.
	backends []string
	ranges   [][]int
	rangeOf  []int

	client   *http.Client
	breakers []*resilience.Breaker
	budget   *resilience.Budget // nil = unbounded (RetryBudget < 0)
	backoff  resilience.Backoff
	prober   *resilience.Prober // nil = probing disabled

	// retryAfter is the Retry-After hint on backend-unavailable 503s: the
	// longer of the per-attempt timeout and the breaker cool-down — the
	// soonest a retry could plausibly see a recovered backend.
	retryAfter string

	// rr distributes proxied single-backend requests (/contexts,
	// /papers/{id}, /stats) across all backends. Every backend holds the
	// full corpus-global system state, so any backend answers these
	// exactly. replicaRR rotates the preferred replica within each range.
	rr        atomic.Uint64
	replicaRR []atomic.Uint64
}

// NewCoordinator assembles a coordinator over the given shard range URLs.
// Each element serves one contiguous paper range and may list several
// replica base URLs separated by "|" (e.g.
// "http://127.0.0.1:8101|http://127.0.0.1:8201"). The middleware stack
// matches the single-engine server's: request deadline, load shedding,
// panic recovery and request logging, with /healthz and /readyz exempt
// from shedding. Close must be called to stop the health prober.
func NewCoordinator(urls []string, cfg Config, scfg ShardConfig) *Coordinator {
	if len(urls) == 0 {
		panic("server: NewCoordinator needs at least one shard URL")
	}
	c := &Coordinator{
		cfg:     cfg,
		scfg:    scfg,
		logger:  cfg.Logger,
		client:  &http.Client{},
		backoff: scfg.Backoff,
	}
	for ri, group := range urls {
		var members []int
		for _, u := range strings.Split(group, "|") {
			u = strings.TrimSpace(strings.TrimRight(u, "/"))
			if u == "" {
				continue
			}
			members = append(members, len(c.backends))
			c.backends = append(c.backends, u)
			c.rangeOf = append(c.rangeOf, ri)
		}
		if len(members) == 0 {
			panic("server: NewCoordinator range with no replica URLs")
		}
		c.ranges = append(c.ranges, members)
	}
	if c.logger == nil {
		c.logger = log.New(io.Discard, "", 0)
	}
	if n := cfg.maxInflight(); n > 0 {
		c.inflight = make(chan struct{}, n)
	}
	c.cache = cache.New[[]byte](cfg.cacheEntries(), cfg.cacheTTL())
	c.metrics = shard.NewMetricsReplicated(len(c.ranges), c.rangeOf)
	c.replicaRR = make([]atomic.Uint64, len(c.ranges))

	if scfg.RetryBudget >= 0 {
		c.budget = resilience.NewBudget(resilience.BudgetConfig{
			Capacity: scfg.RetryBudget,
			Ratio:    scfg.RetryRatio,
		})
	}
	c.breakers = make([]*resilience.Breaker, len(c.backends))
	for g := range c.backends {
		c.breakers[g] = resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: scfg.BreakerThreshold,
			Cooldown:         scfg.BreakerCooldown,
			OnOpen:           c.metrics.ObserveBreakerOpen,
		})
	}
	if scfg.ProbeInterval >= 0 {
		c.prober = resilience.NewProber(c.backends, resilience.ProberConfig{
			Interval: scfg.ProbeInterval,
			OnProbe:  c.onProbe,
		}, c.client)
	}
	cooldown := resilience.DefaultCooldown
	if scfg.BreakerCooldown > 0 {
		cooldown = scfg.BreakerCooldown
	}
	hint := c.scfg.shardTimeout()
	if cooldown > hint {
		hint = cooldown
	}
	c.retryAfter = retryAfterSecs(hint)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", c.handleSearch)
	mux.HandleFunc("GET /contexts", c.handleProxy)
	mux.HandleFunc("GET /papers/{id}", c.handleProxy)
	mux.HandleFunc("GET /stats", c.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", c.handleReadyz)

	api := withShedding(c.inflight, retryAfterSecs(cfg.queryTimeout()), withTimeout(cfg.queryTimeout(), mux))
	root := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/readyz":
			mux.ServeHTTP(w, r)
		default:
			api.ServeHTTP(w, r)
		}
	})
	c.handler = withLogging(c.logger, withRecovery(c.logger, root))
	return c
}

// Close stops the health prober's goroutines. Safe to call on a
// coordinator without one.
func (c *Coordinator) Close() {
	if c.prober != nil {
		c.prober.Close()
	}
}

// onProbe feeds one health-probe verdict into the backend's breaker. A
// failed probe always counts (probes alone trip the breaker of a dead
// replica, before any query pays for the discovery). A successful probe
// only counts while the breaker is not closed — in the closed state it
// must not reset the consecutive-failure count, or a backend whose
// /healthz answers while /shard/search fails would never trip. For an
// open breaker past its cool-down, the probe itself performs the
// half-open transition, so recovery never costs a user query.
func (c *Coordinator) onProbe(g int, ok bool) {
	b := c.breakers[g]
	if !ok {
		b.Record(false)
		return
	}
	if b.State() != resilience.Closed && b.Allow() {
		b.Record(true)
	}
}

// healthy reports the prober's latest verdict (true when probing is off).
func (c *Coordinator) healthy(g int) bool {
	return c.prober == nil || c.prober.Healthy(g)
}

// NumShards returns the number of shard ranges.
func (c *Coordinator) NumShards() int { return len(c.ranges) }

// NumBackends returns the number of physical replicas across all ranges.
func (c *Coordinator) NumBackends() int { return len(c.backends) }

// Metrics returns the coordinator's fan-out counters.
func (c *Coordinator) Metrics() *shard.Metrics { return c.metrics }

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.handler.ServeHTTP(w, r)
}

// shardCallError is one failed range call. shard is the range index;
// status is the backend's HTTP status when a response arrived (0 for
// transport failures); body carries the backend's error payload for
// relaying client errors.
type shardCallError struct {
	shard  int
	status int
	body   []byte
	err    error
}

func (e *shardCallError) Error() string {
	if e.err != nil {
		return fmt.Sprintf("shard %d: %v", e.shard, e.err)
	}
	return fmt.Sprintf("shard %d: status %d", e.shard, e.status)
}

func (e *shardCallError) Unwrap() error { return e.err }

// errAllReplicasDown marks a range call that found no admissible replica:
// every breaker for the range is open and still cooling down.
var errAllReplicasDown = errors.New("all replicas unavailable (circuit open)")

// errPartial smuggles a degraded response body through cache.Do, which
// never caches loads that return an error — exactly the behaviour partial
// pages need (a recovered shard must not be masked by a cached degraded
// page).
type errPartial struct{ body []byte }

func (*errPartial) Error() string { return "partial response" }

// budgetWithdraw asks the retry budget for one token (always granted when
// the budget is disabled).
func (c *Coordinator) budgetWithdraw() bool {
	return c.budget == nil || c.budget.Withdraw()
}

// sleepCtx waits d, or less if ctx ends first (returning its error).
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// pickReplica selects the replica of range ri for the next attempt,
// skipping already-tried backends. Preference order: healthy backends the
// breaker admits, then unhealthy ones it admits (when the prober has
// marked everything down, trying is still better than refusing — probes
// can be stale). Selection rotates per range so load spreads across
// replicas. A backend whose breaker refuses is never picked; if that
// leaves nothing, the range is reported down (false).
func (c *Coordinator) pickReplica(ri int, tried map[int]bool) (int, bool) {
	reps := c.ranges[ri]
	n := len(reps)
	start := int(c.replicaRR[ri].Add(1)-1) % n
	// Pass 1: healthy and admitted. Allow() has side effects (it admits
	// half-open probes), so each breaker is consulted at most once across
	// both passes.
	for k := 0; k < n; k++ {
		g := reps[(start+k)%n]
		if tried[g] || !c.healthy(g) {
			continue
		}
		if c.breakers[g].Allow() {
			return g, true
		}
	}
	// Pass 2: the backends pass 1 skipped for health.
	for k := 0; k < n; k++ {
		g := reps[(start+k)%n]
		if tried[g] || c.healthy(g) {
			continue
		}
		if c.breakers[g].Allow() {
			return g, true
		}
	}
	return 0, false
}

// callReplica runs one POST /shard/search attempt against backend g under
// a fresh per-attempt deadline, decodes the page, and folds the outcome
// into the backend's breaker and replica counters. A cancelled attempt
// (hedge loser, abandoned client) is never recorded into the breaker — a
// cancellation says nothing about the backend.
func (c *Coordinator) callReplica(ctx context.Context, ri, g int, payload []byte) ([]SearchResult, *shardCallError) {
	rows, cerr := c.doShardSearch(ctx, ri, g, payload)
	canceled := cerr != nil && errors.Is(ctx.Err(), context.Canceled)
	switch {
	case canceled:
		c.metrics.ObserveReplica(g, context.Canceled)
	case cerr == nil:
		c.metrics.ObserveReplica(g, nil)
		c.breakers[g].Record(true)
	case cerr.status >= 400 && cerr.status < 500:
		// A client error means the backend is alive and answering; it is a
		// property of the query, not the replica.
		c.metrics.ObserveReplica(g, nil)
		c.breakers[g].Record(true)
	default:
		err := cerr.err
		if err == nil {
			err = fmt.Errorf("status %d", cerr.status)
		}
		c.metrics.ObserveReplica(g, err)
		c.breakers[g].Record(false)
	}
	return rows, cerr
}

// doShardSearch is the bare HTTP exchange of one attempt.
func (c *Coordinator) doShardSearch(ctx context.Context, ri, g int, payload []byte) ([]SearchResult, *shardCallError) {
	if d := c.scfg.shardTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.backends[g]+"/shard/search", bytes.NewReader(payload))
	if err != nil {
		return nil, &shardCallError{shard: ri, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		// client.Do wraps the context error; surface it for the
		// timeout-vs-error metrics split.
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = ctxErr
		}
		return nil, &shardCallError{shard: ri, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = ctxErr
		}
		return nil, &shardCallError{shard: ri, err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &shardCallError{shard: ri, status: resp.StatusCode, body: body}
	}
	var page ShardSearchResponse
	if err := json.Unmarshal(body, &page); err != nil {
		return nil, &shardCallError{shard: ri, err: fmt.Errorf("bad shard response: %w", err)}
	}
	return page.Results, nil
}

// callAttempt runs one (possibly hedged) attempt for range ri, marking
// every backend it touches in tried. Without hedging it is a single
// replica call. With hedging, if the primary has not answered within
// HedgeAfter and the budget covers it, a second replica races it: the
// first success wins and the loser is cancelled.
func (c *Coordinator) callAttempt(ctx context.Context, ri int, tried map[int]bool, payload []byte) ([]SearchResult, *shardCallError) {
	g, ok := c.pickReplica(ri, tried)
	if !ok && len(tried) > 0 {
		// Every replica has been tried this call: a retry may revisit them
		// (with one replica per range, retrying means retrying it).
		for k := range tried {
			delete(tried, k)
		}
		g, ok = c.pickReplica(ri, tried)
	}
	if !ok {
		return nil, &shardCallError{shard: ri, err: errAllReplicasDown}
	}
	tried[g] = true
	if c.scfg.HedgeAfter <= 0 || len(c.ranges[ri]) < 2 {
		return c.callReplica(ctx, ri, g, payload)
	}

	type outcome struct {
		rows   []SearchResult
		err    *shardCallError
		hedged bool
	}
	actx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	ch := make(chan outcome, 2)
	go func() {
		rows, err := c.callReplica(actx, ri, g, payload)
		ch <- outcome{rows, err, false}
	}()

	timer := time.NewTimer(c.scfg.HedgeAfter)
	defer timer.Stop()
	select {
	case o := <-ch:
		// Primary resolved before the hedge delay: no hedge needed.
		return o.rows, o.err
	case <-ctx.Done():
		return nil, &shardCallError{shard: ri, err: ctx.Err()}
	case <-timer.C:
	}

	// Primary is slow. Fire a hedge if a fresh replica and budget exist;
	// otherwise keep waiting on the primary alone.
	g2, ok2 := c.pickReplica(ri, tried)
	if !ok2 || !c.budgetWithdraw() {
		select {
		case o := <-ch:
			return o.rows, o.err
		case <-ctx.Done():
			return nil, &shardCallError{shard: ri, err: ctx.Err()}
		}
	}
	tried[g2] = true
	go func() {
		rows, err := c.callReplica(actx, ri, g2, payload)
		ch <- outcome{rows, err, true}
	}()

	var lastErr *shardCallError
	for i := 0; i < 2; i++ {
		select {
		case o := <-ch:
			if o.err == nil {
				cancelAll() // the loser stops; its cancel is not recorded
				c.metrics.ObserveHedge(o.hedged)
				return o.rows, nil
			}
			lastErr = o.err
		case <-ctx.Done():
			return nil, &shardCallError{shard: ri, err: ctx.Err()}
		}
	}
	c.metrics.ObserveHedge(false)
	return nil, lastErr
}

// callRange resolves range ri: a first attempt plus up to MaxRetries
// budget-covered retries with exponential backoff, each attempt preferring
// a replica not yet tried. Client errors (4xx) and cancellations are
// returned immediately — retrying them is waste.
func (c *Coordinator) callRange(ctx context.Context, ri int, payload []byte) ([]SearchResult, *shardCallError) {
	if c.budget != nil {
		c.budget.Deposit()
	}
	tried := make(map[int]bool)
	var lastErr *shardCallError
	fails := 0
	for attempt := 0; attempt <= c.scfg.maxRetries(); attempt++ {
		if attempt > 0 {
			if !c.budgetWithdraw() {
				c.metrics.ObserveRetryDenied()
				break
			}
			c.metrics.ObserveRetry()
			if err := sleepCtx(ctx, c.backoff.Delay(attempt, nil)); err != nil {
				return nil, &shardCallError{shard: ri, err: err}
			}
		}
		rows, cerr := c.callAttempt(ctx, ri, tried, payload)
		if cerr == nil {
			if fails > 0 {
				c.metrics.ObserveFailover()
			}
			return rows, nil
		}
		lastErr = cerr
		if cerr.status >= 400 && cerr.status < 500 {
			return nil, cerr // deterministic client error: never retry
		}
		if ctx.Err() != nil {
			return nil, cerr // the request itself is over
		}
		fails++
	}
	return nil, lastErr
}

// worseRow orders rendered rows exactly as search.WorseResult orders engine
// rows (descending relevancy, ties by ascending paper id): relevancy is
// serialised at full precision, so the JSON round-trip through the shard
// preserves the engine's total order bit for bit.
func worseRow(a, b SearchResult) bool {
	if a.Relevancy != b.Relevancy {
		return a.Relevancy < b.Relevancy
	}
	return a.PaperID > b.PaperID
}

func sortRows(rows []SearchResult) {
	sort.Slice(rows, func(i, j int) bool { return worseRow(rows[j], rows[i]) })
}

func (c *Coordinator) handleSearch(w http.ResponseWriter, r *http.Request) {
	p, ok := parseSearchParams(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	body, err := c.cache.Do(searchCacheKey(p.q, p.boolean, p.opts), func() ([]byte, error) {
		return c.buildSearchResponse(ctx, p)
	})
	var pb *errPartial
	if errors.As(err, &pb) {
		body, err = pb.body, nil
	}
	if err != nil {
		c.writeShardErr(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// buildSearchResponse fans one query out to every shard range and merges.
// The returned error is either a *shardCallError / pipeline error (request
// failed) or *errPartial (degraded body that must bypass the cache).
func (c *Coordinator) buildSearchResponse(ctx context.Context, p searchParams) ([]byte, error) {
	// The scatter transformation: every range returns its own top
	// offset+limit rows; the offset is applied after the merge.
	// parseSearchParams guarantees limit >= 1.
	k := p.opts.Offset + p.opts.Limit
	payload, err := json.Marshal(ShardSearchRequest{
		Q:         p.q,
		Boolean:   p.boolean,
		Limit:     k,
		Threshold: p.opts.Threshold,
	})
	if err != nil {
		return nil, err
	}
	n := len(c.ranges)
	pages := make([][]SearchResult, n)
	errs := make([]*shardCallError, n)
	var maxShard shard.AtomicMaxDuration
	par.For(n, c.scfg.FanOut, func(ri int) {
		t0 := time.Now()
		pages[ri], errs[ri] = c.callRange(ctx, ri, payload)
		maxShard.Observe(time.Since(t0))
		if errs[ri] != nil {
			c.metrics.ObserveShard(ri, errs[ri])
		} else {
			c.metrics.ObserveShard(ri, nil)
		}
	})

	partial := false
	healthy := 0
	for _, e := range errs {
		switch {
		case e == nil:
			healthy++
		case e.status >= 400 && e.status < 500:
			// A client error is deterministic across shards (same query,
			// same analyzer): relay the first one instead of degrading.
			return nil, e
		}
	}
	if healthy < n {
		if !c.scfg.AllowPartial || healthy == 0 {
			for _, e := range errs {
				if e != nil {
					return nil, e
				}
			}
		}
		partial = true
	}

	t0 := time.Now()
	heap := topk.New(k, worseRow)
	for _, page := range pages {
		for _, row := range page {
			if heap.Full() && !worseRow(heap.Min(), row) {
				break // pages are sorted: every later row is worse still
			}
			heap.Offer(row)
		}
	}
	merged := heap.Items()
	sortRows(merged)
	rows := []SearchResult{}
	if p.opts.Offset < len(merged) {
		rows = append(rows, merged[p.opts.Offset:]...)
	}
	c.metrics.ObserveSearch(maxShard.Load(), time.Since(t0))

	body, err := json.Marshal(SearchResponse{Query: p.q, Results: rows, Partial: partial})
	if err != nil {
		return nil, err
	}
	if partial {
		c.metrics.ObservePartial()
		return nil, &errPartial{body: body}
	}
	return body, nil
}

// writeShardErr maps a failed scatter-gather to a response: relayed client
// errors keep the backend's status and body, everything else (timeouts,
// dead backends, 5xx, tripped breakers) is a 503 with a Retry-After
// derived from the shard timeout and breaker cool-down — the coordinator
// is healthy, the backend is not.
func (c *Coordinator) writeShardErr(w http.ResponseWriter, r *http.Request, err error) {
	var sce *shardCallError
	if errors.As(err, &sce) {
		if sce.status >= 400 && sce.status < 500 && json.Valid(sce.body) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(sce.status)
			_, _ = w.Write(sce.body)
			return
		}
		if errors.Is(sce.err, context.Canceled) {
			c.logger.Printf("client abandoned %s %s", r.Method, r.URL.Path)
			return
		}
		c.logger.Printf("shard failure on %s %s: %v", r.Method, r.URL.Path, sce)
		w.Header().Set("Retry-After", c.retryAfter)
		writeErr(w, http.StatusServiceUnavailable, "shard %d unavailable", sce.shard)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		w.Header().Set("Retry-After", retryAfterSecs(c.cfg.queryTimeout()))
		writeErr(w, http.StatusServiceUnavailable, "query deadline exceeded")
		return
	}
	if errors.Is(err, context.Canceled) {
		c.logger.Printf("client abandoned %s %s", r.Method, r.URL.Path)
		return
	}
	writeErr(w, http.StatusBadGateway, "shard backend error: %v", err)
}

// proxyOrder returns all backends in round-robin order, healthy ones
// first — the candidate sequence for proxied single-backend requests.
func (c *Coordinator) proxyOrder() []int {
	n := len(c.backends)
	start := int(c.rr.Add(1)-1) % n
	order := make([]int, 0, n)
	for k := 0; k < n; k++ {
		if g := (start + k) % n; c.healthy(g) {
			order = append(order, g)
		}
	}
	for k := 0; k < n; k++ {
		if g := (start + k) % n; !c.healthy(g) {
			order = append(order, g)
		}
	}
	return order
}

// proxyFetch runs one GET against the candidate backends in order,
// failing over past dead, erroring or breaker-rejected ones. A 2xx–4xx
// response is final (a 404 paper is a 404 from every backend); 5xx and
// transport errors move on. Outcomes feed breakers and replica counters;
// proxied failover is bounded by the backend count and does not draw from
// the retry budget.
func (c *Coordinator) proxyFetch(ctx context.Context, uri string) (int, http.Header, []byte, *shardCallError) {
	var lastErr *shardCallError
	for _, g := range c.proxyOrder() {
		if !c.breakers[g].Allow() {
			continue
		}
		status, hdr, body, err := c.fetch(ctx, g, uri)
		if errors.Is(ctx.Err(), context.Canceled) {
			return 0, nil, nil, &shardCallError{shard: c.rangeOf[g], err: ctx.Err()}
		}
		switch {
		case err == nil && status < 500:
			c.metrics.ObserveReplica(g, nil)
			c.breakers[g].Record(true)
			return status, hdr, body, nil
		case err == nil:
			c.metrics.ObserveReplica(g, fmt.Errorf("status %d", status))
			c.breakers[g].Record(false)
			lastErr = &shardCallError{shard: c.rangeOf[g], status: status, body: body}
		default:
			c.metrics.ObserveReplica(g, err)
			c.breakers[g].Record(false)
			lastErr = &shardCallError{shard: c.rangeOf[g], err: err}
		}
	}
	if lastErr == nil {
		lastErr = &shardCallError{err: errAllReplicasDown}
	}
	return 0, nil, nil, lastErr
}

// handleProxy forwards a single-backend request and relays the response
// verbatim, failing over across every backend (each holds the full
// corpus, so these endpoints are exact from any one of them).
func (c *Coordinator) handleProxy(w http.ResponseWriter, r *http.Request) {
	status, hdr, body, cerr := c.proxyFetch(r.Context(), r.URL.RequestURI())
	if cerr != nil {
		c.writeShardErr(w, r, cerr)
		return
	}
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// fetch GETs one backend endpoint under the per-attempt deadline.
func (c *Coordinator) fetch(ctx context.Context, g int, uri string) (int, http.Header, []byte, error) {
	if d := c.scfg.shardTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.backends[g]+uri, nil)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = ctxErr
		}
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, body, nil
}

// handleStats serves corpus statistics from any backend (they are global
// on every one) overlaid with the coordinator's own cache, fan-out and
// resilience counters. /stats is exactly the endpoint an operator hits
// during an outage, so it fails over across every backend and decorates
// the replica counters with live breaker and health state.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	status, _, body, cerr := c.proxyFetch(r.Context(), "/stats")
	if cerr == nil && status != http.StatusOK {
		cerr = &shardCallError{status: status, body: body}
	}
	if cerr != nil {
		c.writeShardErr(w, r, cerr)
		return
	}
	var resp StatsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		c.writeShardErr(w, r, &shardCallError{err: err})
		return
	}
	cst := c.cache.Stats()
	resp.CacheHits = cst.Hits
	resp.CacheMisses = cst.Misses
	resp.CacheCoalesced = cst.Coalesced
	resp.CacheEntries = cst.Entries
	snap := c.metrics.Snapshot()
	for g := range snap.Replicas {
		snap.Replicas[g].URL = c.backends[g]
		snap.Replicas[g].State = c.breakers[g].State().String()
		snap.Replicas[g].Healthy = c.healthy(g)
	}
	resp.Sharding = &snap
	writeJSON(w, http.StatusOK, resp)
}

// handleReadyz reports ready only when every shard range has at least one
// replica whose /readyz is ready — that is exactly the condition under
// which the coordinator can still answer every query exactly.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	n := len(c.backends)
	up := make([]bool, n)
	par.For(n, c.scfg.FanOut, func(g int) {
		status, _, _, err := c.fetch(r.Context(), g, "/readyz")
		up[g] = err == nil && status == http.StatusOK
	})
	var waiting []string
	for _, reps := range c.ranges {
		ok := false
		for _, g := range reps {
			if up[g] {
				ok = true
				break
			}
		}
		if !ok {
			for _, g := range reps {
				waiting = append(waiting, c.backends[g])
			}
		}
	}
	if len(waiting) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "starting", "waiting_for": waiting,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
