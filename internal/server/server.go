// Package server exposes the context-based search engine over HTTP with a
// small JSON API — the deployment shape the paper's system (a digital
// library search service) implies:
//
//	GET /search?q=...&limit=N&offset=N&threshold=T&boolean=1   ranked results
//	GET /contexts?q=...                     selected contexts for a query
//	GET /papers/{id}                        one paper with contexts & scores
//	GET /stats                              corpus/context statistics
//	GET /healthz                            liveness (always 200)
//	GET /readyz                             readiness (200 once the engine is built)
//
// The serving path is production-hardened: every API request runs under a
// deadline (Config.QueryTimeout) that cancels the scoring pipeline and
// returns 503, a semaphore sheds excess load with 429 + Retry-After
// (Config.MaxInflight), panics are recovered into 500s, and requests are
// logged with status and latency. /healthz and /readyz bypass shedding and
// deadlines so probes keep answering under overload. Run serves a handler
// with sane HTTP timeouts and graceful, draining shutdown.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ctxsearch"
	"ctxsearch/internal/cache"
	"ctxsearch/internal/index"
	"ctxsearch/internal/shard"
)

// Searcher is the query surface the server fronts. Both a single
// *ctxsearch.Engine and an in-process *shard.Group satisfy it (the group
// returns byte-identical results), so a deployment picks its shape purely
// by what it installs via SetReadyFrozen / SetReadySharded.
type Searcher interface {
	SearchContext(ctx context.Context, query string, opts ctxsearch.SearchOptions) ([]ctxsearch.SearchResult, error)
	SearchBooleanContext(ctx context.Context, query string, opts ctxsearch.SearchOptions) ([]ctxsearch.SearchResult, error)
	SelectContextsContext(ctx context.Context, query string, opts ctxsearch.SearchOptions) ([]ctxsearch.ContextScore, error)
}

// Defaults for Config's zero values.
const (
	DefaultQueryTimeout = 2 * time.Second
	DefaultMaxInflight  = 64
	// DefaultCacheEntries and DefaultCacheTTL size the /search result
	// cache. The TTL exists for hygiene (the corpus is immutable while an
	// engine is installed; the cache is also invalidated wholesale on
	// every engine swap), so it can be generous.
	DefaultCacheEntries = 1024
	DefaultCacheTTL     = time.Minute
)

// Paging bounds: a /search without limit serves DefaultLimit results, and
// requests with limit/offset above the Max caps are rejected with 400
// instead of building adversarially large result pages.
const (
	DefaultLimit = 100
	MaxLimit     = 1000
	MaxOffset    = 100000
)

// Config tunes the serving middleware stack.
type Config struct {
	// QueryTimeout bounds each API request; on expiry the request gets a
	// 503 and the scoring pipeline is cancelled (0 = DefaultQueryTimeout,
	// negative = no deadline).
	QueryTimeout time.Duration
	// MaxInflight caps concurrently served API requests; excess requests
	// are shed immediately with 429 + Retry-After (0 = DefaultMaxInflight,
	// negative = unlimited).
	MaxInflight int
	// Logger receives request and panic logs (nil = discard).
	Logger *log.Logger
	// CacheEntries caps the /search result cache (0 = DefaultCacheEntries,
	// negative = caching disabled).
	CacheEntries int
	// CacheTTL expires cached /search responses (0 = DefaultCacheTTL,
	// negative = no expiry; the cache is invalidated on engine swap
	// regardless).
	CacheTTL time.Duration
}

func (c Config) queryTimeout() time.Duration {
	if c.QueryTimeout == 0 {
		return DefaultQueryTimeout
	}
	if c.QueryTimeout < 0 {
		return 0
	}
	return c.QueryTimeout
}

func (c Config) maxInflight() int {
	if c.MaxInflight == 0 {
		return DefaultMaxInflight
	}
	if c.MaxInflight < 0 {
		return 0
	}
	return c.MaxInflight
}

func (c Config) cacheEntries() int {
	if c.CacheEntries == 0 {
		return DefaultCacheEntries
	}
	if c.CacheEntries < 0 {
		return 0
	}
	return c.CacheEntries
}

func (c Config) cacheTTL() time.Duration {
	if c.CacheTTL == 0 {
		return DefaultCacheTTL
	}
	if c.CacheTTL < 0 {
		return 0
	}
	return c.CacheTTL
}

// StateRef is a refcounted handle on externally-owned resources backing a
// backend — in practice the mmapped v4 state file (*store.Mapped) whose
// pages the engine's CSR arrays alias. Retain/Release bracket each request
// so a swap never unmaps memory a handler is still reading; Close drops
// the owner reference when the backend is swapped out (the mapping goes
// away once the last in-flight request releases).
type StateRef interface {
	Retain() bool
	Release()
	Close() error
}

// backend bundles the query-serving state; it is swapped in atomically once
// the engine is built, flipping /readyz to 200. Prestige is held in its
// frozen CSR matrix form — the same structure the engine's hot path reads.
type backend struct {
	sys      *ctxsearch.System
	cs       *ctxsearch.ContextSet
	matrix   *ctxsearch.Matrix
	searcher Searcher
	// ref, when non-nil, is the mapped state this backend reads from. The
	// server owns it: installed via SetReadyMapped, closed on swap-out.
	ref StateRef
}

// acquire takes a per-request reference on the backend's mapped state. It
// fails only when the backend raced a swap-out and every other holder
// already released — the caller must reload the backend pointer.
func (b *backend) acquire() bool { return b.ref == nil || b.ref.Retain() }

// release returns acquire's reference.
func (b *backend) release() {
	if b.ref != nil {
		b.ref.Release()
	}
}

// Server wires the search engine into an http.Handler behind the
// middleware stack.
type Server struct {
	cfg      Config
	logger   *log.Logger
	mux      *http.ServeMux
	handler  http.Handler
	inflight chan struct{}
	backend  atomic.Pointer[backend]
	// coldStart is the boot duration (nanoseconds) reported by /stats —
	// recorded by the deployment via SetColdStart when readiness flips.
	coldStart atomic.Int64
	// cache holds marshalled /search response bodies keyed on (query,
	// boolean flag, paging options); concurrent identical queries are
	// coalesced into one engine call (singleflight), and every engine
	// swap invalidates the whole cache via its generation counter. Nil
	// when Config disables caching.
	cache *cache.Cache[[]byte]
	// testHook, when non-nil, runs inside handleSearch before the engine
	// call — the fault-injection point the server tests use to simulate
	// slow queries. Production code never sets it.
	testHook func(ctx context.Context)
}

// New assembles a ready server with default Config.
func New(sys *ctxsearch.System, cs *ctxsearch.ContextSet, scores ctxsearch.Scores) *Server {
	return NewWithConfig(sys, cs, scores, Config{})
}

// NewWithConfig assembles a ready server with the given Config.
func NewWithConfig(sys *ctxsearch.System, cs *ctxsearch.ContextSet, scores ctxsearch.Scores, cfg Config) *Server {
	s := NewPending(cfg)
	s.SetReady(sys, cs, scores)
	return s
}

// NewPending assembles a server with no engine yet: /healthz answers 200,
// /readyz and every API endpoint answer 503 until SetReady is called. This
// lets a deployment bind its port (liveness) while the index and prestige
// scores are still being built or loaded.
func NewPending(cfg Config) *Server {
	s := &Server{
		cfg:    cfg,
		logger: cfg.Logger,
		mux:    http.NewServeMux(),
	}
	if s.logger == nil {
		s.logger = log.New(io.Discard, "", 0)
	}
	if n := cfg.maxInflight(); n > 0 {
		s.inflight = make(chan struct{}, n)
	}
	s.cache = cache.New[[]byte](cfg.cacheEntries(), cfg.cacheTTL())
	s.mux.HandleFunc("GET /search", s.handleSearch)
	s.mux.HandleFunc("POST /shard/search", s.handleShardSearch)
	s.mux.HandleFunc("GET /contexts", s.handleContexts)
	s.mux.HandleFunc("GET /papers/{id}", s.handlePaper)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)

	// Middleware stack: probes bypass shedding and deadlines (they must
	// answer while the API is saturated); recovery and logging wrap
	// everything.
	api := withShedding(s.inflight, retryAfterSecs(s.cfg.queryTimeout()), withTimeout(s.cfg.queryTimeout(), s.mux))
	root := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/readyz":
			s.mux.ServeHTTP(w, r)
		default:
			api.ServeHTTP(w, r)
		}
	})
	s.handler = withLogging(s.logger, withRecovery(s.logger, root))
	return s
}

// SetReady installs the engine state, flipping /readyz (and the API) live.
// Safe to call concurrently with serving. The map-form scores are frozen
// once into the CSR matrix both the engine and the /papers endpoint read.
func (s *Server) SetReady(sys *ctxsearch.System, cs *ctxsearch.ContextSet, scores ctxsearch.Scores) {
	s.SetReadyFrozen(sys, cs, scores.Freeze())
}

// SetReadyFrozen is SetReady for a pre-frozen prestige matrix — the
// cold-start path when the matrix was loaded from a v2 state file, so boot
// never materialises the nested map form at all.
func (s *Server) SetReadyFrozen(sys *ctxsearch.System, cs *ctxsearch.ContextSet, m *ctxsearch.Matrix) {
	s.SetReadySharded(sys, cs, m, sys.EngineFrozen(cs, m))
}

// SetReadySharded is SetReadyFrozen with an explicit query backend — the
// sharded deployment shape, where the Searcher is an in-process shard.Group
// (or any other exact implementation) instead of the single engine the
// system would build. sys, cs and m still serve /papers, /contexts
// rendering and /stats; they must be the corpus-global state the searcher
// was built from.
func (s *Server) SetReadySharded(sys *ctxsearch.System, cs *ctxsearch.ContextSet, m *ctxsearch.Matrix, searcher Searcher) {
	s.SetReadyMapped(sys, cs, m, searcher, nil)
}

// SetReadyMapped is SetReadySharded for state backed by a mapped v4 file:
// the server takes ownership of ref (open-new, swap, close-old). The old
// backend's mapping is closed after the swap — its pages stay valid until
// the last in-flight request that retained them releases, then unmap.
func (s *Server) SetReadyMapped(sys *ctxsearch.System, cs *ctxsearch.ContextSet, m *ctxsearch.Matrix, searcher Searcher, ref StateRef) {
	// /stats reports top-k evaluator counters per generation, not per
	// process: zero them as the generation is installed. (Engines are not
	// shared across generations — a rebuild or remap constructs new ones —
	// so in-flight queries of the old generation never pollute the new
	// counters.)
	if ts, ok := searcher.(interface{ ResetTopKStats() }); ok {
		ts.ResetTopKStats()
	}
	old := s.backend.Swap(&backend{
		sys:      sys,
		cs:       cs,
		matrix:   m,
		searcher: searcher,
		ref:      ref,
	})
	// Responses computed by the previous engine are now stale; requests
	// already in flight may still insert results of the old engine, which
	// the generation bump also defuses (stale-generation loads are
	// returned to their caller but never cached).
	s.cache.Bump()
	if old != nil && old.ref != nil {
		_ = old.ref.Close()
	}
}

// Close releases the currently installed backend's mapped state, if any.
// The server stops being ready; call on shutdown after draining.
func (s *Server) Close() error {
	if b := s.backend.Swap(nil); b != nil && b.ref != nil {
		return b.ref.Close()
	}
	return nil
}

// SetColdStart records how long boot took from process start (or build
// start) to the readiness flip; /stats reports it as cold_start_ms.
func (s *Server) SetColdStart(d time.Duration) { s.coldStart.Store(int64(d)) }

// Ready reports whether the engine state is installed.
func (s *Server) Ready() bool { return s.backend.Load() != nil }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Ready() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
}

// ready returns the backend with a reference taken on its mapped state
// (the caller must b.release() when done), or writes a 503 and returns nil
// while the engine is still being built. A failed acquire means the loaded
// pointer raced a swap-out; the fresh pointer acquires.
func (s *Server) ready(w http.ResponseWriter) *backend {
	for {
		b := s.backend.Load()
		if b == nil {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, "engine not ready")
			return nil
		}
		if b.acquire() {
			return b
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeQueryErr maps a search-pipeline error to a response: an expired
// deadline is a 503 (the request was accepted but could not be answered in
// time), a client cancellation gets no response at all (the peer is gone),
// anything else is a 400 (bad query).
func (s *Server) writeQueryErr(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", retryAfterSecs(s.cfg.queryTimeout()))
		writeErr(w, http.StatusServiceUnavailable, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		s.logger.Printf("client abandoned %s %s", r.Method, r.URL.Path)
	default:
		writeErr(w, http.StatusBadRequest, "bad query: %v", err)
	}
}

// SearchResponse is the /search payload. Partial is set (and serialised)
// only when a sharded coordinator answered without every shard — the
// healthy-path body stays byte-identical to the single-engine server's.
type SearchResponse struct {
	Query   string         `json:"query"`
	Results []SearchResult `json:"results"`
	Partial bool           `json:"partial,omitempty"`
}

// SearchResult is one /search row.
type SearchResult struct {
	PaperID     int     `json:"paper_id"`
	PMID        int     `json:"pmid"`
	Year        int     `json:"year"`
	Title       string  `json:"title"`
	Snippet     string  `json:"snippet"`
	Relevancy   float64 `json:"relevancy"`
	Prestige    float64 `json:"prestige"`
	Match       float64 `json:"match"`
	Context     string  `json:"context"`
	ContextName string  `json:"context_name"`
}

// searchParams is a validated /search request: the trimmed query, the
// boolean-mode flag and the bounded paging options.
type searchParams struct {
	q       string
	boolean bool
	opts    ctxsearch.SearchOptions
}

// parseSearchParams validates the /search query string. On a bad request it
// writes the 400 itself and reports ok=false. Shared by the single-engine
// handler and the scatter-gather Coordinator so both fronts accept exactly
// the same requests.
func parseSearchParams(w http.ResponseWriter, r *http.Request) (p searchParams, ok bool) {
	p.q = strings.TrimSpace(r.URL.Query().Get("q"))
	if p.q == "" {
		writeErr(w, http.StatusBadRequest, "missing query parameter q")
		return p, false
	}
	// A request without limit serves the first DefaultLimit results — an
	// omitted limit means "a reasonable first page", never "the whole
	// corpus" (clients wanting more pages page explicitly, up to MaxLimit
	// per request).
	p.opts = ctxsearch.SearchOptions{Limit: DefaultLimit}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "bad limit %q", v)
			return p, false
		}
		if n > MaxLimit {
			writeErr(w, http.StatusBadRequest, "limit %d exceeds maximum %d", n, MaxLimit)
			return p, false
		}
		p.opts.Limit = n
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad offset %q", v)
			return p, false
		}
		if n > MaxOffset {
			writeErr(w, http.StatusBadRequest, "offset %d exceeds maximum %d", n, MaxOffset)
			return p, false
		}
		p.opts.Offset = n
	}
	if v := r.URL.Query().Get("threshold"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil || t < 0 || t > 1 {
			writeErr(w, http.StatusBadRequest, "bad threshold %q", v)
			return p, false
		}
		p.opts.Threshold = t
	}
	if v := r.URL.Query().Get("boolean"); v == "1" || v == "true" {
		p.boolean = true
	}
	return p, true
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	b := s.ready(w)
	if b == nil {
		return
	}
	defer b.release()
	p, ok := parseSearchParams(w, r)
	if !ok {
		return
	}
	q, boolean, opts := p.q, p.boolean, p.opts
	ctx := r.Context()
	// The cache holds fully marshalled bodies, so a hit writes bytes
	// without touching the engine, the corpus or the JSON encoder.
	// Concurrent misses for the same key run one engine call; the loader
	// re-reads the backend pointer so a response computed by a just-
	// replaced engine can never be cached past the swap's generation bump.
	body, err := s.cache.Do(searchCacheKey(q, boolean, opts), func() ([]byte, error) {
		return s.buildSearchResponse(ctx, q, boolean, opts)
	})
	if err != nil {
		s.writeQueryErr(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// searchCacheKey fingerprints everything that determines a /search body:
// the trimmed query, the boolean flag and the paging/threshold options.
// strconv formats the float threshold exactly, so distinct options can
// never collide.
func searchCacheKey(q string, boolean bool, opts ctxsearch.SearchOptions) string {
	var b strings.Builder
	b.Grow(len(q) + 24)
	b.WriteString(q)
	b.WriteByte(0)
	if boolean {
		b.WriteByte('b')
	}
	b.WriteString(strconv.Itoa(opts.Limit))
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(opts.Offset))
	b.WriteByte(':')
	b.WriteString(strconv.FormatFloat(opts.Threshold, 'g', -1, 64))
	return b.String()
}

// buildSearchResponse runs the engine and marshals the response body.
func (s *Server) buildSearchResponse(ctx context.Context, q string, boolean bool, opts ctxsearch.SearchOptions) ([]byte, error) {
	// The backend must be re-read inside the cache load (see handleSearch),
	// and the re-read pointer needs its own reference — the handler's
	// reference covers the pointer it loaded, not this one.
	var b *backend
	for {
		b = s.backend.Load()
		if b == nil {
			return nil, errors.New("engine not ready")
		}
		if b.acquire() {
			break
		}
	}
	defer b.release()
	if s.testHook != nil {
		s.testHook(ctx)
	}
	var results []ctxsearch.SearchResult
	var err error
	if boolean {
		results, err = b.searcher.SearchBooleanContext(ctx, q, opts)
	} else {
		results, err = b.searcher.SearchContext(ctx, q, opts)
	}
	if err != nil {
		return nil, err
	}
	rows, err := b.renderResults(ctx, q, results)
	if err != nil {
		return nil, err
	}
	return json.Marshal(SearchResponse{Query: q, Results: rows})
}

// renderResults resolves engine rows into API rows: paper metadata, the
// highlighted snippet and the context name. Shared by the /search and
// /shard/search handlers, so a coordinator that merges shard rows serves
// exactly what the single-engine server would have rendered.
func (b *backend) renderResults(ctx context.Context, q string, results []ctxsearch.SearchResult) ([]SearchResult, error) {
	rows := []SearchResult{}
	for _, res := range results {
		// Snippet extraction re-reads document text: keep honouring the
		// deadline while building the response.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := b.sys.Corpus.Paper(res.Doc)
		rows = append(rows, SearchResult{
			PaperID:     int(res.Doc),
			PMID:        p.PMID,
			Year:        p.Year,
			Title:       p.Title,
			Snippet:     b.sys.Index().Snippet(res.Doc, q, index.SnippetOptions{Window: 24, Pre: "**", Post: "**"}),
			Relevancy:   res.Relevancy,
			Prestige:    res.Prestige,
			Match:       res.Match,
			Context:     string(res.Context),
			ContextName: b.sys.Ontology.Term(res.Context).Name,
		})
	}
	return rows, nil
}

// ShardSearchRequest is the POST /shard/search payload: one shard's slice
// of a scatter-gather query. Limit may exceed MaxLimit (up to
// MaxOffset+MaxLimit) because the coordinator folds the client's offset
// into the shard limit; Offset is always 0 in coordinator traffic but
// accepted for direct diagnostics.
type ShardSearchRequest struct {
	Q         string  `json:"q"`
	Boolean   bool    `json:"boolean,omitempty"`
	Limit     int     `json:"limit"`
	Offset    int     `json:"offset,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

// ShardSearchResponse carries one shard's rendered, ranked page back to the
// coordinator. Rows are in the engine's result order (descending relevancy,
// ties by ascending paper id).
type ShardSearchResponse struct {
	Results []SearchResult `json:"results"`
}

// handleShardSearch serves the internal scatter-gather endpoint: the
// backend's own ranked page for one query, fully rendered. Every server
// exposes it — what makes a process a "shard" is being handed a
// range-restricted searcher at boot, not a different route table.
func (s *Server) handleShardSearch(w http.ResponseWriter, r *http.Request) {
	b := s.ready(w)
	if b == nil {
		return
	}
	defer b.release()
	var req ShardSearchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad shard request: %v", err)
		return
	}
	req.Q = strings.TrimSpace(req.Q)
	if req.Q == "" {
		writeErr(w, http.StatusBadRequest, "missing query q")
		return
	}
	// The coordinator may legitimately ask for offset+limit rows in one
	// page; anything beyond the combined cap is a bug or abuse.
	if req.Limit < 0 || req.Limit > MaxOffset+MaxLimit {
		writeErr(w, http.StatusBadRequest, "bad shard limit %d", req.Limit)
		return
	}
	if req.Offset < 0 || req.Offset > MaxOffset {
		writeErr(w, http.StatusBadRequest, "bad shard offset %d", req.Offset)
		return
	}
	if req.Threshold < 0 || req.Threshold > 1 {
		writeErr(w, http.StatusBadRequest, "bad shard threshold %v", req.Threshold)
		return
	}
	ctx := r.Context()
	if s.testHook != nil {
		s.testHook(ctx)
	}
	opts := ctxsearch.SearchOptions{Limit: req.Limit, Offset: req.Offset, Threshold: req.Threshold}
	var results []ctxsearch.SearchResult
	var err error
	if req.Boolean {
		results, err = b.searcher.SearchBooleanContext(ctx, req.Q, opts)
	} else {
		results, err = b.searcher.SearchContext(ctx, req.Q, opts)
	}
	if err != nil {
		s.writeQueryErr(w, r, err)
		return
	}
	rows, err := b.renderResults(ctx, req.Q, results)
	if err != nil {
		s.writeQueryErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, ShardSearchResponse{Results: rows})
}

// ContextInfo is one /contexts row.
type ContextInfo struct {
	Term   string  `json:"term"`
	Name   string  `json:"name"`
	Level  int     `json:"level"`
	Papers int     `json:"papers"`
	Score  float64 `json:"score"`
}

func (s *Server) handleContexts(w http.ResponseWriter, r *http.Request) {
	b := s.ready(w)
	if b == nil {
		return
	}
	defer b.release()
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		writeErr(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	sel, err := b.searcher.SelectContextsContext(r.Context(), q, ctxsearch.SearchOptions{})
	if err != nil {
		s.writeQueryErr(w, r, err)
		return
	}
	out := []ContextInfo{}
	for _, c := range sel {
		t := b.sys.Ontology.Term(c.Context)
		out = append(out, ContextInfo{
			Term:   string(c.Context),
			Name:   t.Name,
			Level:  b.sys.Ontology.Level(c.Context),
			Papers: b.cs.Size(c.Context),
			Score:  c.Score,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// PaperResponse is the /papers/{id} payload.
type PaperResponse struct {
	PaperID    int            `json:"paper_id"`
	PMID       int            `json:"pmid"`
	Year       int            `json:"year"`
	Title      string         `json:"title"`
	Abstract   string         `json:"abstract"`
	Authors    []string       `json:"authors"`
	References []int          `json:"references"`
	CitedBy    []int          `json:"cited_by"`
	Contexts   []PaperContext `json:"contexts"`
}

// PaperContext is one context membership of a paper.
type PaperContext struct {
	Term     string  `json:"term"`
	Name     string  `json:"name"`
	Prestige float64 `json:"prestige"`
}

func (s *Server) handlePaper(w http.ResponseWriter, r *http.Request) {
	b := s.ready(w)
	if b == nil {
		return
	}
	defer b.release()
	idStr := r.PathValue("id")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad paper id %q", idStr)
		return
	}
	p := b.sys.Corpus.Paper(ctxsearch.PaperID(id))
	if p == nil {
		writeErr(w, http.StatusNotFound, "no paper %d", id)
		return
	}
	resp := PaperResponse{
		PaperID:  int(p.ID),
		PMID:     p.PMID,
		Year:     p.Year,
		Title:    p.Title,
		Abstract: p.Abstract,
		Authors:  p.Authors,
	}
	for _, ref := range p.References {
		resp.References = append(resp.References, int(ref))
	}
	for _, c := range b.sys.Corpus.CitedBy(p.ID) {
		resp.CitedBy = append(resp.CitedBy, int(c))
	}
	for _, ctx := range b.cs.ContextsOf(p.ID) {
		resp.Contexts = append(resp.Contexts, PaperContext{
			Term:     string(ctx),
			Name:     b.sys.Ontology.Term(ctx).Name,
			Prestige: b.matrix.Get(ctx, p.ID),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Papers         int    `json:"papers"`
	OntologyTerms  int    `json:"ontology_terms"`
	Contexts       int    `json:"contexts"`
	ScoredContexts int    `json:"scored_contexts"`
	ContextSetKind string `json:"context_set_kind"`
	// Result-cache effectiveness counters (all zero when caching is
	// disabled).
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheCoalesced uint64 `json:"cache_coalesced"`
	CacheEntries   int    `json:"cache_entries"`
	// ColdStartMS is the last boot's duration in milliseconds (state load
	// or build through the readiness flip); 0 when never recorded.
	ColdStartMS float64 `json:"cold_start_ms,omitempty"`
	// MappedState reports whether the backend serves from a zero-copy
	// memory-mapped state file.
	MappedState bool `json:"mapped_state,omitempty"`
	// Sharding holds scatter-gather counters when the installed searcher is
	// a shard group (or this server is a coordinator); absent otherwise.
	Sharding *shard.Snapshot `json:"sharding,omitempty"`
	// TopK holds the bounded-query evaluator's pruning and intra-query
	// parallelism counters for the installed generation (reset on every
	// SetReady* swap); absent when the searcher does not expose them.
	TopK *index.TopKStats `json:"topk,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	b := s.ready(w)
	if b == nil {
		return
	}
	defer b.release()
	cst := s.cache.Stats()
	resp := StatsResponse{
		Papers:         b.sys.Corpus.Len(),
		OntologyTerms:  b.sys.Ontology.Len(),
		Contexts:       len(b.cs.Contexts()),
		ScoredContexts: b.matrix.NumContexts(),
		ContextSetKind: b.cs.Kind().String(),
		CacheHits:      cst.Hits,
		CacheMisses:    cst.Misses,
		CacheCoalesced: cst.Coalesced,
		CacheEntries:   cst.Entries,
		MappedState:    b.ref != nil,
	}
	if cs := s.coldStart.Load(); cs > 0 {
		resp.ColdStartMS = float64(cs) / float64(time.Millisecond)
	}
	if sm, ok := b.searcher.(interface{ Metrics() *shard.Metrics }); ok {
		snap := sm.Metrics().Snapshot()
		resp.Sharding = &snap
	}
	if ts, ok := b.searcher.(interface{ TopKStats() index.TopKStats }); ok {
		st := ts.TopKStats()
		resp.TopK = &st
	}
	writeJSON(w, http.StatusOK, resp)
}
