// Package server exposes the context-based search engine over HTTP with a
// small JSON API — the deployment shape the paper's system (a digital
// library search service) implies:
//
//	GET /search?q=...&limit=N&offset=N&threshold=T&boolean=1   ranked results
//	GET /contexts?q=...                     selected contexts for a query
//	GET /papers/{id}                        one paper with contexts & scores
//	GET /stats                              corpus/context statistics
//	GET /healthz                            liveness
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"ctxsearch"
	"ctxsearch/internal/index"
)

// Server wires the search engine into an http.Handler.
type Server struct {
	sys    *ctxsearch.System
	cs     *ctxsearch.ContextSet
	scores ctxsearch.Scores
	engine *ctxsearch.Engine
	mux    *http.ServeMux
}

// New assembles the server.
func New(sys *ctxsearch.System, cs *ctxsearch.ContextSet, scores ctxsearch.Scores) *Server {
	s := &Server{
		sys:    sys,
		cs:     cs,
		scores: scores,
		engine: sys.Engine(cs, scores),
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /search", s.handleSearch)
	s.mux.HandleFunc("GET /contexts", s.handleContexts)
	s.mux.HandleFunc("GET /papers/{id}", s.handlePaper)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// SearchResponse is the /search payload.
type SearchResponse struct {
	Query   string         `json:"query"`
	Results []SearchResult `json:"results"`
}

// SearchResult is one /search row.
type SearchResult struct {
	PaperID     int     `json:"paper_id"`
	PMID        int     `json:"pmid"`
	Year        int     `json:"year"`
	Title       string  `json:"title"`
	Snippet     string  `json:"snippet"`
	Relevancy   float64 `json:"relevancy"`
	Prestige    float64 `json:"prestige"`
	Match       float64 `json:"match"`
	Context     string  `json:"context"`
	ContextName string  `json:"context_name"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		writeErr(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	opts := ctxsearch.SearchOptions{Limit: 20}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		opts.Limit = n
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad offset %q", v)
			return
		}
		opts.Offset = n
	}
	if v := r.URL.Query().Get("threshold"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil || t < 0 || t > 1 {
			writeErr(w, http.StatusBadRequest, "bad threshold %q", v)
			return
		}
		opts.Threshold = t
	}
	var results []ctxsearch.SearchResult
	if v := r.URL.Query().Get("boolean"); v == "1" || v == "true" {
		var err error
		results, err = s.engine.SearchBoolean(q, opts)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad boolean query: %v", err)
			return
		}
	} else {
		results = s.engine.Search(q, opts)
	}
	resp := SearchResponse{Query: q, Results: []SearchResult{}}
	for _, res := range results {
		p := s.sys.Corpus.Paper(res.Doc)
		resp.Results = append(resp.Results, SearchResult{
			PaperID:     int(res.Doc),
			PMID:        p.PMID,
			Year:        p.Year,
			Title:       p.Title,
			Snippet:     s.sys.Index().Snippet(res.Doc, q, index.SnippetOptions{Window: 24, Pre: "**", Post: "**"}),
			Relevancy:   res.Relevancy,
			Prestige:    res.Prestige,
			Match:       res.Match,
			Context:     string(res.Context),
			ContextName: s.sys.Ontology.Term(res.Context).Name,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ContextInfo is one /contexts row.
type ContextInfo struct {
	Term   string  `json:"term"`
	Name   string  `json:"name"`
	Level  int     `json:"level"`
	Papers int     `json:"papers"`
	Score  float64 `json:"score"`
}

func (s *Server) handleContexts(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		writeErr(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	out := []ContextInfo{}
	for _, sel := range s.engine.SelectContexts(q, ctxsearch.SearchOptions{}) {
		t := s.sys.Ontology.Term(sel.Context)
		out = append(out, ContextInfo{
			Term:   string(sel.Context),
			Name:   t.Name,
			Level:  s.sys.Ontology.Level(sel.Context),
			Papers: s.cs.Size(sel.Context),
			Score:  sel.Score,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// PaperResponse is the /papers/{id} payload.
type PaperResponse struct {
	PaperID    int            `json:"paper_id"`
	PMID       int            `json:"pmid"`
	Year       int            `json:"year"`
	Title      string         `json:"title"`
	Abstract   string         `json:"abstract"`
	Authors    []string       `json:"authors"`
	References []int          `json:"references"`
	CitedBy    []int          `json:"cited_by"`
	Contexts   []PaperContext `json:"contexts"`
}

// PaperContext is one context membership of a paper.
type PaperContext struct {
	Term     string  `json:"term"`
	Name     string  `json:"name"`
	Prestige float64 `json:"prestige"`
}

func (s *Server) handlePaper(w http.ResponseWriter, r *http.Request) {
	idStr := r.PathValue("id")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad paper id %q", idStr)
		return
	}
	p := s.sys.Corpus.Paper(ctxsearch.PaperID(id))
	if p == nil {
		writeErr(w, http.StatusNotFound, "no paper %d", id)
		return
	}
	resp := PaperResponse{
		PaperID:  int(p.ID),
		PMID:     p.PMID,
		Year:     p.Year,
		Title:    p.Title,
		Abstract: p.Abstract,
		Authors:  p.Authors,
	}
	for _, ref := range p.References {
		resp.References = append(resp.References, int(ref))
	}
	for _, c := range s.sys.Corpus.CitedBy(p.ID) {
		resp.CitedBy = append(resp.CitedBy, int(c))
	}
	for _, ctx := range s.cs.ContextsOf(p.ID) {
		resp.Contexts = append(resp.Contexts, PaperContext{
			Term:     string(ctx),
			Name:     s.sys.Ontology.Term(ctx).Name,
			Prestige: s.scores.Get(ctx, p.ID),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Papers         int    `json:"papers"`
	OntologyTerms  int    `json:"ontology_terms"`
	Contexts       int    `json:"contexts"`
	ScoredContexts int    `json:"scored_contexts"`
	ContextSetKind string `json:"context_set_kind"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Papers:         s.sys.Corpus.Len(),
		OntologyTerms:  s.sys.Ontology.Len(),
		Contexts:       len(s.cs.Contexts()),
		ScoredContexts: len(s.scores),
		ContextSetKind: s.cs.Kind().String(),
	})
}
