package server

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the diagnostics mux a deployment serves on the
// separate -debug-addr listener: the full net/http/pprof suite (heap,
// CPU, goroutine, mutex, trace, …).
//
// It is deliberately a distinct handler rather than routes on the API
// mux: profiling endpoints expose memory contents and can run unbounded
// CPU captures, so they must never share the public port — the operator
// binds -debug-addr to localhost or a private interface, and leaving the
// flag unset serves no profiling at all.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
