package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ctxsearch/internal/faultproxy"
	"ctxsearch/internal/resilience"
	"ctxsearch/internal/shard"
)

// fastResilience is the deterministic test tuning: no health prober (no
// background traffic perturbing request-index fault scripts), millisecond
// jitter-free backoff, a short per-attempt timeout so hang faults resolve
// quickly, and an ample budget so correctness tests are not about the
// budget (TestRetryStormBounded covers that).
func fastResilience() ShardConfig {
	return ShardConfig{
		ShardTimeout:     100 * time.Millisecond,
		ProbeInterval:    -1,
		RetryBudget:      100,
		RetryRatio:       0.5,
		BreakerThreshold: 3,
		Backoff:          resilience.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Jitter: -1},
	}
}

// replicatedCluster boots nRanges shard ranges, each served by two
// byte-identical replicas (two listeners over one range-restricted
// server). scripts[ri], when non-nil, interposes a fault proxy in front of
// replica 0 of that range. The coordinator's cache is disabled so every
// request exercises the fan-out.
func replicatedCluster(t *testing.T, nRanges int, scripts []faultproxy.Script, scfg ShardConfig) *Coordinator {
	t.Helper()
	sys, cs, m, _ := frozenMatrix(t)
	g := shard.NewGroup(sys.Analyzer(), cs, m, sys.Config().Relevancy, nRanges, shard.Options{})
	var urls []string
	for ri := 0; ri < g.NumShards(); ri++ {
		srv := NewPending(Config{})
		srv.SetReadySharded(sys, cs, m, g.Engine(ri))
		a := httptest.NewServer(srv)
		t.Cleanup(a.Close)
		b := httptest.NewServer(srv)
		t.Cleanup(b.Close)
		aURL := a.URL
		if ri < len(scripts) && scripts[ri] != nil {
			p, err := faultproxy.New(a.URL, scripts[ri])
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(p.Close)
			aURL = p.URL()
		}
		urls = append(urls, aURL+"|"+b.URL)
	}
	coord := NewCoordinator(urls, Config{CacheEntries: -1}, scfg)
	t.Cleanup(coord.Close)
	return coord
}

// TestReplicatedGoldenUnderFaults is the acceptance battery: a 3-range ×
// 2-replica cluster where one replica per range is permanently broken in a
// different way (5xx bursts, hanging, connection resets). Every /search
// must succeed via failover AND be byte-identical to a single-engine
// server — fault handling must never change what the client reads, only
// how it is obtained.
func TestReplicatedGoldenUnderFaults(t *testing.T) {
	sys, cs, m, _ := frozenMatrix(t)
	ref := NewPending(Config{})
	ref.SetReadyFrozen(sys, cs, m)

	always := func(f faultproxy.Fault) faultproxy.Script {
		return func(i int, r *http.Request) faultproxy.Fault {
			if r.URL.Path == "/shard/search" {
				return f
			}
			return faultproxy.Fault{}
		}
	}
	coord := replicatedCluster(t, 3, []faultproxy.Script{
		always(faultproxy.Fault{Status: http.StatusInternalServerError}), // range 0: flaky 5xx
		always(faultproxy.Fault{Hang: true}),                             // range 1: wedged
		always(faultproxy.Fault{Reset: true}),                            // range 2: resets
	}, fastResilience())

	queries := coordQueries(t)
	rng := rand.New(rand.NewSource(23))
	searches := 0
	for qi, q := range queries {
		for trial := 0; trial < 3; trial++ {
			params := "q=" + urlQuery(q) + fmt.Sprintf("&limit=%d", 1+rng.Intn(20))
			if rng.Intn(2) == 0 {
				params += fmt.Sprintf("&offset=%d", rng.Intn(15))
			}
			if rng.Intn(3) == 0 {
				params += "&boolean=1"
			}
			want := get(t, ref, "/search?"+params)
			got := coordGet(t, coord, "/search?"+params)
			label := fmt.Sprintf("query %d %q trial %d params %s", qi, q, trial, params)
			if got.Code != want.Code {
				t.Fatalf("%s: coordinator %d, single server %d\n%s", label, got.Code, want.Code, got.Body)
			}
			if got.Body.String() != want.Body.String() {
				t.Fatalf("%s: bodies differ under faults\ncoordinator: %s\nsingle:      %s", label, got.Body, want.Body)
			}
			searches++
		}
	}

	snap := coord.Metrics().Snapshot()
	if snap.Failovers == 0 {
		t.Fatalf("no failovers recorded across %d searches against half-broken replicas: %+v", searches, snap)
	}
	if snap.BreakerOpens == 0 {
		t.Fatalf("no breaker ever tripped against permanently broken replicas: %+v", snap)
	}
	if snap.Partial != 0 {
		t.Fatalf("%d partial pages served — failover must keep answers exact", snap.Partial)
	}
	for ri := range snap.Shards {
		if snap.Shards[ri].Errors+snap.Shards[ri].Timeouts != 0 {
			t.Fatalf("range %d recorded a range-level failure — every call must be rescued: %+v", ri, snap)
		}
	}
}

// TestRetryStormBounded: during a total outage, upstream attempts are
// bounded by the retry budget — R requests generate at most
// R + capacity + R·ratio shard requests, no matter how high MaxRetries is
// cranked.
func TestRetryStormBounded(t *testing.T) {
	_, _, _, query := frozenMatrix(t)
	var upstream atomic.Int64
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/shard/search" {
			upstream.Add(1)
		}
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	t.Cleanup(down.Close)

	const capacity, ratio, requests = 3.0, 0.5, 20
	coord := NewCoordinator([]string{down.URL}, Config{CacheEntries: -1}, ShardConfig{
		MaxRetries:       10, // far above what the budget will cover
		RetryBudget:      capacity,
		RetryRatio:       ratio,
		BreakerThreshold: 1000, // the breaker must not mask the budget
		ProbeInterval:    -1,
		Backoff:          resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Jitter: -1},
	})
	t.Cleanup(coord.Close)

	for i := 0; i < requests; i++ {
		// Distinct queries so nothing coalesces.
		rec := coordGet(t, coord, fmt.Sprintf("/search?q=%s&limit=%d", urlQuery(query), 1+i))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("request %d against a dead backend = %d, want 503", i, rec.Code)
		}
	}

	bound := int64(requests + capacity + requests*ratio)
	if got := upstream.Load(); got > bound {
		t.Fatalf("%d client requests caused %d upstream attempts, budget bound is %d", requests, got, bound)
	}
	if got := upstream.Load(); got <= requests {
		t.Fatalf("only %d upstream attempts for %d requests — retries never fired, the bound is vacuous", got, requests)
	}
	snap := coord.Metrics().Snapshot()
	if snap.RetriesDenied == 0 {
		t.Fatalf("budget never denied a retry under a %d-request storm: %+v", requests, snap)
	}
	if snap.Retries == 0 || snap.Retries > uint64(bound-requests) {
		t.Fatalf("retries = %d, want in (0, %d]", snap.Retries, bound-requests)
	}
}

// TestBreakerTripsAndRecovers: a replica that fails its first shard
// requests trips its breaker (queries stop paying for it), then heals —
// after the cool-down a half-open probe readmits it and the breaker
// closes.
func TestBreakerTripsAndRecovers(t *testing.T) {
	_, _, _, query := frozenMatrix(t)
	scfg := fastResilience()
	scfg.BreakerThreshold = 2
	scfg.BreakerCooldown = 150 * time.Millisecond
	// Replica 0 of the single range 500s its first two search requests,
	// then recovers.
	coord := replicatedCluster(t, 1, []faultproxy.Script{
		func(i int, r *http.Request) faultproxy.Fault {
			if r.URL.Path == "/shard/search" && i < 2 {
				return faultproxy.Fault{Status: http.StatusInternalServerError}
			}
			return faultproxy.Fault{}
		},
	}, scfg)

	for i := 0; i < 6; i++ {
		rec := coordGet(t, coord, fmt.Sprintf("/search?q=%s&limit=%d", urlQuery(query), 1+i))
		if rec.Code != 200 {
			t.Fatalf("search %d during replica flap = %d: %s", i, rec.Code, rec.Body)
		}
	}
	snap := coord.Metrics().Snapshot()
	if snap.BreakerOpens == 0 {
		t.Fatalf("breaker never tripped after repeated 500s: %+v", snap)
	}

	// Past the cool-down, traffic readmits the recovered replica and the
	// breaker closes again.
	time.Sleep(scfg.BreakerCooldown + 50*time.Millisecond)
	before := coord.Metrics().Snapshot().Replicas[0].Requests
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		rec := coordGet(t, coord, fmt.Sprintf("/search?q=%s&limit=%d", urlQuery(query), 30+i))
		if rec.Code != 200 {
			t.Fatalf("post-recovery search = %d: %s", rec.Code, rec.Body)
		}
		s := coord.Metrics().Snapshot()
		if s.Replicas[0].Requests > before && s.Replicas[0].Errors == before {
			break // the healed replica served again, cleanly
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered replica never readmitted: %+v", s)
		}
	}
}

// TestHedgeWins: with hedging on, a slow replica no longer sets the
// latency floor — the hedge to the fast replica answers first, the page
// stays exact, and the win is counted.
func TestHedgeWins(t *testing.T) {
	sys, cs, m, _ := frozenMatrix(t)
	ref := NewPending(Config{})
	ref.SetReadyFrozen(sys, cs, m)
	queries := coordQueries(t)

	scfg := fastResilience()
	scfg.ShardTimeout = 2 * time.Second
	scfg.HedgeAfter = 20 * time.Millisecond
	coord := replicatedCluster(t, 1, []faultproxy.Script{
		func(i int, r *http.Request) faultproxy.Fault {
			if r.URL.Path == "/shard/search" {
				return faultproxy.Fault{Delay: 600 * time.Millisecond}
			}
			return faultproxy.Fault{}
		},
	}, scfg)

	start := time.Now()
	for qi, q := range queries[:4] {
		path := "/search?q=" + urlQuery(q) + "&limit=10"
		want := get(t, ref, path)
		got := coordGet(t, coord, path)
		if got.Code != want.Code || got.Body.String() != want.Body.String() {
			t.Fatalf("query %d %q: hedged page differs (%d vs %d)\ncoordinator: %s\nsingle:      %s",
				qi, q, got.Code, want.Code, got.Body, want.Body)
		}
	}
	// 4 queries, roughly half first-routed to the 600ms replica: without
	// hedging that is >= 1.2s. With hedging every query resolves in tens
	// of milliseconds.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("4 hedged queries took %v — hedging is not cutting tail latency", elapsed)
	}
	snap := coord.Metrics().Snapshot()
	if snap.HedgesWon == 0 {
		t.Fatalf("no hedge ever won against a 600ms replica: %+v", snap)
	}
}

// TestChaosReplicaKill: replicas of a live cluster are killed one per
// range mid-traffic; every search keeps succeeding byte-identically, and
// /readyz degrades only when a range loses its last replica.
func TestChaosReplicaKill(t *testing.T) {
	sys, cs, m, _ := frozenMatrix(t)
	ref := NewPending(Config{})
	ref.SetReadyFrozen(sys, cs, m)
	g := shard.NewGroup(sys.Analyzer(), cs, m, sys.Config().Relevancy, 2, shard.Options{})

	var urls []string
	var killable []*httptest.Server
	for ri := 0; ri < g.NumShards(); ri++ {
		srv := NewPending(Config{})
		srv.SetReadySharded(sys, cs, m, g.Engine(ri))
		a := httptest.NewServer(srv)
		killable = append(killable, a) // closed mid-test
		b := httptest.NewServer(srv)
		t.Cleanup(b.Close)
		urls = append(urls, a.URL+"|"+b.URL)
	}
	coord := NewCoordinator(urls, Config{CacheEntries: -1}, fastResilience())
	t.Cleanup(coord.Close)
	queries := coordQueries(t)

	check := func(stage string) {
		t.Helper()
		for _, q := range queries[:5] {
			path := "/search?q=" + urlQuery(q) + "&limit=10"
			want := get(t, ref, path)
			got := coordGet(t, coord, path)
			if got.Code != want.Code || got.Body.String() != want.Body.String() {
				t.Fatalf("%s: %q differs (%d vs %d): %s", stage, q, got.Code, want.Code, got.Body)
			}
		}
	}

	check("all replicas up")
	if rec := coordGet(t, coord, "/readyz"); rec.Code != 200 {
		t.Fatalf("readyz with full cluster = %d: %s", rec.Code, rec.Body)
	}

	killable[0].Close() // range 0 loses replica 0
	check("one replica down")
	killable[1].Close() // range 1 loses replica 0 too
	check("one replica down per range")
	// One replica per range still up: the cluster remains ready.
	if rec := coordGet(t, coord, "/readyz"); rec.Code != 200 {
		t.Fatalf("readyz with one replica per range = %d: %s", rec.Code, rec.Body)
	}
	snap := coord.Metrics().Snapshot()
	if snap.Failovers == 0 {
		t.Fatalf("kills never exercised failover: %+v", snap)
	}
}

// TestAllReplicasDown: when a whole range is gone the query fails with a
// 503 whose Retry-After is derived from the breaker cool-down — the hint
// tracks how long until a retry could plausibly succeed.
func TestAllReplicasDown(t *testing.T) {
	_, _, _, query := frozenMatrix(t)
	dead := httptest.NewServer(http.NewServeMux())
	deadURL := dead.URL
	dead.Close()
	coord := NewCoordinator([]string{deadURL + "|" + deadURL}, Config{CacheEntries: -1}, ShardConfig{
		MaxRetries:      -1,
		ProbeInterval:   -1,
		BreakerCooldown: 3 * time.Second,
	})
	t.Cleanup(coord.Close)

	rec := coordGet(t, coord, "/search?q="+urlQuery(query)+"&limit=5")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("dead range = %d, want 503: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want %q (the breaker cool-down)", got, "3")
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("503 body not a JSON error: %q (%v)", rec.Body, err)
	}
}

// TestRetryAfterSecs pins the shared Retry-After derivation helper.
func TestRetryAfterSecs(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{-time.Second, "1"},
		{300 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{2 * time.Second, "2"},
		{61 * time.Second, "61"},
	}
	for _, c := range cases {
		if got := retryAfterSecs(c.d); got != c.want {
			t.Fatalf("retryAfterSecs(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestReplicaStatsExposed: /stats surfaces the per-replica view — breaker
// state, health, and per-backend counters — that operators need during an
// incident.
func TestReplicaStatsExposed(t *testing.T) {
	_, _, _, query := frozenMatrix(t)
	coord := replicatedCluster(t, 2, nil, fastResilience())
	coordGet(t, coord, "/search?q="+urlQuery(query)+"&limit=3")

	rec := coordGet(t, coord, "/stats")
	if rec.Code != 200 {
		t.Fatalf("stats = %d: %s", rec.Code, rec.Body)
	}
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Sharding == nil {
		t.Fatal("stats lost the sharding section")
	}
	if len(stats.Sharding.Replicas) != 4 {
		t.Fatalf("replicas in stats = %d, want 4 (2 ranges x 2)", len(stats.Sharding.Replicas))
	}
	var searched uint64
	for g, rs := range stats.Sharding.Replicas {
		if rs.URL == "" || rs.State == "" {
			t.Fatalf("replica %d missing url/breaker state: %+v", g, rs)
		}
		if rs.Range != g/2 {
			t.Fatalf("replica %d mapped to range %d, want %d", g, rs.Range, g/2)
		}
		searched += rs.Requests
	}
	if searched == 0 {
		t.Fatal("no replica-level requests counted")
	}
}
