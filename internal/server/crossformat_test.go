package server

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"ctxsearch"
	"ctxsearch/internal/index"
	"ctxsearch/internal/shard"
	"ctxsearch/internal/store"
)

// openFormatSystem opens one saved state file and binds the full serving
// stack to it, returning the bound parts alongside so sharded topologies
// can slice them.
func openFormatSystem(t *testing.T, path string, onto *ctxsearch.Ontology, c *ctxsearch.Corpus, cfg ctxsearch.Config) (*ctxsearch.System, *ctxsearch.ContextSet, *ctxsearch.Matrix, *index.Parts, *store.Mapped) {
	t.Helper()
	fsys, mcs, mmat, mapped := openMappedSystem(t, path, onto, c, cfg)
	parts, err := mapped.IndexParts()
	if err != nil {
		t.Fatal(err)
	}
	return fsys, mcs, mmat, parts, mapped
}

// TestCrossFormatGolden is the v4↔v5 HTTP contract: the same state saved in
// both flat formats — v4 recomputing its block-max tables on bind, v5
// binding the persisted ones zero-copy — answers every endpoint
// byte-identically through a single engine, in-process shard groups, and a
// multi-process coordinator. Block tables only ever skip work, so where
// they came from must be unobservable in any response.
func TestCrossFormatGolden(t *testing.T) {
	sys, cs, m, query := frozenMatrix(t)
	st := &store.State{
		ContextSet: cs,
		Matrices:   map[string]*ctxsearch.Matrix{"text": m},
		Index:      sys.Index().Parts(),
		DF:         sys.Analyzer().DF(),
	}
	dir := t.TempDir()
	v4Path := filepath.Join(dir, "state.v4")
	v5Path := filepath.Join(dir, "state.v5")
	if err := store.SaveFileV4(v4Path, st); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveFileV5(v5Path, st); err != nil {
		t.Fatal(err)
	}

	sys4, cs4, m4, parts4, mapped4 := openFormatSystem(t, v4Path, sys.Ontology, sys.Corpus, sys.Config())
	sys5, cs5, m5, parts5, mapped5 := openFormatSystem(t, v5Path, sys.Ontology, sys.Corpus, sys.Config())
	// The asymmetry under test: a v4 file carries no block tables (every
	// engine bound from it recomputes them), a v5 file persists them.
	if parts4.BlockOffsets != nil {
		t.Fatal("v4 parts carry block tables")
	}
	if parts5.BlockOffsets == nil {
		t.Fatal("v5 parts carry no block tables")
	}

	// Single engine.
	srv4 := NewPending(Config{})
	srv4.SetReadyMapped(sys4, cs4, m4, sys4.EngineFrozen(cs4, m4), mapped4)
	srv5 := NewPending(Config{})
	srv5.SetReadyMapped(sys5, cs5, m5, sys5.EngineFrozen(cs5, m5), mapped5)

	compare := func(t *testing.T, label, path string, a, b *Server) {
		t.Helper()
		want := get(t, a, path)
		got := get(t, b, path)
		if got.Code != want.Code || got.Body.String() != want.Body.String() {
			t.Fatalf("%s %s: v4 (%d) %s\nv5 (%d) %s", label, path, want.Code, want.Body, got.Code, got.Body)
		}
	}
	rng := rand.New(rand.NewSource(37))
	for qi, q := range coordQueries(t) {
		for trial := 0; trial < 4; trial++ {
			params := mappedParams(q, rng)
			compare(t, fmt.Sprintf("single query %d trial %d", qi, trial), "/search?"+params, srv4, srv5)
		}
	}
	for _, path := range []string{"/papers/0", "/papers/999999", "/contexts?q=" + urlQuery(query)} {
		compare(t, "single", path, srv4, srv5)
	}

	// In-process shard groups over each format's own parts.
	for _, n := range []int{2, 3} {
		g4, err := shard.NewGroupParts(sys4.Analyzer(), parts4, cs4, m4, sys4.Config().Relevancy, n, shard.Options{})
		if err != nil {
			t.Fatal(err)
		}
		g5, err := shard.NewGroupParts(sys5.Analyzer(), parts5, cs5, m5, sys5.Config().Relevancy, n, shard.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s4 := NewPending(Config{})
		s4.SetReadySharded(sys4, cs4, m4, g4)
		s5 := NewPending(Config{})
		s5.SetReadySharded(sys5, cs5, m5, g5)
		for qi, q := range coordQueries(t) {
			for trial := 0; trial < 2; trial++ {
				params := mappedParams(q, rng)
				compare(t, fmt.Sprintf("shards=%d query %d trial %d", n, qi, trial), "/search?"+params, s4, s5)
			}
		}
	}

	// Multi-process coordinators, one per format, each over 3 shard servers.
	coordinator := func(fsys *ctxsearch.System, mcs *ctxsearch.ContextSet, mmat *ctxsearch.Matrix, parts *index.Parts) *Coordinator {
		const n = 3
		var urls []string
		for i := 0; i < n; i++ {
			eng, _, err := shard.RangeEngineParts(fsys.Analyzer(), parts, mcs, mmat, fsys.Config().Relevancy, i, n)
			if err != nil {
				t.Fatal(err)
			}
			srv := NewPending(Config{})
			srv.SetReadySharded(fsys, mcs, mmat, eng)
			ts := httptest.NewServer(srv)
			t.Cleanup(ts.Close)
			urls = append(urls, ts.URL)
		}
		coord := NewCoordinator(urls, Config{}, ShardConfig{})
		t.Cleanup(coord.Close)
		return coord
	}
	c4 := coordinator(sys4, cs4, m4, parts4)
	c5 := coordinator(sys5, cs5, m5, parts5)
	for qi, q := range coordQueries(t) {
		for trial := 0; trial < 2; trial++ {
			params := mappedParams(q, rng)
			path := "/search?" + params
			want := coordGet(t, c4, path)
			got := coordGet(t, c5, path)
			if got.Code != want.Code || got.Body.String() != want.Body.String() {
				t.Fatalf("coordinator query %d trial %d %s: v4 (%d) %s\nv5 (%d) %s",
					qi, trial, path, want.Code, want.Body, got.Code, got.Body)
			}
		}
	}
}
