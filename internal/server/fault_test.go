// Fault-injection suite for the hardened serving path: simulated slow
// queries, deadline expiry, overload shedding, handler panics, readiness
// gating, and graceful shutdown draining — everything that must hold when
// production misbehaves.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

func faultServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	sys, cs, scores, query := testState(t)
	return NewWithConfig(sys, cs, scores, cfg), query
}

// TestTimeoutReturns503: a query slower than QueryTimeout gets a 503 with a
// JSON error body and a Retry-After hint, within a small multiple of the
// deadline.
func TestTimeoutReturns503(t *testing.T) {
	s, query := faultServer(t, Config{QueryTimeout: 50 * time.Millisecond})
	s.testHook = func(ctx context.Context) { <-ctx.Done() } // stall until the deadline fires
	start := time.Now()
	rec := get(t, s, "/search?q="+urlQuery(query))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("slow search = %d, want 503: %s", rec.Code, rec.Body)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("503 took %v, deadline was 50ms", elapsed)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("503 body not a JSON error: %q (%v)", rec.Body, err)
	}
}

// TestOverloadSheds429: with MaxInflight=1 and one request parked inside the
// handler, the next request is shed immediately with 429 + Retry-After, and
// the parked request still completes normally.
func TestOverloadSheds429(t *testing.T) {
	s, query := faultServer(t, Config{MaxInflight: 1, QueryTimeout: -1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHook = func(ctx context.Context) {
		once.Do(func() { close(entered) })
		<-release
	}
	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", "/search?q="+urlQuery(query), nil))
		firstDone <- rec
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never entered the handler")
	}
	shedStart := time.Now()
	rec := get(t, s, "/search?q="+urlQuery(query))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	if elapsed := time.Since(shedStart); elapsed > 200*time.Millisecond {
		t.Fatalf("shedding took %v — it must not queue", elapsed)
	}
	// Probes answer even while the API is saturated.
	if rec := get(t, s, "/healthz"); rec.Code != 200 {
		t.Fatalf("healthz under load = %d", rec.Code)
	}
	if rec := get(t, s, "/readyz"); rec.Code != 200 {
		t.Fatalf("readyz under load = %d", rec.Code)
	}
	close(release)
	select {
	case first := <-firstDone:
		if first.Code != 200 {
			t.Fatalf("parked request = %d: %s", first.Code, first.Body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked request never finished")
	}
}

// TestPanicDoesNotKillServer: a panicking handler yields a logged 500 over
// a real connection and the server keeps serving afterwards.
func TestPanicDoesNotKillServer(t *testing.T) {
	s, query := faultServer(t, Config{})
	s.mux.HandleFunc("GET /panic", func(http.ResponseWriter, *http.Request) {
		panic("injected fault")
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/panic")
	if err != nil {
		t.Fatalf("panicking route: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic = %d, want 500: %s", resp.StatusCode, body)
	}
	var parsed map[string]string
	if err := json.Unmarshal(body, &parsed); err != nil || parsed["error"] == "" {
		t.Fatalf("500 body not a JSON error: %q", body)
	}
	// The process and listener survived: a normal query still works.
	resp, err = http.Get(ts.URL + "/search?q=" + urlQuery(query))
	if err != nil {
		t.Fatalf("post-panic search: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-panic search = %d", resp.StatusCode)
	}
}

// TestReadyzLifecycle: a pending server is alive but not ready — API calls
// and /readyz answer 503 — and flips atomically to ready on SetReady.
func TestReadyzLifecycle(t *testing.T) {
	sys, cs, scores, query := testState(t)
	s := NewPending(Config{})
	if rec := get(t, s, "/healthz"); rec.Code != 200 {
		t.Fatalf("pending healthz = %d", rec.Code)
	}
	if rec := get(t, s, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pending readyz = %d, want 503", rec.Code)
	}
	for _, path := range []string{"/search?q=x", "/contexts?q=x", "/papers/0", "/stats"} {
		if rec := get(t, s, path); rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("pending %s = %d, want 503", path, rec.Code)
		}
	}
	s.SetReady(sys, cs, scores)
	if rec := get(t, s, "/readyz"); rec.Code != 200 {
		t.Fatalf("ready readyz = %d", rec.Code)
	}
	if rec := get(t, s, "/search?q="+urlQuery(query)); rec.Code != 200 {
		t.Fatalf("ready search = %d: %s", rec.Code, rec.Body)
	}
}

// TestGracefulShutdownDrains: cancelling Run's context while a request is
// in flight must let that request finish with a 200 before Run returns.
func TestGracefulShutdownDrains(t *testing.T) {
	s, query := faultServer(t, Config{QueryTimeout: -1})
	inFlight := make(chan struct{})
	var once sync.Once
	s.testHook = func(ctx context.Context) {
		once.Do(func() { close(inFlight) })
		time.Sleep(200 * time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- Run(ctx, "127.0.0.1:0", s, RunConfig{
			ShutdownTimeout: 5 * time.Second,
			OnListen:        func(a net.Addr) { addrc <- a },
		})
	}()
	var addr net.Addr
	select {
	case addr = <-addrc:
	case err := <-runErr:
		t.Fatalf("Run exited before listening: %v", err)
	}
	type result struct {
		status int
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/search?q=%s", addr, urlQuery(query)))
		if err != nil {
			resc <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resc <- result{resp.StatusCode, nil}
	}()
	select {
	case <-inFlight:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}
	cancel() // simulate SIGTERM
	select {
	case res := <-resc:
		if res.err != nil || res.status != 200 {
			t.Fatalf("in-flight request during shutdown = (%d, %v), want 200", res.status, res.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request was dropped by shutdown")
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run = %v, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run never returned after cancellation")
	}
}

// TestCancelledRequestBurstNoLeak: a burst of client-abandoned requests
// must not leave goroutines behind once the dust settles.
func TestCancelledRequestBurstNoLeak(t *testing.T) {
	s, query := faultServer(t, Config{QueryTimeout: 25 * time.Millisecond})
	s.testHook = func(ctx context.Context) { <-ctx.Done() }
	baseline := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(2+g)*time.Millisecond)
				req := httptest.NewRequest("GET", "/search?q="+urlQuery(query), nil).WithContext(ctx)
				s.ServeHTTP(httptest.NewRecorder(), req)
				cancel()
			}
		}(g)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
