package shard

import (
	"fmt"
	"testing"

	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
	"ctxsearch/internal/search"
)

// benchPages builds n sorted per-shard pages of rows each, with globally
// interleaved scores — the coordinator's merge input shape.
func benchPages(n, rows int) [][]search.Result {
	pages := make([][]search.Result, n)
	for s := 0; s < n; s++ {
		page := make([]search.Result, rows)
		for i := 0; i < rows; i++ {
			// Descending within the page, interleaved across pages.
			page[i] = search.Result{
				Doc:       corpus.PaperID(i*n + s),
				Relevancy: 1 - float64(i*n+s)/float64(n*rows+1),
			}
		}
		pages[s] = page
	}
	return pages
}

// BenchmarkMergePages measures coordinator-side merge throughput: K sorted
// shard pages into one exact top-k page. The limit-10 cases exercise the
// early-termination break (most rows are never offered), the unbounded case
// the concatenate-and-sort path.
func BenchmarkMergePages(b *testing.B) {
	for _, shards := range []int{2, 4, 8} {
		for _, rows := range []int{100, 1000} {
			pages := benchPages(shards, rows)
			b.Run(fmt.Sprintf("shards=%d/rows=%d/limit=10", shards, rows), func(b *testing.B) {
				opts := search.Options{Limit: 10}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					MergePages(pages, opts)
				}
			})
		}
	}
	pages := benchPages(4, 1000)
	b.Run("shards=4/rows=1000/unbounded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MergePages(pages, search.Options{})
		}
	})
}

var benchFix *fixture

// benchFixture is a larger corpus than the test fixture: sharding a
// 250-paper corpus measures only fan-out overhead, so the search benchmark
// needs enough papers for per-shard scoring work to dominate.
func benchFixture(b *testing.B) *fixture {
	b.Helper()
	if benchFix != nil {
		return benchFix
	}
	o, err := ontology.Generate(ontology.GenConfig{Seed: 6, NumTerms: 120, MaxDepth: 6, SecondParentProb: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(2000))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	cs := contextset.BuildTextBased(a, o, contextset.DefaultConfig())
	scores := prestige.ScoreAll(prestige.NewTextScorer(a, prestige.DefaultTextWeights()), cs, 0)
	prestige.PropagateMax(o, scores)
	m := scores.Freeze()
	benchFix = &fixture{onto: o, c: c, a: a, cs: cs, matrix: m}
	return benchFix
}

// BenchmarkGroupSearch measures the end-to-end in-process scatter-gather at
// 1 vs 4 shards on the same corpus — the per-query cost of sharding (fan-out
// plus exact merge) against its parallel speedup across shard engines.
func BenchmarkGroupSearch(b *testing.B) {
	f := benchFixture(b)
	query := goldenQueries(f)[0]
	opts := search.Options{Limit: 10}
	for _, n := range []int{1, 4} {
		g := NewGroup(f.a, f.cs, f.matrix, search.DefaultWeights(), n, Options{})
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Search(query, opts)
			}
		})
	}
}
