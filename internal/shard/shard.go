// Package shard implements horizontally sharded serving: the corpus is
// partitioned into contiguous paper-ID ranges (internal/par's deterministic
// shard split), each shard gets its own CSR inverted index and prestige
// matrix restricted to its range, and a coordinator fans every query out to
// all shards and merges the per-shard pages exactly.
//
// The merge is rank-safe without approximation because the per-context
// scoring model makes shards fully independent: a paper's text-matching
// score depends only on the corpus-global analyzer (which every shard
// shares — the range restricts which papers have postings, never how they
// are weighted) and its prestige depends only on its own (context, paper)
// cell. A shard's ranked page is therefore exactly the single-engine result
// list filtered to its papers, the global top offset+limit results are
// contained in the union of the per-shard top offset+limit pages, and the
// bounded heap merge under the engine's own total order reconstructs the
// single-engine page byte for byte (the golden batteries pin this).
//
// This package is the in-process deployment shape: one binary, N shard
// engines, per-query fan-out over a bounded goroutine pool. The HTTP/JSON
// shape (multi-process shards behind POST /shard/search) lives in
// internal/server's Coordinator and reuses MergePages' contract.
package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
	"ctxsearch/internal/par"
	"ctxsearch/internal/prestige"
	"ctxsearch/internal/search"
)

// Group is a set of shard engines behind a scatter-gather coordinator. It
// implements the same query surface as a single *search.Engine (the
// server's Searcher interface), returning byte-identical results.
type Group struct {
	engines []*search.Engine
	ranges  []par.Shard
	fanout  int
	metrics *Metrics
}

// Options tune group construction and fan-out.
type Options struct {
	// BuildWorkers bounds the per-shard index build parallelism
	// (0 = GOMAXPROCS). Shard builds themselves run concurrently.
	BuildWorkers int
	// FanOut caps how many shards are queried concurrently per search
	// (0 = all shards at once).
	FanOut int
	// TopKWorkers is each shard index's default intra-query parallelism
	// for bounded top-k queries (see index.Options.TopKWorkers; 0 = serial).
	TopKWorkers int
}

// NewGroup partitions the corpus into n contiguous paper-ID ranges and
// builds one engine per range: a range-restricted CSR index over the
// shared (corpus-global) analyzer plus the prestige matrix sliced to the
// range. The context set and relevancy weights are shared — context
// selection is identical on every shard because the sliced matrices keep
// the full context list. n is clamped to [1, corpus size].
func NewGroup(a *corpus.Analyzer, cs *contextset.ContextSet, m *prestige.Matrix, w search.Weights, n int, opts Options) *Group {
	ranges := par.Shards(a.Corpus().Len(), n)
	g := &Group{
		engines: make([]*search.Engine, len(ranges)),
		ranges:  ranges,
		fanout:  opts.FanOut,
		metrics: NewMetrics(len(ranges)),
	}
	// Shard builds are independent: fan them out, each internally bounded
	// by BuildWorkers.
	var wg sync.WaitGroup
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, r par.Shard) {
			defer wg.Done()
			ix := index.BuildRangeWorkers(a, r.Lo, r.Hi, opts.BuildWorkers)
			ix.SetDefaultTopKWorkers(opts.TopKWorkers)
			g.engines[i] = search.NewEngineFrozen(ix, cs, m.Slice(r.Lo, r.Hi), w)
		}(i, r)
	}
	wg.Wait()
	return g
}

// NewGroupParts is NewGroup over pre-built index parts (a mapped v4
// state): each shard's index comes from Parts.SliceRange — a binary-search
// restriction of the existing postings — instead of re-analysing the
// corpus. The sliced parts keep the global term dictionary, so per-shard
// engines select contexts and weight queries exactly as NewGroup's do and
// the merged pages stay byte-identical.
func NewGroupParts(a *corpus.Analyzer, parts *index.Parts, cs *contextset.ContextSet, m *prestige.Matrix, w search.Weights, n int, opts Options) (*Group, error) {
	ranges := par.Shards(a.Corpus().Len(), n)
	g := &Group{
		engines: make([]*search.Engine, len(ranges)),
		ranges:  ranges,
		fanout:  opts.FanOut,
		metrics: NewMetrics(len(ranges)),
	}
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, r par.Shard) {
			defer wg.Done()
			ix, err := index.FromParts(a, parts.SliceRange(r.Lo, r.Hi))
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			ix.SetDefaultTopKWorkers(opts.TopKWorkers)
			g.engines[i] = search.NewEngineFrozen(ix, cs, m.Slice(r.Lo, r.Hi), w)
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// RangeEngine builds shard i of n's engine alone — the multi-process
// deployment shape, where each process owns one paper range and serves it
// over POST /shard/search. The range split is exactly NewGroup's
// (par.Shards), so a multi-process cluster and an in-process group with
// the same n partition identically. Note n is clamped the same way as in
// NewGroup: a corpus smaller than n yields fewer ranges, and an index
// beyond them is an error.
func RangeEngine(a *corpus.Analyzer, cs *contextset.ContextSet, m *prestige.Matrix, w search.Weights, i, n, buildWorkers int) (*search.Engine, par.Shard, error) {
	ranges := par.Shards(a.Corpus().Len(), n)
	if i < 0 || i >= len(ranges) {
		return nil, par.Shard{}, fmt.Errorf("shard index %d out of range (corpus of %d papers splits into %d shards)", i, a.Corpus().Len(), len(ranges))
	}
	r := ranges[i]
	ix := index.BuildRangeWorkers(a, r.Lo, r.Hi, buildWorkers)
	return search.NewEngineFrozen(ix, cs, m.Slice(r.Lo, r.Hi), w), r, nil
}

// RangeEngineParts is RangeEngine over pre-built index parts: the shard's
// range-restricted index comes from Parts.SliceRange instead of
// re-analysing the corpus, so a mapped-state shard process is query-ready
// in O(terms + its own postings).
func RangeEngineParts(a *corpus.Analyzer, parts *index.Parts, cs *contextset.ContextSet, m *prestige.Matrix, w search.Weights, i, n int) (*search.Engine, par.Shard, error) {
	ranges := par.Shards(a.Corpus().Len(), n)
	if i < 0 || i >= len(ranges) {
		return nil, par.Shard{}, fmt.Errorf("shard index %d out of range (corpus of %d papers splits into %d shards)", i, a.Corpus().Len(), len(ranges))
	}
	r := ranges[i]
	ix, err := index.FromParts(a, parts.SliceRange(r.Lo, r.Hi))
	if err != nil {
		return nil, par.Shard{}, err
	}
	return search.NewEngineFrozen(ix, cs, m.Slice(r.Lo, r.Hi), w), r, nil
}

// NumShards returns the number of shards in the group.
func (g *Group) NumShards() int { return len(g.engines) }

// Ranges returns the per-shard paper-ID ranges.
func (g *Group) Ranges() []par.Shard { return g.ranges }

// Engine returns the i-th shard's engine (tests and diagnostics).
func (g *Group) Engine(i int) *search.Engine { return g.engines[i] }

// Metrics returns the group's coordinator counters.
func (g *Group) Metrics() *Metrics { return g.metrics }

// TopKStats sums the top-k evaluator counters over every shard engine —
// the group-wide view the server reports under /stats.
func (g *Group) TopKStats() index.TopKStats {
	var sum index.TopKStats
	for _, e := range g.engines {
		st := e.TopKStats()
		sum.Visited += st.Visited
		sum.Skipped += st.Skipped
		sum.Parallel += st.Parallel
		sum.ParallelWorkers += st.ParallelWorkers
		sum.SerialFallback += st.SerialFallback
	}
	return sum
}

// ResetTopKStats zeroes every shard engine's evaluator counters.
func (g *Group) ResetTopKStats() {
	for _, e := range g.engines {
		e.ResetTopKStats()
	}
}

// SelectContextsContext reports which contexts a query selects. Selection
// metadata is identical on every shard (see NewGroup), so shard 0 answers
// for the group.
func (g *Group) SelectContextsContext(ctx context.Context, query string, opts search.Options) ([]search.ContextScore, error) {
	return g.engines[0].SelectContextsContext(ctx, query, opts)
}

// Search is SearchContext with a background context.
func (g *Group) Search(query string, opts search.Options) []search.Result {
	out, _ := g.SearchContext(context.Background(), query, opts)
	return out
}

// SearchContext fans the vector search out to every shard and merges the
// per-shard pages into the exact single-engine page.
func (g *Group) SearchContext(ctx context.Context, query string, opts search.Options) ([]search.Result, error) {
	return g.scatter(ctx, opts, func(e *search.Engine, sopts search.Options) ([]search.Result, error) {
		return e.SearchContext(ctx, query, sopts)
	})
}

// SearchBoolean is SearchBooleanContext with a background context.
func (g *Group) SearchBoolean(query string, opts search.Options) ([]search.Result, error) {
	return g.SearchBooleanContext(context.Background(), query, opts)
}

// SearchBooleanContext fans the boolean search out to every shard and
// merges exactly. Parsing is per shard but pure syntax over the shared
// tokenizer, so an unparsable query fails identically everywhere.
func (g *Group) SearchBooleanContext(ctx context.Context, query string, opts search.Options) ([]search.Result, error) {
	return g.scatter(ctx, opts, func(e *search.Engine, sopts search.Options) ([]search.Result, error) {
		return e.SearchBooleanContext(ctx, query, sopts)
	})
}

// scatter runs one query on every shard (offset folded into the shard
// limit, the standard scatter-gather transformation) and merges the sorted
// per-shard pages. The fan-out is bounded by Options.FanOut; per-shard
// latency and the max-shard/merge split land in the metrics. The first
// shard error (in shard order, deterministically) aborts the query — the
// in-process shape shares one process, so partial answers are a transport
// concern handled by the HTTP coordinator, not here.
func (g *Group) scatter(ctx context.Context, opts search.Options, run func(*search.Engine, search.Options) ([]search.Result, error)) ([]search.Result, error) {
	sopts := ShardOptions(opts)
	n := len(g.engines)
	pages := make([][]search.Result, n)
	errs := make([]error, n)
	var maxShard AtomicMaxDuration
	par.For(n, g.fanout, func(i int) {
		t0 := time.Now()
		pages[i], errs[i] = run(g.engines[i], sopts)
		maxShard.Observe(time.Since(t0))
		g.metrics.ObserveShard(i, errs[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	t0 := time.Now()
	out := MergePages(pages, opts)
	g.metrics.ObserveSearch(maxShard.Load(), time.Since(t0))
	return out, nil
}

// ShardOptions maps a client's paging request onto the per-shard request:
// every shard must return its own top offset+limit results (offset cannot
// be applied shard-locally — the papers skipped by the global offset are
// distributed across shards), and threshold and selection knobs pass
// through unchanged.
func ShardOptions(opts search.Options) search.Options {
	sopts := opts
	sopts.Offset = 0
	if opts.Limit > 0 && opts.Offset > 0 {
		sopts.Limit = opts.Offset + opts.Limit
	}
	return sopts
}
