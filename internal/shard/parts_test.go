package shard

import (
	"fmt"
	"testing"

	"ctxsearch/internal/index"
	"ctxsearch/internal/search"
)

// TestGroupPartsGolden: a group whose shard indexes are sliced from the
// global postings (the mapped-state path) returns byte-identical pages to
// both the single reference engine and a re-analysed NewGroup, across
// shard counts and paging shapes.
func TestGroupPartsGolden(t *testing.T) {
	f := buildFixture(t)
	parts := index.Build(f.a).Parts()
	for _, n := range []int{1, 2, 3, 7} {
		g, err := NewGroupParts(f.a, parts, f.cs, f.matrix, search.DefaultWeights(), n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rebuilt := NewGroup(f.a, f.cs, f.matrix, search.DefaultWeights(), n, Options{BuildWorkers: 1})
		for _, q := range goldenQueries(f) {
			for _, opts := range []search.Options{
				{Limit: 10},
				{Limit: 5, Offset: 3},
				{Limit: 50, Threshold: 0.05},
			} {
				label := fmt.Sprintf("n=%d q=%q opts=%+v", n, q, opts)
				want := f.ref.Search(q, opts)
				got := g.Search(q, opts)
				diffResults(t, label+" (vs engine)", got, want)
				diffResults(t, label+" (vs rebuilt group)", got, rebuilt.Search(q, opts))
			}
		}
	}
}

// TestRangeEngineParts: each sliced range engine matches its re-analysed
// counterpart, and out-of-range indexes fail the same way.
func TestRangeEngineParts(t *testing.T) {
	f := buildFixture(t)
	parts := index.Build(f.a).Parts()
	const n = 3
	for i := 0; i < n; i++ {
		sliced, r1, err := RangeEngineParts(f.a, parts, f.cs, f.matrix, search.DefaultWeights(), i, n)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt, r2, err := RangeEngine(f.a, f.cs, f.matrix, search.DefaultWeights(), i, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Fatalf("shard %d: ranges differ: %+v vs %+v", i, r1, r2)
		}
		for _, q := range goldenQueries(f) {
			got := sliced.Search(q, search.Options{Limit: 20})
			want := rebuilt.Search(q, search.Options{Limit: 20})
			diffResults(t, fmt.Sprintf("shard %d q=%q", i, q), got, want)
		}
	}
	if _, _, err := RangeEngineParts(f.a, parts, f.cs, f.matrix, search.DefaultWeights(), n, n); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
}
