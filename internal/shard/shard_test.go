package shard

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
	"ctxsearch/internal/search"
)

// fixture holds the corpus-global state every shard shares, plus the
// single-engine reference the golden battery compares against.
type fixture struct {
	onto   *ontology.Ontology
	c      *corpus.Corpus
	a      *corpus.Analyzer
	cs     *contextset.ContextSet
	matrix *prestige.Matrix
	ref    *search.Engine
}

var cached *fixture

func buildFixture(t testing.TB) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	o, err := ontology.Generate(ontology.GenConfig{Seed: 6, NumTerms: 60, MaxDepth: 6, SecondParentProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(250))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	cs := contextset.BuildTextBased(a, o, contextset.DefaultConfig())
	scores := prestige.ScoreAll(prestige.NewTextScorer(a, prestige.DefaultTextWeights()), cs, 0)
	prestige.PropagateMax(o, scores)
	m := scores.Freeze()
	cached = &fixture{
		onto: o, c: c, a: a, cs: cs, matrix: m,
		ref: search.NewEngineFrozen(index.Build(a), cs, m, search.DefaultWeights()),
	}
	return cached
}

// goldenQueries mirrors the search package's battery: exact context names,
// cross-context mixes, generic phrases and a no-match query.
func goldenQueries(f *fixture) []string {
	var names []string
	for _, ctx := range f.matrix.Contexts() {
		if t := f.onto.Term(ctx); t != nil {
			names = append(names, t.Name)
		}
		if len(names) >= 10 {
			break
		}
	}
	queries := append([]string(nil), names...)
	for i := 0; i+1 < len(names); i += 2 {
		queries = append(queries, names[i]+" "+names[i+1])
	}
	queries = append(queries,
		"regulation of rna protein binding",
		"transport activity complex formation",
		"qqqzzz unknown words",
	)
	return queries
}

// diffResults compares element-wise: a group may return an empty non-nil
// page where the engine returns nil (or vice versa) — the contract is the
// rows, not the slice header.
func diffResults(t *testing.T, label string, got, want []search.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: group returned %d results, engine %d\ngot:  %v\nwant: %v",
			label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d differs\ngot:  %+v\nwant: %+v", label, i, got[i], want[i])
		}
	}
}

var shardCounts = []int{1, 2, 3, 5, 8}

func buildGroups(t testing.TB, f *fixture) map[int]*Group {
	t.Helper()
	groups := make(map[int]*Group, len(shardCounts))
	for _, n := range shardCounts {
		groups[n] = NewGroup(f.a, f.cs, f.matrix, search.DefaultWeights(), n, Options{})
	}
	return groups
}

// TestGroupGoldenEquality is the tentpole guarantee: for every shard count,
// the scatter-gather page equals the single-engine page exactly — same
// documents, same scores bit for bit, same maximising contexts — across
// randomized (limit, offset, threshold, context-count) combinations on both
// the vector and boolean paths, including unlimited requests.
func TestGroupGoldenEquality(t *testing.T) {
	f := buildFixture(t)
	groups := buildGroups(t, f)
	queries := goldenQueries(f)
	rng := rand.New(rand.NewSource(99))
	for _, n := range shardCounts {
		g := groups[n]
		if got := g.NumShards(); got > n || got < 1 {
			t.Fatalf("group for n=%d has %d shards", n, got)
		}
		for qi, q := range queries {
			for trial := 0; trial < 6; trial++ {
				opts := search.Options{
					Limit:           1 + rng.Intn(20),
					MaxContexts:     1 + rng.Intn(8),
					MinContextMatch: 0.01,
				}
				if rng.Intn(2) == 0 {
					opts.Offset = rng.Intn(15)
				}
				if rng.Intn(3) == 0 {
					opts.Threshold = rng.Float64() * 0.4
				}
				if trial == 5 {
					// Unlimited page: exercises the concatenate-and-sort
					// merge path.
					opts.Limit, opts.Offset = 0, 0
				}
				label := fmt.Sprintf("shards=%d query %d %q trial %d opts %+v", n, qi, q, trial, opts)
				diffResults(t, label, g.Search(q, opts), f.ref.Search(q, opts))

				bg, bgErr := g.SearchBoolean(q, opts)
				bw, bwErr := f.ref.SearchBoolean(q, opts)
				if (bgErr == nil) != (bwErr == nil) {
					t.Fatalf("%s: boolean error mismatch: group %v, engine %v", label, bgErr, bwErr)
				}
				if bgErr == nil {
					diffResults(t, label+" boolean", bg, bw)
				}
			}
		}
	}
}

// TestGroupBooleanOperators covers structured boolean queries (AND/OR/NOT,
// phrases) through the fan-out, where per-shard parsing must agree.
func TestGroupBooleanOperators(t *testing.T) {
	f := buildFixture(t)
	g := NewGroup(f.a, f.cs, f.matrix, search.DefaultWeights(), 4, Options{})
	names := goldenQueries(f)
	queries := []string{
		names[0] + " AND " + names[1],
		names[0] + " OR " + names[2],
		names[0] + " NOT " + names[1],
		"\"" + names[0] + "\"",
	}
	for _, q := range queries {
		for _, opts := range []search.Options{{Limit: 10}, {Limit: 3, Offset: 4}, {}} {
			got, gotErr := g.SearchBoolean(q, opts)
			want, wantErr := f.ref.SearchBoolean(q, opts)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%q: error mismatch: group %v, engine %v", q, gotErr, wantErr)
			}
			diffResults(t, fmt.Sprintf("boolean %q opts %+v", q, opts), got, want)
		}
	}
}

// TestGroupSelectContexts pins that context selection is shard-independent:
// the group's answer (served by shard 0) equals the single engine's.
func TestGroupSelectContexts(t *testing.T) {
	f := buildFixture(t)
	g := NewGroup(f.a, f.cs, f.matrix, search.DefaultWeights(), 3, Options{})
	for _, q := range goldenQueries(f) {
		got, err := g.SelectContextsContext(context.Background(), q, search.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := f.ref.SelectContexts(q, search.Options{})
		if len(got) != len(want) {
			t.Fatalf("%q: group selected %d contexts, engine %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q: selection %d differs: %+v vs %+v", q, i, got[i], want[i])
			}
		}
	}
}

// TestGroupRangesPartition checks the shard split covers the corpus with
// disjoint contiguous ranges.
func TestGroupRangesPartition(t *testing.T) {
	f := buildFixture(t)
	for _, n := range shardCounts {
		g := NewGroup(f.a, f.cs, f.matrix, search.DefaultWeights(), n, Options{})
		ranges := g.Ranges()
		next := 0
		for _, r := range ranges {
			if r.Lo != next || r.Hi <= r.Lo {
				t.Fatalf("n=%d: bad range %+v (want Lo=%d)", n, r, next)
			}
			next = r.Hi
		}
		if next != f.c.Len() {
			t.Fatalf("n=%d: ranges cover [0,%d), corpus has %d papers", n, next, f.c.Len())
		}
	}
}

// TestGroupMetrics checks the fan-out counters: every search touches every
// shard exactly once and lands in the search/latency totals.
func TestGroupMetrics(t *testing.T) {
	f := buildFixture(t)
	g := NewGroup(f.a, f.cs, f.matrix, search.DefaultWeights(), 3, Options{FanOut: 2})
	q := goldenQueries(f)[0]
	const searches = 4
	for i := 0; i < searches; i++ {
		g.Search(q, search.Options{Limit: 5, Offset: i}) // distinct opts: no cache in the group
	}
	snap := g.Metrics().Snapshot()
	if snap.Searches != searches {
		t.Fatalf("snapshot has %d searches, want %d", snap.Searches, searches)
	}
	if snap.Partial != 0 {
		t.Fatalf("in-process group recorded %d partials", snap.Partial)
	}
	if len(snap.Shards) != g.NumShards() {
		t.Fatalf("snapshot has %d shard rows, want %d", len(snap.Shards), g.NumShards())
	}
	for i, s := range snap.Shards {
		if s.Requests != searches || s.Errors != 0 || s.Timeouts != 0 {
			t.Fatalf("shard %d counters %+v, want %d clean requests", i, s, searches)
		}
	}
}

// TestGroupContextCancellation: a cancelled context aborts the fan-out with
// the context error, like a single engine.
func TestGroupContextCancellation(t *testing.T) {
	f := buildFixture(t)
	g := NewGroup(f.a, f.cs, f.matrix, search.DefaultWeights(), 2, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.SearchContext(ctx, goldenQueries(f)[0], search.Options{Limit: 5}); err == nil {
		t.Fatal("cancelled search returned no error")
	}
	snap := g.Metrics().Snapshot()
	errs := uint64(0)
	for _, s := range snap.Shards {
		errs += s.Errors
	}
	if errs == 0 {
		t.Fatal("cancellation not recorded in shard error counters")
	}
}

// TestShardOptions pins the scatter transformation.
func TestShardOptions(t *testing.T) {
	tests := []struct {
		in, want search.Options
	}{
		{search.Options{Limit: 10}, search.Options{Limit: 10}},
		{search.Options{Limit: 10, Offset: 5}, search.Options{Limit: 15}},
		{search.Options{}, search.Options{}},
		{search.Options{Offset: 7}, search.Options{}},
		{search.Options{Limit: 3, Offset: 2, Threshold: 0.5}, search.Options{Limit: 5, Threshold: 0.5}},
	}
	for _, tc := range tests {
		if got := ShardOptions(tc.in); got != tc.want {
			t.Fatalf("ShardOptions(%+v) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// TestMergePagesEarlyTermination feeds hand-built sorted pages and checks
// both the merged order and the paging window.
func TestMergePagesEarlyTermination(t *testing.T) {
	a := []search.Result{{Doc: 1, Relevancy: 0.9}, {Doc: 3, Relevancy: 0.5}, {Doc: 5, Relevancy: 0.1}}
	b := []search.Result{{Doc: 2, Relevancy: 0.8}, {Doc: 4, Relevancy: 0.4}}
	got := MergePages([][]search.Result{a, b}, search.Options{Limit: 2})
	if len(got) != 2 || got[0].Doc != 1 || got[1].Doc != 2 {
		t.Fatalf("merged page = %+v", got)
	}
	// Offset window crossing shard boundaries.
	got = MergePages([][]search.Result{a, b}, search.Options{Limit: 2, Offset: 1})
	if len(got) != 2 || got[0].Doc != 2 || got[1].Doc != 3 {
		t.Fatalf("offset page = %+v", got)
	}
	// Unbounded: all rows, globally sorted.
	got = MergePages([][]search.Result{a, b}, search.Options{})
	if len(got) != 5 || got[0].Doc != 1 || got[4].Doc != 5 {
		t.Fatalf("unbounded merge = %+v", got)
	}
	// Tie on relevancy: ascending doc order.
	tie := MergePages([][]search.Result{
		{{Doc: 9, Relevancy: 0.7}},
		{{Doc: 2, Relevancy: 0.7}},
	}, search.Options{Limit: 2})
	if tie[0].Doc != 2 || tie[1].Doc != 9 {
		t.Fatalf("tie order = %+v", tie)
	}
}
