package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/search"
)

// refMerge is the single-engine reference: the page an engine holding
// every row at once would serve (pages hold disjoint papers, so the union
// is exactly the global result set).
func refMerge(pages [][]search.Result, opts search.Options) []search.Result {
	var all []search.Result
	for _, p := range pages {
		all = append(all, p...)
	}
	search.SortResults(all)
	return search.Paginate(all, opts)
}

func diffMerged(t *testing.T, label string, got, want []search.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, reference has %d\ngot:  %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %+v, reference %+v", label, i, got[i], want[i])
		}
	}
}

// makePages builds n disjoint sorted pages; sizes[i] rows in page i, with
// relevancies drawn from a small set so cross-shard ties are common.
func makePages(rng *rand.Rand, sizes []int) [][]search.Result {
	id := 0
	pages := make([][]search.Result, len(sizes))
	for i, sz := range sizes {
		page := make([]search.Result, 0, sz)
		for j := 0; j < sz; j++ {
			page = append(page, search.Result{
				Doc:       corpus.PaperID(id),
				Relevancy: float64(rng.Intn(5)) / 4, // heavy ties incl. 0 and 1
			})
			id++
		}
		search.SortResults(page)
		pages[i] = page
	}
	return pages
}

// TestMergePagesEdgeCases pins the degenerate shapes a replicated,
// fault-tolerant fan-out actually produces: failed shards contributing
// empty pages, shards exhausted below the folded limit, and offsets
// landing exactly on page and result-set boundaries.
func TestMergePagesEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cases := []struct {
		name  string
		sizes []int
		opts  search.Options
	}{
		{"all pages empty", []int{0, 0, 0}, search.Options{Limit: 10}},
		{"all pages empty unbounded", []int{0, 0}, search.Options{}},
		{"one populated among empties", []int{0, 7, 0}, search.Options{Limit: 5}},
		{"every shard short of the folded limit", []int{2, 1, 3}, search.Options{Limit: 50, Offset: 10}},
		{"offset on page boundary", []int{4, 4, 4}, search.Options{Limit: 4, Offset: 4}},
		{"offset at exact end of results", []int{3, 3}, search.Options{Limit: 10, Offset: 6}},
		{"offset one past the end", []int{3, 3}, search.Options{Limit: 10, Offset: 7}},
		{"offset+limit exactly covers all rows", []int{5, 5}, search.Options{Limit: 5, Offset: 5}},
		{"single shard", []int{9}, search.Options{Limit: 3, Offset: 2}},
		{"unbounded limit", []int{6, 6, 6}, search.Options{Offset: 4}},
		{"limit one", []int{8, 8}, search.Options{Limit: 1}},
	}
	for _, c := range cases {
		pages := makePages(rng, c.sizes)
		got := MergePages(pages, c.opts)
		diffMerged(t, c.name, got, refMerge(pages, c.opts))
	}
}

// TestMergePagesRandomized: randomized shard counts, page sizes, and
// paging against the reference — tie-heavy scores make any ordering bug
// in the bounded-heap path surface.
func TestMergePagesRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		sizes := make([]int, 1+rng.Intn(6))
		for i := range sizes {
			sizes[i] = rng.Intn(12)
		}
		opts := search.Options{Limit: rng.Intn(10), Offset: rng.Intn(15)}
		pages := makePages(rng, sizes)
		got := MergePages(pages, opts)
		label := fmt.Sprintf("trial %d sizes %v opts %+v", trial, sizes, opts)
		diffMerged(t, label, got, refMerge(pages, opts))
	}
}
