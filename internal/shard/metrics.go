package shard

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Metrics holds a coordinator's fan-out counters: per-shard request,
// error and timeout counts plus the scatter-gather latency split (the
// slowest shard vs the merge itself, as running totals so averages are
// derivable). All methods are safe for concurrent use; both the
// in-process Group and the HTTP Coordinator update one instance.
type Metrics struct {
	searches      atomic.Uint64
	partial       atomic.Uint64
	maxShardNanos atomic.Int64
	mergeNanos    atomic.Int64
	shards        []shardCounters
}

type shardCounters struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	timeouts atomic.Uint64
}

// NewMetrics returns zeroed counters for n shards.
func NewMetrics(n int) *Metrics {
	return &Metrics{shards: make([]shardCounters, n)}
}

// ObserveShard records one shard request and its outcome. A deadline
// expiry counts as a timeout, any other failure as an error.
func (m *Metrics) ObserveShard(i int, err error) {
	c := &m.shards[i]
	c.requests.Add(1)
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		c.timeouts.Add(1)
	default:
		c.errors.Add(1)
	}
}

// ObserveSearch records one completed scatter-gather: the slowest shard's
// latency and the coordinator-side merge time.
func (m *Metrics) ObserveSearch(maxShard, merge time.Duration) {
	m.searches.Add(1)
	m.maxShardNanos.Add(int64(maxShard))
	m.mergeNanos.Add(int64(merge))
}

// ObservePartial records a search answered with a flagged partial result
// (some shard failed and the coordinator's partial policy allowed it).
func (m *Metrics) ObservePartial() { m.partial.Add(1) }

// ShardStat is one shard's counters in a Snapshot.
type ShardStat struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Timeouts uint64 `json:"timeouts"`
}

// Snapshot is a point-in-time copy of the coordinator counters, shaped
// for the /stats payload.
type Snapshot struct {
	// Searches counts completed scatter-gather merges; Partial the subset
	// served degraded.
	Searches uint64 `json:"searches"`
	Partial  uint64 `json:"partial"`
	// MaxShardMicrosTotal sums each search's slowest shard latency;
	// MergeMicrosTotal sums the coordinator merge time — divide either by
	// Searches for the mean split.
	MaxShardMicrosTotal uint64      `json:"max_shard_micros_total"`
	MergeMicrosTotal    uint64      `json:"merge_micros_total"`
	Shards              []ShardStat `json:"shards"`
}

// Snapshot returns a copy of the current counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Searches:            m.searches.Load(),
		Partial:             m.partial.Load(),
		MaxShardMicrosTotal: uint64(m.maxShardNanos.Load() / 1e3),
		MergeMicrosTotal:    uint64(m.mergeNanos.Load() / 1e3),
		Shards:              make([]ShardStat, len(m.shards)),
	}
	for i := range m.shards {
		c := &m.shards[i]
		s.Shards[i] = ShardStat{
			Requests: c.requests.Load(),
			Errors:   c.errors.Load(),
			Timeouts: c.timeouts.Load(),
		}
	}
	return s
}

// AtomicMaxDuration tracks the maximum of concurrently observed durations
// — the slowest-shard latency of one scatter-gather fan-out.
type AtomicMaxDuration struct{ v atomic.Int64 }

// Observe folds one duration into the running maximum.
func (a *AtomicMaxDuration) Observe(d time.Duration) {
	for {
		cur := a.v.Load()
		if int64(d) <= cur || a.v.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Load returns the maximum observed so far.
func (a *AtomicMaxDuration) Load() time.Duration { return time.Duration(a.v.Load()) }
