package shard

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Metrics holds a coordinator's fan-out counters: per-shard request,
// error and timeout counts plus the scatter-gather latency split (the
// slowest shard vs the merge itself, as running totals so averages are
// derivable). All methods are safe for concurrent use; both the
// in-process Group and the HTTP Coordinator update one instance.
type Metrics struct {
	searches      atomic.Uint64
	partial       atomic.Uint64
	maxShardNanos atomic.Int64
	mergeNanos    atomic.Int64
	shards        []shardCounters

	// Resilience counters (replicated coordinator only; zero elsewhere).
	retries       atomic.Uint64
	retriesDenied atomic.Uint64
	hedges        atomic.Uint64
	hedgesWon     atomic.Uint64
	breakerOpens  atomic.Uint64
	failovers     atomic.Uint64
	// replicas tracks each physical backend; rangeOf maps a backend to
	// the shard range it replicates. nil when the topology has no
	// replica layer (in-process Group, unreplicated coordinator paths).
	replicas []shardCounters
	rangeOf  []int
}

type shardCounters struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	timeouts atomic.Uint64
}

// NewMetrics returns zeroed counters for n shards.
func NewMetrics(n int) *Metrics {
	return &Metrics{shards: make([]shardCounters, n)}
}

// NewMetricsReplicated returns counters for a replicated topology:
// nRanges shard ranges served by len(rangeOf) physical backends, where
// rangeOf[g] is the range backend g replicates. Range-level counters
// record the outcome of each logical range call (after retries and
// failover); replica-level counters record every physical attempt.
func NewMetricsReplicated(nRanges int, rangeOf []int) *Metrics {
	return &Metrics{
		shards:   make([]shardCounters, nRanges),
		replicas: make([]shardCounters, len(rangeOf)),
		rangeOf:  append([]int(nil), rangeOf...),
	}
}

// ObserveShard records one shard request and its outcome. A deadline
// expiry counts as a timeout, any other failure as an error.
func (m *Metrics) ObserveShard(i int, err error) {
	c := &m.shards[i]
	c.requests.Add(1)
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		c.timeouts.Add(1)
	default:
		c.errors.Add(1)
	}
}

// ObserveSearch records one completed scatter-gather: the slowest shard's
// latency and the coordinator-side merge time.
func (m *Metrics) ObserveSearch(maxShard, merge time.Duration) {
	m.searches.Add(1)
	m.maxShardNanos.Add(int64(maxShard))
	m.mergeNanos.Add(int64(merge))
}

// ObservePartial records a search answered with a flagged partial result
// (some shard failed and the coordinator's partial policy allowed it).
func (m *Metrics) ObservePartial() { m.partial.Add(1) }

// ObserveReplica records one physical request to backend g. A cancelled
// attempt (hedge loser, abandoned client) counts as a request but says
// nothing about the backend, so it is neither an error nor a timeout.
func (m *Metrics) ObserveReplica(g int, err error) {
	c := &m.replicas[g]
	c.requests.Add(1)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
	case errors.Is(err, context.DeadlineExceeded):
		c.timeouts.Add(1)
	default:
		c.errors.Add(1)
	}
}

// ObserveRetry records one budget-approved retry attempt; ObserveRetryDenied
// one the retry budget refused.
func (m *Metrics) ObserveRetry()       { m.retries.Add(1) }
func (m *Metrics) ObserveRetryDenied() { m.retriesDenied.Add(1) }

// ObserveHedge records one fired hedge request and whether it won the race
// (its response was the first success).
func (m *Metrics) ObserveHedge(won bool) {
	m.hedges.Add(1)
	if won {
		m.hedgesWon.Add(1)
	}
}

// ObserveBreakerOpen records one circuit breaker tripping open.
func (m *Metrics) ObserveBreakerOpen() { m.breakerOpens.Add(1) }

// ObserveFailover records a range call that succeeded only after at least
// one replica attempt failed.
func (m *Metrics) ObserveFailover() { m.failovers.Add(1) }

// ShardStat is one shard's counters in a Snapshot.
type ShardStat struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Timeouts uint64 `json:"timeouts"`
}

// ReplicaStat is one physical backend's counters in a Snapshot. URL,
// State and Healthy are filled in by the coordinator (the metrics layer
// tracks only the counters).
type ReplicaStat struct {
	Range    int    `json:"range"`
	URL      string `json:"url,omitempty"`
	State    string `json:"breaker,omitempty"`
	Healthy  bool   `json:"healthy"`
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Timeouts uint64 `json:"timeouts"`
}

// Snapshot is a point-in-time copy of the coordinator counters, shaped
// for the /stats payload.
type Snapshot struct {
	// Searches counts completed scatter-gather merges; Partial the subset
	// served degraded.
	Searches uint64 `json:"searches"`
	Partial  uint64 `json:"partial"`
	// MaxShardMicrosTotal sums each search's slowest shard latency;
	// MergeMicrosTotal sums the coordinator merge time — divide either by
	// Searches for the mean split.
	MaxShardMicrosTotal uint64      `json:"max_shard_micros_total"`
	MergeMicrosTotal    uint64      `json:"merge_micros_total"`
	Shards              []ShardStat `json:"shards"`
	// Resilience counters: budget-approved retries and budget-denied
	// ones, hedges fired / won, breaker trips, and range calls rescued by
	// failover. Only the replicated coordinator moves these.
	Retries       uint64 `json:"retries,omitempty"`
	RetriesDenied uint64 `json:"retries_denied,omitempty"`
	Hedges        uint64 `json:"hedges,omitempty"`
	HedgesWon     uint64 `json:"hedges_won,omitempty"`
	BreakerOpens  uint64 `json:"breaker_opens,omitempty"`
	Failovers     uint64 `json:"failovers,omitempty"`
	// Replicas is the per-backend view (present only for replicated
	// topologies).
	Replicas []ReplicaStat `json:"replicas,omitempty"`
}

// Snapshot returns a copy of the current counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Searches:            m.searches.Load(),
		Partial:             m.partial.Load(),
		MaxShardMicrosTotal: uint64(m.maxShardNanos.Load() / 1e3),
		MergeMicrosTotal:    uint64(m.mergeNanos.Load() / 1e3),
		Shards:              make([]ShardStat, len(m.shards)),
		Retries:             m.retries.Load(),
		RetriesDenied:       m.retriesDenied.Load(),
		Hedges:              m.hedges.Load(),
		HedgesWon:           m.hedgesWon.Load(),
		BreakerOpens:        m.breakerOpens.Load(),
		Failovers:           m.failovers.Load(),
	}
	for i := range m.shards {
		c := &m.shards[i]
		s.Shards[i] = ShardStat{
			Requests: c.requests.Load(),
			Errors:   c.errors.Load(),
			Timeouts: c.timeouts.Load(),
		}
	}
	if m.replicas != nil {
		s.Replicas = make([]ReplicaStat, len(m.replicas))
		for g := range m.replicas {
			c := &m.replicas[g]
			s.Replicas[g] = ReplicaStat{
				Range:    m.rangeOf[g],
				Requests: c.requests.Load(),
				Errors:   c.errors.Load(),
				Timeouts: c.timeouts.Load(),
			}
		}
	}
	return s
}

// AtomicMaxDuration tracks the maximum of concurrently observed durations
// — the slowest-shard latency of one scatter-gather fan-out.
type AtomicMaxDuration struct{ v atomic.Int64 }

// Observe folds one duration into the running maximum.
func (a *AtomicMaxDuration) Observe(d time.Duration) {
	for {
		cur := a.v.Load()
		if int64(d) <= cur || a.v.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Load returns the maximum observed so far.
func (a *AtomicMaxDuration) Load() time.Duration { return time.Duration(a.v.Load()) }
