package shard

import (
	"ctxsearch/internal/search"
	"ctxsearch/internal/topk"
)

// MergePages merges per-shard ranked pages into the page a single engine
// would serve for opts, exactly.
//
// Contract: every page is sorted in search.SortResults order (descending
// relevancy, ties by ascending paper ID — the order every engine and the
// shard HTTP endpoint emit), pages hold disjoint papers, and each page
// contains its shard's top ShardOptions(opts) results. Under those
// invariants the global top offset+limit results are all present in the
// input (restricting a ranking to a subset of papers can only improve a
// paper's rank), so the bounded heap selects exactly them, and the final
// SortResults + Paginate reproduce the single-engine page byte for byte.
//
// Early termination is monotone: pages are sorted, so a page's next row is
// an exact upper bound on everything after it. Once the heap is full and a
// row cannot displace the heap minimum, the rest of that page is skipped
// — the same rows Offer would have rejected one by one. In particular a
// whole shard whose best row is already beaten costs one comparison.
func MergePages(pages [][]search.Result, opts search.Options) []search.Result {
	k := 0
	if opts.Limit > 0 && opts.Offset >= 0 {
		k = opts.Offset + opts.Limit
	}
	if k <= 0 {
		// Unbounded request: concatenate (papers are disjoint across
		// shards) and sort the union.
		var out []search.Result
		for _, p := range pages {
			out = append(out, p...)
		}
		search.SortResults(out)
		return search.Paginate(out, opts)
	}
	heap := topk.New(k, search.WorseResult)
	for _, p := range pages {
		for _, r := range p {
			if heap.Full() && !search.WorseResult(heap.Min(), r) {
				break // sorted page: every later row is worse still
			}
			heap.Offer(r)
		}
	}
	out := heap.Items()
	search.SortResults(out)
	return search.Paginate(out, opts)
}
