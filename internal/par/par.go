// Package par provides the bounded fan-out primitives the offline build
// pipeline shares: a parallel for-loop and contiguous shard splitting.
//
// Every helper here is deterministic in the sense the build requires: work
// is partitioned statically (not work-stolen), so which goroutine computes
// which item — and therefore which per-shard accumulator it lands in — is a
// pure function of (n, workers). Callers that merge per-shard results in
// shard order produce output independent of scheduling; callers whose merge
// is order-insensitive (integer counts, disjoint map keys, disjoint slice
// slots) produce output independent of the worker count too.
package par

import (
	"runtime"
	"sync"
)

// Workers normalises a worker-count knob against the amount of work:
// w <= 0 selects GOMAXPROCS, and the result never exceeds n (no idle
// goroutines for tiny inputs).
func Workers(n, w int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(i) for every i in [0,n) across a bounded worker pool and
// waits for completion. workers <= 0 selects GOMAXPROCS; with one worker
// (or n < 2) it runs inline on the calling goroutine. fn must be safe for
// concurrent invocation with distinct i.
//
// Items are handed out through a channel, so For balances uneven per-item
// cost; use ForShards when per-shard state must be attributable to a static
// partition.
func For(n, workers int, fn func(i int)) {
	workers = Workers(n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// Shard is a contiguous half-open index range [Lo, Hi).
type Shard struct {
	Lo, Hi int
}

// Len returns the number of items in the shard.
func (s Shard) Len() int { return s.Hi - s.Lo }

// Shards splits [0,n) into Workers(n, workers) contiguous near-equal
// ranges. The split depends only on (n, workers), never on scheduling, so
// per-shard accumulators merged in shard order yield deterministic results.
// n == 0 returns no shards.
func Shards(n, workers int) []Shard {
	if n == 0 {
		return nil
	}
	workers = Workers(n, workers)
	out := make([]Shard, 0, workers)
	size, rem := n/workers, n%workers
	lo := 0
	for i := 0; i < workers; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		out = append(out, Shard{lo, hi})
		lo = hi
	}
	return out
}

// ForShards runs fn(si, shard) for every shard concurrently (one goroutine
// per shard) and waits for completion. A single shard runs inline. fn must
// be safe for concurrent invocation with distinct si.
func ForShards(shards []Shard, fn func(si int, s Shard)) {
	if len(shards) == 0 {
		return
	}
	if len(shards) == 1 {
		fn(0, shards[0])
		return
	}
	var wg sync.WaitGroup
	for si := range shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			fn(si, shards[si])
		}(si)
	}
	wg.Wait()
}
