package par

import (
	"sync/atomic"
	"testing"
)

func TestShardsCoverExactly(t *testing.T) {
	for _, tc := range []struct{ n, w int }{
		{0, 4}, {1, 4}, {3, 4}, {4, 4}, {7, 3}, {100, 8}, {5, 0}, {5, 1},
	} {
		shards := Shards(tc.n, tc.w)
		covered := 0
		prev := 0
		for _, s := range shards {
			if s.Lo != prev {
				t.Fatalf("n=%d w=%d: shard gap at %d (got Lo=%d)", tc.n, tc.w, prev, s.Lo)
			}
			if s.Len() <= 0 {
				t.Fatalf("n=%d w=%d: empty shard %+v", tc.n, tc.w, s)
			}
			covered += s.Len()
			prev = s.Hi
		}
		if covered != tc.n {
			t.Fatalf("n=%d w=%d: shards cover %d items", tc.n, tc.w, covered)
		}
		if tc.n > 0 && len(shards) > Workers(tc.n, tc.w) {
			t.Fatalf("n=%d w=%d: %d shards exceed worker bound", tc.n, tc.w, len(shards))
		}
	}
}

func TestShardsDependOnlyOnInputs(t *testing.T) {
	a, b := Shards(1000, 7), Shards(1000, 7)
	if len(a) != len(b) {
		t.Fatal("shard counts differ between identical calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{0, 1, 3, 16} {
		n := 257
		counts := make([]int32, n)
		For(n, w, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, c)
			}
		}
	}
}

func TestForShardsVisitsEveryShard(t *testing.T) {
	shards := Shards(100, 6)
	var total int64
	ForShards(shards, func(si int, s Shard) {
		atomic.AddInt64(&total, int64(s.Len()))
	})
	if total != 100 {
		t.Fatalf("shards processed %d of 100 items", total)
	}
}

func TestWorkersNormalisation(t *testing.T) {
	if w := Workers(10, 0); w < 1 {
		t.Fatalf("Workers(10,0) = %d", w)
	}
	if w := Workers(3, 8); w != 3 {
		t.Fatalf("Workers(3,8) = %d, want 3", w)
	}
	if w := Workers(0, 8); w != 1 {
		t.Fatalf("Workers(0,8) = %d, want 1", w)
	}
}
