// Package vector implements the sparse-vector TF-IDF model used by every
// text-similarity computation in the system: section similarities for the
// text-based prestige function, query/paper matching scores, centroid-based
// AC-answer-set expansion, and representative-paper selection.
package vector

import (
	"math"
	"slices"
	"sort"
)

// Sparse is a sparse real-valued vector keyed by term. The zero value is an
// empty vector ready for use via the constructor; nil maps are handled by
// all methods.
type Sparse map[string]float64

// New returns an empty sparse vector.
func New() Sparse { return make(Sparse) }

// FromTerms builds a raw term-frequency vector from a token stream.
func FromTerms(terms []string) Sparse {
	v := make(Sparse, len(terms))
	for _, t := range terms {
		v[t]++
	}
	return v
}

// Clone returns a deep copy of v.
func (v Sparse) Clone() Sparse {
	out := make(Sparse, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

// Add accumulates u into v in place and returns v.
func (v Sparse) Add(u Sparse) Sparse {
	for k, x := range u {
		v[k] += x
	}
	return v
}

// Scale multiplies every component by a in place and returns v.
func (v Sparse) Scale(a float64) Sparse {
	for k := range v {
		v[k] *= a
	}
	return v
}

// Dot returns the inner product of v and u. The products are summed in
// sorted order so the result is bit-for-bit deterministic despite Go's
// randomised map iteration (floating-point addition is not associative;
// without this, identical inputs could differ in the last ulp between
// runs, breaking reproducibility guarantees downstream).
func (v Sparse) Dot(u Sparse) float64 {
	// Iterate over the smaller vector.
	if len(u) < len(v) {
		v, u = u, v
	}
	prods := make([]float64, 0, len(v))
	for k, x := range v {
		if y, ok := u[k]; ok {
			prods = append(prods, x*y)
		}
	}
	return sumSorted(prods)
}

// Norm returns the Euclidean norm of v, deterministically (see Dot).
func (v Sparse) Norm() float64 {
	norm, _ := v.NormWith(nil)
	return norm
}

// NormWith is Norm computing into caller-provided scratch (grown as
// needed and returned for reuse) — the allocation-free form for pooled
// query paths. The squares are summed in exactly Norm's order, so the
// result is bit-for-bit identical.
func (v Sparse) NormWith(buf []float64) (float64, []float64) {
	if cap(buf) < len(v) {
		buf = make([]float64, 0, len(v))
	} else {
		buf = buf[:0]
	}
	for _, x := range v {
		buf = append(buf, x*x)
	}
	return math.Sqrt(sumSorted(buf)), buf
}

// NormOfSquares returns √(Σ sq) with the summands sorted ascending first —
// the exact accumulation Norm uses — for callers that collected the squared
// weights themselves while making another pass over the vector. Sorts sq in
// place.
func NormOfSquares(sq []float64) float64 {
	return math.Sqrt(sumSorted(sq))
}

// sumSorted sums values in ascending order — a deterministic and
// numerically favourable accumulation order.
func sumSorted(xs []float64) float64 {
	slices.Sort(xs)
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Cosine returns the cosine similarity between v and u in [0,1] for
// non-negative vectors; 0 when either vector is empty or zero.
func Cosine(v, u Sparse) float64 {
	return CosineWithNorms(v, u, v.Norm(), u.Norm())
}

// CosineWithNorms is Cosine with precomputed norms — the hot-path variant
// for callers that compare one vector against many (norm computation would
// otherwise dominate).
func CosineWithNorms(v, u Sparse, nv, nu float64) float64 {
	if nv == 0 || nu == 0 {
		return 0
	}
	return v.Dot(u) / (nv * nu)
}

// Jaccard returns |supp(v) ∩ supp(u)| / |supp(v) ∪ supp(u)| over the term
// supports, ignoring weights; 0 when both are empty.
func Jaccard(v, u Sparse) float64 {
	if len(v) == 0 && len(u) == 0 {
		return 0
	}
	if len(u) < len(v) {
		v, u = u, v
	}
	inter := 0
	for k := range v {
		if _, ok := u[k]; ok {
			inter++
		}
	}
	union := len(v) + len(u) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Centroid returns the arithmetic mean of the given vectors; nil if the
// input is empty.
func Centroid(vs []Sparse) Sparse {
	if len(vs) == 0 {
		return nil
	}
	c := New()
	for _, v := range vs {
		c.Add(v)
	}
	return c.Scale(1 / float64(len(vs)))
}

// TopTerms returns the k highest-weighted terms of v in descending weight
// order, ties broken lexicographically for determinism.
func (v Sparse) TopTerms(k int) []string {
	type tw struct {
		t string
		w float64
	}
	all := make([]tw, 0, len(v))
	for t, w := range v {
		all = append(all, tw{t, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].t < all[j].t
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].t
	}
	return out
}
