package vector

import (
	"fmt"
	"math/rand"
	"testing"
)

func randomVec(rng *rand.Rand, n int) Sparse {
	v := New()
	for i := 0; i < n; i++ {
		v[fmt.Sprintf("t%04d", rng.Intn(2000))] = rng.Float64()
	}
	return v
}

func BenchmarkCosine(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	u := randomVec(rng, 400)
	v := randomVec(rng, 400)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Cosine(u, v)
	}
}

func BenchmarkCentroid(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	vs := make([]Sparse, 40)
	for i := range vs {
		vs[i] = randomVec(rng, 300)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Centroid(vs)
	}
}

func BenchmarkTFIDFWeight(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	df := NewDF()
	for i := 0; i < 500; i++ {
		df.AddDoc(randomVec(rng, 200))
	}
	doc := randomVec(rng, 400)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = df.Weight(doc)
	}
}
