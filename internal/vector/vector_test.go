package vector

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFromTerms(t *testing.T) {
	v := FromTerms([]string{"gene", "gene", "ontology"})
	if v["gene"] != 2 || v["ontology"] != 1 {
		t.Fatalf("v = %v", v)
	}
}

func TestDotAndNorm(t *testing.T) {
	v := Sparse{"a": 1, "b": 2}
	u := Sparse{"b": 3, "c": 4}
	if got := v.Dot(u); got != 6 {
		t.Errorf("Dot = %v", got)
	}
	if got := u.Dot(v); got != 6 {
		t.Errorf("Dot not symmetric: %v", got)
	}
	if got := v.Norm(); !almostEq(got, math.Sqrt(5)) {
		t.Errorf("Norm = %v", got)
	}
}

func TestCosine(t *testing.T) {
	v := Sparse{"a": 1, "b": 1}
	if got := Cosine(v, v); !almostEq(got, 1) {
		t.Errorf("self cosine = %v", got)
	}
	if got := Cosine(v, Sparse{"c": 5}); got != 0 {
		t.Errorf("disjoint cosine = %v", got)
	}
	if got := Cosine(v, nil); got != 0 {
		t.Errorf("nil cosine = %v", got)
	}
	if got := Cosine(Sparse{"a": 1}, Sparse{"a": 1, "b": 1}); !almostEq(got, 1/math.Sqrt2) {
		t.Errorf("45° cosine = %v", got)
	}
}

func TestJaccard(t *testing.T) {
	v := Sparse{"a": 1, "b": 9}
	u := Sparse{"b": 1, "c": 1, "d": 1}
	if got := Jaccard(v, u); !almostEq(got, 0.25) {
		t.Errorf("Jaccard = %v", got)
	}
	if got := Jaccard(nil, nil); got != 0 {
		t.Errorf("empty Jaccard = %v", got)
	}
	if got := Jaccard(v, v); !almostEq(got, 1) {
		t.Errorf("self Jaccard = %v", got)
	}
}

func TestCentroid(t *testing.T) {
	c := Centroid([]Sparse{{"a": 2}, {"a": 4, "b": 2}})
	if !almostEq(c["a"], 3) || !almostEq(c["b"], 1) {
		t.Fatalf("centroid = %v", c)
	}
	if Centroid(nil) != nil {
		t.Error("empty centroid should be nil")
	}
}

func TestAddScaleClone(t *testing.T) {
	v := Sparse{"a": 1}
	w := v.Clone()
	w.Add(Sparse{"a": 1, "b": 2}).Scale(2)
	if v["a"] != 1 {
		t.Error("Clone is not independent")
	}
	if w["a"] != 4 || w["b"] != 4 {
		t.Errorf("w = %v", w)
	}
}

func TestTopTerms(t *testing.T) {
	v := Sparse{"low": 1, "hi": 9, "mid": 5, "tie1": 3, "tie2": 3}
	got := v.TopTerms(4)
	want := []string{"hi", "mid", "tie1", "tie2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopTerms = %v, want %v", got, want)
	}
	if got := v.TopTerms(99); len(got) != 5 {
		t.Errorf("oversized k returned %d terms", len(got))
	}
}

// Properties: cosine is symmetric and within [0,1] for non-negative vectors.
func TestCosineProperties(t *testing.T) {
	mk := func(ks []uint8) Sparse {
		v := New()
		for i, k := range ks {
			v[string(rune('a'+k%8))] += float64(i%5) + 1
		}
		return v
	}
	f := func(a, b []uint8) bool {
		v, u := mk(a), mk(b)
		c1, c2 := Cosine(v, u), Cosine(u, v)
		return almostEq(c1, c2) && c1 >= 0 && c1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDFWeighting(t *testing.T) {
	df := NewDF()
	df.AddDoc(Sparse{"common": 1, "rare": 1})
	df.AddDoc(Sparse{"common": 1})
	df.AddDoc(Sparse{"common": 1})
	if df.Docs() != 3 {
		t.Fatalf("Docs = %d", df.Docs())
	}
	if df.Freq("common") != 3 || df.Freq("rare") != 1 {
		t.Fatalf("df: common=%d rare=%d", df.Freq("common"), df.Freq("rare"))
	}
	if !(df.IDF("rare") > df.IDF("common")) {
		t.Error("rare terms must have higher IDF")
	}
	if !(df.IDF("unseen") >= df.IDF("rare")) {
		t.Error("unseen terms must have maximal IDF")
	}
	w := df.Weight(Sparse{"common": 4, "rare": 1, "zero": 0})
	if _, ok := w["zero"]; ok {
		t.Error("zero tf must be dropped")
	}
	// log damping: tf=4 gives 1+ln4 ≈ 2.386 times idf
	if !almostEq(w["common"], (1+math.Log(4))*df.IDF("common")) {
		t.Errorf("weight(common) = %v", w["common"])
	}
}

func TestWeightDoesNotMutateInput(t *testing.T) {
	df := NewDF()
	tf := Sparse{"a": 2}
	df.AddDoc(tf)
	_ = df.Weight(tf)
	if tf["a"] != 2 {
		t.Fatal("Weight mutated its input")
	}
}
