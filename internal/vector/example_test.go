package vector_test

import (
	"fmt"

	"ctxsearch/internal/vector"
)

func ExampleCosine() {
	a := vector.FromTerms([]string{"rna", "polymerase", "rna"})
	b := vector.FromTerms([]string{"rna", "polymerase"})
	fmt.Printf("%.3f\n", vector.Cosine(a, a))
	fmt.Printf("%.3f\n", vector.Cosine(a, vector.FromTerms([]string{"steel"})))
	_ = b
	// Output:
	// 1.000
	// 0.000
}

func ExampleDF_Weight() {
	df := vector.NewDF()
	df.AddDoc(vector.FromTerms([]string{"rna", "common"}))
	df.AddDoc(vector.FromTerms([]string{"dna", "common"}))
	df.AddDoc(vector.FromTerms([]string{"common"}))
	w := df.Weight(vector.FromTerms([]string{"rna", "common"}))
	// Rare terms outweigh ubiquitous ones.
	fmt.Println(w["rna"] > w["common"])
	// Output: true
}
