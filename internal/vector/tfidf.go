package vector

import "math"

// DF holds corpus document frequencies for TF-IDF weighting. Build one with
// NewDF and feed it every document's term support once.
type DF struct {
	docs int
	df   map[string]int
}

// NewDF returns an empty document-frequency table.
func NewDF() *DF { return &DF{df: make(map[string]int)} }

// AddDoc records one document's term support (each distinct term counted
// once, regardless of its in-document frequency).
func (d *DF) AddDoc(terms Sparse) {
	d.docs++
	for t := range terms {
		d.df[t]++
	}
}

// Merge folds another DF table into d. Because document frequencies are
// integer counts, merging per-shard tables yields exactly the table a
// sequential AddDoc pass over the same documents would, in any merge order —
// the property the sharded corpus analyzer relies on.
func (d *DF) Merge(o *DF) {
	if o == nil {
		return
	}
	d.docs += o.docs
	for t, n := range o.df {
		d.df[t] += n
	}
}

// Docs returns the number of documents recorded.
func (d *DF) Docs() int { return d.docs }

// Freq returns the document frequency of term t.
func (d *DF) Freq(t string) int { return d.df[t] }

// IDF returns the smoothed inverse document frequency
// log(1 + N/df(t)); terms never seen get the maximal IDF log(1+N).
func (d *DF) IDF(t string) float64 {
	df := d.df[t]
	if df == 0 {
		df = 1
	}
	return math.Log(1 + float64(d.docs)/float64(df))
}

// Weight converts a raw term-frequency vector into a TF-IDF vector using
// logarithmic term-frequency damping: w = (1 + ln tf) · idf. The input is
// not modified.
func (d *DF) Weight(tf Sparse) Sparse {
	out := make(Sparse, len(tf))
	for t, f := range tf {
		if f <= 0 {
			continue
		}
		out[t] = (1 + math.Log(f)) * d.IDF(t)
	}
	return out
}

// FromCounts constructs a DF table directly from a document count and
// per-term document frequencies, taking ownership of the map — the state
// deserialization path. Weighting under the reconstructed table is
// bit-identical to the original's (IDF depends only on docs and the
// per-term counts).
func FromCounts(docs int, df map[string]int) *DF {
	if df == nil {
		df = make(map[string]int)
	}
	return &DF{docs: docs, df: df}
}

// Counts returns the document count and a copy of the per-term document
// frequencies — the serialization inverse of FromCounts.
func (d *DF) Counts() (int, map[string]int) {
	out := make(map[string]int, len(d.df))
	for t, n := range d.df {
		out[t] = n
	}
	return d.docs, out
}
