// Package cache implements the serving layer's result cache: a sharded
// in-memory LRU with per-entry TTL, singleflight coalescing of concurrent
// misses, and O(1) whole-cache invalidation through a generation counter.
//
// The design targets the read-mostly query path: lookups take one shard
// mutex for a map read and an LRU list splice (no allocation on a hit),
// concurrent misses for the same key run the loader once and share the
// result, and an engine swap invalidates everything by bumping the
// generation instead of walking the shards — stale entries are simply
// ignored and evicted lazily as they are encountered.
//
// Only the standard library is used; the singleflight here differs from
// the well-known x/sync version in one deliberate way: when the leader's
// load fails, waiters do not share the error (which may be the leader's
// private cancellation) but fall back to loading for themselves.
package cache

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"
)

// numShards keeps unrelated keys off each other's mutex. A small power
// of two: the cache fronts a search engine, not a KV store, so shard
// contention — not shard count — is what matters.
const numShards = 8

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits and Misses count Get/Do lookups by outcome; expired or
	// stale-generation entries count as misses.
	Hits   uint64
	Misses uint64
	// Coalesced counts Do callers that waited on another caller's load
	// instead of running their own.
	Coalesced uint64
	// Entries is the number of live cached values (including any not yet
	// lazily evicted after a generation bump).
	Entries int
}

// Cache is a sharded LRU+TTL cache with singleflight loading. The zero
// value is not usable; construct with New. A nil *Cache is valid and
// caches nothing — every Do runs its loader — so callers can disable
// caching without branching.
type Cache[V any] struct {
	shards [numShards]shard[V]
	seed   maphash.Seed
	ttl    time.Duration
	gen    atomic.Uint64
	hits   atomic.Uint64
	misses atomic.Uint64
	coal   atomic.Uint64
	// now is the clock; tests substitute a fake to drive TTL expiry.
	now func() time.Time
}

type shard[V any] struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently used; values are *entry[V]
	items map[string]*list.Element
	calls map[string]*flight[V]
}

type entry[V any] struct {
	key string
	val V
	gen uint64
	exp time.Time // zero when the cache has no TTL
}

// flight is one in-progress load shared by all concurrent Do callers of
// a key.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New builds a cache holding up to entries values (split across shards,
// at least one per shard) with the given per-entry TTL (0 = no expiry).
// Returns nil — the caching-disabled cache — when entries <= 0.
func New[V any](entries int, ttl time.Duration) *Cache[V] {
	if entries <= 0 {
		return nil
	}
	per := (entries + numShards - 1) / numShards
	c := &Cache[V]{seed: maphash.MakeSeed(), ttl: ttl, now: time.Now}
	for i := range c.shards {
		c.shards[i] = shard[V]{
			cap:   per,
			lru:   list.New(),
			items: make(map[string]*list.Element, per),
			calls: make(map[string]*flight[V]),
		}
	}
	return c
}

func (c *Cache[V]) shardOf(key string) *shard[V] {
	return &c.shards[maphash.String(c.seed, key)%numShards]
}

// liveLocked returns the entry's value if it is current (right
// generation, not expired), removing it otherwise. Callers hold s.mu.
func (c *Cache[V]) liveLocked(s *shard[V], el *list.Element) (V, bool) {
	e := el.Value.(*entry[V])
	if e.gen == c.gen.Load() && (e.exp.IsZero() || c.now().Before(e.exp)) {
		s.lru.MoveToFront(el)
		return e.val, true
	}
	s.lru.Remove(el)
	delete(s.items, e.key)
	var zero V
	return zero, false
}

// Get returns the cached value for key, if current.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		if v, ok := c.liveLocked(s, el); ok {
			c.hits.Add(1)
			return v, true
		}
	}
	c.misses.Add(1)
	return zero, false
}

// putLocked inserts or refreshes a value stamped with gen. Callers hold
// s.mu.
func (c *Cache[V]) putLocked(s *shard[V], key string, v V, gen uint64) {
	var exp time.Time
	if c.ttl > 0 {
		exp = c.now().Add(c.ttl)
	}
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry[V])
		e.val, e.gen, e.exp = v, gen, exp
		s.lru.MoveToFront(el)
		return
	}
	for s.lru.Len() >= s.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.items, oldest.Value.(*entry[V]).key)
	}
	s.items[key] = s.lru.PushFront(&entry[V]{key: key, val: v, gen: gen, exp: exp})
}

// Put caches a value under key at the current generation.
func (c *Cache[V]) Put(key string, v V) {
	if c == nil {
		return
	}
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	c.putLocked(s, key, v, c.gen.Load())
}

// Do returns the cached value for key or loads it with fn, caching a
// successful result. Concurrent calls for the same key run fn once and
// share the value (singleflight); if the shared load fails, each waiter
// falls back to loading for itself so one caller's failure — or private
// context cancellation — never poisons the others. Loads that straddle a
// Bump are returned to their callers but not cached.
func (c *Cache[V]) Do(key string, fn func() (V, error)) (V, error) {
	if c == nil {
		return fn()
	}
	s := c.shardOf(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		if v, ok := c.liveLocked(s, el); ok {
			c.hits.Add(1)
			s.mu.Unlock()
			return v, nil
		}
	}
	c.misses.Add(1)
	if f, ok := s.calls[key]; ok {
		s.mu.Unlock()
		c.coal.Add(1)
		<-f.done
		if f.err == nil {
			return f.val, nil
		}
		return fn()
	}
	f := &flight[V]{done: make(chan struct{})}
	s.calls[key] = f
	gen := c.gen.Load()
	s.mu.Unlock()

	f.val, f.err = fn()
	close(f.done)

	s.mu.Lock()
	delete(s.calls, key)
	if f.err == nil && gen == c.gen.Load() {
		c.putLocked(s, key, f.val, gen)
	}
	s.mu.Unlock()
	return f.val, f.err
}

// Bump invalidates every cached entry in O(1) by advancing the
// generation; superseded entries are evicted lazily on access. In-flight
// loads finish and are handed to their callers but not cached.
func (c *Cache[V]) Bump() {
	if c == nil {
		return
	}
	c.gen.Add(1)
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coal.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.lru.Len()
		s.mu.Unlock()
	}
	return st
}
