package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPutHitMiss(t *testing.T) {
	c := New[int](64, 0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v, want 1,true", v, ok)
	}
	c.Put("a", 2)
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("Put must refresh: got %d, want 2", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss, 1 entry", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// One entry per shard: inserting two keys in one shard must evict
	// the older, and a Get must refresh recency.
	c := New[int](numShards, 0)
	// Find three keys landing in the same shard.
	var keys []string
	want := c.shardOf("k0")
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardOf(k) == want {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 0)
	c.Put(keys[1], 1) // evicts keys[0]
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest entry survived a full shard")
	}
	if v, ok := c.Get(keys[1]); !ok || v != 1 {
		t.Fatal("newest entry evicted")
	}
	c.Put(keys[2], 2) // evicts keys[1]
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU order not maintained")
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New[string](8, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Put("k", "v")
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry must hit")
	}
	now = now.Add(59 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry expired early")
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived its TTL")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("expired entry not evicted: %+v", st)
	}
	// A Do after expiry reloads and re-caches with a fresh deadline.
	if v, err := c.Do("k", func() (string, error) { return "v2", nil }); err != nil || v != "v2" {
		t.Fatalf("Do after expiry = %q,%v", v, err)
	}
	if v, ok := c.Get("k"); !ok || v != "v2" {
		t.Fatal("reload not cached")
	}
}

func TestDoCachesSuccessNotError(t *testing.T) {
	c := New[int](8, 0)
	calls := 0
	boom := errors.New("boom")
	if _, err := c.Do("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("Do must surface the loader error, got %v", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed load must not be cached")
	}
	if v, err := c.Do("k", func() (int, error) { calls++; return 7, nil }); err != nil || v != 7 {
		t.Fatalf("Do = %d,%v", v, err)
	}
	if v, err := c.Do("k", func() (int, error) { calls++; return -1, nil }); err != nil || v != 7 {
		t.Fatalf("cached Do = %d,%v, want 7,nil", v, err)
	}
	if calls != 2 {
		t.Fatalf("loader ran %d times, want 2", calls)
	}
}

// TestDoSingleflight hammers one cold key from many goroutines: exactly
// one loader must run, everyone must get its value, and the coalesced
// counter must account for every waiter (run under -race by make race).
func TestDoSingleflight(t *testing.T) {
	c := New[int](8, 0)
	var loads atomic.Int32
	gate := make(chan struct{})
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("k", func() (int, error) {
				loads.Add(1)
				<-gate // hold the flight open until all callers joined
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d,%v, want 42,nil", v, err)
			}
		}()
	}
	// Let the leader start, give waiters time to pile onto the flight,
	// then release. Timing here only affects how many coalesce, never
	// correctness.
	for c.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Coalesced == 0 || st.Coalesced > workers-1 {
		t.Fatalf("coalesced = %d, want in [1, %d]", st.Coalesced, workers-1)
	}
}

// TestDoLeaderErrorFallback pins the divergence from x/sync singleflight:
// waiters on a failed flight run their own load instead of inheriting the
// leader's error.
func TestDoLeaderErrorFallback(t *testing.T) {
	c := New[int](8, 0)
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, leaderErr = c.Do("k", func() (int, error) {
			close(leaderIn)
			<-gate
			return 0, errors.New("leader failed")
		})
	}()
	<-leaderIn
	wg.Add(1)
	var waiterV int
	var waiterErr error
	go func() {
		defer wg.Done()
		waiterV, waiterErr = c.Do("k", func() (int, error) { return 99, nil })
	}()
	for c.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if leaderErr == nil {
		t.Fatal("leader must see its own error")
	}
	if waiterErr != nil || waiterV != 99 {
		t.Fatalf("waiter = %d,%v, want its own 99,nil", waiterV, waiterErr)
	}
}

func TestBumpInvalidates(t *testing.T) {
	c := New[int](8, 0)
	c.Put("k", 1)
	c.Bump()
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived Bump")
	}
	// A load that straddles a Bump is returned but not cached.
	v, err := c.Do("x", func() (int, error) {
		c.Bump()
		return 5, nil
	})
	if err != nil || v != 5 {
		t.Fatalf("straddling Do = %d,%v", v, err)
	}
	if _, ok := c.Get("x"); ok {
		t.Fatal("stale-generation load was cached")
	}
	// The cache keeps working at the new generation.
	c.Put("y", 9)
	if v, ok := c.Get("y"); !ok || v != 9 {
		t.Fatal("cache dead after Bump")
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache[int]
	if c := New[int](0, 0); c != nil {
		t.Fatal("entries <= 0 must build the disabled cache")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache must miss")
	}
	c.Put("k", 1)
	c.Bump()
	calls := 0
	for i := 0; i < 2; i++ {
		if v, err := c.Do("k", func() (int, error) { calls++; return 3, nil }); err != nil || v != 3 {
			t.Fatalf("nil Do = %d,%v", v, err)
		}
	}
	if calls != 2 {
		t.Fatalf("nil cache must run every loader: %d calls", calls)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

// BenchmarkCacheHit measures the steady-state hit path; the near-zero
// allocation count here is what keeps cached queries allocation-free at
// the server layer.
func BenchmarkCacheHit(b *testing.B) {
	c := New[[]byte](1024, time.Minute)
	c.Put("q", []byte("result"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("q"); !ok {
			b.Fatal("miss")
		}
	}
}
