package eval

import (
	"sort"

	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
	"ctxsearch/internal/vector"
)

// ACConfig configures AC(artificially constructed)-answer-set construction
// (§2): a high-threshold keyword seed, text-based expansion toward the seed
// centroid, and citation-based expansion along paths of length ≤ 2.
type ACConfig struct {
	// SeedThreshold is the cosine threshold of the initial keyword search.
	SeedThreshold float64
	// SeedLimit caps the initial set.
	SeedLimit int
	// TextThreshold admits papers whose similarity to the seed centroid
	// reaches it.
	TextThreshold float64
	// CitationDepth caps citation-path length (the paper uses 2: longer
	// paths lose context).
	CitationDepth int
	// CitationScoreQuantile keeps only citation-expansion candidates whose
	// global PageRank is in the top (1−q) quantile, the paper's "high
	// citation scores" filter.
	CitationScoreQuantile float64
}

// DefaultACConfig returns the experiments' configuration.
func DefaultACConfig() ACConfig {
	return ACConfig{
		SeedThreshold:         0.30,
		SeedLimit:             40,
		TextThreshold:         0.22,
		CitationDepth:         2,
		CitationScoreQuantile: 0.5,
	}
}

// ACBuilder constructs AC-answer sets. It precomputes the corpus-wide
// PageRank once (the citation-expansion filter).
type ACBuilder struct {
	ix       *index.Index
	graph    *citegraph.Graph
	pagerank []float64
	prCutoff float64
	cfg      ACConfig
}

// NewACBuilder prepares a builder over an index.
func NewACBuilder(ix *index.Index, graph *citegraph.Graph, cfg ACConfig) *ACBuilder {
	pr := citegraph.PageRank(graph, citegraph.PageRankOpts{})
	sorted := append([]float64(nil), pr...)
	sort.Float64s(sorted)
	cutoff := 0.0
	if len(sorted) > 0 {
		q := cfg.CitationScoreQuantile
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		idx := int(q * float64(len(sorted)-1))
		cutoff = sorted[idx]
	}
	return &ACBuilder{ix: ix, graph: graph, pagerank: pr, prCutoff: cutoff, cfg: cfg}
}

// Build constructs the AC-answer set of a query.
func (b *ACBuilder) Build(query string) map[corpus.PaperID]bool {
	seedHits := b.ix.Search(query, index.Options{Threshold: b.cfg.SeedThreshold, Limit: b.cfg.SeedLimit})
	answer := make(map[corpus.PaperID]bool, len(seedHits)*3)
	if len(seedHits) == 0 {
		return answer
	}
	seed := make([]corpus.PaperID, len(seedHits))
	for i, h := range seedHits {
		seed[i] = h.Doc
		answer[h.Doc] = true
	}

	// Text-based expansion: centroid of the seed's TF-IDF vectors.
	a := b.ix.Analyzer()
	vecs := make([]vector.Sparse, len(seed))
	for i, id := range seed {
		vecs[i] = a.TFIDFAll(id)
	}
	centroid := vector.Centroid(vecs)
	for _, h := range b.ix.SearchVector(centroid, index.Options{Threshold: b.cfg.TextThreshold}) {
		answer[h.Doc] = true
	}

	// Citation-based expansion: papers within citation-path distance ≤
	// CitationDepth of the seed (following both directions), filtered to
	// high global PageRank.
	frontier := seed
	visited := make(map[corpus.PaperID]bool, len(seed))
	for _, id := range seed {
		visited[id] = true
	}
	for depth := 0; depth < b.cfg.CitationDepth; depth++ {
		var next []corpus.PaperID
		for _, id := range frontier {
			for _, nb := range b.graph.Out(int(id)) {
				if !visited[corpus.PaperID(nb)] {
					visited[corpus.PaperID(nb)] = true
					next = append(next, corpus.PaperID(nb))
				}
			}
			for _, nb := range b.graph.In(int(id)) {
				if !visited[corpus.PaperID(nb)] {
					visited[corpus.PaperID(nb)] = true
					next = append(next, corpus.PaperID(nb))
				}
			}
		}
		for _, id := range next {
			if b.pagerank[id] >= b.prCutoff {
				answer[id] = true
			}
		}
		frontier = next
	}
	return answer
}
