package eval

import (
	"sort"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
	"ctxsearch/internal/search"
	"ctxsearch/internal/stats"
)

// Precision returns |S ∩ R| / |S| for a result set S and answer set R; 0
// for an empty result set (the paper's convention: queries returning
// nothing at high thresholds contribute precision 0 to averages).
func Precision(results []corpus.PaperID, answer map[corpus.PaperID]bool) float64 {
	if len(results) == 0 {
		return 0
	}
	hit := 0
	for _, id := range results {
		if answer[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(results))
}

// PrecisionPoint is one point of a precision-vs-threshold curve.
type PrecisionPoint struct {
	Threshold float64
	// Avg and Median aggregate per-query precision; Empty counts queries
	// returning no results at this threshold (they average in as 0, the
	// effect the paper discusses at high t).
	Avg, Median float64
	Empty       int
}

// PrecisionCurve sweeps relevancy thresholds over the engine's results for
// every query, scoring against per-query answer sets. answers[i] is the
// answer set of queries[i].
func PrecisionCurve(e *search.Engine, queries []Query, answers []map[corpus.PaperID]bool, thresholds []float64) []PrecisionPoint {
	out := make([]PrecisionPoint, 0, len(thresholds))
	// Run each query once at threshold 0 and filter locally per threshold —
	// identical results, one search per query.
	type qr struct {
		results []search.Result
		answer  map[corpus.PaperID]bool
	}
	runs := make([]qr, len(queries))
	for i, q := range queries {
		runs[i] = qr{e.Search(q.Text, search.Options{}), answers[i]}
	}
	for _, t := range thresholds {
		var precs []float64
		empty := 0
		for _, r := range runs {
			var ids []corpus.PaperID
			for _, res := range r.results {
				if res.Relevancy >= t {
					ids = append(ids, res.Doc)
				}
			}
			if len(ids) == 0 {
				empty++
			}
			precs = append(precs, Precision(ids, r.answer))
		}
		out = append(out, PrecisionPoint{
			Threshold: t,
			Avg:       stats.Mean(precs),
			Median:    stats.Median(precs),
			Empty:     empty,
		})
	}
	return out
}

// TopKOverlapRatio implements §2: the overlap of the two functions' top-k
// paper sets in one context, with ties at the k-th score included and the
// denominator switching to min(|PS1|, |PS2|) when tie inclusion grew a set.
func TopKOverlapRatio(s1, s2 prestige.Scores, ctx ontology.TermID, k int) float64 {
	if k <= 0 {
		return 0
	}
	t1 := s1.TopK(ctx, k)
	t2 := s2.TopK(ctx, k)
	if len(t1) == 0 || len(t2) == 0 {
		return 0
	}
	set1 := make(map[corpus.PaperID]bool, len(t1))
	for _, id := range t1 {
		set1[id] = true
	}
	inter := 0
	for _, id := range t2 {
		if set1[id] {
			inter++
		}
	}
	den := k
	if len(t1) > k || len(t2) > k {
		den = len(t1)
		if len(t2) < den {
			den = len(t2)
		}
	}
	if den == 0 {
		return 0
	}
	return float64(inter) / float64(den)
}

// OverlapByLevel averages the top-k% overlapping ratio of two score
// functions over the contexts at each requested level. kPercents are
// fractions (0.05 = top 5%); the absolute k per context is
// max(1, ⌈k%·context size⌉) — the paper uses percentages because low-level
// contexts are much smaller than high-level ones.
func OverlapByLevel(onto *ontology.Ontology, s1, s2 prestige.Scores, sizes map[ontology.TermID]int, levels []int, kPercents []float64) map[int][]float64 {
	byLevel := make(map[int][]ontology.TermID)
	for ctx := range s1 {
		if _, ok := s2[ctx]; !ok {
			continue
		}
		l := onto.Level(ctx)
		byLevel[l] = append(byLevel[l], ctx)
	}
	out := make(map[int][]float64, len(levels))
	for _, level := range levels {
		ctxs := byLevel[level]
		sort.Slice(ctxs, func(i, j int) bool { return ctxs[i] < ctxs[j] })
		row := make([]float64, len(kPercents))
		if len(ctxs) == 0 {
			out[level] = row
			continue
		}
		for ki, kp := range kPercents {
			var sum float64
			for _, ctx := range ctxs {
				n := sizes[ctx]
				k := int(kp*float64(n) + 0.9999)
				if k < 1 {
					k = 1
				}
				sum += TopKOverlapRatio(s1, s2, ctx, k)
			}
			row[ki] = sum / float64(len(ctxs))
		}
		out[level] = row
	}
	return out
}

// SeparabilityConfig configures the §5.2 separability histograms.
type SeparabilityConfig struct {
	// ScoreBins is the number of equal score ranges per context (paper: 10).
	ScoreBins int
	// SDBinWidth and SDMax define the histogram over per-context standard
	// deviations (paper: 0–40 in steps of 5).
	SDBinWidth, SDMax float64
}

// DefaultSeparabilityConfig returns the paper's binning.
func DefaultSeparabilityConfig() SeparabilityConfig {
	return SeparabilityConfig{ScoreBins: 10, SDBinWidth: 5, SDMax: 40}
}

// SeparabilitySDs computes the per-context separability standard deviation
// of a score function over the given contexts.
func SeparabilitySDs(s prestige.Scores, ctxs []ontology.TermID, cfg SeparabilityConfig) []float64 {
	out := make([]float64, 0, len(ctxs))
	for _, ctx := range ctxs {
		vals := s.Values(ctx)
		if len(vals) == 0 {
			continue
		}
		out = append(out, stats.SeparabilitySD(vals, cfg.ScoreBins))
	}
	return out
}

// SeparabilityHistogram converts per-context SDs into the paper's Figure
// 5.4–5.7 series: the percentage of contexts whose SD falls into each
// SDBinWidth-wide bin of [0, SDMax].
func SeparabilityHistogram(sds []float64, cfg SeparabilityConfig) []float64 {
	n := int(cfg.SDMax / cfg.SDBinWidth)
	if n <= 0 {
		return nil
	}
	counts := stats.Histogram(sds, n, 0, cfg.SDMax)
	return stats.Percentages(counts)
}

// ContextsAtLevel filters scored contexts to one hierarchy level.
func ContextsAtLevel(onto *ontology.Ontology, s prestige.Scores, level int) []ontology.TermID {
	var out []ontology.TermID
	for _, ctx := range s.Contexts() {
		if onto.Level(ctx) == level {
			out = append(out, ctx)
		}
	}
	return out
}
