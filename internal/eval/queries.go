// Package eval implements the paper's evaluation machinery: the ~120
// external search terms (synthesised here as alias phrases of ontology term
// names, playing the role of TIGR role names manually mapped to GO terms),
// the AC(artificially constructed)-answer sets of §2, and the three metrics
// — precision vs relevancy threshold, top-k% overlapping ratio per context
// level, and separability standard deviations.
package eval

import (
	"math/rand"
	"sort"
	"strings"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// Query is one evaluation search term with its ground-truth target.
type Query struct {
	// Text is the query as a user would type it — a non-GO phrasing of the
	// target concept.
	Text string
	// Target is the ontology term the phrase was generated from (the
	// synthetic counterpart of the manual TIGR→GO mapping).
	Target ontology.TermID
}

// synonyms maps term-name vocabulary to external phrasings, mirroring how
// TIGR role names paraphrase GO concepts. Replacements keep part of the
// original vocabulary so automatic context selection stays plausible.
var synonyms = map[string][]string{
	"regulation":    {"control", "modulation"},
	"activity":      {"function", "action"},
	"binding":       {"interaction", "attachment"},
	"transport":     {"trafficking", "movement"},
	"biosynthesis":  {"synthesis", "production"},
	"catabolism":    {"breakdown", "degradation"},
	"assembly":      {"formation", "construction"},
	"repair":        {"restoration", "correction"},
	"replication":   {"duplication", "copying"},
	"transcription": {"rna synthesis", "gene expression"},
	"translation":   {"protein synthesis"},
	"folding":       {"conformation"},
	"localization":  {"targeting", "positioning"},
	"secretion":     {"export", "release"},
	"signaling":     {"signal transduction"},
	"elongation":    {"extension"},
	"initiation":    {"start", "onset"},
	"splicing":      {"processing"},
	"degradation":   {"turnover", "decay"},
	"maturation":    {"processing"},
	"remodeling":    {"reorganization"},
	"positive":      {"enhanced", "stimulatory"},
	"negative":      {"reduced", "inhibitory"},
	"nuclear":       {"nucleus"},
	"cytoplasmic":   {"cytosolic"},
	"mitochondrial": {"mitochondria"},
	"general":       {"basal", "broad"},
	"specific":      {"selective"},
	"membrane":      {"lipid bilayer"},
	"protein":       {"polypeptide"},
	"early":         {"initial"},
	"late":          {"terminal"},
}

// QueryGenConfig configures alias-query generation.
type QueryGenConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// NumQueries is how many queries to generate (the paper used ~120).
	NumQueries int
	// MinLevel restricts target terms to at least this level so queries
	// are not trivially general (default 3).
	MinLevel int
	// ReplaceProb is the per-word probability of synonym substitution.
	ReplaceProb float64
	// RequireEvidence restricts targets to terms with annotation evidence
	// papers, so every query has a non-degenerate answer.
	RequireEvidence bool
}

// DefaultQueryGenConfig returns the experiments' configuration.
func DefaultQueryGenConfig() QueryGenConfig {
	return QueryGenConfig{Seed: 99, NumQueries: 120, MinLevel: 3, ReplaceProb: 0.4, RequireEvidence: true}
}

// GenerateQueries produces alias-phrase queries over the ontology's terms.
// Each query's text paraphrases its target's name: some words replaced with
// external synonyms, occasional modifier dropped. Deterministic in cfg.Seed.
func GenerateQueries(onto *ontology.Ontology, c *corpus.Corpus, cfg QueryGenConfig) []Query {
	if cfg.NumQueries <= 0 {
		return nil
	}
	if cfg.MinLevel <= 0 {
		cfg.MinLevel = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var candidates []ontology.TermID
	for _, id := range onto.TermIDs() {
		if onto.Level(id) < cfg.MinLevel {
			continue
		}
		if cfg.RequireEvidence && len(c.EvidencePapers(id)) == 0 {
			continue
		}
		candidates = append(candidates, id)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	if len(candidates) == 0 {
		return nil
	}
	var out []Query
	seen := map[string]bool{}
	for attempts := 0; len(out) < cfg.NumQueries && attempts < cfg.NumQueries*10; attempts++ {
		target := candidates[rng.Intn(len(candidates))]
		text := aliasPhrase(rng, onto.Term(target).Name, cfg.ReplaceProb)
		key := string(target) + "|" + text
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Query{Text: text, Target: target})
	}
	return out
}

// aliasPhrase paraphrases a term name: words are replaced with synonyms
// with probability replaceProb, and with small probability a leading
// modifier is dropped.
func aliasPhrase(rng *rand.Rand, name string, replaceProb float64) string {
	words := strings.Fields(strings.ToLower(name))
	if len(words) > 2 && rng.Float64() < 0.25 {
		words = words[1:] // drop a leading modifier
	}
	out := make([]string, 0, len(words))
	for _, w := range words {
		if alts, ok := synonyms[w]; ok && rng.Float64() < replaceProb {
			out = append(out, alts[rng.Intn(len(alts))])
			continue
		}
		out = append(out, w)
	}
	return strings.Join(out, " ")
}

// TrueAnswerSet returns the ground-truth relevant papers of a query: papers
// whose generating topics include the target term or any of its
// descendants. Real corpora lack these labels; the synthetic corpus provides
// them, and the harness uses them to validate the AC-answer construction.
func TrueAnswerSet(onto *ontology.Ontology, c *corpus.Corpus, target ontology.TermID) map[corpus.PaperID]bool {
	relevant := map[ontology.TermID]bool{target: true}
	for _, d := range onto.Descendants(target) {
		relevant[d] = true
	}
	out := make(map[corpus.PaperID]bool)
	for _, p := range c.Papers() {
		for _, tp := range p.Topics {
			if relevant[tp] {
				out[p.ID] = true
				break
			}
		}
	}
	return out
}
