package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/search"
)

func TestPrecisionRecallAtK(t *testing.T) {
	answer := map[corpus.PaperID]bool{1: true, 2: true, 3: true, 4: true}
	results := []corpus.PaperID{1, 9, 2, 8}
	prf := PrecisionRecallAtK(results, answer, 0)
	if prf.Precision != 0.5 || prf.Recall != 0.5 {
		t.Fatalf("prf = %+v", prf)
	}
	if math.Abs(prf.F1-0.5) > 1e-12 {
		t.Fatalf("F1 = %v", prf.F1)
	}
	// @2: one hit of two retrieved; recall 1/4.
	prf = PrecisionRecallAtK(results, answer, 2)
	if prf.Precision != 0.5 || prf.Recall != 0.25 {
		t.Fatalf("prf@2 = %+v", prf)
	}
	// Degenerate inputs.
	if prf := PrecisionRecallAtK(nil, answer, 5); prf.Precision != 0 || prf.F1 != 0 {
		t.Fatalf("empty results prf = %+v", prf)
	}
	if prf := PrecisionRecallAtK(results, nil, 5); prf.Recall != 0 {
		t.Fatalf("empty answers prf = %+v", prf)
	}
}

func TestAveragePrecision(t *testing.T) {
	answer := map[corpus.PaperID]bool{1: true, 2: true}
	// Hits at ranks 1 and 3: AP = (1/1 + 2/3)/2 = 5/6.
	got := AveragePrecision([]corpus.PaperID{1, 9, 2}, answer)
	if math.Abs(got-5.0/6) > 1e-12 {
		t.Fatalf("AP = %v", got)
	}
	// Perfect ranking: AP = 1.
	if got := AveragePrecision([]corpus.PaperID{1, 2}, answer); got != 1 {
		t.Fatalf("perfect AP = %v", got)
	}
	if got := AveragePrecision(nil, answer); got != 0 {
		t.Fatalf("empty AP = %v", got)
	}
	if got := AveragePrecision([]corpus.PaperID{1}, nil); got != 0 {
		t.Fatalf("no answers AP = %v", got)
	}
}

func TestMeanAveragePrecision(t *testing.T) {
	answers := []map[corpus.PaperID]bool{{1: true}, {2: true}}
	lists := [][]corpus.PaperID{{1}, {9, 2}}
	// AP1 = 1, AP2 = 1/2 → MAP = 0.75.
	if got := MeanAveragePrecision(lists, answers); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("MAP = %v", got)
	}
	if got := MeanAveragePrecision(nil, nil); got != 0 {
		t.Fatalf("empty MAP = %v", got)
	}
	if got := MeanAveragePrecision(lists, answers[:1]); got != 0 {
		t.Fatalf("mismatched MAP = %v", got)
	}
}

func TestWriteTRECRun(t *testing.T) {
	results := []search.Result{
		{Doc: 42, Relevancy: 0.9},
		{Doc: 7, Relevancy: 0.5},
	}
	var buf bytes.Buffer
	if err := WriteTRECRun(&buf, "q01", results, "ctxsearch"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "q01 Q0 42 1 0.900000 ctxsearch" {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "q01 Q0 7 2 ") {
		t.Fatalf("line 1 = %q", lines[1])
	}
}

func TestWriteTRECQrels(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTRECQrels(&buf, "q01", map[corpus.PaperID]bool{5: true, 2: true}); err != nil {
		t.Fatal(err)
	}
	want := "q01 0 2 1\nq01 0 5 1\n"
	if buf.String() != want {
		t.Fatalf("qrels = %q, want %q", buf.String(), want)
	}
}

func TestNDCGAtK(t *testing.T) {
	answer := map[corpus.PaperID]bool{1: true, 2: true}
	// Perfect ranking: NDCG = 1.
	if got := NDCGAtK([]corpus.PaperID{1, 2, 9}, answer, 3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %v", got)
	}
	// Relevant at ranks 2,3 instead of 1,2.
	got := NDCGAtK([]corpus.PaperID{9, 1, 2}, answer, 3)
	want := (1/math.Log2(3) + 1/math.Log2(4)) / (1/math.Log2(2) + 1/math.Log2(3))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("NDCG = %v, want %v", got, want)
	}
	if got := NDCGAtK(nil, answer, 5); got != 0 {
		t.Fatalf("empty NDCG = %v", got)
	}
	if got := NDCGAtK([]corpus.PaperID{1}, nil, 5); got != 0 {
		t.Fatalf("no-answer NDCG = %v", got)
	}
	if got := NDCGAtK([]corpus.PaperID{1}, answer, 0); got != 0 {
		t.Fatalf("k=0 NDCG = %v", got)
	}
	// NDCG never exceeds 1.
	if got := NDCGAtK([]corpus.PaperID{1, 2}, answer, 10); got > 1+1e-12 {
		t.Fatalf("NDCG > 1: %v", got)
	}
}
