package eval

import (
	"fmt"
	"io"
	"math"
	"sort"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/search"
)

// PRF bundles precision, recall and F1 of one result list against one
// answer set.
type PRF struct {
	Precision, Recall, F1 float64
	// Retrieved and Relevant are the list sizes the metrics came from.
	Retrieved, Relevant int
}

// PrecisionRecallAtK scores the first k results (all when k ≤ 0) against
// the answer set. The paper evaluates with precision only (§2 argues high
// recall matters less than high-ranking precision for large libraries);
// recall and F1 are provided for completeness.
func PrecisionRecallAtK(results []corpus.PaperID, answer map[corpus.PaperID]bool, k int) PRF {
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	out := PRF{Retrieved: len(results), Relevant: len(answer)}
	if len(results) == 0 || len(answer) == 0 {
		return out
	}
	hit := 0
	for _, id := range results {
		if answer[id] {
			hit++
		}
	}
	out.Precision = float64(hit) / float64(len(results))
	out.Recall = float64(hit) / float64(len(answer))
	if out.Precision+out.Recall > 0 {
		out.F1 = 2 * out.Precision * out.Recall / (out.Precision + out.Recall)
	}
	return out
}

// AveragePrecision computes AP: the mean of precision@i over the ranks i
// holding relevant documents, normalised by the number of relevant
// documents. MAP over queries is the standard literature-retrieval summary.
func AveragePrecision(results []corpus.PaperID, answer map[corpus.PaperID]bool) float64 {
	if len(answer) == 0 {
		return 0
	}
	hit := 0
	var sum float64
	for i, id := range results {
		if answer[id] {
			hit++
			sum += float64(hit) / float64(i+1)
		}
	}
	return sum / float64(len(answer))
}

// MeanAveragePrecision averages AP over queries; resultLists[i] answers
// queries[i].
func MeanAveragePrecision(resultLists [][]corpus.PaperID, answers []map[corpus.PaperID]bool) float64 {
	if len(resultLists) == 0 || len(resultLists) != len(answers) {
		return 0
	}
	var sum float64
	for i := range resultLists {
		sum += AveragePrecision(resultLists[i], answers[i])
	}
	return sum / float64(len(resultLists))
}

// WriteTRECRun writes results in the classic TREC run format
// (qid Q0 docno rank score runtag), so external IR evaluation tooling
// (trec_eval) can score this system directly.
func WriteTRECRun(w io.Writer, queryID string, results []search.Result, runTag string) error {
	for rank, r := range results {
		if _, err := fmt.Fprintf(w, "%s Q0 %d %d %.6f %s\n", queryID, r.Doc, rank+1, r.Relevancy, runTag); err != nil {
			return err
		}
	}
	return nil
}

// WriteTRECQrels writes relevance judgments in TREC qrels format
// (qid 0 docno rel), the companion input for trec_eval.
func WriteTRECQrels(w io.Writer, queryID string, answer map[corpus.PaperID]bool) error {
	ids := make([]corpus.PaperID, 0, len(answer))
	for id := range answer {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if _, err := fmt.Fprintf(w, "%s 0 %d 1\n", queryID, id); err != nil {
			return err
		}
	}
	return nil
}

// NDCGAtK computes the normalised discounted cumulative gain of the first
// k results under binary relevance: DCG = Σ rel_i/log2(i+1), normalised by
// the ideal DCG of min(k, |answer|) relevant documents up front.
func NDCGAtK(results []corpus.PaperID, answer map[corpus.PaperID]bool, k int) float64 {
	if k <= 0 || len(answer) == 0 {
		return 0
	}
	if len(results) > k {
		results = results[:k]
	}
	var dcg float64
	for i, id := range results {
		if answer[id] {
			dcg += 1 / log2(float64(i+2))
		}
	}
	ideal := len(answer)
	if ideal > k {
		ideal = k
	}
	var idcg float64
	for i := 0; i < ideal; i++ {
		idcg += 1 / log2(float64(i+2))
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

func log2(x float64) float64 { return math.Log2(x) }
