package eval

import (
	"strings"
	"testing"

	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/prestige"
	"ctxsearch/internal/search"
)

type fixture struct {
	onto   *ontology.Ontology
	c      *corpus.Corpus
	a      *corpus.Analyzer
	ix     *index.Index
	cs     *contextset.ContextSet
	scores prestige.Scores
	engine *search.Engine
}

var cached *fixture

func buildFixture(t *testing.T) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	o, err := ontology.Generate(ontology.GenConfig{Seed: 8, NumTerms: 60, MaxDepth: 7, SecondParentProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(250))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	ix := index.Build(a)
	cs := contextset.BuildTextBased(a, o, contextset.DefaultConfig())
	scores := prestige.ScoreAll(prestige.NewTextScorer(a, prestige.DefaultTextWeights()), cs, 0)
	cached = &fixture{
		onto: o, c: c, a: a, ix: ix, cs: cs, scores: scores,
		engine: search.NewEngine(ix, cs, scores, search.DefaultWeights()),
	}
	return cached
}

func TestGenerateQueries(t *testing.T) {
	f := buildFixture(t)
	qs := GenerateQueries(f.onto, f.c, DefaultQueryGenConfig())
	if len(qs) == 0 {
		t.Fatal("no queries generated")
	}
	for _, q := range qs {
		if q.Text == "" {
			t.Fatal("empty query text")
		}
		tm := f.onto.Term(q.Target)
		if tm == nil {
			t.Fatalf("query target %s unknown", q.Target)
		}
		if f.onto.Level(q.Target) < 3 {
			t.Fatalf("target %s too shallow", q.Target)
		}
		if len(f.c.EvidencePapers(q.Target)) == 0 {
			t.Fatalf("target %s has no evidence", q.Target)
		}
	}
	// Determinism.
	qs2 := GenerateQueries(f.onto, f.c, DefaultQueryGenConfig())
	if len(qs) != len(qs2) || qs[0] != qs2[0] {
		t.Fatal("query generation not deterministic")
	}
	// At least some queries must differ textually from their term name
	// (paraphrasing happened).
	diff := 0
	for _, q := range qs {
		if !strings.EqualFold(q.Text, f.onto.Term(q.Target).Name) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("no query was paraphrased")
	}
}

func TestGenerateQueriesEdgeCases(t *testing.T) {
	f := buildFixture(t)
	if qs := GenerateQueries(f.onto, f.c, QueryGenConfig{NumQueries: 0}); qs != nil {
		t.Fatal("zero queries must return nil")
	}
	// MinLevel beyond the hierarchy: no candidates.
	cfg := DefaultQueryGenConfig()
	cfg.MinLevel = 99
	if qs := GenerateQueries(f.onto, f.c, cfg); qs != nil {
		t.Fatal("impossible MinLevel must return nil")
	}
}

func TestTrueAnswerSet(t *testing.T) {
	f := buildFixture(t)
	qs := GenerateQueries(f.onto, f.c, DefaultQueryGenConfig())
	target := qs[0].Target
	ans := TrueAnswerSet(f.onto, f.c, target)
	if len(ans) == 0 {
		t.Fatal("empty true answer set for an evidence-backed term")
	}
	// Every evidence paper of the target is in the answer set.
	for _, e := range f.c.EvidencePapers(target) {
		if !ans[e] {
			t.Fatalf("evidence paper %d missing from true answers", e)
		}
	}
	// Papers in the set must actually carry the target or a descendant.
	desc := map[ontology.TermID]bool{target: true}
	for _, d := range f.onto.Descendants(target) {
		desc[d] = true
	}
	for id := range ans {
		ok := false
		for _, tp := range f.c.Paper(id).Topics {
			if desc[tp] {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("paper %d in answer set without matching topic", id)
		}
	}
}

func TestACBuilder(t *testing.T) {
	f := buildFixture(t)
	b := NewACBuilder(f.ix, prestige.GraphFromCorpus(f.c), DefaultACConfig())
	qs := GenerateQueries(f.onto, f.c, DefaultQueryGenConfig())
	nonEmpty := 0
	betterThanRandom := 0
	checked := 0
	for _, q := range qs[:20] {
		ac := b.Build(q.Text)
		if len(ac) == 0 {
			continue
		}
		nonEmpty++
		// The AC set should be enriched in true answers versus the corpus
		// base rate — that's what makes it usable as a pseudo-answer set.
		truth := TrueAnswerSet(f.onto, f.c, q.Target)
		if len(truth) == 0 {
			continue
		}
		checked++
		inAC := 0
		for id := range ac {
			if truth[id] {
				inAC++
			}
		}
		acRate := float64(inAC) / float64(len(ac))
		baseRate := float64(len(truth)) / float64(f.c.Len())
		if acRate > baseRate {
			betterThanRandom++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("all AC sets empty")
	}
	if checked > 0 && betterThanRandom*2 < checked {
		t.Fatalf("AC sets enriched only %d/%d times", betterThanRandom, checked)
	}
}

func TestACBuilderUnmatchableQuery(t *testing.T) {
	f := buildFixture(t)
	b := NewACBuilder(f.ix, prestige.GraphFromCorpus(f.c), DefaultACConfig())
	if ac := b.Build("zzz qqq totally alien words"); len(ac) != 0 {
		t.Fatalf("alien query produced AC set of %d", len(ac))
	}
}

func TestPrecision(t *testing.T) {
	ans := map[corpus.PaperID]bool{1: true, 2: true}
	if got := Precision([]corpus.PaperID{1, 2, 3, 4}, ans); got != 0.5 {
		t.Fatalf("precision = %v", got)
	}
	if got := Precision(nil, ans); got != 0 {
		t.Fatalf("empty precision = %v", got)
	}
	if got := Precision([]corpus.PaperID{1}, ans); got != 1 {
		t.Fatalf("perfect precision = %v", got)
	}
}

func TestPrecisionCurve(t *testing.T) {
	f := buildFixture(t)
	qs := GenerateQueries(f.onto, f.c, QueryGenConfig{Seed: 1, NumQueries: 10, MinLevel: 3, ReplaceProb: 0.3, RequireEvidence: true})
	answers := make([]map[corpus.PaperID]bool, len(qs))
	for i, q := range qs {
		answers[i] = TrueAnswerSet(f.onto, f.c, q.Target)
	}
	thresholds := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	curve := PrecisionCurve(f.engine, qs, answers, thresholds)
	if len(curve) != len(thresholds) {
		t.Fatalf("curve has %d points", len(curve))
	}
	for i, pt := range curve {
		if pt.Avg < 0 || pt.Avg > 1 || pt.Median < 0 || pt.Median > 1 {
			t.Fatalf("precision out of range: %+v", pt)
		}
		if pt.Threshold != thresholds[i] {
			t.Fatalf("threshold mismatch: %+v", pt)
		}
		// Empty counts grow (weakly) with threshold.
		if i > 0 && pt.Empty < curve[i-1].Empty {
			t.Fatalf("empty counts not monotone: %+v after %+v", pt, curve[i-1])
		}
	}
}

func TestTopKOverlapRatio(t *testing.T) {
	s1 := prestige.Scores{"GO:1": {0: 1.0, 1: 0.8, 2: 0.6, 3: 0.2}}
	s2 := prestige.Scores{"GO:1": {0: 0.9, 1: 0.1, 2: 0.95, 3: 0.5}}
	// top-2 of s1 = {0,1}; top-2 of s2 = {2,0} → overlap 1/2.
	if got := TopKOverlapRatio(s1, s2, "GO:1", 2); got != 0.5 {
		t.Fatalf("overlap = %v", got)
	}
	// Identical functions overlap fully.
	if got := TopKOverlapRatio(s1, s1, "GO:1", 2); got != 1 {
		t.Fatalf("self overlap = %v", got)
	}
	if got := TopKOverlapRatio(s1, s2, "GO:404", 2); got != 0 {
		t.Fatalf("unknown ctx overlap = %v", got)
	}
	if got := TopKOverlapRatio(s1, s2, "GO:1", 0); got != 0 {
		t.Fatalf("k=0 overlap = %v", got)
	}
}

func TestTopKOverlapTies(t *testing.T) {
	// s1 has a tie at the k-th score: top-1 includes both papers; the
	// denominator becomes min(|PS1|, |PS2|) = 1 per §2.
	s1 := prestige.Scores{"GO:1": {0: 1.0, 1: 1.0, 2: 0.1}}
	s2 := prestige.Scores{"GO:1": {0: 1.0, 1: 0.5, 2: 0.1}}
	got := TopKOverlapRatio(s1, s2, "GO:1", 1)
	if got != 1 {
		t.Fatalf("tie overlap = %v, want 1 (ties included, denominator min)", got)
	}
}

func TestOverlapByLevel(t *testing.T) {
	f := buildFixture(t)
	sizes := map[ontology.TermID]int{}
	for _, ctx := range f.scores.Contexts() {
		sizes[ctx] = f.cs.Size(ctx)
	}
	// Compare the text scores against themselves: all overlaps must be 1
	// wherever contexts exist.
	res := OverlapByLevel(f.onto, f.scores, f.scores, sizes, []int{3, 5}, []float64{0.05, 0.2})
	for level, row := range res {
		ctxs := ContextsAtLevel(f.onto, f.scores, level)
		if len(ctxs) == 0 {
			continue
		}
		for _, v := range row {
			if v < 0.999 {
				t.Fatalf("self overlap at level %d = %v", level, v)
			}
		}
	}
}

func TestSeparability(t *testing.T) {
	f := buildFixture(t)
	cfg := DefaultSeparabilityConfig()
	sds := SeparabilitySDs(f.scores, f.scores.Contexts(), cfg)
	if len(sds) == 0 {
		t.Fatal("no SDs computed")
	}
	for _, sd := range sds {
		if sd < 0 || sd > 30.01 {
			t.Fatalf("SD out of range: %v", sd)
		}
	}
	hist := SeparabilityHistogram(sds, cfg)
	if len(hist) != 8 { // 40/5
		t.Fatalf("histogram bins = %d", len(hist))
	}
	var total float64
	for _, p := range hist {
		total += p
	}
	if total < 99.99 || total > 100.01 {
		t.Fatalf("histogram sums to %v", total)
	}
}

func TestSeparabilityDegenerate(t *testing.T) {
	if got := SeparabilityHistogram(nil, SeparabilityConfig{ScoreBins: 10, SDBinWidth: 0, SDMax: 0}); got != nil {
		t.Fatal("degenerate config must return nil")
	}
	s := prestige.Scores{"GO:1": {}}
	if sds := SeparabilitySDs(s, []ontology.TermID{"GO:1"}, DefaultSeparabilityConfig()); len(sds) != 0 {
		t.Fatal("empty context must be skipped")
	}
}

func TestContextsAtLevel(t *testing.T) {
	f := buildFixture(t)
	for _, level := range []int{3, 5} {
		for _, ctx := range ContextsAtLevel(f.onto, f.scores, level) {
			if f.onto.Level(ctx) != level {
				t.Fatalf("context %s at wrong level", ctx)
			}
		}
	}
}
