package bitset

import "testing"

func TestAddContains(t *testing.T) {
	var s Set
	if s.Contains(0) || s.Contains(1000) || s.Contains(-1) {
		t.Fatal("empty set contains something")
	}
	for _, id := range []int{0, 1, 63, 64, 65, 500, 4096} {
		s.Add(id)
	}
	for _, id := range []int{0, 1, 63, 64, 65, 500, 4096} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false after Add", id)
		}
	}
	for _, id := range []int{2, 62, 66, 499, 501, 4095, 4097, 1 << 20, -5} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true, never added", id)
		}
	}
	if got := s.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
}

func TestNewPreSized(t *testing.T) {
	s := New(130)
	if len(s) != 3 {
		t.Fatalf("New(130) has %d words, want 3", len(s))
	}
	if New(0) != nil || New(-1) != nil {
		t.Fatal("New(≤0) should be nil")
	}
	s.Add(129)
	if !s.Contains(129) {
		t.Fatal("pre-sized set lost a bit")
	}
}

func TestUnionWith(t *testing.T) {
	var a, b Set
	a.Add(3)
	a.Add(100)
	b.Add(3)
	b.Add(200)
	b.Add(700)
	a.UnionWith(b)
	for _, id := range []int{3, 100, 200, 700} {
		if !a.Contains(id) {
			t.Errorf("union missing %d", id)
		}
	}
	if a.Count() != 4 {
		t.Errorf("union Count = %d, want 4", a.Count())
	}
	// Union with a shorter set must not shrink.
	var c Set
	c.Add(1)
	a.UnionWith(c)
	if !a.Contains(700) || !a.Contains(1) {
		t.Fatal("union with shorter set lost bits")
	}
}

func TestClone(t *testing.T) {
	var s Set
	s.Add(42)
	c := s.Clone()
	c.Add(43)
	if s.Contains(43) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Contains(42) {
		t.Fatal("Clone lost a bit")
	}
	if Set(nil).Clone() != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}
