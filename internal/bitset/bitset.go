// Package bitset implements a dense bitmap over small-integer IDs (paper
// IDs in this codebase). The query hot path uses it for context-membership
// tests: a word-indexed bit probe replaces a map[PaperID]bool lookup, and
// whole context paper sets union in O(words) for single-pass multi-context
// scoring.
package bitset

import "math/bits"

// Set is a bitmap over non-negative integers. The zero value is an empty
// set; Add grows it as needed. All read operations treat out-of-range IDs
// as absent.
type Set []uint64

// New returns a set pre-sized to hold IDs in [0, n).
func New(n int) Set {
	if n <= 0 {
		return nil
	}
	return make(Set, (n+63)/64)
}

// Add inserts id, growing the set if necessary. Negative IDs panic.
func (s *Set) Add(id int) {
	w := id >> 6
	if w >= len(*s) {
		grown := make(Set, w+1)
		copy(grown, *s)
		*s = grown
	}
	(*s)[w] |= 1 << (uint(id) & 63)
}

// Contains reports whether id is in the set; false for out-of-range IDs.
func (s Set) Contains(id int) bool {
	w := id >> 6
	return w >= 0 && w < len(s) && s[w]&(1<<(uint(id)&63)) != 0
}

// UnionWith ORs o into s in place, growing s if o is longer.
func (s *Set) UnionWith(o Set) {
	if len(o) > len(*s) {
		grown := make(Set, len(o))
		copy(grown, *s)
		*s = grown
	}
	for i, w := range o {
		(*s)[i] |= w
	}
}

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}
