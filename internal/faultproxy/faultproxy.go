// Package faultproxy is a deterministic fault-injection reverse proxy for
// tests and smoke scripts. It sits in front of one backend and consults a
// user-supplied script on every request: the script sees the per-path
// request index (0-based, counted independently for each URL path so
// health-probe traffic never perturbs the fault schedule of search
// traffic) and decides whether to delay, fail with a status, reset the
// connection, or hang until the proxy is closed.
//
// Because the schedule is keyed on request indices rather than timing,
// fault tests are reproducible: "the 3rd /shard/search request gets a 503
// burst" means the same thing on every run.
package faultproxy

import (
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"time"
)

// Fault is what the script injects into one request. The zero value
// passes the request through untouched.
type Fault struct {
	// Delay stalls the request before anything else happens.
	Delay time.Duration
	// Status, when non-zero, answers with that status code (plus a short
	// body) instead of proxying.
	Status int
	// Reset abruptly closes the TCP connection without writing a
	// response — the client sees a connection reset / EOF.
	Reset bool
	// Hang holds the connection open without responding until the proxy
	// is closed (simulates a wedged backend; pair with client timeouts).
	Hang bool
}

// Script decides the fault for one request. i is the 0-based index of
// this request among requests to the same URL path.
type Script func(i int, r *http.Request) Fault

// Proxy is a fault-injecting reverse proxy in front of one backend.
type Proxy struct {
	ln     net.Listener
	srv    *http.Server
	rp     *httputil.ReverseProxy
	script Script

	mu     sync.Mutex
	counts map[string]int
	total  int

	closed chan struct{} // released hangs on Close
}

// New starts a proxy listening on a random loopback port, forwarding to
// target (a base URL such as "http://127.0.0.1:8081"). script may be nil
// (everything passes through). Close must be called to free the port.
func New(target string, script Script) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:     ln,
		rp:     httputil.NewSingleHostReverseProxy(u),
		script: script,
		counts: make(map[string]int),
		closed: make(chan struct{}),
	}
	// Swallow proxy errors for requests the client already abandoned
	// (hedge losers cancel mid-flight); answer 502 otherwise.
	p.rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		select {
		case <-r.Context().Done():
			return
		default:
		}
		w.WriteHeader(http.StatusBadGateway)
	}
	p.rp.ErrorLog = nil
	p.srv = &http.Server{Handler: http.HandlerFunc(p.handle)}
	go p.srv.Serve(ln)
	return p, nil
}

func (p *Proxy) handle(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	i := p.counts[r.URL.Path]
	p.counts[r.URL.Path] = i + 1
	p.total++
	p.mu.Unlock()

	var f Fault
	if p.script != nil {
		f = p.script(i, r)
	}
	if f.Delay > 0 {
		select {
		case <-time.After(f.Delay):
		case <-p.closed:
			return
		case <-r.Context().Done():
			return
		}
	}
	switch {
	case f.Reset:
		hijackClose(w)
		return
	case f.Hang:
		// Hold until the proxy is closed or the client gives up, then
		// drop the connection without a response.
		select {
		case <-p.closed:
		case <-r.Context().Done():
		}
		hijackClose(w)
		return
	case f.Status != 0:
		http.Error(w, "faultproxy: injected fault", f.Status)
		return
	}
	p.rp.ServeHTTP(w, r)
}

// hijackClose takes over the connection and closes it raw, so the client
// sees a reset/EOF instead of a well-formed HTTP response.
func hijackClose(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		// Can't hijack (e.g. HTTP/2): the best approximation is an
		// empty 502.
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		return
	}
	_ = buf.Flush()
	if tc, ok := conn.(*net.TCPConn); ok {
		// SO_LINGER 0 turns the close into a hard RST.
		_ = tc.SetLinger(0)
	}
	conn.Close()
}

// URL returns the proxy's base URL, e.g. "http://127.0.0.1:49201".
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// Requests returns how many requests have arrived for the given path.
func (p *Proxy) Requests(path string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[path]
}

// Total returns how many requests have arrived across all paths.
func (p *Proxy) Total() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Close releases hung requests and shuts the proxy down.
func (p *Proxy) Close() {
	close(p.closed)
	p.srv.Close()
}
