package faultproxy

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func backend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok:"+r.URL.Path)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, client *http.Client, url string) (int, string, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, "", err
	}
	return resp.StatusCode, string(b), nil
}

func TestPassThrough(t *testing.T) {
	ts := backend(t)
	p, err := New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	status, body, err := get(t, http.DefaultClient, p.URL()+"/a")
	if err != nil || status != 200 || body != "ok:/a" {
		t.Fatalf("pass-through: status %d body %q err %v", status, body, err)
	}
}

// TestScriptedStatusByIndex: faults key on the per-path request index, so
// the same schedule replays identically and other paths don't disturb it.
func TestScriptedStatusByIndex(t *testing.T) {
	ts := backend(t)
	p, err := New(ts.URL, func(i int, r *http.Request) Fault {
		if r.URL.Path == "/search" && i == 1 {
			return Fault{Status: http.StatusInternalServerError}
		}
		return Fault{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	wantStatus := []int{200, 500, 200}
	for n, want := range wantStatus {
		// Interleave /healthz traffic: it must not consume /search indices.
		if status, _, err := get(t, http.DefaultClient, p.URL()+"/healthz"); err != nil || status != 200 {
			t.Fatalf("healthz %d: status %d err %v", n, status, err)
		}
		status, _, err := get(t, http.DefaultClient, p.URL()+"/search")
		if err != nil || status != want {
			t.Fatalf("search %d: status %d err %v, want %d", n, status, err, want)
		}
	}
	if got := p.Requests("/search"); got != 3 {
		t.Fatalf("Requests(/search) = %d, want 3", got)
	}
	if got := p.Requests("/healthz"); got != 3 {
		t.Fatalf("Requests(/healthz) = %d, want 3", got)
	}
	if got := p.Total(); got != 6 {
		t.Fatalf("Total() = %d, want 6", got)
	}
}

func TestReset(t *testing.T) {
	ts := backend(t)
	p, err := New(ts.URL, func(i int, r *http.Request) Fault {
		return Fault{Reset: i == 0}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, _, err := get(t, http.DefaultClient, p.URL()+"/x"); err == nil {
		t.Fatal("reset fault produced a clean response")
	}
	// The next request (index 1) passes.
	status, body, err := get(t, http.DefaultClient, p.URL()+"/x")
	if err != nil || status != 200 || body != "ok:/x" {
		t.Fatalf("post-reset: status %d body %q err %v", status, body, err)
	}
}

func TestHangRespectsClientTimeout(t *testing.T) {
	ts := backend(t)
	p, err := New(ts.URL, func(i int, r *http.Request) Fault {
		return Fault{Hang: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	client := &http.Client{Timeout: 100 * time.Millisecond}
	start := time.Now()
	if _, _, err := get(t, client, p.URL()+"/x"); err == nil {
		t.Fatal("hang fault produced a response")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hang ignored the client timeout (took %v)", elapsed)
	}
}

// TestHangReleasedByClose: Close must release hung connections so tests
// can't leak goroutines waiting on the proxy.
func TestHangReleasedByClose(t *testing.T) {
	ts := backend(t)
	p, err := New(ts.URL, func(i int, r *http.Request) Fault {
		return Fault{Hang: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := get(t, &http.Client{}, p.URL()+"/x")
		done <- err
	}()
	// Let the request reach the proxy, then close it out from under the
	// hung handler.
	deadline := time.Now().Add(5 * time.Second)
	for p.Requests("/x") == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	p.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("hung request completed cleanly after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not release the hung request")
	}
}

func TestDelay(t *testing.T) {
	ts := backend(t)
	p, err := New(ts.URL, func(i int, r *http.Request) Fault {
		return Fault{Delay: 80 * time.Millisecond}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := time.Now()
	status, body, err := get(t, http.DefaultClient, p.URL()+"/x")
	if err != nil || status != 200 || body != "ok:/x" {
		t.Fatalf("delayed request: status %d body %q err %v", status, body, err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("delay not applied (took %v)", elapsed)
	}
}

// TestPostBodyForwarded: POST bodies survive the proxy — the coordinator
// speaks POST /shard/search.
func TestPostBodyForwarded(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		w.Write(b)
	}))
	defer ts.Close()
	p, err := New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	resp, err := http.Post(p.URL()+"/shard/search", "application/json", strings.NewReader(`{"q":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if string(b) != `{"q":"x"}` {
		t.Fatalf("body round-trip = %q", b)
	}
}
