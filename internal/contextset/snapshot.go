package contextset

import (
	"fmt"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// Snapshot is the serialisable form of a ContextSet. Context paper sets are
// query-independent pre-processing artefacts (the paper's tasks 1–2 run
// offline), so a real deployment computes them once and persists them; the
// snapshot carries everything needed to rebuild the set against the same
// ontology.
type Snapshot struct {
	Kind          Kind
	Members       map[ontology.TermID]map[corpus.PaperID]float64
	Reps          map[ontology.TermID]corpus.PaperID
	Decay         map[ontology.TermID]float64
	InheritedFrom map[ontology.TermID]ontology.TermID
}

// Snapshot captures the set's full state.
func (cs *ContextSet) Snapshot() *Snapshot {
	snap := &Snapshot{
		Kind:          cs.kind,
		Members:       make(map[ontology.TermID]map[corpus.PaperID]float64, len(cs.members)),
		Reps:          make(map[ontology.TermID]corpus.PaperID, len(cs.reps)),
		Decay:         make(map[ontology.TermID]float64, len(cs.decay)),
		InheritedFrom: make(map[ontology.TermID]ontology.TermID, len(cs.inheritedFrom)),
	}
	if f := cs.frozen; f != nil {
		// Frozen backing: materialize the member maps from the CSR runs, so
		// a mapped v4 set can still round-trip through the gob formats.
		for i, ctx := range f.ctxs {
			docs, scores := f.run(int32(i))
			mm := make(map[corpus.PaperID]float64, len(docs))
			for k, id := range docs {
				mm[id] = scores[k]
			}
			snap.Members[ctx] = mm
		}
	}
	for ctx, m := range cs.members {
		mm := make(map[corpus.PaperID]float64, len(m))
		for id, mem := range m {
			mm[id] = mem.score
		}
		snap.Members[ctx] = mm
	}
	for ctx, r := range cs.reps {
		snap.Reps[ctx] = r
	}
	for ctx, d := range cs.decay {
		snap.Decay[ctx] = d
	}
	for ctx, a := range cs.inheritedFrom {
		snap.InheritedFrom[ctx] = a
	}
	return snap
}

// FromSnapshot rebuilds a ContextSet over the given ontology. Terms in the
// snapshot that no longer exist in the ontology are an error — the snapshot
// is only valid against the ontology it was built from.
func FromSnapshot(onto *ontology.Ontology, snap *Snapshot) (*ContextSet, error) {
	if snap == nil {
		return nil, fmt.Errorf("contextset: nil snapshot")
	}
	cs := newContextSet(snap.Kind, onto)
	for ctx, m := range snap.Members {
		if onto.Term(ctx) == nil {
			return nil, fmt.Errorf("contextset: snapshot references unknown term %s", ctx)
		}
		for id, score := range m {
			cs.add(ctx, id, score)
		}
	}
	for ctx, r := range snap.Reps {
		if onto.Term(ctx) == nil {
			return nil, fmt.Errorf("contextset: snapshot rep references unknown term %s", ctx)
		}
		cs.reps[ctx] = r
	}
	for ctx, d := range snap.Decay {
		cs.decay[ctx] = d
	}
	for ctx, a := range snap.InheritedFrom {
		cs.inheritedFrom[ctx] = a
	}
	return cs, nil
}
