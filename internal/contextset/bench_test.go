package contextset

import (
	"testing"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/pattern"
)

func benchFixture(b *testing.B) (*ontology.Ontology, *corpus.Analyzer, *pattern.PosIndex) {
	b.Helper()
	o, err := ontology.Generate(ontology.GenConfig{Seed: 4, NumTerms: 60, MaxDepth: 6})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(250))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	return o, a, pattern.NewPosIndex(a)
}

func BenchmarkBuildTextBased(b *testing.B) {
	o, a, _ := benchFixture(b)
	cfg := DefaultConfig()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = BuildTextBased(a, o, cfg)
	}
}

func BenchmarkBuildPatternBased(b *testing.B) {
	o, a, ix := benchFixture(b)
	cfg := DefaultConfig()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = BuildPatternBased(ix, a, o, cfg)
	}
}
