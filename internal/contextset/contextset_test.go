package contextset

import (
	"testing"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/pattern"
)

// fixture builds a generated ontology + corpus big enough for assignment to
// be meaningful but fast.
func fixture(t *testing.T) (*ontology.Ontology, *corpus.Corpus, *corpus.Analyzer, *pattern.PosIndex) {
	t.Helper()
	o, err := ontology.Generate(ontology.GenConfig{Seed: 4, NumTerms: 60, MaxDepth: 6, SecondParentProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(250))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	return o, c, a, pattern.NewPosIndex(a)
}

func TestBuildTextBased(t *testing.T) {
	o, c, a, _ := fixture(t)
	cs := BuildTextBased(a, o, DefaultConfig())
	if cs.Kind() != TextBased {
		t.Fatal("kind wrong")
	}
	ctxs := cs.Contexts()
	if len(ctxs) == 0 {
		t.Fatal("no contexts built")
	}
	for _, ctx := range ctxs {
		rep, ok := cs.Representative(ctx)
		if !ok {
			t.Fatalf("context %s has no representative", ctx)
		}
		if !cs.Contains(ctx, rep) {
			t.Fatalf("representative %d not a member of %s", rep, ctx)
		}
		// Evidence papers are always members with full score.
		for _, e := range c.EvidencePapers(ctx) {
			if got := cs.AssignScore(ctx, e); got != 1 {
				t.Fatalf("evidence paper %d score = %v", e, got)
			}
		}
		// All assignment scores in [0,1].
		for _, p := range cs.Papers(ctx) {
			s := cs.AssignScore(ctx, p)
			if s <= 0 || s > 1 {
				t.Fatalf("assign score out of range: %v", s)
			}
		}
		// Text-based contexts have no decay.
		if cs.Decay(ctx) != 1 {
			t.Fatalf("text-based context %s has decay", ctx)
		}
	}
}

func TestTextBasedThresholdMonotone(t *testing.T) {
	o, _, a, _ := fixture(t)
	loose := DefaultConfig()
	loose.TextThreshold = 0.05
	strict := DefaultConfig()
	strict.TextThreshold = 0.5
	csLoose := BuildTextBased(a, o, loose)
	csStrict := BuildTextBased(a, o, strict)
	totalLoose, totalStrict := 0, 0
	for _, ctx := range csLoose.Contexts() {
		totalLoose += csLoose.Size(ctx)
	}
	for _, ctx := range csStrict.Contexts() {
		totalStrict += csStrict.Size(ctx)
	}
	if totalStrict > totalLoose {
		t.Fatalf("stricter threshold produced more members: %d > %d", totalStrict, totalLoose)
	}
}

func TestTextBasedMaxPerContext(t *testing.T) {
	o, _, a, _ := fixture(t)
	cfg := DefaultConfig()
	cfg.TextThreshold = 0.01
	cfg.MaxPerContext = 7
	cs := BuildTextBased(a, o, cfg)
	for _, ctx := range cs.Contexts() {
		// Evidence papers are added on top of the cap, so allow the slack.
		if cs.Size(ctx) > cfg.MaxPerContext+6 {
			t.Fatalf("context %s has %d papers, cap %d", ctx, cs.Size(ctx), cfg.MaxPerContext)
		}
	}
}

func TestBuildPatternBased(t *testing.T) {
	o, c, a, ix := fixture(t)
	cs := BuildPatternBased(ix, a, o, DefaultConfig())
	if cs.Kind() != PatternBased {
		t.Fatal("kind wrong")
	}
	if len(cs.Contexts()) == 0 {
		t.Fatal("no contexts built")
	}
	// Evidence papers are members of their term's context.
	for _, term := range c.EvidenceTerms() {
		for _, e := range c.EvidencePapers(term) {
			if !cs.Contains(term, e) {
				t.Fatalf("evidence paper %d missing from %s", e, term)
			}
		}
	}
}

func TestPatternBasedDescendantFolding(t *testing.T) {
	o, _, a, ix := fixture(t)
	cs := BuildPatternBased(ix, a, o, DefaultConfig())
	// Every non-root context's papers must be contained in each of its
	// non-root parents (descendant folding is transitive bottom-up).
	for _, ctx := range cs.Contexts() {
		if _, inherited := cs.InheritedFrom(ctx); inherited {
			continue // inherited sets flow downward instead
		}
		for _, parent := range o.Parents(ctx) {
			if o.Level(parent) < 2 {
				continue
			}
			if _, parentInherited := cs.InheritedFrom(parent); parentInherited {
				continue
			}
			for _, p := range cs.Papers(ctx) {
				if !cs.Contains(parent, p) {
					t.Fatalf("paper %d in %s missing from parent %s", p, ctx, parent)
				}
			}
		}
	}
}

func TestPatternBasedInheritance(t *testing.T) {
	o, _, a, ix := fixture(t)
	cs := BuildPatternBased(ix, a, o, DefaultConfig())
	sawInherited := false
	for _, ctx := range cs.Contexts() {
		anc, inherited := cs.InheritedFrom(ctx)
		if !inherited {
			continue
		}
		sawInherited = true
		d := cs.Decay(ctx)
		if d <= 0 || d > 1 {
			t.Fatalf("decay of %s = %v, want (0,1]", ctx, d)
		}
		if !o.IsAncestor(anc, ctx) {
			t.Fatalf("%s inherited from non-ancestor %s", ctx, anc)
		}
		// Inherited paper set equals the origin's current set size-wise at
		// minimum (origin may have grown later only via its own folding,
		// which runs before inheritance).
		if cs.Size(ctx) == 0 {
			t.Fatalf("inherited context %s still empty", ctx)
		}
	}
	// With a 60-term ontology and 5 evidence papers per used term, some
	// terms have no patterns — inheritance must trigger somewhere.
	if !sawInherited {
		t.Log("no context inherited papers (acceptable but unusual for this fixture)")
	}
}

func TestContextsWithMinSize(t *testing.T) {
	o, _, a, _ := fixture(t)
	cs := BuildTextBased(a, o, DefaultConfig())
	all := cs.Contexts()
	big := cs.ContextsWithMinSize(10)
	if len(big) > len(all) {
		t.Fatal("filter grew the set")
	}
	for _, ctx := range big {
		if cs.Size(ctx) <= 10 {
			t.Fatalf("context %s has %d papers, expected > 10", ctx, cs.Size(ctx))
		}
	}
}

func TestContextsOf(t *testing.T) {
	o, c, a, _ := fixture(t)
	cs := BuildTextBased(a, o, DefaultConfig())
	// Any evidence paper must list its term among its contexts.
	term := c.EvidenceTerms()[0]
	e := c.EvidencePapers(term)[0]
	found := false
	for _, ctx := range cs.ContextsOf(e) {
		if ctx == term {
			found = true
		}
	}
	if !found {
		t.Fatalf("ContextsOf(%d) misses %s", e, term)
	}
}

func TestKindString(t *testing.T) {
	if TextBased.String() != "text-based" || PatternBased.String() != "pattern-based" {
		t.Fatal("kind names wrong")
	}
	if Kind(7).String() == "" {
		t.Fatal("unknown kind must stringify")
	}
}

func TestPaperSetIsCopy(t *testing.T) {
	o, _, a, _ := fixture(t)
	cs := BuildTextBased(a, o, DefaultConfig())
	ctx := cs.Contexts()[0]
	set := cs.PaperSet(ctx)
	before := cs.Size(ctx)
	for k := range set {
		delete(set, k)
	}
	if cs.Size(ctx) != before {
		t.Fatal("PaperSet leaked internal state")
	}
}

func TestParallelConstructionMatchesSerial(t *testing.T) {
	o, _, a, ix := fixture(t)
	serial := DefaultConfig()
	serial.Workers = 1
	parallel := DefaultConfig()
	parallel.Workers = 4

	ts, tp := BuildTextBased(a, o, serial), BuildTextBased(a, o, parallel)
	compareSets(t, "text", ts, tp)
	ps, pp := BuildPatternBased(ix, a, o, serial), BuildPatternBased(ix, a, o, parallel)
	compareSets(t, "pattern", ps, pp)
}

func compareSets(t *testing.T, name string, a, b *ContextSet) {
	t.Helper()
	ca, cb := a.Contexts(), b.Contexts()
	if len(ca) != len(cb) {
		t.Fatalf("%s: context counts differ: %d vs %d", name, len(ca), len(cb))
	}
	for i, ctx := range ca {
		if cb[i] != ctx {
			t.Fatalf("%s: context lists differ at %d", name, i)
		}
		pa, pb := a.Papers(ctx), b.Papers(ctx)
		if len(pa) != len(pb) {
			t.Fatalf("%s/%s: sizes differ: %d vs %d", name, ctx, len(pa), len(pb))
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("%s/%s: members differ at %d", name, ctx, j)
			}
			if a.AssignScore(ctx, pa[j]) != b.AssignScore(ctx, pb[j]) {
				t.Fatalf("%s/%s: scores differ for %d", name, ctx, pa[j])
			}
		}
		if a.Decay(ctx) != b.Decay(ctx) {
			t.Fatalf("%s/%s: decay differs", name, ctx)
		}
	}
}
