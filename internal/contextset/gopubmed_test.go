package contextset

import (
	"testing"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

func TestBuildGoPubMedStyle(t *testing.T) {
	o := ontology.New()
	mustAdd := func(tm ontology.Term) {
		t.Helper()
		if err := o.Add(tm); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(ontology.Term{ID: "GO:1", Name: "molecular function"})
	mustAdd(ontology.Term{ID: "GO:2", Name: "zinc binding", Parents: []ontology.TermID{"GO:1"}})
	if err := o.Build(); err != nil {
		t.Fatal(err)
	}
	papers := []*corpus.Paper{
		// Term words in abstract → member.
		{ID: 0, Title: "x", Abstract: "we study zinc binding here", Body: "y", Authors: []string{"a"}},
		// Term words only in body → NOT a member (GoPubMed sees abstracts).
		{ID: 1, Title: "x", Abstract: "unrelated text entirely", Body: "zinc binding in the body", Authors: []string{"b"}},
		// Partial term words in abstract → member only at lower fraction.
		{ID: 2, Title: "x", Abstract: "zinc ions everywhere", Body: "y", Authors: []string{"c"}},
	}
	c, err := corpus.NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)

	strict := BuildGoPubMedStyle(a, o, 1.0)
	if !strict.Contains("GO:2", 0) {
		t.Fatal("abstract match missing")
	}
	if strict.Contains("GO:2", 1) {
		t.Fatal("body-only match must not count")
	}
	if strict.Contains("GO:2", 2) {
		t.Fatal("partial match must not count at fraction 1.0")
	}

	loose := BuildGoPubMedStyle(a, o, 0.5)
	if !loose.Contains("GO:2", 2) {
		t.Fatal("half the words should suffice at fraction 0.5")
	}

	// All assignment strengths are 1 (no scoring).
	for _, ctx := range strict.Contexts() {
		for _, p := range strict.Papers(ctx) {
			if strict.AssignScore(ctx, p) != 1 {
				t.Fatal("GoPubMed-style set must not score")
			}
		}
	}
}

func TestAbstractCoverage(t *testing.T) {
	o, c, a, _ := fixture(t)
	cs := BuildGoPubMedStyle(a, o, 1.0)
	cov := AbstractCoverage(cs, c)
	if cov < 0 || cov > 1 {
		t.Fatalf("coverage = %v", cov)
	}
	// Looser matching covers at least as much.
	loose := BuildGoPubMedStyle(a, o, 0.5)
	if AbstractCoverage(loose, c) < cov {
		t.Fatal("looser fraction reduced coverage")
	}
}
