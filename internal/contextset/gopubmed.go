package contextset

import (
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// BuildGoPubMedStyle reproduces the categorisation of GoPubMed, the only
// other context-hierarchy system the paper's §6 discusses: a paper belongs
// to a GO-term context iff the term's words occur in the paper's ABSTRACT
// (GoPubMed retrieved and categorised abstracts only; "categorization fully
// relies on the existence of GO term words in the abstracts"). It assigns
// no scores and no ranking — every member gets assignment strength 1 — so
// it doubles as a baseline showing why prestige scoring matters.
//
// MinWordFraction is the fraction of the term's distinct (stemmed) name
// words that must appear; GoPubMed's literal behaviour is 1.0.
func BuildGoPubMedStyle(a *corpus.Analyzer, onto *ontology.Ontology, minWordFraction float64) *ContextSet {
	if minWordFraction <= 0 || minWordFraction > 1 {
		minWordFraction = 1
	}
	cs := newContextSet(TextBased, onto)
	tok := a.Tokenizer()
	c := a.Corpus()

	// Precompute each paper's abstract word support.
	abstractWords := make([]map[string]bool, c.Len())
	for _, p := range c.Papers() {
		set := map[string]bool{}
		for _, w := range a.Features(p.ID).Tokens[corpus.SecAbstract] {
			set[w] = true
		}
		abstractWords[p.ID] = set
	}

	for _, term := range onto.TermIDs() {
		if onto.Level(term) < 2 {
			continue
		}
		words := tok.Terms(onto.Term(term).Name)
		if len(words) == 0 {
			continue
		}
		distinct := map[string]bool{}
		for _, w := range words {
			distinct[w] = true
		}
		need := int(minWordFraction*float64(len(distinct)) + 0.9999)
		for _, p := range c.Papers() {
			have := 0
			for w := range distinct {
				if abstractWords[p.ID][w] {
					have++
				}
			}
			if have >= need {
				cs.add(term, p.ID, 1)
			}
		}
	}
	return cs
}

// AbstractCoverage returns the fraction of papers whose abstract contains
// at least one ontology term's full word set — the paper reports GoPubMed
// covers only 78% of PubMed abstracts this way.
func AbstractCoverage(cs *ContextSet, c *corpus.Corpus) float64 {
	if c.Len() == 0 {
		return 0
	}
	covered := map[corpus.PaperID]bool{}
	for _, ctx := range cs.Contexts() {
		for _, p := range cs.Papers(ctx) {
			covered[p] = true
		}
	}
	return float64(len(covered)) / float64(c.Len())
}
