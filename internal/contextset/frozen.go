package contextset

import (
	"fmt"
	"sort"

	"ctxsearch/internal/bitset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// Frozen is the flat, serializable form of a ContextSet: member runs in
// CSR layout (context rows sorted by term ID, each run's papers ascending)
// plus each context's membership bitmap as packed word runs — exactly the
// two representations the query hot path reads. The v4 state format
// persists these arrays verbatim so FromFrozen can rebind them (typically
// aliasing a memory-mapped file) without the O(nnz) map inserts
// FromSnapshot pays.
type Frozen struct {
	Kind Kind
	// Ctxs holds the non-empty contexts in ascending term-ID order.
	Ctxs []ontology.TermID
	// Offsets delimit member runs: context i's papers are
	// Docs[Offsets[i]:Offsets[i+1]] ascending, Scores parallel.
	Offsets []int32
	Docs    []corpus.PaperID
	Scores  []float64
	// WordOffsets delimit bitmap runs: context i's membership bitset is
	// Words[WordOffsets[i]:WordOffsets[i+1]], the exact bitset.Set the lazy
	// PaperBitset cache would build.
	WordOffsets []int32
	Words       []uint64

	Reps          map[ontology.TermID]corpus.PaperID
	Decay         map[ontology.TermID]float64
	InheritedFrom map[ontology.TermID]ontology.TermID
}

// frozenSet is the borrowed-slice backing of a frozen ContextSet. The
// slices are never mutated or appended to, so mapping-backed (read-only)
// memory is safe.
type frozenSet struct {
	ctxs    []ontology.TermID
	ord     map[ontology.TermID]int32
	offsets []int32
	docs    []corpus.PaperID
	scores  []float64
	wordOff []int32
	words   []uint64
}

// run returns the member run of the i-th context.
func (f *frozenSet) run(i int32) ([]corpus.PaperID, []float64) {
	lo, hi := f.offsets[i], f.offsets[i+1]
	return f.docs[lo:hi], f.scores[lo:hi]
}

// bits returns the membership bitset of the i-th context (aliasing the
// frozen words — callers must not modify, same contract as PaperBitset).
func (f *frozenSet) bits(i int32) bitset.Set {
	return bitset.Set(f.words[f.wordOff[i]:f.wordOff[i+1]])
}

// Freeze flattens the set into its serializable form. The layout is fully
// deterministic: contexts ascending by term ID, runs ascending by paper
// ID, scores byte-identical to the map's values, bitmap runs identical to
// what the lazy PaperBitset cache builds. On an already-frozen set the
// arrays are returned as-is (shared, read-only).
func (cs *ContextSet) Freeze() *Frozen {
	if f := cs.frozen; f != nil {
		return &Frozen{
			Kind: cs.kind,
			Ctxs: f.ctxs, Offsets: f.offsets, Docs: f.docs, Scores: f.scores,
			WordOffsets: f.wordOff, Words: f.words,
			Reps: cs.reps, Decay: cs.decay, InheritedFrom: cs.inheritedFrom,
		}
	}
	ctxs := cs.Contexts()
	out := &Frozen{
		Kind:          cs.kind,
		Ctxs:          ctxs,
		Offsets:       make([]int32, len(ctxs)+1),
		WordOffsets:   make([]int32, len(ctxs)+1),
		Reps:          cs.reps,
		Decay:         cs.decay,
		InheritedFrom: cs.inheritedFrom,
	}
	nnz := 0
	for _, ctx := range ctxs {
		nnz += len(cs.members[ctx])
	}
	out.Docs = make([]corpus.PaperID, 0, nnz)
	out.Scores = make([]float64, 0, nnz)
	for i, ctx := range ctxs {
		m := cs.members[ctx]
		run := make([]corpus.PaperID, 0, len(m))
		for id := range m {
			run = append(run, id)
		}
		sort.Slice(run, func(a, b int) bool { return run[a] < run[b] })
		var b bitset.Set
		for _, id := range run {
			out.Docs = append(out.Docs, id)
			out.Scores = append(out.Scores, m[id].score)
			b.Add(int(id))
		}
		out.Words = append(out.Words, b...)
		out.Offsets[i+1] = int32(len(out.Docs))
		out.WordOffsets[i+1] = int32(len(out.Words))
	}
	return out
}

// FromFrozen rebuilds a ContextSet over caller-provided flat arrays — the
// zero-copy open path of the v4 state format. The set borrows every slice
// verbatim and never mutates or appends, so mapping-backed (read-only)
// memory is safe; the caller keeps the backing storage alive for the
// set's lifetime. As with FromSnapshot, terms unknown to the ontology are
// an error — the arrays are only valid against the ontology they were
// built from.
//
// Validation is O(contexts), never O(nnz): per-element run content is the
// writer's contract, guarded on disk by section CRCs.
func FromFrozen(onto *ontology.Ontology, f *Frozen) (*ContextSet, error) {
	if f == nil {
		return nil, fmt.Errorf("contextset: nil frozen set")
	}
	n := len(f.Ctxs)
	if len(f.Offsets) != n+1 || len(f.WordOffsets) != n+1 {
		return nil, fmt.Errorf("contextset: %d contexts need %d offsets, have %d/%d",
			n, n+1, len(f.Offsets), len(f.WordOffsets))
	}
	if len(f.Docs) != len(f.Scores) {
		return nil, fmt.Errorf("contextset: %d docs vs %d scores", len(f.Docs), len(f.Scores))
	}
	if f.Offsets[0] != 0 || int(f.Offsets[n]) != len(f.Docs) {
		return nil, fmt.Errorf("contextset: offsets span [%d, %d), want [0, %d)", f.Offsets[0], f.Offsets[n], len(f.Docs))
	}
	if f.WordOffsets[0] != 0 || int(f.WordOffsets[n]) != len(f.Words) {
		return nil, fmt.Errorf("contextset: word offsets span [%d, %d), want [0, %d)", f.WordOffsets[0], f.WordOffsets[n], len(f.Words))
	}
	fs := &frozenSet{
		ctxs:    f.Ctxs,
		ord:     make(map[ontology.TermID]int32, n),
		offsets: f.Offsets,
		docs:    f.Docs,
		scores:  f.Scores,
		wordOff: f.WordOffsets,
		words:   f.Words,
	}
	for i, ctx := range f.Ctxs {
		if onto.Term(ctx) == nil {
			return nil, fmt.Errorf("contextset: frozen set references unknown term %s", ctx)
		}
		if i > 0 && f.Ctxs[i-1] >= ctx {
			return nil, fmt.Errorf("contextset: contexts not strictly ascending at row %d (%s)", i, ctx)
		}
		if f.Offsets[i] > f.Offsets[i+1] || f.WordOffsets[i] > f.WordOffsets[i+1] {
			return nil, fmt.Errorf("contextset: offsets decrease at row %d (%s)", i, ctx)
		}
		fs.ord[ctx] = int32(i)
	}
	for ctx := range f.Reps {
		if onto.Term(ctx) == nil {
			return nil, fmt.Errorf("contextset: frozen rep references unknown term %s", ctx)
		}
	}
	cs := &ContextSet{
		kind:          f.Kind,
		onto:          onto,
		frozen:        fs,
		reps:          orEmptyPapers(f.Reps),
		decay:         orEmptyDecay(f.Decay),
		inheritedFrom: orEmptyTerms(f.InheritedFrom),
	}
	return cs, nil
}

func orEmptyPapers(m map[ontology.TermID]corpus.PaperID) map[ontology.TermID]corpus.PaperID {
	if m == nil {
		return make(map[ontology.TermID]corpus.PaperID)
	}
	return m
}

func orEmptyDecay(m map[ontology.TermID]float64) map[ontology.TermID]float64 {
	if m == nil {
		return make(map[ontology.TermID]float64)
	}
	return m
}

func orEmptyTerms(m map[ontology.TermID]ontology.TermID) map[ontology.TermID]ontology.TermID {
	if m == nil {
		return make(map[ontology.TermID]ontology.TermID)
	}
	return m
}
