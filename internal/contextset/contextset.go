// Package contextset implements the query-independent pre-processing step 1
// of the paper: assigning papers to ontology-term contexts. It builds the
// two context paper sets of §4 — the text-based set (similarity to a
// representative paper) and the simplified pattern-based set (middle-tuple
// matching, descendant folding, ancestor fallback with RateOfDecay) — which
// the prestige score functions and the evaluation run on.
package contextset

import (
	"fmt"
	"sort"
	"sync"

	"ctxsearch/internal/bitset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/par"
	"ctxsearch/internal/pattern"
	"ctxsearch/internal/vector"
)

// Kind identifies how a context paper set was constructed.
type Kind int

// Context paper set kinds.
const (
	TextBased Kind = iota
	PatternBased
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case TextBased:
		return "text-based"
	case PatternBased:
		return "pattern-based"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config configures context paper set construction.
type Config struct {
	// TextThreshold is the minimum cosine similarity to the representative
	// paper for membership in the text-based set.
	TextThreshold float64
	// TopContextsPerPaper additionally assigns every paper to its M
	// best-matching contexts even below the threshold. This is what makes
	// upper-level contexts large and diverse (generic papers land in the
	// broad contexts they match best, with low absolute similarity) — the
	// structure behind the paper's Figure 5.5 separability observation.
	TopContextsPerPaper int
	// MaxPerContext caps context size in the text-based set (0 = no cap);
	// the highest-similarity papers win.
	MaxPerContext int
	// PatternThreshold is the minimum max-normalised pattern match score
	// for membership in the pattern-based set.
	PatternThreshold float64
	// PatternConfig configures pattern construction for the pattern-based
	// set; the simplified §4 variant forces Extended off and middle-only
	// matching regardless of this value.
	PatternConfig pattern.Config
	// Workers bounds construction parallelism (0 = GOMAXPROCS, 1 = serial).
	// Results are identical at any setting.
	Workers int
}

// DefaultConfig returns thresholds used by the experiments, calibrated on
// the synthetic corpus where unrelated-pair full-text cosines sit around
// 0.2 and same-topic pairs above 0.5.
func DefaultConfig() Config {
	return Config{
		TextThreshold:       0.35,
		TopContextsPerPaper: 2,
		MaxPerContext:       0,
		PatternThreshold:    0.20,
		PatternConfig:       pattern.DefaultConfig(),
	}
}

// membership records one paper's membership in one context.
type membership struct {
	score float64 // assignment strength in [0,1] (1 for evidence papers)
}

// ContextSet is an immutable paper-to-context assignment.
//
// Two backings exist: the map form (members), produced by the builders and
// FromSnapshot, and the frozen flat form (frozen), produced by FromFrozen
// over borrowed CSR/bitmap arrays — typically aliasing a memory-mapped v4
// state file. Exactly one is non-nil; every accessor branches on it and
// returns identical results either way (golden-tested).
type ContextSet struct {
	kind    Kind
	onto    *ontology.Ontology
	members map[ontology.TermID]map[corpus.PaperID]membership
	frozen  *frozenSet
	reps    map[ontology.TermID]corpus.PaperID
	// decay[ctx] < 1 when ctx inherited its papers from an ancestor.
	decay map[ontology.TermID]float64
	// inheritedFrom[ctx] is set when ctx's paper set came from an ancestor.
	inheritedFrom map[ontology.TermID]ontology.TermID

	// bitsets lazily caches each context's paper set as a bitmap — the
	// O(1)-membership representation the query hot path filters with.
	bitsetMu sync.Mutex
	bitsets  map[ontology.TermID]bitset.Set
}

func newContextSet(kind Kind, onto *ontology.Ontology) *ContextSet {
	return &ContextSet{
		kind:          kind,
		onto:          onto,
		members:       make(map[ontology.TermID]map[corpus.PaperID]membership),
		reps:          make(map[ontology.TermID]corpus.PaperID),
		decay:         make(map[ontology.TermID]float64),
		inheritedFrom: make(map[ontology.TermID]ontology.TermID),
	}
}

// Kind returns how the set was constructed.
func (cs *ContextSet) Kind() Kind { return cs.kind }

// Ontology returns the context hierarchy.
func (cs *ContextSet) Ontology() *ontology.Ontology { return cs.onto }

// Contexts returns all non-empty contexts sorted by term ID.
func (cs *ContextSet) Contexts() []ontology.TermID {
	if f := cs.frozen; f != nil {
		out := make([]ontology.TermID, 0, len(f.ctxs))
		for i, ctx := range f.ctxs {
			if f.offsets[i] < f.offsets[i+1] {
				out = append(out, ctx)
			}
		}
		return out
	}
	out := make([]ontology.TermID, 0, len(cs.members))
	for t, m := range cs.members {
		if len(m) > 0 {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContextsWithMinSize returns non-empty contexts with more than min papers,
// sorted by term ID — the paper excludes contexts with ≤ 100 papers.
func (cs *ContextSet) ContextsWithMinSize(min int) []ontology.TermID {
	if f := cs.frozen; f != nil {
		var out []ontology.TermID
		for i, ctx := range f.ctxs {
			if int(f.offsets[i+1]-f.offsets[i]) > min {
				out = append(out, ctx)
			}
		}
		return out
	}
	var out []ontology.TermID
	for t, m := range cs.members {
		if len(m) > min {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Papers returns the papers of a context in ID order.
func (cs *ContextSet) Papers(ctx ontology.TermID) []corpus.PaperID {
	if f := cs.frozen; f != nil {
		i, ok := f.ord[ctx]
		if !ok {
			return []corpus.PaperID{}
		}
		docs, _ := f.run(i)
		return append([]corpus.PaperID{}, docs...)
	}
	m := cs.members[ctx]
	out := make([]corpus.PaperID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PaperSet returns the membership set of a context; the map is shared and
// must not be modified.
func (cs *ContextSet) PaperSet(ctx ontology.TermID) map[corpus.PaperID]bool {
	if f := cs.frozen; f != nil {
		i, ok := f.ord[ctx]
		if !ok {
			return map[corpus.PaperID]bool{}
		}
		docs, _ := f.run(i)
		out := make(map[corpus.PaperID]bool, len(docs))
		for _, id := range docs {
			out[id] = true
		}
		return out
	}
	m := cs.members[ctx]
	out := make(map[corpus.PaperID]bool, len(m))
	for id := range m {
		out[id] = true
	}
	return out
}

// PaperBitset returns the membership of a context as a bitmap over paper
// IDs. The set is computed once per context, cached, and shared: callers
// must not modify it (union into a fresh set with bitset.Clone/UnionWith).
// Safe for concurrent use.
func (cs *ContextSet) PaperBitset(ctx ontology.TermID) bitset.Set {
	if f := cs.frozen; f != nil {
		// The bitmap runs are precomputed in the frozen arrays: no lock, no
		// cache, no allocation — and identical to what the lazy path builds.
		i, ok := f.ord[ctx]
		if !ok {
			return nil
		}
		return f.bits(i)
	}
	cs.bitsetMu.Lock()
	defer cs.bitsetMu.Unlock()
	if cs.bitsets == nil {
		cs.bitsets = make(map[ontology.TermID]bitset.Set)
	}
	if b, ok := cs.bitsets[ctx]; ok {
		return b
	}
	var b bitset.Set
	for id := range cs.members[ctx] {
		b.Add(int(id))
	}
	cs.bitsets[ctx] = b
	return b
}

// Size returns the number of papers in a context.
func (cs *ContextSet) Size(ctx ontology.TermID) int {
	if f := cs.frozen; f != nil {
		i, ok := f.ord[ctx]
		if !ok {
			return 0
		}
		return int(f.offsets[i+1] - f.offsets[i])
	}
	return len(cs.members[ctx])
}

// Contains reports membership of a paper in a context.
func (cs *ContextSet) Contains(ctx ontology.TermID, p corpus.PaperID) bool {
	if f := cs.frozen; f != nil {
		i, ok := f.ord[ctx]
		return ok && f.bits(i).Contains(int(p))
	}
	_, ok := cs.members[ctx][p]
	return ok
}

// AssignScore returns the assignment strength of a paper in a context
// (0 when not a member).
func (cs *ContextSet) AssignScore(ctx ontology.TermID, p corpus.PaperID) float64 {
	if f := cs.frozen; f != nil {
		i, ok := f.ord[ctx]
		if !ok {
			return 0
		}
		docs, scores := f.run(i)
		if k := searchPapers(docs, p); k < len(docs) && docs[k] == p {
			return scores[k]
		}
		return 0
	}
	return cs.members[ctx][p].score
}

// searchPapers returns the first index of s whose value is >= v (len(s)
// when none is).
func searchPapers(s []corpus.PaperID, v corpus.PaperID) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Representative returns the representative paper of a context in the
// text-based set.
func (cs *ContextSet) Representative(ctx ontology.TermID) (corpus.PaperID, bool) {
	r, ok := cs.reps[ctx]
	return r, ok
}

// Decay returns the RateOfDecay multiplier of a context: 1 for contexts
// with their own papers, I(ancs)/I(desc) for contexts that inherited an
// ancestor's paper set.
func (cs *ContextSet) Decay(ctx ontology.TermID) float64 {
	if d, ok := cs.decay[ctx]; ok {
		return d
	}
	return 1
}

// InheritedFrom returns the ancestor a context inherited its papers from,
// if any.
func (cs *ContextSet) InheritedFrom(ctx ontology.TermID) (ontology.TermID, bool) {
	a, ok := cs.inheritedFrom[ctx]
	return a, ok
}

// ContextsOf returns the contexts containing a paper, sorted by term ID.
func (cs *ContextSet) ContextsOf(p corpus.PaperID) []ontology.TermID {
	if f := cs.frozen; f != nil {
		var out []ontology.TermID
		for i, ctx := range f.ctxs {
			if f.bits(int32(i)).Contains(int(p)) {
				out = append(out, ctx)
			}
		}
		return out
	}
	var out []ontology.TermID
	for t, m := range cs.members {
		if _, ok := m[p]; ok {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (cs *ContextSet) add(ctx ontology.TermID, p corpus.PaperID, score float64) {
	if cs.frozen != nil {
		panic("contextset: add on a frozen set")
	}
	if score > 1 {
		score = 1 // guard against cosine rounding slightly above 1
	}
	m := cs.members[ctx]
	if m == nil {
		m = make(map[corpus.PaperID]membership)
		cs.members[ctx] = m
	}
	if prev, ok := m[p]; !ok || score > prev.score {
		m[p] = membership{score: score}
	}
}

// BuildTextBased constructs the text-based context paper set: for every
// context with annotation evidence papers, the evidence paper closest to
// the evidence centroid becomes the representative, and every corpus paper
// whose full-text TF-IDF cosine to the representative reaches
// cfg.TextThreshold joins the context.
func BuildTextBased(a *corpus.Analyzer, onto *ontology.Ontology, cfg Config) *ContextSet {
	cs := newContextSet(TextBased, onto)
	c := a.Corpus()
	terms := make([]ontology.TermID, 0, len(c.EvidenceTerms()))
	repVecs := make(map[ontology.TermID]vector.Sparse)
	repNorms := make(map[ontology.TermID]float64)
	for _, term := range c.EvidenceTerms() {
		if onto.Term(term) == nil {
			continue
		}
		rep := chooseRepresentative(a, c.EvidencePapers(term))
		cs.reps[term] = rep
		repVecs[term] = a.TFIDFAll(rep)
		repNorms[term] = a.TFIDFAllNorm(rep)
		terms = append(terms, term)
	}

	type cand struct {
		id  corpus.PaperID
		sim float64
	}
	members := make(map[ontology.TermID][]cand, len(terms))
	// Per-paper pass: threshold membership plus the paper's top-M contexts
	// (generic papers join the broad contexts they match best, even with
	// low absolute similarity).
	type ts struct {
		term ontology.TermID
		sim  float64
	}
	// Per-paper similarity rows computed in parallel, merged in paper order
	// so the result is identical to the serial construction.
	type paperRow struct {
		thresholded []ts
		top         []ts
	}
	papers := c.Papers()
	// Warm the TF-IDF caches in parallel; after Warm the per-paper reads
	// below are lock-free instead of serialising on the analyzer mutex.
	a.Warm(cfg.Workers)
	rows := make([]paperRow, len(papers))
	par.For(len(papers), cfg.Workers, func(i int) {
		p := papers[i]
		pv := a.TFIDFAll(p.ID)
		pn := a.TFIDFAllNorm(p.ID)
		var row paperRow
		var best []ts
		for _, term := range terms {
			sim := vector.CosineWithNorms(repVecs[term], pv, repNorms[term], pn)
			if sim >= cfg.TextThreshold {
				row.thresholded = append(row.thresholded, ts{term, sim})
			} else if cfg.TopContextsPerPaper > 0 && sim > 0 {
				best = append(best, ts{term, sim})
			}
		}
		if cfg.TopContextsPerPaper > 0 && len(best) > 0 {
			sort.Slice(best, func(x, y int) bool {
				if best[x].sim != best[y].sim {
					return best[x].sim > best[y].sim
				}
				return best[x].term < best[y].term
			})
			m := cfg.TopContextsPerPaper
			if m > len(best) {
				m = len(best)
			}
			row.top = best[:m]
		}
		rows[i] = row
	})
	for i, p := range papers {
		for _, e := range rows[i].thresholded {
			members[e.term] = append(members[e.term], cand{p.ID, e.sim})
		}
		for _, e := range rows[i].top {
			members[e.term] = append(members[e.term], cand{p.ID, e.sim})
		}
	}

	for _, term := range terms {
		cands := members[term]
		if cfg.MaxPerContext > 0 && len(cands) > cfg.MaxPerContext {
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].sim != cands[j].sim {
					return cands[i].sim > cands[j].sim
				}
				return cands[i].id < cands[j].id
			})
			cands = cands[:cfg.MaxPerContext]
		}
		for _, cd := range cands {
			cs.add(term, cd.id, cd.sim)
		}
		// Evidence papers always belong to their context.
		for _, e := range c.EvidencePapers(term) {
			cs.add(term, e, 1)
		}
	}
	return cs
}

// chooseRepresentative picks the evidence paper with the highest cosine to
// the evidence centroid (ties: lowest ID). With a single evidence paper it
// is the representative.
func chooseRepresentative(a *corpus.Analyzer, evidence []corpus.PaperID) corpus.PaperID {
	if len(evidence) == 1 {
		return evidence[0]
	}
	vecs := make([]vector.Sparse, len(evidence))
	for i, id := range evidence {
		vecs[i] = a.TFIDFAll(id)
	}
	centroid := vector.Centroid(vecs)
	best := evidence[0]
	bestSim := -1.0
	for i, id := range evidence {
		if sim := vector.Cosine(centroid, vecs[i]); sim > bestSim {
			bestSim = sim
			best = id
		}
	}
	return best
}

// BuildPatternBased constructs the simplified pattern-based context paper
// set of §4: per-term regular patterns matched by middle tuple only;
// max-normalised match scores above cfg.PatternThreshold grant membership;
// descendant papers are folded into ancestors; contexts still empty inherit
// the closest non-empty ancestor's papers with RateOfDecay damping.
func BuildPatternBased(ix *pattern.PosIndex, a *corpus.Analyzer, onto *ontology.Ontology, cfg Config) *ContextSet {
	cs := newContextSet(PatternBased, onto)
	c := a.Corpus()
	pcfg := cfg.PatternConfig
	pcfg.Extended = false // simplified variant
	termDF := pattern.TermWordDF(onto, ix)
	mcfg := pattern.DefaultMatchConfig()
	mcfg.MiddleOnly = true

	terms := make([]ontology.TermID, 0, len(c.EvidenceTerms()))
	for _, term := range c.EvidenceTerms() {
		if onto.Term(term) != nil {
			terms = append(terms, term)
		}
	}
	type termResult struct {
		term   ontology.TermID
		scores map[corpus.PaperID]float64
	}
	results := make([]termResult, len(terms))
	par.For(len(terms), cfg.Workers, func(i int) {
		term := terms[i]
		training := c.EvidencePapers(term)
		set := pattern.Build(ix, onto, term, training, termDF, pcfg)
		scores := set.ScorePapers(ix, nil, mcfg)
		results[i] = termResult{term, scores}
	})
	for i, term := range terms {
		scores := results[i].scores
		var max float64
		for _, s := range scores {
			if s > max {
				max = s
			}
		}
		if max > 0 {
			for id, s := range scores {
				if norm := s / max; norm >= cfg.PatternThreshold {
					cs.add(term, id, norm)
				}
			}
		}
		for _, e := range c.EvidencePapers(term) {
			cs.add(term, e, 1)
		}
	}

	// Fold descendant papers into ancestors (children before parents).
	foldDescendants(cs, onto)
	// Ancestor fallback for empty contexts, parents before children so a
	// chain of empty descendants inherits from the nearest originally
	// non-empty ancestor transitively.
	inheritFromAncestors(cs, onto)
	return cs
}

// foldDescendants adds every context's papers to all its ancestors,
// preserving the highest assignment score.
func foldDescendants(cs *ContextSet, onto *ontology.Ontology) {
	// Iterate terms deepest-first so scores propagate in one pass.
	terms := append([]ontology.TermID(nil), onto.TermIDs()...)
	sort.Slice(terms, func(i, j int) bool {
		li, lj := onto.Level(terms[i]), onto.Level(terms[j])
		if li != lj {
			return li > lj
		}
		return terms[i] < terms[j]
	})
	for _, t := range terms {
		m := cs.members[t]
		if len(m) == 0 {
			continue
		}
		for _, parent := range onto.Parents(t) {
			if onto.Level(parent) < 2 {
				continue // roots are not contexts
			}
			for id, mem := range m {
				cs.add(parent, id, mem.score)
			}
		}
	}
}

// inheritFromAncestors assigns, to every still-empty non-root context, the
// paper set of its closest non-empty ancestor, recording the RateOfDecay.
func inheritFromAncestors(cs *ContextSet, onto *ontology.Ontology) {
	terms := append([]ontology.TermID(nil), onto.TermIDs()...)
	sort.Slice(terms, func(i, j int) bool {
		li, lj := onto.Level(terms[i]), onto.Level(terms[j])
		if li != lj {
			return li < lj
		}
		return terms[i] < terms[j]
	})
	for _, t := range terms {
		if onto.Level(t) < 2 || len(cs.members[t]) > 0 {
			continue
		}
		anc, ok := closestNonEmptyAncestor(cs, onto, t)
		if !ok {
			continue
		}
		src := cs.members[anc]
		for id, mem := range src {
			cs.add(t, id, mem.score)
		}
		// If the ancestor itself inherited, decay compounds from the
		// original source.
		origin := anc
		if from, inherited := cs.inheritedFrom[anc]; inherited {
			origin = from
		}
		cs.inheritedFrom[t] = origin
		cs.decay[t] = onto.RateOfDecay(origin, t)
	}
}

// closestNonEmptyAncestor walks up the hierarchy breadth-first and returns
// the nearest ancestor (by level distance) with a non-empty paper set.
func closestNonEmptyAncestor(cs *ContextSet, onto *ontology.Ontology, t ontology.TermID) (ontology.TermID, bool) {
	frontier := append([]ontology.TermID(nil), onto.Parents(t)...)
	seen := map[ontology.TermID]bool{}
	for len(frontier) > 0 {
		var next []ontology.TermID
		// Deterministic: inspect the frontier in sorted order.
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		for _, a := range frontier {
			if seen[a] {
				continue
			}
			seen[a] = true
			if onto.Level(a) >= 2 && len(cs.members[a]) > 0 {
				return a, true
			}
			next = append(next, onto.Parents(a)...)
		}
		frontier = next
	}
	return "", false
}
