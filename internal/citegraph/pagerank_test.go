package citegraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) < tol }

func sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

func TestPageRankEmptyAndSingle(t *testing.T) {
	if got := PageRank(NewGraph(0), PageRankOpts{}); got != nil {
		t.Errorf("empty graph: %v", got)
	}
	got := PageRank(NewGraph(1), PageRankOpts{})
	if len(got) != 1 || !almostEq(got[0], 1, 1e-12) {
		t.Errorf("single node: %v", got)
	}
}

func TestPageRankStar(t *testing.T) {
	// Nodes 1..4 all cite node 0: node 0 must rank strictly highest.
	for _, tp := range []Teleport{TeleportE1, TeleportE2} {
		g := NewGraph(5)
		for i := 1; i < 5; i++ {
			_ = g.AddEdge(i, 0)
		}
		p := PageRank(g, PageRankOpts{Teleport: tp})
		if !almostEq(sum(p), 1, 1e-9) {
			t.Errorf("%v: sum = %v", tp, sum(p))
		}
		for i := 1; i < 5; i++ {
			if p[0] <= p[i] {
				t.Errorf("%v: hub not highest: %v", tp, p)
			}
		}
		// Symmetric leaves get equal scores.
		for i := 2; i < 5; i++ {
			if !almostEq(p[1], p[i], 1e-9) {
				t.Errorf("%v: asymmetric leaves: %v", tp, p)
			}
		}
	}
}

func TestPageRankCycleUniform(t *testing.T) {
	// A directed cycle is perfectly symmetric: uniform scores.
	g := NewGraph(4)
	for i := 0; i < 4; i++ {
		_ = g.AddEdge(i, (i+1)%4)
	}
	for _, tp := range []Teleport{TeleportE1, TeleportE2} {
		p := PageRank(g, PageRankOpts{Teleport: tp})
		for i := range p {
			if !almostEq(p[i], 0.25, 1e-9) {
				t.Fatalf("%v: cycle not uniform: %v", tp, p)
			}
		}
	}
}

func TestPageRankDanglingMassConserved(t *testing.T) {
	// 0→1, 1 dangling. Scores must stay a distribution.
	g := NewGraph(2)
	_ = g.AddEdge(0, 1)
	p := PageRank(g, PageRankOpts{Teleport: TeleportE2})
	if !almostEq(sum(p), 1, 1e-9) {
		t.Fatalf("sum = %v", sum(p))
	}
	if p[1] <= p[0] {
		t.Fatalf("cited dangling node must outrank citing node: %v", p)
	}
}

func TestPageRankE1E2Correlate(t *testing.T) {
	// On a random graph the two teleport variants must produce very similar
	// rankings (the paper treats them as interchangeable options).
	rng := rand.New(rand.NewSource(7))
	g := NewGraph(60)
	for k := 0; k < 300; k++ {
		i, j := rng.Intn(60), rng.Intn(60)
		if i != j {
			_ = g.AddEdge(i, j)
		}
	}
	p1 := PageRank(g, PageRankOpts{Teleport: TeleportE1})
	p2 := PageRank(g, PageRankOpts{Teleport: TeleportE2})
	// Same top node and positive correlation of scores.
	top := func(v []float64) int {
		best := 0
		for i, x := range v {
			if x > v[best] {
				best = i
			}
		}
		return best
	}
	if top(p1) != top(p2) {
		t.Errorf("teleport variants disagree on top node")
	}
}

func TestPageRankConvergesProperty(t *testing.T) {
	// Property: for random graphs, PageRank returns a probability
	// distribution with no NaNs.
	f := func(seed int64, nRaw uint8, eRaw uint8) bool {
		n := int(nRaw%40) + 2
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph(n)
		for k := 0; k < int(eRaw); k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				_ = g.AddEdge(i, j)
			}
		}
		for _, tp := range []Teleport{TeleportE1, TeleportE2} {
			p := PageRank(g, PageRankOpts{Teleport: tp})
			if !almostEq(sum(p), 1, 1e-6) {
				return false
			}
			for _, x := range p {
				if math.IsNaN(x) || x < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHITS(t *testing.T) {
	// 0 and 1 are hubs citing authorities 2, 3.
	g := NewGraph(4)
	_ = g.AddEdge(0, 2)
	_ = g.AddEdge(0, 3)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(1, 3)
	auth, hub := HITS(g, 0, 0)
	if auth[2] <= auth[0] || auth[3] <= auth[1] {
		t.Errorf("authorities wrong: %v", auth)
	}
	if hub[0] <= hub[2] || hub[1] <= hub[3] {
		t.Errorf("hubs wrong: %v", hub)
	}
	if a, h := HITS(NewGraph(0), 10, 1e-9); a != nil || h != nil {
		t.Error("empty graph must return nils")
	}
}

func TestMaxNormalize(t *testing.T) {
	v := MaxNormalize([]float64{2, 4, 1})
	if v[1] != 1 || v[0] != 0.5 || v[2] != 0.25 {
		t.Fatalf("v = %v", v)
	}
	z := MaxNormalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("zero input changed: %v", z)
	}
}

func TestTeleportString(t *testing.T) {
	if TeleportE1.String() != "E1" || TeleportE2.String() != "E2" {
		t.Fatal("teleport names wrong")
	}
	if Teleport(9).String() == "" {
		t.Fatal("unknown teleport must stringify")
	}
}
