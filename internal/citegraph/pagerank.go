package citegraph

import (
	"fmt"
	"math"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// Teleport selects the PageRank teleport (hidden-link) vector E of the
// paper's §3.1 recurrence  P(i+1) = (1−d)·MᵀP(i) + E.
type Teleport int

const (
	// TeleportE1 is the paper's first option, E1 = d: a constant teleport
	// contribution per node. The iterate is L1-normalised each step, since
	// a constant vector does not preserve total mass.
	TeleportE1 Teleport = iota
	// TeleportE2 is the paper's second option, E2 = (d/N)·[1ₙ]P(i): the
	// current total mass redistributed uniformly, which keeps ΣP = 1
	// exactly (the standard PageRank teleport).
	TeleportE2
)

// String returns the teleport variant name.
func (t Teleport) String() string {
	switch t {
	case TeleportE1:
		return "E1"
	case TeleportE2:
		return "E2"
	default:
		return fmt.Sprintf("Teleport(%d)", int(t))
	}
}

// PageRankOpts configures the PageRank computation.
type PageRankOpts struct {
	// D is the teleport probability d of the paper's recurrence; the
	// link-following weight is 1−d. Default 0.15.
	D float64
	// Teleport selects E1 or E2 (default E2).
	Teleport Teleport
	// MaxIter bounds the power iteration (default 100).
	MaxIter int
	// Tol is the L1 convergence tolerance (default 1e-9).
	Tol float64
}

func (o *PageRankOpts) defaults() {
	if o.D <= 0 || o.D >= 1 {
		o.D = 0.15
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
}

// PageRank computes the paper's PageRank variant over g and returns one
// score per node, L1-normalised (ΣP = 1). Dangling nodes (no outgoing
// citations) distribute their mass uniformly, the standard correction; an
// empty graph returns nil and a single node gets score 1.
func PageRank(g *Graph, opts PageRankOpts) []float64 {
	return PageRankScratch(g, opts, nil)
}

// PageRankScratch is PageRank with the power-iteration vectors drawn from a
// caller-owned arena, so a worker scoring thousands of per-context
// subgraphs allocates its rank buffers once. The returned slice aliases the
// arena and is only valid until its next use — copy out anything kept. A
// nil scratch allocates fresh vectors (PageRank's behaviour); results are
// bit-identical either way.
func PageRankScratch(g *Graph, opts PageRankOpts, s *Scratch) []float64 {
	opts.defaults()
	n := g.Len()
	if n == 0 {
		return nil
	}
	var p, next []float64
	if s != nil {
		p, next = s.ranks(n)
	} else {
		p = make([]float64, n)
		next = make([]float64, n)
	}
	for i := range p {
		p[i] = 1 / float64(n)
	}
	link := 1 - opts.D
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Mass from dangling nodes, spread uniformly.
		var dangling float64
		for i := 0; i < n; i++ {
			if len(g.out[i]) == 0 {
				dangling += p[i]
			}
		}
		base := link * dangling / float64(n)
		for i := range next {
			next[i] = base
		}
		for i := 0; i < n; i++ {
			if len(g.out[i]) == 0 {
				continue
			}
			share := link * p[i] / float64(len(g.out[i]))
			for _, j := range g.out[i] {
				next[j] += share
			}
		}
		switch opts.Teleport {
		case TeleportE1:
			for i := range next {
				next[i] += opts.D
			}
			normalizeL1(next)
		default: // TeleportE2
			var total float64
			for _, x := range p {
				total += x
			}
			add := opts.D * total / float64(n)
			for i := range next {
				next[i] += add
			}
		}
		var delta float64
		for i := range p {
			delta += math.Abs(next[i] - p[i])
		}
		p, next = next, p
		if delta < opts.Tol {
			break
		}
	}
	if s != nil {
		// The swaps may have crossed the arena's two vectors; hand them
		// back so the next call reuses both.
		s.p, s.next = p, next
	}
	normalizeL1(p)
	return p
}

func normalizeL1(v []float64) {
	var s float64
	for _, x := range v {
		s += x
	}
	if s == 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}

// HITS computes Kleinberg's hubs-and-authorities scores by power iteration
// with L2 normalisation each step. Returns (authority, hub) slices; nil for
// an empty graph.
func HITS(g *Graph, maxIter int, tol float64) (auth, hub []float64) {
	n := g.Len()
	if n == 0 {
		return nil, nil
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	if tol <= 0 {
		tol = 1e-9
	}
	auth = make([]float64, n)
	hub = make([]float64, n)
	for i := range auth {
		auth[i] = 1
		hub[i] = 1
	}
	newAuth := make([]float64, n)
	newHub := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		// authority(i) = Σ hub(j) over j citing i
		for i := 0; i < n; i++ {
			var s float64
			for _, j := range g.in[i] {
				s += hub[j]
			}
			newAuth[i] = s
		}
		// hub(i) = Σ authority(j) over j cited by i
		for i := 0; i < n; i++ {
			var s float64
			for _, j := range g.out[i] {
				s += newAuth[j]
			}
			newHub[i] = s
		}
		normalizeL2(newAuth)
		normalizeL2(newHub)
		var delta float64
		for i := range auth {
			delta += math.Abs(newAuth[i]-auth[i]) + math.Abs(newHub[i]-hub[i])
		}
		copy(auth, newAuth)
		copy(hub, newHub)
		if delta < tol {
			break
		}
	}
	return auth, hub
}

func normalizeL2(v []float64) {
	var s float64
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		return
	}
	s = math.Sqrt(s)
	for i := range v {
		v[i] /= s
	}
}

// MaxNormalize scales scores so the maximum becomes 1; all-zero input is
// returned unchanged. Prestige functions use this so per-context scores are
// comparable across contexts and bin cleanly into [0,1] for separability.
func MaxNormalize(scores []float64) []float64 {
	var m float64
	for _, s := range scores {
		if s > m {
			m = s
		}
	}
	if m == 0 {
		return scores
	}
	for i := range scores {
		scores[i] /= m
	}
	return scores
}
