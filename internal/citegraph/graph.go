// Package citegraph implements the citation-graph substrate: a compact
// directed graph, the per-context PageRank variant the paper's
// citation-based prestige function uses (with both teleport choices E1 and
// E2 from §3.1), the HITS baseline, and the bibliographic-coupling and
// co-citation similarities the text-based function's SimReferences needs.
package citegraph

import (
	"fmt"
	"sort"
)

// Graph is a directed graph over nodes 0..n-1. An edge i→j means "paper i
// cites paper j". Construct with NewGraph and AddEdge; the graph is cheap to
// copy by subgraph extraction.
type Graph struct {
	n   int
	out [][]int32
	in  [][]int32
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, out: make([][]int32, n), in: make([][]int32, n)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// AddEdge inserts the citation i→j. Self-loops and out-of-range nodes
// return an error; duplicate edges are ignored.
func (g *Graph) AddEdge(i, j int) error {
	if i < 0 || i >= g.n || j < 0 || j >= g.n {
		return fmt.Errorf("citegraph: edge (%d,%d) out of range [0,%d)", i, j, g.n)
	}
	if i == j {
		return fmt.Errorf("citegraph: self-loop at %d", i)
	}
	for _, k := range g.out[i] {
		if int(k) == j {
			return nil
		}
	}
	g.out[i] = append(g.out[i], int32(j))
	g.in[j] = append(g.in[j], int32(i))
	return nil
}

// Out returns the nodes cited by i (outgoing references).
func (g *Graph) Out(i int) []int32 { return g.out[i] }

// In returns the nodes citing i (incoming citations).
func (g *Graph) In(i int) []int32 { return g.in[i] }

// Edges returns the total number of directed edges.
func (g *Graph) Edges() int {
	e := 0
	for _, o := range g.out {
		e += len(o)
	}
	return e
}

// Subgraph extracts the induced subgraph over the given nodes (deduplicated)
// and returns it together with the mapping from new index to original node.
// Only edges with both endpoints inside the node set survive — exactly the
// paper's rule that "only citation information between papers in the given
// context is used".
func (g *Graph) Subgraph(nodes []int) (*Graph, []int) {
	uniq := make([]int, 0, len(nodes))
	pos := make(map[int]int, len(nodes))
	for _, n := range nodes {
		if n < 0 || n >= g.n {
			continue
		}
		if _, dup := pos[n]; dup {
			continue
		}
		pos[n] = len(uniq)
		uniq = append(uniq, n)
	}
	sg := NewGraph(len(uniq))
	for newI, origI := range uniq {
		for _, j := range g.out[origI] {
			if newJ, ok := pos[int(j)]; ok {
				_ = sg.AddEdge(newI, newJ)
			}
		}
	}
	return sg, uniq
}

// Sparseness returns 1 − edges/(n·(n−1)), i.e. the fraction of absent
// ordered pairs; 1 for graphs with < 2 nodes. The paper attributes the
// citation function's weakness to per-context sparseness; the experiments
// report this diagnostic.
func (g *Graph) Sparseness() float64 {
	if g.n < 2 {
		return 1
	}
	return 1 - float64(g.Edges())/float64(g.n*(g.n-1))
}

// overlap returns |a ∩ b| for sorted-or-not int32 slices (sorts copies).
func overlap(a, b []int32) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	as := append([]int32(nil), a...)
	bs := append([]int32(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	n, i, j := 0, 0, 0
	for i < len(as) && j < len(bs) {
		switch {
		case as[i] < bs[j]:
			i++
		case as[i] > bs[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// BibliographicCoupling returns the cosine-normalised bibliographic-coupling
// similarity of nodes i and j: shared outgoing references (Kessler 1963).
func (g *Graph) BibliographicCoupling(i, j int) float64 {
	if i == j {
		return 1
	}
	oi, oj := g.out[i], g.out[j]
	if len(oi) == 0 || len(oj) == 0 {
		return 0
	}
	return float64(overlap(oi, oj)) / sqrtProd(len(oi), len(oj))
}

// CoCitation returns the cosine-normalised co-citation similarity of nodes
// i and j: shared incoming citations (Small 1973).
func (g *Graph) CoCitation(i, j int) float64 {
	if i == j {
		return 1
	}
	ii, ij := g.in[i], g.in[j]
	if len(ii) == 0 || len(ij) == 0 {
		return 0
	}
	return float64(overlap(ii, ij)) / sqrtProd(len(ii), len(ij))
}

func sqrtProd(a, b int) float64 {
	return sqrt(float64(a) * float64(b))
}
