package citegraph

import (
	"math"
	"reflect"
	"testing"
)

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop must fail")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative node must fail")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range node must fail")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal("duplicate edge must be ignored, not fail")
	}
	if g.Edges() != 1 {
		t.Fatalf("Edges = %d, want 1 (dedup)", g.Edges())
	}
	if len(g.Out(0)) != 1 || len(g.In(1)) != 1 {
		t.Fatal("adjacency lists wrong")
	}
}

func TestNewGraphNegative(t *testing.T) {
	if g := NewGraph(-5); g.Len() != 0 {
		t.Fatalf("negative n should clamp to 0, got %d", g.Len())
	}
}

func TestSubgraph(t *testing.T) {
	g := NewGraph(5)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(2, 3)
	_ = g.AddEdge(3, 4)
	_ = g.AddEdge(0, 4)
	sg, mapping := g.Subgraph([]int{0, 1, 4, 4, 99})
	if sg.Len() != 3 {
		t.Fatalf("subgraph len = %d (dedup + range filter)", sg.Len())
	}
	if !reflect.DeepEqual(mapping, []int{0, 1, 4}) {
		t.Fatalf("mapping = %v", mapping)
	}
	// Surviving edges: 0→1 and 0→4 only.
	if sg.Edges() != 2 {
		t.Fatalf("subgraph edges = %d, want 2", sg.Edges())
	}
}

func TestSparseness(t *testing.T) {
	g := NewGraph(3)
	if NewGraph(1).Sparseness() != 1 {
		t.Error("tiny graph sparseness must be 1")
	}
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	// 2 of 6 possible ordered pairs present → sparseness 2/3.
	if got := g.Sparseness(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("sparseness = %v", got)
	}
}

func TestBibliographicCoupling(t *testing.T) {
	// Papers 0 and 1 both cite {2,3}; paper 4 cites {3}.
	g := NewGraph(5)
	_ = g.AddEdge(0, 2)
	_ = g.AddEdge(0, 3)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(1, 3)
	_ = g.AddEdge(4, 3)
	if got := g.BibliographicCoupling(0, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical reference sets: %v", got)
	}
	// |{3}| / sqrt(2·1)
	if got := g.BibliographicCoupling(0, 4); math.Abs(got-1/math.Sqrt2) > 1e-12 {
		t.Errorf("partial coupling: %v", got)
	}
	if got := g.BibliographicCoupling(2, 3); got != 0 {
		t.Errorf("no references: %v", got)
	}
	if got := g.BibliographicCoupling(2, 2); got != 1 {
		t.Errorf("self coupling: %v", got)
	}
}

func TestCoCitation(t *testing.T) {
	// Papers 2 and 3 are both cited by 0 and 1.
	g := NewGraph(5)
	_ = g.AddEdge(0, 2)
	_ = g.AddEdge(0, 3)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(1, 3)
	_ = g.AddEdge(0, 4)
	if got := g.CoCitation(2, 3); math.Abs(got-1) > 1e-12 {
		t.Errorf("full co-citation: %v", got)
	}
	// 4 cited only by 0; shared with 2: {0} → 1/sqrt(2).
	if got := g.CoCitation(2, 4); math.Abs(got-1/math.Sqrt2) > 1e-12 {
		t.Errorf("partial co-citation: %v", got)
	}
	if got := g.CoCitation(0, 1); got != 0 {
		t.Errorf("never cited: %v", got)
	}
}

func TestOverlap(t *testing.T) {
	if got := overlap([]int32{3, 1, 2}, []int32{2, 4, 3}); got != 2 {
		t.Errorf("overlap = %d", got)
	}
	if got := overlap(nil, []int32{1}); got != 0 {
		t.Errorf("nil overlap = %d", got)
	}
}
