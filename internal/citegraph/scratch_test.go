package citegraph

import (
	"reflect"
	"testing"
)

// TestSubgraphIntoMatchesSubgraph extracts many overlapping node sets
// through one reused arena and checks graph and mapping equality with the
// map-based Subgraph every time — including adjacency order, which the
// bit-identical PageRank guarantee depends on.
func TestSubgraphIntoMatchesSubgraph(t *testing.T) {
	g := randomGraph(400, 3000, 7)
	s := NewScratch()
	sets := [][]int{
		{},
		{5},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{7, 3, 3, 399, -1, 400, 0, 7}, // dups and out-of-range
	}
	for k := 0; k < 30; k++ {
		set := make([]int, 0, 50)
		for i := 0; i < 50; i++ {
			set = append(set, (k*37+i*11)%400)
		}
		sets = append(sets, set)
	}
	for si, nodes := range sets {
		want, wantMap := g.Subgraph(nodes)
		got, gotMap := g.SubgraphInto(nodes, s)
		if got.Len() != want.Len() {
			t.Fatalf("set %d: node count %d, want %d", si, got.Len(), want.Len())
		}
		if len(gotMap) != len(wantMap) {
			t.Fatalf("set %d: mapping length %d, want %d", si, len(gotMap), len(wantMap))
		}
		for i := range wantMap {
			if gotMap[i] != wantMap[i] {
				t.Fatalf("set %d: mapping[%d] = %d, want %d", si, i, gotMap[i], wantMap[i])
			}
		}
		for i := 0; i < want.Len(); i++ {
			if !equalAdj(got.Out(i), want.Out(i)) || !equalAdj(got.In(i), want.In(i)) {
				t.Fatalf("set %d: adjacency of node %d differs:\nout %v vs %v\nin  %v vs %v",
					si, i, got.Out(i), want.Out(i), got.In(i), want.In(i))
			}
		}
		if got.Edges() != want.Edges() {
			t.Fatalf("set %d: edges %d, want %d", si, got.Edges(), want.Edges())
		}
	}
}

func equalAdj(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPageRankScratchMatchesPageRank runs the scratch variant over a
// sequence of different-sized subgraphs through one arena and checks the
// scores are bit-identical to the allocating PageRank, for both teleport
// variants.
func TestPageRankScratchMatchesPageRank(t *testing.T) {
	g := randomGraph(600, 7000, 8)
	s := NewScratch()
	for _, tp := range []Teleport{TeleportE1, TeleportE2} {
		opts := PageRankOpts{Teleport: tp}
		for k := 1; k <= 12; k++ {
			nodes := make([]int, 0, k*40)
			for i := 0; i < k*40; i++ {
				nodes = append(nodes, (i*13+k)%600)
			}
			subWant, _ := g.Subgraph(nodes)
			want := PageRank(subWant, opts)
			subGot, _ := g.SubgraphInto(nodes, s)
			got := PageRankScratch(subGot, opts, s)
			if len(got) != len(want) {
				t.Fatalf("%v k=%d: length %d, want %d", tp, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v k=%d: score[%d] = %v, want %v (not bit-identical)", tp, k, i, got[i], want[i])
				}
			}
		}
	}
	// Empty graph through the scratch path.
	empty, _ := g.SubgraphInto(nil, s)
	if got := PageRankScratch(empty, PageRankOpts{}, s); got != nil {
		t.Fatalf("empty subgraph returned %v", got)
	}
}

// TestScratchIntsReuse checks the node-ID buffer grows and is reused.
func TestScratchIntsReuse(t *testing.T) {
	s := NewScratch()
	a := s.Ints(10)
	if len(a) != 10 {
		t.Fatalf("len %d", len(a))
	}
	b := s.Ints(4)
	if len(b) != 4 {
		t.Fatalf("len %d", len(b))
	}
	if &a[0] != &b[0] {
		t.Fatal("shrinking Ints reallocated")
	}
	c := s.Ints(100)
	if len(c) != 100 {
		t.Fatalf("len %d", len(c))
	}
}

// TestSubgraphIntoSparseReset verifies the position table is fully reset
// between extractions: a node present in set A and absent from set B must
// not leak into B's subgraph.
func TestSubgraphIntoSparseReset(t *testing.T) {
	g := NewGraph(10)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(2, 0)
	s := NewScratch()
	if sub, _ := g.SubgraphInto([]int{0, 1, 2}, s); sub.Edges() != 3 {
		t.Fatalf("first extraction edges = %d, want 3", sub.Edges())
	}
	sub, mapping := g.SubgraphInto([]int{1, 2}, s)
	if sub.Len() != 2 || sub.Edges() != 1 {
		t.Fatalf("second extraction: %d nodes %d edges, want 2 nodes 1 edge", sub.Len(), sub.Edges())
	}
	if !reflect.DeepEqual(mapping, []int{1, 2}) {
		t.Fatalf("mapping %v", mapping)
	}
}
