package citegraph

import (
	"math/rand"
	"testing"
)

func randomGraph(n, e int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	for k := 0; k < e; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			_ = g.AddEdge(i, j)
		}
	}
	return g
}

func BenchmarkPageRank1k(b *testing.B) {
	g := randomGraph(1000, 12000, 1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = PageRank(g, PageRankOpts{})
	}
}

func BenchmarkPageRankE1(b *testing.B) {
	g := randomGraph(1000, 12000, 1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = PageRank(g, PageRankOpts{Teleport: TeleportE1})
	}
}

func BenchmarkHITS1k(b *testing.B) {
	g := randomGraph(1000, 12000, 1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = HITS(g, 0, 0)
	}
}

func BenchmarkSubgraph(b *testing.B) {
	g := randomGraph(5000, 60000, 2)
	nodes := make([]int, 500)
	for i := range nodes {
		nodes[i] = i * 10
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = g.Subgraph(nodes)
	}
}

func BenchmarkSubgraphScratch(b *testing.B) {
	g := randomGraph(5000, 60000, 2)
	nodes := make([]int, 500)
	for i := range nodes {
		nodes[i] = i * 10
	}
	s := NewScratch()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = g.SubgraphInto(nodes, s)
	}
}

// BenchmarkSubgraphPageRankPipeline measures the full per-context offline
// pipeline (extract induced subgraph, run PageRank) with and without the
// reusable arena — the unit of work prestige.ScoreAllParallel repeats per
// context. BENCH_PR3.json records the before/after numbers.
func BenchmarkSubgraphPageRankPipeline(b *testing.B) {
	g := randomGraph(5000, 60000, 2)
	nodes := make([]int, 500)
	for i := range nodes {
		nodes[i] = i * 10
	}
	b.Run("map-alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sub, _ := g.Subgraph(nodes)
			_ = PageRank(sub, PageRankOpts{})
		}
	})
	b.Run("scratch", func(b *testing.B) {
		s := NewScratch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sub, _ := g.SubgraphInto(nodes, s)
			_ = PageRankScratch(sub, PageRankOpts{}, s)
		}
	})
}

func BenchmarkBibliographicCoupling(b *testing.B) {
	g := randomGraph(2000, 30000, 3)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.BibliographicCoupling(i%2000, (i*7+13)%2000)
	}
}
