package citegraph

// Scratch is a reusable arena for the per-context pipeline of subgraph
// extraction followed by PageRank. The offline prestige step runs that
// pipeline over thousands of induced per-context subgraphs; with a Scratch
// per worker, the position table, adjacency lists and rank vectors are
// allocated once and reused across contexts instead of being rebuilt from
// maps for every context.
//
// A Scratch is NOT safe for concurrent use: give each goroutine its own
// (prestige pools them per worker). Everything returned by the
// scratch-accepting variants — the subgraph, the node mapping, the rank
// vector — aliases the arena and is only valid until the next call that
// uses the same Scratch; callers must copy out anything they keep.
type Scratch struct {
	// pos is the dense node→subgraph-index table over the parent graph's
	// nodes (-1 = not in the subgraph). It replaces the map[int]int the
	// map-based Subgraph builds per call, and is sparse-reset after each
	// extraction so growth is the only O(parent n) work ever done.
	pos []int32
	// uniq backs the new-index→original-node mapping.
	uniq []int
	// sub is the arena-owned subgraph; its adjacency rows keep their
	// capacity across extractions.
	sub Graph
	// p and next back the PageRank power iteration.
	p, next []float64
	// ints is a general node-ID buffer (Ints) for callers converting typed
	// IDs to graph nodes without a per-call allocation.
	ints []int
}

// NewScratch returns an empty arena; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// Ints returns a length-n reusable int buffer (contents unspecified). It
// aliases the arena like everything else Scratch hands out.
func (s *Scratch) Ints(n int) []int {
	if cap(s.ints) < n {
		s.ints = make([]int, n)
	}
	s.ints = s.ints[:n]
	return s.ints
}

// growPos ensures the position table covers nodes [0,n) with -1 entries.
// Existing entries are already -1 (sparse reset invariant).
func (s *Scratch) growPos(n int) {
	if len(s.pos) >= n {
		return
	}
	old := len(s.pos)
	if cap(s.pos) >= n {
		s.pos = s.pos[:n]
	} else {
		grown := make([]int32, n)
		copy(grown, s.pos)
		s.pos = grown
	}
	for i := old; i < n; i++ {
		s.pos[i] = -1
	}
}

// reset prepares the arena-owned subgraph for n nodes, truncating each
// adjacency row to zero length while keeping its capacity.
func (g *Graph) reset(n int) {
	g.n = n
	if cap(g.out) < n {
		g.out = append(g.out[:cap(g.out)], make([][]int32, n-cap(g.out))...)
		g.in = append(g.in[:cap(g.in)], make([][]int32, n-cap(g.in))...)
	}
	g.out = g.out[:n]
	g.in = g.in[:n]
	for i := 0; i < n; i++ {
		g.out[i] = g.out[i][:0]
		g.in[i] = g.in[i][:0]
	}
}

// SubgraphInto is Subgraph writing into the arena: the induced subgraph
// over nodes (deduplicated, out-of-range dropped) plus the new-index→
// original-node mapping, both aliasing s. Edge and node order — and
// therefore every float result computed over the subgraph — are identical
// to Subgraph's. The parent graph must not contain duplicate edges (AddEdge
// guarantees this), which lets the extraction append adjacency directly
// instead of dedup-scanning per edge.
func (g *Graph) SubgraphInto(nodes []int, s *Scratch) (*Graph, []int) {
	s.growPos(g.n)
	uniq := s.uniq[:0]
	for _, n := range nodes {
		if n < 0 || n >= g.n || s.pos[n] >= 0 {
			continue
		}
		s.pos[n] = int32(len(uniq))
		uniq = append(uniq, n)
	}
	s.uniq = uniq
	sg := &s.sub
	sg.reset(len(uniq))
	for newI, origI := range uniq {
		for _, j := range g.out[origI] {
			if newJ := s.pos[j]; newJ >= 0 {
				sg.out[newI] = append(sg.out[newI], newJ)
				sg.in[newJ] = append(sg.in[newJ], int32(newI))
			}
		}
	}
	// Sparse reset: only entries touched by this extraction go back to -1,
	// keeping the table ready for the next call at O(|nodes|) cost.
	for _, n := range uniq {
		s.pos[n] = -1
	}
	return sg, uniq
}

// ranks returns the two length-n iteration vectors, reusing the arena's.
func (s *Scratch) ranks(n int) (p, next []float64) {
	if cap(s.p) < n {
		s.p = make([]float64, n)
		s.next = make([]float64, n)
	}
	return s.p[:n], s.next[:n]
}
