// Package pattern implements the pattern-based prestige machinery of the
// paper's §3.3: apriori-style frequent-phrase mining over training papers,
// regular ⟨left, middle, right⟩ patterns, side-joined and middle-joined
// extended patterns, the pattern score function (MiddleTypeScore,
// TotalTermScore, PaperCoverage, PatternOccFreq, PatternPaperFreq), and
// pattern→paper matching with per-section match strength.
package pattern

import (
	"sort"
	"sync"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/par"
)

// sectionGap separates sections in the global position space so that a
// phrase can never straddle a section boundary (adjacency steps by exactly
// 1; the gap is 2).
const sectionGap = 2

// Occurrence locates one phrase occurrence inside a document.
type Occurrence struct {
	Doc corpus.PaperID
	// Pos is the global position of the first word (see PosIndex).
	Pos int
	// Section is the paper section containing the occurrence.
	Section corpus.Section
}

// PosIndex is a positional inverted index over the analysed corpus: for
// every stemmed term, the documents and global token positions where it
// occurs. Phrase queries intersect positions, so their cost scales with the
// rarest word of the phrase, not with corpus size.
type PosIndex struct {
	analyzer *corpus.Analyzer
	// positions[word][doc] = sorted global positions.
	positions map[string]map[corpus.PaperID][]int32
	// bounds[doc] = start position of each section, aligned with
	// corpus.Sections; used to map a global position back to its section
	// and to recover window tokens. Indexed by PaperID (IDs are dense).
	bounds [][]int32
	// tokens[doc] = concatenated token stream with section gaps, indexed by
	// global position (gap slots hold "").
	tokens [][]string
	// phrasePool recycles PhraseOccurrences' per-word position-set scratch
	// across calls — pattern matching runs it for every (pattern, context)
	// pair, so the maps are worth pooling.
	phrasePool sync.Pool
	// setAccPool recycles matchSet's per-document accumulator maps the same
	// way (one lease per middle-joined pattern scored).
	setAccPool sync.Pool
}

// NewPosIndex builds the positional index from an analysed corpus with
// GOMAXPROCS workers.
func NewPosIndex(a *corpus.Analyzer) *PosIndex { return NewPosIndexWorkers(a, 0) }

// NewPosIndexWorkers is NewPosIndex with explicit build parallelism: papers
// are split into contiguous shards, each worker builds its shard's position
// maps, token streams and section bounds, and the per-shard position maps
// are merged afterwards. The merged index is identical at every worker
// count — every (word, doc) entry is produced by exactly one shard (docs
// are partitioned), so the merge writes disjoint keys, and the per-doc
// position slices are built in the same ascending order as the sequential
// build. workers <= 0 selects GOMAXPROCS.
func NewPosIndexWorkers(a *corpus.Analyzer, workers int) *PosIndex {
	n := a.Corpus().Len()
	ix := &PosIndex{
		analyzer:  a,
		positions: make(map[string]map[corpus.PaperID][]int32),
		bounds:    make([][]int32, n),
		tokens:    make([][]string, n),
	}
	papers := a.Corpus().Papers()
	shards := par.Shards(len(papers), workers)
	locals := make([]map[string]map[corpus.PaperID][]int32, len(shards))
	par.ForShards(shards, func(si int, sh par.Shard) {
		local := make(map[string]map[corpus.PaperID][]int32)
		for i := sh.Lo; i < sh.Hi; i++ {
			p := papers[i]
			f := a.Features(p.ID)
			var stream []string
			var bounds []int32
			for _, s := range corpus.Sections {
				if len(stream) > 0 {
					for g := 0; g < sectionGap; g++ {
						stream = append(stream, "")
					}
				}
				bounds = append(bounds, int32(len(stream)))
				stream = append(stream, f.Tokens[s]...)
			}
			ix.bounds[p.ID] = bounds
			ix.tokens[p.ID] = stream
			for pos, w := range stream {
				if w == "" {
					continue
				}
				m := local[w]
				if m == nil {
					m = make(map[corpus.PaperID][]int32)
					local[w] = m
				}
				m[p.ID] = append(m[p.ID], int32(pos))
			}
		}
		locals[si] = local
	})
	// Merge shard maps; (word, doc) keys are disjoint across shards, so the
	// first shard seen for a word donates its inner map wholesale and later
	// shards insert fresh doc keys into it.
	for _, local := range locals {
		for w, byDoc := range local {
			g := ix.positions[w]
			if g == nil {
				ix.positions[w] = byDoc
				continue
			}
			for d, ps := range byDoc {
				g[d] = ps
			}
		}
	}
	return ix
}

// Analyzer returns the analyzer the index was built from.
func (ix *PosIndex) Analyzer() *corpus.Analyzer { return ix.analyzer }

// DocsWithWord returns the IDs of documents containing the word, sorted.
func (ix *PosIndex) DocsWithWord(w string) []corpus.PaperID {
	m := ix.positions[w]
	out := make([]corpus.PaperID, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WordDocFreq returns in how many documents the word occurs.
func (ix *PosIndex) WordDocFreq(w string) int { return len(ix.positions[w]) }

// SectionOf maps a document-global position back to its section.
func (ix *PosIndex) SectionOf(doc corpus.PaperID, pos int) corpus.Section {
	bounds := ix.bounds[doc]
	sec := corpus.Sections[0]
	for i, b := range bounds {
		if pos >= int(b) {
			sec = corpus.Sections[i]
		}
	}
	return sec
}

// phraseScratch holds the per-word position sets PhraseOccurrences builds
// while verifying word adjacency. Pooled per PosIndex: pattern matching
// runs a phrase query for every (pattern, context) pair, and reusing the
// maps (cleared per document) avoids re-allocating them millions of times.
type phraseScratch struct {
	sets []map[int32]bool
}

// PhraseOccurrences finds all contiguous occurrences of the stemmed word
// sequence across the corpus (or within the docs set if non-nil). Returns
// occurrences grouped per document in position order. Safe for concurrent
// use.
func (ix *PosIndex) PhraseOccurrences(words []string, within map[corpus.PaperID]bool) map[corpus.PaperID][]Occurrence {
	if len(words) == 0 {
		return nil
	}
	// Drive from the rarest word to minimise verification work.
	rarest := 0
	for i, w := range words {
		if ix.WordDocFreq(w) < ix.WordDocFreq(words[rarest]) {
			rarest = i
		}
	}
	sc, _ := ix.phrasePool.Get().(*phraseScratch)
	if sc == nil {
		sc = &phraseScratch{}
	}
	defer ix.phrasePool.Put(sc)
	for len(sc.sets) < len(words) {
		sc.sets = append(sc.sets, nil)
	}
	sets := sc.sets[:len(words)]
	driver := ix.positions[words[rarest]]
	out := make(map[corpus.PaperID][]Occurrence)
	for doc, drvPositions := range driver {
		if within != nil && !within[doc] {
			continue
		}
		// Collect the other words' position sets for this doc, reusing the
		// pooled maps (cleared before each fill; stale entries from an
		// earlier document are never read because every non-rarest index is
		// refilled before the match loop runs).
		ok := true
		for i, w := range words {
			if i == rarest {
				continue
			}
			ps := ix.positions[w][doc]
			if len(ps) == 0 {
				ok = false
				break
			}
			set := sets[i]
			if set == nil {
				set = make(map[int32]bool, len(ps))
				sets[i] = set
			} else {
				clear(set)
			}
			for _, p := range ps {
				set[p] = true
			}
		}
		if !ok {
			continue
		}
		var occs []Occurrence
		for _, dp := range drvPositions {
			start := dp - int32(rarest)
			match := true
			for i := range words {
				if i == rarest {
					continue
				}
				if !sets[i][start+int32(i)] {
					match = false
					break
				}
			}
			if match {
				occs = append(occs, Occurrence{
					Doc:     doc,
					Pos:     int(start),
					Section: ix.SectionOf(doc, int(start)),
				})
			}
		}
		if len(occs) > 0 {
			sort.Slice(occs, func(i, j int) bool { return occs[i].Pos < occs[j].Pos })
			out[doc] = occs
		}
	}
	return out
}

// Window returns up to w non-gap tokens on each side of the span
// [pos, pos+length) in the document's global stream, never crossing into a
// neighbouring document.
func (ix *PosIndex) Window(doc corpus.PaperID, pos, length, w int) (left, right []string) {
	stream := ix.tokens[doc]
	for i := pos - 1; i >= 0 && len(left) < w; i-- {
		if stream[i] == "" {
			break // stop at section boundary
		}
		left = append([]string{stream[i]}, left...)
	}
	for i := pos + length; i < len(stream) && len(right) < w; i++ {
		if stream[i] == "" {
			break
		}
		right = append(right, stream[i])
	}
	return left, right
}

// DocFreqOfPhrase returns in how many documents the phrase occurs.
func (ix *PosIndex) DocFreqOfPhrase(words []string) int {
	return len(ix.PhraseOccurrences(words, nil))
}
