package pattern

import (
	"sort"
	"strings"

	"ctxsearch/internal/corpus"
)

// FreqPhrase is a frequent contiguous phrase mined from a document set.
type FreqPhrase struct {
	Words []string
	// Support is the number of distinct documents containing the phrase.
	Support int
	// Occurrences is the total number of occurrences across documents.
	Occurrences int
}

// Key returns the canonical space-joined phrase.
func (f FreqPhrase) Key() string { return strings.Join(f.Words, " ") }

// MineConfig configures frequent-phrase mining.
type MineConfig struct {
	// MinSupport is the minimum number of distinct documents a phrase must
	// occur in (≥ 1).
	MinSupport int
	// MaxLen caps phrase length in words.
	MaxLen int
}

// MineFrequentPhrases runs apriori-style level-wise mining of contiguous
// phrases over the given documents. Counting scans the documents' token
// streams once per level (cost O(token mass · MaxLen)); a (k+1)-gram is
// counted only when both its k-prefix and k-suffix were frequent at the
// previous level — the apriori downward-closure property for contiguous
// sequences, which prunes the candidate space without any corpus-wide
// queries.
//
// Results are sorted by descending support, then occurrences, then phrase
// text for determinism.
func MineFrequentPhrases(ix *PosIndex, docs []corpus.PaperID, cfg MineConfig) []FreqPhrase {
	if cfg.MinSupport < 1 {
		cfg.MinSupport = 1
	}
	if cfg.MaxLen < 1 {
		cfg.MaxLen = 3
	}
	uniq := make([]corpus.PaperID, 0, len(docs))
	seenDoc := make(map[corpus.PaperID]bool, len(docs))
	for _, d := range docs {
		if !seenDoc[d] {
			seenDoc[d] = true
			uniq = append(uniq, d)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })

	type stat struct{ support, occ int }
	var out []FreqPhrase
	prevFrequent := map[string]bool{} // keys of frequent (k)-grams

	for k := 1; k <= cfg.MaxLen; k++ {
		counts := make(map[string]*stat)
		for _, d := range uniq {
			toks := ix.tokens[d]
			seen := map[string]bool{}
			for i := 0; i+k <= len(toks); i++ {
				ok := true
				for j := i; j < i+k; j++ {
					if toks[j] == "" { // section gap
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				key := strings.Join(toks[i:i+k], " ")
				if k > 1 {
					// Apriori pruning on prefix and suffix.
					prefix := strings.Join(toks[i:i+k-1], " ")
					suffix := strings.Join(toks[i+1:i+k], " ")
					if !prevFrequent[prefix] || !prevFrequent[suffix] {
						continue
					}
				}
				s := counts[key]
				if s == nil {
					s = &stat{}
					counts[key] = s
				}
				s.occ++
				if !seen[key] {
					seen[key] = true
					s.support++
				}
			}
		}
		frequent := map[string]bool{}
		for key, s := range counts {
			if s.support >= cfg.MinSupport {
				frequent[key] = true
				out = append(out, FreqPhrase{Words: strings.Fields(key), Support: s.support, Occurrences: s.occ})
			}
		}
		if len(frequent) == 0 {
			break
		}
		prevFrequent = frequent
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if out[i].Occurrences != out[j].Occurrences {
			return out[i].Occurrences > out[j].Occurrences
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}
