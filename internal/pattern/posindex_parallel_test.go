package pattern

import (
	"reflect"
	"testing"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// TestParallelPosIndexMatchesSequential is the golden equivalence test for
// the sharded positional-index build: position maps, section bounds and
// token streams must be identical at every worker count.
func TestParallelPosIndexMatchesSequential(t *testing.T) {
	o, err := ontology.Generate(ontology.GenConfig{Seed: 3, NumTerms: 60, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(120))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	seq := NewPosIndexWorkers(a, 1)
	for _, workers := range []int{2, 3, 8} {
		par := NewPosIndexWorkers(a, workers)
		if !reflect.DeepEqual(seq.positions, par.positions) {
			t.Fatalf("workers=%d: position maps differ", workers)
		}
		if !reflect.DeepEqual(seq.bounds, par.bounds) {
			t.Fatalf("workers=%d: section bounds differ", workers)
		}
		if !reflect.DeepEqual(seq.tokens, par.tokens) {
			t.Fatalf("workers=%d: token streams differ", workers)
		}
	}
}

// TestPhraseOccurrencesScratchReuse runs the same phrase query repeatedly
// (and once concurrently) to exercise the pooled scratch path — results
// must be identical across leases.
func TestPhraseOccurrencesScratchReuse(t *testing.T) {
	a, ix := tinyCorpus(t)
	phrase := a.Tokenizer().Terms("rna polymerase")
	first := ix.PhraseOccurrences(phrase, nil)
	for i := 0; i < 10; i++ {
		if got := ix.PhraseOccurrences(phrase, nil); !reflect.DeepEqual(first, got) {
			t.Fatalf("iteration %d: pooled scratch changed results", i)
		}
	}
	done := make(chan map[corpus.PaperID][]Occurrence, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- ix.PhraseOccurrences(phrase, nil) }()
	}
	for i := 0; i < 8; i++ {
		if got := <-done; !reflect.DeepEqual(first, got) {
			t.Fatal("concurrent phrase query changed results")
		}
	}
}
