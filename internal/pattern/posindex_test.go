package pattern

import (
	"testing"

	"ctxsearch/internal/corpus"
)

// tinyCorpus builds a small corpus with known phrase placement. Note the
// analyzer stems and drops stopwords, so tests use stem-stable words.
func tinyCorpus(t *testing.T) (*corpus.Analyzer, *PosIndex) {
	t.Helper()
	papers := []*corpus.Paper{
		{ID: 0, Title: "rna polymerase kinase", Abstract: "kinase rna polymerase assay", Body: "unrelated words here entirely", IndexTerms: []string{"rna polymerase"}, Authors: []string{"a b"}},
		{ID: 1, Title: "dna helicase", Abstract: "rna polymerase dna helicase", Body: "rna polymerase rna polymerase", Authors: []string{"c d"}},
		{ID: 2, Title: "metallurgy corrosion", Abstract: "steel alloys", Body: "corrosion steel", Authors: []string{"e f"}},
	}
	c, err := corpus.NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	return a, NewPosIndex(a)
}

func TestPhraseOccurrences(t *testing.T) {
	a, ix := tinyCorpus(t)
	phrase := a.Tokenizer().Terms("rna polymerase")
	occs := ix.PhraseOccurrences(phrase, nil)
	if len(occs) != 2 {
		t.Fatalf("docs with phrase = %d, want 2 (docs 0 and 1): %v", len(occs), occs)
	}
	// Doc 0: title, abstract, index terms → 3 occurrences.
	if len(occs[0]) != 3 {
		t.Fatalf("doc 0 occurrences = %d, want 3: %v", len(occs[0]), occs[0])
	}
	// Doc 1: abstract + body twice → 3 occurrences.
	if len(occs[1]) != 3 {
		t.Fatalf("doc 1 occurrences = %d, want 3: %v", len(occs[1]), occs[1])
	}
	// Section resolution: first occurrence in doc 0 is the title.
	if occs[0][0].Section != corpus.SecTitle {
		t.Fatalf("first occurrence section = %v", occs[0][0].Section)
	}
}

func TestPhraseOccurrencesWithin(t *testing.T) {
	a, ix := tinyCorpus(t)
	phrase := a.Tokenizer().Terms("rna polymerase")
	occs := ix.PhraseOccurrences(phrase, map[corpus.PaperID]bool{1: true})
	if len(occs) != 1 || len(occs[1]) == 0 {
		t.Fatalf("within filter broken: %v", occs)
	}
}

func TestPhraseDoesNotCrossSections(t *testing.T) {
	a, ix := tinyCorpus(t)
	// Doc 0 title ends "...kinase", abstract begins "kinase ...". The
	// bigram "kinase kinase" must NOT match across the boundary.
	phrase := a.Tokenizer().Terms("kinase kinase")
	if occs := ix.PhraseOccurrences(phrase, nil); len(occs) != 0 {
		t.Fatalf("phrase crossed section boundary: %v", occs)
	}
}

func TestDocFreqOfPhrase(t *testing.T) {
	a, ix := tinyCorpus(t)
	if got := ix.DocFreqOfPhrase(a.Tokenizer().Terms("rna polymerase")); got != 2 {
		t.Fatalf("df = %d", got)
	}
	if got := ix.DocFreqOfPhrase([]string{"absent"}); got != 0 {
		t.Fatalf("absent df = %d", got)
	}
	if got := ix.DocFreqOfPhrase(nil); got != 0 {
		t.Fatalf("nil phrase df = %d", got)
	}
}

func TestWindowStopsAtSectionBoundary(t *testing.T) {
	a, ix := tinyCorpus(t)
	phrase := a.Tokenizer().Terms("rna polymerase")
	occs := ix.PhraseOccurrences(phrase, map[corpus.PaperID]bool{0: true})
	first := occs[0][0] // title occurrence at position 0
	l, r := ix.Window(0, first.Pos, len(phrase), 5)
	if len(l) != 0 {
		t.Fatalf("left window at document start = %v", l)
	}
	// Title is "rna polymeras kinas" (stemmed) — right window is only
	// "kinas", then the section gap stops it.
	if len(r) != 1 {
		t.Fatalf("right window crossed section boundary: %v", r)
	}
}

func TestWordDocFreq(t *testing.T) {
	a, ix := tinyCorpus(t)
	stem := a.Tokenizer().Terms("corrosion")[0]
	if got := ix.WordDocFreq(stem); got != 1 {
		t.Fatalf("WordDocFreq(corrosion) = %d", got)
	}
	if docs := ix.DocsWithWord(stem); len(docs) != 1 || docs[0] != 2 {
		t.Fatalf("DocsWithWord = %v", docs)
	}
}
