package pattern

import (
	"testing"

	"ctxsearch/internal/corpus"
)

func miningCorpus(t *testing.T) (*corpus.Analyzer, *PosIndex) {
	t.Helper()
	// "zinc finger protein" appears in both docs; "binds zinc" in one.
	papers := []*corpus.Paper{
		{ID: 0, Title: "zinc finger protein domains", Abstract: "zinc finger protein binds zinc", Body: "study of zinc finger protein structure", Authors: []string{"a b"}},
		{ID: 1, Title: "novel zinc finger protein", Abstract: "zinc finger protein function", Body: "more text about transport", Authors: []string{"c d"}},
		{ID: 2, Title: "unrelated paper", Abstract: "nothing shared", Body: "completely different content", Authors: []string{"e f"}},
	}
	c, err := corpus.NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	return a, NewPosIndex(a)
}

func TestMineFrequentPhrases(t *testing.T) {
	a, ix := miningCorpus(t)
	phrases := MineFrequentPhrases(ix, []corpus.PaperID{0, 1}, MineConfig{MinSupport: 2, MaxLen: 3})
	if len(phrases) == 0 {
		t.Fatal("no frequent phrases mined")
	}
	byKey := map[string]FreqPhrase{}
	for _, p := range phrases {
		byKey[p.Key()] = p
	}
	want := a.Tokenizer().Terms("zinc finger protein")
	key := want[0] + " " + want[1] + " " + want[2]
	fp, ok := byKey[key]
	if !ok {
		t.Fatalf("trigram %q not mined; got %v", key, phrases)
	}
	if fp.Support != 2 {
		t.Fatalf("trigram support = %d, want 2", fp.Support)
	}
	if fp.Occurrences < 4 {
		t.Fatalf("trigram occurrences = %d, want ≥ 4", fp.Occurrences)
	}
	// Apriori property: every sub-phrase of a frequent phrase is frequent.
	for _, sub := range [][]string{{want[0]}, {want[1]}, {want[2]}, {want[0], want[1]}, {want[1], want[2]}} {
		k := ""
		for i, w := range sub {
			if i > 0 {
				k += " "
			}
			k += w
		}
		if _, ok := byKey[k]; !ok {
			t.Errorf("sub-phrase %q missing (apriori closure violated)", k)
		}
	}
	// "binds zinc" occurs in only one doc → must be absent at MinSupport 2.
	bz := a.Tokenizer().Terms("binds zinc")
	if _, ok := byKey[bz[0]+" "+bz[1]]; ok {
		t.Error("sub-support phrase mined")
	}
}

func TestMineRespectsMaxLen(t *testing.T) {
	_, ix := miningCorpus(t)
	phrases := MineFrequentPhrases(ix, []corpus.PaperID{0, 1}, MineConfig{MinSupport: 2, MaxLen: 1})
	for _, p := range phrases {
		if len(p.Words) > 1 {
			t.Fatalf("MaxLen violated: %v", p.Words)
		}
	}
}

func TestMineDeterministicOrder(t *testing.T) {
	_, ix := miningCorpus(t)
	a := MineFrequentPhrases(ix, []corpus.PaperID{0, 1}, MineConfig{MinSupport: 1, MaxLen: 2})
	b := MineFrequentPhrases(ix, []corpus.PaperID{0, 1}, MineConfig{MinSupport: 1, MaxLen: 2})
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i].Key() != b[i].Key() || a[i].Support != b[i].Support {
			t.Fatalf("order not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Sorted by descending support.
	for i := 1; i < len(a); i++ {
		if a[i].Support > a[i-1].Support {
			t.Fatalf("not sorted by support: %v", a)
		}
	}
}

func TestMineEmptyDocs(t *testing.T) {
	_, ix := miningCorpus(t)
	if got := MineFrequentPhrases(ix, nil, MineConfig{MinSupport: 1, MaxLen: 2}); len(got) != 0 {
		t.Fatalf("empty doc set mined %v", got)
	}
}
