package pattern

import (
	"testing"

	"ctxsearch/internal/corpus"
)

func TestScorePapersRankTrainingAndMentions(t *testing.T) {
	o, c, _, ix := patternFixture(t)
	df := TermWordDF(o, ix)
	set := Build(ix, o, "GO:2", c.EvidencePapers("GO:2"), df, DefaultConfig())
	scores := set.ScorePapers(ix, nil, DefaultMatchConfig())
	// Papers 0–2 mention "zinc finger binding"; 3–4 do not.
	for _, id := range []corpus.PaperID{0, 1, 2} {
		if scores[id] <= 0 {
			t.Fatalf("paper %d should match patterns: %v", id, scores)
		}
	}
	if scores[4] != 0 {
		t.Fatalf("metallurgy paper matched: %v", scores[4])
	}
	// The metallurgy-free distractor about calcium may pick up weak matches
	// via shared frequent words, but must score below the training papers.
	if scores[3] >= scores[0] {
		t.Fatalf("distractor outranked training paper: %v", scores)
	}
}

func TestScorePapersWithin(t *testing.T) {
	o, c, _, ix := patternFixture(t)
	df := TermWordDF(o, ix)
	set := Build(ix, o, "GO:2", c.EvidencePapers("GO:2"), df, DefaultConfig())
	within := map[corpus.PaperID]bool{1: true}
	scores := set.ScorePapers(ix, within, DefaultMatchConfig())
	for id := range scores {
		if id != 1 {
			t.Fatalf("score outside within set: %v", scores)
		}
	}
}

func TestScorePapersMiddleOnly(t *testing.T) {
	o, c, _, ix := patternFixture(t)
	df := TermWordDF(o, ix)
	set := Build(ix, o, "GO:2", c.EvidencePapers("GO:2"), df, DefaultConfig())
	full := set.ScorePapers(ix, nil, DefaultMatchConfig())
	simplified := DefaultMatchConfig()
	simplified.MiddleOnly = true
	simple := set.ScorePapers(ix, nil, simplified)
	// Simplified matching must still find the training papers.
	if simple[0] <= 0 || simple[1] <= 0 {
		t.Fatalf("simplified matching lost training papers: %v", simple)
	}
	// And it must not use extended patterns: scores come from regular
	// patterns only, so they can only be ≤ the full score whenever the full
	// config found the same regular matches plus extras.
	for id, s := range simple {
		if s > full[id]+1e-9 {
			// Possible only if window corroboration reduced full strength;
			// the 0.7 floor keeps regular matches cheaper in middle-only
			// mode impossible to exceed by more than 1/0.7.
			if s > full[id]/0.7+1e-9 {
				t.Fatalf("middle-only score exceeds plausible bound for %d: %v > %v", id, s, full[id])
			}
		}
	}
}

func TestSectionWeightsInfluenceStrength(t *testing.T) {
	// A pattern matching only in the body must score lower than the same
	// match in a title.
	papers := []*corpus.Paper{
		{ID: 0, Title: "zinc finger", Abstract: "x", Body: "y", Authors: []string{"a"}},
		{ID: 1, Title: "other work", Abstract: "x", Body: "zinc finger", Authors: []string{"b"}},
	}
	c, err := corpus.NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	ix := NewPosIndex(a)
	mid := a.Tokenizer().Terms("zinc finger")
	set := &Set{Patterns: []*Pattern{{Kind: Regular, Middle: mid, Score: 1, Left: map[string]bool{}, Right: map[string]bool{}}}}
	scores := set.ScorePapers(ix, nil, DefaultMatchConfig())
	if scores[0] <= scores[1] {
		t.Fatalf("title match must outweigh body match: %v", scores)
	}
}

func TestMatchSetFractionThreshold(t *testing.T) {
	papers := []*corpus.Paper{
		{ID: 0, Title: "alpha beta gamma", Abstract: "x", Body: "y", Authors: []string{"a"}},
		{ID: 1, Title: "alpha only here", Abstract: "x", Body: "y", Authors: []string{"b"}},
	}
	c, err := corpus.NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	ix := NewPosIndex(a)
	set := &Set{Patterns: []*Pattern{{
		Kind:   MiddleJoined,
		Middle: []string{"alpha", "beta", "gamma"},
		Score:  1,
		Left:   map[string]bool{},
		Right:  map[string]bool{},
	}}}
	scores := set.ScorePapers(ix, nil, DefaultMatchConfig())
	if scores[0] <= 0 {
		t.Fatalf("full set presence must match: %v", scores)
	}
	// Paper 1 has 1/3 < MinSetFraction 0.5 → no match.
	if scores[1] != 0 {
		t.Fatalf("sub-threshold set matched: %v", scores)
	}
}

func TestContextOverlap(t *testing.T) {
	if got := contextOverlap(nil, nil, nil, nil); got != 0 {
		t.Fatalf("empty window overlap = %v", got)
	}
	got := contextOverlap([]string{"a", "x"}, []string{"b"}, map[string]bool{"a": true}, map[string]bool{"b": true})
	if got != 2.0/3 {
		t.Fatalf("overlap = %v, want 2/3", got)
	}
}

func TestKindString(t *testing.T) {
	if Regular.String() != "regular" || SideJoined.String() != "side-joined" || MiddleJoined.String() != "middle-joined" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must stringify")
	}
}
