package pattern

import (
	"strings"
	"testing"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// patternFixture builds an ontology with a term whose name appears in the
// training papers, plus distractor papers.
func patternFixture(t *testing.T) (*ontology.Ontology, *corpus.Corpus, *corpus.Analyzer, *PosIndex) {
	t.Helper()
	o := ontology.New()
	mustAdd := func(tm ontology.Term) {
		t.Helper()
		if err := o.Add(tm); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(ontology.Term{ID: "GO:1", Name: "molecular function"})
	mustAdd(ontology.Term{ID: "GO:2", Name: "zinc finger binding", Parents: []ontology.TermID{"GO:1"}})
	mustAdd(ontology.Term{ID: "GO:3", Name: "calcium transport", Parents: []ontology.TermID{"GO:1"}})
	if err := o.Build(); err != nil {
		t.Fatal(err)
	}
	papers := []*corpus.Paper{
		// Training papers for GO:2 — term name appears contiguously.
		{ID: 0, Title: "zinc finger binding domains", Abstract: "we study zinc finger binding in cells with tremendous care", Body: "the zinc finger binding assay revealed strong effects", Authors: []string{"a b"}, Topics: []ontology.TermID{"GO:2"}, Evidence: true},
		{ID: 1, Title: "novel zinc finger binding factors", Abstract: "zinc finger binding proteins are common", Body: "cells show zinc finger binding activity everywhere", Authors: []string{"c d"}, Topics: []ontology.TermID{"GO:2"}, Evidence: true},
		// A paper that mentions the phrase but is not training.
		{ID: 2, Title: "a zinc finger binding survey", Abstract: "survey text", Body: "body text only", Authors: []string{"e f"}, Topics: []ontology.TermID{"GO:2"}},
		// Distractors.
		{ID: 3, Title: "calcium transport channels", Abstract: "calcium transport in muscle", Body: "transport of calcium ions", Authors: []string{"g h"}, Topics: []ontology.TermID{"GO:3"}, Evidence: true},
		{ID: 4, Title: "metallurgy of steel", Abstract: "corrosion and alloys", Body: "steel is strong", Authors: []string{"i j"}},
	}
	c, err := corpus.NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	return o, c, a, NewPosIndex(a)
}

func TestBuildPatterns(t *testing.T) {
	o, c, _, ix := patternFixture(t)
	df := TermWordDF(o, ix)
	set := Build(ix, o, "GO:2", c.EvidencePapers("GO:2"), df, DefaultConfig())
	if len(set.Patterns) == 0 {
		t.Fatal("no patterns built")
	}
	// The full term name must appear as a regular pattern's middle, typed
	// as containing term words.
	foundName := false
	for _, p := range set.Patterns {
		if p.Kind == Regular && strings.Contains(p.MiddleKey(), "zinc") && strings.Contains(p.MiddleKey(), "bind") {
			foundName = true
			if !p.HasTermWords {
				t.Error("term-name pattern not flagged HasTermWords")
			}
			if p.Score <= 0 {
				t.Error("pattern score must be positive")
			}
			if len(p.Left) == 0 && len(p.Right) == 0 {
				t.Error("term-name pattern collected no context words")
			}
		}
	}
	if !foundName {
		t.Fatalf("term-name pattern missing: %v", middleKeys(set))
	}
	// Scores sorted descending.
	for i := 1; i < len(set.Patterns); i++ {
		if set.Patterns[i].Score > set.Patterns[i-1].Score {
			t.Fatal("patterns not sorted by score")
		}
	}
}

func middleKeys(s *Set) []string {
	var out []string
	for _, p := range s.Patterns {
		out = append(out, p.Kind.String()+":"+p.MiddleKey())
	}
	return out
}

func TestBuildEmptyTraining(t *testing.T) {
	o, _, _, ix := patternFixture(t)
	df := TermWordDF(o, ix)
	set := Build(ix, o, "GO:2", nil, df, DefaultConfig())
	if len(set.Patterns) != 0 {
		t.Fatalf("patterns from empty training: %v", middleKeys(set))
	}
	set = Build(ix, o, "GO:404", []corpus.PaperID{0}, df, DefaultConfig())
	if len(set.Patterns) != 0 {
		t.Fatal("patterns for unknown term")
	}
}

func TestMiddleTypeScoreOrdering(t *testing.T) {
	// Verify the middle-type criterion directly: both > term-only > freq-only.
	o, _, _, ix := patternFixture(t)
	df := TermWordDF(o, ix)
	ctxSet := map[string]bool{"zinc": true}
	cfg := DefaultConfig()
	mk := func(hasTerm, hasFreq bool) float64 {
		p := &Pattern{Middle: []string{"zinc"}, HasTermWords: hasTerm, HasFreqWords: hasFreq}
		// Fix the other criteria: same middle, same frequencies.
		return regularScore(p, ix, ctxSet, df, 2, 1, 1, cfg)
	}
	both := mk(true, true)
	termOnly := mk(true, false)
	freqOnly := mk(false, true)
	if !(both > termOnly && termOnly > freqOnly) {
		t.Fatalf("middle type ordering violated: both=%v term=%v freq=%v", both, termOnly, freqOnly)
	}
}

func TestPaperCoveragePenalisesCommonMiddles(t *testing.T) {
	o, _, a, ix := patternFixture(t)
	df := TermWordDF(o, ix)
	cfg := DefaultConfig()
	// "zinc" (2 docs) vs a word in all docs would score lower coverage-wise.
	rare := a.Tokenizer().Terms("corrosion") // 1 doc
	common := a.Tokenizer().Terms("cells")   // 2 docs
	pRare := &Pattern{Middle: rare, HasFreqWords: true}
	pCommon := &Pattern{Middle: common, HasFreqWords: true}
	sRare := regularScore(pRare, ix, map[string]bool{}, df, 2, 1, 1, cfg)
	sCommon := regularScore(pCommon, ix, map[string]bool{}, df, 2, 1, 1, cfg)
	if sRare <= sCommon {
		t.Fatalf("coverage penalty inverted: rare=%v common=%v", sRare, sCommon)
	}
}

func TestExtendedPatterns(t *testing.T) {
	// Two regular patterns arranged to trigger both join types.
	p1 := &Pattern{
		Kind:   Regular,
		Left:   map[string]bool{"l1": true},
		Middle: []string{"alpha", "beta"},
		Right:  map[string]bool{"shared": true},
		Score:  2,
	}
	p2 := &Pattern{
		Kind:   Regular,
		Left:   map[string]bool{"shared": true, "alpha": true},
		Middle: []string{"gamma"},
		Right:  map[string]bool{"r2": true},
		Score:  3,
	}
	ext := buildExtended([]*Pattern{p1, p2})
	var side, middle *Pattern
	for _, p := range ext {
		switch p.Kind {
		case SideJoined:
			side = p
		case MiddleJoined:
			middle = p
		}
	}
	if side == nil {
		t.Fatal("side-joined pattern not built")
	}
	if side.MiddleKey() != "alpha beta gamma" {
		t.Fatalf("side-joined middle = %q", side.MiddleKey())
	}
	if side.Score != 25 { // (2+3)²
		t.Fatalf("side-joined score = %v, want 25", side.Score)
	}
	if middle == nil {
		t.Fatal("middle-joined pattern not built")
	}
	// p1's middle {alpha,beta}: alpha ∈ p2.Left → DOO1 = 1/2.
	if middle.DOO1 != 0.5 {
		t.Fatalf("DOO1 = %v, want 0.5", middle.DOO1)
	}
	// p2's middle {gamma}: not in p1's tuples → DOO2 = 0.
	if middle.DOO2 != 0 {
		t.Fatalf("DOO2 = %v, want 0", middle.DOO2)
	}
	// Score = 0.5·2 + 0·3 = 1.
	if middle.Score != 1 {
		t.Fatalf("middle-joined score = %v, want 1", middle.Score)
	}
}

func TestDegreeOfOverlap(t *testing.T) {
	if got := degreeOfOverlap(nil, nil, nil); got != 0 {
		t.Fatalf("empty middle DOO = %v", got)
	}
	got := degreeOfOverlap([]string{"a", "b"}, map[string]bool{"a": true}, map[string]bool{"b": true})
	if got != 1 {
		t.Fatalf("full overlap DOO = %v", got)
	}
}

func TestTermWordDF(t *testing.T) {
	o, _, _, ix := patternFixture(t)
	df := TermWordDF(o, ix)
	tok := ix.analyzer.Tokenizer()
	// "binding" stems appear in one term name ("zinc finger binding").
	bind := tok.Terms("binding")[0]
	if df[bind] != 1 {
		t.Fatalf("df[bind] = %d", df[bind])
	}
	// "function" appears in "molecular function" only.
	fn := tok.Terms("function")[0]
	if df[fn] != 1 {
		t.Fatalf("df[function] = %d", df[fn])
	}
}
