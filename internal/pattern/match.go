package pattern

import (
	"ctxsearch/internal/corpus"
)

// MatchConfig configures pattern→paper matching.
type MatchConfig struct {
	// SectionWeights give the match-strength weight of the section
	// containing a match (§3.3: M(P, pt) is influenced by the paper section
	// containing the pattern match). Missing sections weigh 0.
	SectionWeights map[corpus.Section]float64
	// Window is the context window compared against the pattern's
	// left/right tuples.
	Window int
	// MiddleOnly enables the simplified matching of §4 used to build the
	// pattern-based context paper set: only middle tuples are considered
	// and extended patterns are skipped.
	MiddleOnly bool
	// MinSetFraction is the fraction of a middle-joined pattern's word set
	// that must be present in a document for the pattern to match.
	MinSetFraction float64
}

// DefaultMatchConfig returns the match weights used by the experiments:
// title matches are strongest, body matches weakest.
func DefaultMatchConfig() MatchConfig {
	return MatchConfig{
		SectionWeights: map[corpus.Section]float64{
			corpus.SecTitle:      1.0,
			corpus.SecIndexTerms: 0.9,
			corpus.SecAbstract:   0.7,
			corpus.SecBody:       0.4,
		},
		Window:         4,
		MinSetFraction: 0.5,
	}
}

// ScorePapers computes the pattern-based paper score
//
//	Score(P) = Σ_{pt ∈ Ptr(P)} Score(pt) · M(P, pt)
//
// for every paper in `within` (nil = the whole corpus). M(P, pt) combines
// the weight of the best section containing a match with the similarity
// between the pattern and the matching phrase: exact middle matches of
// regular/side-joined patterns weigh the match fully and add a bonus for
// left/right context corroboration; middle-joined (unordered) patterns
// weigh by the fraction of their word set present. Scores are raw —
// callers normalise per context.
func (s *Set) ScorePapers(ix *PosIndex, within map[corpus.PaperID]bool, cfg MatchConfig) map[corpus.PaperID]float64 {
	if cfg.SectionWeights == nil {
		cfg = DefaultMatchConfig()
	}
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	if cfg.MinSetFraction <= 0 {
		cfg.MinSetFraction = 0.5
	}
	scores := make(map[corpus.PaperID]float64)
	for _, p := range s.Patterns {
		switch p.Kind {
		case Regular, SideJoined:
			if cfg.MiddleOnly && p.Kind != Regular {
				continue
			}
			s.matchSequential(ix, p, within, cfg, scores)
		case MiddleJoined:
			if cfg.MiddleOnly {
				continue
			}
			s.matchSet(ix, p, within, cfg, scores)
		}
	}
	return scores
}

// matchSequential handles exact contiguous middle-tuple matches.
func (s *Set) matchSequential(ix *PosIndex, p *Pattern, within map[corpus.PaperID]bool, cfg MatchConfig, scores map[corpus.PaperID]float64) {
	occs := ix.PhraseOccurrences(p.Middle, within)
	for doc, ds := range occs {
		best := 0.0
		for _, oc := range ds {
			w := cfg.SectionWeights[oc.Section]
			if w == 0 {
				continue
			}
			strength := w
			if !cfg.MiddleOnly {
				// Corroborate with the surrounding window: the more of the
				// observed neighbourhood appears in the pattern's
				// left/right tuples, the stronger the match.
				l, r := ix.Window(doc, oc.Pos, len(p.Middle), cfg.Window)
				strength = w * (0.7 + 0.3*contextOverlap(l, r, p.Left, p.Right))
			}
			if strength > best {
				best = strength
			}
		}
		if best > 0 {
			scores[doc] += p.Score * best
		}
	}
}

// matchSet handles middle-joined patterns whose middle is an unordered word
// set: a document matches when at least MinSetFraction of the set is
// present; strength scales with the fraction present and the best section
// weight among the present words.
func (s *Set) matchSet(ix *PosIndex, p *Pattern, within map[corpus.PaperID]bool, cfg MatchConfig, scores map[corpus.PaperID]float64) {
	// The accumulator map is pooled on the index (one lease per
	// middle-joined pattern, across all concurrent scoring workers).
	byDoc, _ := ix.setAccPool.Get().(map[corpus.PaperID]setAcc)
	if byDoc == nil {
		byDoc = make(map[corpus.PaperID]setAcc)
	} else {
		clear(byDoc)
	}
	defer ix.setAccPool.Put(byDoc)
	for _, w := range p.Middle {
		for doc, positions := range ix.positions[w] {
			if within != nil && !within[doc] {
				continue
			}
			a := byDoc[doc]
			a.present++
			for _, pos := range positions {
				if sw := cfg.SectionWeights[ix.SectionOf(doc, int(pos))]; sw > a.bestSec {
					a.bestSec = sw
				}
			}
			byDoc[doc] = a
		}
	}
	need := float64(len(p.Middle)) * cfg.MinSetFraction
	for doc, a := range byDoc {
		f := float64(a.present) / float64(len(p.Middle))
		if float64(a.present) >= need && a.bestSec > 0 {
			scores[doc] += p.Score * a.bestSec * f
		}
	}
}

// setAcc accumulates middle-joined matching state for one document: how
// many of the pattern's words are present and the best section weight seen.
type setAcc struct {
	present int
	bestSec float64
}

// contextOverlap measures how much of the observed window around a match is
// corroborated by the pattern's left/right tuples, in [0,1].
func contextOverlap(l, r []string, left, right map[string]bool) float64 {
	total := len(l) + len(r)
	if total == 0 {
		return 0
	}
	n := 0
	for _, w := range l {
		if left[w] {
			n++
		}
	}
	for _, w := range r {
		if right[w] {
			n++
		}
	}
	return float64(n) / float64(total)
}
