package pattern

import (
	"testing"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

func benchFixture(b *testing.B) (*ontology.Ontology, *corpus.Corpus, *PosIndex) {
	b.Helper()
	o, err := ontology.Generate(ontology.GenConfig{Seed: 3, NumTerms: 80, MaxDepth: 7})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(300))
	if err != nil {
		b.Fatal(err)
	}
	return o, c, NewPosIndex(corpus.NewAnalyzer(c))
}

func BenchmarkPosIndexBuild(b *testing.B) {
	o, _ := ontology.Generate(ontology.GenConfig{Seed: 3, NumTerms: 60, MaxDepth: 6})
	c, _ := corpus.Generate(o, corpus.DefaultGenConfig(150))
	a := corpus.NewAnalyzer(c)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewPosIndex(a)
	}
}

func benchPosIndexBuild(b *testing.B, workers int) {
	o, _ := ontology.Generate(ontology.GenConfig{Seed: 3, NumTerms: 100, MaxDepth: 7})
	c, _ := corpus.Generate(o, corpus.DefaultGenConfig(400))
	a := corpus.NewAnalyzer(c)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewPosIndexWorkers(a, workers)
	}
}

func BenchmarkPosIndexBuildWorkers1(b *testing.B) { benchPosIndexBuild(b, 1) }
func BenchmarkPosIndexBuildWorkers8(b *testing.B) { benchPosIndexBuild(b, 8) }

func BenchmarkPhraseOccurrences(b *testing.B) {
	o, c, ix := benchFixture(b)
	term := c.EvidenceTerms()[0]
	phrase := ix.Analyzer().Tokenizer().Terms(o.Term(term).Name)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ix.PhraseOccurrences(phrase, nil)
	}
}

func BenchmarkMineFrequentPhrases(b *testing.B) {
	_, c, ix := benchFixture(b)
	term := c.EvidenceTerms()[0]
	docs := c.EvidencePapers(term)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MineFrequentPhrases(ix, docs, MineConfig{MinSupport: 2, MaxLen: 3})
	}
}

func BenchmarkBuildPatternSet(b *testing.B) {
	o, c, ix := benchFixture(b)
	term := c.EvidenceTerms()[0]
	df := TermWordDF(o, ix)
	cfg := DefaultConfig()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Build(ix, o, term, c.EvidencePapers(term), df, cfg)
	}
}

func BenchmarkScorePapers(b *testing.B) {
	o, c, ix := benchFixture(b)
	term := c.EvidenceTerms()[0]
	df := TermWordDF(o, ix)
	set := Build(ix, o, term, c.EvidencePapers(term), df, DefaultConfig())
	mcfg := DefaultMatchConfig()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = set.ScorePapers(ix, nil, mcfg)
	}
}
