package pattern

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// Kind distinguishes regular patterns from the two extended kinds of [4].
type Kind int

// Pattern kinds.
const (
	Regular Kind = iota
	SideJoined
	MiddleJoined
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Regular:
		return "regular"
	case SideJoined:
		return "side-joined"
	case MiddleJoined:
		return "middle-joined"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Pattern is a ⟨left, middle, right⟩ textual pattern. Left and Right are
// word *sets* observed around the middle tuple in training papers; Middle is
// a word *sequence* for regular and side-joined patterns and an unordered
// word set (stored as a sorted sequence) for middle-joined patterns.
type Pattern struct {
	Kind   Kind
	Left   map[string]bool
	Middle []string
	Right  map[string]bool

	// Middle-tuple composition, which drives MiddleTypeScore: whether the
	// middle contains context-term words and/or mined frequent-phrase words.
	HasTermWords bool
	HasFreqWords bool

	// Score is the pattern's confidence that it represents the context
	// (§3.3), already combining the middle-type, term-selectivity,
	// paper-coverage and training-frequency criteria.
	Score float64

	// DOO1 and DOO2 record the degrees of overlap for middle-joined
	// patterns (zero otherwise).
	DOO1, DOO2 float64
}

// MiddleKey returns the canonical space-joined middle tuple.
func (p *Pattern) MiddleKey() string { return strings.Join(p.Middle, " ") }

// Set is the pattern set constructed for one context.
type Set struct {
	Term     ontology.TermID
	Patterns []*Pattern
}

// Config configures pattern construction and scoring.
type Config struct {
	// MinSupport is the mining support threshold over training papers.
	MinSupport int
	// MaxPhraseLen caps mined phrase length.
	MaxPhraseLen int
	// Window is the number of words collected on each side of a middle
	// occurrence into the left/right tuples.
	Window int
	// MaxSignificant caps the number of significant terms (and hence
	// regular patterns) per context.
	MaxSignificant int
	// T is the PaperCoverage exponent of RegularPatternScore.
	T float64
	// C is the coefficient of the training-frequency term of BaseScore.
	C float64
	// Extended enables construction of side- and middle-joined patterns.
	Extended bool
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		MinSupport:     2,
		MaxPhraseLen:   3,
		Window:         4,
		MaxSignificant: 12,
		T:              0.35,
		C:              0.5,
		Extended:       true,
	}
}

// TermWordDF counts, for every stemmed word appearing in any ontology term
// name, the number of terms whose name contains it. The inverse is the
// word's selectivity (§3.3 criterion 2).
func TermWordDF(onto *ontology.Ontology, ix *PosIndex) map[string]int {
	df := make(map[string]int)
	tok := ix.analyzer.Tokenizer()
	for _, id := range onto.TermIDs() {
		seen := map[string]bool{}
		for _, w := range tok.Terms(onto.Term(id).Name) {
			if !seen[w] {
				seen[w] = true
				df[w]++
			}
		}
	}
	return df
}

// Build constructs the scored pattern set for one context term from its
// training (annotation evidence) papers. Returns an empty set when the term
// has no training papers or none of the significant terms occur in them.
func Build(ix *PosIndex, onto *ontology.Ontology, term ontology.TermID, training []corpus.PaperID, termWordDF map[string]int, cfg Config) *Set {
	set := &Set{Term: term}
	if len(training) == 0 || onto.Term(term) == nil {
		return set
	}
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	if cfg.MaxSignificant <= 0 {
		cfg.MaxSignificant = 12
	}
	tok := ix.analyzer.Tokenizer()
	ctxWords := tok.Terms(onto.Term(term).Name)
	ctxSet := make(map[string]bool, len(ctxWords))
	for _, w := range ctxWords {
		ctxSet[w] = true
	}
	trainSet := make(map[corpus.PaperID]bool, len(training))
	for _, d := range training {
		trainSet[d] = true
	}

	// Significant terms, source (i): contiguous subsequences of the context
	// term words (the full name first, then shorter suffix/prefix runs).
	var significant [][]string
	seenSig := map[string]bool{}
	addSig := func(words []string) {
		if len(words) == 0 || len(significant) >= cfg.MaxSignificant {
			return
		}
		key := strings.Join(words, " ")
		if !seenSig[key] {
			seenSig[key] = true
			significant = append(significant, words)
		}
	}
	for n := len(ctxWords); n >= 1; n-- {
		for i := 0; i+n <= len(ctxWords); i++ {
			addSig(ctxWords[i : i+n])
		}
	}

	// Source (ii): frequent phrases mined from the training papers,
	// combined apriori-style. Skip pure context-word phrases already added.
	minSup := cfg.MinSupport
	if minSup > len(training) {
		minSup = len(training)
	}
	mined := MineFrequentPhrases(ix, training, MineConfig{MinSupport: minSup, MaxLen: cfg.MaxPhraseLen})
	for _, fp := range mined {
		if len(significant) >= cfg.MaxSignificant {
			break
		}
		addSig(fp.Words)
	}

	// Build one regular pattern per significant term that actually occurs
	// in the training papers.
	for _, sig := range significant {
		occs := ix.PhraseOccurrences(sig, trainSet)
		if len(occs) == 0 {
			continue
		}
		left := map[string]bool{}
		right := map[string]bool{}
		totalOcc := 0
		for _, ds := range occs {
			totalOcc += len(ds)
			for _, oc := range ds {
				l, r := ix.Window(oc.Doc, oc.Pos, len(sig), cfg.Window)
				for _, w := range l {
					left[w] = true
				}
				for _, w := range r {
					right[w] = true
				}
			}
		}
		p := &Pattern{
			Kind:   Regular,
			Left:   left,
			Middle: append([]string(nil), sig...),
			Right:  right,
		}
		for _, w := range sig {
			if ctxSet[w] {
				p.HasTermWords = true
			} else {
				p.HasFreqWords = true
			}
		}
		p.Score = regularScore(p, ix, ctxSet, termWordDF, len(training), len(occs), totalOcc, cfg)
		set.Patterns = append(set.Patterns, p)
	}

	if cfg.Extended {
		set.Patterns = append(set.Patterns, buildExtended(set.Patterns)...)
	}
	// Deterministic order: by descending score, then middle key.
	sort.Slice(set.Patterns, func(i, j int) bool {
		if set.Patterns[i].Score != set.Patterns[j].Score {
			return set.Patterns[i].Score > set.Patterns[j].Score
		}
		return set.Patterns[i].MiddleKey() < set.Patterns[j].MiddleKey()
	})
	return set
}

// regularScore implements RegularPatternScore (§3.3):
//
//	BaseScore = MiddleTypeScore + TotalTermScore + c·(PatternOccFreq + PatternPaperFreq)
//	RegularPatternScore = BaseScore · (1/PaperCoverage)^t
func regularScore(p *Pattern, ix *PosIndex, ctxSet map[string]bool, termWordDF map[string]int, nTraining, paperFreq, occFreq int, cfg Config) float64 {
	// (1) Middle tuples of only frequent terms, only context-term words, or
	// both receive high, higher, highest.
	var middleType float64
	switch {
	case p.HasTermWords && p.HasFreqWords:
		middleType = 3
	case p.HasTermWords:
		middleType = 2
	default:
		middleType = 1
	}
	// (2) Selectivity: rare context-term words score higher.
	var termScore float64
	for _, w := range p.Middle {
		if ctxSet[w] {
			if df := termWordDF[w]; df > 0 {
				termScore += 1 / float64(df)
			} else {
				termScore += 1
			}
		}
	}
	// (3) PaperCoverage: middle-tuple document frequency across the whole
	// database, as a fraction. Rare middles are more context-identifying.
	n := ix.analyzer.Corpus().Len()
	df := ix.DocFreqOfPhrase(p.Middle)
	if df < 1 {
		df = 1
	}
	coverage := float64(df) / float64(n)
	// (4) Training-paper frequency, as fractions of the training set so the
	// scale is stable across contexts of different training sizes.
	freqTerm := cfg.C * (float64(occFreq)/float64(nTraining) + float64(paperFreq)/float64(nTraining))

	base := middleType + termScore + freqTerm
	return base * math.Pow(1/coverage, cfg.T)
}

// buildExtended derives side-joined and middle-joined patterns from every
// ordered pair of regular patterns (§3.3, [4]).
func buildExtended(regs []*Pattern) []*Pattern {
	var out []*Pattern
	seen := map[string]bool{}
	for i, p1 := range regs {
		for j, p2 := range regs {
			if i == j {
				continue
			}
			// Side-joined: P1's right tuple overlaps P2's left tuple; the
			// middles concatenate through the overlap.
			if setsOverlap(p1.Right, p2.Left) {
				mid := append(append([]string(nil), p1.Middle...), p2.Middle...)
				key := "s|" + strings.Join(mid, " ")
				if !seen[key] {
					seen[key] = true
					sc := p1.Score + p2.Score
					out = append(out, &Pattern{
						Kind:         SideJoined,
						Left:         p1.Left,
						Middle:       mid,
						Right:        p2.Right,
						HasTermWords: p1.HasTermWords || p2.HasTermWords,
						HasFreqWords: p1.HasFreqWords || p2.HasFreqWords,
						Score:        sc * sc,
					})
				}
			}
			// Middle-joined: P1's middle overlaps P2's left or right tuple.
			doo1 := degreeOfOverlap(p1.Middle, p2.Left, p2.Right)
			if doo1 > 0 {
				doo2 := degreeOfOverlap(p2.Middle, p1.Left, p1.Right)
				mid := unionWords(p1.Middle, p2.Middle)
				key := "m|" + strings.Join(mid, " ")
				if !seen[key] {
					seen[key] = true
					out = append(out, &Pattern{
						Kind:         MiddleJoined,
						Left:         unionSets(p1.Left, p2.Left),
						Middle:       mid,
						Right:        unionSets(p1.Right, p2.Right),
						HasTermWords: p1.HasTermWords || p2.HasTermWords,
						HasFreqWords: p1.HasFreqWords || p2.HasFreqWords,
						Score:        doo1*p1.Score + doo2*p2.Score,
						DOO1:         doo1,
						DOO2:         doo2,
					})
				}
			}
		}
	}
	return out
}

// degreeOfOverlap returns the proportion of middle words contained in the
// other pattern's left/right tuples.
func degreeOfOverlap(middle []string, left, right map[string]bool) float64 {
	if len(middle) == 0 {
		return 0
	}
	n := 0
	for _, w := range middle {
		if left[w] || right[w] {
			n++
		}
	}
	return float64(n) / float64(len(middle))
}

func setsOverlap(a, b map[string]bool) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for w := range a {
		if b[w] {
			return true
		}
	}
	return false
}

func unionSets(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for w := range a {
		out[w] = true
	}
	for w := range b {
		out[w] = true
	}
	return out
}

// unionWords returns the sorted union of two word sequences (set semantics
// for middle-joined middles).
func unionWords(a, b []string) []string {
	set := map[string]bool{}
	for _, w := range a {
		set[w] = true
	}
	for _, w := range b {
		set[w] = true
	}
	out := make([]string, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}
