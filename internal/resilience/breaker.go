// Package resilience provides the failure-handling primitives the
// replicated scatter-gather coordinator composes: a per-backend circuit
// breaker, a global retry token budget, bounded exponential backoff with
// jitter, and an active health prober.
//
// The pieces are deliberately independent — the breaker knows nothing
// about HTTP, the budget nothing about backends — so each is testable in
// isolation with an injected clock or random source, and the coordinator
// wires them together: the prober feeds breaker state, the breaker gates
// replica selection, the budget bounds how much extra load retries and
// hedges may generate, and the backoff spaces the retries out.
package resilience

import (
	"sync"
	"time"
)

// State is a circuit breaker state.
type State int32

const (
	// Closed passes requests through, counting consecutive failures.
	Closed State = iota
	// Open rejects requests until the cool-down elapses.
	Open
	// HalfOpen admits one probe request; its outcome closes or re-opens
	// the breaker.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker defaults.
const (
	DefaultFailureThreshold = 5
	DefaultCooldown         = 2 * time.Second
)

// BreakerConfig tunes a Breaker. Zero values take the defaults above.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that trips a
	// closed breaker open.
	FailureThreshold int
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open probe. It also bounds how long a half-open probe may stay
	// unresolved before another probe is admitted (a probe whose outcome
	// is never recorded — e.g. its request was abandoned — must not wedge
	// the breaker).
	Cooldown time.Duration
	// Now is the clock (nil = time.Now); injectable for deterministic
	// tests.
	Now func() time.Time
	// OnOpen, when set, is called after each trip to Open (from Closed or
	// HalfOpen) — the coordinator counts breaker opens with it. Called
	// without the breaker lock held.
	OnOpen func()
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = DefaultFailureThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker. All methods are safe
// for concurrent use.
//
// Closed → Open after FailureThreshold consecutive failures; Open →
// HalfOpen once Cooldown has elapsed (the transition happens inside Allow,
// which then admits exactly one probe); HalfOpen → Closed on a recorded
// success, HalfOpen → Open on a recorded failure.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	failures int       // consecutive failures while Closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
	probeAt  time.Time // when that probe was admitted
	opens    uint64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed. In the Open state it
// transitions to HalfOpen once the cool-down has elapsed and admits the
// caller as the probe; while a probe is unresolved, other callers are
// rejected (until the probe itself times out after another cool-down).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	switch b.state {
	case Closed:
		return true
	case Open:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		b.probeAt = now
		return true
	default: // HalfOpen
		if b.probing && now.Sub(b.probeAt) < b.cfg.Cooldown {
			return false
		}
		b.probing = true
		b.probeAt = now
		return true
	}
}

// Record folds one request outcome in. Outcomes that arrive while the
// breaker is Open (late results of requests admitted before the trip) are
// ignored. Callers should not record cancelled requests — a cancellation
// says nothing about the backend.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	tripped := false
	switch b.state {
	case Closed:
		if ok {
			b.failures = 0
		} else {
			b.failures++
			if b.failures >= b.cfg.FailureThreshold {
				b.trip()
				tripped = true
			}
		}
	case HalfOpen:
		b.probing = false
		if ok {
			b.state = Closed
			b.failures = 0
		} else {
			b.trip()
			tripped = true
		}
	case Open:
		// Late result: ignore.
	}
	onOpen := b.cfg.OnOpen
	b.mu.Unlock()
	if tripped && onOpen != nil {
		onOpen()
	}
}

// trip moves to Open. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.probing = false
	b.opens++
}

// State returns the current state (transitions only happen inside Allow
// and Record, so an Open breaker past its cool-down still reports Open
// until someone asks to proceed).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
