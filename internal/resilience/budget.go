package resilience

import "sync"

// Budget defaults.
const (
	DefaultBudgetCapacity = 10.0
	DefaultBudgetRatio    = 0.1
)

// BudgetConfig tunes a Budget. Zero values take the defaults above.
type BudgetConfig struct {
	// Capacity is the maximum number of banked retry tokens (the bucket
	// starts full).
	Capacity float64
	// Ratio is how many tokens each first attempt deposits — the
	// steady-state retry fraction. With the default 0.1, retries can add
	// at most 10% to upstream traffic once the initial bank is spent.
	Ratio float64
}

func (c BudgetConfig) withDefaults() BudgetConfig {
	if c.Capacity <= 0 {
		c.Capacity = DefaultBudgetCapacity
	}
	if c.Ratio <= 0 {
		c.Ratio = DefaultBudgetRatio
	}
	return c
}

// Budget is a global retry token bucket: every first attempt deposits
// Ratio tokens (capped at Capacity), every retry or hedge withdraws one
// whole token, and a withdrawal that cannot be covered is denied. This
// bounds retry amplification absolutely — during a total outage, R client
// requests can generate at most Capacity + R·Ratio retries on top of the
// R first attempts, so a retry storm cannot multiply overload. All methods
// are safe for concurrent use.
type Budget struct {
	cfg    BudgetConfig
	mu     sync.Mutex
	tokens float64
	denied uint64
}

// NewBudget returns a full bucket.
func NewBudget(cfg BudgetConfig) *Budget {
	cfg = cfg.withDefaults()
	return &Budget{cfg: cfg, tokens: cfg.Capacity}
}

// Deposit credits one first attempt's worth of retry allowance.
func (b *Budget) Deposit() {
	b.mu.Lock()
	b.tokens += b.cfg.Ratio
	if b.tokens > b.cfg.Capacity {
		b.tokens = b.cfg.Capacity
	}
	b.mu.Unlock()
}

// Withdraw takes one token for a retry or hedge, reporting whether the
// budget covered it. A denied withdrawal takes nothing.
func (b *Budget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current balance.
func (b *Budget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Denied returns how many withdrawals the budget has refused.
func (b *Budget) Denied() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}
