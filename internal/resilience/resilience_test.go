package resilience

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var opens atomic.Int64
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		Now:              clk.now,
		OnOpen:           func() { opens.Add(1) },
	})

	// Closed: passes, and a success resets the consecutive count.
	for i := 0; i < 5; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
	}
	b.Record(false)
	b.Record(false)
	b.Record(true) // resets
	b.Record(false)
	b.Record(false)
	if b.State() != Closed {
		t.Fatalf("2 consecutive failures after a reset tripped the breaker (state %v)", b.State())
	}

	// Third consecutive failure trips it.
	b.Record(false)
	if b.State() != Open || opens.Load() != 1 {
		t.Fatalf("state %v opens %d after threshold, want open/1", b.State(), opens.Load())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cool-down")
	}

	// Cool-down elapses: exactly one half-open probe is admitted.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit a probe after cool-down")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller admitted while a probe is unresolved")
	}

	// Failed probe re-opens (and re-arms the cool-down).
	b.Record(false)
	if b.State() != Open || opens.Load() != 2 {
		t.Fatalf("failed probe: state %v opens %d, want open/2", b.State(), opens.Load())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request immediately")
	}

	// Successful probe closes.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe after second cool-down")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("successful probe left state %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected")
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("Opens() = %d, want 2", got)
	}
}

// TestBreakerLostProbeSelfHeals: a half-open probe whose outcome is never
// recorded (abandoned request) must not wedge the breaker forever.
func TestBreakerLostProbeSelfHeals(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second, Now: clk.now})
	b.Record(false) // trip
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe after cool-down")
	}
	// The probe is never recorded. Before another cool-down: rejected.
	if b.Allow() {
		t.Fatal("unresolved probe did not gate other callers")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker wedged by a lost probe")
	}
}

// TestBreakerIgnoresLateResults: outcomes recorded while Open (requests
// admitted before the trip) change nothing.
func TestBreakerIgnoresLateResults(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute, Now: clk.now})
	b.Record(false)
	b.Record(true) // late success from a request admitted pre-trip
	if b.State() != Open {
		t.Fatalf("late success closed an open breaker (state %v)", b.State())
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens() = %d, want 1", got)
	}
}

func TestBudgetBound(t *testing.T) {
	b := NewBudget(BudgetConfig{Capacity: 3, Ratio: 0.5})
	// Starts full: exactly Capacity retries available with no deposits.
	granted := 0
	for i := 0; i < 10; i++ {
		if b.Withdraw() {
			granted++
		}
	}
	if granted != 3 {
		t.Fatalf("empty-traffic budget granted %d retries, want 3", granted)
	}
	if b.Denied() != 7 {
		t.Fatalf("denied = %d, want 7", b.Denied())
	}

	// Two deposits bank one more token.
	b.Deposit()
	b.Deposit()
	if !b.Withdraw() {
		t.Fatal("deposited token not withdrawable")
	}
	if b.Withdraw() {
		t.Fatal("withdrew more than deposited")
	}

	// The bank never exceeds capacity.
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	if got := b.Tokens(); got != 3 {
		t.Fatalf("tokens after 100 deposits = %v, want capacity 3", got)
	}

	// The storm bound: R requests grant at most Capacity + R·Ratio retries.
	b2 := NewBudget(BudgetConfig{Capacity: 3, Ratio: 0.5})
	const requests = 40
	retries := 0
	for i := 0; i < requests; i++ {
		b2.Deposit()
		for b2.Withdraw() { // storm: retry as hard as allowed
			retries++
		}
	}
	if max := 3 + requests/2; retries > max {
		t.Fatalf("storm granted %d retries, budget bound is %d", retries, max)
	}
}

func TestBackoffDelay(t *testing.T) {
	p := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: -1}
	want := []time.Duration{0, 10, 20, 40, 80, 80, 80}
	for n, w := range want {
		if got := p.Delay(n, nil); got != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", n, got, w*time.Millisecond)
		}
	}
	// Jitter shaves off at most the jitter fraction, deterministically
	// under an injected source.
	pj := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	if got := pj.Delay(1, func() float64 { return 0 }); got != 100*time.Millisecond {
		t.Fatalf("zero jitter sample = %v, want 100ms", got)
	}
	if got := pj.Delay(1, func() float64 { return 1 }); got != 50*time.Millisecond {
		t.Fatalf("full jitter sample = %v, want 50ms", got)
	}
	// Defaults: zero value is usable and bounded.
	var zero Backoff
	for n := 1; n < 20; n++ {
		d := zero.Delay(n, nil)
		if d <= 0 || d > DefaultBackoffMax {
			t.Fatalf("zero-value Delay(%d) = %v out of (0, %v]", n, d, DefaultBackoffMax)
		}
	}
}

func TestProber(t *testing.T) {
	var up atomic.Bool
	up.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s, want /healthz", r.URL.Path)
		}
		if !up.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	type probe struct {
		i  int
		ok bool
	}
	var mu sync.Mutex
	var seen []probe
	p := NewProber([]string{ts.URL}, ProberConfig{
		Interval: time.Hour, // ticker never fires in-test; ProbeAll drives it
		OnProbe: func(i int, ok bool) {
			mu.Lock()
			seen = append(seen, probe{i, ok})
			mu.Unlock()
		},
	}, nil)
	defer p.Close()

	if !p.Healthy(0) {
		t.Fatal("backend not optimistically healthy before the first probe")
	}
	p.ProbeAll()
	if !p.Healthy(0) {
		t.Fatal("healthy backend probed unhealthy")
	}
	up.Store(false)
	p.ProbeAll()
	if p.Healthy(0) {
		t.Fatal("503 backend probed healthy")
	}
	up.Store(true)
	p.ProbeAll()
	if !p.Healthy(0) {
		t.Fatal("recovered backend probed unhealthy")
	}

	mu.Lock()
	defer mu.Unlock()
	wantOK := []bool{true, false, true}
	if len(seen) != len(wantOK) {
		t.Fatalf("OnProbe fired %d times, want %d", len(seen), len(wantOK))
	}
	for i, pr := range seen {
		if pr.i != 0 || pr.ok != wantOK[i] {
			t.Fatalf("probe %d = %+v, want {0 %v}", i, pr, wantOK[i])
		}
	}
}

// TestProberDeadBackend: a connection-refused backend flips unhealthy.
func TestProberDeadBackend(t *testing.T) {
	ts := httptest.NewServer(http.NewServeMux())
	url := ts.URL
	ts.Close()
	p := NewProber([]string{url}, ProberConfig{Interval: time.Hour, Timeout: 200 * time.Millisecond}, nil)
	defer p.Close()
	p.ProbeAll()
	if p.Healthy(0) {
		t.Fatal("dead backend probed healthy")
	}
}

// TestProberBackground: the goroutines actually probe on the interval and
// stop on Close.
func TestProberBackground(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	p := NewProber([]string{ts.URL}, ProberConfig{Interval: 10 * time.Millisecond}, nil)
	deadline := time.Now().Add(5 * time.Second)
	for hits.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if hits.Load() < 3 {
		t.Fatal("background prober never probed")
	}
	p.Close()
	quiesced := hits.Load()
	time.Sleep(50 * time.Millisecond)
	if hits.Load() != quiesced {
		t.Fatal("prober kept probing after Close")
	}
}
