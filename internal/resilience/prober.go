package resilience

import (
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Prober defaults.
const (
	DefaultProbeInterval = 500 * time.Millisecond
	DefaultProbeTimeout  = time.Second
	DefaultProbePath     = "/healthz"
)

// ProberConfig tunes a Prober. Zero values take the defaults above.
type ProberConfig struct {
	// Interval is the time between probes of one backend.
	Interval time.Duration
	// Timeout bounds each probe request.
	Timeout time.Duration
	// Path is the endpoint probed on every backend.
	Path string
	// OnProbe, when set, observes every probe outcome — the coordinator
	// feeds breaker state with it. Called from the prober goroutines.
	OnProbe func(i int, ok bool)
}

func (c ProberConfig) withDefaults() ProberConfig {
	if c.Interval <= 0 {
		c.Interval = DefaultProbeInterval
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultProbeTimeout
	}
	if c.Path == "" {
		c.Path = DefaultProbePath
	}
	return c
}

// Prober actively health-checks a fixed set of backend base URLs, one
// goroutine per backend, and publishes the latest per-backend verdict.
// A backend is healthy when its probe endpoint answers 200 within the
// probe timeout. Backends start out healthy — selection must not shun
// every replica before the first probe has even run — and flip on the
// first completed probe.
type Prober struct {
	cfg     ProberConfig
	client  *http.Client
	urls    []string
	healthy []atomic.Bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// NewProber starts probing the given base URLs. client may be nil (a
// dedicated client is used). Close must be called to stop the goroutines.
func NewProber(urls []string, cfg ProberConfig, client *http.Client) *Prober {
	if client == nil {
		client = &http.Client{}
	}
	p := &Prober{
		cfg:     cfg.withDefaults(),
		client:  client,
		urls:    urls,
		healthy: make([]atomic.Bool, len(urls)),
		stop:    make(chan struct{}),
	}
	for i := range p.healthy {
		p.healthy[i].Store(true)
	}
	for i := range urls {
		p.wg.Add(1)
		go p.run(i)
	}
	return p
}

func (p *Prober) run(i int) {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probe(i)
		}
	}
}

// probe runs one health check of backend i and publishes the verdict.
func (p *Prober) probe(i int) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.urls[i]+p.cfg.Path, nil)
	if err == nil {
		resp, derr := p.client.Do(req)
		if derr == nil {
			// Drain so the connection is reusable.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	p.healthy[i].Store(ok)
	if p.cfg.OnProbe != nil {
		p.cfg.OnProbe(i, ok)
	}
	return ok
}

// ProbeAll probes every backend once, synchronously — boot-time and test
// hook for a deterministic health snapshot.
func (p *Prober) ProbeAll() {
	for i := range p.urls {
		p.probe(i)
	}
}

// Healthy reports backend i's latest probe verdict.
func (p *Prober) Healthy(i int) bool { return p.healthy[i].Load() }

// Close stops all probe goroutines and waits for them.
func (p *Prober) Close() {
	close(p.stop)
	p.wg.Wait()
}
