package resilience

import (
	"math/rand"
	"time"
)

// Backoff defaults.
const (
	DefaultBackoffBase   = 20 * time.Millisecond
	DefaultBackoffMax    = 500 * time.Millisecond
	DefaultBackoffJitter = 0.5
)

// Backoff is a bounded exponential backoff policy with proportional
// jitter: retry n waits Base·2^(n-1), capped at Max, with up to a Jitter
// fraction of the delay randomly shaved off so synchronized clients
// desynchronize instead of retrying in lockstep.
//
// The zero value takes the defaults above; set Jitter negative for a
// deterministic (jitter-free) policy.
type Backoff struct {
	Base   time.Duration
	Max    time.Duration
	Jitter float64
}

func (p Backoff) withDefaults() Backoff {
	if p.Base <= 0 {
		p.Base = DefaultBackoffBase
	}
	if p.Max <= 0 {
		p.Max = DefaultBackoffMax
	}
	if p.Jitter == 0 {
		p.Jitter = DefaultBackoffJitter
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Delay returns the wait before retry attempt n (1-based; n <= 0 returns
// 0). rnd supplies the jitter sample in [0,1) — nil uses math/rand's
// global source; tests pass a fixed function for determinism.
func (p Backoff) Delay(attempt int, rnd func() float64) time.Duration {
	if attempt <= 0 {
		return 0
	}
	p = p.withDefaults()
	d := p.Base
	for i := 1; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 {
		if rnd == nil {
			rnd = rand.Float64
		}
		d -= time.Duration(rnd() * p.Jitter * float64(d))
	}
	return d
}
