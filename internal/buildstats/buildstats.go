// Package buildstats records wall-clock timing for the stages of the
// offline build pipeline (corpus analysis, index construction, context-set
// assembly, prestige scoring) so cold-start cost is observable: the
// ctxsearch CLI prints the summary under `build -v`, and `serve` logs it
// when the background engine build completes.
package buildstats

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"
)

// Stage is one timed step of the build.
type Stage struct {
	// Name identifies the stage ("analyze", "index", "score-text", ...).
	Name string
	// Duration is the stage's wall-clock time.
	Duration time.Duration
	// Items is how many units of work the stage processed (papers,
	// contexts); 0 when the stage is not item-based.
	Items int
	// Unit names the items ("papers", "contexts"); empty suppresses the
	// throughput column.
	Unit string
}

// Rate returns the stage's throughput in items per second (0 when the
// stage has no items or took no measurable time).
func (s Stage) Rate() float64 {
	if s.Items == 0 || s.Duration <= 0 {
		return 0
	}
	return float64(s.Items) / s.Duration.Seconds()
}

// Stats accumulates build stages. Construct with New; Time is safe for
// concurrent use (stages run by different goroutines append under a lock).
type Stats struct {
	workers int

	mu     sync.Mutex
	stages []Stage
	peak   int
}

// New returns an empty Stats for a build running with the given effective
// worker count.
func New(workers int) *Stats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Stats{workers: workers}
}

// Time measures fn as one stage. items/unit feed the throughput column of
// the summary (pass 0/"" for stages without a natural item count). While fn
// runs, the goroutine count is sampled so the summary can report the peak
// fan-out actually reached.
func (s *Stats) Time(name string, items int, unit string, fn func()) {
	if s == nil {
		fn()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			s.observeGoroutines()
			select {
			case <-stop:
				return
			case <-tick.C:
			}
		}
	}()
	start := time.Now()
	fn()
	d := time.Since(start)
	close(stop)
	<-done
	s.mu.Lock()
	s.stages = append(s.stages, Stage{Name: name, Duration: d, Items: items, Unit: unit})
	s.mu.Unlock()
}

// Add records a stage the caller timed itself — the shape cold-start
// instrumentation needs when the measured span (mapping a state file,
// flipping readiness) is not a single function call Time could wrap.
func (s *Stats) Add(name string, d time.Duration, items int, unit string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stages = append(s.stages, Stage{Name: name, Duration: d, Items: items, Unit: unit})
	s.mu.Unlock()
}

func (s *Stats) observeGoroutines() {
	n := runtime.NumGoroutine()
	s.mu.Lock()
	if n > s.peak {
		s.peak = n
	}
	s.mu.Unlock()
}

// Workers returns the effective worker count the build ran with.
func (s *Stats) Workers() int { return s.workers }

// PeakGoroutines returns the highest goroutine count sampled during any
// timed stage.
func (s *Stats) PeakGoroutines() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// Stages returns a copy of the recorded stages in completion order.
func (s *Stats) Stages() []Stage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Stage(nil), s.stages...)
}

// Total returns the summed wall time of all recorded stages.
func (s *Stats) Total() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t time.Duration
	for _, st := range s.stages {
		t += st.Duration
	}
	return t
}

// Summary renders the multi-line human-readable report: one line per stage
// with wall time and throughput, then a total line with worker count and
// peak goroutines.
func (s *Stats) Summary() string {
	stages := s.Stages()
	var b strings.Builder
	b.WriteString("offline build stages:\n")
	width := 0
	for _, st := range stages {
		if len(st.Name) > width {
			width = len(st.Name)
		}
	}
	for _, st := range stages {
		fmt.Fprintf(&b, "  %-*s  %10s", width, st.Name, st.Duration.Round(time.Microsecond))
		if st.Items > 0 && st.Unit != "" {
			fmt.Fprintf(&b, "  %7d %s  %9.0f %s/s", st.Items, st.Unit, st.Rate(), st.Unit)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  %-*s  %10s  workers %d, peak goroutines %d",
		width, "total", s.Total().Round(time.Microsecond), s.Workers(), s.PeakGoroutines())
	return b.String()
}
