package buildstats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTimeRecordsStages(t *testing.T) {
	s := New(4)
	s.Time("analyze", 100, "papers", func() { time.Sleep(2 * time.Millisecond) })
	s.Time("index", 0, "", func() {})
	stages := s.Stages()
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(stages))
	}
	if stages[0].Name != "analyze" || stages[0].Items != 100 || stages[0].Unit != "papers" {
		t.Fatalf("bad first stage: %+v", stages[0])
	}
	if stages[0].Duration <= 0 {
		t.Fatal("stage duration not measured")
	}
	if s.Total() < stages[0].Duration {
		t.Fatal("total below first stage duration")
	}
	if s.Workers() != 4 {
		t.Fatalf("workers = %d, want 4", s.Workers())
	}
}

func TestRate(t *testing.T) {
	st := Stage{Items: 500, Duration: time.Second}
	if r := st.Rate(); r != 500 {
		t.Fatalf("rate = %v, want 500", r)
	}
	if (Stage{}).Rate() != 0 {
		t.Fatal("zero stage should have zero rate")
	}
}

func TestPeakGoroutinesObserved(t *testing.T) {
	s := New(2)
	s.Time("fanout", 0, "", func() {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(8 * time.Millisecond)
			}()
		}
		wg.Wait()
	})
	if s.PeakGoroutines() < 2 {
		t.Fatalf("peak goroutines = %d, expected the sampler to see the fan-out", s.PeakGoroutines())
	}
}

func TestSummaryMentionsStagesAndWorkers(t *testing.T) {
	s := New(8)
	s.Time("analyze", 42, "papers", func() {})
	got := s.Summary()
	for _, want := range []string{"analyze", "papers", "workers 8", "total"} {
		if !strings.Contains(got, want) {
			t.Fatalf("summary missing %q:\n%s", want, got)
		}
	}
}

func TestNilStatsIsSafe(t *testing.T) {
	var s *Stats
	ran := false
	s.Time("x", 0, "", func() { ran = true })
	if !ran {
		t.Fatal("nil Stats must still run fn")
	}
}

func TestConcurrentTime(t *testing.T) {
	s := New(4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Time("stage", 1, "items", func() {})
		}()
	}
	wg.Wait()
	if len(s.Stages()) != 8 {
		t.Fatalf("got %d stages, want 8", len(s.Stages()))
	}
}
