package ontology

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParseOBOJunkNeverPanics feeds random byte soup to the OBO parser: it
// must return (possibly an error) without panicking, and any ontology it
// does return must satisfy structural invariants.
func TestParseOBOJunkNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		o, err := ParseOBO(strings.NewReader(string(raw)))
		if err != nil {
			return true
		}
		// Structural invariants of a successfully parsed ontology.
		for _, id := range o.TermIDs() {
			if o.Term(id) == nil {
				return false
			}
			if o.Level(id) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestParseOBOStructuredJunk mixes valid-looking stanzas with garbage tags
// and verifies the parser's tolerance is intentional: unknown tags are
// skipped, malformed tag lines fail.
func TestParseOBOStructuredJunk(t *testing.T) {
	ok := `[Term]
id: GO:1
name: alpha
weird_tag: whatever
xref: DB:123

[Term]
id: GO:2
name: beta
is_a: GO:1
`
	o, err := ParseOBO(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("tolerant parse failed: %v", err)
	}
	if o.Len() != 2 {
		t.Fatalf("Len = %d", o.Len())
	}
}

// TestGenerateStressDepths runs the generator across many configurations,
// asserting it never errors and always populates the requested structure.
func TestGenerateStressDepths(t *testing.T) {
	for _, terms := range []int{3, 4, 10, 50} {
		for _, depth := range []int{2, 3, 6, 12} {
			o, err := Generate(GenConfig{Seed: int64(terms*100 + depth), NumTerms: terms, MaxDepth: depth, SecondParentProb: 0.3})
			if err != nil {
				t.Fatalf("terms=%d depth=%d: %v", terms, depth, err)
			}
			if o.Len() != terms {
				t.Fatalf("terms=%d depth=%d: got %d terms", terms, depth, o.Len())
			}
			if o.MaxLevel() > depth {
				t.Fatalf("terms=%d depth=%d: max level %d", terms, depth, o.MaxLevel())
			}
		}
	}
}
