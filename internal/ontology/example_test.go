package ontology_test

import (
	"fmt"

	"ctxsearch/internal/ontology"
)

func buildExample() *ontology.Ontology {
	o := ontology.New()
	_ = o.Add(ontology.Term{ID: "GO:1", Name: "molecular function"})
	_ = o.Add(ontology.Term{ID: "GO:2", Name: "binding", Parents: []ontology.TermID{"GO:1"}})
	_ = o.Add(ontology.Term{ID: "GO:3", Name: "dna binding", Parents: []ontology.TermID{"GO:2"}})
	_ = o.Add(ontology.Term{ID: "GO:4", Name: "rna binding", Parents: []ontology.TermID{"GO:2"}})
	_ = o.Build()
	return o
}

func ExampleOntology_Level() {
	o := buildExample()
	fmt.Println(o.Level("GO:1"), o.Level("GO:2"), o.Level("GO:3"))
	// Output: 1 2 3
}

func ExampleOntology_InformationContent() {
	o := buildExample()
	// Deeper terms are more informative.
	fmt.Println(o.InformationContent("GO:3") > o.InformationContent("GO:2"))
	fmt.Printf("%.3f\n", o.InformationContent("GO:1"))
	// Output:
	// true
	// 0.000
}

func ExampleOntology_MostInformativeCommonAncestor() {
	o := buildExample()
	fmt.Println(o.MostInformativeCommonAncestor("GO:3", "GO:4"))
	// Output: GO:2
}
