// Package ontology implements the context hierarchy substrate: a Gene
// Ontology–like directed acyclic graph of terms with is-a edges. It provides
// the structural queries the paper's scoring and evaluation machinery needs
// — term levels (root = level 1), descendant sets, information content
// I(C) = log(1/p(C)), and the RateOfDecay used when a descendant context
// inherits its ancestor's paper set — plus an OBO-flavoured flat-file
// parser/writer and a deterministic synthetic generator.
package ontology

import (
	"fmt"
	"math"
	"sort"
)

// TermID identifies an ontology term, e.g. "GO:0003700".
type TermID string

// Term is a single ontology term. Parents are is-a edges toward the root(s).
type Term struct {
	ID        TermID
	Name      string
	Namespace string
	Def       string
	Parents   []TermID
}

// Ontology is an immutable-after-Build term DAG. Construct with New, add
// terms with Add, then call Build once; the query methods are safe for
// concurrent use after Build.
type Ontology struct {
	terms    map[TermID]*Term
	order    []TermID // insertion order, for deterministic iteration
	children map[TermID][]TermID
	roots    []TermID
	built    bool

	levels    map[TermID]int
	descCount map[TermID]int
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{
		terms:    make(map[TermID]*Term),
		children: make(map[TermID][]TermID),
	}
}

// Add inserts a term. It returns an error on duplicate IDs or empty ID/name.
// Parents may reference terms added later; dangling parents are caught by
// Build.
func (o *Ontology) Add(t Term) error {
	if o.built {
		return fmt.Errorf("ontology: Add after Build")
	}
	if t.ID == "" || t.Name == "" {
		return fmt.Errorf("ontology: term must have ID and Name (got %q, %q)", t.ID, t.Name)
	}
	if _, dup := o.terms[t.ID]; dup {
		return fmt.Errorf("ontology: duplicate term %s", t.ID)
	}
	c := t
	c.Parents = append([]TermID(nil), t.Parents...)
	o.terms[t.ID] = &c
	o.order = append(o.order, t.ID)
	return nil
}

// Build finalises the DAG: resolves children lists, finds roots, verifies
// acyclicity and that every parent reference exists, and precomputes levels
// and descendant counts.
func (o *Ontology) Build() error {
	if o.built {
		return fmt.Errorf("ontology: Build called twice")
	}
	for _, id := range o.order {
		t := o.terms[id]
		for _, p := range t.Parents {
			if _, ok := o.terms[p]; !ok {
				return fmt.Errorf("ontology: term %s references unknown parent %s", id, p)
			}
			o.children[p] = append(o.children[p], id)
		}
		if len(t.Parents) == 0 {
			o.roots = append(o.roots, id)
		}
	}
	if len(o.roots) == 0 && len(o.order) > 0 {
		return fmt.Errorf("ontology: no root term (cycle through every term?)")
	}
	for _, kids := range o.children {
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
	}
	if err := o.checkAcyclic(); err != nil {
		return err
	}
	o.built = true
	o.computeLevels()
	o.computeDescendantCounts()
	return nil
}

func (o *Ontology) checkAcyclic() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[TermID]int, len(o.terms))
	var visit func(id TermID) error
	visit = func(id TermID) error {
		switch color[id] {
		case grey:
			return fmt.Errorf("ontology: cycle through %s", id)
		case black:
			return nil
		}
		color[id] = grey
		for _, c := range o.children[id] {
			if err := visit(c); err != nil {
				return err
			}
		}
		color[id] = black
		return nil
	}
	for _, r := range o.roots {
		if err := visit(r); err != nil {
			return err
		}
	}
	for _, id := range o.order {
		if color[id] != black {
			return fmt.Errorf("ontology: term %s unreachable from any root (cycle?)", id)
		}
	}
	return nil
}

// computeLevels assigns each term its minimum depth from a root, with roots
// at level 1 (the paper's convention: "Level 1 = root level"). BFS from all
// roots simultaneously.
func (o *Ontology) computeLevels() {
	o.levels = make(map[TermID]int, len(o.terms))
	queue := make([]TermID, 0, len(o.roots))
	for _, r := range o.roots {
		o.levels[r] = 1
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, c := range o.children[id] {
			if _, seen := o.levels[c]; !seen {
				o.levels[c] = o.levels[id] + 1
				queue = append(queue, c)
			}
		}
	}
}

// computeDescendantCounts counts, for every term, the number of distinct
// proper descendants. Processed in reverse topological order with set union
// (a DAG descendant can be reachable via several children, so counts cannot
// simply be summed).
func (o *Ontology) computeDescendantCounts() {
	o.descCount = make(map[TermID]int, len(o.terms))
	topo := o.topoOrder()
	// For moderate ontology sizes a per-term bitset over a dense index is
	// compact and fast.
	idx := make(map[TermID]int, len(o.terms))
	for i, id := range o.order {
		idx[id] = i
	}
	words := (len(o.order) + 63) / 64
	sets := make(map[TermID][]uint64, len(o.terms))
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		set := make([]uint64, words)
		for _, c := range o.children[id] {
			ci := idx[c]
			set[ci/64] |= 1 << (ci % 64)
			for w, bits := range sets[c] {
				set[w] |= bits
			}
		}
		sets[id] = set
		n := 0
		for _, w := range set {
			n += popcount(w)
		}
		o.descCount[id] = n
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// topoOrder returns the terms in a parent-before-child order.
func (o *Ontology) topoOrder() []TermID {
	indeg := make(map[TermID]int, len(o.terms))
	for _, id := range o.order {
		indeg[id] = len(o.terms[id].Parents)
	}
	queue := append([]TermID(nil), o.roots...)
	out := make([]TermID, 0, len(o.terms))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		out = append(out, id)
		for _, c := range o.children[id] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	return out
}

// Term returns the term with the given ID, or nil if absent.
func (o *Ontology) Term(id TermID) *Term { return o.terms[id] }

// Len returns the number of terms.
func (o *Ontology) Len() int { return len(o.terms) }

// TermIDs returns all term IDs in insertion order. The returned slice is
// shared; callers must not modify it.
func (o *Ontology) TermIDs() []TermID { return o.order }

// Roots returns the root term IDs.
func (o *Ontology) Roots() []TermID { return o.roots }

// Children returns the direct children of id.
func (o *Ontology) Children(id TermID) []TermID { return o.children[id] }

// Parents returns the direct parents of id, or nil for unknown terms.
func (o *Ontology) Parents(id TermID) []TermID {
	if t := o.terms[id]; t != nil {
		return t.Parents
	}
	return nil
}

// Level returns the term's level with roots at level 1, or 0 for unknown
// terms.
func (o *Ontology) Level(id TermID) int { return o.levels[id] }

// MaxLevel returns the deepest level present in the ontology.
func (o *Ontology) MaxLevel() int {
	m := 0
	for _, l := range o.levels {
		if l > m {
			m = l
		}
	}
	return m
}

// TermsAtLevel returns the IDs of all terms at the given level, in insertion
// order.
func (o *Ontology) TermsAtLevel(level int) []TermID {
	var out []TermID
	for _, id := range o.order {
		if o.levels[id] == level {
			out = append(out, id)
		}
	}
	return out
}

// Descendants returns the set of proper descendants of id.
func (o *Ontology) Descendants(id TermID) []TermID {
	seen := map[TermID]bool{}
	var out []TermID
	stack := append([]TermID(nil), o.children[id]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		stack = append(stack, o.children[n]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DescendantCount returns the number of proper descendants of id.
func (o *Ontology) DescendantCount(id TermID) int { return o.descCount[id] }

// Ancestors returns the set of proper ancestors of id, sorted by ID.
func (o *Ontology) Ancestors(id TermID) []TermID {
	seen := map[TermID]bool{}
	var out []TermID
	stack := append([]TermID(nil), o.Parents(id)...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		stack = append(stack, o.Parents(n)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsAncestor reports whether anc is a proper ancestor of id.
func (o *Ontology) IsAncestor(anc, id TermID) bool {
	stack := append([]TermID(nil), o.Parents(id)...)
	seen := map[TermID]bool{}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == anc {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, o.Parents(n)...)
	}
	return false
}

// HierarchicallyRelated reports whether a and b lie on a common root-to-leaf
// path (one is an ancestor of the other, or they are equal). Used by the §7
// extension that weights cross-context relationships.
func (o *Ontology) HierarchicallyRelated(a, b TermID) bool {
	return a == b || o.IsAncestor(a, b) || o.IsAncestor(b, a)
}

// InformationContent returns I(C) = log(1/p(C)) with
// p(C) = (#descendants(C)+1) / #terms. The +1 (counting the term itself)
// departs from the paper's formula only to keep I finite for leaves; the
// ordering — more general terms have lower information content — is
// preserved. Returns 0 for unknown terms or an empty ontology.
func (o *Ontology) InformationContent(id TermID) float64 {
	if len(o.terms) == 0 {
		return 0
	}
	if _, ok := o.terms[id]; !ok {
		return 0
	}
	p := float64(o.descCount[id]+1) / float64(len(o.terms))
	return math.Log(1 / p)
}

// RateOfDecay returns I(ancs)/I(desc) per the paper's §4: the factor by
// which scores inherited from an ancestor context are damped to reflect the
// ancestor's lower informativeness. It is ≤ 1 whenever ancs is a proper
// ancestor of desc; returns 1 when either information content is
// non-positive (degenerate root case).
func (o *Ontology) RateOfDecay(ancs, desc TermID) float64 {
	ia, id := o.InformationContent(ancs), o.InformationContent(desc)
	if ia <= 0 || id <= 0 {
		return 1
	}
	return ia / id
}
