package ontology

import (
	"testing"
	"testing/quick"
)

func TestCommonAncestors(t *testing.T) {
	o := diamond(t)
	// a and b share the root; c counts itself.
	got := o.CommonAncestors("GO:2", "GO:3")
	if len(got) != 1 || got[0] != "GO:1" {
		t.Fatalf("CommonAncestors(a,b) = %v", got)
	}
	// c's ancestors include a, b, root; d shares all plus c itself.
	got = o.CommonAncestors("GO:4", "GO:5")
	if len(got) != 4 { // root, a, b, c
		t.Fatalf("CommonAncestors(c,d) = %v", got)
	}
	if got := o.CommonAncestors("GO:404", "GO:1"); got != nil {
		t.Fatalf("unknown term ancestors = %v", got)
	}
	// Self: the term itself is its most informative common ancestor.
	got = o.CommonAncestors("GO:4", "GO:4")
	found := false
	for _, x := range got {
		if x == "GO:4" {
			found = true
		}
	}
	if !found {
		t.Fatalf("self must be its own common ancestor: %v", got)
	}
}

func TestResnikSimilarity(t *testing.T) {
	o := diamond(t)
	// Siblings a,b: MICA is the root with IC 0.
	if got := o.ResnikSimilarity("GO:2", "GO:3"); got != 0 {
		t.Fatalf("sibling Resnik = %v", got)
	}
	// c vs d: MICA is c (IC log(5/2)); higher than root.
	cd := o.ResnikSimilarity("GO:4", "GO:5")
	if cd <= 0 {
		t.Fatalf("Resnik(c,d) = %v", cd)
	}
	// Self-similarity equals own IC.
	if got := o.ResnikSimilarity("GO:5", "GO:5"); got != o.InformationContent("GO:5") {
		t.Fatalf("self Resnik = %v", got)
	}
	// Resnik grows with specificity of the shared ancestor.
	if !(o.ResnikSimilarity("GO:5", "GO:4") > o.ResnikSimilarity("GO:5", "GO:2")) {
		t.Fatal("deeper MICA must give higher Resnik")
	}
}

func TestLinSimilarity(t *testing.T) {
	o := diamond(t)
	// Self similarity of an informative term is 1.
	if got := o.LinSimilarity("GO:5", "GO:5"); got != 1 {
		t.Fatalf("self Lin = %v", got)
	}
	// Root self-similarity degenerates to 0 (no information).
	if got := o.LinSimilarity("GO:1", "GO:1"); got != 0 {
		t.Fatalf("root Lin = %v", got)
	}
	if got := o.LinSimilarity("GO:2", "GO:3"); got != 0 {
		t.Fatalf("sibling Lin = %v", got)
	}
}

// Property over a generated ontology: Lin similarity is symmetric and in
// [0,1]; Resnik is symmetric and non-negative.
func TestSemanticSimilarityProperties(t *testing.T) {
	o, err := Generate(GenConfig{Seed: 12, NumTerms: 120, MaxDepth: 7, SecondParentProb: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	ids := o.TermIDs()
	f := func(i, j uint16) bool {
		a := ids[int(i)%len(ids)]
		b := ids[int(j)%len(ids)]
		lin1, lin2 := o.LinSimilarity(a, b), o.LinSimilarity(b, a)
		res1, res2 := o.ResnikSimilarity(a, b), o.ResnikSimilarity(b, a)
		if lin1 != lin2 || res1 != res2 {
			return false
		}
		return lin1 >= 0 && lin1 <= 1+1e-9 && res1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMICADisjointNamespaces(t *testing.T) {
	// Two separate roots: no common ancestor.
	o := New()
	_ = o.Add(Term{ID: "GO:1", Name: "root one"})
	_ = o.Add(Term{ID: "GO:2", Name: "root two"})
	_ = o.Add(Term{ID: "GO:3", Name: "child one", Parents: []TermID{"GO:1"}})
	_ = o.Add(Term{ID: "GO:4", Name: "child two", Parents: []TermID{"GO:2"}})
	if err := o.Build(); err != nil {
		t.Fatal(err)
	}
	if got := o.MostInformativeCommonAncestor("GO:3", "GO:4"); got != "" {
		t.Fatalf("disjoint MICA = %q", got)
	}
	if got := o.ResnikSimilarity("GO:3", "GO:4"); got != 0 {
		t.Fatalf("disjoint Resnik = %v", got)
	}
}
