package ontology

import "sort"

// CommonAncestors returns the shared ancestors of a and b (each term counts
// as an ancestor of itself for this purpose, the convention of semantic
// similarity measures), sorted by ID.
func (o *Ontology) CommonAncestors(a, b TermID) []TermID {
	if o.Term(a) == nil || o.Term(b) == nil {
		return nil
	}
	setA := map[TermID]bool{a: true}
	for _, x := range o.Ancestors(a) {
		setA[x] = true
	}
	var out []TermID
	if setA[b] {
		out = append(out, b)
	}
	for _, x := range o.Ancestors(b) {
		if setA[x] {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MostInformativeCommonAncestor returns the common ancestor with the
// highest information content (the deepest in Resnik's sense), or "" when
// the terms share no ancestor (different namespaces).
func (o *Ontology) MostInformativeCommonAncestor(a, b TermID) TermID {
	var best TermID
	bestIC := -1.0
	for _, c := range o.CommonAncestors(a, b) {
		if ic := o.InformationContent(c); ic > bestIC {
			bestIC = ic
			best = c
		}
	}
	return best
}

// ResnikSimilarity implements the semantic similarity of Resnik (IJCAI
// 1995), which the paper's information-content machinery builds on:
// sim(a,b) = IC(most informative common ancestor). 0 when the terms share
// no ancestor.
func (o *Ontology) ResnikSimilarity(a, b TermID) float64 {
	mica := o.MostInformativeCommonAncestor(a, b)
	if mica == "" {
		return 0
	}
	return o.InformationContent(mica)
}

// LinSimilarity is Lin's normalised variant:
// 2·IC(mica) / (IC(a)+IC(b)), in [0,1]; 0 for disjoint terms or when both
// terms carry no information (roots).
func (o *Ontology) LinSimilarity(a, b TermID) float64 {
	mica := o.MostInformativeCommonAncestor(a, b)
	if mica == "" {
		return 0
	}
	ia, ib := o.InformationContent(a), o.InformationContent(b)
	if ia+ib == 0 {
		return 0
	}
	return 2 * o.InformationContent(mica) / (ia + ib)
}
