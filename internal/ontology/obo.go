package ontology

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseOBO reads a minimal OBO 1.2 flat file: [Term] stanzas with id, name,
// namespace, def and is_a tags. Unknown tags and non-Term stanzas are
// ignored; obsolete terms (is_obsolete: true) are skipped. The returned
// ontology is already Built.
func ParseOBO(r io.Reader) (*Ontology, error) {
	o := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	var cur *Term
	inTerm := false
	obsolete := false
	lineNo := 0
	flush := func() error {
		if !inTerm || cur == nil || obsolete {
			return nil
		}
		if err := o.Add(*cur); err != nil {
			return err
		}
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "["):
			if err := flush(); err != nil {
				return nil, err
			}
			inTerm = line == "[Term]"
			cur = &Term{}
			obsolete = false
		case !inTerm:
			continue
		default:
			tag, val, ok := strings.Cut(line, ":")
			if !ok {
				return nil, fmt.Errorf("obo: line %d: missing ':' in %q", lineNo, line)
			}
			val = strings.TrimSpace(val)
			// Strip trailing OBO comments ("GO:0001 ! some name").
			if i := strings.Index(val, " ! "); i >= 0 {
				val = strings.TrimSpace(val[:i])
			}
			switch tag {
			case "id":
				cur.ID = TermID(val)
			case "name":
				cur.Name = val
			case "namespace":
				cur.Namespace = val
			case "def":
				cur.Def = strings.Trim(val, `"`)
			case "is_a":
				cur.Parents = append(cur.Parents, TermID(val))
			case "is_obsolete":
				obsolete = val == "true"
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obo: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if err := o.Build(); err != nil {
		return nil, err
	}
	return o, nil
}

// WriteOBO serialises the ontology in the subset of OBO that ParseOBO reads.
// Terms are written in insertion order, so a generate→write→parse round trip
// is byte-stable.
func (o *Ontology) WriteOBO(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "format-version: 1.2\nontology: ctxsearch-synthetic\n")
	for _, id := range o.order {
		t := o.terms[id]
		fmt.Fprintf(bw, "\n[Term]\nid: %s\nname: %s\n", t.ID, t.Name)
		if t.Namespace != "" {
			fmt.Fprintf(bw, "namespace: %s\n", t.Namespace)
		}
		if t.Def != "" {
			fmt.Fprintf(bw, "def: %q\n", t.Def)
		}
		for _, p := range t.Parents {
			fmt.Fprintf(bw, "is_a: %s ! %s\n", p, o.terms[p].Name)
		}
	}
	return bw.Flush()
}
