package ontology

import (
	"math"
	"reflect"
	"testing"
)

// diamond builds the classic DAG:
//
//	  root
//	 /    \
//	a      b
//	 \    /
//	  c
//	  |
//	  d
func diamond(t *testing.T) *Ontology {
	t.Helper()
	o := New()
	add := func(id, name string, parents ...TermID) {
		t.Helper()
		if err := o.Add(Term{ID: TermID(id), Name: name, Parents: parents}); err != nil {
			t.Fatal(err)
		}
	}
	add("GO:1", "root")
	add("GO:2", "a", "GO:1")
	add("GO:3", "b", "GO:1")
	add("GO:4", "c", "GO:2", "GO:3")
	add("GO:5", "d", "GO:4")
	if err := o.Build(); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestBuildBasics(t *testing.T) {
	o := diamond(t)
	if o.Len() != 5 {
		t.Fatalf("Len = %d", o.Len())
	}
	if got := o.Roots(); !reflect.DeepEqual(got, []TermID{"GO:1"}) {
		t.Fatalf("Roots = %v", got)
	}
	if got := o.Children("GO:1"); !reflect.DeepEqual(got, []TermID{"GO:2", "GO:3"}) {
		t.Fatalf("Children(root) = %v", got)
	}
	if o.Term("GO:4").Name != "c" {
		t.Fatal("Term lookup failed")
	}
	if o.Term("GO:99") != nil {
		t.Fatal("unknown term should be nil")
	}
}

func TestLevels(t *testing.T) {
	o := diamond(t)
	want := map[TermID]int{"GO:1": 1, "GO:2": 2, "GO:3": 2, "GO:4": 3, "GO:5": 4}
	for id, l := range want {
		if got := o.Level(id); got != l {
			t.Errorf("Level(%s) = %d, want %d", id, got, l)
		}
	}
	if o.MaxLevel() != 4 {
		t.Errorf("MaxLevel = %d", o.MaxLevel())
	}
	if got := o.TermsAtLevel(2); !reflect.DeepEqual(got, []TermID{"GO:2", "GO:3"}) {
		t.Errorf("TermsAtLevel(2) = %v", got)
	}
}

func TestDescendantsNoDoubleCount(t *testing.T) {
	o := diamond(t)
	// c is reachable from root via both a and b but must count once.
	if got := o.DescendantCount("GO:1"); got != 4 {
		t.Errorf("DescendantCount(root) = %d, want 4", got)
	}
	if got := o.Descendants("GO:1"); !reflect.DeepEqual(got, []TermID{"GO:2", "GO:3", "GO:4", "GO:5"}) {
		t.Errorf("Descendants(root) = %v", got)
	}
	if got := o.DescendantCount("GO:5"); got != 0 {
		t.Errorf("leaf DescendantCount = %d", got)
	}
}

func TestAncestors(t *testing.T) {
	o := diamond(t)
	if got := o.Ancestors("GO:4"); !reflect.DeepEqual(got, []TermID{"GO:1", "GO:2", "GO:3"}) {
		t.Errorf("Ancestors(c) = %v", got)
	}
	if !o.IsAncestor("GO:1", "GO:5") {
		t.Error("root must be ancestor of d")
	}
	if o.IsAncestor("GO:5", "GO:1") {
		t.Error("d is not an ancestor of root")
	}
	if o.IsAncestor("GO:2", "GO:3") {
		t.Error("siblings are not ancestors")
	}
}

func TestHierarchicallyRelated(t *testing.T) {
	o := diamond(t)
	if !o.HierarchicallyRelated("GO:1", "GO:4") || !o.HierarchicallyRelated("GO:4", "GO:1") {
		t.Error("ancestor/descendant must be related both ways")
	}
	if !o.HierarchicallyRelated("GO:2", "GO:2") {
		t.Error("a term is related to itself")
	}
	if o.HierarchicallyRelated("GO:2", "GO:3") {
		t.Error("siblings are not hierarchically related")
	}
}

func TestInformationContent(t *testing.T) {
	o := diamond(t)
	// root: (4+1)/5 = 1 → I = 0; leaf: 1/5 → I = log 5.
	if got := o.InformationContent("GO:1"); got != 0 {
		t.Errorf("I(root) = %v", got)
	}
	if got := o.InformationContent("GO:5"); math.Abs(got-math.Log(5)) > 1e-12 {
		t.Errorf("I(leaf) = %v", got)
	}
	// Information content must be monotone non-increasing toward the root.
	if !(o.InformationContent("GO:5") >= o.InformationContent("GO:4")) ||
		!(o.InformationContent("GO:4") >= o.InformationContent("GO:1")) {
		t.Error("information content must grow with depth")
	}
	if o.InformationContent("GO:99") != 0 {
		t.Error("unknown term must have I = 0")
	}
}

func TestRateOfDecay(t *testing.T) {
	o := diamond(t)
	d := o.RateOfDecay("GO:4", "GO:5")
	if !(d > 0 && d <= 1) {
		t.Errorf("RateOfDecay = %v, want in (0,1]", d)
	}
	// Root has I = 0 → degenerate case returns 1.
	if got := o.RateOfDecay("GO:1", "GO:5"); got != 1 {
		t.Errorf("degenerate decay = %v", got)
	}
}

func TestAddErrors(t *testing.T) {
	o := New()
	if err := o.Add(Term{ID: "", Name: "x"}); err == nil {
		t.Error("empty ID must fail")
	}
	if err := o.Add(Term{ID: "GO:1", Name: ""}); err == nil {
		t.Error("empty name must fail")
	}
	if err := o.Add(Term{ID: "GO:1", Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Add(Term{ID: "GO:1", Name: "y"}); err == nil {
		t.Error("duplicate ID must fail")
	}
}

func TestBuildErrors(t *testing.T) {
	// Dangling parent.
	o := New()
	_ = o.Add(Term{ID: "GO:1", Name: "x", Parents: []TermID{"GO:404"}})
	if err := o.Build(); err == nil {
		t.Error("dangling parent must fail Build")
	}
	// Cycle (a→b→a) has no root.
	o = New()
	_ = o.Add(Term{ID: "GO:1", Name: "a", Parents: []TermID{"GO:2"}})
	_ = o.Add(Term{ID: "GO:2", Name: "b", Parents: []TermID{"GO:1"}})
	if err := o.Build(); err == nil {
		t.Error("cyclic ontology must fail Build")
	}
	// Cycle off to the side of a valid root.
	o = New()
	_ = o.Add(Term{ID: "GO:1", Name: "root"})
	_ = o.Add(Term{ID: "GO:2", Name: "a", Parents: []TermID{"GO:3"}})
	_ = o.Add(Term{ID: "GO:3", Name: "b", Parents: []TermID{"GO:2"}})
	if err := o.Build(); err == nil {
		t.Error("side cycle must fail Build")
	}
	// Double Build.
	o = New()
	_ = o.Add(Term{ID: "GO:1", Name: "root"})
	if err := o.Build(); err != nil {
		t.Fatal(err)
	}
	if err := o.Build(); err == nil {
		t.Error("second Build must fail")
	}
	if err := o.Add(Term{ID: "GO:2", Name: "late"}); err == nil {
		t.Error("Add after Build must fail")
	}
}

func TestAddCopiesParents(t *testing.T) {
	o := New()
	parents := []TermID{}
	_ = o.Add(Term{ID: "GO:1", Name: "root", Parents: parents})
	parents = append(parents, "GO:mutated")
	_ = parents
	if err := o.Build(); err != nil {
		t.Fatalf("caller mutation leaked into the ontology: %v", err)
	}
}
