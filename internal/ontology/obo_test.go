package ontology

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOBO = `format-version: 1.2

[Term]
id: GO:0000001
name: biological process
namespace: biological_process

[Term]
id: GO:0000002
name: rna splicing
namespace: biological_process
def: "Removal of introns."
is_a: GO:0000001 ! biological process

[Term]
id: GO:0000003
name: obsolete thing
is_obsolete: true

[Typedef]
id: part_of
name: part of
`

func TestParseOBO(t *testing.T) {
	o, err := ParseOBO(strings.NewReader(sampleOBO))
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (obsolete + typedef skipped)", o.Len())
	}
	sp := o.Term("GO:0000002")
	if sp == nil || sp.Name != "rna splicing" || sp.Def != "Removal of introns." {
		t.Fatalf("term = %+v", sp)
	}
	if len(sp.Parents) != 1 || sp.Parents[0] != "GO:0000001" {
		t.Fatalf("parents = %v (comment after ! must be stripped)", sp.Parents)
	}
	if o.Level("GO:0000002") != 2 {
		t.Fatal("level not computed")
	}
}

func TestParseOBOBadLine(t *testing.T) {
	_, err := ParseOBO(strings.NewReader("[Term]\nid GO:1\n"))
	if err == nil {
		t.Fatal("malformed tag line must fail")
	}
}

func TestParseOBODanglingParent(t *testing.T) {
	_, err := ParseOBO(strings.NewReader("[Term]\nid: GO:1\nname: x\nis_a: GO:404\n"))
	if err == nil {
		t.Fatal("dangling is_a must fail")
	}
}

func TestOBORoundTrip(t *testing.T) {
	orig, err := Generate(GenConfig{Seed: 11, NumTerms: 120, MaxDepth: 7, SecondParentProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteOBO(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseOBO(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != orig.Len() {
		t.Fatalf("round trip lost terms: %d vs %d", parsed.Len(), orig.Len())
	}
	for _, id := range orig.TermIDs() {
		a, b := orig.Term(id), parsed.Term(id)
		if b == nil || a.Name != b.Name || a.Namespace != b.Namespace ||
			len(a.Parents) != len(b.Parents) {
			t.Fatalf("term %s not preserved: %+v vs %+v", id, a, b)
		}
		if orig.Level(id) != parsed.Level(id) {
			t.Fatalf("level of %s not preserved", id)
		}
		if orig.DescendantCount(id) != parsed.DescendantCount(id) {
			t.Fatalf("descendant count of %s not preserved", id)
		}
	}
	// Serialisation is byte-stable.
	var buf2 bytes.Buffer
	if err := parsed.WriteOBO(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := orig.WriteOBO(&buf1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("OBO serialisation is not byte-stable")
	}
}
