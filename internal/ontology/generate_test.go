package ontology

import (
	"strings"
	"testing"
)

func TestGenerateBasics(t *testing.T) {
	cfg := DefaultGenConfig()
	o, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != cfg.NumTerms {
		t.Fatalf("Len = %d, want %d", o.Len(), cfg.NumTerms)
	}
	if len(o.Roots()) != 3 {
		t.Fatalf("roots = %v", o.Roots())
	}
	// The experiments slice at levels 3, 5 and 7; all must be populated.
	for _, l := range []int{3, 5, 7} {
		if n := len(o.TermsAtLevel(l)); n == 0 {
			t.Errorf("level %d is empty", l)
		}
	}
	if o.MaxLevel() > cfg.MaxDepth {
		t.Errorf("MaxLevel %d exceeds MaxDepth %d", o.MaxLevel(), cfg.MaxDepth)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 42, NumTerms: 200, MaxDepth: 8, SecondParentProb: 0.2}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("sizes differ")
	}
	for _, id := range a.TermIDs() {
		ta, tb := a.Term(id), b.Term(id)
		if tb == nil || ta.Name != tb.Name || len(ta.Parents) != len(tb.Parents) {
			t.Fatalf("term %s differs between runs", id)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(GenConfig{Seed: 1, NumTerms: 100, MaxDepth: 6})
	b, _ := Generate(GenConfig{Seed: 2, NumTerms: 100, MaxDepth: 6})
	diff := 0
	for _, id := range a.TermIDs() {
		if bt := b.Term(id); bt == nil || bt.Name != a.Term(id).Name {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical ontologies")
	}
}

func TestGenerateUniqueNames(t *testing.T) {
	o, err := Generate(GenConfig{Seed: 7, NumTerms: 500, MaxDepth: 9, SecondParentProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]TermID{}
	for _, id := range o.TermIDs() {
		name := o.Term(id).Name
		if prev, dup := seen[name]; dup {
			t.Fatalf("terms %s and %s share name %q", prev, id, name)
		}
		seen[name] = id
		if n := len(strings.Fields(name)); n == 0 || n > 10 {
			t.Errorf("term %s has degenerate name %q", id, name)
		}
	}
}

func TestGenerateSecondParentsExist(t *testing.T) {
	o, err := Generate(GenConfig{Seed: 3, NumTerms: 400, MaxDepth: 8, SecondParentProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, id := range o.TermIDs() {
		if len(o.Parents(id)) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-parent terms generated despite high probability")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenConfig{NumTerms: 2, MaxDepth: 5}); err == nil {
		t.Error("NumTerms < 3 must fail")
	}
	if _, err := Generate(GenConfig{NumTerms: 10, MaxDepth: 1}); err == nil {
		t.Error("MaxDepth < 2 must fail")
	}
}

func TestGenerateNamespacesInherited(t *testing.T) {
	o, err := Generate(GenConfig{Seed: 5, NumTerms: 150, MaxDepth: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range o.TermIDs() {
		tm := o.Term(id)
		if tm.Namespace == "" {
			t.Fatalf("term %s has empty namespace", id)
		}
		if len(tm.Parents) > 0 {
			p := o.Term(tm.Parents[0])
			if p.Namespace != tm.Namespace {
				t.Fatalf("term %s namespace %q differs from first parent's %q", id, tm.Namespace, p.Namespace)
			}
		}
	}
}
