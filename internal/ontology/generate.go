package ontology

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenConfig configures the synthetic GO-like ontology generator.
type GenConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// NumTerms is the total number of terms including the three roots.
	NumTerms int
	// MaxDepth is the deepest level to generate (root = level 1). The
	// paper's experiments slice results at levels 3, 5 and 7, so MaxDepth
	// should be at least 8.
	MaxDepth int
	// SecondParentProb is the probability a non-root term gets a second
	// is-a parent, making the structure a true DAG like GO.
	SecondParentProb float64
}

// DefaultGenConfig returns the configuration used by the experiments: a
// 600-term, depth-9 DAG.
func DefaultGenConfig() GenConfig {
	return GenConfig{Seed: 1, NumTerms: 600, MaxDepth: 9, SecondParentProb: 0.12}
}

// Vocabulary used to compose GO-style term names. Heads are process/function
// nouns; entities are biological objects; modifiers specialise a parent term
// the way real GO children do ("general X", "nonspecific X", …, the paper's
// §5.2 example).
var (
	genHeads = []string{
		"activity", "binding", "transport", "biosynthesis", "catabolism",
		"assembly", "repair", "replication", "transcription", "translation",
		"folding", "localization", "secretion", "phosphorylation",
		"methylation", "signaling", "elongation", "initiation", "splicing",
		"degradation", "maturation", "remodeling", "condensation",
	}
	genEntities = []string{
		"rna polymerase ii", "dna", "protein kinase", "membrane",
		"chromatin", "histone", "ribosome", "mitochondrion", "receptor",
		"ion channel", "ubiquitin", "helicase", "cytoskeleton", "telomere",
		"nucleotide", "lipid", "calcium", "zinc finger", "transcription factor",
		"messenger rna", "transfer rna", "proteasome", "spliceosome",
		"nucleosome", "kinetochore", "centromere", "microtubule", "actin",
		"glucose", "amino acid", "peptide", "growth factor", "cyclin",
	}
	genModifiers = []string{
		"general", "specific", "nonspecific", "positive", "negative",
		"nuclear", "cytoplasmic", "mitochondrial", "membrane-bound",
		"atp-dependent", "calcium-dependent", "ligand-activated",
		"stress-induced", "early", "late", "constitutive", "inducible",
		"basal", "enhancer-dependent", "sequence-specific",
	}
)

// Generate builds a deterministic synthetic ontology. The three roots mirror
// GO's namespaces; every other term's name is derived from its parent's name
// so that term-word specialisation deepens down the hierarchy, which is what
// the pattern-based score function exploits.
func Generate(cfg GenConfig) (*Ontology, error) {
	if cfg.NumTerms < 3 {
		return nil, fmt.Errorf("ontology: NumTerms must be ≥ 3, got %d", cfg.NumTerms)
	}
	if cfg.MaxDepth < 2 {
		return nil, fmt.Errorf("ontology: MaxDepth must be ≥ 2, got %d", cfg.MaxDepth)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	o := New()

	id := func(n int) TermID { return TermID(fmt.Sprintf("GO:%07d", n)) }
	type node struct {
		id    TermID
		name  string
		ns    string
		level int
	}
	roots := []node{
		{id(1), "biological process", "biological_process", 1},
		{id(2), "molecular function", "molecular_function", 1},
		{id(3), "cellular component", "cellular_component", 1},
	}
	byLevel := map[int][]node{}
	seenNames := map[string]bool{}
	for _, r := range roots {
		if err := o.Add(Term{ID: r.id, Name: r.name, Namespace: r.ns}); err != nil {
			return nil, err
		}
		byLevel[1] = append(byLevel[1], r)
		seenNames[r.name] = true
	}

	// deriveName builds a child name from the parent's, keeping names ≤ 9
	// words and globally unique.
	deriveName := func(parent node) string {
		base := parent.name
		if parent.level == 1 {
			// Children of a root get fresh "<entity> <head>" phrases.
			base = genEntities[rng.Intn(len(genEntities))] + " " + genHeads[rng.Intn(len(genHeads))]
		}
		for attempt := 0; attempt < 40; attempt++ {
			var name string
			switch rng.Intn(4) {
			case 0:
				name = genModifiers[rng.Intn(len(genModifiers))] + " " + base
			case 1:
				name = genEntities[rng.Intn(len(genEntities))] + " " + base
			case 2:
				name = "regulation of " + base
			default:
				name = base + " " + genHeads[rng.Intn(len(genHeads))]
			}
			if len(strings.Fields(name)) > 9 {
				// Too long: specialise with a single modifier instead.
				name = genModifiers[rng.Intn(len(genModifiers))] + " " + strings.Join(strings.Fields(base)[:7], " ")
			}
			if !seenNames[name] {
				seenNames[name] = true
				return name
			}
		}
		// Fall back to a numbered variant; guaranteed unique.
		name := fmt.Sprintf("%s variant %d", base, len(seenNames))
		seenNames[name] = true
		return name
	}

	for n := 4; n <= cfg.NumTerms; n++ {
		// Target a level in [2, MaxDepth] so every level the experiments
		// slice on is populated; pick a parent one level up.
		target := 2 + rng.Intn(cfg.MaxDepth-1)
		var cands []node
		for l := target - 1; l >= 1; l-- {
			if len(byLevel[l]) > 0 {
				cands = byLevel[l]
				break
			}
		}
		parent := cands[rng.Intn(len(cands))]
		t := Term{
			ID:        id(n),
			Name:      deriveName(parent),
			Namespace: parent.ns,
			Parents:   []TermID{parent.id},
		}
		// Optional second parent from the same level as the first, same
		// namespace; edges always point old→new so acyclicity holds by
		// construction.
		if rng.Float64() < cfg.SecondParentProb {
			pool := byLevel[parent.level]
			if len(pool) > 1 {
				p2 := pool[rng.Intn(len(pool))]
				if p2.id != parent.id {
					t.Parents = append(t.Parents, p2.id)
				}
			}
		}
		if err := o.Add(t); err != nil {
			return nil, err
		}
		child := node{t.ID, t.Name, t.Namespace, parent.level + 1}
		byLevel[child.level] = append(byLevel[child.level], child)
	}
	if err := o.Build(); err != nil {
		return nil, err
	}
	return o, nil
}
