// Package cluster implements the automatically-derived hierarchical
// contexts the paper's §6 contrasts with its ontology-based approach
// (Ferragina & Gulli's web-snippet clustering): search results are grouped
// by k-means over their TF-IDF vectors and each cluster is labelled with
// its centroid's top terms. The experiments compare cluster purity against
// ontology-context purity — the paper's argument being that constructed
// clusters "are not as meaningful as the human-created ontology-based
// contexts".
package cluster

import (
	"fmt"
	"sort"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/vector"
)

// Cluster is one group of documents with a derived label.
type Cluster struct {
	// Label holds the centroid's top terms (stemmed).
	Label []string
	// Docs are the member documents, sorted.
	Docs []corpus.PaperID
	// Centroid is the mean TF-IDF vector of the members.
	Centroid vector.Sparse
}

// Config configures k-means clustering.
type Config struct {
	// K is the number of clusters (0 = sqrt(n/2), a common heuristic).
	K int
	// MaxIter bounds Lloyd iterations (default 25).
	MaxIter int
	// LabelTerms is the number of centroid terms used as the label
	// (default 3).
	LabelTerms int
}

// KMeans clusters documents by cosine similarity of their full-text TF-IDF
// vectors. Deterministic: initial centroids are the documents at evenly
// spaced positions of the ID-sorted input, and ties in assignment go to the
// lower cluster index. Returns clusters sorted by size (largest first);
// empty clusters are dropped.
func KMeans(a *corpus.Analyzer, docs []corpus.PaperID, cfg Config) ([]Cluster, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("cluster: no documents")
	}
	ids := append([]corpus.PaperID(nil), docs...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	k := cfg.K
	if k <= 0 {
		k = intSqrt(len(ids) / 2)
	}
	if k < 1 {
		k = 1
	}
	if k > len(ids) {
		k = len(ids)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 25
	}
	labelTerms := cfg.LabelTerms
	if labelTerms <= 0 {
		labelTerms = 3
	}

	vecs := make([]vector.Sparse, len(ids))
	norms := make([]float64, len(ids))
	for i, id := range ids {
		vecs[i] = a.TFIDFAll(id)
		norms[i] = a.TFIDFAllNorm(id)
	}

	// Deterministic init: evenly spaced documents.
	centroids := make([]vector.Sparse, k)
	for c := 0; c < k; c++ {
		centroids[c] = vecs[c*len(ids)/k].Clone()
	}
	assign := make([]int, len(ids))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		cNorms := make([]float64, k)
		for c := range centroids {
			cNorms[c] = centroids[c].Norm()
		}
		for i := range ids {
			best, bestSim := 0, -1.0
			for c := range centroids {
				sim := vector.CosineWithNorms(vecs[i], centroids[c], norms[i], cNorms[c])
				if sim > bestSim {
					bestSim = sim
					best = c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		groups := make([][]vector.Sparse, k)
		for i, c := range assign {
			groups[c] = append(groups[c], vecs[i])
		}
		for c := range centroids {
			if len(groups[c]) > 0 {
				centroids[c] = vector.Centroid(groups[c])
			}
			// Empty cluster: keep the old centroid; it may attract members
			// next round or stay empty and be dropped at the end.
		}
	}

	byCluster := make(map[int][]corpus.PaperID)
	for i, c := range assign {
		byCluster[c] = append(byCluster[c], ids[i])
	}
	var out []Cluster
	for c := 0; c < k; c++ {
		members := byCluster[c]
		if len(members) == 0 {
			continue
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, Cluster{
			Label:    centroids[c].TopTerms(labelTerms),
			Docs:     members,
			Centroid: centroids[c],
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].Docs) != len(out[j].Docs) {
			return len(out[i].Docs) > len(out[j].Docs)
		}
		return out[i].Docs[0] < out[j].Docs[0]
	})
	return out, nil
}

func intSqrt(n int) int {
	if n < 1 {
		return 1
	}
	x := 1
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

// Purity measures how homogeneous a grouping is against ground-truth
// labels: Σ_c max_label |c ∩ label| / N. 1 means every group is
// single-label. labels maps each document to its true label (documents
// missing from the map are skipped).
func Purity(groups [][]corpus.PaperID, labels map[corpus.PaperID]string) float64 {
	total := 0
	agree := 0
	for _, g := range groups {
		counts := map[string]int{}
		n := 0
		for _, id := range g {
			if l, ok := labels[id]; ok {
				counts[l]++
				n++
			}
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		total += n
		agree += best
	}
	if total == 0 {
		return 0
	}
	return float64(agree) / float64(total)
}
