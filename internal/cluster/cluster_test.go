package cluster

import (
	"reflect"
	"testing"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// twoTopicCorpus builds papers from two clearly separated vocabularies.
func twoTopicCorpus(t *testing.T) (*corpus.Analyzer, []corpus.PaperID, map[corpus.PaperID]string) {
	t.Helper()
	var papers []*corpus.Paper
	labels := map[corpus.PaperID]string{}
	bioTexts := []string{
		"rna polymerase transcription machinery in cells",
		"transcription of rna by polymerase enzymes",
		"cellular rna transcription control",
		"polymerase driven rna synthesis in the cell",
	}
	metalTexts := []string{
		"steel corrosion in marine alloys",
		"alloy hardness and corrosion resistance",
		"corrosion of steel structures",
		"marine alloy steel treatments",
	}
	id := corpus.PaperID(0)
	for _, txt := range bioTexts {
		papers = append(papers, &corpus.Paper{ID: id, Title: txt, Abstract: txt, Body: txt, Authors: []string{"x"}})
		labels[id] = "bio"
		id++
	}
	for _, txt := range metalTexts {
		papers = append(papers, &corpus.Paper{ID: id, Title: txt, Abstract: txt, Body: txt, Authors: []string{"y"}})
		labels[id] = "metal"
		id++
	}
	c, err := corpus.NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]corpus.PaperID, len(papers))
	for i := range papers {
		ids[i] = corpus.PaperID(i)
	}
	return corpus.NewAnalyzer(c), ids, labels
}

func TestKMeansSeparatesTopics(t *testing.T) {
	a, ids, labels := twoTopicCorpus(t)
	clusters, err := KMeans(a, ids, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	groups := [][]corpus.PaperID{clusters[0].Docs, clusters[1].Docs}
	if p := Purity(groups, labels); p != 1 {
		t.Fatalf("purity = %v for trivially separable topics: %v", p, clusters)
	}
	// Labels reflect the vocabulary.
	for _, cl := range clusters {
		if len(cl.Label) == 0 {
			t.Fatal("missing cluster label")
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	a, ids, _ := twoTopicCorpus(t)
	c1, err := KMeans(a, ids, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := KMeans(a, ids, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) != len(c2) {
		t.Fatal("cluster counts differ")
	}
	for i := range c1 {
		if !reflect.DeepEqual(c1[i].Docs, c2[i].Docs) {
			t.Fatalf("cluster %d differs between runs", i)
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	a, ids, _ := twoTopicCorpus(t)
	if _, err := KMeans(a, nil, Config{}); err == nil {
		t.Fatal("empty input must fail")
	}
	// K larger than n clamps.
	clusters, err := KMeans(a, ids[:2], Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range clusters {
		total += len(c.Docs)
	}
	if total != 2 {
		t.Fatalf("members lost: %d", total)
	}
	// Default K heuristic.
	clusters, err = KMeans(a, ids, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) == 0 {
		t.Fatal("no clusters with default K")
	}
}

func TestPurity(t *testing.T) {
	labels := map[corpus.PaperID]string{0: "a", 1: "a", 2: "b", 3: "b"}
	perfect := [][]corpus.PaperID{{0, 1}, {2, 3}}
	if p := Purity(perfect, labels); p != 1 {
		t.Fatalf("perfect purity = %v", p)
	}
	mixed := [][]corpus.PaperID{{0, 2}, {1, 3}}
	if p := Purity(mixed, labels); p != 0.5 {
		t.Fatalf("mixed purity = %v", p)
	}
	if p := Purity(nil, labels); p != 0 {
		t.Fatalf("empty purity = %v", p)
	}
	// Unlabelled docs are skipped.
	if p := Purity([][]corpus.PaperID{{0, 99}}, labels); p != 1 {
		t.Fatalf("unlabelled skip purity = %v", p)
	}
}

// clusteredSearchResults is an integration check on generated data: cluster
// the results of a context query and ensure purity against primary topics
// is computable and sane.
func TestClusterGeneratedResults(t *testing.T) {
	o, err := ontology.Generate(ontology.GenConfig{Seed: 6, NumTerms: 60, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	ids := make([]corpus.PaperID, c.Len())
	labels := map[corpus.PaperID]string{}
	for i, p := range c.Papers() {
		ids[i] = p.ID
		labels[p.ID] = string(p.Topics[0])
	}
	clusters, err := KMeans(a, ids, Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	var groups [][]corpus.PaperID
	for _, cl := range clusters {
		groups = append(groups, cl.Docs)
	}
	p := Purity(groups, labels)
	if p <= 0 || p > 1 {
		t.Fatalf("purity = %v", p)
	}
}
