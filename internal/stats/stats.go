// Package stats provides the small statistical toolkit used by the
// evaluation harness: central moments, medians, histograms, the paper's
// separability standard deviation, and rank correlations for the
// HITS-vs-PageRank ablation.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (average of the two middle elements for
// even length), or 0 for empty input. The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Histogram counts xs into n equal-width bins over [lo, hi]. Values at hi
// fall into the last bin; values outside [lo, hi] are clamped.
func Histogram(xs []float64, n int, lo, hi float64) []int {
	if n <= 0 || hi <= lo {
		return nil
	}
	bins := make([]int, n)
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins
}

// Percentages converts integer counts into percentages of their sum; all
// zeros for an empty or zero-sum input.
func Percentages(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = 100 * float64(c) / float64(total)
	}
	return out
}

// Pearson returns the Pearson linear correlation of paired samples, or 0
// when either side has zero variance or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of paired samples (Pearson
// over fractional ranks, with ties averaged).
func Spearman(xs, ys []float64) float64 {
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks converts values into 1-based fractional ranks with ties receiving
// the average of the ranks they span.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Min and Max return the extrema of xs; both return 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// SeparabilitySD implements the paper's separability metric (§5.2): scores
// (assumed in [0,1]) are split into nbins equal ranges; Xi is the percentage
// of papers whose score falls in range i; the statistic is the standard
// deviation of the Xi around the uniform expectation 100/nbins.
//
// SD = sqrt( (1/n) Σ (Xi − 100/n)² )
//
// 0 means perfectly uniform (best separability); large values mean the mass
// concentrates in few ranges (papers become indistinguishable).
func SeparabilitySD(scores []float64, nbins int) float64 {
	if nbins <= 0 || len(scores) == 0 {
		return 0
	}
	counts := Histogram(scores, nbins, 0, 1)
	perc := Percentages(counts)
	want := 100 / float64(nbins)
	var s float64
	for _, p := range perc {
		d := p - want
		s += d * d
	}
	return math.Sqrt(s / float64(nbins))
}
