package stats

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty input must return 0")
	}
	xs := []float64{3, 1, 2}
	if !almostEq(Mean(xs), 2) || !almostEq(Median(xs), 2) {
		t.Errorf("mean=%v median=%v", Mean(xs), Median(xs))
	}
	if !almostEq(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Errorf("even median = %v", Median([]float64{4, 1, 3, 2}))
	}
	// Median must not mutate its input.
	in := []float64{9, 1, 5}
	Median(in)
	if !reflect.DeepEqual(in, []float64{9, 1, 5}) {
		t.Error("Median mutated its input")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5, 5, 5}) != 0 {
		t.Error("constant slice must have SD 0")
	}
	if !almostEq(StdDev([]float64{2, 4}), 1) {
		t.Errorf("SD = %v", StdDev([]float64{2, 4}))
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0.05, 0.15, 0.95, 1.0, -1, 2}, 10, 0, 1)
	want := []int{3, 1, 0, 0, 0, 0, 0, 0, 0, 3} // -1 clamps to bin 0; 1.0 and 2 to bin 9
	if !reflect.DeepEqual(h, want) {
		t.Fatalf("hist = %v, want %v", h, want)
	}
	if Histogram(nil, 0, 0, 1) != nil || Histogram(nil, 5, 1, 1) != nil {
		t.Error("degenerate parameters must return nil")
	}
}

func TestPercentages(t *testing.T) {
	p := Percentages([]int{1, 3})
	if !almostEq(p[0], 25) || !almostEq(p[1], 75) {
		t.Fatalf("p = %v", p)
	}
	p = Percentages([]int{0, 0})
	if p[0] != 0 || p[1] != 0 {
		t.Fatalf("zero-sum p = %v", p)
	}
}

func TestPearsonSpearman(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if !almostEq(Pearson(xs, ys), 1) {
		t.Errorf("perfect Pearson = %v", Pearson(xs, ys))
	}
	rev := []float64{8, 6, 4, 2}
	if !almostEq(Pearson(xs, rev), -1) {
		t.Errorf("inverse Pearson = %v", Pearson(xs, rev))
	}
	if Pearson(xs, []float64{5, 5, 5, 5}) != 0 {
		t.Error("zero-variance Pearson must be 0")
	}
	if Pearson(xs, ys[:2]) != 0 {
		t.Error("length mismatch must return 0")
	}
	// Spearman is invariant under monotone transforms.
	cube := []float64{1, 8, 27, 64}
	if !almostEq(Spearman(xs, cube), 1) {
		t.Errorf("Spearman monotone = %v", Spearman(xs, cube))
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	if !reflect.DeepEqual(r, want) {
		t.Fatalf("ranks = %v, want %v", r, want)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("min=%v max=%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty extrema must be 0")
	}
}

func TestSeparabilitySD(t *testing.T) {
	// Perfectly uniform over 10 bins: SD = 0.
	var uniform []float64
	for i := 0; i < 10; i++ {
		uniform = append(uniform, float64(i)/10+0.05)
	}
	if got := SeparabilitySD(uniform, 10); !almostEq(got, 0) {
		t.Errorf("uniform SD = %v", got)
	}
	// All mass in one bin: Xi = {100,0,...}; SD = sqrt((90²+9·10²)/10) = 30.
	allSame := []float64{0.5, 0.5, 0.5, 0.5}
	if got := SeparabilitySD(allSame, 10); !almostEq(got, 30) {
		t.Errorf("degenerate SD = %v, want 30", got)
	}
	if SeparabilitySD(nil, 10) != 0 || SeparabilitySD(uniform, 0) != 0 {
		t.Error("degenerate inputs must return 0")
	}
}

// Property: separability SD is bounded by sqrt((100-u)²+ (n-1)u²)/sqrt(n)
// (all mass in one bin) and non-negative.
func TestSeparabilityBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 255
		}
		sd := SeparabilitySD(xs, 10)
		return sd >= 0 && sd <= 30+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Spearman of any sequence with itself is 1 (when variance > 0).
func TestSpearmanSelfProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		vary := false
		for i, r := range raw {
			xs[i] = float64(r)
			if xs[i] != xs[0] {
				vary = true
			}
		}
		if !vary {
			return true
		}
		return almostEq(Spearman(xs, xs), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
