package index

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"ctxsearch/internal/bitset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/vector"
)

// buildBlockFixture builds the shared mid-sized analyzer once so the
// block-size battery can construct sibling indexes cheaply.
func buildBlockFixture(t testing.TB) (*corpus.Analyzer, *corpus.Corpus) {
	t.Helper()
	o, err := ontology.Generate(ontology.GenConfig{Seed: 11, NumTerms: 70, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	return corpus.NewAnalyzer(c), c
}

// TestSearchTopKBlockSizeGolden asserts the block-max pruned path returns
// byte-identical pages at every block granularity — disabled (pure global
// MaxScore), degenerate one-posting blocks, tiny, and realistic sizes —
// across randomized (k, threshold, restriction) combinations. Identical
// results at all settings is the whole exactness contract: block bounds
// only ever skip work, never change scores.
func TestSearchTopKBlockSizeGolden(t *testing.T) {
	a, c := buildBlockFixture(t)
	queries := []string{
		"regulation of rna synthesis",
		"protein binding transport",
		"activity complex formation regulation binding transport rna protein",
		"synthesis",
	}
	for _, bs := range []int{-1, 1, 3, 64, 128} {
		bs := bs
		t.Run(fmt.Sprintf("block=%d", bs), func(t *testing.T) {
			ix := BuildWorkersBlock(a, 0, bs)
			if bs <= 0 && ix.BlockSize() != 0 {
				t.Fatalf("BlockSize() = %d after disabled build", ix.BlockSize())
			}
			if bs > 0 && ix.BlockSize() != bs {
				t.Fatalf("BlockSize() = %d, want %d", ix.BlockSize(), bs)
			}
			rng := rand.New(rand.NewSource(99))
			for qi, q := range queries {
				qv := a.QueryVector(q)
				for trial := 0; trial < 20; trial++ {
					opts := Options{Limit: 1 + rng.Intn(40)}
					switch rng.Intn(3) {
					case 1:
						opts.Threshold = rng.Float64() * 0.4
					case 2:
						var set bitset.Set
						for d := 0; d < c.Len(); d++ {
							if rng.Intn(2) == 0 {
								set.Add(d)
							}
						}
						opts.WithinSet = set
						opts.Threshold = rng.Float64() * 0.2
					}
					label := fmt.Sprintf("query %d %q trial %d opts %+v", qi, q, trial, opts)
					got, err := ix.SearchVectorContext(context.Background(), qv, opts)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					diffHits(t, label, got, exhaustiveTopK(t, ix, qv, opts))
				}
			}
		})
	}
}

// checkBlockTables verifies the block tables against a naive recomputation
// over the index's own postings: offsets shape, and each block's maxima
// being exactly the maxima of the postings it covers.
func checkBlockTables(t *testing.T, label string, ix *Index) {
	t.Helper()
	bs := ix.blockSize
	if bs <= 0 || ix.blockOffsets == nil {
		t.Fatalf("%s: no block tables (size %d)", label, bs)
	}
	if len(ix.blockOffsets) != ix.Terms()+1 || ix.blockOffsets[0] != 0 {
		t.Fatalf("%s: block offsets shape %d for %d terms", label, len(ix.blockOffsets), ix.Terms())
	}
	for tid := 0; tid < ix.Terms(); tid++ {
		docs, ws := ix.postingsOf(int32(tid))
		wantBlocks := (len(docs) + bs - 1) / bs
		first := int(ix.blockOffsets[tid])
		if int(ix.blockOffsets[tid+1])-first != wantBlocks {
			t.Fatalf("%s: term %d has %d postings, %d blocks, want %d",
				label, tid, len(docs), int(ix.blockOffsets[tid+1])-first, wantBlocks)
		}
		for b := 0; b < wantBlocks; b++ {
			lo, hi := b*bs, min((b+1)*bs, len(docs))
			var mw, mr float64
			for k := lo; k < hi; k++ {
				if ws[k] > mw {
					mw = ws[k]
				}
				if dn := ix.norms[docs[k]]; dn > 0 && ws[k]/dn > mr {
					mr = ws[k] / dn
				}
			}
			if ix.blockMaxWeight[first+b] != mw || ix.blockMaxRatio[first+b] != mr {
				t.Fatalf("%s: term %d block %d maxima = (%v, %v), want (%v, %v)",
					label, tid, b, ix.blockMaxWeight[first+b], ix.blockMaxRatio[first+b], mw, mr)
			}
		}
	}
}

// TestBuildBlockMaxima pins every per-block maximum as exactly the maximum
// over the postings that block covers, at several granularities, and pins
// worker-count determinism (the sharded pass writes disjoint terms).
func TestBuildBlockMaxima(t *testing.T) {
	a, _ := buildBlockFixture(t)
	for _, bs := range []int{1, 7, 128} {
		ix := BuildWorkersBlock(a, 0, bs)
		checkBlockTables(t, fmt.Sprintf("block=%d", bs), ix)

		seq := BuildWorkersBlock(a, 1, bs)
		if !slices.Equal(seq.blockOffsets, ix.blockOffsets) ||
			!slices.Equal(seq.blockMaxWeight, ix.blockMaxWeight) ||
			!slices.Equal(seq.blockMaxRatio, ix.blockMaxRatio) {
			t.Fatalf("block=%d: tables differ between workers=1 and workers=0", bs)
		}
	}
}

// TestFromPartsBlockRecompute pins the v4-upgrade path: parts without block
// tables bind to an index whose recomputed tables are identical to a fresh
// build's, and parts with tables are borrowed verbatim.
func TestFromPartsBlockRecompute(t *testing.T) {
	a, _ := buildBlockFixture(t)
	built := BuildWorkersBlock(a, 0, DefaultBlockSize)

	// Strip the tables, as a pre-v5 state would present them.
	p := built.Parts()
	p.BlockSize, p.BlockOffsets, p.BlockMaxWeight, p.BlockMaxRatio = 0, nil, nil, nil
	ix, err := FromParts(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if ix.BlockSize() != DefaultBlockSize {
		t.Fatalf("recomputed BlockSize() = %d, want %d", ix.BlockSize(), DefaultBlockSize)
	}
	if !slices.Equal(ix.blockOffsets, built.blockOffsets) ||
		!slices.Equal(ix.blockMaxWeight, built.blockMaxWeight) ||
		!slices.Equal(ix.blockMaxRatio, built.blockMaxRatio) {
		t.Fatal("FromParts-recomputed block tables differ from the fresh build's")
	}

	// Persisted tables bind zero-copy: the bound index aliases them.
	bound, err := FromParts(a, built.Parts())
	if err != nil {
		t.Fatal(err)
	}
	if &bound.blockOffsets[0] != &built.blockOffsets[0] {
		t.Fatal("FromParts copied persisted block offsets instead of borrowing")
	}

	// EnsureBlockTables fills stripped parts in place and is then a no-op.
	p2 := built.Parts()
	p2.BlockSize, p2.BlockOffsets, p2.BlockMaxWeight, p2.BlockMaxRatio = 0, nil, nil, nil
	p2.EnsureBlockTables(0)
	if !slices.Equal(p2.BlockOffsets, built.blockOffsets) {
		t.Fatal("EnsureBlockTables tables differ from the fresh build's")
	}
	before := &p2.BlockOffsets[0]
	p2.EnsureBlockTables(0)
	if &p2.BlockOffsets[0] != before {
		t.Fatal("EnsureBlockTables recomputed tables that were already present")
	}
}

// TestFromPartsBlockValidation covers the malformed-table rejections.
func TestFromPartsBlockValidation(t *testing.T) {
	a, _ := buildBlockFixture(t)
	built := BuildWorkersBlock(a, 0, DefaultBlockSize)
	mutations := []struct {
		name string
		mut  func(p *Parts)
	}{
		{"zero block size", func(p *Parts) { p.BlockSize = 0 }},
		{"short offsets", func(p *Parts) { p.BlockOffsets = p.BlockOffsets[:len(p.BlockOffsets)-1] }},
		{"nonzero first offset", func(p *Parts) {
			bo := slices.Clone(p.BlockOffsets)
			bo[0] = 1
			p.BlockOffsets = bo
		}},
		{"wrong block count", func(p *Parts) { p.BlockSize *= 2 }},
		{"short maxima", func(p *Parts) { p.BlockMaxWeight = p.BlockMaxWeight[:1] }},
	}
	for _, m := range mutations {
		p := built.Parts()
		m.mut(p)
		if _, err := FromParts(a, p); err == nil {
			t.Errorf("%s: FromParts accepted malformed block tables", m.name)
		}
	}
}

// TestSliceRangeBlockMaxima pins that every range engine's block maxima are
// exactly the maxima of its sliced postings — not inherited from the
// source's (differently partitioned) blocks — at several shard counts, and
// that slices of a disabled-blocks source stay disabled.
func TestSliceRangeBlockMaxima(t *testing.T) {
	a, c := buildBlockFixture(t)
	// A small block size so most ranges split runs mid-block.
	p := BuildWorkersBlock(a, 0, 5).Parts()
	for _, shards := range []int{1, 2, 3, 5, 8} {
		for s := 0; s < shards; s++ {
			lo := c.Len() * s / shards
			hi := c.Len() * (s + 1) / shards
			sliced := p.SliceRange(lo, hi)
			if sliced.BlockSize != p.BlockSize {
				t.Fatalf("shards=%d range %d: block size %d, want %d", shards, s, sliced.BlockSize, p.BlockSize)
			}
			ix, err := FromParts(a, sliced)
			if err != nil {
				t.Fatalf("shards=%d range [%d,%d): %v", shards, lo, hi, err)
			}
			checkBlockTables(t, fmt.Sprintf("shards=%d range [%d,%d)", shards, lo, hi), ix)
		}
	}

	disabled := BuildWorkersBlock(a, 0, -1).Parts()
	if s := disabled.SliceRange(0, c.Len()/2); s.BlockOffsets != nil || s.BlockSize != 0 {
		t.Fatalf("slice of disabled-blocks parts grew tables (size %d)", s.BlockSize)
	}
}

// TestSearchTopKAppendZeroAlloc pins the steady-state allocation contract:
// after warm-up, the pooled scratch makes a pruned top-k query allocate
// nothing, including the hits page (appended to a caller-reused slice).
func TestSearchTopKAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		// Under the race detector sync.Pool deliberately drops items to
		// exercise slow paths, so the scratch re-allocates and the count
		// is meaningless (the golden checks below still run race-clean
		// via the other block-max tests).
		t.Skip("alloc counts are not meaningful under -race (sync.Pool drops items)")
	}
	a, _ := buildBlockFixture(t)
	ix := BuildWorkersBlock(a, 0, DefaultBlockSize)
	qv := a.QueryVector("activity complex formation regulation binding transport rna protein")
	opts := Options{Limit: 10}
	ctx := context.Background()
	dst := make([]Hit, 0, opts.Limit)

	// Warm the pool and pin the result while we're here.
	warm, err := ix.SearchVectorContextAppend(ctx, qv, opts, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) == 0 {
		t.Fatal("fixture query matched nothing")
	}
	diffHits(t, "append path", warm, exhaustiveTopK(t, ix, qv, opts))

	allocs := testing.AllocsPerRun(50, func() {
		var err error
		dst, err = ix.SearchVectorContextAppend(ctx, qv, opts, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SearchVectorContextAppend allocates %.1f/op, want 0", allocs)
	}
}

// TestSearchVectorContextAppendContract covers the append API's edges:
// Limit is required, an empty query appends nothing, and existing dst
// entries survive.
func TestSearchVectorContextAppendContract(t *testing.T) {
	a, _ := buildBlockFixture(t)
	ix := BuildWorkersBlock(a, 0, DefaultBlockSize)
	ctx := context.Background()
	qv := a.QueryVector("rna")

	if _, err := ix.SearchVectorContextAppend(ctx, qv, Options{}, nil); err == nil {
		t.Fatal("Limit 0 accepted")
	}
	out, err := ix.SearchVectorContextAppend(ctx, vector.Sparse{}, Options{Limit: 5}, []Hit{{Doc: 7}})
	if err != nil || len(out) != 1 || out[0].Doc != 7 {
		t.Fatalf("empty query append = (%v, %v)", out, err)
	}
	out, err = ix.SearchVectorContextAppend(ctx, qv, Options{Limit: 3}, []Hit{{Doc: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < 2 || out[0].Doc != 7 {
		t.Fatalf("append clobbered existing dst entries: %v", out)
	}
	diffHits(t, "appended page", out[1:], exhaustiveTopK(t, ix, qv, Options{Limit: 3}))
}

// TestTopKStats asserts the visited/skipped counters move and that block
// skipping strictly reduces visited candidates versus the blockless
// evaluator on the same query load.
func TestTopKStats(t *testing.T) {
	a, _ := buildBlockFixture(t)
	blocked := BuildWorkersBlock(a, 0, 8)
	blockless := BuildWorkersBlock(a, 0, -1)
	qv := a.QueryVector("activity complex formation regulation binding transport rna protein")
	opts := Options{Limit: 3}
	ctx := context.Background()

	run := func(ix *Index) TopKStats {
		ix.ResetTopKStats()
		for i := 0; i < 5; i++ {
			if _, err := ix.SearchVectorContext(ctx, qv, opts); err != nil {
				t.Fatal(err)
			}
		}
		return ix.TopKStats()
	}
	sb := run(blocked)
	sn := run(blockless)
	if sb.Visited == 0 || sn.Visited == 0 {
		t.Fatalf("no candidates visited: blocked %+v, blockless %+v", sb, sn)
	}
	if sb.Visited > sn.Visited {
		t.Fatalf("block-max visited %d candidates, blockless only %d", sb.Visited, sn.Visited)
	}
	blocked.ResetTopKStats()
	if s := blocked.TopKStats(); s.Visited != 0 || s.Skipped != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}
