package index

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"ctxsearch/internal/bitset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/vector"
)

// buildTopKFixture generates a mid-sized corpus so the MaxScore path has
// real pruning decisions to make (hundreds of candidates per query).
func buildTopKFixture(t testing.TB) (*Index, *corpus.Corpus) {
	t.Helper()
	o, err := ontology.Generate(ontology.GenConfig{Seed: 11, NumTerms: 70, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	return Build(corpus.NewAnalyzer(c)), c
}

// exhaustiveTopK is the reference: the unpruned full evaluation (Limit 0
// scores and sorts every matching document) truncated to the page.
func exhaustiveTopK(t *testing.T, ix *Index, qv vector.Sparse, opts Options) []Hit {
	t.Helper()
	full := opts
	full.Limit = 0
	hits, err := ix.SearchVectorContext(context.Background(), qv, full)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) > opts.Limit {
		hits = hits[:opts.Limit]
	}
	return hits
}

func diffHits(t *testing.T, label string, got, want []Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: pruned returned %d hits, exhaustive %d\ngot:  %v\nwant: %v",
			label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: hit %d differs (scores must be bit-identical)\ngot:  %+v\nwant: %+v",
				label, i, got[i], want[i])
		}
	}
}

// TestSearchTopKGoldenEquality asserts the MaxScore-pruned path returns
// byte-identical pages to the exhaustive evaluation across randomized
// (k, threshold, restriction) combinations and a battery of query shapes.
func TestSearchTopKGoldenEquality(t *testing.T) {
	ix, c := buildTopKFixture(t)
	a := ix.Analyzer()
	queries := []string{
		"regulation of rna synthesis",
		"protein binding transport",
		"activity complex formation regulation binding transport rna protein",
		"synthesis",
		"qqqzzz unknown",
	}
	rng := rand.New(rand.NewSource(99))
	for qi, q := range queries {
		qv := a.QueryVector(q)
		for trial := 0; trial < 30; trial++ {
			opts := Options{Limit: 1 + rng.Intn(40)}
			switch rng.Intn(3) {
			case 1:
				opts.Threshold = rng.Float64() * 0.4
			case 2:
				// Random context-style restriction over ~half the corpus.
				var set bitset.Set
				for d := 0; d < c.Len(); d++ {
					if rng.Intn(2) == 0 {
						set.Add(d)
					}
				}
				opts.WithinSet = set
				opts.Threshold = rng.Float64() * 0.2
			}
			label := fmt.Sprintf("query %d %q trial %d opts %+v", qi, q, trial, opts)
			got, err := ix.SearchVectorContext(context.Background(), qv, opts)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			diffHits(t, label, got, exhaustiveTopK(t, ix, qv, opts))
		}
	}
}

// TestSearchTopKCentroidQueries covers the dense-vector query shape
// (document centroids used by expansion and clustering): hundreds of terms
// with skewed weights stress the essential/non-essential split.
func TestSearchTopKCentroidQueries(t *testing.T) {
	ix, c := buildTopKFixture(t)
	a := ix.Analyzer()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		// Centroid of a few random documents.
		qv := vector.Sparse{}
		for i := 0; i < 3; i++ {
			d := corpus.PaperID(rng.Intn(c.Len()))
			for term, w := range a.TFIDFAll(d) {
				qv[term] += w
			}
		}
		opts := Options{Limit: 1 + rng.Intn(15), Threshold: rng.Float64() * 0.3}
		label := fmt.Sprintf("centroid trial %d opts %+v (%d terms)", trial, opts, len(qv))
		got, err := ix.SearchVectorContext(context.Background(), qv, opts)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		diffHits(t, label, got, exhaustiveTopK(t, ix, qv, opts))
	}
}

// TestSearchTopKWithinMap covers the legacy map-based restriction on the
// pruned path.
func TestSearchTopKWithinMap(t *testing.T) {
	ix, _ := buildTestIndex(t)
	within := map[corpus.PaperID]bool{2: true}
	hits := ix.Search("rna", Options{Within: within, Limit: 5})
	if len(hits) != 1 || hits[0].Doc != 2 {
		t.Fatalf("within-restricted top-k search = %v", hits)
	}
}

// TestSearchTopKCancellation asserts the pruned path honours context
// cancellation.
func TestSearchTopKCancellation(t *testing.T) {
	ix, _ := buildTopKFixture(t)
	qv := ix.Analyzer().QueryVector("regulation of rna synthesis")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hits, err := ix.SearchVectorContext(ctx, qv, Options{Limit: 10})
	if err == nil || hits != nil {
		t.Fatalf("cancelled top-k search returned (%v, %v), want (nil, error)", hits, err)
	}
}

// TestBuildTermMaxima pins the per-term maxima the MaxScore bounds rest
// on: maxWeight is the max posting weight, maxRatio the max weight/norm.
func TestBuildTermMaxima(t *testing.T) {
	ix, _ := buildTopKFixture(t)
	for tid := 0; tid < ix.Terms(); tid++ {
		docs, ws := ix.postingsOf(int32(tid))
		var mw, mr float64
		for i, w := range ws {
			if w > mw {
				mw = w
			}
			if dn := ix.norms[docs[i]]; dn > 0 && w/dn > mr {
				mr = w / dn
			}
		}
		if ix.maxWeight[tid] != mw || ix.maxRatio[tid] != mr {
			t.Fatalf("term %d maxima = (%v, %v), want (%v, %v)",
				tid, ix.maxWeight[tid], ix.maxRatio[tid], mw, mr)
		}
	}
}
