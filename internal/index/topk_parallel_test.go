package index

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"ctxsearch/internal/bitset"
	"ctxsearch/internal/corpus"
)

// withGOMAXPROCS runs fn under the given GOMAXPROCS, restoring the old
// value. Tests in a package run sequentially, so the process-wide knob is
// safe to swing here.
func withGOMAXPROCS(n int, fn func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	fn()
}

// TestSearchTopKParallelGoldenEquality is the parallel evaluator's golden
// battery: at GOMAXPROCS 1, 2 and 8 and forced worker counts 1, 2, 3, 5
// and 8, randomized (limit, offset, threshold, restriction) combinations
// must return pages byte-identical to both the serial evaluator and the
// exhaustive reference. Forced counts (negative TopKWorkers) bypass the
// cost model and the GOMAXPROCS clamp so every split shape is exercised on
// any host, including R far above the core count.
func TestSearchTopKParallelGoldenEquality(t *testing.T) {
	a, c := buildBlockFixture(t)
	queries := []string{
		"regulation of rna synthesis",
		"protein binding transport",
		"activity complex formation regulation binding transport rna protein",
		"synthesis",
	}
	for _, bs := range []int{-1, 128} {
		ix := BuildWorkersBlock(a, 0, bs)
		for _, gmp := range []int{1, 2, 8} {
			withGOMAXPROCS(gmp, func() {
				for _, workers := range []int{1, 2, 3, 5, 8} {
					rng := rand.New(rand.NewSource(int64(17*gmp + workers)))
					for qi, q := range queries {
						qv := a.QueryVector(q)
						for trial := 0; trial < 10; trial++ {
							offset := rng.Intn(5)
							opts := Options{Limit: offset + 1 + rng.Intn(20)}
							switch rng.Intn(3) {
							case 1:
								opts.Threshold = rng.Float64() * 0.4
							case 2:
								var set bitset.Set
								for d := 0; d < c.Len(); d++ {
									if rng.Intn(2) == 0 {
										set.Add(d)
									}
								}
								opts.WithinSet = set
								opts.Threshold = rng.Float64() * 0.2
							}
							label := fmt.Sprintf("block %d gmp %d workers %d query %d %q trial %d opts %+v",
								bs, gmp, workers, qi, q, trial, opts)
							serial := opts
							serial.TopKWorkers = 1
							want, err := ix.SearchVectorContext(context.Background(), qv, serial)
							if err != nil {
								t.Fatalf("%s: serial: %v", label, err)
							}
							par := opts
							par.TopKWorkers = -workers
							got, err := ix.SearchVectorContext(context.Background(), qv, par)
							if err != nil {
								t.Fatalf("%s: parallel: %v", label, err)
							}
							diffHits(t, label, got, want)
							diffHits(t, label+" (vs exhaustive)", got, exhaustiveTopK(t, ix, qv, opts))
							// A paginating caller slices the page at its
							// offset; equal full pages must stay equal
							// suffix-for-suffix.
							if offset < len(got) {
								diffHits(t, label+" (offset slice)", got[offset:], want[offset:])
							}
						}
					}
				}
			})
		}
	}
}

// TestSearchTopKParallelAdaptive covers the cost model: a positive
// TopKWorkers budget goes parallel only when the query's posting mass and
// GOMAXPROCS allow, is byte-identical either way, and the admission
// decisions surface in TopKStats.
func TestSearchTopKParallelAdaptive(t *testing.T) {
	ix, _ := buildTopKFixture(t)
	a := ix.Analyzer()
	qv := a.QueryVector("activity complex formation regulation binding transport rna protein")
	want, err := ix.SearchVectorContext(context.Background(), qv, Options{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}

	old := topkMassPerWorker
	defer func() { topkMassPerWorker = old }()

	withGOMAXPROCS(2, func() {
		// Tiny admission unit: the budget should be granted.
		topkMassPerWorker = 1
		ix.ResetTopKStats()
		got, err := ix.SearchVectorContext(context.Background(), qv, Options{Limit: 10, TopKWorkers: 8})
		if err != nil {
			t.Fatal(err)
		}
		diffHits(t, "adaptive parallel", got, want)
		st := ix.TopKStats()
		if st.Parallel != 1 {
			t.Fatalf("Parallel = %d after admitted query, want 1", st.Parallel)
		}
		if st.ParallelWorkers != 2 {
			t.Fatalf("ParallelWorkers = %d under GOMAXPROCS=2, want 2", st.ParallelWorkers)
		}
		if st.SerialFallback != 0 {
			t.Fatalf("SerialFallback = %d after admitted query, want 0", st.SerialFallback)
		}

		// Admission unit above the whole corpus mass: serial fallback.
		topkMassPerWorker = 1 << 30
		ix.ResetTopKStats()
		got, err = ix.SearchVectorContext(context.Background(), qv, Options{Limit: 10, TopKWorkers: 8})
		if err != nil {
			t.Fatal(err)
		}
		diffHits(t, "adaptive fallback", got, want)
		st = ix.TopKStats()
		if st.Parallel != 0 || st.SerialFallback != 1 {
			t.Fatalf("stats = %+v after denied query, want SerialFallback=1", st)
		}
	})

	// On one core a parallel budget is always denied, whatever the mass.
	withGOMAXPROCS(1, func() {
		topkMassPerWorker = 1
		ix.ResetTopKStats()
		got, err := ix.SearchVectorContext(context.Background(), qv, Options{Limit: 10, TopKWorkers: 8})
		if err != nil {
			t.Fatal(err)
		}
		diffHits(t, "single-core fallback", got, want)
		if st := ix.TopKStats(); st.Parallel != 0 || st.SerialFallback != 1 {
			t.Fatalf("stats = %+v under GOMAXPROCS=1, want SerialFallback=1", st)
		}
	})
}

// TestSearchTopKParallelDefaultWorkers covers the index-wide budget:
// Options.TopKWorkers == 0 defers to SetDefaultTopKWorkers, an explicit 1
// overrides it back to serial.
func TestSearchTopKParallelDefaultWorkers(t *testing.T) {
	ix, _ := buildTopKFixture(t)
	a := ix.Analyzer()
	qv := a.QueryVector("protein binding transport")
	want, err := ix.SearchVectorContext(context.Background(), qv, Options{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}

	old := topkMassPerWorker
	defer func() { topkMassPerWorker = old }()
	topkMassPerWorker = 1
	ix.SetDefaultTopKWorkers(4)
	defer ix.SetDefaultTopKWorkers(0)
	if got := ix.DefaultTopKWorkers(); got != 4 {
		t.Fatalf("DefaultTopKWorkers() = %d, want 4", got)
	}

	withGOMAXPROCS(4, func() {
		ix.ResetTopKStats()
		got, err := ix.SearchVectorContext(context.Background(), qv, Options{Limit: 10})
		if err != nil {
			t.Fatal(err)
		}
		diffHits(t, "default budget", got, want)
		if st := ix.TopKStats(); st.Parallel != 1 {
			t.Fatalf("Parallel = %d with index default 4, want 1", st.Parallel)
		}

		ix.ResetTopKStats()
		got, err = ix.SearchVectorContext(context.Background(), qv, Options{Limit: 10, TopKWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		diffHits(t, "explicit serial override", got, want)
		if st := ix.TopKStats(); st.Parallel != 0 || st.SerialFallback != 0 {
			t.Fatalf("stats = %+v with explicit TopKWorkers=1, want all zero", st)
		}
	})
}

// TestSearchTopKParallelConcurrentQueries hammers the shared-watermark
// path from many goroutines at once — concurrent parallel queries against
// one index, each fanning out range workers that share a watermark and the
// scratch pool. Run under -race this is the data-race proof for the
// watermark and the pooled scratch handoff; the page comparison proves
// watermark timing never leaks into results.
func TestSearchTopKParallelConcurrentQueries(t *testing.T) {
	a, c := buildBlockFixture(t)
	ix := BuildWorkersBlock(a, 0, 128)
	queries := []string{
		"regulation of rna synthesis",
		"protein binding transport",
		"activity complex formation regulation binding transport rna protein",
	}
	var set bitset.Set
	for d := 0; d < c.Len(); d += 2 {
		set.Add(d)
	}
	shapes := make([]Options, 0, len(queries)*2)
	want := make([][]Hit, 0, len(queries)*2)
	for _, q := range queries {
		for _, opts := range []Options{
			{Limit: 10},
			{Limit: 25, Threshold: 0.05, WithinSet: set},
		} {
			ref, err := ix.SearchVectorContext(context.Background(), a.QueryVector(q), opts)
			if err != nil {
				t.Fatal(err)
			}
			shapes = append(shapes, opts)
			want = append(want, ref)
		}
	}
	withGOMAXPROCS(8, func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for round := 0; round < 20; round++ {
					i := (g + round) % len(shapes)
					opts := shapes[i]
					opts.TopKWorkers = -(2 + (g+round)%3)
					got, err := ix.SearchVectorContext(context.Background(), a.QueryVector(queries[i/2]), opts)
					if err != nil {
						t.Errorf("goroutine %d round %d: %v", g, round, err)
						return
					}
					diffHitsErr(t, fmt.Sprintf("goroutine %d round %d shape %d", g, round, i), got, want[i])
				}
			}(g)
		}
		wg.Wait()
	})
}

// diffHitsErr is diffHits for concurrent tests: t.Errorf instead of the
// Fatalf that must not be called off the test goroutine.
func diffHitsErr(t *testing.T, label string, got, want []Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: got %d hits, want %d", label, len(got), len(want))
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: hit %d differs\ngot:  %+v\nwant: %+v", label, i, got[i], want[i])
			return
		}
	}
}

// TestSearchTopKParallelCancellation: a cancelled context surfaces from
// every range worker and returns the page buffer unextended.
func TestSearchTopKParallelCancellation(t *testing.T) {
	ix, _ := buildTopKFixture(t)
	a := ix.Analyzer()
	qv := a.QueryVector("activity complex formation regulation binding transport rna protein")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst := make([]Hit, 0, 8)
	got, err := ix.SearchVectorContextAppend(ctx, qv, Options{Limit: 10, TopKWorkers: -4}, dst)
	if err == nil {
		t.Fatal("cancelled parallel query returned nil error")
	}
	if len(got) != 0 {
		t.Fatalf("cancelled parallel query extended dst by %d hits", len(got))
	}
}

// TestScoreWatermark checks the atomic maximum: concurrent raises settle
// on the highest value and raise never lowers it.
func TestScoreWatermark(t *testing.T) {
	var wm scoreWatermark
	if got := wm.load(); got != 0 {
		t.Fatalf("zero watermark loads %v, want 0", got)
	}
	wm.raise(0.5)
	wm.raise(0.25)
	if got := wm.load(); got != 0.5 {
		t.Fatalf("watermark = %v after raise(0.5), raise(0.25); want 0.5", got)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				wm.raise(float64(g*1000+i) / 10000)
			}
		}(g)
	}
	wg.Wait()
	if got := wm.load(); got != 0.8 {
		t.Fatalf("watermark = %v after concurrent raises, want 0.8", got)
	}
}

// TestTopKParallelWatermarkWorkBound pins the shared watermark's reason to
// exist: without cross-range threshold sharing, R independent ranges each
// pay a full heap-fill before pruning engages, multiplying visited
// candidates by ~R on selective queries. With sharing, total visited work
// must stay within a small factor of serial — the property that turns
// range partitioning into wall-clock speedup (each worker's critical path
// is ~1/R of near-serial work). Measured on the 2000-paper bench corpus
// where pruning has real room to act.
func TestTopKParallelWatermarkWorkBound(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale corpus")
	}
	ix, set, qv := topkBenchIndex(t)
	visited := func(workers int) uint64 {
		t.Helper()
		ix.ResetTopKStats()
		_, err := ix.SearchVectorContext(context.Background(),
			qv, Options{Limit: 10, WithinSet: set, TopKWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return ix.TopKStats().Visited
	}
	serial := visited(1)
	if serial == 0 {
		t.Fatal("serial query visited nothing")
	}
	for _, workers := range []int{2, 4, 8} {
		par := visited(-workers)
		t.Logf("visited: serial %d, %d ranges %d (%.2fx)", serial, workers, par, float64(par)/float64(serial))
		if par > 3*serial {
			t.Fatalf("%d ranges visited %d candidates, serial %d: watermark sharing is not bounding duplicated heap-fill work", workers, par, serial)
		}
	}
}

// TestTopKSplitCoversCorpus checks the mass-balanced splitter's invariants:
// ascending cuts that tile [0, n) exactly, for assorted worker counts.
func TestTopKSplitCoversCorpus(t *testing.T) {
	ix, c := buildTopKFixture(t)
	a := ix.Analyzer()
	qv := a.QueryVector("activity complex formation regulation binding transport rna protein")
	sc := ix.getTopkScratch()
	defer ix.topkPool.Put(sc)
	qts, _ := ix.resolveQueryNormInto(qv, sc.qts[:0], sc.norm[:0])
	for _, workers := range []int{2, 3, 5, 8} {
		cuts := ix.topkSplit(qts, workers)
		if len(cuts) != workers+1 {
			t.Fatalf("workers %d: %d cuts", workers, len(cuts))
		}
		if cuts[0] != 0 || cuts[workers] != docSentinel {
			t.Fatalf("workers %d: cuts do not tile the corpus: %v", workers, cuts)
		}
		for r := 1; r < workers; r++ {
			if cuts[r] < cuts[r-1] || cuts[r] > corpus.PaperID(c.Len()) {
				t.Fatalf("workers %d: cut %d out of order: %v", workers, r, cuts)
			}
		}
	}
}
