package index

import (
	"context"
	"sync"
	"testing"

	"ctxsearch/internal/bitset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/vector"
)

// The top-k benchmarks behind BENCH_PR5.json run on a corpus an order of
// magnitude above the other index benchmarks, with a context-style bitset
// restriction over half of it — the "top-10 query over a large context"
// shape the MaxScore path exists for.
var (
	topkBenchOnce sync.Once
	topkBenchIx   *Index
	topkBenchSet  bitset.Set
	topkBenchQV   vector.Sparse
)

func topkBenchIndex(b testing.TB) (*Index, bitset.Set, vector.Sparse) {
	b.Helper()
	topkBenchOnce.Do(func() {
		o, err := ontology.Generate(ontology.GenConfig{Seed: 7, NumTerms: 120, MaxDepth: 7})
		if err != nil {
			b.Fatal(err)
		}
		c, err := corpus.Generate(o, corpus.DefaultGenConfig(2000))
		if err != nil {
			b.Fatal(err)
		}
		topkBenchIx = Build(corpus.NewAnalyzer(c))
		for d := 0; d < c.Len(); d += 2 {
			topkBenchSet.Add(d)
		}
		topkBenchQV = topkBenchIx.Analyzer().QueryVector(
			"regulation of rna transcription factor binding activity")
	})
	return topkBenchIx, topkBenchSet, topkBenchQV
}

func benchmarkSearchVectorContextTopK(b *testing.B, limit int) {
	ix, set, qv := topkBenchIndex(b)
	opts := Options{Limit: limit, WithinSet: set}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hits, err := ix.SearchVectorContext(ctx, qv, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(hits) == 0 {
			b.Fatal("no hits")
		}
	}
}

// Exhaustive = the Limit-0 path: score and sort every matching document
// in the context, the pre-MaxScore behaviour at any page size.
func BenchmarkSearchVectorContextTopKExhaustive(b *testing.B) { benchmarkSearchVectorContextTopK(b, 0) }
func BenchmarkSearchVectorContextTopK10(b *testing.B)         { benchmarkSearchVectorContextTopK(b, 10) }
func BenchmarkSearchVectorContextTopK100(b *testing.B)        { benchmarkSearchVectorContextTopK(b, 100) }

// The block-size sweep behind BENCH_PR9.json: the same top-10 query over
// the same 1000-doc context at several block-max granularities, sharing
// the sweep corpus and rebuilding only the index per size. Block size 0
// disables the block tables — the pure global-maxima MaxScore evaluator,
// the PR 5 baseline — so the sweep isolates what block-level skipping
// buys at identical results.
var (
	topkBlockMu  sync.Mutex
	topkBlockIxs = map[int]*Index{}
)

func topkBenchBlockIndex(b *testing.B, blockSize int) *Index {
	b.Helper()
	topkBenchIndex(b) // build the shared corpus/analyzer
	topkBlockMu.Lock()
	defer topkBlockMu.Unlock()
	ix := topkBlockIxs[blockSize]
	if ix == nil {
		bs := blockSize
		if bs == 0 {
			bs = -1 // 0 means "off" in the sweep; BuildWorkersBlock disables on <= 0
		}
		ix = BuildWorkersBlock(topkBenchIx.Analyzer(), 0, bs)
		topkBlockIxs[blockSize] = ix
	}
	return ix
}

func benchmarkTopKBlock(b *testing.B, blockSize int) {
	ix := topkBenchBlockIndex(b, blockSize)
	_, set, qv := topkBenchIndex(b)
	opts := Options{Limit: 10, WithinSet: set}
	ctx := context.Background()
	dst := make([]Hit, 0, opts.Limit)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = ix.SearchVectorContextAppend(ctx, qv, opts, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		if len(dst) == 0 {
			b.Fatal("no hits")
		}
	}
}

func BenchmarkSearchVectorContextTopKBlock0(b *testing.B)   { benchmarkTopKBlock(b, 0) }
func BenchmarkSearchVectorContextTopKBlock64(b *testing.B)  { benchmarkTopKBlock(b, 64) }
func BenchmarkSearchVectorContextTopKBlock128(b *testing.B) { benchmarkTopKBlock(b, 128) }
func BenchmarkSearchVectorContextTopKBlock256(b *testing.B) { benchmarkTopKBlock(b, 256) }

// BenchmarkSearchVectorContextTopKAppend10 is the zero-allocation
// steady-state number: the block-max top-10 query through the append API
// with a reused destination page (B/op and allocs/op must read 0).
func BenchmarkSearchVectorContextTopKAppend10(b *testing.B) {
	benchmarkTopKBlock(b, DefaultBlockSize)
}
