package index

import (
	"context"
	"sync"
	"testing"

	"ctxsearch/internal/bitset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/vector"
)

// The top-k benchmarks behind BENCH_PR5.json run on a corpus an order of
// magnitude above the other index benchmarks, with a context-style bitset
// restriction over half of it — the "top-10 query over a large context"
// shape the MaxScore path exists for.
var (
	topkBenchOnce sync.Once
	topkBenchIx   *Index
	topkBenchSet  bitset.Set
	topkBenchQV   vector.Sparse
)

func topkBenchIndex(b *testing.B) (*Index, bitset.Set, vector.Sparse) {
	b.Helper()
	topkBenchOnce.Do(func() {
		o, err := ontology.Generate(ontology.GenConfig{Seed: 7, NumTerms: 120, MaxDepth: 7})
		if err != nil {
			b.Fatal(err)
		}
		c, err := corpus.Generate(o, corpus.DefaultGenConfig(2000))
		if err != nil {
			b.Fatal(err)
		}
		topkBenchIx = Build(corpus.NewAnalyzer(c))
		for d := 0; d < c.Len(); d += 2 {
			topkBenchSet.Add(d)
		}
		topkBenchQV = topkBenchIx.Analyzer().QueryVector(
			"regulation of rna transcription factor binding activity")
	})
	return topkBenchIx, topkBenchSet, topkBenchQV
}

func benchmarkSearchVectorContextTopK(b *testing.B, limit int) {
	ix, set, qv := topkBenchIndex(b)
	opts := Options{Limit: limit, WithinSet: set}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hits, err := ix.SearchVectorContext(ctx, qv, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(hits) == 0 {
			b.Fatal("no hits")
		}
	}
}

// Exhaustive = the Limit-0 path: score and sort every matching document
// in the context, the pre-MaxScore behaviour at any page size.
func BenchmarkSearchVectorContextTopKExhaustive(b *testing.B) { benchmarkSearchVectorContextTopK(b, 0) }
func BenchmarkSearchVectorContextTopK10(b *testing.B)         { benchmarkSearchVectorContextTopK(b, 10) }
func BenchmarkSearchVectorContextTopK100(b *testing.B)        { benchmarkSearchVectorContextTopK(b, 100) }
