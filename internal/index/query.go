package index

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/vector"
)

// Query is a parsed boolean query tree. Evaluate with Index.SearchQuery.
//
// The grammar (case-insensitive keywords):
//
//	query  = or
//	or     = and { "OR" and }
//	and    = unary { ["AND"] unary }     (adjacency is implicit AND)
//	unary  = "NOT" unary | atom
//	atom   = WORD | QUOTED_PHRASE | "(" query ")"
//
// Matching documents are ranked by the cosine similarity of the query's
// positive terms, so boolean structure filters and TF-IDF ranks — the
// behaviour of classic digital-library search engines.
type Query interface {
	// matches reports whether doc satisfies the boolean constraint.
	matches(ix *Index, doc corpus.PaperID) bool
	// positiveTerms accumulates the stemmed terms used for ranking.
	positiveTerms(ix *Index, into vector.Sparse)
	// String renders the canonical query form.
	String() string
}

// termQuery matches documents containing the (stemmed) term.
type termQuery struct{ term string }

func (q termQuery) matches(ix *Index, doc corpus.PaperID) bool {
	docs, _ := ix.termPostings(q.term)
	// Postings are sorted by doc: binary search.
	_, ok := slices.BinarySearch(docs, doc)
	return ok
}

func (q termQuery) positiveTerms(ix *Index, into vector.Sparse) { into[q.term]++ }
func (q termQuery) String() string                              { return q.term }

// phraseQuery matches documents containing the stemmed words contiguously
// in one section.
type phraseQuery struct{ words []string }

func (q phraseQuery) matches(ix *Index, doc corpus.PaperID) bool {
	f := ix.analyzer.Features(doc)
	if f == nil {
		return false
	}
	for _, s := range corpus.Sections {
		if containsSeq(f.Tokens[s], q.words) {
			return true
		}
	}
	return false
}

func (q phraseQuery) positiveTerms(ix *Index, into vector.Sparse) {
	for _, w := range q.words {
		into[w]++
	}
}

func (q phraseQuery) String() string { return `"` + strings.Join(q.words, " ") + `"` }

func containsSeq(toks, words []string) bool {
	if len(words) == 0 || len(toks) < len(words) {
		return false
	}
outer:
	for i := 0; i+len(words) <= len(toks); i++ {
		for j, w := range words {
			if toks[i+j] != w {
				continue outer
			}
		}
		return true
	}
	return false
}

// fieldQuery matches documents containing the term within one section,
// e.g. title:polymerase.
type fieldQuery struct {
	section corpus.Section
	term    string
}

func (q fieldQuery) matches(ix *Index, doc corpus.PaperID) bool {
	f := ix.analyzer.Features(doc)
	if f == nil {
		return false
	}
	for _, w := range f.Tokens[q.section] {
		if w == q.term {
			return true
		}
	}
	return false
}

func (q fieldQuery) positiveTerms(ix *Index, into vector.Sparse) { into[q.term]++ }
func (q fieldQuery) String() string {
	return q.section.String() + ":" + q.term
}

// parseField maps a field prefix to a section.
func parseField(name string) (corpus.Section, bool) {
	switch strings.ToLower(name) {
	case "title":
		return corpus.SecTitle, true
	case "abstract":
		return corpus.SecAbstract, true
	case "body":
		return corpus.SecBody, true
	case "index", "index_terms", "keywords":
		return corpus.SecIndexTerms, true
	default:
		return 0, false
	}
}

// andQuery matches when all children match.
type andQuery struct{ kids []Query }

func (q andQuery) matches(ix *Index, doc corpus.PaperID) bool {
	for _, k := range q.kids {
		if !k.matches(ix, doc) {
			return false
		}
	}
	return true
}

func (q andQuery) positiveTerms(ix *Index, into vector.Sparse) {
	for _, k := range q.kids {
		k.positiveTerms(ix, into)
	}
}

func (q andQuery) String() string { return joinQueries(q.kids, " AND ") }

// orQuery matches when any child matches.
type orQuery struct{ kids []Query }

func (q orQuery) matches(ix *Index, doc corpus.PaperID) bool {
	for _, k := range q.kids {
		if k.matches(ix, doc) {
			return true
		}
	}
	return false
}

func (q orQuery) positiveTerms(ix *Index, into vector.Sparse) {
	for _, k := range q.kids {
		k.positiveTerms(ix, into)
	}
}

func (q orQuery) String() string { return joinQueries(q.kids, " OR ") }

// notQuery inverts its child and contributes no ranking terms.
type notQuery struct{ kid Query }

func (q notQuery) matches(ix *Index, doc corpus.PaperID) bool {
	return !q.kid.matches(ix, doc)
}

func (q notQuery) positiveTerms(*Index, vector.Sparse) {}
func (q notQuery) String() string                      { return "NOT (" + q.kid.String() + ")" }

func joinQueries(kids []Query, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// errStopTerm marks an atom that normalised away entirely (pure
// stopwords); enclosing conjunctions skip such atoms the way production
// search engines drop stopwords, instead of failing the whole query.
var errStopTerm = fmt.Errorf("index: term is all stopwords")

// ParseQuery parses the boolean query language. Terms are normalised with
// the index's tokenizer (stemming, stopword removal), so "binding" and
// "binds" match the same postings. Terms that normalise away entirely
// (pure stopwords, e.g. the "of" in "regulation of transcription") are
// skipped; a query with nothing left is an error.
func (ix *Index) ParseQuery(s string) (Query, error) {
	toks, err := lexQuery(s)
	if err != nil {
		return nil, err
	}
	p := &queryParser{ix: ix, toks: toks}
	q, err := p.parseOr()
	if err == errStopTerm {
		return nil, fmt.Errorf("index: query contains only stopwords")
	}
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("index: unexpected %q at end of query", p.toks[p.pos].text)
	}
	return q, nil
}

// SearchQuery evaluates a parsed query: candidate documents come from the
// positive terms' postings (a NOT-only query is rejected), the boolean tree
// filters them, and cosine similarity of the positive terms ranks them.
func (ix *Index) SearchQuery(q Query, opts Options) ([]Hit, error) {
	return ix.SearchQueryContext(context.Background(), q, opts)
}

// SearchQueryContext is SearchQuery with cooperative cancellation: the
// candidate walk checks ctx between terms and the boolean-matching pass —
// the expensive part for phrase and field queries — checks every few
// hundred candidates. A completed call returns exactly the hits
// SearchQuery would; a cancelled call returns (nil, ctx.Err()).
func (ix *Index) SearchQueryContext(ctx context.Context, q Query, opts Options) ([]Hit, error) {
	raw := vector.New()
	q.positiveTerms(ix, raw)
	if len(raw) == 0 {
		return nil, fmt.Errorf("index: query has no positive terms to rank by")
	}
	qv := ix.analyzer.DF().Weight(raw)

	// Candidates: union of postings of positive terms, deduplicated with
	// the pooled dense scratchpad instead of a per-query map.
	acc := ix.getAccum()
	defer ix.putAccum(acc)
	restricted := opts.restricted()
	for term := range raw {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		docs, _ := ix.termPostings(term)
		for _, doc := range docs {
			if restricted && !opts.allows(doc) {
				continue
			}
			if !acc.seen[doc] {
				acc.seen[doc] = true
				acc.touched = append(acc.touched, doc)
			}
		}
	}
	var hits []Hit
	for i, doc := range acc.touched {
		// Boolean matching walks token slices per candidate (phrase scans
		// especially), so check cancellation on a tighter stride than the
		// vector path.
		if i&511 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !q.matches(ix, doc) {
			continue
		}
		score := ix.MatchScore(qv, doc)
		if score >= opts.Threshold && score > 0 {
			hits = append(hits, Hit{doc, score})
		}
	}
	sortHits(hits)
	if opts.Limit > 0 && len(hits) > opts.Limit {
		hits = hits[:opts.Limit]
	}
	return hits, nil
}

type queryToken struct {
	kind string // "word", "phrase", "and", "or", "not", "(", ")"
	text string
}

func lexQuery(s string) ([]queryToken, error) {
	var toks []queryToken
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(':
			toks = append(toks, queryToken{"(", "("})
			i++
		case c == ')':
			toks = append(toks, queryToken{")", ")"})
			i++
		case c == '"':
			j := strings.IndexByte(s[i+1:], '"')
			if j < 0 {
				return nil, fmt.Errorf("index: unterminated quote in query")
			}
			toks = append(toks, queryToken{"phrase", s[i+1 : i+1+j]})
			i += j + 2
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\n()\"", rune(s[j])) {
				j++
			}
			word := s[i:j]
			switch strings.ToUpper(word) {
			case "AND":
				toks = append(toks, queryToken{"and", word})
			case "OR":
				toks = append(toks, queryToken{"or", word})
			case "NOT":
				toks = append(toks, queryToken{"not", word})
			default:
				toks = append(toks, queryToken{"word", word})
			}
			i = j
		}
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("index: empty query")
	}
	return toks, nil
}

type queryParser struct {
	ix   *Index
	toks []queryToken
	pos  int
}

func (p *queryParser) peek() (queryToken, bool) {
	if p.pos >= len(p.toks) {
		return queryToken{}, false
	}
	return p.toks[p.pos], true
}

func (p *queryParser) parseOr() (Query, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []Query{first}
	for {
		t, ok := p.peek()
		if !ok || t.kind != "or" {
			break
		}
		p.pos++
		next, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return orQuery{kids}, nil
}

func (p *queryParser) parseAnd() (Query, error) {
	var kids []Query
	first, err := p.parseUnary()
	if err == nil {
		kids = append(kids, first)
	} else if err != errStopTerm {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok || t.kind == "or" || t.kind == ")" {
			break
		}
		if t.kind == "and" {
			p.pos++
		}
		next, err := p.parseUnary()
		if err == errStopTerm {
			continue // drop the stopword atom
		}
		if err != nil {
			return nil, err
		}
		kids = append(kids, next)
	}
	switch len(kids) {
	case 0:
		return nil, errStopTerm
	case 1:
		return kids[0], nil
	}
	return andQuery{kids}, nil
}

func (p *queryParser) parseUnary() (Query, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("index: unexpected end of query")
	}
	if t.kind == "not" {
		p.pos++
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err // a NOT over a stopword is meaningless: propagate the skip
		}
		return notQuery{kid}, nil
	}
	return p.parseAtom()
}

func (p *queryParser) parseAtom() (Query, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("index: unexpected end of query")
	}
	switch t.kind {
	case "(":
		p.pos++
		q, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		nt, ok := p.peek()
		if !ok || nt.kind != ")" {
			return nil, fmt.Errorf("index: missing closing parenthesis")
		}
		p.pos++
		return q, nil
	case "word":
		p.pos++
		// Field-scoped term: title:polymerase, abstract:..., body:...,
		// index:... restrict matching to one section.
		if name, rest, ok := strings.Cut(t.text, ":"); ok && rest != "" {
			if sec, isField := parseField(name); isField {
				fieldTerms := p.ix.analyzer.Tokenizer().Terms(rest)
				if len(fieldTerms) == 0 {
					return nil, errStopTerm
				}
				kids := make([]Query, len(fieldTerms))
				for i, tm := range fieldTerms {
					kids[i] = fieldQuery{sec, tm}
				}
				if len(kids) == 1 {
					return kids[0], nil
				}
				return andQuery{kids}, nil
			}
		}
		terms := p.ix.analyzer.Tokenizer().Terms(t.text)
		if len(terms) == 0 {
			return nil, errStopTerm
		}
		if len(terms) == 1 {
			return termQuery{terms[0]}, nil
		}
		// A hyphenated compound can normalise to several terms: implicit
		// AND over them.
		kids := make([]Query, len(terms))
		for i, tm := range terms {
			kids[i] = termQuery{tm}
		}
		return andQuery{kids}, nil
	case "phrase":
		p.pos++
		words := p.ix.analyzer.Tokenizer().Terms(t.text)
		if len(words) == 0 {
			return nil, errStopTerm
		}
		return phraseQuery{words}, nil
	default:
		return nil, fmt.Errorf("index: unexpected %q", t.text)
	}
}

// sortHits orders hits by descending score, ties by ascending doc.
// slices.SortFunc rather than sort.Slice: the comparator is a plain
// function, so the call stays allocation-free — the top-k hot path sorts
// its final page through here and pins 0 allocs/op.
func sortHits(hits []Hit) {
	slices.SortFunc(hits, func(a, b Hit) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.Doc < b.Doc:
			return -1
		case a.Doc > b.Doc:
			return 1
		}
		return 0
	})
}
