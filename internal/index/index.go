// Package index implements the inverted-index keyword search substrate.
// Both the plain PubMed-style baseline and the per-context searches of the
// context-based engine run on it; the AC-answer-set construction uses its
// high-threshold mode to seed answer sets.
//
// The index is laid out for query throughput: terms are interned to dense
// integer IDs at Build time and postings live in flat CSR-style arrays (one
// offsets array plus packed doc/weight columns), so a query walks
// contiguous memory instead of chasing map buckets. Scoring accumulates
// into a pooled dense array indexed by document ID rather than a
// map[PaperID]float64. Term IDs are assigned in lexicographic term order,
// which keeps the floating-point accumulation order — and therefore every
// score, bit for bit — identical to sorting the query's term strings.
package index

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"ctxsearch/internal/bitset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/par"
	"ctxsearch/internal/vector"
)

// cancelCheckMask batches cooperative cancellation checks in scoring loops:
// ctx.Err() is consulted once every cancelCheckMask+1 iterations, keeping
// the hot path branch-cheap while still stopping an abandoned query within
// a few thousand documents.
const cancelCheckMask = 8192 - 1

// DefaultBlockSize is the block-max granularity of the inverted index:
// every term's posting run is partitioned into blocks of this many postings
// and per-block maxima are recorded alongside the global per-term maxima.
// 128 keeps the tables at ~1.6% of the posting columns (two float64 per 128
// posting entries) while making block bounds tight enough for the top-k
// evaluator to skip most candidates (see topk.go). Any positive block size
// produces bit-identical search results; only pruning power changes.
const DefaultBlockSize = 128

// Hit is one search result.
type Hit struct {
	Doc corpus.PaperID
	// Score is the cosine similarity between the query and the document's
	// full-text TF-IDF vectors, in [0,1].
	Score float64
}

// Index is an immutable inverted index over a corpus's full-text TF-IDF
// vectors. Construct with Build.
type Index struct {
	analyzer *corpus.Analyzer
	// termIDs interns term strings to dense IDs; IDs follow lexicographic
	// term order so numeric ID order equals sorted-string order.
	termIDs map[string]int32
	// CSR postings: the postings of term t are docs[offsets[t]:offsets[t+1]]
	// and weights[offsets[t]:offsets[t+1]], sorted by ascending doc ID.
	offsets []int32
	docs    []corpus.PaperID
	weights []float64
	norms   []float64
	// Per-term posting maxima backing the MaxScore top-k evaluation mode
	// (see topk.go): maxWeight[t] is the largest posting weight of term t,
	// maxRatio[t] the largest weight/‖doc‖ over its postings.
	maxWeight []float64
	maxRatio  []float64
	// Block-max tables (see topk.go): term t's posting run is split into
	// fixed-size blocks of blockSize postings; its blocks occupy
	// blockMaxWeight[blockOffsets[t]:blockOffsets[t+1]] (and likewise
	// blockMaxRatio), block b covering postings
	// [offsets[t]+b·blockSize, min(offsets[t]+(b+1)·blockSize, offsets[t+1])).
	// blockOffsets is nil when the index was built without block tables
	// (blockSize <= 0); the evaluator then falls back to the global maxima.
	blockSize      int
	blockOffsets   []int32
	blockMaxWeight []float64
	blockMaxRatio  []float64
	// accPool recycles dense score accumulators across searches; topkPool
	// recycles per-query top-k evaluation scratch (see topk.go).
	accPool  sync.Pool
	topkPool sync.Pool
	// statVisited/statSkipped count, across all top-k queries since the last
	// reset, candidate documents fully evaluated vs. postings jumped over by
	// block-max pruning. Each query accumulates locally and flushes once.
	statVisited atomic.Uint64
	statSkipped atomic.Uint64
	// Intra-query parallelism counters (see topk_parallel.go): queries that
	// ran range-partitioned, total range workers across them, and parallel
	// requests the cost model sent down the serial path instead.
	statParallel        atomic.Uint64
	statParallelWorkers atomic.Uint64
	statSerialFallback  atomic.Uint64
	// defaultTopKWorkers is the worker budget for bounded queries whose
	// Options leave TopKWorkers zero; set once before serving.
	defaultTopKWorkers int
}

// accum is a reusable dense scoring scratchpad: val holds partial dot
// products indexed by doc, seen marks touched docs, touched lists them so
// reset is O(hits) not O(corpus).
type accum struct {
	val     []float64
	seen    []bool
	touched []corpus.PaperID
}

// Build constructs the index from an analysed corpus with GOMAXPROCS
// workers.
func Build(a *corpus.Analyzer) *Index { return BuildWorkers(a, 0) }

// BuildWorkers constructs the index with explicit build parallelism. Papers
// (in ascending ID order) are split into contiguous shards; each worker
// counts its shard's postings, and after the term universe is merged each
// worker fills its shard's postings into the shared CSR arrays at
// precomputed disjoint cursors. The output is byte-identical at every
// worker count: term IDs still follow lexicographic term order, per-term
// counts are order-independent integer sums, and because shards are
// contiguous ID ranges, writing shard s's postings after all of shard
// s-1's reproduces exactly the ascending-doc posting layout of the
// sequential build. workers <= 0 selects GOMAXPROCS. Block-max tables are
// built at DefaultBlockSize; use BuildWorkersBlock to override.
func BuildWorkers(a *corpus.Analyzer, workers int) *Index {
	return BuildWorkersBlock(a, workers, DefaultBlockSize)
}

// BuildWorkersBlock is BuildWorkers with an explicit block-max block size
// (postings per block). blockSize <= 0 disables block tables entirely: the
// top-k evaluator then prunes with the global per-term maxima only —
// useful as the baseline arm of pruning benchmarks. Search results are
// bit-identical at every setting.
func BuildWorkersBlock(a *corpus.Analyzer, workers, blockSize int) *Index {
	c := a.Corpus()
	return buildPapers(a, sortedPapers(c, 0, c.Len()), workers, blockSize)
}

// BuildRangeWorkers constructs an index over only the papers with
// lo <= ID < hi — the per-shard index of the sharded serving topology.
// The analyzer (and with it every TF-IDF weight and document norm) stays
// corpus-global, so a document's cosine score against any query is bit
// for bit the score the full index would compute: the range restricts
// which documents have postings, never how they are weighted. Dense
// per-document arrays (norms, scoring accumulators) remain sized to the
// full corpus so global paper IDs index them directly.
func BuildRangeWorkers(a *corpus.Analyzer, lo, hi int, workers int) *Index {
	return BuildRangeWorkersBlock(a, lo, hi, workers, DefaultBlockSize)
}

// BuildRangeWorkersBlock is BuildRangeWorkers with an explicit block-max
// block size; blockSize <= 0 disables block tables (see BuildWorkersBlock).
func BuildRangeWorkersBlock(a *corpus.Analyzer, lo, hi, workers, blockSize int) *Index {
	return buildPapers(a, sortedPapers(a.Corpus(), lo, hi), workers, blockSize)
}

// sortedPapers returns the corpus's papers with lo <= ID < hi in ascending
// ID order.
func sortedPapers(c *corpus.Corpus, lo, hi int) []*corpus.Paper {
	papers := make([]*corpus.Paper, 0, hi-lo)
	for _, p := range c.Papers() {
		if int(p.ID) >= lo && int(p.ID) < hi {
			papers = append(papers, p)
		}
	}
	sort.Slice(papers, func(i, j int) bool { return papers[i].ID < papers[j].ID })
	return papers
}

// buildPapers runs the sharded build pipeline over an explicit paper list
// (ascending ID order).
func buildPapers(a *corpus.Analyzer, papers []*corpus.Paper, workers, blockSize int) *Index {
	c := a.Corpus()
	n := c.Len()
	ix := &Index{
		analyzer: a,
		norms:    make([]float64, n),
	}

	shards := par.Shards(len(papers), workers)

	// Pass 1 (sharded): per-shard term posting counts; norms land in
	// disjoint slots. TFIDFAll hits the analyzer cache lock-free when the
	// analyzer is warmed (NewSystem warms before building).
	shardCounts := make([]map[string]int32, len(shards))
	par.ForShards(shards, func(si int, sh par.Shard) {
		m := make(map[string]int32)
		for i := sh.Lo; i < sh.Hi; i++ {
			p := papers[i]
			w := a.TFIDFAll(p.ID)
			ix.norms[p.ID] = w.Norm()
			for term := range w {
				m[term]++
			}
		}
		shardCounts[si] = m
	})

	// Merge the term universe. Integer sums make the merge independent of
	// shard order; sorting the union fixes the ID assignment.
	counts := make(map[string]int32)
	for _, m := range shardCounts {
		for term, cnt := range m {
			counts[term] += cnt
		}
	}
	terms := make([]string, 0, len(counts))
	for term := range counts {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	ix.termIDs = make(map[string]int32, len(terms))
	ix.offsets = make([]int32, len(terms)+1)
	total := int32(0)
	for i, term := range terms {
		ix.termIDs[term] = int32(i)
		ix.offsets[i+1] = ix.offsets[i] + counts[term]
		total += counts[term]
	}

	// Per-shard write cursors: shard s writes term t's postings starting at
	// offsets[t] plus the posting counts of earlier shards, so shard
	// regions are disjoint and concatenate in ascending doc order.
	bases := make([][]int32, len(shards))
	running := make([]int32, len(terms))
	copy(running, ix.offsets[:len(terms)])
	for si := range shards {
		base := make([]int32, len(terms))
		copy(base, running)
		for term, cnt := range shardCounts[si] {
			running[ix.termIDs[term]] += cnt
		}
		bases[si] = base
	}

	// Pass 2 (sharded): fill the packed columns. Within a shard, visiting
	// papers in ascending ID order leaves every term's posting run sorted
	// by doc with no per-term sort — exactly as in the sequential build.
	ix.docs = make([]corpus.PaperID, total)
	ix.weights = make([]float64, total)
	par.ForShards(shards, func(si int, sh par.Shard) {
		next := bases[si]
		for i := sh.Lo; i < sh.Hi; i++ {
			p := papers[i]
			for term, weight := range a.TFIDFAll(p.ID) {
				t := ix.termIDs[term]
				slot := next[t]
				ix.docs[slot] = p.ID
				ix.weights[slot] = weight
				next[t] = slot + 1
			}
		}
	})

	// Pass 3 (sharded by term): per-term posting maxima for the MaxScore
	// top-k bounds. Maxima are order-independent, so the result is
	// identical at any worker count.
	ix.maxWeight = make([]float64, len(terms))
	ix.maxRatio = make([]float64, len(terms))
	par.ForShards(par.Shards(len(terms), workers), func(_ int, sh par.Shard) {
		for t := sh.Lo; t < sh.Hi; t++ {
			var mw, mr float64
			for k := ix.offsets[t]; k < ix.offsets[t+1]; k++ {
				w := ix.weights[k]
				if w > mw {
					mw = w
				}
				if dn := ix.norms[ix.docs[k]]; dn > 0 {
					if r := w / dn; r > mr {
						mr = r
					}
				}
			}
			ix.maxWeight[t], ix.maxRatio[t] = mw, mr
		}
	})

	// Pass 3b (sharded by term): block-max tables at the requested
	// granularity. Like the global maxima, per-block maxima are pure
	// comparisons over fixed block extents, so the tables are identical at
	// any worker count.
	if blockSize > 0 {
		ix.blockSize = blockSize
		ix.blockOffsets, ix.blockMaxWeight, ix.blockMaxRatio =
			computeBlockTables(ix.offsets, ix.docs, ix.weights, ix.norms, blockSize, workers)
	}

	ix.accPool.New = func() any {
		return &accum{val: make([]float64, n), seen: make([]bool, n)}
	}
	return ix
}

// computeBlockTables partitions every term's CSR posting run into blocks of
// blockSize postings and returns the CSR-style block offsets (len terms+1)
// plus each block's maximum posting weight and maximum weight/‖doc‖ ratio —
// the same quantities as the global per-term maxima, restricted to one
// block. Shared by the build pipeline, FromParts (recomputing tables for
// pre-v5 states), and SliceRange (re-slicing tables for range engines).
func computeBlockTables(offsets []int32, docs []corpus.PaperID, weights, norms []float64, blockSize, workers int) ([]int32, []float64, []float64) {
	nTerms := len(offsets) - 1
	bo := make([]int32, nTerms+1)
	for t := 0; t < nTerms; t++ {
		run := int(offsets[t+1] - offsets[t])
		bo[t+1] = bo[t] + int32((run+blockSize-1)/blockSize)
	}
	bmw := make([]float64, bo[nTerms])
	bmr := make([]float64, bo[nTerms])
	par.ForShards(par.Shards(nTerms, workers), func(_ int, sh par.Shard) {
		for t := sh.Lo; t < sh.Hi; t++ {
			bi := int(bo[t])
			hi := int(offsets[t+1])
			for k := int(offsets[t]); k < hi; bi++ {
				end := k + blockSize
				if end > hi {
					end = hi
				}
				var mw, mr float64
				for ; k < end; k++ {
					w := weights[k]
					if w > mw {
						mw = w
					}
					if dn := norms[docs[k]]; dn > 0 {
						if r := w / dn; r > mr {
							mr = r
						}
					}
				}
				bmw[bi], bmr[bi] = mw, mr
			}
		}
	})
	return bo, bmw, bmr
}

// postingsOf returns the CSR run of one interned term.
func (ix *Index) postingsOf(t int32) ([]corpus.PaperID, []float64) {
	lo, hi := ix.offsets[t], ix.offsets[t+1]
	return ix.docs[lo:hi], ix.weights[lo:hi]
}

// termPostings returns the postings of a term string (nil slices when the
// term is not indexed).
func (ix *Index) termPostings(term string) ([]corpus.PaperID, []float64) {
	t, ok := ix.termIDs[term]
	if !ok {
		return nil, nil
	}
	return ix.postingsOf(t)
}

// getAccum leases a clean dense accumulator sized to the corpus.
func (ix *Index) getAccum() *accum {
	return ix.accPool.Get().(*accum)
}

// putAccum resets only the touched slots and returns the accumulator to
// the pool.
func (ix *Index) putAccum(a *accum) {
	for _, d := range a.touched {
		a.val[d] = 0
		a.seen[d] = false
	}
	a.touched = a.touched[:0]
	ix.accPool.Put(a)
}

// Terms returns the number of distinct indexed terms.
func (ix *Index) Terms() int { return len(ix.offsets) - 1 }

// Analyzer returns the analyzer the index was built from.
func (ix *Index) Analyzer() *corpus.Analyzer { return ix.analyzer }

// Options configure a search.
type Options struct {
	// Threshold drops hits with cosine score below it.
	Threshold float64
	// Limit caps the number of hits (0 = unlimited).
	Limit int
	// Within restricts the search to the given document set (nil = all).
	Within map[corpus.PaperID]bool
	// TopKWorkers controls intra-query parallelism of bounded (Limit > 0)
	// searches: 0 uses the index default (SetDefaultTopKWorkers), 1 forces
	// the serial evaluator, n > 1 budgets up to n range workers subject to
	// an adaptive cost model that keeps small queries serial, and n < 0
	// forces exactly -n ranges with no fallback (tests and benchmarks).
	// The result page is byte-identical at every setting.
	TopKWorkers int
	// WithinSet restricts the search to the documents of a bitset (nil =
	// all) — the fast path for context-restricted searches. When both
	// WithinSet and Within are given, WithinSet wins.
	WithinSet bitset.Set
}

// allows reports whether a doc passes the Within/WithinSet restriction.
func (o *Options) allows(doc corpus.PaperID) bool {
	if o.WithinSet != nil {
		return o.WithinSet.Contains(int(doc))
	}
	if o.Within != nil {
		return o.Within[doc]
	}
	return true
}

// restricted reports whether any document restriction is set.
func (o *Options) restricted() bool { return o.WithinSet != nil || o.Within != nil }

// Search runs a free-text query and returns hits sorted by descending
// score, ties broken by ascending document ID.
func (ix *Index) Search(query string, opts Options) []Hit {
	qv := ix.analyzer.QueryVector(query)
	return ix.SearchVector(qv, opts)
}

// queryTerm is one resolved query term: interned ID plus query weight.
type queryTerm struct {
	id int32
	w  float64
}

// resolveQuery interns the query vector's terms, dropping unindexed ones
// (they have no postings, hence no contribution), sorted by term ID —
// lexicographic term order, so accumulation order matches the historical
// sort.Strings order bit for bit.
func (ix *Index) resolveQuery(qv vector.Sparse) []queryTerm {
	qts := make([]queryTerm, 0, len(qv))
	for term, w := range qv {
		if id, ok := ix.termIDs[term]; ok {
			qts = append(qts, queryTerm{id, w})
		}
	}
	sort.Slice(qts, func(i, j int) bool { return qts[i].id < qts[j].id })
	return qts
}

// SearchVector searches with a pre-built query vector (used by expansion
// steps that query with document centroids).
func (ix *Index) SearchVector(qv vector.Sparse, opts Options) []Hit {
	hits, _ := ix.SearchVectorContext(context.Background(), qv, opts)
	return hits
}

// SearchVectorContext is SearchVector with cooperative cancellation: the
// postings walk checks ctx between query terms and the scoring pass checks
// periodically, so an abandoned or deadline-expired query stops promptly
// instead of running to completion. A completed call returns exactly the
// hits SearchVector would; a cancelled call returns (nil, ctx.Err()).
//
// Bounded queries (Limit > 0) are evaluated with exact MaxScore-style
// dynamic pruning (see topk.go): work scales with the result page rather
// than the corpus, and the returned page — documents, order, and score
// bits — is identical to the exhaustive evaluation's.
func (ix *Index) SearchVectorContext(ctx context.Context, qv vector.Sparse, opts Options) ([]Hit, error) {
	qn := qv.Norm()
	if qn == 0 {
		return nil, ctx.Err()
	}
	if opts.Limit > 0 {
		return ix.searchTopK(ctx, qv, opts)
	}
	qts := ix.resolveQuery(qv)
	acc := ix.getAccum()
	defer ix.putAccum(acc)
	restricted := opts.restricted()
	for _, qt := range qts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		qw := qt.w
		docs, ws := ix.postingsOf(qt.id)
		for i, doc := range docs {
			if restricted && !opts.allows(doc) {
				continue
			}
			if !acc.seen[doc] {
				acc.seen[doc] = true
				acc.touched = append(acc.touched, doc)
			}
			acc.val[doc] += qw * ws[i]
		}
	}
	hits := make([]Hit, 0, len(acc.touched))
	for i, doc := range acc.touched {
		if i&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		dn := ix.norms[doc]
		if dn == 0 {
			continue
		}
		score := acc.val[doc] / (qn * dn)
		if score >= opts.Threshold && score > 0 {
			hits = append(hits, Hit{doc, score})
		}
	}
	sortHits(hits)
	if opts.Limit > 0 && len(hits) > opts.Limit {
		hits = hits[:opts.Limit]
	}
	return hits, nil
}

// SearchVectorContextAppend is the allocation-free form of the bounded
// search: the page SearchVectorContext would return for opts.Limit > 0 is
// appended to dst (whose capacity is reused), so a caller that recycles its
// result buffer runs the top-k hot path with zero steady-state heap
// allocations — all evaluator scratch is pooled internally. Requires
// opts.Limit > 0. On cancellation dst is returned unextended with ctx's
// error.
func (ix *Index) SearchVectorContextAppend(ctx context.Context, qv vector.Sparse, opts Options, dst []Hit) ([]Hit, error) {
	if opts.Limit <= 0 {
		return dst, errNeedLimit
	}
	return ix.searchTopKAppend(ctx, qv, opts, dst)
}

// TopKStats are the cumulative pruning counters of the top-k evaluator
// since construction or the last ResetTopKStats, summed over all queries
// (concurrent queries flush atomically once each).
type TopKStats struct {
	// Visited counts candidate documents fully evaluated: essential
	// contributions gathered and the true-norm bound computed.
	Visited uint64 `json:"visited"`
	// Skipped counts essential postings jumped over without evaluating
	// their document — by a block-level range skip or a per-candidate
	// block-bound rejection.
	Skipped uint64 `json:"skipped"`
	// Parallel counts queries evaluated range-partitioned, and
	// ParallelWorkers the range workers they ran in total (so
	// ParallelWorkers/Parallel is the mean fan-out).
	Parallel        uint64 `json:"parallel"`
	ParallelWorkers uint64 `json:"parallel_workers"`
	// SerialFallback counts queries that requested parallelism but ran
	// serial because the cost model or GOMAXPROCS denied it.
	SerialFallback uint64 `json:"serial_fallback"`
}

// TopKStats returns the evaluator's cumulative counters — the
// observability hook behind the block-max pruning and intra-query
// parallelism benchmarks and the server's per-generation /stats section.
func (ix *Index) TopKStats() TopKStats {
	return TopKStats{
		Visited:         ix.statVisited.Load(),
		Skipped:         ix.statSkipped.Load(),
		Parallel:        ix.statParallel.Load(),
		ParallelWorkers: ix.statParallelWorkers.Load(),
		SerialFallback:  ix.statSerialFallback.Load(),
	}
}

// ResetTopKStats zeroes the evaluator's cumulative counters. The server
// calls it when a generation is installed, so /stats reports per-generation
// numbers rather than process lifetime ones.
func (ix *Index) ResetTopKStats() {
	ix.statVisited.Store(0)
	ix.statSkipped.Store(0)
	ix.statParallel.Store(0)
	ix.statParallelWorkers.Store(0)
	ix.statSerialFallback.Store(0)
}

// BlockSize returns the block-max granularity the index carries (postings
// per block), or 0 when it was built without block tables.
func (ix *Index) BlockSize() int { return ix.blockSize }

// MatchScore returns the cosine text-matching score between a query and one
// document — the Text_Matching_Score(p, q) term of the paper's relevancy
// formula.
func (ix *Index) MatchScore(qv vector.Sparse, doc corpus.PaperID) float64 {
	if int(doc) < 0 || int(doc) >= len(ix.norms) || ix.norms[doc] == 0 {
		return 0
	}
	qn := qv.Norm()
	if qn == 0 {
		return 0
	}
	return qv.Dot(ix.analyzer.TFIDFAll(doc)) / (qn * ix.norms[doc])
}
