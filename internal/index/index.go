// Package index implements the inverted-index keyword search substrate.
// Both the plain PubMed-style baseline and the per-context searches of the
// context-based engine run on it; the AC-answer-set construction uses its
// high-threshold mode to seed answer sets.
package index

import (
	"sort"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/vector"
)

// posting is one document entry in a term's posting list.
type posting struct {
	doc    corpus.PaperID
	weight float64 // TF-IDF weight of the term in the document
}

// Hit is one search result.
type Hit struct {
	Doc corpus.PaperID
	// Score is the cosine similarity between the query and the document's
	// full-text TF-IDF vectors, in [0,1].
	Score float64
}

// Index is an immutable inverted index over a corpus's full-text TF-IDF
// vectors. Construct with Build.
type Index struct {
	analyzer *corpus.Analyzer
	postings map[string][]posting
	norms    []float64
}

// Build constructs the index from an analysed corpus.
func Build(a *corpus.Analyzer) *Index {
	ix := &Index{
		analyzer: a,
		postings: make(map[string][]posting),
		norms:    make([]float64, a.Corpus().Len()),
	}
	for _, p := range a.Corpus().Papers() {
		w := a.TFIDFAll(p.ID)
		ix.norms[p.ID] = w.Norm()
		for term, weight := range w {
			ix.postings[term] = append(ix.postings[term], posting{p.ID, weight})
		}
	}
	for term := range ix.postings {
		pl := ix.postings[term]
		sort.Slice(pl, func(i, j int) bool { return pl[i].doc < pl[j].doc })
	}
	return ix
}

// Terms returns the number of distinct indexed terms.
func (ix *Index) Terms() int { return len(ix.postings) }

// Analyzer returns the analyzer the index was built from.
func (ix *Index) Analyzer() *corpus.Analyzer { return ix.analyzer }

// Options configure a search.
type Options struct {
	// Threshold drops hits with cosine score below it.
	Threshold float64
	// Limit caps the number of hits (0 = unlimited).
	Limit int
	// Within restricts the search to the given document set (nil = all).
	Within map[corpus.PaperID]bool
}

// Search runs a free-text query and returns hits sorted by descending
// score, ties broken by ascending document ID.
func (ix *Index) Search(query string, opts Options) []Hit {
	qv := ix.analyzer.QueryVector(query)
	return ix.SearchVector(qv, opts)
}

// SearchVector searches with a pre-built query vector (used by expansion
// steps that query with document centroids).
func (ix *Index) SearchVector(qv vector.Sparse, opts Options) []Hit {
	qn := qv.Norm()
	if qn == 0 {
		return nil
	}
	// Accumulate in sorted term order: floating-point addition is not
	// associative, and map-order accumulation would make scores differ in
	// the last ulp between identical searches.
	terms := make([]string, 0, len(qv))
	for term := range qv {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	acc := make(map[corpus.PaperID]float64)
	for _, term := range terms {
		qw := qv[term]
		for _, pst := range ix.postings[term] {
			if opts.Within != nil && !opts.Within[pst.doc] {
				continue
			}
			acc[pst.doc] += qw * pst.weight
		}
	}
	hits := make([]Hit, 0, len(acc))
	for doc, dot := range acc {
		dn := ix.norms[doc]
		if dn == 0 {
			continue
		}
		score := dot / (qn * dn)
		if score >= opts.Threshold && score > 0 {
			hits = append(hits, Hit{doc, score})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if opts.Limit > 0 && len(hits) > opts.Limit {
		hits = hits[:opts.Limit]
	}
	return hits
}

// MatchScore returns the cosine text-matching score between a query and one
// document — the Text_Matching_Score(p, q) term of the paper's relevancy
// formula.
func (ix *Index) MatchScore(qv vector.Sparse, doc corpus.PaperID) float64 {
	if int(doc) < 0 || int(doc) >= len(ix.norms) || ix.norms[doc] == 0 {
		return 0
	}
	qn := qv.Norm()
	if qn == 0 {
		return 0
	}
	return qv.Dot(ix.analyzer.TFIDFAll(doc)) / (qn * ix.norms[doc])
}
