package index

import (
	"context"
	"sort"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/topk"
	"ctxsearch/internal/vector"
)

// This file implements the exact MaxScore-style top-k evaluation mode of
// SearchVectorContext: when a query asks for a bounded result page
// (Options.Limit > 0), the postings are walked document-at-a-time with
// rank-safe dynamic pruning instead of scoring every matching document.
//
// The machinery rests on two per-term maxima computed at build time:
//
//   - maxWeight[t]: the largest posting weight of term t, giving the
//     dot-space bound qw_t·maxWeight[t] on t's contribution to any
//     document's query dot product;
//   - maxRatio[t]: the largest weight/‖doc‖ over t's postings, giving the
//     document-independent cosine-space bound qw_t·maxRatio[t]/‖q‖.
//
// Query terms are processed in descending cosine-bound order. A running
// threshold θ — the worst score in the bounded top-k heap once it fills,
// or Options.Threshold before that — splits them into an essential prefix
// and a non-essential suffix whose cumulative bound cannot reach θ: no
// document containing only non-essential terms can enter the result page,
// so candidate enumeration walks only the essential postings. Each
// candidate is then bounded with its true norm before the non-essential
// terms are probed (cheapest bound first, early-terminating as soon as the
// residual bound falls under θ).
//
// Exactness (rank-safety) is preserved down to the last bit:
//
//   - every pruning comparison uses an upper bound inflated by boundSlack,
//     absorbing the ULP-level differences between the bound's float
//     summation order and the true score's;
//   - a surviving candidate's score is re-summed in ascending term-ID
//     order — exactly the accumulation order of the exhaustive path — so
//     returned scores are byte-identical to SearchVector's;
//   - threshold comparisons prune strictly below (score == Threshold is
//     kept), and a full heap prunes at bound ≤ θ: candidates arrive in
//     ascending document order, so a later candidate tying the heap
//     minimum loses the ascending-doc tiebreak anyway.
//
// The golden equivalence tests (topk_test.go) assert byte-identical pages
// against the exhaustive path across randomized (k, threshold, restriction)
// combinations.

// boundSlack multiplicatively inflates floating-point upper bounds before
// pruning comparisons. Reordering an n-term float sum perturbs it by at
// most n·ε relative (ε = 2⁻⁵²); 1e-9 covers n up to ~10⁶ query terms,
// far beyond any real query or centroid, at a negligible loss of pruning
// power.
const boundSlack = 1 + 1e-9

// worseHit orders hits ascending by score, ties by descending doc — the
// inverse of the returned (score desc, doc asc) page order, as the top-k
// heap requires.
func worseHit(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Doc > b.Doc
}

// termCursor is one query term's posting cursor in the top-k walk.
type termCursor struct {
	docs []corpus.PaperID
	ws   []float64
	pos  int
	// qi is the term's position in the term-ID-sorted query (the exact
	// re-summation order); qw its query weight.
	qi int
	qw float64
	// ubCos bounds the term's cosine contribution for any document
	// (qw·maxRatio/‖q‖); ubDot bounds its dot-product contribution
	// (qw·maxWeight).
	ubCos float64
	ubDot float64
}

// seek advances the cursor to the first posting with doc ≥ target
// (galloping then binary search — candidates arrive in ascending order, so
// the cursor only ever moves forward) and reports the weight when the
// target is present.
func (c *termCursor) seek(target corpus.PaperID) (float64, bool) {
	lo := c.pos
	n := len(c.docs)
	if lo >= n {
		return 0, false
	}
	if c.docs[lo] >= target {
		c.pos = lo
		if c.docs[lo] == target {
			return c.ws[lo], true
		}
		return 0, false
	}
	// Gallop to bracket the target, then binary search the bracket.
	step := 1
	hi := lo + 1
	for hi < n && c.docs[hi] < target {
		lo = hi
		hi += step
		step *= 2
	}
	if hi > n {
		hi = n
	}
	i := lo + sort.Search(hi-lo, func(k int) bool { return c.docs[lo+k] >= target })
	c.pos = i
	if i < n && c.docs[i] == target {
		return c.ws[i], true
	}
	return 0, false
}

// searchTopK is the Limit > 0 evaluation mode of SearchVectorContext. It
// returns exactly the page the exhaustive path would: the Limit best hits
// by (score desc, doc asc), filtered by Threshold, scores bit-identical.
func (ix *Index) searchTopK(ctx context.Context, qv vector.Sparse, opts Options) ([]Hit, error) {
	qn := qv.Norm()
	qts := ix.resolveQuery(qv)
	if len(qts) == 0 {
		return nil, ctx.Err()
	}
	cur := make([]termCursor, len(qts))
	for i, qt := range qts {
		docs, ws := ix.postingsOf(qt.id)
		cur[i] = termCursor{
			docs: docs, ws: ws, qi: i, qw: qt.w,
			ubCos: qt.w * ix.maxRatio[qt.id] / qn,
			ubDot: qt.w * ix.maxWeight[qt.id],
		}
	}
	// Descending cosine-bound order; ties by query position for
	// determinism.
	sort.Slice(cur, func(i, j int) bool {
		if cur[i].ubCos != cur[j].ubCos {
			return cur[i].ubCos > cur[j].ubCos
		}
		return cur[i].qi < cur[j].qi
	})
	// tailCos[i] / tailDot[i] bound the total contribution of the term
	// suffix cur[i:] in cosine / dot space.
	tailCos := make([]float64, len(cur)+1)
	tailDot := make([]float64, len(cur)+1)
	for i := len(cur) - 1; i >= 0; i-- {
		tailCos[i] = tailCos[i+1] + cur[i].ubCos
		tailDot[i] = tailDot[i+1] + cur[i].ubDot
	}

	heap := topk.New(opts.Limit, worseHit)
	// cannotQualify reports whether a document with upper-bounded score b
	// (already slack-inflated) is provably outside the result page.
	// Threshold prunes strictly below (equality is kept); a full heap
	// prunes at b ≤ θ because any later candidate tying the heap minimum
	// has a larger doc ID and loses the tiebreak.
	cannotQualify := func(b float64) bool {
		if !(b > 0) || b < opts.Threshold {
			return true
		}
		return heap.Full() && b <= heap.Min().Score
	}
	// nEss delimits the essential prefix: the suffix cur[nEss:] is
	// non-essential once its cumulative bound cannot qualify. Re-checked
	// whenever the heap threshold rises.
	nEss := len(cur)
	shrink := func() {
		for nEss > 0 && cannotQualify(tailCos[nEss-1]*boundSlack) {
			nEss--
		}
	}
	shrink()

	// contrib holds the current candidate's posting weight per query-term
	// position (term-ID order); present lists the touched positions for
	// sparse reset.
	contrib := make([]float64, len(qts))
	present := make([]int, 0, len(qts))
	restricted := opts.restricted()
	visited := 0
	for nEss > 0 {
		// Next candidate: the minimum document under the essential cursors.
		minDoc := corpus.PaperID(-1)
		for i := 0; i < nEss; i++ {
			c := &cur[i]
			if c.pos < len(c.docs) {
				if d := c.docs[c.pos]; minDoc < 0 || d < minDoc {
					minDoc = d
				}
			}
		}
		if minDoc < 0 {
			break // essential postings exhausted: no further doc can qualify
		}
		if visited&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		visited++
		// Gather essential contributions, advancing their cursors past the
		// candidate.
		essDot := 0.0
		for i := 0; i < nEss; i++ {
			c := &cur[i]
			if c.pos < len(c.docs) && c.docs[c.pos] == minDoc {
				w := c.ws[c.pos]
				contrib[c.qi] = w
				present = append(present, c.qi)
				essDot += c.qw * w
				c.pos++
			}
		}
		dn := ix.norms[minDoc]
		if dn != 0 && (!restricted || opts.allows(minDoc)) {
			inv := 1 / (qn * dn)
			// Candidate bound with its true norm: essential contributions
			// plus the non-essential dot-space tail.
			b := (essDot + tailDot[nEss]) * inv * boundSlack
			if !cannotQualify(b) {
				// Probe non-essential terms, highest bound first, dropping
				// each term's bound from the residual as it resolves.
				remaining := tailDot[nEss]
				survived := true
				for i := nEss; i < len(cur); i++ {
					c := &cur[i]
					remaining -= c.ubDot
					if w, ok := c.seek(minDoc); ok {
						contrib[c.qi] = w
						present = append(present, c.qi)
						essDot += c.qw * w
					}
					b = (essDot + remaining) * inv * boundSlack
					if cannotQualify(b) {
						survived = false
						break
					}
				}
				if survived {
					// Exact score: re-sum in ascending term-ID order — the
					// exhaustive path's accumulation order — then divide
					// once, reproducing its rounding bit for bit. Absent
					// terms contribute an exact +0.
					var dot float64
					for i := range qts {
						dot += qts[i].w * contrib[i]
					}
					score := dot / (qn * dn)
					if score >= opts.Threshold && score > 0 {
						if heap.Offer(Hit{minDoc, score}) {
							shrink()
						}
					}
				}
			}
		}
		for _, qi := range present {
			contrib[qi] = 0
		}
		present = present[:0]
	}
	hits := heap.Items()
	sortHits(hits)
	return hits, ctx.Err()
}
