package index

import (
	"context"
	"errors"
	"math"
	"slices"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/vector"
)

// This file implements the exact Block-Max MaxScore top-k evaluation mode
// of SearchVectorContext: when a query asks for a bounded result page
// (Options.Limit > 0), the postings are walked document-at-a-time with
// rank-safe dynamic pruning instead of scoring every matching document.
//
// The machinery rests on per-term maxima computed at build time, at two
// granularities:
//
//   - maxWeight[t] / maxRatio[t]: the largest posting weight and the
//     largest weight/‖doc‖ over all of term t's postings, giving
//     document-independent bounds on t's contribution in dot and cosine
//     space;
//   - blockMaxWeight / blockMaxRatio: the same maxima restricted to
//     fixed-size blocks of blockSize postings (see Index.blockOffsets).
//     A block's bound applies to every document whose posting lies in the
//     block — and, because a term's postings are strictly ascending, to
//     every document ≤ the block's last doc that the cursor has not yet
//     passed.
//
// Query terms are processed in descending cosine-bound order. A running
// threshold θ — the worst score in the bounded top-k heap once it fills,
// or Options.Threshold before that — splits them into an essential prefix
// and a non-essential suffix whose cumulative bound cannot reach θ: no
// document containing only non-essential terms can enter the result page,
// so candidate enumeration walks only the essential postings. Block maxima
// then prune inside that walk at two points:
//
//   - block-level range skip: the walk caches a fence — the nearest block
//     boundary over the live essential cursors — and evaluates candidates
//     at or below it on a fast path that never touches block state.
//     Crossing the fence triggers one refresh that re-sums the essential
//     cursors' current block bounds; while that sum (plus the
//     non-essential tail) cannot reach θ, no document up to the fence can
//     qualify, and every essential cursor jumps past the fence without
//     evaluating anything;
//   - non-essential probe shortcut: before paying a seek, a probed term's
//     contribution is bounded by its block maximum at the candidate,
//     advanced block-wise (no binary search) — a miss is detected from
//     block fences alone.
//
// Exactness (rank-safety) is preserved down to the last bit:
//
//   - every pruning comparison uses an upper bound inflated by boundSlack,
//     absorbing the ULP-level differences between the bound's float
//     summation order and the true score's. Per-candidate dot-space bounds
//     are compared in scaled space — b·(qn·dn) against θ·(qn·dn) — trading
//     the per-candidate division for one multiply per comparison; the ≤1
//     ULP the extra rounding can shift a comparison is orders of magnitude
//     below the slack, so pruning stays conservative;
//   - a surviving candidate's score is re-summed in ascending term-ID
//     order — exactly the accumulation order of the exhaustive path — so
//     returned scores are byte-identical to SearchVector's;
//   - threshold comparisons prune strictly below (score == Threshold is
//     kept), and a full heap prunes at bound ≤ θ: candidates arrive in
//     ascending document order, so a later candidate tying the heap
//     minimum loses the ascending-doc tiebreak anyway.
//
// Indexes built without block tables (blockSize <= 0, or bound from
// pre-block parts) run the same loop with each cursor's "block" degraded
// to its whole posting list and the global maxima as bounds — exactly the
// pre-block MaxScore evaluator.
//
// The golden equivalence tests (topk_test.go) assert byte-identical pages
// against the exhaustive path across randomized (k, threshold, restriction,
// block size) combinations.

// boundSlack multiplicatively inflates floating-point upper bounds before
// pruning comparisons. Reordering an n-term float sum perturbs it by at
// most n·ε relative (ε = 2⁻⁵²); 1e-9 covers n up to ~10⁶ query terms,
// far beyond any real query or centroid, at a negligible loss of pruning
// power.
const boundSlack = 1 + 1e-9

// errNeedLimit rejects SearchVectorContextAppend calls without a bounded
// page: the append form exists purely for the Limit > 0 hot path.
var errNeedLimit = errors.New("index: SearchVectorContextAppend requires Options.Limit > 0")

// worseHit orders hits ascending by score, ties by descending doc — the
// inverse of the returned (score desc, doc asc) page order, as the top-k
// heap requires.
func worseHit(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Doc > b.Doc
}

// termCursor is one query term's posting cursor in the top-k walk.
type termCursor struct {
	docs []corpus.PaperID
	ws   []float64
	pos  int
	// lim bounds the walk to docs[:lim]: the whole run for a serial query,
	// the run prefix inside the worker's document range for a parallel one
	// (see topk_parallel.go). Positions stay run-absolute either way, so
	// the block arithmetic below is oblivious to the range.
	lim int
	// qi is the term's position in the term-ID-sorted query (the exact
	// re-summation order); qw its query weight.
	qi int
	qw float64
	// ubCos bounds the term's cosine contribution for any document
	// (qw·maxRatio/‖q‖); ubDot bounds its dot-product contribution
	// (qw·maxWeight).
	ubCos float64
	ubDot float64
	// cosScale converts a weight/‖doc‖ ratio into the term's cosine
	// contribution bound (qw/‖q‖).
	cosScale float64
	// bmw/bmr are the term's per-block maxima (nil when the index carries
	// no block tables) and bsize the postings-per-block granularity.
	bmw, bmr []float64
	bsize    int
	// Cached bounds of the block containing pos, refreshed by syncBlock
	// once pos crosses blkEnd: blkEnd is the first position past the
	// block, blkLast the block's last document, blkCos/blkDot its cosine/
	// dot contribution bounds. With no block tables the "block" is the
	// whole list under the global bounds.
	blkEnd  int
	blkLast corpus.PaperID
	blkCos  float64
	blkDot  float64
}

// syncBlock refreshes the cached block bounds after the cursor advanced
// past its block fence. The cursor must not be exhausted.
func (c *termCursor) syncBlock() {
	if c.pos < c.blkEnd {
		return
	}
	n := c.lim
	if c.bsize <= 0 {
		c.blkEnd = n
		c.blkLast = c.docs[n-1]
		c.blkCos, c.blkDot = c.ubCos, c.ubDot
		return
	}
	b := c.pos / c.bsize
	end := (b + 1) * c.bsize
	if end > n {
		end = n
	}
	c.blkEnd = end
	c.blkLast = c.docs[end-1]
	c.blkCos = c.cosScale * c.bmr[b]
	c.blkDot = c.qw * c.bmw[b]
}

// seek advances the cursor to the first posting with doc ≥ target
// (galloping then binary search — candidates arrive in ascending order, so
// the cursor only ever moves forward) and reports the weight when the
// target is present.
func (c *termCursor) seek(target corpus.PaperID) (float64, bool) {
	lo := c.pos
	n := c.lim
	if lo >= n {
		return 0, false
	}
	if c.docs[lo] >= target {
		c.pos = lo
		if c.docs[lo] == target {
			return c.ws[lo], true
		}
		return 0, false
	}
	// Gallop to bracket the target, then binary search the bracket.
	step := 1
	hi := lo + 1
	for hi < n && c.docs[hi] < target {
		lo = hi
		hi += step
		step *= 2
	}
	if hi > n {
		hi = n
	}
	i, j := lo+1, hi
	for i < j {
		h := int(uint(i+j) >> 1)
		if c.docs[h] < target {
			i = h + 1
		} else {
			j = h
		}
	}
	c.pos = i
	if i < n && c.docs[i] == target {
		return c.ws[i], true
	}
	return 0, false
}

// advanceFiltered steps the cursor past its current posting, and on past
// every posting outside the query's restriction, returning the next
// admissible document (docSentinel when exhausted). Filtering during the
// advance keeps restricted-out documents from ever surfacing as candidates
// in the main loop.
func (c *termCursor) advanceFiltered(opts *Options, restricted bool) corpus.PaperID {
	for {
		c.pos++
		if c.pos >= c.lim {
			return docSentinel
		}
		d := c.docs[c.pos]
		if !restricted || opts.allows(d) {
			return d
		}
	}
}

// blockProbe positions the cursor at the first block that could contain
// target and returns that block's dot-space contribution bound, or
// (0, false) when the target provably has no posting. Whole blocks are
// stepped over by their last-doc fence without touching their postings,
// and a miss is detected from the first live doc of the landing block, so
// the common non-essential miss costs no binary search. Safe because probe
// targets arrive in ascending order: every skipped posting precedes a
// fence below the target.
func (c *termCursor) blockProbe(target corpus.PaperID) (float64, bool) {
	n := c.lim
	if c.pos >= n {
		return 0, false
	}
	c.syncBlock()
	for c.blkLast < target {
		c.pos = c.blkEnd
		if c.pos >= n {
			return 0, false
		}
		c.syncBlock()
	}
	if c.docs[c.pos] > target {
		return 0, false
	}
	return c.blkDot, true
}

// topkScratch is the pooled per-query state of the top-k evaluator: the
// resolved query, cursors, suffix bound tables, the per-candidate
// contribution pairs, and the result heap.
type topkScratch struct {
	qts     []queryTerm
	keys    []cursorKey
	cur     []termCursor
	curDoc  []corpus.PaperID
	tailCos []float64
	tailDot []float64
	contrib []float64
	present []int
	norm    []float64
	heap    hitHeap
}

// docSentinel marks an exhausted cursor in the flat current-doc array: it
// compares above every real document ID, so the min-scan needs no
// exhaustion branch.
const docSentinel = corpus.PaperID(math.MaxInt)

// growDocs returns a PaperID slice of length n, reusing s's storage when
// it suffices.
func growDocs(s []corpus.PaperID, n int) []corpus.PaperID {
	if cap(s) < n {
		return make([]corpus.PaperID, n)
	}
	return s[:n]
}

// cursorKey is the sortable projection of a term cursor: its position in
// the term-ID-sorted query and its cosine bound.
type cursorKey struct {
	qi    int32
	ubCos float64
}

// growKeys returns a key slice of length n, reusing s's storage when it
// suffices.
func growKeys(s []cursorKey, n int) []cursorKey {
	if cap(s) < n {
		return make([]cursorKey, n)
	}
	return s[:n]
}

// getTopkScratch leases query scratch from the per-index pool.
func (ix *Index) getTopkScratch() *topkScratch {
	if sc, ok := ix.topkPool.Get().(*topkScratch); ok {
		return sc
	}
	return &topkScratch{}
}

// growF64 returns a float64 slice of length n, reusing s's storage when it
// suffices.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growCursors returns a cursor slice of length n, reusing s's storage when
// it suffices. Callers overwrite every element.
func growCursors(s []termCursor, n int) []termCursor {
	if cap(s) < n {
		return make([]termCursor, n)
	}
	return s[:n]
}

// growInts returns an int slice of capacity ≥ n and length 0, reusing s's
// storage when it suffices.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, 0, n)
	}
	return s[:0]
}

// resolveQueryNormInto makes a single pass over the query vector,
// collecting both the resolvable terms (sorted by term ID, appended into
// caller-owned storage) and the squared weights of every term — the inputs
// to the exact query norm, which the caller finishes with
// vector.NormOfSquares. Folding norm collection into resolution halves the
// map iterations the top-k setup pays; the norm is order-independent (the
// squares are re-sorted before summation), so it is bit-identical to
// qv.Norm().
func (ix *Index) resolveQueryNormInto(qv vector.Sparse, qts []queryTerm, sq []float64) ([]queryTerm, []float64) {
	for term, w := range qv {
		sq = append(sq, w*w)
		if id, ok := ix.termIDs[term]; ok {
			qts = append(qts, queryTerm{id, w})
		}
	}
	slices.SortFunc(qts, func(a, b queryTerm) int {
		switch {
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		}
		return 0
	})
	return qts, sq
}

// cannotQualify reports whether a document with upper-bounded score b
// (already slack-inflated) is provably outside the result page. Threshold
// prunes strictly below (equality is kept); a full heap prunes at b ≤ θ
// because any later candidate tying the heap minimum has a larger doc ID
// and loses the tiebreak.
//
// w is the cross-range watermark (0 — a no-op, since qualifying scores are
// positive — for serial queries): the k-th best score observed anywhere in
// a parallel query. It prunes strictly below only: b < w proves k documents
// score strictly above the candidate, putting it outside the global page
// regardless of tiebreaks, while b == w must survive because a remote
// equal-score document could still lose the ascending-doc tiebreak.
func cannotQualify(b, threshold, w float64, heap *hitHeap) bool {
	if !(b > 0) || b < threshold || b < w {
		return true
	}
	return heap.Full() && b <= heap.Min().Score
}

// cannotQualifyScaled is cannotQualify with both sides multiplied by the
// candidate's positive norm product qn·dn: xb is the slack-inflated
// dot-space bound (score bound × qn·dn), tScaled the threshold and wScaled
// the watermark on the same scale. Multiplying both sides of each
// comparison by the same positive factor preserves it up to 1 ULP of
// rounding — absorbed by boundSlack — and saves the division per candidate.
func cannotQualifyScaled(xb, tScaled, wScaled, scale float64, heap *hitHeap) bool {
	if !(xb > 0) || xb < tScaled || xb < wScaled {
		return true
	}
	return heap.Full() && xb <= heap.Min().Score*scale
}

// searchTopK is the Limit > 0 evaluation mode of SearchVectorContext. It
// returns exactly the page the exhaustive path would: the Limit best hits
// by (score desc, doc asc), filtered by Threshold, scores bit-identical.
func (ix *Index) searchTopK(ctx context.Context, qv vector.Sparse, opts Options) ([]Hit, error) {
	hits, err := ix.searchTopKAppend(ctx, qv, opts, []Hit{})
	if err != nil {
		return nil, err
	}
	return hits, nil
}

// searchTopKAppend resolves the query, then runs the block-max evaluation
// appending the result page to dst. All evaluator state lives in pooled
// scratch, so with a reused dst the serial path performs zero steady-state
// heap allocations. Queries admitted by the Options.TopKWorkers cost model
// are range-partitioned across workers instead (see topk_parallel.go) with
// a byte-identical result page.
func (ix *Index) searchTopKAppend(ctx context.Context, qv vector.Sparse, opts Options, dst []Hit) ([]Hit, error) {
	sc := ix.getTopkScratch()
	defer ix.topkPool.Put(sc)
	sq := sc.norm
	if cap(sq) < len(qv) {
		sq = make([]float64, 0, len(qv))
	} else {
		sq = sq[:0]
	}
	qts, sq := ix.resolveQueryNormInto(qv, sc.qts[:0], sq)
	sc.qts, sc.norm = qts, sq
	if len(qts) == 0 {
		return dst, ctx.Err()
	}
	qn := vector.NormOfSquares(sq)
	if qn == 0 {
		return dst, ctx.Err()
	}
	// Order the terms by descending cosine bound (ties by query position
	// for determinism) on lightweight keys, then build each fat cursor
	// directly in its final slot — sorting termCursors themselves would
	// shuffle ~160-byte structs.
	keys := growKeys(sc.keys, len(qts))
	sc.keys = keys
	for i, qt := range qts {
		keys[i] = cursorKey{qi: int32(i), ubCos: qt.w * ix.maxRatio[qt.id] / qn}
	}
	slices.SortFunc(keys, func(a, b cursorKey) int {
		switch {
		case a.ubCos > b.ubCos:
			return -1
		case a.ubCos < b.ubCos:
			return 1
		}
		return int(a.qi) - int(b.qi)
	})
	if workers := ix.topkWorkerPlan(&opts, qts); workers > 1 {
		return ix.searchTopKParallel(ctx, sc, qn, opts, workers, dst)
	}
	visited, skipped, err := ix.evalRange(ctx, sc, qts, keys, qn, &opts, 0, docSentinel, nil)
	ix.statVisited.Add(visited)
	if skipped != 0 {
		ix.statSkipped.Add(skipped)
	}
	if err != nil {
		return dst, err
	}
	start := len(dst)
	dst = append(dst, sc.heap.Items()...)
	sortTopKPage(dst[start:])
	return dst, ctx.Err()
}

// evalRange runs the block-max MaxScore walk over the candidate documents
// in [lo, hi) — hi == docSentinel meaning the whole corpus without paying
// the range binary searches — leaving the range's qualifying page in
// sc.heap. qts and keys are the resolved query and its descending-bound
// cursor order; they are owned by the caller and read-only here, so
// concurrent range workers share one copy. wm, when non-nil, is the
// parallel query's shared watermark (see topk_parallel.go): the walk
// prunes against the last value it observed and publishes its own
// full-heap minimum into it. The pruning counters are returned rather than
// flushed so a parallel query still flushes its totals once.
func (ix *Index) evalRange(ctx context.Context, sc *topkScratch, qts []queryTerm, keys []cursorKey, qn float64, opts *Options, lo, hi corpus.PaperID, wm *scoreWatermark) (visited, skipped uint64, err error) {
	cur := growCursors(sc.cur, len(qts))
	sc.cur = cur
	for j, k := range keys {
		qt := qts[k.qi]
		docs, ws := ix.postingsOf(qt.id)
		c := termCursor{
			docs: docs, ws: ws, qi: int(k.qi), qw: qt.w,
			ubCos:    k.ubCos,
			ubDot:    qt.w * ix.maxWeight[qt.id],
			cosScale: qt.w / qn,
			pos:      -1,
			lim:      len(docs),
		}
		if ix.blockOffsets != nil {
			blo, bhi := ix.blockOffsets[qt.id], ix.blockOffsets[qt.id+1]
			c.bmw = ix.blockMaxWeight[blo:bhi]
			c.bmr = ix.blockMaxRatio[blo:bhi]
			c.bsize = ix.blockSize
		}
		// Cut the run to the document range: pos rests just before the
		// first posting ≥ lo, lim at the first posting ≥ hi. Positions stay
		// run-absolute, so block indices (pos/bsize) are unaffected; a
		// partial edge block keeps its full-block maxima, which remain
		// conservative bounds over the sub-block.
		if lo > 0 {
			c.pos = searchPaperID(docs, lo) - 1
		}
		if hi != docSentinel {
			c.lim = searchPaperID(docs, hi)
		}
		cur[j] = c
	}
	// curDoc mirrors each essential cursor's current document in a flat
	// array the candidate min-scan can sweep without touching the fat
	// cursor structs; exhausted cursors park at docSentinel. Cursors start
	// on their first admissible posting: advanceFiltered applies the
	// restriction during every advance, so documents outside it are (with
	// one backstop exception at block-skip landings) never even enumerated.
	restricted := opts.restricted()
	curDoc := growDocs(sc.curDoc, len(cur))
	sc.curDoc = curDoc
	for i := range cur {
		curDoc[i] = cur[i].advanceFiltered(opts, restricted)
	}
	// tailCos[i] / tailDot[i] bound the total contribution of the term
	// suffix cur[i:] in cosine / dot space.
	tailCos := growF64(sc.tailCos, len(cur)+1)
	tailDot := growF64(sc.tailDot, len(cur)+1)
	sc.tailCos, sc.tailDot = tailCos, tailDot
	tailCos[len(cur)], tailDot[len(cur)] = 0, 0
	for i := len(cur) - 1; i >= 0; i-- {
		tailCos[i] = tailCos[i+1] + cur[i].ubCos
		tailDot[i] = tailDot[i+1] + cur[i].ubDot
	}

	heap := &sc.heap
	heap.Reset(opts.Limit)
	// wmCos caches the shared watermark in cosine-score space. 0 is the
	// neutral value — qualifying scores are strictly positive, so every
	// `bound < wmCos` watermark comparison is a no-op until a real value
	// arrives, and the serial path (wm == nil) never pays more than the
	// dead compare.
	wmCos := 0.0
	// nEss delimits the essential prefix: the suffix cur[nEss:] is
	// non-essential once its cumulative bound cannot qualify. Re-checked
	// whenever the heap threshold or the watermark rises.
	nEss := len(cur)
	for nEss > 0 && cannotQualify(tailCos[nEss-1]*boundSlack, opts.Threshold, wmCos, heap) {
		nEss--
	}

	// present/contrib hold the current candidate's gathered contributions
	// as parallel (query-term position, qw·w product) pairs indexed by np,
	// re-sorted by term position only for candidates that survive to exact
	// re-scoring. A candidate touches at most len(qts) pairs, so sizing to
	// that keeps the writes in bounds without append bookkeeping.
	contrib := growF64(sc.contrib, len(qts))
	sc.contrib = contrib
	present := growInts(sc.present, len(qts))
	present = present[:len(qts)]
	sc.present = present
	np := 0
	steps := 0
	// fence is the nearest essential block boundary: the minimum, over the
	// live essential cursors, of the last document in the cursor's current
	// block. Candidates at or below the fence are evaluated on a fast path
	// that never touches block state; crossing it triggers one refresh
	// that re-sums the block bounds and range-skips every provably
	// unproductive block run before evaluation resumes. The fence is
	// deliberately allowed to go stale as cursors advance within the
	// refresh's blocks — a cursor entering a new block only raises its
	// block-last, so a stale fence is merely conservative (refreshing
	// earlier than strictly needed), never wrong. -1 forces the first
	// refresh.
	fence := corpus.PaperID(-1)
	for nEss > 0 {
		if steps&cancelCheckMask == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return visited, skipped, cerr
			}
		}
		steps++
		if wm != nil {
			if w := wm.load(); w > wmCos {
				// A remote range raised the global k-th best score: adopt it
				// and re-derive the essential prefix under the tighter
				// threshold.
				wmCos = w
				for nEss > 0 && cannotQualify(tailCos[nEss-1]*boundSlack, opts.Threshold, wmCos, heap) {
					nEss--
				}
				if nEss == 0 {
					break
				}
			}
		}
		// Next candidate: the minimum document under the essential cursors.
		minDoc := docSentinel
		for i := 0; i < nEss; i++ {
			if d := curDoc[i]; d < minDoc {
				minDoc = d
			}
		}
		if minDoc == docSentinel {
			break // essential postings exhausted: no further doc can qualify
		}
		if minDoc > fence {
			// Crossed into a new block configuration: refresh the cached
			// bounds and skip whole block runs while their combined bound
			// cannot qualify. rangeCos bounds the essential contribution of
			// every document up to the fence (a term's postings are strictly
			// ascending, so any unseen posting with doc ≤ its cursor's
			// blkLast lies inside the cursor's current block).
			for {
				rangeCos := 0.0
				fence = -1
				for i := 0; i < nEss; i++ {
					if curDoc[i] == docSentinel {
						continue
					}
					c := &cur[i]
					c.syncBlock()
					rangeCos += c.blkCos
					if fence < 0 || c.blkLast < fence {
						fence = c.blkLast
					}
				}
				if fence < 0 {
					break // every essential cursor exhausted
				}
				if !cannotQualify((rangeCos+tailCos[nEss])*boundSlack, opts.Threshold, wmCos, heap) {
					break // this block range may hold a qualifying doc
				}
				for i := 0; i < nEss; i++ {
					if curDoc[i] > fence {
						continue
					}
					c := &cur[i]
					before := c.pos
					c.seek(fence + 1)
					skipped += uint64(c.pos - before)
					// Re-apply the restriction filter at the landing
					// posting (seek is filter-blind): the cursor's doc is
					// ≤ fence < target, so the seek advanced pos by at
					// least one and stepping back before the filtered
					// advance is safe.
					c.pos--
					curDoc[i] = c.advanceFiltered(opts, restricted)
				}
			}
			if fence < 0 {
				break
			}
			// Re-derive the candidate from the post-skip cursor positions
			// (minDoc ≤ fence holds on re-entry: each live cursor's current
			// doc is inside its current block, so the minimum doc cannot
			// exceed the minimum block-last).
			continue
		}
		// Candidates arrive pre-filtered — every cursor advance, including
		// block-skip landings, applies the restriction — leaving zero-norm
		// documents as the only backstop reject.
		dn := ix.norms[minDoc]
		if dn == 0 {
			// The candidate can never score: step the essential cursors past
			// it without gathering contributions.
			for i := 0; i < nEss; i++ {
				if curDoc[i] == minDoc {
					curDoc[i] = cur[i].advanceFiltered(opts, restricted)
				}
			}
			continue
		}
		visited++
		// Gather essential contributions as (term position, qw·w product)
		// pairs, advancing their cursors past the candidate.
		essDot := 0.0
		for i := 0; i < nEss; i++ {
			if curDoc[i] != minDoc {
				continue
			}
			c := &cur[i]
			v := c.qw * c.ws[c.pos]
			contrib[np] = v
			present[np] = c.qi
			np++
			essDot += v
			curDoc[i] = c.advanceFiltered(opts, restricted)
		}
		{
			// All per-candidate bounds compare in scaled (dot × slack)
			// space — see cannotQualifyScaled — so the division by qn·dn
			// happens once, for survivors only.
			scale := qn * dn
			tScaled := opts.Threshold * scale
			wScaled := wmCos * scale
			// Candidate bound with its true norm: essential contributions
			// plus the non-essential dot-space tail.
			xb := (essDot + tailDot[nEss]) * boundSlack
			if !cannotQualifyScaled(xb, tScaled, wScaled, scale, heap) {
				// Probe non-essential terms, highest bound first, dropping
				// each term's bound from the residual as it resolves. A
				// block probe first tightens the term's bound to its local
				// block maximum — often killing the candidate, or proving
				// the term absent, without a binary search.
				remaining := tailDot[nEss]
				survived := true
				for i := nEss; i < len(cur); i++ {
					c := &cur[i]
					remaining -= c.ubDot
					// Manually inlined blockProbe fast path: the cursor sits
					// inside a synced block that spans the candidate, so the
					// block's cached bound applies (or the current doc already
					// exceeds the candidate: a miss) without the call.
					var bd float64
					var maybe bool
					if c.pos < c.blkEnd && c.blkLast >= minDoc {
						if c.docs[c.pos] > minDoc {
							bd, maybe = 0, false
						} else {
							bd, maybe = c.blkDot, true
						}
					} else {
						bd, maybe = c.blockProbe(minDoc)
					}
					if maybe {
						xb = (essDot + remaining + bd) * boundSlack
						if cannotQualifyScaled(xb, tScaled, wScaled, scale, heap) {
							survived = false
							break
						}
						if w, ok := c.seek(minDoc); ok {
							v := c.qw * w
							contrib[np] = v
							present[np] = c.qi
							np++
							essDot += v
						}
					}
					xb = (essDot + remaining) * boundSlack
					if cannotQualifyScaled(xb, tScaled, wScaled, scale, heap) {
						survived = false
						break
					}
				}
				if survived {
					// Exact score: re-sum in ascending term-ID order — the
					// exhaustive path's accumulation order: each pair's
					// product was computed from the same operands the
					// exhaustive dot product multiplies, and absent terms
					// contribute an exact +0 there, so sorting the pairs by
					// term position and summing reproduces its rounding bit
					// for bit.
					for a := 1; a < np; a++ {
						qi, v := present[a], contrib[a]
						b := a
						for b > 0 && present[b-1] > qi {
							present[b], contrib[b] = present[b-1], contrib[b-1]
							b--
						}
						present[b], contrib[b] = qi, v
					}
					var dot float64
					for k := 0; k < np; k++ {
						dot += contrib[k]
					}
					score := dot / (qn * dn)
					if score >= opts.Threshold && score > 0 {
						if heap.Offer(Hit{minDoc, score}) {
							if wm != nil && heap.Full() {
								// Publish the local k-th best: k genuine
								// qualifying hits score at least this, so
								// remote ranges may prune strictly below it.
								wm.raise(heap.Min().Score)
							}
							for nEss > 0 && cannotQualify(tailCos[nEss-1]*boundSlack, opts.Threshold, wmCos, heap) {
								nEss--
							}
						}
					}
				}
			}
		}
		np = 0
	}
	return visited, skipped, nil
}

// sortTopKPage sorts a result page in the returned (score desc, doc asc)
// order. Small pages — the common top-10 — use a direct insertion sort,
// skipping the indirect comparator calls of the general path.
func sortTopKPage(hits []Hit) {
	if len(hits) > 32 {
		sortHits(hits)
		return
	}
	for i := 1; i < len(hits); i++ {
		h := hits[i]
		j := i
		for j > 0 && (hits[j-1].Score < h.Score ||
			(hits[j-1].Score == h.Score && hits[j-1].Doc > h.Doc)) {
			hits[j] = hits[j-1]
			j--
		}
		hits[j] = h
	}
}
