package index

import (
	"strings"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/textproc"
)

// SnippetOptions configure excerpt generation.
type SnippetOptions struct {
	// Window is the number of raw words in the excerpt (default 30).
	Window int
	// Pre and Post wrap each matched word (default "[" and "]").
	Pre, Post string
}

// Snippet returns an excerpt of the paper around the densest cluster of
// query-term matches, with matched words wrapped in Pre/Post markers. The
// abstract is preferred; the body is used when the abstract has no match.
// Matching is stem-aware ("binding" highlights "binds"). Returns the head
// of the abstract when nothing matches.
func (ix *Index) Snippet(doc corpus.PaperID, query string, opts SnippetOptions) string {
	if opts.Window <= 0 {
		opts.Window = 30
	}
	if opts.Pre == "" && opts.Post == "" {
		opts.Pre, opts.Post = "[", "]"
	}
	p := ix.analyzer.Corpus().Paper(doc)
	if p == nil {
		return ""
	}
	queryStems := map[string]bool{}
	for _, t := range ix.analyzer.Tokenizer().Terms(query) {
		queryStems[t] = true
	}
	for _, text := range []string{p.Abstract, p.Body} {
		if s, ok := snippetFrom(text, queryStems, opts); ok {
			return s
		}
	}
	// Fall back to the abstract head.
	words := strings.Fields(p.Abstract)
	if len(words) > opts.Window {
		words = words[:opts.Window]
		return strings.Join(words, " ") + " …"
	}
	return strings.Join(words, " ")
}

// snippetFrom finds the window of raw words with the most stem matches and
// renders it; ok is false when no word matches.
func snippetFrom(text string, queryStems map[string]bool, opts SnippetOptions) (string, bool) {
	raw := strings.Fields(text)
	if len(raw) == 0 || len(queryStems) == 0 {
		return "", false
	}
	stemmer := textproc.NewPorterStemmer()
	matched := make([]bool, len(raw))
	any := false
	for i, w := range raw {
		norm := normalizeWord(w)
		if norm == "" {
			continue
		}
		if queryStems[norm] || queryStems[stemmer.Stem(norm)] {
			matched[i] = true
			any = true
		}
	}
	if !any {
		return "", false
	}
	// Densest window by match count (first wins on ties).
	win := opts.Window
	if win > len(raw) {
		win = len(raw)
	}
	count := 0
	for i := 0; i < win; i++ {
		if matched[i] {
			count++
		}
	}
	best, bestCount := 0, count
	for i := win; i < len(raw); i++ {
		if matched[i] {
			count++
		}
		if matched[i-win] {
			count--
		}
		if count > bestCount {
			bestCount = count
			best = i - win + 1
		}
	}
	var b strings.Builder
	if best > 0 {
		b.WriteString("… ")
	}
	for i := best; i < best+win; i++ {
		if i > best {
			b.WriteByte(' ')
		}
		if matched[i] {
			b.WriteString(opts.Pre)
			b.WriteString(raw[i])
			b.WriteString(opts.Post)
		} else {
			b.WriteString(raw[i])
		}
	}
	if best+win < len(raw) {
		b.WriteString(" …")
	}
	return b.String(), true
}

// normalizeWord lowercases and strips surrounding punctuation from a raw
// word, mirroring the tokenizer's normalisation closely enough for
// highlighting.
func normalizeWord(w string) string {
	start, end := 0, len(w)
	for start < end && !isAlnum(w[start]) {
		start++
	}
	for end > start && !isAlnum(w[end-1]) {
		end--
	}
	return strings.ToLower(w[start:end])
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
