package index_test

import (
	"fmt"
	"log"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/index"
)

func buildExampleIndex() *index.Index {
	papers := []*corpus.Paper{
		{ID: 0, Title: "rna polymerase structure", Abstract: "the rna polymerase complex", Body: "structural study", Authors: []string{"a"}},
		{ID: 1, Title: "dna repair pathways", Abstract: "repair of dna damage", Body: "pathway analysis", Authors: []string{"b"}},
	}
	c, err := corpus.NewCorpus(papers)
	if err != nil {
		log.Fatal(err)
	}
	return index.Build(corpus.NewAnalyzer(c))
}

func ExampleIndex_Search() {
	ix := buildExampleIndex()
	hits := ix.Search("rna polymerase", index.Options{})
	fmt.Println(len(hits), hits[0].Doc)
	// Output: 1 0
}

func ExampleIndex_ParseQuery() {
	ix := buildExampleIndex()
	q, err := ix.ParseQuery(`("rna polymerase" OR dna) AND NOT damage`)
	if err != nil {
		log.Fatal(err)
	}
	hits, err := ix.SearchQuery(q, index.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Paper 1 mentions damage → excluded; paper 0 matches the phrase.
	fmt.Println(len(hits), hits[0].Doc)
	// Output: 1 0
}

func ExampleIndex_Snippet() {
	ix := buildExampleIndex()
	fmt.Println(ix.Snippet(1, "repair", index.SnippetOptions{Window: 4}))
	// Output: [repair] of dna damage
}
