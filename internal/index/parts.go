package index

import (
	"fmt"

	"ctxsearch/internal/corpus"
)

// Parts is the serializable flat form of an Index: the interned term
// dictionary plus the CSR postings and the per-term MaxScore maxima. It is
// what the v4/v5 state formats persist so that serving can skip corpus
// re-analysis and index construction entirely — FromParts rebinds these
// arrays (typically aliasing a memory-mapped file) to a live Index in
// O(terms), never touching a posting (except to recompute block-max tables
// for pre-v5 parts that lack them).
type Parts struct {
	// Terms holds the indexed term strings in lexicographic order; term i
	// has interned ID i, matching the Build ID assignment exactly.
	Terms []string
	// CSR postings: term t's run is Docs[Offsets[t]:Offsets[t+1]] and
	// Weights[...], ascending by doc ID.
	Offsets []int32
	Docs    []corpus.PaperID
	Weights []float64
	// Norms[d] is document d's TF-IDF vector norm (full corpus size).
	Norms []float64
	// Per-term MaxScore bounds (see topk.go).
	MaxWeight []float64
	MaxRatio  []float64
	// Block-max tables (see topk.go): term t's posting run is partitioned
	// into blocks of BlockSize postings, its blocks occupying
	// BlockMaxWeight[BlockOffsets[t]:BlockOffsets[t+1]] (and likewise
	// BlockMaxRatio). Nil BlockOffsets means the tables are absent — parts
	// from a pre-v5 state — and FromParts recomputes them at
	// DefaultBlockSize so old states keep serving with full pruning power.
	BlockSize      int
	BlockOffsets   []int32
	BlockMaxWeight []float64
	BlockMaxRatio  []float64
}

// Parts exposes the index's flat arrays for serialization. All slices alias
// the index except Terms, which is materialized from the interning map —
// read-only either way.
func (ix *Index) Parts() *Parts {
	terms := make([]string, len(ix.termIDs))
	for term, id := range ix.termIDs {
		terms[id] = term
	}
	return &Parts{
		Terms:          terms,
		Offsets:        ix.offsets,
		Docs:           ix.docs,
		Weights:        ix.weights,
		Norms:          ix.norms,
		MaxWeight:      ix.maxWeight,
		MaxRatio:       ix.maxRatio,
		BlockSize:      ix.blockSize,
		BlockOffsets:   ix.blockOffsets,
		BlockMaxWeight: ix.blockMaxWeight,
		BlockMaxRatio:  ix.blockMaxRatio,
	}
}

// FromParts constructs an Index over caller-provided flat arrays — the
// zero-copy open path of the v4 state format. The index borrows every
// slice verbatim and never mutates or appends, so mapping-backed
// (read-only) memory is safe; the caller keeps the backing storage alive
// for the index's lifetime. The analyzer must be over the same corpus the
// parts were built from (its DF table drives query weighting; document
// weights are already frozen in the postings).
//
// Validation is O(terms): lengths, offset monotonicity, and lexicographic
// term order. Per-element posting content is the writer's contract,
// guarded on disk by section CRCs — scanning it here would fault in every
// page and defeat the O(1) open.
func FromParts(a *corpus.Analyzer, p *Parts) (*Index, error) {
	nTerms := len(p.Terms)
	if len(p.Offsets) != nTerms+1 {
		return nil, fmt.Errorf("index: %d terms need %d offsets, have %d", nTerms, nTerms+1, len(p.Offsets))
	}
	if len(p.Docs) != len(p.Weights) {
		return nil, fmt.Errorf("index: %d docs vs %d weights", len(p.Docs), len(p.Weights))
	}
	if p.Offsets[0] != 0 || int(p.Offsets[nTerms]) != len(p.Docs) {
		return nil, fmt.Errorf("index: offsets span [%d, %d), want [0, %d)", p.Offsets[0], p.Offsets[nTerms], len(p.Docs))
	}
	if len(p.MaxWeight) != nTerms || len(p.MaxRatio) != nTerms {
		return nil, fmt.Errorf("index: %d terms vs %d/%d maxima", nTerms, len(p.MaxWeight), len(p.MaxRatio))
	}
	if n := a.Corpus().Len(); len(p.Norms) != n {
		return nil, fmt.Errorf("index: %d norms for a %d-paper corpus", len(p.Norms), n)
	}
	ix := &Index{
		analyzer:  a,
		termIDs:   make(map[string]int32, nTerms),
		offsets:   p.Offsets,
		docs:      p.Docs,
		weights:   p.Weights,
		norms:     p.Norms,
		maxWeight: p.MaxWeight,
		maxRatio:  p.MaxRatio,
	}
	for i, term := range p.Terms {
		if i > 0 && p.Terms[i-1] >= term {
			return nil, fmt.Errorf("index: terms not in lexicographic order at %d (%q)", i, term)
		}
		if p.Offsets[i] > p.Offsets[i+1] {
			return nil, fmt.Errorf("index: offsets decrease at term %d (%q)", i, term)
		}
		ix.termIDs[term] = int32(i)
	}
	if p.BlockOffsets == nil {
		// Pre-v5 parts carry no block tables: recompute them so old states
		// serve with full block-max pruning. This touches every posting —
		// the one deliberate exception to the O(1) bind, paid once per
		// open, and only for states whose pages first-touch CRC
		// verification would fault in anyway.
		bs := p.BlockSize
		if bs <= 0 {
			bs = DefaultBlockSize
		}
		ix.blockSize = bs
		ix.blockOffsets, ix.blockMaxWeight, ix.blockMaxRatio =
			computeBlockTables(p.Offsets, p.Docs, p.Weights, p.Norms, bs, 0)
	} else {
		// Persisted tables: validate shape in O(terms) and borrow the
		// (typically mapped) arrays verbatim, like every other column.
		if p.BlockSize <= 0 {
			return nil, fmt.Errorf("index: block tables with non-positive block size %d", p.BlockSize)
		}
		if len(p.BlockOffsets) != nTerms+1 || p.BlockOffsets[0] != 0 {
			return nil, fmt.Errorf("index: %d terms need %d block offsets starting at 0, have %d", nTerms, nTerms+1, len(p.BlockOffsets))
		}
		bs := int32(p.BlockSize)
		for t := 0; t < nTerms; t++ {
			run := p.Offsets[t+1] - p.Offsets[t]
			want := (run + bs - 1) / bs
			if p.BlockOffsets[t+1]-p.BlockOffsets[t] != want {
				return nil, fmt.Errorf("index: term %d has %d postings, wants %d blocks of %d, has %d",
					t, run, want, bs, p.BlockOffsets[t+1]-p.BlockOffsets[t])
			}
		}
		nb := int(p.BlockOffsets[nTerms])
		if len(p.BlockMaxWeight) != nb || len(p.BlockMaxRatio) != nb {
			return nil, fmt.Errorf("index: %d blocks vs %d/%d block maxima", nb, len(p.BlockMaxWeight), len(p.BlockMaxRatio))
		}
		ix.blockSize = p.BlockSize
		ix.blockOffsets = p.BlockOffsets
		ix.blockMaxWeight = p.BlockMaxWeight
		ix.blockMaxRatio = p.BlockMaxRatio
	}
	n := len(p.Norms)
	ix.accPool.New = func() any {
		return &accum{val: make([]float64, n), seen: make([]bool, n)}
	}
	return ix, nil
}

// EnsureBlockTables computes the block-max tables in place when the parts
// carry none — the exact per-posting work FromParts performs on bind for a
// pre-v5 state (FromParts itself never mutates caller parts; this method
// exists so cold-start measurement tools can charge that work explicitly).
// No-op when tables are already present. workers <= 0 selects GOMAXPROCS.
func (p *Parts) EnsureBlockTables(workers int) {
	if p.BlockOffsets != nil {
		return
	}
	bs := p.BlockSize
	if bs <= 0 {
		bs = DefaultBlockSize
	}
	p.BlockSize = bs
	p.BlockOffsets, p.BlockMaxWeight, p.BlockMaxRatio =
		computeBlockTables(p.Offsets, p.Docs, p.Weights, p.Norms, bs, workers)
}

// SliceRange restricts the parts to postings of documents with
// lo <= ID < hi — the per-range open of the sharded serving topology over
// a mapped state, replacing BuildRangeWorkers without re-analyzing a
// single paper. The term dictionary, offsets shape, and norms stay
// corpus-global (terms whose postings fall outside the range keep an empty
// run, which the query path treats exactly like an unindexed term), so a
// range engine's scores are bit-identical to the full build's for its own
// documents. Per-term maxima are recomputed over the surviving postings,
// matching BuildRangeWorkers' tighter in-range MaxScore bounds; block-max
// tables, when the source carries them, are likewise rebuilt at the same
// block size over the re-sliced runs — each range block's maxima are
// exactly the maxima of the postings it covers, never inherited from the
// (differently partitioned) source blocks. The returned parts own their
// postings (copied out of the mapped arrays); Terms and Norms stay
// borrowed.
func (p *Parts) SliceRange(lo, hi int) *Parts {
	nTerms := len(p.Terms)
	out := &Parts{
		Terms:     p.Terms,
		Offsets:   make([]int32, nTerms+1),
		Norms:     p.Norms,
		MaxWeight: make([]float64, nTerms),
		MaxRatio:  make([]float64, nTerms),
	}
	dlo, dhi := corpus.PaperID(lo), corpus.PaperID(hi)
	for t := 0; t < nTerms; t++ {
		run := p.Docs[p.Offsets[t]:p.Offsets[t+1]]
		a := int(p.Offsets[t]) + searchPaperID(run, dlo)
		b := int(p.Offsets[t]) + searchPaperID(run, dhi)
		var mw, mr float64
		for k := a; k < b; k++ {
			w := p.Weights[k]
			out.Docs = append(out.Docs, p.Docs[k])
			out.Weights = append(out.Weights, w)
			if w > mw {
				mw = w
			}
			if dn := p.Norms[p.Docs[k]]; dn > 0 {
				if r := w / dn; r > mr {
					mr = r
				}
			}
		}
		out.Offsets[t+1] = int32(len(out.Docs))
		out.MaxWeight[t], out.MaxRatio[t] = mw, mr
	}
	if p.BlockOffsets != nil && p.BlockSize > 0 {
		out.BlockSize = p.BlockSize
		out.BlockOffsets, out.BlockMaxWeight, out.BlockMaxRatio =
			computeBlockTables(out.Offsets, out.Docs, out.Weights, p.Norms, p.BlockSize, 1)
	}
	return out
}

// searchPaperID returns the first index of s whose value is >= v (len(s)
// when none is).
func searchPaperID(s []corpus.PaperID, v corpus.PaperID) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
