package index

import (
	"fmt"

	"ctxsearch/internal/corpus"
)

// Parts is the serializable flat form of an Index: the interned term
// dictionary plus the CSR postings and the per-term MaxScore maxima. It is
// what the v4 state format persists so that serving can skip corpus
// re-analysis and index construction entirely — FromParts rebinds these
// arrays (typically aliasing a memory-mapped file) to a live Index in
// O(terms), never touching a posting.
type Parts struct {
	// Terms holds the indexed term strings in lexicographic order; term i
	// has interned ID i, matching the Build ID assignment exactly.
	Terms []string
	// CSR postings: term t's run is Docs[Offsets[t]:Offsets[t+1]] and
	// Weights[...], ascending by doc ID.
	Offsets []int32
	Docs    []corpus.PaperID
	Weights []float64
	// Norms[d] is document d's TF-IDF vector norm (full corpus size).
	Norms []float64
	// Per-term MaxScore bounds (see topk.go).
	MaxWeight []float64
	MaxRatio  []float64
}

// Parts exposes the index's flat arrays for serialization. All slices alias
// the index except Terms, which is materialized from the interning map —
// read-only either way.
func (ix *Index) Parts() *Parts {
	terms := make([]string, len(ix.termIDs))
	for term, id := range ix.termIDs {
		terms[id] = term
	}
	return &Parts{
		Terms:     terms,
		Offsets:   ix.offsets,
		Docs:      ix.docs,
		Weights:   ix.weights,
		Norms:     ix.norms,
		MaxWeight: ix.maxWeight,
		MaxRatio:  ix.maxRatio,
	}
}

// FromParts constructs an Index over caller-provided flat arrays — the
// zero-copy open path of the v4 state format. The index borrows every
// slice verbatim and never mutates or appends, so mapping-backed
// (read-only) memory is safe; the caller keeps the backing storage alive
// for the index's lifetime. The analyzer must be over the same corpus the
// parts were built from (its DF table drives query weighting; document
// weights are already frozen in the postings).
//
// Validation is O(terms): lengths, offset monotonicity, and lexicographic
// term order. Per-element posting content is the writer's contract,
// guarded on disk by section CRCs — scanning it here would fault in every
// page and defeat the O(1) open.
func FromParts(a *corpus.Analyzer, p *Parts) (*Index, error) {
	nTerms := len(p.Terms)
	if len(p.Offsets) != nTerms+1 {
		return nil, fmt.Errorf("index: %d terms need %d offsets, have %d", nTerms, nTerms+1, len(p.Offsets))
	}
	if len(p.Docs) != len(p.Weights) {
		return nil, fmt.Errorf("index: %d docs vs %d weights", len(p.Docs), len(p.Weights))
	}
	if p.Offsets[0] != 0 || int(p.Offsets[nTerms]) != len(p.Docs) {
		return nil, fmt.Errorf("index: offsets span [%d, %d), want [0, %d)", p.Offsets[0], p.Offsets[nTerms], len(p.Docs))
	}
	if len(p.MaxWeight) != nTerms || len(p.MaxRatio) != nTerms {
		return nil, fmt.Errorf("index: %d terms vs %d/%d maxima", nTerms, len(p.MaxWeight), len(p.MaxRatio))
	}
	if n := a.Corpus().Len(); len(p.Norms) != n {
		return nil, fmt.Errorf("index: %d norms for a %d-paper corpus", len(p.Norms), n)
	}
	ix := &Index{
		analyzer:  a,
		termIDs:   make(map[string]int32, nTerms),
		offsets:   p.Offsets,
		docs:      p.Docs,
		weights:   p.Weights,
		norms:     p.Norms,
		maxWeight: p.MaxWeight,
		maxRatio:  p.MaxRatio,
	}
	for i, term := range p.Terms {
		if i > 0 && p.Terms[i-1] >= term {
			return nil, fmt.Errorf("index: terms not in lexicographic order at %d (%q)", i, term)
		}
		if p.Offsets[i] > p.Offsets[i+1] {
			return nil, fmt.Errorf("index: offsets decrease at term %d (%q)", i, term)
		}
		ix.termIDs[term] = int32(i)
	}
	n := len(p.Norms)
	ix.accPool.New = func() any {
		return &accum{val: make([]float64, n), seen: make([]bool, n)}
	}
	return ix, nil
}

// SliceRange restricts the parts to postings of documents with
// lo <= ID < hi — the per-range open of the sharded serving topology over
// a mapped state, replacing BuildRangeWorkers without re-analyzing a
// single paper. The term dictionary, offsets shape, and norms stay
// corpus-global (terms whose postings fall outside the range keep an empty
// run, which the query path treats exactly like an unindexed term), so a
// range engine's scores are bit-identical to the full build's for its own
// documents. Per-term maxima are recomputed over the surviving postings,
// matching BuildRangeWorkers' tighter in-range MaxScore bounds. The
// returned parts own their postings (copied out of the mapped arrays);
// Terms and Norms stay borrowed.
func (p *Parts) SliceRange(lo, hi int) *Parts {
	nTerms := len(p.Terms)
	out := &Parts{
		Terms:     p.Terms,
		Offsets:   make([]int32, nTerms+1),
		Norms:     p.Norms,
		MaxWeight: make([]float64, nTerms),
		MaxRatio:  make([]float64, nTerms),
	}
	dlo, dhi := corpus.PaperID(lo), corpus.PaperID(hi)
	for t := 0; t < nTerms; t++ {
		run := p.Docs[p.Offsets[t]:p.Offsets[t+1]]
		a := int(p.Offsets[t]) + searchPaperID(run, dlo)
		b := int(p.Offsets[t]) + searchPaperID(run, dhi)
		var mw, mr float64
		for k := a; k < b; k++ {
			w := p.Weights[k]
			out.Docs = append(out.Docs, p.Docs[k])
			out.Weights = append(out.Weights, w)
			if w > mw {
				mw = w
			}
			if dn := p.Norms[p.Docs[k]]; dn > 0 {
				if r := w / dn; r > mr {
					mr = r
				}
			}
		}
		out.Offsets[t+1] = int32(len(out.Docs))
		out.MaxWeight[t], out.MaxRatio[t] = mw, mr
	}
	return out
}

// searchPaperID returns the first index of s whose value is >= v (len(s)
// when none is).
func searchPaperID(s []corpus.PaperID, v corpus.PaperID) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
