package index

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ctxsearch/internal/bitset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/vector"
)

// The intra-query parallelism sweep behind BENCH_PR10.json: the same
// bounded query at worker counts 1, 2, 4 and 8 × page sizes 10 and 100 ×
// a small and a large context. Worker counts are forced (negative
// TopKWorkers) so the sweep measures the range-partitioned machinery
// itself on any host — the adaptive arm measures what production configs
// pay when the cost model routes a query.
var (
	topkParBenchOnce sync.Once
	topkParBenchIx   *Index
	topkParBenchSet  bitset.Set
	topkParBenchQV   vector.Sparse
)

// topkParBenchIndex builds the large-context fixture: an 8000-paper corpus
// (4× the PR 5/PR 9 bench corpus) restricted to a 4000-doc context bitset,
// approaching the per-query work that context-sensitive rankers over wide
// citation neighborhoods generate.
func topkParBenchIndex(b testing.TB) (*Index, bitset.Set, vector.Sparse) {
	b.Helper()
	topkParBenchOnce.Do(func() {
		o, err := ontology.Generate(ontology.GenConfig{Seed: 7, NumTerms: 120, MaxDepth: 7})
		if err != nil {
			b.Fatal(err)
		}
		c, err := corpus.Generate(o, corpus.DefaultGenConfig(8000))
		if err != nil {
			b.Fatal(err)
		}
		topkParBenchIx = Build(corpus.NewAnalyzer(c))
		for d := 0; d < c.Len(); d += 2 {
			topkParBenchSet.Add(d)
		}
		topkParBenchQV = topkParBenchIx.Analyzer().QueryVector(
			"regulation of rna transcription factor binding activity")
	})
	return topkParBenchIx, topkParBenchSet, topkParBenchQV
}

func benchmarkTopKParallel(b *testing.B, ix *Index, set bitset.Set, qv vector.Sparse, limit, workers int) {
	opts := Options{Limit: limit, WithinSet: set, TopKWorkers: workers}
	ctx := context.Background()
	dst := make([]Hit, 0, limit)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = ix.SearchVectorContextAppend(ctx, qv, opts, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		if len(dst) == 0 {
			b.Fatal("no hits")
		}
	}
}

func BenchmarkTopKParallel(b *testing.B) {
	type fixture struct {
		name string
		get  func(testing.TB) (*Index, bitset.Set, vector.Sparse)
	}
	fixtures := []fixture{
		{"small", topkBenchIndex},    // 2000 papers, 1000-doc context
		{"large", topkParBenchIndex}, // 8000 papers, 4000-doc context
	}
	for _, f := range fixtures {
		for _, limit := range []int{10, 100} {
			for _, w := range []int{1, 2, 4, 8} {
				ix, set, qv := f.get(b)
				b.Run(fmt.Sprintf("%s/top%d/w%d", f.name, limit, w), func(b *testing.B) {
					benchmarkTopKParallel(b, ix, set, qv, limit, -w)
				})
			}
		}
	}
}

// BenchmarkTopKParallelAdaptive measures the production knob: a worker
// budget of 4 routed through the cost model, which admits the query only
// when posting mass and GOMAXPROCS warrant — on a single-core host or a
// cheap query this is the price of asking (one mass sum, then the
// unchanged serial path).
func BenchmarkTopKParallelAdaptive(b *testing.B) {
	for _, f := range []struct {
		name string
		get  func(testing.TB) (*Index, bitset.Set, vector.Sparse)
	}{
		{"small", topkBenchIndex},
		{"large", topkParBenchIndex},
	} {
		ix, set, qv := f.get(b)
		b.Run(f.name+"/top10/budget4", func(b *testing.B) {
			benchmarkTopKParallel(b, ix, set, qv, 10, 4)
		})
	}
}
