//go:build race

package index

const raceEnabled = true
