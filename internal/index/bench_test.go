package index

import (
	"testing"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

func benchIndex(b *testing.B) *Index {
	b.Helper()
	o, err := ontology.Generate(ontology.GenConfig{Seed: 3, NumTerms: 100, MaxDepth: 7})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(400))
	if err != nil {
		b.Fatal(err)
	}
	return Build(corpus.NewAnalyzer(c))
}

func BenchmarkBuild(b *testing.B) {
	o, _ := ontology.Generate(ontology.GenConfig{Seed: 3, NumTerms: 60, MaxDepth: 6})
	c, _ := corpus.Generate(o, corpus.DefaultGenConfig(200))
	a := corpus.NewAnalyzer(c)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Build(a)
	}
}

// benchIndexBuild measures the sharded CSR build on a warmed analyzer (so
// TF-IDF reads are lock-free and the index construction itself dominates).
func benchIndexBuild(b *testing.B, workers int) {
	o, _ := ontology.Generate(ontology.GenConfig{Seed: 3, NumTerms: 100, MaxDepth: 7})
	c, _ := corpus.Generate(o, corpus.DefaultGenConfig(400))
	a := corpus.NewAnalyzer(c)
	a.Warm(0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = BuildWorkers(a, workers)
	}
}

func BenchmarkIndexBuildWorkers1(b *testing.B) { benchIndexBuild(b, 1) }
func BenchmarkIndexBuildWorkers8(b *testing.B) { benchIndexBuild(b, 8) }

// BenchmarkIndexSearchVector measures the raw accumulator hot path of
// SearchVector (query vector pre-built, no tokenisation) at the
// experiments.BenchScale() corpus size of 400 papers.
func BenchmarkIndexSearchVector(b *testing.B) {
	ix := benchIndex(b)
	qv := ix.Analyzer().QueryVector("regulation of rna transcription factor binding")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(ix.SearchVector(qv, Options{})) == 0 {
			b.Fatal("no hits")
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	ix := benchIndex(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ix.Search("regulation of rna transcription factor binding", Options{Limit: 20})
	}
}

func BenchmarkSearchQueryBoolean(b *testing.B) {
	ix := benchIndex(b)
	q, err := ix.ParseQuery(`(regulation OR control) AND transcription AND NOT metallurgy`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ix.SearchQuery(q, Options{Limit: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnippet(b *testing.B) {
	ix := benchIndex(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ix.Snippet(corpus.PaperID(i%400), "regulation transcription binding", SnippetOptions{})
	}
}
