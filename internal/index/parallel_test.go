package index

import (
	"reflect"
	"testing"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// TestParallelBuildMatchesSequential is the golden equivalence test for the
// sharded index build: the CSR layout — term interning, offsets, packed
// doc/weight columns and norms — must be byte-identical at every worker
// count.
func TestParallelBuildMatchesSequential(t *testing.T) {
	o, err := ontology.Generate(ontology.GenConfig{Seed: 3, NumTerms: 60, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(150))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	seq := BuildWorkers(a, 1)
	for _, workers := range []int{2, 3, 8} {
		par := BuildWorkers(a, workers)
		if !reflect.DeepEqual(seq.termIDs, par.termIDs) {
			t.Fatalf("workers=%d: term interning differs", workers)
		}
		if !reflect.DeepEqual(seq.offsets, par.offsets) {
			t.Fatalf("workers=%d: CSR offsets differ", workers)
		}
		if !reflect.DeepEqual(seq.docs, par.docs) {
			t.Fatalf("workers=%d: packed doc column differs", workers)
		}
		if !reflect.DeepEqual(seq.weights, par.weights) {
			t.Fatalf("workers=%d: packed weight column differs", workers)
		}
		if !reflect.DeepEqual(seq.norms, par.norms) {
			t.Fatalf("workers=%d: norms differ", workers)
		}
	}
}

// TestParallelBuildSearchEquivalence double-checks the user-visible
// behaviour: identical hits for a query at different build worker counts.
func TestParallelBuildSearchEquivalence(t *testing.T) {
	o, err := ontology.Generate(ontology.GenConfig{Seed: 3, NumTerms: 60, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(150))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	seq := BuildWorkers(a, 1)
	par := BuildWorkers(a, 4)
	for _, q := range []string{
		"regulation of rna transcription factor binding",
		"dna repair damage response",
		"protein kinase signaling",
	} {
		hs, hp := seq.Search(q, Options{}), par.Search(q, Options{})
		if !reflect.DeepEqual(hs, hp) {
			t.Fatalf("query %q: hits differ between worker counts", q)
		}
	}
}
