package index

import (
	"reflect"
	"testing"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// TestParallelBuildMatchesSequential is the golden equivalence test for the
// sharded index build: the CSR layout — term interning, offsets, packed
// doc/weight columns and norms — must be byte-identical at every worker
// count.
func TestParallelBuildMatchesSequential(t *testing.T) {
	o, err := ontology.Generate(ontology.GenConfig{Seed: 3, NumTerms: 60, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(150))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	seq := BuildWorkers(a, 1)
	for _, workers := range []int{2, 3, 8} {
		par := BuildWorkers(a, workers)
		if !reflect.DeepEqual(seq.termIDs, par.termIDs) {
			t.Fatalf("workers=%d: term interning differs", workers)
		}
		if !reflect.DeepEqual(seq.offsets, par.offsets) {
			t.Fatalf("workers=%d: CSR offsets differ", workers)
		}
		if !reflect.DeepEqual(seq.docs, par.docs) {
			t.Fatalf("workers=%d: packed doc column differs", workers)
		}
		if !reflect.DeepEqual(seq.weights, par.weights) {
			t.Fatalf("workers=%d: packed weight column differs", workers)
		}
		if !reflect.DeepEqual(seq.norms, par.norms) {
			t.Fatalf("workers=%d: norms differ", workers)
		}
	}
}

// TestParallelBuildSearchEquivalence double-checks the user-visible
// behaviour: identical hits for a query at different build worker counts.
func TestParallelBuildSearchEquivalence(t *testing.T) {
	o, err := ontology.Generate(ontology.GenConfig{Seed: 3, NumTerms: 60, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(150))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	seq := BuildWorkers(a, 1)
	par := BuildWorkers(a, 4)
	for _, q := range []string{
		"regulation of rna transcription factor binding",
		"dna repair damage response",
		"protein kinase signaling",
	} {
		hs, hp := seq.Search(q, Options{}), par.Search(q, Options{})
		if !reflect.DeepEqual(hs, hp) {
			t.Fatalf("query %q: hits differ between worker counts", q)
		}
	}
}

// TestBuildRangeWorkersPartition pins the sharding contract: building the
// index over a paper-ID range keeps the corpus-global term weighting and
// norms (shards share the analyzer), restricts each posting list to exactly
// the range's papers, and the union of a disjoint cover's postings
// reassembles the full index.
func TestBuildRangeWorkersPartition(t *testing.T) {
	o, err := ontology.Generate(ontology.GenConfig{Seed: 3, NumTerms: 60, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(150))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	full := BuildWorkers(a, 4)

	// Full-range build is the whole index.
	whole := BuildRangeWorkers(a, 0, c.Len(), 2)
	if !reflect.DeepEqual(full.termIDs, whole.termIDs) || !reflect.DeepEqual(full.docs, whole.docs) ||
		!reflect.DeepEqual(full.weights, whole.weights) || !reflect.DeepEqual(full.norms, whole.norms) {
		t.Fatal("BuildRangeWorkers over the full range differs from BuildWorkers")
	}

	for _, cuts := range [][]int{{0, 150}, {0, 50, 150}, {0, 40, 90, 150}, {0, 1, 75, 149, 150}} {
		var parts []*Index
		for i := 0; i+1 < len(cuts); i++ {
			parts = append(parts, BuildRangeWorkers(a, cuts[i], cuts[i+1], 2))
		}
		for term := range full.termIDs {
			wantDocs, wantWts := full.termPostings(term)
			var gotDocs []corpus.PaperID
			var gotWts []float64
			for _, p := range parts {
				d, w := p.termPostings(term)
				gotDocs = append(gotDocs, d...)
				gotWts = append(gotWts, w...)
			}
			if len(gotDocs) != len(wantDocs) {
				t.Fatalf("cuts %v term %q: union has %d postings, full %d", cuts, term, len(gotDocs), len(wantDocs))
			}
			for k := range wantDocs {
				if gotDocs[k] != wantDocs[k] || gotWts[k] != wantWts[k] {
					t.Fatalf("cuts %v term %q posting %d: got (%d,%v), want (%d,%v)",
						cuts, term, k, gotDocs[k], gotWts[k], wantDocs[k], wantWts[k])
				}
			}
		}
		// Norm slices stay sized to the full corpus (global paper IDs index
		// them directly), hold the corpus-global norm for every in-range
		// paper, and zero elsewhere (out-of-range papers never score).
		for pi, p := range parts {
			if len(p.norms) != len(full.norms) {
				t.Fatalf("cuts %v part %d: norms sized %d, want %d", cuts, pi, len(p.norms), len(full.norms))
			}
			for id, norm := range p.norms {
				if id >= cuts[pi] && id < cuts[pi+1] {
					if norm != full.norms[id] {
						t.Fatalf("cuts %v part %d paper %d: norm %v, want %v", cuts, pi, id, norm, full.norms[id])
					}
				} else if norm != 0 {
					t.Fatalf("cuts %v part %d paper %d: out-of-range norm %v", cuts, pi, id, norm)
				}
			}
		}
	}
}
