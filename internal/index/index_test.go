package index

import (
	"context"
	"testing"

	"ctxsearch/internal/bitset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/vector"
)

func buildTestIndex(t *testing.T) (*Index, *corpus.Corpus) {
	t.Helper()
	papers := []*corpus.Paper{
		{ID: 0, Title: "rna polymerase transcription", Abstract: "transcription of rna by polymerase enzymes", Body: "the rna polymerase complex transcription machinery", Authors: []string{"a b"}},
		{ID: 1, Title: "dna repair mechanisms", Abstract: "repair of damaged dna strands", Body: "dna repair pathways respond to damage", Authors: []string{"c d"}},
		{ID: 2, Title: "rna splicing factors", Abstract: "splicing of rna transcripts", Body: "spliceosome assembly on rna", Authors: []string{"e f"}},
		{ID: 3, Title: "unrelated metallurgy", Abstract: "steel alloys and corrosion", Body: "corrosion resistance of alloys", Authors: []string{"g h"}},
	}
	c, err := corpus.NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	return Build(corpus.NewAnalyzer(c)), c
}

func TestSearchRanking(t *testing.T) {
	ix, _ := buildTestIndex(t)
	hits := ix.Search("rna polymerase transcription", Options{})
	if len(hits) < 2 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Doc != 0 {
		t.Fatalf("paper 0 must rank first: %v", hits)
	}
	// Scores must be descending and within [0,1].
	for i := range hits {
		if hits[i].Score < 0 || hits[i].Score > 1.0000001 {
			t.Fatalf("score out of range: %v", hits[i])
		}
		if i > 0 && hits[i].Score > hits[i-1].Score {
			t.Fatalf("scores not sorted: %v", hits)
		}
	}
	// The metallurgy paper must not match an RNA query.
	for _, h := range hits {
		if h.Doc == 3 {
			t.Fatalf("irrelevant paper matched: %v", hits)
		}
	}
}

func TestSearchThresholdAndLimit(t *testing.T) {
	ix, _ := buildTestIndex(t)
	all := ix.Search("rna", Options{})
	if len(all) < 2 {
		t.Fatalf("rna should match ≥ 2 papers: %v", all)
	}
	limited := ix.Search("rna", Options{Limit: 1})
	if len(limited) != 1 || limited[0].Doc != all[0].Doc {
		t.Fatalf("limit broken: %v", limited)
	}
	strict := ix.Search("rna", Options{Threshold: all[0].Score + 0.01})
	if len(strict) != 0 {
		t.Fatalf("threshold above max must return nothing: %v", strict)
	}
}

func TestSearchWithin(t *testing.T) {
	ix, _ := buildTestIndex(t)
	within := map[corpus.PaperID]bool{2: true}
	hits := ix.Search("rna", Options{Within: within})
	if len(hits) != 1 || hits[0].Doc != 2 {
		t.Fatalf("within-restricted search = %v", hits)
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	ix, _ := buildTestIndex(t)
	if hits := ix.Search("", Options{}); hits != nil {
		t.Fatalf("empty query = %v", hits)
	}
	if hits := ix.Search("the of and", Options{}); hits != nil {
		t.Fatalf("stopword-only query = %v", hits)
	}
	if hits := ix.SearchVector(vector.New(), Options{}); hits != nil {
		t.Fatalf("empty vector = %v", hits)
	}
}

func TestMatchScore(t *testing.T) {
	ix, _ := buildTestIndex(t)
	qv := ix.Analyzer().QueryVector("rna polymerase")
	s0 := ix.MatchScore(qv, 0)
	s3 := ix.MatchScore(qv, 3)
	if s0 <= s3 {
		t.Fatalf("match scores wrong: s0=%v s3=%v", s0, s3)
	}
	if got := ix.MatchScore(qv, corpus.PaperID(99)); got != 0 {
		t.Fatalf("out-of-range doc = %v", got)
	}
	if got := ix.MatchScore(vector.New(), 0); got != 0 {
		t.Fatalf("empty query = %v", got)
	}
}

func TestIndexOnGeneratedCorpus(t *testing.T) {
	o, err := ontology.Generate(ontology.GenConfig{Seed: 3, NumTerms: 80, MaxDepth: 7})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(150))
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(corpus.NewAnalyzer(c))
	if ix.Terms() == 0 {
		t.Fatal("no terms indexed")
	}
	// Searching for a term name should surface papers with that topic near
	// the top more often than chance (term names overlap heavily between
	// related terms, so exact-topic-at-rank-1 is not guaranteed; any of the
	// top five sufficing is the meaningful property).
	checked, good := 0, 0
	for _, term := range c.EvidenceTerms() {
		if checked >= 10 {
			break
		}
		name := o.Term(term).Name
		hits := ix.Search(name, Options{Limit: 5})
		if len(hits) == 0 {
			continue
		}
		checked++
	hitLoop:
		for _, h := range hits {
			for _, tp := range c.Paper(h.Doc).Topics {
				if tp == term {
					good++
					break hitLoop
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no terms could be checked")
	}
	if good*2 < checked {
		t.Fatalf("top hit matched the queried topic for only %d/%d terms", good, checked)
	}
}

// TestWithinBitsetMatchesMap asserts the bitset restriction (WithinSet)
// returns exactly the hits of the historical map restriction (Within) —
// the equivalence the context engine's single-pass search relies on.
func TestWithinBitsetMatchesMap(t *testing.T) {
	ix, _ := buildTestIndex(t)
	within := map[corpus.PaperID]bool{0: true, 2: true}
	var bs bitset.Set
	for id := range within {
		bs.Add(int(id))
	}
	for _, q := range []string{"rna polymerase transcription", "dna repair", "rna splicing", "corrosion"} {
		mapHits := ix.Search(q, Options{Within: within})
		bsHits := ix.Search(q, Options{WithinSet: bs})
		if len(mapHits) != len(bsHits) {
			t.Fatalf("query %q: map %v vs bitset %v", q, mapHits, bsHits)
		}
		for i := range mapHits {
			if mapHits[i] != bsHits[i] {
				t.Fatalf("query %q hit %d: map %v vs bitset %v", q, i, mapHits[i], bsHits[i])
			}
		}
		for _, h := range bsHits {
			if !within[h.Doc] {
				t.Fatalf("query %q: hit %v outside restriction", q, h)
			}
		}
	}
}

// TestSearchVectorPoolReuse runs many searches to cycle the pooled dense
// accumulator and checks repeated identical queries stay bit-identical
// (the pool must hand back fully reset scratchpads).
func TestSearchVectorPoolReuse(t *testing.T) {
	ix, _ := buildTestIndex(t)
	qv := ix.Analyzer().QueryVector("rna transcription repair")
	first := ix.SearchVector(qv, Options{})
	if len(first) == 0 {
		t.Fatal("no hits")
	}
	for rep := 0; rep < 50; rep++ {
		got := ix.SearchVector(qv, Options{})
		if len(got) != len(first) {
			t.Fatalf("rep %d: %d hits, want %d", rep, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("rep %d hit %d: %v != %v", rep, i, got[i], first[i])
			}
		}
	}
}

// TestSearchContextCancellation: cancelled contexts surface promptly from
// both the vector and the boolean evaluation paths, and a background
// context reproduces the plain-path results exactly.
func TestSearchContextCancellation(t *testing.T) {
	ix, _ := buildTestIndex(t)
	qv := ix.Analyzer().QueryVector("rna polymerase transcription")
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if hits, err := ix.SearchVectorContext(cancelled, qv, Options{}); err != context.Canceled || hits != nil {
		t.Fatalf("SearchVectorContext = (%v, %v), want (nil, context.Canceled)", hits, err)
	}
	q, err := ix.ParseQuery("rna AND polymerase")
	if err != nil {
		t.Fatal(err)
	}
	if hits, err := ix.SearchQueryContext(cancelled, q, Options{}); err != context.Canceled || hits != nil {
		t.Fatalf("SearchQueryContext = (%v, %v), want (nil, context.Canceled)", hits, err)
	}
	// Uncancelled: identical to the plain wrappers.
	got, err := ix.SearchVectorContext(context.Background(), qv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := ix.SearchVector(qv, Options{})
	if len(got) != len(want) {
		t.Fatalf("SearchVectorContext returned %d hits, SearchVector %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}
