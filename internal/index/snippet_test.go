package index

import (
	"strings"
	"testing"
)

func TestSnippetHighlightsMatches(t *testing.T) {
	ix, _ := buildTestIndex(t)
	// Paper 0's abstract: "transcription of rna by polymerase enzymes".
	s := ix.Snippet(0, "rna polymerase", SnippetOptions{})
	if !strings.Contains(s, "[rna]") || !strings.Contains(s, "[polymerase]") {
		t.Fatalf("snippet missing highlights: %q", s)
	}
}

func TestSnippetStemAware(t *testing.T) {
	ix, _ := buildTestIndex(t)
	// Query "enzyme" must highlight "enzymes" in paper 0's abstract.
	s := ix.Snippet(0, "enzyme", SnippetOptions{})
	if !strings.Contains(s, "[enzymes]") {
		t.Fatalf("stem-aware highlight failed: %q", s)
	}
}

func TestSnippetFallsBackToBody(t *testing.T) {
	ix, _ := buildTestIndex(t)
	// "spliceosome" appears only in paper 2's body.
	s := ix.Snippet(2, "spliceosome", SnippetOptions{})
	if !strings.Contains(s, "[spliceosome]") {
		t.Fatalf("body fallback failed: %q", s)
	}
}

func TestSnippetNoMatchFallsBackToAbstractHead(t *testing.T) {
	ix, _ := buildTestIndex(t)
	s := ix.Snippet(3, "quantum chromodynamics", SnippetOptions{Window: 3})
	if s == "" || strings.Contains(s, "[") {
		t.Fatalf("fallback snippet wrong: %q", s)
	}
}

func TestSnippetWindowTruncation(t *testing.T) {
	ix, _ := buildTestIndex(t)
	s := ix.Snippet(0, "polymerase", SnippetOptions{Window: 3})
	words := strings.Fields(strings.Trim(s, "… "))
	// window words plus possible ellipses
	if len(words) > 5 {
		t.Fatalf("window not respected: %q", s)
	}
}

func TestSnippetCustomMarkers(t *testing.T) {
	ix, _ := buildTestIndex(t)
	s := ix.Snippet(0, "rna", SnippetOptions{Pre: "<b>", Post: "</b>"})
	if !strings.Contains(s, "<b>rna</b>") {
		t.Fatalf("custom markers missing: %q", s)
	}
}

func TestSnippetUnknownDoc(t *testing.T) {
	ix, _ := buildTestIndex(t)
	if s := ix.Snippet(99, "rna", SnippetOptions{}); s != "" {
		t.Fatalf("unknown doc snippet = %q", s)
	}
}

func TestNormalizeWord(t *testing.T) {
	cases := map[string]string{
		"(RNA)":   "rna",
		"end.":    "end",
		"--":      "",
		"a,b":     "a,b", // interior punctuation is kept; only edges strip
		"'quote'": "quote",
	}
	for in, want := range cases {
		if got := normalizeWord(in); got != want {
			t.Errorf("normalizeWord(%q) = %q, want %q", in, got, want)
		}
	}
}
