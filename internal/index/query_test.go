package index

import (
	"testing"

	"ctxsearch/internal/corpus"
)

type intDoc = corpus.PaperID

func TestParseQueryForms(t *testing.T) {
	ix, _ := buildTestIndex(t)
	cases := []string{
		"rna",
		"rna polymerase",
		"rna AND polymerase",
		"rna OR dna",
		"rna AND NOT metallurgy",
		`"rna polymerase" OR "dna repair"`,
		"(rna OR dna) AND repair",
		"NOT (dna OR steel) rna",
	}
	for _, q := range cases {
		parsed, err := ix.ParseQuery(q)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", q, err)
		}
		if parsed.String() == "" {
			t.Fatalf("empty rendering for %q", q)
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	ix, _ := buildTestIndex(t)
	cases := []string{
		"",
		`"unterminated`,
		"(rna",
		"rna )",
		"AND",
		"the of", // all stopwords → nothing left
		"NOT",
		"NOT the", // NOT over a stopword
	}
	for _, q := range cases {
		if _, err := ix.ParseQuery(q); err == nil {
			t.Errorf("ParseQuery(%q) should fail", q)
		}
	}
}

func TestSearchQueryAnd(t *testing.T) {
	ix, _ := buildTestIndex(t)
	q, err := ix.ParseQuery("rna AND splicing")
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ix.SearchQuery(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Only paper 2 mentions both rna and splicing.
	if len(hits) != 1 || hits[0].Doc != 2 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestSearchQueryOr(t *testing.T) {
	ix, _ := buildTestIndex(t)
	q, err := ix.ParseQuery("splicing OR metallurgy")
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ix.SearchQuery(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, h := range hits {
		got[int(h.Doc)] = true
	}
	if !got[2] || !got[3] || len(got) != 2 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestSearchQueryNot(t *testing.T) {
	ix, _ := buildTestIndex(t)
	q, err := ix.ParseQuery("rna AND NOT splicing")
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ix.SearchQuery(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Doc == 2 {
			t.Fatalf("NOT failed: %v", hits)
		}
	}
	if len(hits) == 0 {
		t.Fatal("no hits at all")
	}
}

func TestSearchQueryPhrase(t *testing.T) {
	ix, _ := buildTestIndex(t)
	// "rna polymerase" appears contiguously in paper 0 only; paper 2 has
	// "rna splicing" but not the phrase.
	q, err := ix.ParseQuery(`"rna polymerase"`)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ix.SearchQuery(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Doc != 0 {
		t.Fatalf("phrase hits = %v", hits)
	}
	// The reversed phrase matches nothing.
	q, err = ix.ParseQuery(`"polymerase transcription rna"`)
	if err != nil {
		t.Fatal(err)
	}
	hits, err = ix.SearchQuery(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("reversed phrase matched: %v", hits)
	}
}

func TestSearchQueryStemmedMatching(t *testing.T) {
	ix, _ := buildTestIndex(t)
	// "mechanism" should match "mechanisms" via stemming (paper 1 title).
	q, err := ix.ParseQuery("mechanism")
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ix.SearchQuery(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Doc != 1 {
		t.Fatalf("stemmed hits = %v", hits)
	}
}

func TestSearchQueryPureNegativeRejected(t *testing.T) {
	ix, _ := buildTestIndex(t)
	q, err := ix.ParseQuery("NOT rna")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.SearchQuery(q, Options{}); err == nil {
		t.Fatal("pure-negative query must be rejected")
	}
}

func TestSearchQueryWithinAndLimit(t *testing.T) {
	ix, _ := buildTestIndex(t)
	q, err := ix.ParseQuery("rna")
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ix.SearchQuery(q, Options{Within: map[intDoc]bool{0: true}, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Doc != 0 {
		t.Fatalf("within hits = %v", hits)
	}
	hits, err = ix.SearchQuery(q, Options{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("limit hits = %v", hits)
	}
}

func TestFieldScopedQuery(t *testing.T) {
	ix, _ := buildTestIndex(t)
	// "spliceosome" appears only in paper 2's body: a title-scoped query
	// must not match, a body-scoped one must.
	q, err := ix.ParseQuery("title:spliceosome")
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ix.SearchQuery(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("title-scoped query matched: %v", hits)
	}
	q, err = ix.ParseQuery("body:spliceosome")
	if err != nil {
		t.Fatal(err)
	}
	hits, err = ix.SearchQuery(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Doc != 2 {
		t.Fatalf("body-scoped query = %v", hits)
	}
	// Field queries compose with boolean structure.
	q, err = ix.ParseQuery("title:rna AND NOT body:spliceosome")
	if err != nil {
		t.Fatal(err)
	}
	hits, err = ix.SearchQuery(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Doc == 2 {
			t.Fatalf("NOT body: leaked: %v", hits)
		}
	}
	if len(hits) == 0 {
		t.Fatal("no hits for composed field query")
	}
	// Unknown field prefixes degrade to plain terms, not errors.
	if _, err := ix.ParseQuery("go:0000123"); err != nil {
		t.Fatalf("non-field colon term failed: %v", err)
	}
	// Stopword-only field terms are skipped; alone they fail the query.
	if _, err := ix.ParseQuery("title:the"); err == nil {
		t.Fatal("lone stopword field term must fail")
	}
	if _, err := ix.ParseQuery("title:the rna"); err != nil {
		t.Fatalf("stopword field term beside a real term must be skipped: %v", err)
	}
	// String rendering.
	q, _ = ix.ParseQuery("title:polymerase")
	if q.String() != "title:polymeras" {
		t.Fatalf("field rendering = %q", q.String())
	}
}

func TestParseQuerySkipsInteriorStopwords(t *testing.T) {
	ix, _ := buildTestIndex(t)
	// "of" normalises to nothing and must be silently dropped.
	q, err := ix.ParseQuery("repair of dna")
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ix.SearchQuery(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Doc != 1 {
		t.Fatalf("hits = %v", hits)
	}
}
