//go:build !race

package index

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
