package index

import (
	"reflect"
	"testing"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

func partsFixture(t *testing.T) (*corpus.Analyzer, *Index) {
	t.Helper()
	o, err := ontology.Generate(ontology.GenConfig{Seed: 5, NumTerms: 60, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(180))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	return a, Build(a)
}

// TestPartsRoundTrip: extracting the CSR arrays and rebinding them must
// reproduce the index — identical structure (Parts of both are deep-equal)
// and identical search results.
func TestPartsRoundTrip(t *testing.T) {
	a, ix := partsFixture(t)
	p := ix.Parts()
	got, err := FromParts(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got.Parts()) {
		t.Fatal("parts differ after rebind")
	}
	for _, q := range []string{"regulation", "cell response", "protein binding activity"} {
		want := ix.Search(q, Options{Limit: 25})
		have := got.Search(q, Options{Limit: 25})
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("query %q: results differ after parts round trip", q)
		}
	}
}

// TestFromPartsValidation: structurally broken parts are rejected, not
// bound (the O(terms) checks — per-element content is the writer's
// contract guarded by the store's CRCs).
func TestFromPartsValidation(t *testing.T) {
	a, ix := partsFixture(t)
	cases := map[string]func(*Parts){
		"offsets-length": func(p *Parts) { p.Offsets = p.Offsets[:len(p.Offsets)-1] },
		"offsets-span":   func(p *Parts) { p.Offsets[len(p.Offsets)-1]++ },
		"offsets-order": func(p *Parts) {
			p.Offsets[1], p.Offsets[2] = p.Offsets[2]+1, p.Offsets[1]
		},
		"terms-order":  func(p *Parts) { p.Terms[0], p.Terms[1] = p.Terms[1], p.Terms[0] },
		"weights-size": func(p *Parts) { p.Weights = p.Weights[:len(p.Weights)-1] },
		"norms-size":   func(p *Parts) { p.Norms = p.Norms[:len(p.Norms)-1] },
	}
	for name, breakIt := range cases {
		t.Run(name, func(t *testing.T) {
			p := ix.Parts()
			// Deep-copy the slices the case mutates so cases stay independent.
			p.Terms = append([]string(nil), p.Terms...)
			p.Offsets = append([]int32(nil), p.Offsets...)
			p.Weights = append([]float64(nil), p.Weights...)
			p.Norms = append([]float64(nil), p.Norms...)
			breakIt(p)
			if _, err := FromParts(a, p); err == nil {
				t.Fatal("broken parts bound without error")
			}
		})
	}
}

// TestSliceRangeMatchesRangeBuild: an engine-visible equivalence between
// the two ways of making a shard index — re-analysing the range
// (BuildRangeWorkers) versus binary-search slicing the global postings
// (SliceRange). The term dictionaries differ by design (SliceRange keeps
// the global dictionary with empty runs), so the check is behavioral:
// identical results for every query, at several range splits.
func TestSliceRangeMatchesRangeBuild(t *testing.T) {
	a, ix := partsFixture(t)
	n := a.Corpus().Len()
	parts := ix.Parts()
	ranges := [][2]int{{0, n}, {0, n / 2}, {n / 2, n}, {n / 3, 2 * n / 3}, {7, 8}, {0, 1}}
	queries := []string{"regulation", "cell response", "dna binding", "synthesis"}
	for _, r := range ranges {
		lo, hi := r[0], r[1]
		rebuilt := BuildRangeWorkers(a, lo, hi, 1)
		sliced, err := FromParts(a, parts.SliceRange(lo, hi))
		if err != nil {
			t.Fatalf("range [%d,%d): %v", lo, hi, err)
		}
		for _, q := range queries {
			want := rebuilt.Search(q, Options{Limit: 50})
			have := sliced.Search(q, Options{Limit: 50})
			if len(want) == 0 && len(have) == 0 {
				continue
			}
			if !reflect.DeepEqual(want, have) {
				t.Fatalf("range [%d,%d) query %q: sliced index diverges from rebuilt", lo, hi, q)
			}
		}
	}
}
