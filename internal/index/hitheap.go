package index

// hitHeap is topk.Heap[Hit] specialized to the evaluator's concrete
// element type. The structural contract is identical — a bounded min-heap
// under worseHit retaining the k best hits offered — but the comparator is
// a direct (inlinable) call instead of the generic heap's indirect
// function-value invocation, which profiled at ~10% of top-10 query time:
// Offer runs once per surviving candidate, and its comparisons sit on the
// innermost evaluation path.
type hitHeap struct {
	items []Hit
	k     int
}

// Reset empties the heap and sets the retention capacity, reusing the
// backing storage when it suffices. k must be positive.
func (h *hitHeap) Reset(k int) {
	if cap(h.items) < k {
		h.items = make([]Hit, 0, k)
	} else {
		h.items = h.items[:0]
	}
	h.k = k
}

// Full reports whether the heap holds k items — only then is Min a
// meaningful pruning threshold.
func (h *hitHeap) Full() bool { return len(h.items) == h.k }

// Min returns the worst retained hit. Only valid when the heap is
// non-empty.
func (h *hitHeap) Min() Hit { return h.items[0] }

// Items returns the retained hits in unspecified (heap) order, aliasing
// the heap's storage.
func (h *hitHeap) Items() []Hit { return h.items }

// Offer inserts x if it belongs in the k best seen so far, evicting the
// current worst when full. Returns whether x was retained.
func (h *hitHeap) Offer(x Hit) bool {
	if len(h.items) < h.k {
		h.items = append(h.items, x)
		for i := len(h.items) - 1; i > 0; {
			parent := (i - 1) / 2
			if !worseHit(h.items[i], h.items[parent]) {
				break
			}
			h.items[i], h.items[parent] = h.items[parent], h.items[i]
			i = parent
		}
		return true
	}
	// Full: x must strictly beat the current worst to displace it.
	if !worseHit(h.items[0], x) {
		return false
	}
	h.items[0] = x
	n := len(h.items)
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && worseHit(h.items[l], h.items[worst]) {
			worst = l
		}
		if r < n && worseHit(h.items[r], h.items[worst]) {
			worst = r
		}
		if worst == i {
			return true
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}
