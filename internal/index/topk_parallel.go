package index

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ctxsearch/internal/corpus"
)

// This file adds the intra-query parallel mode of the block-max top-k
// evaluator: the candidate document space is partitioned into R contiguous
// ranges of near-equal posting mass, each range runs the ordinary
// evalRange walk on its own goroutine with its own pooled scratch, and the
// partial pages merge through the same bounded heap the walk itself uses.
// Because document ranges are disjoint and each range's page is exact for
// the range, the merged page is byte-identical to the serial evaluator's
// at every R — the same argument that makes scatter-gather over shards
// exact (see shard.MergePages), executed inside one index.
//
// The ranges cooperate through a shared watermark: whenever a worker's
// heap fills, it publishes its k-th best score, and every range prunes
// candidates whose score bound falls strictly below the highest published
// value. The watermark only tightens pruning — it never decides the page.
// See cannotQualify for the strictness argument and DESIGN.md
// ("Intra-query parallel top-k") for the full exactness proof.

// topkMassPerWorker is the cost model's admission unit: a parallel query
// gets at most one range worker per this many postings of resolved query
// mass, so small queries — which finish in microseconds — never pay
// goroutine and merge overhead. A variable, not a constant, so tests can
// force the parallel path on tiny fixtures.
var topkMassPerWorker = 4096

// maxTopKWorkers caps the range count against absurd requests; far above
// any plausible core count served by one process.
const maxTopKWorkers = 64

// SetDefaultTopKWorkers sets the worker budget used by bounded queries
// whose Options.TopKWorkers is zero. Call it before serving queries (it is
// a plain write, not synchronized against in-flight searches). Zero or one
// keeps the evaluator serial.
func (ix *Index) SetDefaultTopKWorkers(n int) { ix.defaultTopKWorkers = n }

// DefaultTopKWorkers returns the index-wide worker budget.
func (ix *Index) DefaultTopKWorkers() int { return ix.defaultTopKWorkers }

// topkWorkerPlan decides how many range workers a query runs. A request of
// n > 1 is a budget, clamped by the cost model (one worker per
// topkMassPerWorker postings of resolved query mass) and by GOMAXPROCS —
// on a single-core host extra goroutines only add scheduling overhead. A
// negative request forces exactly -n ranges with no clamping, which the
// equality batteries and benchmarks use to exercise every split shape
// regardless of host. Cost-model and GOMAXPROCS denials of a parallel
// request are counted as serial fallbacks.
func (ix *Index) topkWorkerPlan(opts *Options, qts []queryTerm) int {
	req := opts.TopKWorkers
	if req == 0 {
		req = ix.defaultTopKWorkers
	}
	if req < 0 {
		if w := -req; w > 1 {
			return min(w, maxTopKWorkers)
		}
		return 1
	}
	if req <= 1 {
		return 1
	}
	mass := 0
	for _, qt := range qts {
		mass += int(ix.offsets[qt.id+1] - ix.offsets[qt.id])
	}
	w := min(req, maxTopKWorkers, runtime.GOMAXPROCS(0), mass/topkMassPerWorker)
	if w < 2 {
		ix.statSerialFallback.Add(1)
		return 1
	}
	return w
}

// scoreWatermark is the shared adaptive threshold of a parallel query: the
// highest k-th-best cosine score any range worker has published, stored as
// float64 bits in one atomic word. Scores are non-negative, so raise's
// monotonic CAS loop needs no ABA care, and readers pay a single relaxed
// load per candidate.
type scoreWatermark struct {
	bits atomic.Uint64
}

func (w *scoreWatermark) load() float64 {
	return math.Float64frombits(w.bits.Load())
}

// raise lifts the watermark to s if s is higher; concurrent raises settle
// on the maximum.
func (w *scoreWatermark) raise(s float64) {
	nb := math.Float64bits(s)
	for {
		ob := w.bits.Load()
		if math.Float64frombits(ob) >= s {
			return
		}
		if w.bits.CompareAndSwap(ob, nb) {
			return
		}
	}
}

// topkSplit picks workers+1 ascending cut points over the document ID
// space so consecutive ranges hold near-equal resolved posting mass — the
// walk's work unit — rather than near-equal document counts, which skewed
// postings would unbalance. The cumulative mass below a document,
// f(d) = Σ_t |{postings of t with doc < d}|, is nondecreasing in d, so
// each interior cut binary-searches f for its quantile; each f evaluation
// is one lower-bound probe per term. The final cut is docSentinel so the
// last range skips its lim binary search in evalRange.
func (ix *Index) topkSplit(qts []queryTerm, workers int) []corpus.PaperID {
	n := len(ix.norms)
	cuts := make([]corpus.PaperID, workers+1)
	cuts[workers] = docSentinel
	total := 0
	for _, qt := range qts {
		total += int(ix.offsets[qt.id+1] - ix.offsets[qt.id])
	}
	for r := 1; r < workers; r++ {
		target := total * r / workers
		cuts[r] = corpus.PaperID(sort.Search(n, func(d int) bool {
			mass := 0
			for _, qt := range qts {
				docs := ix.docs[ix.offsets[qt.id]:ix.offsets[qt.id+1]]
				mass += searchPaperID(docs, corpus.PaperID(d))
			}
			return mass >= target
		}))
	}
	return cuts
}

// searchTopKParallel evaluates an already-resolved query (sc.qts/sc.keys
// filled, terms sorted) over `workers` disjoint document ranges and merges
// the partial pages into dst. Range 0 runs on the calling goroutine with
// the caller's scratch; the rest lease scratch from the index pool. The
// merged page is byte-identical to the serial evaluator's: each range's
// heap holds at least every global-page document of its range (watermark
// pruning only drops documents provably outside the global page), ranges
// are disjoint, and the bounded merge heap selects the k best of the union
// under the same (score desc, doc asc) total order the walk uses — the
// outcome is order-insensitive, so watermark timing cannot perturb it.
func (ix *Index) searchTopKParallel(ctx context.Context, sc *topkScratch, qn float64, opts Options, workers int, dst []Hit) ([]Hit, error) {
	qts, keys := sc.qts, sc.keys
	cuts := ix.topkSplit(qts, workers)
	var wm scoreWatermark
	type rangeResult struct {
		visited, skipped uint64
		err              error
	}
	scs := make([]*topkScratch, workers)
	res := make([]rangeResult, workers)
	scs[0] = sc
	for r := 1; r < workers; r++ {
		scs[r] = ix.getTopkScratch()
	}
	var wg sync.WaitGroup
	for r := 1; r < workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v, s, err := ix.evalRange(ctx, scs[r], qts, keys, qn, &opts, cuts[r], cuts[r+1], &wm)
			res[r] = rangeResult{v, s, err}
		}(r)
	}
	v0, s0, err0 := ix.evalRange(ctx, sc, qts, keys, qn, &opts, cuts[0], cuts[1], &wm)
	res[0] = rangeResult{v0, s0, err0}
	wg.Wait()

	var visited, skipped uint64
	var err error
	for r := range res {
		visited += res[r].visited
		skipped += res[r].skipped
		if err == nil && res[r].err != nil {
			err = res[r].err
		}
	}
	ix.statVisited.Add(visited)
	if skipped != 0 {
		ix.statSkipped.Add(skipped)
	}
	ix.statParallel.Add(1)
	ix.statParallelWorkers.Add(uint64(workers))
	if err != nil {
		for r := 1; r < workers; r++ {
			ix.topkPool.Put(scs[r])
		}
		return dst, err
	}
	// Merge under the engine's total order with the walk's own bounded
	// heap, borrowed from a pool scratch so the parallel path reuses the
	// same warmed storage.
	msc := ix.getTopkScratch()
	mh := &msc.heap
	mh.Reset(opts.Limit)
	for r := range scs {
		for _, h := range scs[r].heap.Items() {
			mh.Offer(h)
		}
	}
	start := len(dst)
	dst = append(dst, mh.Items()...)
	sortTopKPage(dst[start:])
	ix.topkPool.Put(msc)
	for r := 1; r < workers; r++ {
		ix.topkPool.Put(scs[r])
	}
	return dst, ctx.Err()
}
