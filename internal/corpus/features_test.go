package corpus

import (
	"testing"

	"ctxsearch/internal/vector"
)

func TestAnalyzerFeatures(t *testing.T) {
	c, _ := testCorpus(t, 120)
	a := NewAnalyzer(c)
	if a.DF().Docs() != c.Len() {
		t.Fatalf("DF docs = %d", a.DF().Docs())
	}
	for _, p := range c.Papers() {
		f := a.Features(p.ID)
		if f == nil {
			t.Fatalf("no features for %d", p.ID)
		}
		if len(f.Tokens[SecTitle]) == 0 || len(f.Tokens[SecBody]) == 0 {
			t.Fatalf("paper %d missing section tokens", p.ID)
		}
		if len(f.AllTF) == 0 {
			t.Fatalf("paper %d has empty AllTF", p.ID)
		}
		if len(f.Authors) == 0 {
			t.Fatalf("paper %d has empty author set", p.ID)
		}
	}
	if a.Features(PaperID(-1)) != nil || a.Features(PaperID(9999)) != nil {
		t.Fatal("out-of-range Features must be nil")
	}
}

func TestAnalyzerTFIDFCaching(t *testing.T) {
	c, _ := testCorpus(t, 50)
	a := NewAnalyzer(c)
	v1 := a.TFIDF(0, SecAbstract)
	v2 := a.TFIDF(0, SecAbstract)
	if len(v1) == 0 {
		t.Fatal("empty TF-IDF vector")
	}
	// Cached: same map returned.
	if &v1 == nil || len(v1) != len(v2) {
		t.Fatal("cache returned different vector")
	}
	all1 := a.TFIDFAll(0)
	all2 := a.TFIDFAll(0)
	if len(all1) == 0 || len(all1) != len(all2) {
		t.Fatal("TFIDFAll cache broken")
	}
	if a.TFIDF(PaperID(-1), SecTitle) != nil || a.TFIDFAll(PaperID(9999)) != nil {
		t.Fatal("out-of-range TFIDF must be nil")
	}
}

func TestQueryVector(t *testing.T) {
	c, _ := testCorpus(t, 50)
	a := NewAnalyzer(c)
	qv := a.QueryVector("transcription regulation binding")
	if len(qv) == 0 {
		t.Fatal("query vector empty")
	}
	// Self-similarity sanity: a paper is most similar to its own title
	// terms among random other titles more often than not; just check
	// cosine is in range.
	for id := PaperID(0); id < 10; id++ {
		cos := vector.Cosine(qv, a.TFIDFAll(id))
		if cos < 0 || cos > 1.0000001 {
			t.Fatalf("cosine out of range: %v", cos)
		}
	}
}

func TestDocFreqOfPhrase(t *testing.T) {
	papers := []*Paper{
		{ID: 0, Title: "rna polymerase binding", Abstract: "a", Body: "b", Authors: []string{"x y"}},
		{ID: 1, Title: "polymerase rna", Abstract: "rna polymerase", Body: "c", Authors: []string{"x y"}},
		{ID: 2, Title: "unrelated", Abstract: "d", Body: "e", Authors: []string{"x y"}},
	}
	c, err := NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(c)
	// "rna polymerase" appears contiguously in papers 0 and 1 only.
	stem := a.Tokenizer().Terms("rna polymerase")
	if got := a.DocFreqOfPhrase(stem); got != 2 {
		t.Fatalf("DocFreqOfPhrase = %d, want 2", got)
	}
	if got := a.DocFreqOfPhrase(nil); got != 0 {
		t.Fatalf("empty phrase df = %d", got)
	}
	if got := a.DocFreqOfPhrase([]string{"absent", "phrase"}); got != 0 {
		t.Fatalf("absent phrase df = %d", got)
	}
}

func TestCoAuthorIndex(t *testing.T) {
	papers := []*Paper{
		{ID: 0, Title: "t", Abstract: "a", Body: "b", Authors: []string{"Ann Chen", "Bob Lee"}},
		{ID: 1, Title: "t", Abstract: "a", Body: "b", Authors: []string{"ann chen"}},
	}
	c, err := NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	idx := NewAnalyzer(c).CoAuthorIndex()
	if got := idx["ann chen"]; len(got) != 2 {
		t.Fatalf("ann chen papers = %v (case normalisation broken?)", got)
	}
	if got := idx["bob lee"]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("bob lee papers = %v", got)
	}
}

func TestContainsPhrase(t *testing.T) {
	toks := []string{"a", "b", "c", "b", "c", "d"}
	cases := []struct {
		words []string
		want  bool
	}{
		{[]string{"b", "c", "d"}, true},
		{[]string{"a"}, true},
		{[]string{"c", "b"}, true},
		{[]string{"d", "a"}, false},
		{[]string{}, false},
		{[]string{"a", "b", "c", "b", "c", "d", "e"}, false},
	}
	for _, tc := range cases {
		if got := containsPhrase(toks, tc.words); got != tc.want {
			t.Errorf("containsPhrase(%v) = %v", tc.words, got)
		}
	}
}
