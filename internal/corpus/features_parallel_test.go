package corpus

import (
	"reflect"
	"testing"
)

// TestParallelAnalyzerMatchesSequential is the golden equivalence test for
// the sharded analyzer build: every worker count must produce exactly the
// features, DF table and (after warming) TF-IDF caches of the sequential
// build.
func TestParallelAnalyzerMatchesSequential(t *testing.T) {
	c, _ := testCorpus(t, 120)
	seq := NewAnalyzerWorkers(c, 1)
	for _, workers := range []int{2, 3, 8} {
		par := NewAnalyzerWorkers(c, workers)
		if !reflect.DeepEqual(seq.feats, par.feats) {
			t.Fatalf("workers=%d: features differ from sequential build", workers)
		}
		if !reflect.DeepEqual(seq.df, par.df) {
			t.Fatalf("workers=%d: DF table differs from sequential build", workers)
		}
	}
}

// TestWarmMatchesLazy verifies that the eager parallel cache warm produces
// bit-identical TF-IDF vectors and norms to lazy on-demand computation.
func TestWarmMatchesLazy(t *testing.T) {
	c, _ := testCorpus(t, 60)
	lazy := NewAnalyzerWorkers(c, 1)
	warm := NewAnalyzerWorkers(c, 1)
	warm.Warm(4)
	if !warm.warmed.Load() {
		t.Fatal("Warm did not set the warmed flag")
	}
	for _, p := range c.Papers() {
		for _, s := range Sections {
			if !reflect.DeepEqual(lazy.TFIDF(p.ID, s), warm.TFIDF(p.ID, s)) {
				t.Fatalf("paper %d section %v: warmed TFIDF differs from lazy", p.ID, s)
			}
			if lazy.TFIDFNorm(p.ID, s) != warm.TFIDFNorm(p.ID, s) {
				t.Fatalf("paper %d section %v: warmed norm differs from lazy", p.ID, s)
			}
		}
		if !reflect.DeepEqual(lazy.TFIDFAll(p.ID), warm.TFIDFAll(p.ID)) {
			t.Fatalf("paper %d: warmed TFIDFAll differs from lazy", p.ID)
		}
		if lazy.TFIDFAllNorm(p.ID) != warm.TFIDFAllNorm(p.ID) {
			t.Fatalf("paper %d: warmed TFIDFAllNorm differs from lazy", p.ID)
		}
	}
}

// TestWarmIsIdempotent guards the double-checked fast path.
func TestWarmIsIdempotent(t *testing.T) {
	c, _ := testCorpus(t, 20)
	a := NewAnalyzer(c)
	a.Warm(2)
	first := a.TFIDFAll(0)
	a.Warm(2)
	if !reflect.DeepEqual(first, a.TFIDFAll(0)) {
		t.Fatal("second Warm changed cached vectors")
	}
}
