package corpus

import (
	"sort"
)

// Stats summarises a corpus's structure — the numbers a database operator
// inspects before indexing (and that validate the synthetic generator
// against the real-corpus properties the paper relies on).
type Stats struct {
	Papers int
	// Token statistics over all sections (stemmed, stopword-filtered).
	TotalTokens int
	MeanTokens  float64
	Vocabulary  int
	// Citation-graph statistics.
	TotalCitations  int
	MeanOutDegree   float64
	MaxInDegree     int
	UncitedFraction float64
	// Topic/evidence statistics.
	EvidenceTerms  int
	EvidencePapers int
	MeanTopics     float64
	// Year range.
	MinYear, MaxYear int
}

// ComputeStats analyses a corpus. The analyzer parameter supplies token
// statistics; pass nil to skip them (cheaper).
func ComputeStats(c *Corpus, a *Analyzer) Stats {
	st := Stats{Papers: c.Len()}
	if c.Len() == 0 {
		return st
	}
	st.MinYear = c.Papers()[0].Year
	vocab := map[string]bool{}
	evidencePapers := 0
	topicSum := 0
	uncited := 0
	for _, p := range c.Papers() {
		if p.Year < st.MinYear {
			st.MinYear = p.Year
		}
		if p.Year > st.MaxYear {
			st.MaxYear = p.Year
		}
		st.TotalCitations += len(p.References)
		in := len(c.CitedBy(p.ID))
		if in > st.MaxInDegree {
			st.MaxInDegree = in
		}
		if in == 0 {
			uncited++
		}
		if p.Evidence {
			evidencePapers++
		}
		topicSum += len(p.Topics)
		if a != nil {
			f := a.Features(p.ID)
			for _, s := range Sections {
				st.TotalTokens += len(f.Tokens[s])
			}
			for term := range f.AllTF {
				vocab[term] = true
			}
		}
	}
	st.MeanOutDegree = float64(st.TotalCitations) / float64(c.Len())
	st.UncitedFraction = float64(uncited) / float64(c.Len())
	st.EvidenceTerms = len(c.EvidenceTerms())
	st.EvidencePapers = evidencePapers
	st.MeanTopics = float64(topicSum) / float64(c.Len())
	if a != nil {
		st.MeanTokens = float64(st.TotalTokens) / float64(c.Len())
		st.Vocabulary = len(vocab)
	}
	return st
}

// InDegreeHistogram returns the citation in-degree distribution as sorted
// (degree, count) pairs — the long-tail shape that makes PageRank
// informative.
func InDegreeHistogram(c *Corpus) [][2]int {
	counts := map[int]int{}
	for _, p := range c.Papers() {
		counts[len(c.CitedBy(p.ID))]++
	}
	out := make([][2]int, 0, len(counts))
	for d, n := range counts {
		out = append(out, [2]int{d, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
