package corpus

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	c, _ := testCorpus(t, 60)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, c); err != nil {
		t.Fatal(err)
	}
	// One line per paper.
	lines := strings.Count(buf.String(), "\n")
	if lines != c.Len() {
		t.Fatalf("lines = %d, want %d", lines, c.Len())
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("Len = %d", got.Len())
	}
	for i := range c.Papers() {
		a, b := c.Papers()[i], got.Papers()[i]
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("paper %d differs:\n%+v\n%+v", i, a, b)
		}
	}
	if !reflect.DeepEqual(c.EvidenceTerms(), got.EvidenceTerms()) {
		t.Fatal("evidence index differs")
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed JSON must fail")
	}
	// Valid JSON but invalid corpus (non-dense IDs).
	if _, err := ReadJSONL(strings.NewReader(`{"id":5,"pmid":1,"year":2000,"title":"t","abstract":"a","body":"b"}`)); err == nil {
		t.Fatal("non-dense IDs must fail")
	}
	// Empty input → empty corpus.
	c, err := ReadJSONL(strings.NewReader(""))
	if err != nil || c.Len() != 0 {
		t.Fatalf("empty input: %v, %v", c, err)
	}
}
