package corpus

import (
	"testing"

	"ctxsearch/internal/ontology"
)

func benchCorpus(b *testing.B, n int) *Corpus {
	b.Helper()
	o, err := ontology.Generate(ontology.GenConfig{Seed: 3, NumTerms: 80, MaxDepth: 7})
	if err != nil {
		b.Fatal(err)
	}
	c, err := Generate(o, DefaultGenConfig(n))
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchAnalyzerBuild(b *testing.B, workers int) {
	c := benchCorpus(b, 400)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewAnalyzerWorkers(c, workers)
	}
}

func BenchmarkAnalyzerBuildWorkers1(b *testing.B) { benchAnalyzerBuild(b, 1) }
func BenchmarkAnalyzerBuildWorkers8(b *testing.B) { benchAnalyzerBuild(b, 8) }

func benchAnalyzerWarm(b *testing.B, workers int) {
	c := benchCorpus(b, 400)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := NewAnalyzerWorkers(c, workers)
		b.StartTimer()
		a.Warm(workers)
	}
}

func BenchmarkAnalyzerWarmWorkers1(b *testing.B) { benchAnalyzerWarm(b, 1) }
func BenchmarkAnalyzerWarmWorkers8(b *testing.B) { benchAnalyzerWarm(b, 8) }
