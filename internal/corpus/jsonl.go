package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ctxsearch/internal/ontology"
)

// jsonPaper is the JSONL interchange shape of a paper — stable field names
// decoupled from the internal struct so external tooling can rely on them.
type jsonPaper struct {
	ID         int      `json:"id"`
	PMID       int      `json:"pmid"`
	Year       int      `json:"year"`
	Title      string   `json:"title"`
	Abstract   string   `json:"abstract"`
	Body       string   `json:"body"`
	IndexTerms []string `json:"index_terms,omitempty"`
	Authors    []string `json:"authors,omitempty"`
	References []int    `json:"references,omitempty"`
	Topics     []string `json:"topics,omitempty"`
	Evidence   bool     `json:"evidence,omitempty"`
}

// WriteJSONL writes the corpus as JSON Lines (one paper object per line) —
// the standard bulk-interchange format for document collections.
func WriteJSONL(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, p := range c.Papers() {
		jp := jsonPaper{
			ID:         int(p.ID),
			PMID:       p.PMID,
			Year:       p.Year,
			Title:      p.Title,
			Abstract:   p.Abstract,
			Body:       p.Body,
			IndexTerms: p.IndexTerms,
			Authors:    p.Authors,
			Evidence:   p.Evidence,
		}
		for _, r := range p.References {
			jp.References = append(jp.References, int(r))
		}
		for _, t := range p.Topics {
			jp.Topics = append(jp.Topics, string(t))
		}
		if err := enc.Encode(jp); err != nil {
			return fmt.Errorf("corpus: encoding paper %d: %w", p.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a corpus previously written by WriteJSONL (or produced by
// external tooling in the same shape). Papers must appear with dense IDs in
// order; validation mirrors NewCorpus.
func ReadJSONL(r io.Reader) (*Corpus, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var papers []*Paper
	for dec.More() {
		var jp jsonPaper
		if err := dec.Decode(&jp); err != nil {
			return nil, fmt.Errorf("corpus: decoding line %d: %w", len(papers)+1, err)
		}
		p := &Paper{
			ID:         PaperID(jp.ID),
			PMID:       jp.PMID,
			Year:       jp.Year,
			Title:      jp.Title,
			Abstract:   jp.Abstract,
			Body:       jp.Body,
			IndexTerms: jp.IndexTerms,
			Authors:    jp.Authors,
			Evidence:   jp.Evidence,
		}
		for _, ref := range jp.References {
			p.References = append(p.References, PaperID(ref))
		}
		for _, t := range jp.Topics {
			p.Topics = append(p.Topics, ontology.TermID(t))
		}
		papers = append(papers, p)
	}
	return NewCorpus(papers)
}
