package corpus

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ctxsearch/internal/ontology"
)

const sampleGAF = `!gaf-version: 2.2
! comment line
SGD	S000001	ACT1	involved_in	GO:0000123	PMID:10000007	IDA		P				protein	taxon:559292	20060101	SGD
SGD	S000002	TUB2	involved_in	GO:0000456	GO_REF:0000033	IEA		P				protein	taxon:559292	20060101	SGD
SGD	S000003	CDC28	involved_in	GO:0000123	PMID:10000008|SGD_REF:1	EXP		P				protein	taxon:559292	20060101	SGD
`

func TestParseGAF(t *testing.T) {
	annots, err := ParseGAF(strings.NewReader(sampleGAF))
	if err != nil {
		t.Fatal(err)
	}
	// The GO_REF line has no PMID and is skipped.
	if len(annots) != 2 {
		t.Fatalf("annotations = %d, want 2: %v", len(annots), annots)
	}
	want := Annotation{Term: "GO:0000123", PMID: 10000007, Evidence: "IDA", Symbol: "ACT1"}
	if annots[0] != want {
		t.Fatalf("annots[0] = %+v, want %+v", annots[0], want)
	}
	if annots[1].PMID != 10000008 || annots[1].Evidence != "EXP" {
		t.Fatalf("annots[1] = %+v (multi-reference parsing broken)", annots[1])
	}
}

func TestParseGAFErrors(t *testing.T) {
	if _, err := ParseGAF(strings.NewReader("too\tfew\tcolumns\n")); err == nil {
		t.Error("short line must fail")
	}
	if _, err := ParseGAF(strings.NewReader("a\tb\tc\td\tGO:1\tPMID:notanumber\tEXP\n")); err == nil {
		t.Error("bad PMID must fail")
	}
	annots, err := ParseGAF(strings.NewReader("!only comments\n"))
	if err != nil || len(annots) != 0 {
		t.Errorf("comment-only file: %v, %v", annots, err)
	}
}

func TestApplyAnnotations(t *testing.T) {
	papers := []*Paper{
		{ID: 0, PMID: 111, Topics: []ontology.TermID{"GO:9"}},
		{ID: 1, PMID: 222, Topics: []ontology.TermID{"GO:5", "GO:7"}},
	}
	annots := []Annotation{
		{Term: "GO:1", PMID: 111},
		{Term: "GO:7", PMID: 222}, // already a (secondary) topic: promote
		{Term: "GO:3", PMID: 999}, // unmatched
	}
	applied, unmatched := ApplyAnnotations(papers, annots)
	if applied != 2 {
		t.Fatalf("applied = %d", applied)
	}
	if !reflect.DeepEqual(unmatched, []int{999}) {
		t.Fatalf("unmatched = %v", unmatched)
	}
	if !papers[0].Evidence || papers[0].Topics[0] != "GO:1" {
		t.Fatalf("paper 0 not annotated: %+v", papers[0])
	}
	if papers[1].Topics[0] != "GO:7" || len(papers[1].Topics) != 2 {
		t.Fatalf("paper 1 topic promotion broken: %v", papers[1].Topics)
	}
}

func TestGAFRoundTrip(t *testing.T) {
	c, _ := testCorpus(t, 200)
	var buf bytes.Buffer
	if err := WriteGAF(&buf, c); err != nil {
		t.Fatal(err)
	}
	annots, err := ParseGAF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Every (term, evidence paper) pair must appear exactly once.
	wantPairs := map[string]bool{}
	for _, term := range c.EvidenceTerms() {
		for _, id := range c.EvidencePapers(term) {
			wantPairs[string(term)+"|"+itoa(c.Paper(id).PMID)] = true
		}
	}
	gotPairs := map[string]bool{}
	for _, a := range annots {
		gotPairs[string(a.Term)+"|"+itoa(a.PMID)] = true
	}
	if !reflect.DeepEqual(wantPairs, gotPairs) {
		t.Fatalf("GAF round trip lost pairs: want %d, got %d", len(wantPairs), len(gotPairs))
	}
	// Applying the parsed annotations to a fresh copy of the papers must
	// reproduce the evidence marking.
	fresh := make([]*Paper, c.Len())
	for i, p := range c.Papers() {
		cp := *p
		cp.Evidence = false
		cp.Topics = append([]ontology.TermID(nil), p.Topics...)
		fresh[i] = &cp
	}
	applied, unmatched := ApplyAnnotations(fresh, annots)
	if len(unmatched) != 0 {
		t.Fatalf("unmatched PMIDs after round trip: %v", unmatched)
	}
	if applied != len(annots) {
		t.Fatalf("applied %d of %d", applied, len(annots))
	}
	rebuilt, err := NewCorpus(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rebuilt.EvidenceTerms(), c.EvidenceTerms()) {
		t.Fatal("evidence terms differ after GAF round trip")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
