// Package corpus implements the literature-database substrate: the paper
// model (full text in sections, authors, references), a deterministic
// synthetic PubMed-like corpus generator anchored on ontology topics, a
// feature analyzer producing the per-section term statistics every ranking
// function consumes, and gob persistence.
//
// The paper's experiments used 72,027 full-text PubMed genomics papers; the
// generator reproduces the statistical structure those experiments depend on
// (topical vocabulary anchored at GO terms, author communities, citations
// biased within topics, per-term annotation evidence papers) at configurable
// scale, with ground-truth topic labels the real corpus lacks.
package corpus

import (
	"fmt"
	"sort"

	"ctxsearch/internal/ontology"
)

// PaperID identifies a paper within a corpus. IDs are dense, starting at 0.
type PaperID int

// Section identifies a paper section. The text-based prestige function
// weights similarities per section; the pattern matcher weights match
// strength per section.
type Section int

// Paper sections in presentation order.
const (
	SecTitle Section = iota
	SecAbstract
	SecBody
	SecIndexTerms
	numSections
)

// Sections lists all text sections in a fixed order.
var Sections = []Section{SecTitle, SecAbstract, SecBody, SecIndexTerms}

// String returns the section name.
func (s Section) String() string {
	switch s {
	case SecTitle:
		return "title"
	case SecAbstract:
		return "abstract"
	case SecBody:
		return "body"
	case SecIndexTerms:
		return "index_terms"
	default:
		return fmt.Sprintf("section(%d)", int(s))
	}
}

// Paper is one full-text publication.
type Paper struct {
	ID         PaperID
	PMID       int // PubMed-style external identifier
	Year       int
	Title      string
	Abstract   string
	Body       string
	IndexTerms []string
	Authors    []string
	// References holds outgoing citations, always to older papers.
	References []PaperID

	// Topics is the ground-truth list of generating ontology terms, primary
	// first. Real corpora lack these labels; the evaluation harness uses
	// them to validate the AC-answer-set construction.
	Topics []ontology.TermID
	// Evidence marks the paper as an annotation evidence (training) paper
	// for its primary topic — the synthetic counterpart of GO annotation
	// evidence.
	Evidence bool
}

// SectionText returns the raw text of a section; index terms are joined
// with "; ".
func (p *Paper) SectionText(s Section) string {
	switch s {
	case SecTitle:
		return p.Title
	case SecAbstract:
		return p.Abstract
	case SecBody:
		return p.Body
	case SecIndexTerms:
		return joinIndexTerms(p.IndexTerms)
	default:
		return ""
	}
}

func joinIndexTerms(terms []string) string {
	out := ""
	for i, t := range terms {
		if i > 0 {
			out += "; "
		}
		out += t
	}
	return out
}

// Corpus is an immutable collection of papers with citation and evidence
// indexes. Construct with NewCorpus.
type Corpus struct {
	papers   []*Paper
	citedBy  map[PaperID][]PaperID
	evidence map[ontology.TermID][]PaperID
}

// NewCorpus builds a corpus from papers, validating IDs and references and
// building the reverse-citation and evidence indexes. Papers must have dense
// IDs 0..n-1 in slice order.
func NewCorpus(papers []*Paper) (*Corpus, error) {
	c := &Corpus{
		papers:   papers,
		citedBy:  make(map[PaperID][]PaperID),
		evidence: make(map[ontology.TermID][]PaperID),
	}
	for i, p := range papers {
		if p == nil {
			return nil, fmt.Errorf("corpus: nil paper at %d", i)
		}
		if int(p.ID) != i {
			return nil, fmt.Errorf("corpus: paper at %d has ID %d (IDs must be dense)", i, p.ID)
		}
	}
	for _, p := range papers {
		for _, r := range p.References {
			if int(r) < 0 || int(r) >= len(papers) {
				return nil, fmt.Errorf("corpus: paper %d cites unknown paper %d", p.ID, r)
			}
			if r == p.ID {
				return nil, fmt.Errorf("corpus: paper %d cites itself", p.ID)
			}
			c.citedBy[r] = append(c.citedBy[r], p.ID)
		}
		if p.Evidence && len(p.Topics) > 0 {
			c.evidence[p.Topics[0]] = append(c.evidence[p.Topics[0]], p.ID)
		}
	}
	for _, ids := range c.citedBy {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	return c, nil
}

// Len returns the number of papers.
func (c *Corpus) Len() int { return len(c.papers) }

// Paper returns the paper with the given ID, or nil when out of range.
func (c *Corpus) Paper(id PaperID) *Paper {
	if int(id) < 0 || int(id) >= len(c.papers) {
		return nil
	}
	return c.papers[id]
}

// Papers returns the underlying paper slice; callers must not modify it.
func (c *Corpus) Papers() []*Paper { return c.papers }

// CitedBy returns the IDs of papers citing id.
func (c *Corpus) CitedBy(id PaperID) []PaperID { return c.citedBy[id] }

// EvidencePapers returns the annotation evidence (training) papers of a
// term, in ID order.
func (c *Corpus) EvidencePapers(t ontology.TermID) []PaperID { return c.evidence[t] }

// EvidenceTerms returns every term that has at least one evidence paper,
// sorted by ID.
func (c *Corpus) EvidenceTerms() []ontology.TermID {
	out := make([]ontology.TermID, 0, len(c.evidence))
	for t := range c.evidence {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
