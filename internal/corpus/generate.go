package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"ctxsearch/internal/ontology"
)

// GenConfig configures the synthetic corpus generator.
type GenConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// NumPapers is the number of papers to generate.
	NumPapers int
	// TopicMixProb is the per-position probability that a sampled word
	// comes from the paper's topic signature rather than the background
	// vocabulary, for the body section. Title/abstract/index terms use
	// progressively higher topicality.
	TopicMixProb float64
	// EvidencePerTerm caps how many papers are marked as annotation
	// evidence (training) papers per term.
	EvidencePerTerm int
	// RefMean is the mean number of references per paper.
	RefMean int
	// InTopicCiteProb is the probability a reference goes to a paper
	// sharing a topic (vs a uniformly random older paper). The paper's §1
	// attributes citation-score weakness to cross-context citations; this
	// knob controls exactly that sparseness.
	InTopicCiteProb float64
	// CiteUpProb is the probability an in-topic citation is redirected to
	// a paper of an ANCESTOR of the topic instead of the topic itself.
	// Real papers cite foundational (broader) work, so deep contexts keep
	// few citations internal — the per-context sparseness the paper's §5
	// blames for the citation function's weakness.
	CiteUpProb float64
	// AuthorsPerTopic is the size of each topic's author community.
	AuthorsPerTopic int
	// YearRange spans publication years [MinYear, MaxYear].
	MinYear, MaxYear int
}

// DefaultGenConfig returns the generator configuration used by the
// experiments at the given corpus size.
func DefaultGenConfig(numPapers int) GenConfig {
	return GenConfig{
		Seed:            1,
		NumPapers:       numPapers,
		TopicMixProb:    0.22,
		EvidencePerTerm: 5,
		RefMean:         12,
		InTopicCiteProb: 0.55,
		CiteUpProb:      0.80,
		AuthorsPerTopic: 9,
		MinYear:         1990,
		MaxYear:         2006,
	}
}

// topicModel holds the per-term generative vocabulary.
type topicModel struct {
	term ontology.TermID
	// nameWords are the words of the term's own name (highly topical).
	nameWords []string
	// namePhrase is the full term name, emitted verbatim sometimes so that
	// pattern mining finds the term words as contiguous phrases.
	namePhrase string
	// signature is the wider topical vocabulary: own and ancestor name
	// words plus synthetic gene symbols unique to the term.
	signature []string
	// authors is the term's author community.
	authors []string
}

// Generate produces a deterministic synthetic corpus over the given
// ontology. Every generated paper receives 1–3 ground-truth topics drawn
// from non-root terms; text sections are sampled from a mixture of the
// topic signatures and the background vocabulary; citations prefer papers
// sharing a topic; per-term evidence papers are marked.
func Generate(onto *ontology.Ontology, cfg GenConfig) (*Corpus, error) {
	if cfg.NumPapers <= 0 {
		return nil, fmt.Errorf("corpus: NumPapers must be positive, got %d", cfg.NumPapers)
	}
	if onto == nil || onto.Len() == 0 {
		return nil, fmt.Errorf("corpus: ontology is empty")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	models, termList := buildTopicModels(onto, cfg, rng)
	if len(termList) == 0 {
		return nil, fmt.Errorf("corpus: ontology has no non-root terms to use as topics")
	}

	papers := make([]*Paper, cfg.NumPapers)
	byTopic := make(map[ontology.TermID][]PaperID)
	evidenceCount := make(map[ontology.TermID]int)
	// Non-root ancestors per term, for upward citation redirection.
	ancestorsOf := make(map[ontology.TermID][]ontology.TermID, len(termList))
	for _, t := range termList {
		for _, a := range onto.Ancestors(t) {
			if onto.Level(a) >= 2 {
				ancestorsOf[t] = append(ancestorsOf[t], a)
			}
		}
	}

	for i := 0; i < cfg.NumPapers; i++ {
		id := PaperID(i)
		topics := drawTopics(onto, termList, rng)
		p := &Paper{
			ID:     id,
			PMID:   10_000_000 + i,
			Year:   cfg.MinYear + i*(cfg.MaxYear-cfg.MinYear+1)/cfg.NumPapers,
			Topics: topics,
		}
		var mix []*topicModel
		for _, t := range topics {
			mix = append(mix, models[t])
		}
		// Papers on broad (shallow) topics read generically — a paper about
		// "biological process"-level concepts has no sharp vocabulary —
		// while deep-topic papers are sharply topical. This is what makes
		// representative papers of upper-level contexts characterise them
		// poorly (the paper's Figure 5.5 observation).
		depth := onto.Level(topics[0])
		sharp := 0.45 + 0.11*float64(depth-2)
		if sharp > 1 {
			sharp = 1
		}
		topical := cfg.TopicMixProb * sharp
		p.Title = genText(rng, mix, 9+rng.Intn(6), 3.2*topical)
		p.Abstract = genText(rng, mix, 90+rng.Intn(70), 2.0*topical)
		p.Body = genText(rng, mix, 380+rng.Intn(420), topical)
		p.IndexTerms = genIndexTerms(rng, mix)
		p.Authors = genAuthors(rng, mix)
		p.References = genReferences(rng, cfg, p, byTopic, ancestorsOf, i)

		if evidenceCount[topics[0]] < cfg.EvidencePerTerm {
			p.Evidence = true
			evidenceCount[topics[0]]++
		}
		papers[i] = p
		for _, t := range topics {
			byTopic[t] = append(byTopic[t], id)
		}
	}
	return NewCorpus(papers)
}

// buildTopicModels derives each non-root term's generative vocabulary and
// author community.
func buildTopicModels(onto *ontology.Ontology, cfg GenConfig, rng *rand.Rand) (map[ontology.TermID]*topicModel, []ontology.TermID) {
	models := make(map[ontology.TermID]*topicModel, onto.Len())
	var termList []ontology.TermID
	for _, id := range onto.TermIDs() {
		if onto.Level(id) < 2 {
			continue // roots are not usable topics
		}
		t := onto.Term(id)
		name := strings.ToLower(t.Name)
		words := strings.Fields(name)
		// Own name words carry triple weight so deep topics stay textually
		// distinct from the ancestors whose vocabulary they embed.
		var sig []string
		for k := 0; k < 3; k++ {
			sig = append(sig, words...)
		}
		// Ancestor vocabulary, thinner with hierarchical distance.
		level := onto.Level(id)
		for _, anc := range onto.Ancestors(id) {
			al := onto.Level(anc)
			if al < 2 {
				continue
			}
			dist := level - al
			if dist < 1 {
				dist = 1
			}
			if dist > 3 {
				continue // far ancestors contribute nothing
			}
			for _, w := range strings.Fields(strings.ToLower(onto.Term(anc).Name)) {
				sig = append(sig, w)
			}
		}
		// Synthetic gene symbols unique to the term, e.g. "gqr4b". These
		// play the role of the gene/protein names that make real genomics
		// abstracts separable.
		for g := 0; g < 6; g++ {
			sym := fmt.Sprintf("%c%c%c%d%c",
				'a'+rng.Intn(26), 'a'+rng.Intn(26), 'a'+rng.Intn(26),
				1+rng.Intn(9), 'a'+rng.Intn(26))
			sig = append(sig, sym)
		}
		m := &topicModel{term: id, nameWords: words, namePhrase: name, signature: sig}
		for a := 0; a < cfg.AuthorsPerTopic; a++ {
			m.authors = append(m.authors,
				firstNames[rng.Intn(len(firstNames))]+" "+lastNames[rng.Intn(len(lastNames))])
		}
		models[id] = m
		termList = append(termList, id)
	}
	sort.Slice(termList, func(i, j int) bool { return termList[i] < termList[j] })
	return models, termList
}

// drawTopics picks 1–3 ground-truth topics: a primary term uniform over
// non-root terms, then with decreasing probability an ancestor or another
// random term, echoing the topic diffusion of real papers.
func drawTopics(onto *ontology.Ontology, termList []ontology.TermID, rng *rand.Rand) []ontology.TermID {
	primary := termList[rng.Intn(len(termList))]
	topics := []ontology.TermID{primary}
	if rng.Float64() < 0.45 {
		if parents := onto.Parents(primary); len(parents) > 0 && onto.Level(parents[0]) >= 2 {
			topics = append(topics, parents[0])
		}
	}
	if rng.Float64() < 0.25 {
		other := termList[rng.Intn(len(termList))]
		dup := false
		for _, t := range topics {
			if t == other {
				dup = true
			}
		}
		if !dup {
			topics = append(topics, other)
		}
	}
	return topics
}

// genText samples n words. With probability topicProb a word comes from a
// topic model (primary weighted double); topical emissions sometimes output
// the full term-name phrase so patterns appear contiguously. Background
// words are sampled with a Zipf-like rank distribution. Sentences of 8–18
// words are capitalised and period-terminated so the text looks like prose.
func genText(rng *rand.Rand, mix []*topicModel, n int, topicProb float64) string {
	if topicProb > 0.9 {
		topicProb = 0.9
	}
	var b strings.Builder
	b.Grow(n * 8)
	sentenceLeft := 0
	emitted := 0
	for emitted < n {
		if sentenceLeft <= 0 {
			sentenceLeft = 8 + rng.Intn(11)
			if b.Len() > 0 {
				b.WriteString(". ")
			}
		} else {
			b.WriteByte(' ')
		}
		if rng.Float64() < topicProb {
			m := pickTopic(rng, mix)
			if rng.Float64() < 0.25 {
				// Emit the whole term-name phrase.
				b.WriteString(m.namePhrase)
				emitted += len(m.nameWords)
				sentenceLeft -= len(m.nameWords)
				continue
			}
			b.WriteString(m.signature[rng.Intn(len(m.signature))])
		} else {
			b.WriteString(zipfWord(rng))
		}
		emitted++
		sentenceLeft--
	}
	b.WriteByte('.')
	return b.String()
}

// pickTopic selects a topic from the mixture with the primary topic (index
// 0) given double weight.
func pickTopic(rng *rand.Rand, mix []*topicModel) *topicModel {
	if len(mix) == 1 {
		return mix[0]
	}
	k := rng.Intn(len(mix) + 1)
	if k >= len(mix) {
		k = 0
	}
	return mix[k]
}

// zipfWord samples a background word with probability ∝ 1/rank.
func zipfWord(rng *rand.Rand) string {
	n := len(backgroundVocab)
	// Inverse-CDF sampling for 1/rank over n items: harmonic approximation.
	u := rng.Float64()
	// H(n) ≈ ln(n) + γ; pick rank so H(rank)/H(n) ≈ u → rank ≈ n^u.
	rank := int(math.Pow(float64(n), u))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return backgroundVocab[rank-1]
}

// genIndexTerms emits 4–8 index terms: term-name phrases of the topics plus
// a couple of signature words.
func genIndexTerms(rng *rand.Rand, mix []*topicModel) []string {
	var out []string
	for _, m := range mix {
		out = append(out, m.namePhrase)
	}
	extra := 2 + rng.Intn(3)
	for i := 0; i < extra; i++ {
		m := pickTopic(rng, mix)
		out = append(out, m.signature[rng.Intn(len(m.signature))])
	}
	return out
}

// genAuthors draws 2–5 authors, mostly from the primary topic's community
// so that author-overlap similarity is informative.
func genAuthors(rng *rand.Rand, mix []*topicModel) []string {
	n := 2 + rng.Intn(4)
	seen := map[string]bool{}
	var out []string
	for len(out) < n {
		m := mix[0]
		if rng.Float64() < 0.25 {
			m = pickTopic(rng, mix)
		}
		a := m.authors[rng.Intn(len(m.authors))]
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
		if len(seen) >= len(m.authors)*len(mix) {
			break // communities exhausted; accept fewer authors
		}
	}
	return out
}

// genReferences draws citations for paper i: mostly to older papers sharing
// a topic (weighted toward already-cited papers, i.e. preferential
// attachment), the rest uniformly random older papers.
func genReferences(rng *rand.Rand, cfg GenConfig, p *Paper, byTopic map[ontology.TermID][]PaperID, ancestorsOf map[ontology.TermID][]ontology.TermID, i int) []PaperID {
	if i == 0 {
		return nil
	}
	nRefs := cfg.RefMean/2 + rng.Intn(cfg.RefMean+1)
	seen := map[PaperID]bool{}
	var out []PaperID
	// Bounded retries: small in-topic pools reject duplicates often, so a
	// single pass would dilute the in-topic bias toward random citations.
	for attempts := 0; len(out) < nRefs && attempts < 8*nRefs; attempts++ {
		var cand PaperID = -1
		if rng.Float64() < cfg.InTopicCiteProb {
			topic := p.Topics[rng.Intn(len(p.Topics))]
			// Citations prefer broader, foundational work: redirect to an
			// ancestor topic's pool with probability CiteUpProb.
			if ancs := ancestorsOf[topic]; len(ancs) > 0 && rng.Float64() < cfg.CiteUpProb {
				topic = ancs[rng.Intn(len(ancs))]
			}
			pool := byTopic[topic]
			if len(pool) > 0 {
				// Preferential attachment flavour: sample two, keep the
				// older (older papers accumulate more citations naturally).
				a := pool[rng.Intn(len(pool))]
				b := pool[rng.Intn(len(pool))]
				cand = a
				if b < a {
					cand = b
				}
			}
		}
		if cand < 0 {
			cand = PaperID(rng.Intn(i))
		}
		if cand >= p.ID || seen[cand] {
			continue
		}
		seen[cand] = true
		out = append(out, cand)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
