package corpus

import "testing"

func TestComputeStats(t *testing.T) {
	c, _ := testCorpus(t, 250)
	a := NewAnalyzer(c)
	st := ComputeStats(c, a)
	if st.Papers != 250 {
		t.Fatalf("papers = %d", st.Papers)
	}
	if st.TotalTokens == 0 || st.MeanTokens < 100 {
		t.Fatalf("token stats: %+v", st)
	}
	if st.Vocabulary == 0 {
		t.Fatal("vocabulary empty")
	}
	if st.TotalCitations == 0 || st.MeanOutDegree <= 0 {
		t.Fatalf("citation stats: %+v", st)
	}
	if st.MaxInDegree <= 0 {
		t.Fatal("no paper is cited")
	}
	if st.UncitedFraction < 0 || st.UncitedFraction >= 1 {
		t.Fatalf("uncited fraction = %v", st.UncitedFraction)
	}
	if st.EvidenceTerms == 0 || st.EvidencePapers == 0 {
		t.Fatalf("evidence stats: %+v", st)
	}
	if st.MeanTopics < 1 || st.MeanTopics > 3 {
		t.Fatalf("mean topics = %v", st.MeanTopics)
	}
	if st.MinYear > st.MaxYear || st.MinYear < 1900 {
		t.Fatalf("year range: %d–%d", st.MinYear, st.MaxYear)
	}
	// Without analyzer: token stats skipped, rest intact.
	lite := ComputeStats(c, nil)
	if lite.TotalTokens != 0 || lite.Vocabulary != 0 {
		t.Fatal("nil analyzer must skip token stats")
	}
	if lite.TotalCitations != st.TotalCitations {
		t.Fatal("citation stats differ")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	c, err := NewCorpus(nil)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(c, nil)
	if st.Papers != 0 {
		t.Fatalf("stats of empty corpus: %+v", st)
	}
}

func TestInDegreeHistogram(t *testing.T) {
	papers := []*Paper{
		{ID: 0}, {ID: 1, References: []PaperID{0}}, {ID: 2, References: []PaperID{0}},
	}
	c, err := NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	h := InDegreeHistogram(c)
	// Degrees: paper 0 has 2, papers 1,2 have 0 → [(0,2),(2,1)].
	if len(h) != 2 || h[0] != [2]int{0, 2} || h[1] != [2]int{2, 1} {
		t.Fatalf("histogram = %v", h)
	}
	// Counts sum to paper count.
	total := 0
	for _, e := range h {
		total += e[1]
	}
	if total != c.Len() {
		t.Fatalf("histogram total = %d", total)
	}
}
