package corpus

import "strings"

// backgroundVocab is the shared non-topical vocabulary of the synthetic
// papers — general scientific prose words sampled with a Zipf-like
// distribution. Kept as text for auditability.
const backgroundText = `
analysis results method methods approach data experiment experiments study
studies observed observation significant significance measure measured
measurement model models system systems process function functions role
effect effects level levels condition conditions control controls sample
samples figure table previous recent novel known unknown important
mechanism mechanisms pathway pathways interaction interactions response
responses expression expressed increase increased decrease decreased
change changes compared comparison similar different difference
presence absence structure structures region regions domain domains
sequence sequences site sites cell cells cellular tissue tissues organism
organisms human mouse yeast bacterial viral species gene genes genome
genomes genomic protein proteins enzyme enzymes molecule molecules
molecular biological biochemical experimentally vitro vivo assay assays
activity activities concentration temperature reaction reactions product
products substrate substrates target targets factor factors complex
complexes subunit subunits residue residues mutation mutations mutant
mutants wild type strain strains plasmid vector clone cloned cloning
fragment fragments band bands gel electrophoresis blot hybridization
antibody antibodies staining microscopy fluorescence luminescence
treatment treated untreated incubation buffer solution purified
purification isolated isolation characterized characterization identified
identification detected detection determined determination described
demonstrated demonstrate suggest suggests suggesting indicate indicates
indicating reveal reveals revealing show shows shown found finding findings
report reported propose proposed hypothesis conclusion conclusions
discussion introduction materials statistical analysis variance correlation
distribution frequency frequencies ratio ratios percent percentage
approximately respectively furthermore moreover however therefore although
whereas during following according consistent inconsistent relative
absolute specific nonspecific primary secondary tertiary initial final
`

var backgroundVocab = func() []string {
	words := strings.Fields(backgroundText)
	// Deduplicate while preserving order so Zipf ranks are stable.
	seen := make(map[string]bool, len(words))
	out := make([]string, 0, len(words))
	for _, w := range words {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}()

// firstNames and lastNames feed the synthetic author generator.
var firstNames = []string{
	"james", "mary", "wei", "yuki", "anna", "omar", "lena", "ivan", "noor",
	"sofia", "raj", "mei", "carlos", "ingrid", "tomas", "fatima", "george",
	"helen", "dmitri", "aisha", "pierre", "marta", "kenji", "lucia", "sven",
	"priya", "diego", "eva", "hassan", "nina", "paolo", "zoe",
}

var lastNames = []string{
	"smith", "chen", "tanaka", "garcia", "mueller", "ivanov", "patel",
	"kim", "rossi", "dubois", "nakamura", "silva", "kowalski", "ahmed",
	"johnson", "lee", "wang", "hernandez", "schmidt", "petrov", "gupta",
	"park", "ricci", "laurent", "sato", "costa", "nowak", "hussein",
	"brown", "liu", "yamamoto", "lopez", "weber", "sokolov", "mehta",
	"choi", "moretti", "moreau", "suzuki", "almeida", "wojcik", "ali",
}
