package corpus

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ctxsearch/internal/ontology"
)

// Annotation is one gene-annotation record linking an ontology term to the
// paper (PMID) providing its evidence — the unit of the GO Annotation File
// (GAF) format. Real deployments load these files to obtain the per-term
// training papers the pattern-based machinery needs; the synthetic
// generator marks equivalent evidence directly.
type Annotation struct {
	Term     ontology.TermID
	PMID     int
	Evidence string // GO evidence code, e.g. "EXP", "IDA", "TAS"
	Symbol   string // annotated gene/product symbol
}

// ParseGAF reads the subset of GAF 2.x this system uses: tab-separated
// lines with the GO ID in column 5, a DB:Reference in column 6 (only
// PMID:n references are kept), the evidence code in column 7 and the
// object symbol in column 3. Comment lines (!) and non-PMID references are
// skipped; short lines are an error.
func ParseGAF(r io.Reader) ([]Annotation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Annotation
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "!") {
			continue
		}
		cols := strings.Split(line, "\t")
		if len(cols) < 7 {
			return nil, fmt.Errorf("gaf: line %d: %d columns, want ≥ 7", lineNo, len(cols))
		}
		ref := cols[5]
		pmid := 0
		for _, r := range strings.Split(ref, "|") {
			if rest, ok := strings.CutPrefix(r, "PMID:"); ok {
				n, err := strconv.Atoi(rest)
				if err != nil {
					return nil, fmt.Errorf("gaf: line %d: bad PMID %q", lineNo, r)
				}
				pmid = n
				break
			}
		}
		if pmid == 0 {
			continue // non-literature evidence (e.g. GO_REF) — skip
		}
		out = append(out, Annotation{
			Term:     ontology.TermID(cols[4]),
			PMID:     pmid,
			Evidence: cols[6],
			Symbol:   cols[2],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gaf: %w", err)
	}
	return out, nil
}

// WriteGAF serialises the corpus's evidence assignments as a GAF 2.2 file
// (one line per evidence paper × term), so synthetic corpora interoperate
// with GAF-consuming tooling and round-trip tests can verify the parser.
func WriteGAF(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "!gaf-version: 2.2\n!generated-by: ctxsearch\n")
	for _, term := range c.EvidenceTerms() {
		for _, id := range c.EvidencePapers(term) {
			p := c.Paper(id)
			// DB, ObjectID, Symbol, Qualifier, GOID, Reference, Evidence,
			// With, Aspect, Name, Synonym, Type, Taxon, Date, AssignedBy
			fmt.Fprintf(bw, "CTXS\tP%07d\tpaper%d\tinvolved_in\t%s\tPMID:%d\tEXP\t\tP\t\t\tprotein\ttaxon:9606\t20060101\tCTXS\n",
				id, id, term, p.PMID)
		}
	}
	return bw.Flush()
}

// ApplyAnnotations marks evidence papers on a paper slice (before NewCorpus
// is called) from parsed annotations: each annotation whose PMID matches a
// paper makes that paper an evidence paper with the annotation's term as
// primary topic (prepended if absent). Returns how many annotations were
// applied and the PMIDs that matched nothing, sorted.
func ApplyAnnotations(papers []*Paper, annots []Annotation) (applied int, unmatched []int) {
	byPMID := make(map[int]*Paper, len(papers))
	for _, p := range papers {
		byPMID[p.PMID] = p
	}
	missing := map[int]bool{}
	for _, a := range annots {
		p, ok := byPMID[a.PMID]
		if !ok {
			missing[a.PMID] = true
			continue
		}
		applied++
		p.Evidence = true
		// Prepend the term as primary topic when not already present.
		has := false
		for _, t := range p.Topics {
			if t == a.Term {
				has = true
				break
			}
		}
		if !has {
			p.Topics = append([]ontology.TermID{a.Term}, p.Topics...)
		} else if len(p.Topics) > 0 && p.Topics[0] != a.Term {
			// Move the annotated term to the front: evidence papers train
			// the term they were annotated for.
			rest := make([]ontology.TermID, 0, len(p.Topics)-1)
			for _, t := range p.Topics {
				if t != a.Term {
					rest = append(rest, t)
				}
			}
			p.Topics = append([]ontology.TermID{a.Term}, rest...)
		}
	}
	for pmid := range missing {
		unmatched = append(unmatched, pmid)
	}
	sort.Ints(unmatched)
	return applied, unmatched
}
