package corpus

import (
	"sort"
	"sync"
	"sync/atomic"

	"ctxsearch/internal/par"
	"ctxsearch/internal/textproc"
	"ctxsearch/internal/vector"
)

// Features holds the analysed representation of one paper: per-section
// stemmed token streams and TF vectors, the whole-paper TF vector, and the
// author set. All ranking functions consume Features rather than raw text.
type Features struct {
	ID PaperID
	// Tokens holds the stemmed, stopword-filtered token stream per section.
	Tokens map[Section][]string
	// TF holds the raw term-frequency vector per section.
	TF map[Section]vector.Sparse
	// AllTF is the merged term-frequency vector over all sections.
	AllTF vector.Sparse
	// Authors is the normalised (lowercased) author set.
	Authors map[string]bool
}

// Analyzer tokenizes papers and maintains corpus-wide document frequencies.
// Build one with NewAnalyzer; it analyses every paper eagerly so DF tables
// are complete before any similarity is computed.
type Analyzer struct {
	corpus *Corpus
	tok    *textproc.Tokenizer
	feats  []*Features
	// lazy marks an analyzer built by NewAnalyzerFrozen: features are
	// analysed on first demand instead of eagerly at construction. The
	// serving hot path (query weighting, snippets) never needs them, so a
	// frozen analyzer binds in O(1).
	lazy bool
	// DF over whole-paper term supports, used for TF-IDF weighting.
	df *vector.DF
	// cached TF-IDF vectors per section, computed lazily; mu guards the
	// caches so parallel scorers can share one analyzer. Once Warm has
	// populated every slot, warmed flips and readers skip the lock — the
	// caches are immutable from then on.
	mu          sync.Mutex
	warmed      atomic.Bool
	weighted    []map[Section]vector.Sparse
	weightedAll []vector.Sparse
	norms       []map[Section]float64
	normsAll    []float64
}

// NewAnalyzer analyses every paper in the corpus with a stemming,
// stopword-filtering tokenizer and builds the corpus DF table, fanning the
// per-paper analysis out to GOMAXPROCS workers.
func NewAnalyzer(c *Corpus) *Analyzer { return NewAnalyzerWorkers(c, 0) }

// NewAnalyzerWorkers is NewAnalyzer with explicit build parallelism: papers
// are split into contiguous shards, each shard is analysed by one worker
// into its own document-frequency table, and the per-shard tables are
// merged in shard order. The result is identical at every worker count —
// per-paper analysis is independent (the tokenizer and stemmer are
// stateless and shared), each Features slot is written by exactly one
// worker, and DF counts are order-independent integers. workers <= 0
// selects GOMAXPROCS; 1 reproduces the sequential build directly.
func NewAnalyzerWorkers(c *Corpus, workers int) *Analyzer {
	a := &Analyzer{
		corpus:      c,
		tok:         textproc.NewTokenizer(textproc.WithStemming(), textproc.WithStopwords(), textproc.WithMinLength(2)),
		feats:       make([]*Features, c.Len()),
		df:          vector.NewDF(),
		weighted:    make([]map[Section]vector.Sparse, c.Len()),
		weightedAll: make([]vector.Sparse, c.Len()),
		norms:       make([]map[Section]float64, c.Len()),
		normsAll:    make([]float64, c.Len()),
	}
	for i := range a.normsAll {
		a.normsAll[i] = -1
	}
	papers := c.Papers()
	shards := par.Shards(len(papers), workers)
	dfs := make([]*vector.DF, len(shards))
	par.ForShards(shards, func(si int, sh par.Shard) {
		df := vector.NewDF()
		for i := sh.Lo; i < sh.Hi; i++ {
			f := a.analyzePaper(papers[i])
			a.feats[f.ID] = f
			df.AddDoc(f.AllTF)
		}
		dfs[si] = df
	})
	for _, df := range dfs {
		a.df.Merge(df)
	}
	return a
}

// NewAnalyzerFrozen binds an analyzer over a corpus and a persisted DF
// table without analysing a single paper — the O(1) open path of the v4
// state format, where the postings that normally consume the per-paper
// TF-IDF vectors are already frozen on disk. Query weighting
// (QueryVector) needs only the DF table and tokenizer, both available
// immediately; per-paper features are analysed lazily on first demand
// (pattern mining, MatchScore, co-author paths), bit-identical to the
// eager build since the tokenizer and stemmer are stateless.
//
// The DF table must be the one built from this corpus: every weight and
// norm — and therefore every score — derives from it.
func NewAnalyzerFrozen(c *Corpus, df *vector.DF) *Analyzer {
	a := &Analyzer{
		corpus:      c,
		tok:         textproc.NewTokenizer(textproc.WithStemming(), textproc.WithStopwords(), textproc.WithMinLength(2)),
		feats:       make([]*Features, c.Len()),
		lazy:        true,
		df:          df,
		weighted:    make([]map[Section]vector.Sparse, c.Len()),
		weightedAll: make([]vector.Sparse, c.Len()),
		norms:       make([]map[Section]float64, c.Len()),
		normsAll:    make([]float64, c.Len()),
	}
	for i := range a.normsAll {
		a.normsAll[i] = -1
	}
	return a
}

// featLocked returns a paper's features, analysing them first on a lazy
// analyzer. Caller holds a.mu (or is otherwise the sole accessor).
func (a *Analyzer) featLocked(id PaperID) *Features {
	f := a.feats[id]
	if f == nil {
		if p := a.corpus.Paper(id); p != nil {
			f = a.analyzePaper(p)
			a.feats[id] = f
		}
	}
	return f
}

// ensureFeatures materializes every paper's features — the corpus-sweep
// accessors (phrase DF, co-author index) need them all. A no-op on eager
// or warmed analyzers.
func (a *Analyzer) ensureFeatures() {
	if !a.lazy || a.warmed.Load() {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, p := range a.corpus.Papers() {
		a.featLocked(p.ID)
	}
}

// analyzePaper tokenizes one paper into its Features. Safe for concurrent
// use: the tokenizer is stateless and nothing on the analyzer is written.
func (a *Analyzer) analyzePaper(p *Paper) *Features {
	f := &Features{
		ID:      p.ID,
		Tokens:  make(map[Section][]string, len(Sections)),
		TF:      make(map[Section]vector.Sparse, len(Sections)),
		AllTF:   vector.New(),
		Authors: make(map[string]bool, len(p.Authors)),
	}
	for _, s := range Sections {
		toks := a.tok.Terms(p.SectionText(s))
		f.Tokens[s] = toks
		tf := vector.FromTerms(toks)
		f.TF[s] = tf
		f.AllTF.Add(tf)
	}
	for _, au := range p.Authors {
		f.Authors[normAuthor(au)] = true
	}
	return f
}

// Warm precomputes every per-section and whole-paper TF-IDF vector and norm
// in parallel and freezes the caches: every subsequent TFIDF*/QueryVector
// cache read is lock-free. Values are bit-identical to lazy computation
// (the same df.Weight and Norm calls run, just eagerly), so a warmed and an
// unwarmed analyzer are observationally indistinguishable apart from speed.
// workers <= 0 selects GOMAXPROCS. Idempotent; concurrent lazy readers are
// held off by the cache lock until the warm completes.
func (a *Analyzer) Warm(workers int) {
	if a.warmed.Load() {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.warmed.Load() {
		return
	}
	par.For(len(a.feats), workers, func(i int) {
		f := a.feats[i]
		if f == nil {
			// Lazy analyzer: analyse on the way through. Each slot is
			// written by exactly one worker (disjoint indices), so the
			// fill is race-free under the held cache lock.
			if p := a.corpus.Paper(PaperID(i)); p != nil {
				f = a.analyzePaper(p)
				a.feats[i] = f
			}
		}
		if f == nil {
			return
		}
		w := make(map[Section]vector.Sparse, len(Sections))
		n := make(map[Section]float64, len(Sections))
		for _, s := range Sections {
			v := a.df.Weight(f.TF[s])
			w[s] = v
			n[s] = v.Norm()
		}
		a.weighted[i] = w
		a.norms[i] = n
		va := a.df.Weight(f.AllTF)
		a.weightedAll[i] = va
		a.normsAll[i] = va.Norm()
	})
	a.warmed.Store(true)
}

func normAuthor(a string) string {
	out := make([]byte, 0, len(a))
	for i := 0; i < len(a); i++ {
		c := a[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}

// Corpus returns the analysed corpus.
func (a *Analyzer) Corpus() *Corpus { return a.corpus }

// Features returns the analysed features of a paper, or nil when out of
// range.
func (a *Analyzer) Features(id PaperID) *Features {
	if int(id) < 0 || int(id) >= len(a.feats) {
		return nil
	}
	if a.lazy && !a.warmed.Load() {
		a.mu.Lock()
		defer a.mu.Unlock()
		return a.featLocked(id)
	}
	return a.feats[id]
}

// DF returns the corpus document-frequency table.
func (a *Analyzer) DF() *vector.DF { return a.df }

// TFIDF returns the cached TF-IDF vector of a paper section.
func (a *Analyzer) TFIDF(id PaperID, s Section) vector.Sparse {
	if int(id) < 0 || int(id) >= len(a.feats) {
		return nil
	}
	if a.warmed.Load() {
		return a.weighted[id][s]
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.weighted[id] == nil {
		a.weighted[id] = make(map[Section]vector.Sparse, len(Sections))
	}
	if v, ok := a.weighted[id][s]; ok {
		return v
	}
	v := a.df.Weight(a.featLocked(id).TF[s])
	a.weighted[id][s] = v
	return v
}

// TFIDFAll returns the cached TF-IDF vector over the paper's full text.
func (a *Analyzer) TFIDFAll(id PaperID) vector.Sparse {
	if int(id) < 0 || int(id) >= len(a.feats) {
		return nil
	}
	if a.warmed.Load() {
		return a.weightedAll[id]
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if v := a.weightedAll[id]; v != nil {
		return v
	}
	v := a.df.Weight(a.featLocked(id).AllTF)
	a.weightedAll[id] = v
	return v
}

// TFIDFNorm returns the cached Euclidean norm of a section's TF-IDF vector.
func (a *Analyzer) TFIDFNorm(id PaperID, s Section) float64 {
	if int(id) < 0 || int(id) >= len(a.feats) {
		return 0
	}
	if a.warmed.Load() {
		return a.norms[id][s]
	}
	v := a.TFIDF(id, s)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.norms[id] == nil {
		a.norms[id] = make(map[Section]float64, len(Sections))
	}
	if n, ok := a.norms[id][s]; ok {
		return n
	}
	n := v.Norm()
	a.norms[id][s] = n
	return n
}

// TFIDFAllNorm returns the cached norm of the paper's full-text TF-IDF
// vector.
func (a *Analyzer) TFIDFAllNorm(id PaperID) float64 {
	if int(id) < 0 || int(id) >= len(a.feats) {
		return 0
	}
	if a.warmed.Load() {
		return a.normsAll[id]
	}
	v := a.TFIDFAll(id)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.normsAll[id] >= 0 {
		return a.normsAll[id]
	}
	n := v.Norm()
	a.normsAll[id] = n
	return n
}

// QueryVector tokenizes a free-text query with the analyzer's tokenizer and
// returns its TF-IDF vector under the corpus DF table.
func (a *Analyzer) QueryVector(q string) vector.Sparse {
	return a.df.Weight(vector.FromTerms(a.tok.Terms(q)))
}

// Tokenizer returns the analyzer's tokenizer, so other components (pattern
// mining, context-term processing) tokenize identically.
func (a *Analyzer) Tokenizer() *textproc.Tokenizer { return a.tok }

// DocFreqOfPhrase returns in how many papers the given stemmed word
// sequence occurs contiguously in any section. Used by the pattern scorer's
// PaperCoverage criterion.
func (a *Analyzer) DocFreqOfPhrase(words []string) int {
	if len(words) == 0 {
		return 0
	}
	a.ensureFeatures()
	n := 0
	for _, f := range a.feats {
		if paperHasPhrase(f, words) {
			n++
		}
	}
	return n
}

func paperHasPhrase(f *Features, words []string) bool {
	for _, s := range Sections {
		toks := f.Tokens[s]
		if containsPhrase(toks, words) {
			return true
		}
	}
	return false
}

func containsPhrase(toks, words []string) bool {
	if len(words) == 0 || len(toks) < len(words) {
		return false
	}
outer:
	for i := 0; i+len(words) <= len(toks); i++ {
		for j, w := range words {
			if toks[i+j] != w {
				continue outer
			}
		}
		return true
	}
	return false
}

// CoAuthorIndex maps each normalised author to the sorted set of papers
// they appear on; used by Level-1 author overlap.
func (a *Analyzer) CoAuthorIndex() map[string][]PaperID {
	a.ensureFeatures()
	idx := make(map[string][]PaperID)
	for _, f := range a.feats {
		for au := range f.Authors {
			idx[au] = append(idx[au], f.ID)
		}
	}
	for au := range idx {
		sort.Slice(idx[au], func(i, j int) bool { return idx[au][i] < idx[au][j] })
	}
	return idx
}
