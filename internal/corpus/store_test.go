package corpus

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	c, _ := testCorpus(t, 80)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), c.Len())
	}
	for i := range c.Papers() {
		a, b := c.Papers()[i], got.Papers()[i]
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("paper %d not preserved:\n%+v\n%+v", i, a, b)
		}
	}
	// Indexes must be rebuilt identically.
	for _, p := range c.Papers() {
		if !reflect.DeepEqual(c.CitedBy(p.ID), got.CitedBy(p.ID)) {
			t.Fatalf("CitedBy(%d) differs", p.ID)
		}
	}
	if !reflect.DeepEqual(c.EvidenceTerms(), got.EvidenceTerms()) {
		t.Fatal("evidence terms differ")
	}
}

func TestSaveLoadFile(t *testing.T) {
	c, _ := testCorpus(t, 20)
	path := filepath.Join(t.TempDir(), "corpus.gob")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("Len = %d", got.Len())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage input must fail")
	}
	if _, err := LoadFile("/nonexistent/path/corpus.gob"); err == nil {
		t.Error("missing file must fail")
	}
	// Wrong magic.
	var buf bytes.Buffer
	c, _ := testCorpus(t, 5)
	_ = c.Save(&buf)
	b := buf.Bytes()
	// Corrupt the magic string bytes.
	idx := bytes.Index(b, []byte("ctxsearch-corpus"))
	if idx < 0 {
		t.Fatal("magic not found in encoding")
	}
	b[idx] = 'X'
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Error("bad magic must fail")
	}
}
