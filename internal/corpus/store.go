package corpus

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// storeVersion guards the on-disk format; bump on incompatible changes.
const storeVersion = 1

type storeHeader struct {
	Magic   string
	Version int
	Papers  int
}

// Save writes the corpus to w in a versioned gob format.
func (c *Corpus) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(storeHeader{Magic: "ctxsearch-corpus", Version: storeVersion, Papers: len(c.papers)}); err != nil {
		return fmt.Errorf("corpus: encoding header: %w", err)
	}
	for _, p := range c.papers {
		if err := enc.Encode(p); err != nil {
			return fmt.Errorf("corpus: encoding paper %d: %w", p.ID, err)
		}
	}
	return nil
}

// Load reads a corpus previously written by Save, rebuilding all indexes.
func Load(r io.Reader) (*Corpus, error) {
	dec := gob.NewDecoder(r)
	var h storeHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("corpus: decoding header: %w", err)
	}
	if h.Magic != "ctxsearch-corpus" {
		return nil, fmt.Errorf("corpus: bad magic %q", h.Magic)
	}
	if h.Version != storeVersion {
		return nil, fmt.Errorf("corpus: unsupported store version %d (want %d)", h.Version, storeVersion)
	}
	papers := make([]*Paper, h.Papers)
	for i := range papers {
		var p Paper
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("corpus: decoding paper %d: %w", i, err)
		}
		papers[i] = &p
	}
	return NewCorpus(papers)
}

// SaveFile writes the corpus to path, creating or truncating it.
func (c *Corpus) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a corpus from path.
func LoadFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
