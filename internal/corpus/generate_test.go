package corpus

import (
	"strings"
	"testing"

	"ctxsearch/internal/ontology"
)

func testOntology(t *testing.T) *ontology.Ontology {
	t.Helper()
	o, err := ontology.Generate(ontology.GenConfig{Seed: 2, NumTerms: 120, MaxDepth: 8, SecondParentProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func testCorpus(t *testing.T, n int) (*Corpus, *ontology.Ontology) {
	t.Helper()
	o := testOntology(t)
	cfg := DefaultGenConfig(n)
	c, err := Generate(o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, o
}

func TestGenerateBasics(t *testing.T) {
	c, o := testCorpus(t, 300)
	if c.Len() != 300 {
		t.Fatalf("Len = %d", c.Len())
	}
	for _, p := range c.Papers() {
		if p.Title == "" || p.Abstract == "" || p.Body == "" {
			t.Fatalf("paper %d has empty sections", p.ID)
		}
		if len(p.Authors) == 0 {
			t.Fatalf("paper %d has no authors", p.ID)
		}
		if len(p.Topics) == 0 || len(p.Topics) > 3 {
			t.Fatalf("paper %d has %d topics", p.ID, len(p.Topics))
		}
		for _, topic := range p.Topics {
			if o.Term(topic) == nil {
				t.Fatalf("paper %d has unknown topic %s", p.ID, topic)
			}
			if o.Level(topic) < 2 {
				t.Fatalf("paper %d topic %s is a root", p.ID, topic)
			}
		}
		for _, r := range p.References {
			if r >= p.ID {
				t.Fatalf("paper %d cites %d (not older)", p.ID, r)
			}
		}
		if len(p.IndexTerms) < len(p.Topics) {
			t.Fatalf("paper %d has %d index terms for %d topics", p.ID, len(p.IndexTerms), len(p.Topics))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	o := testOntology(t)
	cfg := DefaultGenConfig(150)
	a, err := Generate(o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Papers() {
		pa, pb := a.Papers()[i], b.Papers()[i]
		if pa.Title != pb.Title || pa.Body != pb.Body || len(pa.References) != len(pb.References) {
			t.Fatalf("paper %d differs between identical runs", i)
		}
	}
}

func TestGenerateEvidencePapers(t *testing.T) {
	c, _ := testCorpus(t, 400)
	terms := c.EvidenceTerms()
	if len(terms) == 0 {
		t.Fatal("no evidence terms")
	}
	cfg := DefaultGenConfig(400)
	for _, term := range terms {
		ev := c.EvidencePapers(term)
		if len(ev) == 0 || len(ev) > cfg.EvidencePerTerm {
			t.Fatalf("term %s has %d evidence papers", term, len(ev))
		}
		for _, id := range ev {
			p := c.Paper(id)
			if !p.Evidence || p.Topics[0] != term {
				t.Fatalf("paper %d is not a valid evidence paper for %s", id, term)
			}
		}
	}
}

func TestGenerateTopicalText(t *testing.T) {
	c, o := testCorpus(t, 200)
	// A paper's title+abstract should usually mention at least one word of
	// its primary topic's term name — that's what anchors every ranking
	// function. Demand it for a clear majority.
	hit := 0
	for _, p := range c.Papers() {
		name := strings.ToLower(o.Term(p.Topics[0]).Name)
		text := strings.ToLower(p.Title + " " + p.Abstract)
		for _, w := range strings.Fields(name) {
			if strings.Contains(text, w) {
				hit++
				break
			}
		}
	}
	if hit < c.Len()*3/4 {
		t.Fatalf("only %d/%d papers mention their primary topic", hit, c.Len())
	}
}

func TestGenerateCitationTopicBias(t *testing.T) {
	c, o := testCorpus(t, 500)
	related, total := 0, 0
	for _, p := range c.Papers() {
		for _, r := range p.References {
			total++
			// Citations are biased toward the same topic or a
			// hierarchically related one (CiteUpProb redirects to
			// ancestors — foundational work).
		refLoop:
			for _, rt := range c.Paper(r).Topics {
				for _, pt := range p.Topics {
					if pt == rt || o.HierarchicallyRelated(pt, rt) {
						related++
						break refLoop
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no references generated")
	}
	frac := float64(related) / float64(total)
	if frac < 0.3 {
		t.Fatalf("only %.0f%% of citations are topically related; generator lost its bias", 100*frac)
	}
}

func TestGenerateErrors(t *testing.T) {
	o := testOntology(t)
	if _, err := Generate(o, GenConfig{NumPapers: 0}); err == nil {
		t.Error("zero papers must fail")
	}
	if _, err := Generate(nil, DefaultGenConfig(10)); err == nil {
		t.Error("nil ontology must fail")
	}
	empty := ontology.New()
	if err := empty.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(empty, DefaultGenConfig(10)); err == nil {
		t.Error("empty ontology must fail")
	}
}

func TestNewCorpusValidation(t *testing.T) {
	if _, err := NewCorpus([]*Paper{{ID: 5}}); err == nil {
		t.Error("non-dense IDs must fail")
	}
	if _, err := NewCorpus([]*Paper{nil}); err == nil {
		t.Error("nil paper must fail")
	}
	if _, err := NewCorpus([]*Paper{{ID: 0, References: []PaperID{7}}}); err == nil {
		t.Error("dangling reference must fail")
	}
	if _, err := NewCorpus([]*Paper{{ID: 0, References: []PaperID{0}}}); err == nil {
		t.Error("self citation must fail")
	}
}

func TestCitedByIndex(t *testing.T) {
	papers := []*Paper{
		{ID: 0}, {ID: 1, References: []PaperID{0}}, {ID: 2, References: []PaperID{0, 1}},
	}
	c, err := NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CitedBy(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("CitedBy(0) = %v", got)
	}
	if got := c.CitedBy(2); len(got) != 0 {
		t.Fatalf("CitedBy(2) = %v", got)
	}
	if c.Paper(PaperID(99)) != nil || c.Paper(PaperID(-1)) != nil {
		t.Fatal("out-of-range Paper must return nil")
	}
}

func TestSectionText(t *testing.T) {
	p := &Paper{Title: "T", Abstract: "A", Body: "B", IndexTerms: []string{"x", "y"}}
	if p.SectionText(SecTitle) != "T" || p.SectionText(SecAbstract) != "A" ||
		p.SectionText(SecBody) != "B" || p.SectionText(SecIndexTerms) != "x; y" {
		t.Fatal("SectionText mismatch")
	}
	if Section(99).String() == "" {
		t.Fatal("unknown section must stringify")
	}
	if SecTitle.String() != "title" {
		t.Fatal("section name mismatch")
	}
}
