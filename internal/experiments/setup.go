// Package experiments regenerates every table and figure of the paper's
// evaluation section (Figures 5.1–5.7), the headline output-size/accuracy
// claim, and the ablations DESIGN.md calls out. Both cmd/experiments and the
// root benchmark suite drive it.
package experiments

import (
	"fmt"
	"io"

	"ctxsearch"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/eval"
	"ctxsearch/internal/prestige"
	"ctxsearch/internal/search"
)

// Scale selects the experiment size.
type Scale struct {
	// Papers and Terms size the synthetic corpus and ontology.
	Papers, Terms int
	// Queries is the evaluation query count (the paper used ~120).
	Queries int
	// Seed drives all generators.
	Seed int64
}

// DefaultScale is the full experiment scale used by cmd/experiments.
func DefaultScale() Scale { return Scale{Papers: 2000, Terms: 400, Queries: 120, Seed: 1} }

// BenchScale is a reduced scale for the benchmark suite.
func BenchScale() Scale { return Scale{Papers: 400, Terms: 90, Queries: 25, Seed: 1} }

// Setup holds everything the figures need, built once: the system, both
// context paper sets, all five score-function×context-set combinations the
// paper evaluates, the evaluation queries and their AC-answer sets.
type Setup struct {
	Scale Scale
	Sys   *ctxsearch.System

	TextSet    *ctxsearch.ContextSet
	PatternSet *ctxsearch.ContextSet

	// Scores on the text-based context paper set (Figure 5.1): text and
	// citation functions.
	TextOnTextSet, CitOnTextSet ctxsearch.Scores
	// Scores on the pattern-based context paper set (Figures 5.2–5.7):
	// pattern, citation, and text (where representatives exist).
	PatOnPatSet, CitOnPatSet, TextOnPatSet ctxsearch.Scores

	Queries []eval.Query
	// ACAnswers[i] is the AC-answer set of Queries[i]; TrueAnswers[i] the
	// generator ground truth.
	ACAnswers, TrueAnswers []map[ctxsearch.PaperID]bool
}

// NewSetup builds the full experimental state. Progress lines go to log
// when non-nil (construction takes noticeable time at full scale).
func NewSetup(scale Scale, log io.Writer) (*Setup, error) {
	progress := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format+"\n", args...)
		}
	}
	cfg := ctxsearch.DefaultConfig()
	cfg.Seed = scale.Seed
	cfg.Papers = scale.Papers
	cfg.OntologyTerms = scale.Terms

	progress("generating system: %d papers, %d terms, seed %d", scale.Papers, scale.Terms, scale.Seed)
	sys, err := ctxsearch.NewSyntheticSystem(cfg)
	if err != nil {
		return nil, err
	}
	s := &Setup{Scale: scale, Sys: sys}

	progress("building text-based context paper set")
	s.TextSet = sys.BuildTextContextSet()
	progress("building pattern-based context paper set")
	s.PatternSet = sys.BuildPatternContextSet()

	progress("scoring text-based set: text function")
	s.TextOnTextSet = sys.ScoreText(s.TextSet)
	progress("scoring text-based set: citation function")
	s.CitOnTextSet = sys.ScoreCitation(s.TextSet)

	progress("scoring pattern-based set: pattern function")
	s.PatOnPatSet = sys.ScorePattern(s.PatternSet)
	progress("scoring pattern-based set: citation function")
	s.CitOnPatSet = sys.ScoreCitation(s.PatternSet)
	progress("scoring pattern-based set: text function (text-set representatives)")
	s.TextOnPatSet = s.scoreTextOnPatternSet()

	progress("generating %d evaluation queries", scale.Queries)
	qcfg := eval.DefaultQueryGenConfig()
	qcfg.Seed = scale.Seed + 99
	qcfg.NumQueries = scale.Queries
	s.Queries = eval.GenerateQueries(sys.Ontology, sys.Corpus, qcfg)

	progress("building AC-answer sets")
	// The citation scorer was already built above (ScoreCitation); reuse its
	// graph instead of re-extracting the citation edges from the corpus.
	builder := eval.NewACBuilder(sys.Index(), sys.CitationScorer().Graph(), eval.DefaultACConfig())
	s.ACAnswers = make([]map[ctxsearch.PaperID]bool, len(s.Queries))
	s.TrueAnswers = make([]map[ctxsearch.PaperID]bool, len(s.Queries))
	for i, q := range s.Queries {
		s.ACAnswers[i] = builder.Build(q.Text)
		s.TrueAnswers[i] = eval.TrueAnswerSet(sys.Ontology, sys.Corpus, q.Target)
	}
	progress("setup complete: %d text-set contexts, %d pattern-set contexts, %d queries",
		len(s.TextSet.Contexts()), len(s.PatternSet.Contexts()), len(s.Queries))
	return s, nil
}

// scoreTextOnPatternSet assigns text scores to pattern-set contexts using
// the representatives defined by the text-based set, exactly as §4
// describes ("text-based scores were assigned to only [the] contexts that
// contain at least one representative paper").
func (s *Setup) scoreTextOnPatternSet() ctxsearch.Scores {
	// Clone the system's cached text scorer: the citation graph and
	// co-author index it embeds are shared, not rebuilt.
	scorer := s.Sys.TextScorer().WithRepSource(s.TextSet)
	workers := s.Sys.Config().Workers
	scores := prestige.ScoreAllParallel(scorer, s.PatternSet, s.Sys.MinContextSize(), workers)
	return prestige.PropagateMax(s.Sys.Ontology, scores)
}

// ContextSizes returns the per-context sizes of a context set (used as the
// top-k% base).
func ContextSizes(cs *ctxsearch.ContextSet) map[ctxsearch.TermID]int {
	sizes := make(map[ctxsearch.TermID]int)
	for _, ctx := range cs.Contexts() {
		sizes[ctx] = cs.Size(ctx)
	}
	return sizes
}

// engineFor assembles a search engine over one score-function×context-set
// combination.
func (s *Setup) engineFor(cs *ctxsearch.ContextSet, scores ctxsearch.Scores) *search.Engine {
	return s.Sys.Engine(cs, scores)
}

// answerFor returns the evaluation answer set of query i: the AC set when
// non-empty, otherwise the generator ground truth (the paper manually
// verified AC sets; our ground truth backstops degenerate ones).
func (s *Setup) answerFor(i int) map[corpus.PaperID]bool {
	if len(s.ACAnswers[i]) > 0 {
		return s.ACAnswers[i]
	}
	return s.TrueAnswers[i]
}
