package experiments

import (
	"ctxsearch"
	"ctxsearch/internal/cluster"
	"ctxsearch/internal/search"
)

// ClusteringComparison measures the §6 contrast between automatically
// derived contexts (k-means over result snippets, Ferragina & Gulli) and
// the ontology-based contexts: for each query, the top keyword results are
// grouped both ways and scored for purity against the generator's
// ground-truth primary topics.
type ClusteringComparison struct {
	// Queries evaluated (those with enough results to cluster).
	Queries int
	// MeanClusterPurity is the k-means grouping's mean purity.
	MeanClusterPurity float64
	// MeanContextPurity is the purity of grouping the same results by
	// their best selected ontology context.
	MeanContextPurity float64
	// MeanClusters and MeanContexts are the mean group counts.
	MeanClusters, MeanContexts float64
}

// ClusteringVsContexts runs the comparison over the evaluation queries,
// clustering each query's top keyword results.
func (s *Setup) ClusteringVsContexts() ClusteringComparison {
	const topN = 60
	engine := s.engineFor(s.TextSet, s.TextOnTextSet)
	a := s.Sys.Analyzer()
	labels := map[ctxsearch.PaperID]string{}
	for _, p := range s.Sys.Corpus.Papers() {
		labels[p.ID] = string(p.Topics[0])
	}
	var out ClusteringComparison
	var sumCP, sumXP, sumNC, sumNX float64
	for _, q := range s.Queries {
		hits := search.BaselineTFIDF(s.Sys.Index(), q.Text, 0, topN)
		if len(hits) < 10 {
			continue
		}
		docs := make([]ctxsearch.PaperID, len(hits))
		for i, h := range hits {
			docs[i] = h.Doc
		}
		clusters, err := cluster.KMeans(a, docs, cluster.Config{})
		if err != nil {
			continue
		}
		var clusterGroups [][]ctxsearch.PaperID
		for _, c := range clusters {
			clusterGroups = append(clusterGroups, c.Docs)
		}

		// Ontology grouping: each result goes to the best selected context
		// containing it (results in no selected context form one residual
		// group, mirroring how a context UI would bucket them).
		sel := engine.SelectContexts(q.Text, search.Options{})
		byCtx := map[ctxsearch.TermID][]ctxsearch.PaperID{}
		var residual []ctxsearch.PaperID
		for _, d := range docs {
			placed := false
			for _, cs := range sel {
				if s.TextSet.Contains(cs.Context, d) {
					byCtx[cs.Context] = append(byCtx[cs.Context], d)
					placed = true
					break
				}
			}
			if !placed {
				residual = append(residual, d)
			}
		}
		var ctxGroups [][]ctxsearch.PaperID
		for _, g := range byCtx {
			ctxGroups = append(ctxGroups, g)
		}
		if len(residual) > 0 {
			ctxGroups = append(ctxGroups, residual)
		}

		sumCP += cluster.Purity(clusterGroups, labels)
		sumXP += cluster.Purity(ctxGroups, labels)
		sumNC += float64(len(clusterGroups))
		sumNX += float64(len(ctxGroups))
		out.Queries++
	}
	if out.Queries > 0 {
		out.MeanClusterPurity = sumCP / float64(out.Queries)
		out.MeanContextPurity = sumXP / float64(out.Queries)
		out.MeanClusters = sumNC / float64(out.Queries)
		out.MeanContexts = sumNX / float64(out.Queries)
	}
	return out
}
