package experiments

import (
	"fmt"
	"io"

	"ctxsearch"
	"ctxsearch/internal/eval"
	"ctxsearch/internal/search"
)

// TRECExport writes classic TREC run files — one per score-function ×
// context-set combination the paper evaluates — plus the qrels derived from
// the AC-answer sets, so external IR tooling (trec_eval) can score this
// system. The open function receives a file name and returns its writer;
// the caller owns creation and closing.
func (s *Setup) TRECExport(open func(name string) (io.WriteCloser, error)) error {
	runs := []struct {
		name   string
		cs     *ctxsearch.ContextSet
		scores ctxsearch.Scores
	}{
		{"text_on_textset", s.TextSet, s.TextOnTextSet},
		{"citation_on_textset", s.TextSet, s.CitOnTextSet},
		{"pattern_on_patternset", s.PatternSet, s.PatOnPatSet},
		{"citation_on_patternset", s.PatternSet, s.CitOnPatSet},
	}
	for _, run := range runs {
		w, err := open("run_" + run.name + ".txt")
		if err != nil {
			return err
		}
		engine := s.engineFor(run.cs, run.scores)
		for qi, q := range s.Queries {
			qid := fmt.Sprintf("q%03d", qi+1)
			results := engine.Search(q.Text, search.Options{Limit: 100})
			if err := eval.WriteTRECRun(w, qid, results, run.name); err != nil {
				w.Close()
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	w, err := open("qrels.txt")
	if err != nil {
		return err
	}
	for qi := range s.Queries {
		qid := fmt.Sprintf("q%03d", qi+1)
		if err := eval.WriteTRECQrels(w, qid, s.answerFor(qi)); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}
