package experiments

import (
	"fmt"
	"sort"
	"strings"

	"ctxsearch"
	"ctxsearch/internal/eval"
	"ctxsearch/internal/search"
)

// Thresholds swept by the precision figures, matching the paper's x-axis.
var PrecisionThresholds = []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5}

// KPercents are the top-k% values of Figure 5.3.
var KPercents = []float64{0.05, 0.10, 0.15, 0.20}

// Levels are the context levels the paper slices on (root = level 1).
var Levels = []int{3, 5, 7}

// PrecisionFigure is the data behind Figures 5.1 and 5.2: per score
// function, the average and median precision at each relevancy threshold.
type PrecisionFigure struct {
	Name   string
	Series []PrecisionSeries
}

// PrecisionSeries is one score function's curve.
type PrecisionSeries struct {
	Function string
	Points   []eval.PrecisionPoint
}

// Fig51 reproduces Figure 5.1: precision of the text-based vs the
// citation-based score function on the text-based context paper set,
// against AC-answer sets, across relevancy thresholds.
func (s *Setup) Fig51() PrecisionFigure {
	return s.precisionFigure("Fig 5.1 precision, text-based context paper set", s.TextSet,
		map[string]ctxsearch.Scores{"text": s.TextOnTextSet, "citation": s.CitOnTextSet})
}

// Fig52 reproduces Figure 5.2: pattern-based vs citation-based precision on
// the pattern-based context paper set.
func (s *Setup) Fig52() PrecisionFigure {
	return s.precisionFigure("Fig 5.2 precision, pattern-based context paper set", s.PatternSet,
		map[string]ctxsearch.Scores{"pattern": s.PatOnPatSet, "citation": s.CitOnPatSet})
}

func (s *Setup) precisionFigure(name string, cs *ctxsearch.ContextSet, funcs map[string]ctxsearch.Scores) PrecisionFigure {
	fig := PrecisionFigure{Name: name}
	answers := make([]map[ctxsearch.PaperID]bool, len(s.Queries))
	for i := range s.Queries {
		answers[i] = s.answerFor(i)
	}
	fnNames := make([]string, 0, len(funcs))
	for fn := range funcs {
		fnNames = append(fnNames, fn)
	}
	sort.Strings(fnNames)
	for _, fn := range fnNames {
		engine := s.engineFor(cs, funcs[fn])
		pts := eval.PrecisionCurve(engine, s.Queries, answers, PrecisionThresholds)
		fig.Series = append(fig.Series, PrecisionSeries{Function: fn, Points: pts})
	}
	return fig
}

// OverlapFigure is the data behind Figure 5.3: for each score-function
// pair, the average top-k% overlapping ratio per context level.
type OverlapFigure struct {
	Name string
	// Pairs → level → one value per KPercents entry.
	Pairs map[string]map[int][]float64
}

// Fig53 reproduces Figure 5.3 on the pattern-based context paper set (the
// text-based set lacks pattern scores, exactly as in the paper).
func (s *Setup) Fig53() OverlapFigure {
	sizes := ContextSizes(s.PatternSet)
	onto := s.Sys.Ontology
	return OverlapFigure{
		Name: "Fig 5.3 avg top-k% overlapping ratio per context level",
		Pairs: map[string]map[int][]float64{
			"text-citation":    eval.OverlapByLevel(onto, s.TextOnPatSet, s.CitOnPatSet, sizes, Levels, KPercents),
			"text-pattern":     eval.OverlapByLevel(onto, s.TextOnPatSet, s.PatOnPatSet, sizes, Levels, KPercents),
			"citation-pattern": eval.OverlapByLevel(onto, s.CitOnPatSet, s.PatOnPatSet, sizes, Levels, KPercents),
		},
	}
}

// SeparabilityFigure is the data behind Figures 5.4–5.7: % of contexts per
// separability-SD bin, per series.
type SeparabilityFigure struct {
	Name string
	// BinEdges are the lower edges of the SD bins.
	BinEdges []float64
	// Series name → percentages per bin.
	Series map[string][]float64
	// MeanSD per series (summary diagnostic, not in the paper's plots).
	MeanSD map[string]float64
}

func sdBinEdges(cfg eval.SeparabilityConfig) []float64 {
	var edges []float64
	for e := 0.0; e < cfg.SDMax; e += cfg.SDBinWidth {
		edges = append(edges, e)
	}
	return edges
}

// Fig54 reproduces Figure 5.4: the overall separability histograms of both
// context paper sets.
func (s *Setup) Fig54() (textSet, patternSet SeparabilityFigure) {
	cfg := eval.DefaultSeparabilityConfig()
	mk := func(name string, series map[string]ctxsearch.Scores) SeparabilityFigure {
		fig := SeparabilityFigure{Name: name, BinEdges: sdBinEdges(cfg), Series: map[string][]float64{}, MeanSD: map[string]float64{}}
		for fn, scores := range series {
			sds := eval.SeparabilitySDs(scores, scores.Contexts(), cfg)
			fig.Series[fn] = eval.SeparabilityHistogram(sds, cfg)
			fig.MeanSD[fn] = mean(sds)
		}
		return fig
	}
	textSet = mk("Fig 5.4a separability, text-based context paper set",
		map[string]ctxsearch.Scores{"text": s.TextOnTextSet, "citation": s.CitOnTextSet})
	patternSet = mk("Fig 5.4b separability, pattern-based context paper set",
		map[string]ctxsearch.Scores{"text": s.TextOnPatSet, "citation": s.CitOnPatSet, "pattern": s.PatOnPatSet})
	return textSet, patternSet
}

// perLevelSeparability renders Figures 5.5–5.7: one function's SD histogram
// per context level.
func (s *Setup) perLevelSeparability(name string, scores ctxsearch.Scores) SeparabilityFigure {
	cfg := eval.DefaultSeparabilityConfig()
	fig := SeparabilityFigure{Name: name, BinEdges: sdBinEdges(cfg), Series: map[string][]float64{}, MeanSD: map[string]float64{}}
	for _, level := range Levels {
		ctxs := eval.ContextsAtLevel(s.Sys.Ontology, scores, level)
		sds := eval.SeparabilitySDs(scores, ctxs, cfg)
		key := fmt.Sprintf("level %d", level)
		fig.Series[key] = eval.SeparabilityHistogram(sds, cfg)
		fig.MeanSD[key] = mean(sds)
	}
	return fig
}

// Fig55 reproduces Figure 5.5 (text-based scores per level, text set).
func (s *Setup) Fig55() SeparabilityFigure {
	return s.perLevelSeparability("Fig 5.5 text-based score separability per level", s.TextOnTextSet)
}

// Fig56 reproduces Figure 5.6 (pattern-based scores per level, pattern set).
func (s *Setup) Fig56() SeparabilityFigure {
	return s.perLevelSeparability("Fig 5.6 pattern-based score separability per level", s.PatOnPatSet)
}

// Fig57 reproduces Figure 5.7 (citation-based scores per level, pattern set).
func (s *Setup) Fig57() SeparabilityFigure {
	return s.perLevelSeparability("Fig 5.7 citation-based score separability per level", s.CitOnPatSet)
}

// ClaimResult quantifies the paper's §1 headline claim versus the plain
// keyword baseline: context-based search reduces output size (up to 70% in
// [2]) and improves accuracy (up to 50%).
type ClaimResult struct {
	// AvgOutputReduction is mean (1 − |ctx results| / |baseline results|).
	AvgOutputReduction float64
	// MaxOutputReduction is the best per-query reduction.
	MaxOutputReduction float64
	// CtxPrecision is the context engine's mean top-20 precision.
	CtxPrecision float64
	// PubMedPrecision is the paper's actual comparator: PubMed-style
	// keyword matching listed by descending PMID, no relevance ranking.
	PubMedPrecision float64
	// TFIDFPrecision is the stronger modern baseline (whole-corpus TF-IDF
	// ranking), reported for honesty.
	TFIDFPrecision float64
	// AccuracyGain = CtxPrecision/PubMedPrecision − 1 (the paper's claim is
	// against PubMed).
	AccuracyGain float64
	// Queries counted (those with non-empty baseline output).
	Queries int
}

// ClaimBaseline reproduces the headline claim using the text-scored
// text-based context set against the whole-corpus TF-IDF baseline, scored
// on the AC-answer sets (the paper's methodology; generator ground truth
// backstops queries whose AC set is empty).
func (s *Setup) ClaimBaseline() ClaimResult {
	engine := s.engineFor(s.TextSet, s.TextOnTextSet)
	var res ClaimResult
	var sumRed float64
	const topN = 20
	for i, q := range s.Queries {
		baseline := search.BaselineTFIDF(s.Sys.Index(), q.Text, 0, 0)
		if len(baseline) == 0 {
			continue
		}
		pubmed := search.BaselinePubMed(s.Sys.Index(), q.Text)
		ctxResults := engine.Search(q.Text, search.Options{})
		red := 1 - float64(len(ctxResults))/float64(len(baseline))
		if red < 0 {
			red = 0
		}
		sumRed += red
		if red > res.MaxOutputReduction {
			res.MaxOutputReduction = red
		}
		truth := s.answerFor(i)
		var ctxTop, tfidfTop, pubmedTop []ctxsearch.PaperID
		for j, r := range ctxResults {
			if j >= topN {
				break
			}
			ctxTop = append(ctxTop, r.Doc)
		}
		for j, h := range baseline {
			if j >= topN {
				break
			}
			tfidfTop = append(tfidfTop, h.Doc)
		}
		for j, id := range pubmed {
			if j >= topN {
				break
			}
			pubmedTop = append(pubmedTop, id)
		}
		res.CtxPrecision += eval.Precision(ctxTop, truth)
		res.TFIDFPrecision += eval.Precision(tfidfTop, truth)
		res.PubMedPrecision += eval.Precision(pubmedTop, truth)
		res.Queries++
	}
	if res.Queries > 0 {
		res.AvgOutputReduction = sumRed / float64(res.Queries)
		res.CtxPrecision /= float64(res.Queries)
		res.TFIDFPrecision /= float64(res.Queries)
		res.PubMedPrecision /= float64(res.Queries)
	}
	if res.PubMedPrecision > 0 {
		res.AccuracyGain = res.CtxPrecision/res.PubMedPrecision - 1
	}
	return res
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Summary condenses a precision figure into the comparison the paper
// states in prose: the average precision advantage of the first function
// over the second at moderate thresholds (0.1–0.3).
func (f PrecisionFigure) Summary() string {
	if len(f.Series) != 2 {
		return ""
	}
	adv := 0.0
	n := 0
	for i, pt := range f.Series[0].Points {
		if pt.Threshold >= 0.1 && pt.Threshold <= 0.3 {
			adv += pt.Avg - f.Series[1].Points[i].Avg
			n++
		}
	}
	if n > 0 {
		adv /= float64(n)
	}
	return fmt.Sprintf("%s minus %s avg precision at t∈[0.1,0.3]: %+.3f",
		f.Series[0].Function, f.Series[1].Function, adv)
}

// FunctionNames lists the series in order.
func (f PrecisionFigure) FunctionNames() []string {
	var out []string
	for _, s := range f.Series {
		out = append(out, s.Function)
	}
	return out
}

// sortedKeys returns map keys sorted (render helper).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sprintRow formats floats compactly.
func sprintRow(vals []float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%6.3f", v)
	}
	return strings.Join(parts, " ")
}
