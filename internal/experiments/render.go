package experiments

import (
	"fmt"
	"io"
	"sort"
)

// RenderPrecision writes a precision figure as an ASCII table: one block
// per score function, rows = thresholds.
func RenderPrecision(w io.Writer, fig PrecisionFigure) {
	fmt.Fprintf(w, "== %s ==\n", fig.Name)
	for _, series := range fig.Series {
		fmt.Fprintf(w, "-- %s scores --\n", series.Function)
		fmt.Fprintf(w, "%10s %8s %8s %6s\n", "threshold", "avg", "median", "empty")
		for _, pt := range series.Points {
			fmt.Fprintf(w, "%10.2f %8.3f %8.3f %6d\n", pt.Threshold, pt.Avg, pt.Median, pt.Empty)
		}
	}
	if s := fig.Summary(); s != "" {
		fmt.Fprintf(w, "summary: %s\n", s)
	}
	fmt.Fprintln(w)
}

// RenderOverlap writes Figure 5.3's three panels.
func RenderOverlap(w io.Writer, fig OverlapFigure) {
	fmt.Fprintf(w, "== %s ==\n", fig.Name)
	fmt.Fprintf(w, "k%% columns: ")
	for _, k := range KPercents {
		fmt.Fprintf(w, "%6.0f%%", 100*k)
	}
	fmt.Fprintln(w)
	for _, pair := range sortedKeys(fig.Pairs) {
		fmt.Fprintf(w, "-- %s --\n", pair)
		byLevel := fig.Pairs[pair]
		levels := make([]int, 0, len(byLevel))
		for l := range byLevel {
			levels = append(levels, l)
		}
		sort.Ints(levels)
		for _, l := range levels {
			fmt.Fprintf(w, "level %d: %s\n", l, sprintRow(byLevel[l]))
		}
	}
	fmt.Fprintln(w)
}

// RenderSeparability writes a separability histogram figure.
func RenderSeparability(w io.Writer, fig SeparabilityFigure) {
	fmt.Fprintf(w, "== %s ==\n", fig.Name)
	fmt.Fprintf(w, "%-12s", "SD bin ≥")
	for _, e := range fig.BinEdges {
		fmt.Fprintf(w, "%7.0f", e)
	}
	fmt.Fprintln(w)
	for _, name := range sortedKeys(fig.Series) {
		fmt.Fprintf(w, "%-12s", name)
		for _, v := range fig.Series[name] {
			fmt.Fprintf(w, "%6.1f%%", v)
		}
		fmt.Fprintf(w, "   (mean SD %.1f)\n", fig.MeanSD[name])
	}
	fmt.Fprintln(w)
}

// RenderClaim writes the §1 headline-claim comparison.
func RenderClaim(w io.Writer, r ClaimResult) {
	fmt.Fprintf(w, "== Claim §1: context-based search vs plain keyword baseline ==\n")
	fmt.Fprintf(w, "queries evaluated:        %d\n", r.Queries)
	fmt.Fprintf(w, "avg output reduction:     %5.1f%%\n", 100*r.AvgOutputReduction)
	fmt.Fprintf(w, "max output reduction:     %5.1f%% (paper: up to 70%%)\n", 100*r.MaxOutputReduction)
	fmt.Fprintf(w, "context top-20 precision: %5.3f\n", r.CtxPrecision)
	fmt.Fprintf(w, "PubMed-style top-20:      %5.3f (paper's comparator: unranked listing)\n", r.PubMedPrecision)
	fmt.Fprintf(w, "TF-IDF top-20:            %5.3f (stronger modern baseline)\n", r.TFIDFPrecision)
	fmt.Fprintf(w, "accuracy gain vs PubMed:  %+5.1f%% (paper: up to 50%%)\n\n", 100*r.AccuracyGain)
}

// RenderTeleport writes ablation A1.
func RenderTeleport(w io.Writer, r TeleportAblation) {
	fmt.Fprintf(w, "== Ablation A1: PageRank teleport E1 vs E2 ==\n")
	fmt.Fprintf(w, "contexts:           %d\n", r.Contexts)
	fmt.Fprintf(w, "mean Spearman ρ:    %.3f (paper treats E1/E2 as interchangeable)\n", r.MeanSpearman)
	fmt.Fprintf(w, "mean SD(E1)−SD(E2): %+.2f\n\n", r.MeanSDDiff)
}

// RenderHITS writes ablation A2.
func RenderHITS(w io.Writer, r HITSAblation) {
	fmt.Fprintf(w, "== Ablation A2: HITS authority vs PageRank correlation ==\n")
	fmt.Fprintf(w, "global Spearman ρ:        %.3f\n", r.GlobalSpearman)
	fmt.Fprintf(w, "mean per-context ρ:       %.3f over %d contexts ([11]: highly correlated)\n\n",
		r.MeanContextSpearman, r.Contexts)
}

// RenderCutoff writes ablation A3.
func RenderCutoff(w io.Writer, r CutoffAblation) {
	fmt.Fprintf(w, "== Ablation A3: small-context exclusion sweep ==\n")
	fmt.Fprintf(w, "%8s %10s %14s\n", "cutoff", "contexts", "mean cit. SD")
	for i, c := range r.Cutoffs {
		fmt.Fprintf(w, "%8d %10d %14.2f\n", c, r.Contexts[i], r.MeanCitSD[i])
	}
	fmt.Fprintln(w)
}

// RenderCrossContext writes extension E1's measurements.
func RenderCrossContext(w io.Writer, r CrossContextAblation) {
	fmt.Fprintf(w, "== Extension E1 (§7): weighted cross-context citations ==\n")
	fmt.Fprintf(w, "contexts:            %d\n", r.Contexts)
	fmt.Fprintf(w, "mean |score shift|:  %.4f\n", r.MeanScoreShift)
	fmt.Fprintf(w, "mean SD base → ext:  %.2f → %.2f\n\n", r.MeanSDBase, r.MeanSDExt)
}

// RenderClustering writes the §6 clustering-vs-contexts comparison.
func RenderClustering(w io.Writer, r ClusteringComparison) {
	fmt.Fprintf(w, "== Related work (§6): automatic result clustering vs ontology contexts ==\n")
	fmt.Fprintf(w, "queries:               %d\n", r.Queries)
	fmt.Fprintf(w, "k-means purity:        %.3f over %.1f clusters/query\n", r.MeanClusterPurity, r.MeanClusters)
	fmt.Fprintf(w, "ontology-ctx purity:   %.3f over %.1f groups/query\n", r.MeanContextPurity, r.MeanContexts)
	fmt.Fprintf(w, "(the paper argues constructed clusters are less meaningful than\n")
	fmt.Fprintf(w, " human-created ontology contexts; purity quantifies the grouping only)\n\n")
}

// RenderScaling writes the corpus-size sweep.
func RenderScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintf(w, "== Scaling sweep: key findings vs corpus size ==\n")
	fmt.Fprintf(w, "%8s %7s %12s %9s %9s %9s %10s\n",
		"papers", "terms", "text−cit", "sep text", "sep patt", "sep cit", "reduction")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %7d %+12.3f %9.1f %9.1f %9.1f %9.1f%%\n",
			r.Papers, r.Terms, r.TextMinusCitation, r.SepText, r.SepPattern, r.SepCitation,
			100*r.OutputReduction)
	}
	fmt.Fprintln(w)
}

// RenderSparseness writes the per-level sparseness diagnostic.
func RenderSparseness(w io.Writer, byLevel map[int]SparsenessRow) {
	fmt.Fprintf(w, "== Diagnostic: citation-graph sparseness per context level ==\n")
	fmt.Fprintf(w, "%8s %16s %20s\n", "level", "edge sparseness", "isolated papers")
	levels := make([]int, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	for _, l := range levels {
		r := byLevel[l]
		fmt.Fprintf(w, "%8d %16.4f %19.1f%%\n", l, r.EdgeSparseness, 100*r.IsolationFraction)
	}
	fmt.Fprintln(w)
}
