package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrecisionCSV exports a precision figure as CSV with columns
// function,threshold,avg,median,empty.
func WritePrecisionCSV(w io.Writer, fig PrecisionFigure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"function", "threshold", "avg_precision", "median_precision", "empty_queries"}); err != nil {
		return err
	}
	for _, series := range fig.Series {
		for _, pt := range series.Points {
			rec := []string{
				series.Function,
				f64(pt.Threshold), f64(pt.Avg), f64(pt.Median),
				strconv.Itoa(pt.Empty),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteOverlapCSV exports Figure 5.3 as CSV with columns
// pair,level,k_percent,overlap.
func WriteOverlapCSV(w io.Writer, fig OverlapFigure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pair", "level", "k_percent", "overlap"}); err != nil {
		return err
	}
	for _, pair := range sortedKeys(fig.Pairs) {
		byLevel := fig.Pairs[pair]
		levels := make([]int, 0, len(byLevel))
		for l := range byLevel {
			levels = append(levels, l)
		}
		sort.Ints(levels)
		for _, l := range levels {
			for ki, v := range byLevel[l] {
				rec := []string{pair, strconv.Itoa(l), f64(100 * KPercents[ki]), f64(v)}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeparabilityCSV exports a separability figure as CSV with columns
// series,sd_bin_low,percent_contexts.
func WriteSeparabilityCSV(w io.Writer, fig SeparabilityFigure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "sd_bin_low", "percent_contexts"}); err != nil {
		return err
	}
	for _, name := range sortedKeys(fig.Series) {
		for i, v := range fig.Series[name] {
			rec := []string{name, f64(fig.BinEdges[i]), f64(v)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func f64(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// RenderGoPubMed writes the related-work comparison.
func RenderGoPubMed(w io.Writer, r GoPubMedComparison) {
	fmt.Fprintf(w, "== Related work (§6): GoPubMed-style categorisation vs context paper sets ==\n")
	fmt.Fprintf(w, "%-22s %10s %10s %12s %10s\n", "method", "coverage", "contexts", "precision", "recall")
	fmt.Fprintf(w, "%-22s %9.1f%% %10d %12.3f %10.3f\n", "gopubmed (abstracts)", 100*r.Coverage, r.Contexts, r.GoPubMedPrecision, r.GoPubMedRecall)
	fmt.Fprintf(w, "%-22s %9.1f%% %10d %12.3f %10.3f\n", "text-based set", 100*r.TextSetCoverage, r.TextSetContexts, r.TextSetPrecision, r.TextSetRecall)
	fmt.Fprintf(w, "%-22s %9.1f%% %10d %12s %10s\n", "pattern-based set", 100*r.PatternSetCoverage, r.PatternSetContexts, "-", "-")
	fmt.Fprintf(w, "(paper: GoPubMed covers only 78%% of PubMed abstracts and assigns no scores)\n\n")
}
