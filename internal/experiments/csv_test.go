package experiments

import (
	"bytes"
	"encoding/csv"
	"io"
	"strings"
	"testing"
)

func TestWritePrecisionCSV(t *testing.T) {
	s := testSetup(t)
	fig := s.Fig51()
	var buf bytes.Buffer
	if err := WritePrecisionCSV(&buf, fig); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 functions × len(thresholds) rows.
	want := 1 + 2*len(PrecisionThresholds)
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	if strings.Join(rows[0], ",") != "function,threshold,avg_precision,median_precision,empty_queries" {
		t.Fatalf("header = %v", rows[0])
	}
}

func TestWriteOverlapCSV(t *testing.T) {
	s := testSetup(t)
	var buf bytes.Buffer
	if err := WriteOverlapCSV(&buf, s.Fig53()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 3 pairs × 3 levels × 4 k-values.
	if len(rows) != 1+3*3*4 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestWriteSeparabilityCSV(t *testing.T) {
	s := testSetup(t)
	var buf bytes.Buffer
	if err := WriteSeparabilityCSV(&buf, s.Fig55()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 3 levels × 8 bins.
	if len(rows) != 1+3*8 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestGoPubMedComparison(t *testing.T) {
	s := testSetup(t)
	r := s.GoPubMedVsContextSets()
	for name, v := range map[string]float64{
		"coverage":     r.Coverage,
		"text cover":   r.TextSetCoverage,
		"pat cover":    r.PatternSetCoverage,
		"gp precision": r.GoPubMedPrecision,
		"gp recall":    r.GoPubMedRecall,
		"ts precision": r.TextSetPrecision,
		"ts recall":    r.TextSetRecall,
	} {
		if v < 0 || v > 1 {
			t.Fatalf("%s = %v out of range", name, v)
		}
	}
	if r.Contexts == 0 {
		t.Fatal("GoPubMed-style matching found no contexts at all")
	}
	// GoPubMed's abstract-only full-phrase matching must cover less of the
	// corpus than the text-based context set.
	if r.Coverage > r.TextSetCoverage {
		t.Fatalf("GoPubMed coverage %.2f exceeds text set %.2f", r.Coverage, r.TextSetCoverage)
	}
	var buf bytes.Buffer
	RenderGoPubMed(&buf, r)
	if !strings.Contains(buf.String(), "gopubmed") {
		t.Fatal("render incomplete")
	}
}

func TestTRECExport(t *testing.T) {
	s := testSetup(t)
	files := map[string]*bytes.Buffer{}
	err := s.TRECExport(func(name string) (io.WriteCloser, error) {
		buf := &bytes.Buffer{}
		files[name] = buf
		return nopCloser{buf}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"run_text_on_textset.txt", "run_citation_on_textset.txt",
		"run_pattern_on_patternset.txt", "run_citation_on_patternset.txt", "qrels.txt"} {
		buf, ok := files[want]
		if !ok {
			t.Fatalf("missing %s", want)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s is empty", want)
		}
	}
	// Run lines have the 6-field TREC shape.
	line := strings.SplitN(files["run_text_on_textset.txt"].String(), "\n", 2)[0]
	if fields := strings.Fields(line); len(fields) != 6 || fields[1] != "Q0" {
		t.Fatalf("bad run line %q", line)
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func TestScalingSweepSmall(t *testing.T) {
	rows, err := ScalingSweep([]int{150}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Papers != 150 || r.Terms < 30 {
		t.Fatalf("row = %+v", r)
	}
	if r.SepText <= 0 || r.SepPattern <= 0 || r.SepCitation <= 0 {
		t.Fatalf("separability SDs missing: %+v", r)
	}
	var buf bytes.Buffer
	RenderScaling(&buf, rows)
	if !strings.Contains(buf.String(), "Scaling sweep") {
		t.Fatal("render incomplete")
	}
}

func TestClusteringVsContexts(t *testing.T) {
	s := testSetup(t)
	r := s.ClusteringVsContexts()
	if r.Queries == 0 {
		t.Skip("no queries had enough results to cluster")
	}
	if r.MeanClusterPurity <= 0 || r.MeanClusterPurity > 1 {
		t.Fatalf("cluster purity = %v", r.MeanClusterPurity)
	}
	if r.MeanContextPurity <= 0 || r.MeanContextPurity > 1 {
		t.Fatalf("context purity = %v", r.MeanContextPurity)
	}
	var buf bytes.Buffer
	RenderClustering(&buf, r)
	if !strings.Contains(buf.String(), "k-means purity") {
		t.Fatal("render incomplete")
	}
}
