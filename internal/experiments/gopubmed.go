package experiments

import (
	"ctxsearch"
	"ctxsearch/internal/contextset"
)

// GoPubMedComparison measures the §6 related-work system against this
// paper's context paper sets: GoPubMed categorises a paper under a GO term
// only when the term's words appear in the paper's abstract, covers a
// limited fraction of the corpus (the paper reports 78% of PubMed), and
// assigns no prestige scores.
type GoPubMedComparison struct {
	// Coverage is the fraction of papers GoPubMed-style matching places in
	// at least one context (paper: 78% for real PubMed).
	Coverage float64
	// TextSetCoverage / PatternSetCoverage are the same measure for this
	// paper's context sets.
	TextSetCoverage, PatternSetCoverage float64
	// Contexts counts non-empty contexts per method.
	Contexts, TextSetContexts, PatternSetContexts int
	// AssignmentPrecision and AssignmentRecall measure, against generator
	// ground truth (paper ∈ context iff its topic is the term or a
	// descendant), how well each method assigns papers. GoPubMed first.
	GoPubMedPrecision, GoPubMedRecall float64
	TextSetPrecision, TextSetRecall   float64
}

// GoPubMedVsContextSets runs the comparison.
func (s *Setup) GoPubMedVsContextSets() GoPubMedComparison {
	gp := contextset.BuildGoPubMedStyle(s.Sys.Analyzer(), s.Sys.Ontology, 1.0)
	c := s.Sys.Corpus
	out := GoPubMedComparison{
		Coverage:           contextset.AbstractCoverage(gp, c),
		TextSetCoverage:    contextset.AbstractCoverage(s.TextSet, c),
		PatternSetCoverage: contextset.AbstractCoverage(s.PatternSet, c),
		Contexts:           len(gp.Contexts()),
		TextSetContexts:    len(s.TextSet.Contexts()),
		PatternSetContexts: len(s.PatternSet.Contexts()),
	}
	out.GoPubMedPrecision, out.GoPubMedRecall = s.assignmentQuality(gp)
	out.TextSetPrecision, out.TextSetRecall = s.assignmentQuality(s.TextSet)
	return out
}

// assignmentQuality compares a context set's memberships to ground truth:
// a (term, paper) assignment is correct when the paper's generating topics
// include the term or one of its descendants.
func (s *Setup) assignmentQuality(cs *ctxsearch.ContextSet) (precision, recall float64) {
	onto := s.Sys.Ontology
	c := s.Sys.Corpus

	// truth[term] = papers whose topic is term or a descendant of term.
	inTerm := make(map[ctxsearch.TermID]map[ctxsearch.PaperID]bool)
	for _, p := range c.Papers() {
		for _, topic := range p.Topics {
			if m := inTerm[topic]; m == nil {
				inTerm[topic] = map[ctxsearch.PaperID]bool{p.ID: true}
			} else {
				m[p.ID] = true
			}
		}
	}
	truthFor := func(term ctxsearch.TermID) map[ctxsearch.PaperID]bool {
		out := make(map[ctxsearch.PaperID]bool)
		for id := range inTerm[term] {
			out[id] = true
		}
		for _, d := range onto.Descendants(term) {
			for id := range inTerm[d] {
				out[id] = true
			}
		}
		return out
	}

	var tp, assigned, truthTotal int
	for _, ctx := range cs.Contexts() {
		truth := truthFor(ctx)
		truthTotal += len(truth)
		for _, p := range cs.Papers(ctx) {
			assigned++
			if truth[p] {
				tp++
			}
		}
	}
	if assigned > 0 {
		precision = float64(tp) / float64(assigned)
	}
	if truthTotal > 0 {
		recall = float64(tp) / float64(truthTotal)
	}
	return precision, recall
}
