package experiments

import (
	"bytes"
	"strings"
	"testing"
)

var cachedSetup *Setup

func testSetup(t *testing.T) *Setup {
	t.Helper()
	if cachedSetup != nil {
		return cachedSetup
	}
	s, err := NewSetup(Scale{Papers: 300, Terms: 70, Queries: 15, Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cachedSetup = s
	return s
}

func TestSetupCompleteness(t *testing.T) {
	s := testSetup(t)
	if len(s.TextSet.Contexts()) == 0 || len(s.PatternSet.Contexts()) == 0 {
		t.Fatal("context sets empty")
	}
	if len(s.TextOnTextSet) == 0 || len(s.CitOnTextSet) == 0 {
		t.Fatal("text-set scores missing")
	}
	if len(s.PatOnPatSet) == 0 || len(s.CitOnPatSet) == 0 {
		t.Fatal("pattern-set scores missing")
	}
	if len(s.Queries) == 0 || len(s.ACAnswers) != len(s.Queries) {
		t.Fatal("queries/answers missing")
	}
}

func TestFig51And52Shapes(t *testing.T) {
	s := testSetup(t)
	for _, fig := range []PrecisionFigure{s.Fig51(), s.Fig52()} {
		if len(fig.Series) != 2 {
			t.Fatalf("%s: %d series", fig.Name, len(fig.Series))
		}
		for _, series := range fig.Series {
			if len(series.Points) != len(PrecisionThresholds) {
				t.Fatalf("%s/%s: %d points", fig.Name, series.Function, len(series.Points))
			}
			for _, pt := range series.Points {
				if pt.Avg < 0 || pt.Avg > 1 || pt.Median < 0 || pt.Median > 1 {
					t.Fatalf("%s/%s: precision out of range: %+v", fig.Name, series.Function, pt)
				}
			}
		}
		var buf bytes.Buffer
		RenderPrecision(&buf, fig)
		if !strings.Contains(buf.String(), "threshold") {
			t.Fatal("render produced no table")
		}
	}
}

func TestFig53Shape(t *testing.T) {
	s := testSetup(t)
	fig := s.Fig53()
	if len(fig.Pairs) != 3 {
		t.Fatalf("pairs = %d", len(fig.Pairs))
	}
	for pair, byLevel := range fig.Pairs {
		for level, row := range byLevel {
			if len(row) != len(KPercents) {
				t.Fatalf("%s level %d: %d values", pair, level, len(row))
			}
			for _, v := range row {
				if v < 0 || v > 1 {
					t.Fatalf("%s level %d: overlap %v out of range", pair, level, v)
				}
			}
		}
	}
	var buf bytes.Buffer
	RenderOverlap(&buf, fig)
	if !strings.Contains(buf.String(), "text-citation") {
		t.Fatal("render missing pair")
	}
}

func TestFig54To57Shapes(t *testing.T) {
	s := testSetup(t)
	a, b := s.Fig54()
	for _, fig := range []SeparabilityFigure{a, b, s.Fig55(), s.Fig56(), s.Fig57()} {
		if len(fig.BinEdges) != 8 {
			t.Fatalf("%s: %d bins", fig.Name, len(fig.BinEdges))
		}
		for name, row := range fig.Series {
			if len(row) != len(fig.BinEdges) {
				t.Fatalf("%s/%s: %d values", fig.Name, name, len(row))
			}
			var total float64
			for _, v := range row {
				total += v
			}
			// Either empty (no contexts at that level) or sums to 100%.
			if total != 0 && (total < 99.9 || total > 100.1) {
				t.Fatalf("%s/%s: percentages sum to %v", fig.Name, name, total)
			}
		}
		var buf bytes.Buffer
		RenderSeparability(&buf, fig)
		if !strings.Contains(buf.String(), "SD bin") {
			t.Fatal("render produced no histogram")
		}
	}
}

func TestClaimBaseline(t *testing.T) {
	s := testSetup(t)
	r := s.ClaimBaseline()
	if r.Queries == 0 {
		t.Fatal("no queries evaluated")
	}
	if r.AvgOutputReduction < 0 || r.AvgOutputReduction > 1 {
		t.Fatalf("reduction out of range: %v", r.AvgOutputReduction)
	}
	if r.MaxOutputReduction < r.AvgOutputReduction {
		t.Fatal("max < avg reduction")
	}
	// Context-based search must actually reduce output.
	if r.AvgOutputReduction == 0 {
		t.Fatal("no output reduction at all")
	}
	var buf bytes.Buffer
	RenderClaim(&buf, r)
	if !strings.Contains(buf.String(), "output reduction") {
		t.Fatal("render incomplete")
	}
}

func TestAblations(t *testing.T) {
	s := testSetup(t)
	tp := s.AblateTeleport()
	if tp.Contexts == 0 {
		t.Fatal("teleport ablation saw no contexts")
	}
	if tp.MeanSpearman < 0.3 {
		t.Fatalf("E1/E2 correlation suspiciously low: %v", tp.MeanSpearman)
	}
	h := s.AblateHITS()
	if h.GlobalSpearman < 0.2 {
		t.Fatalf("HITS/PageRank global correlation too low: %v", h.GlobalSpearman)
	}
	cut := s.AblateCutoff([]int{0, 5, 20})
	if len(cut.Contexts) != 3 {
		t.Fatal("cutoff sweep incomplete")
	}
	if cut.Contexts[0] < cut.Contexts[2] {
		t.Fatal("higher cutoff kept more contexts")
	}
	cc := s.AblateCrossContext()
	if cc.Contexts == 0 {
		t.Fatal("cross-context ablation saw no contexts")
	}
	var buf bytes.Buffer
	RenderTeleport(&buf, tp)
	RenderHITS(&buf, h)
	RenderCutoff(&buf, cut)
	RenderCrossContext(&buf, cc)
	RenderSparseness(&buf, s.SparsenessByLevel())
	for _, want := range []string{"A1", "A2", "A3", "E1", "sparseness"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("ablation render missing %q", want)
		}
	}
}

func TestSparsenessByLevel(t *testing.T) {
	s := testSetup(t)
	byLevel := s.SparsenessByLevel()
	for l, v := range byLevel {
		if v.EdgeSparseness < 0 || v.EdgeSparseness > 1 {
			t.Fatalf("level %d edge sparseness %v", l, v.EdgeSparseness)
		}
		if v.IsolationFraction < 0 || v.IsolationFraction > 1 {
			t.Fatalf("level %d isolation %v", l, v.IsolationFraction)
		}
	}
}
