package experiments

import (
	"sort"

	"ctxsearch"
	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/eval"
	"ctxsearch/internal/prestige"
	"ctxsearch/internal/stats"
)

// TeleportAblation compares the paper's two PageRank teleport options E1
// and E2 (§3.1) on the pattern-based context set.
type TeleportAblation struct {
	// MeanSpearman is the mean per-context Spearman rank correlation
	// between E1 and E2 scores.
	MeanSpearman float64
	// MeanSDDiff is mean(separability SD under E1 − SD under E2).
	MeanSDDiff float64
	// Contexts evaluated.
	Contexts int
}

// AblateTeleport runs the E1-vs-E2 ablation.
func (s *Setup) AblateTeleport() TeleportAblation {
	mk := func(tp citegraph.Teleport) ctxsearch.Scores {
		opts := s.Sys.Config().PageRank
		opts.Teleport = tp
		// Clone the cached scorer: both teleport variants share the one
		// corpus-wide citation graph.
		scorer := s.Sys.CitationScorer().WithOpts(opts)
		return prestige.ScoreAll(scorer, s.PatternSet, s.Sys.MinContextSize())
	}
	e1 := mk(citegraph.TeleportE1)
	e2 := mk(citegraph.TeleportE2)
	cfg := eval.DefaultSeparabilityConfig()
	var out TeleportAblation
	var sumRho, sumSD float64
	for _, ctx := range e1.Contexts() {
		m2, ok := e2[ctx]
		if !ok {
			continue
		}
		m1 := e1[ctx]
		var xs, ys []float64
		ids := make([]ctxsearch.PaperID, 0, len(m1))
		for id := range m1 {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			xs = append(xs, m1[id])
			ys = append(ys, m2[id])
		}
		if len(xs) < 3 {
			continue
		}
		sumRho += stats.Spearman(xs, ys)
		sumSD += stats.SeparabilitySD(xs, cfg.ScoreBins) - stats.SeparabilitySD(ys, cfg.ScoreBins)
		out.Contexts++
	}
	if out.Contexts > 0 {
		out.MeanSpearman = sumRho / float64(out.Contexts)
		out.MeanSDDiff = sumSD / float64(out.Contexts)
	}
	return out
}

// HITSAblation checks the claim (via [11]) that HITS authority and PageRank
// scores are highly correlated on citation graphs.
type HITSAblation struct {
	// GlobalSpearman correlates the two over the whole corpus graph.
	GlobalSpearman float64
	// MeanContextSpearman averages per-context correlations (contexts above
	// the size cutoff, induced subgraphs).
	MeanContextSpearman float64
	Contexts            int
}

// AblateHITS runs the HITS-vs-PageRank correlation ablation.
func (s *Setup) AblateHITS() HITSAblation {
	g := s.Sys.CitationScorer().Graph()
	pr := citegraph.PageRank(g, s.Sys.Config().PageRank)
	auth, _ := citegraph.HITS(g, 0, 0)
	var out HITSAblation
	out.GlobalSpearman = stats.Spearman(pr, auth)

	var sum float64
	for _, ctx := range s.PatternSet.ContextsWithMinSize(s.Sys.MinContextSize()) {
		papers := s.PatternSet.Papers(ctx)
		nodes := make([]int, len(papers))
		for i, p := range papers {
			nodes[i] = int(p)
		}
		sub, _ := g.Subgraph(nodes)
		if sub.Len() < 3 || sub.Edges() == 0 {
			continue
		}
		spr := citegraph.PageRank(sub, s.Sys.Config().PageRank)
		sauth, _ := citegraph.HITS(sub, 0, 0)
		sum += stats.Spearman(spr, sauth)
		out.Contexts++
	}
	if out.Contexts > 0 {
		out.MeanContextSpearman = sum / float64(out.Contexts)
	}
	return out
}

// CutoffAblation sweeps the small-context exclusion rule the paper applies
// (contexts ≤ 100 papers dropped): how the number of scored contexts and
// the citation function's mean separability SD respond to the cutoff.
type CutoffAblation struct {
	Cutoffs  []int
	Contexts []int
	// MeanCitSD is the citation function's mean separability SD over the
	// surviving contexts (small contexts produce degenerate PageRank score
	// sets, which is why the paper excludes them).
	MeanCitSD []float64
}

// AblateCutoff sweeps MinContextSize over the pattern-based set.
func (s *Setup) AblateCutoff(cutoffs []int) CutoffAblation {
	cfg := eval.DefaultSeparabilityConfig()
	out := CutoffAblation{Cutoffs: cutoffs}
	for _, cut := range cutoffs {
		ctxs := s.PatternSet.ContextsWithMinSize(cut)
		// Restrict the precomputed citation scores to surviving contexts.
		var sds []float64
		n := 0
		for _, ctx := range ctxs {
			if m, ok := s.CitOnPatSet[ctx]; ok && len(m) > 0 {
				vals := make([]float64, 0, len(m))
				for _, v := range m {
					vals = append(vals, v)
				}
				sds = append(sds, stats.SeparabilitySD(vals, cfg.ScoreBins))
				n++
			}
		}
		out.Contexts = append(out.Contexts, n)
		out.MeanCitSD = append(out.MeanCitSD, mean(sds))
	}
	return out
}

// CrossContextAblation measures the §7 future-work extension: weighting
// cross-context citations instead of omitting them.
type CrossContextAblation struct {
	// MeanScoreShift is the mean absolute per-paper score change the
	// extension introduces.
	MeanScoreShift float64
	// MeanSDBase and MeanSDExt compare separability with and without it.
	MeanSDBase, MeanSDExt float64
	Contexts              int
}

// AblateCrossContext runs the extension with Related=0.6/Unrelated=0.1.
func (s *Setup) AblateCrossContext() CrossContextAblation {
	base := s.Sys.CitationScorer()
	ext := base.WithCrossContext(prestige.CrossContextWeights{Enabled: true, Related: 0.6, Unrelated: 0.1})
	cfg := eval.DefaultSeparabilityConfig()
	var out CrossContextAblation
	var shift, sdB, sdE float64
	n := 0
	for _, ctx := range s.PatternSet.ContextsWithMinSize(s.Sys.MinContextSize()) {
		mb := base.ScoreContext(s.PatternSet, ctx)
		me := ext.ScoreContext(s.PatternSet, ctx)
		var vb, ve []float64
		var d float64
		for id, b := range mb {
			e := me[id]
			if diff := e - b; diff >= 0 {
				d += diff
			} else {
				d -= diff
			}
			vb = append(vb, b)
			ve = append(ve, e)
		}
		if len(vb) == 0 {
			continue
		}
		shift += d / float64(len(vb))
		sdB += stats.SeparabilitySD(vb, cfg.ScoreBins)
		sdE += stats.SeparabilitySD(ve, cfg.ScoreBins)
		n++
	}
	if n > 0 {
		out.MeanScoreShift = shift / float64(n)
		out.MeanSDBase = sdB / float64(n)
		out.MeanSDExt = sdE / float64(n)
		out.Contexts = n
	}
	return out
}

// SparsenessByLevel supports the paper's §5 explanation: per-context
// citation-graph sparseness grows as contexts get deeper/smaller. Two
// diagnostics per level: the mean edge sparseness of the induced graph and
// the mean fraction of papers with no in-context citation edge at all
// (which is what actually starves PageRank).
type SparsenessRow struct {
	EdgeSparseness, IsolationFraction float64
}

// SparsenessByLevel computes both diagnostics per context level.
func (s *Setup) SparsenessByLevel() map[int]SparsenessRow {
	scorer := s.Sys.CitationScorer()
	type acc struct {
		sp, iso float64
		n       int
	}
	sums := map[int]*acc{}
	for _, ctx := range s.PatternSet.ContextsWithMinSize(s.Sys.MinContextSize()) {
		l := s.Sys.Ontology.Level(ctx)
		a := sums[l]
		if a == nil {
			a = &acc{}
			sums[l] = a
		}
		a.sp += scorer.ContextSparseness(s.PatternSet, ctx)
		a.iso += scorer.IsolationFraction(s.PatternSet, ctx)
		a.n++
	}
	out := map[int]SparsenessRow{}
	for l, a := range sums {
		out[l] = SparsenessRow{
			EdgeSparseness:    a.sp / float64(a.n),
			IsolationFraction: a.iso / float64(a.n),
		}
	}
	return out
}
