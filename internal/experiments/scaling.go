package experiments

import (
	"io"

	"ctxsearch"
	"ctxsearch/internal/stats"
)

type ctxsearchScores = ctxsearch.Scores

// ScalingRow summarises one corpus size of the scaling sweep.
type ScalingRow struct {
	Papers, Terms int
	// TextMinusCitation is the average precision advantage of the
	// text-based over the citation-based function at moderate thresholds,
	// on the text-based context set — Fig 5.1's headline number.
	TextMinusCitation float64
	// SepText/SepPattern/SepCitation are the mean separability SDs on the
	// pattern-based set (Fig 5.4's ordering).
	SepText, SepPattern, SepCitation float64
	// OutputReduction is the §1 claim's average output-size reduction.
	OutputReduction float64
}

// ScalingSweep re-runs the core metrics at several corpus sizes to show
// the findings are not artefacts of one scale. Terms scale at 1:5 with
// papers; queries at 1:10 (capped 120).
func ScalingSweep(sizes []int, seed int64, log io.Writer) ([]ScalingRow, error) {
	var out []ScalingRow
	for _, papers := range sizes {
		terms := papers / 5
		if terms < 30 {
			terms = 30
		}
		queries := papers / 10
		if queries > 120 {
			queries = 120
		}
		if queries < 10 {
			queries = 10
		}
		setup, err := NewSetup(Scale{Papers: papers, Terms: terms, Queries: queries, Seed: seed}, log)
		if err != nil {
			return nil, err
		}
		row := ScalingRow{Papers: papers, Terms: terms}

		fig := setup.Fig51()
		n := 0
		for i, pt := range fig.Series[0].Points { // citation (sorted first)
			if pt.Threshold >= 0.1 && pt.Threshold <= 0.3 {
				row.TextMinusCitation += fig.Series[1].Points[i].Avg - pt.Avg
				n++
			}
		}
		if n > 0 {
			row.TextMinusCitation /= float64(n)
		}

		row.SepText = meanSepSD(setup.TextOnPatSet)
		row.SepPattern = meanSepSD(setup.PatOnPatSet)
		row.SepCitation = meanSepSD(setup.CitOnPatSet)
		row.OutputReduction = setup.ClaimBaseline().AvgOutputReduction
		out = append(out, row)
	}
	return out, nil
}

// meanSepSD is the mean per-context separability SD of a score function.
func meanSepSD(scores ctxsearchScores) float64 {
	var sds []float64
	for _, ctx := range scores.Contexts() {
		vals := scores.Values(ctx)
		if len(vals) == 0 {
			continue
		}
		sds = append(sds, stats.SeparabilitySD(vals, 10))
	}
	return mean(sds)
}
