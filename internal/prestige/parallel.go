package prestige

import (
	"runtime"
	"sync"

	"ctxsearch/internal/contextset"
	"ctxsearch/internal/ontology"
)

// ScoreAllParallel is ScoreAll with the per-context scoring fanned out over
// a worker pool. Results are identical to the serial version (per-context
// scoring is independent and deterministic); only wall-clock time changes.
// workers ≤ 0 selects GOMAXPROCS.
//
// The built-in scorers are safe for concurrent ScoreContext calls; custom
// Scorer implementations used here must be too.
func ScoreAllParallel(sc Scorer, cs *contextset.ContextSet, minSize, workers int) Scores {
	ctxs := cs.ContextsWithMinSize(minSize)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ctxs) {
		workers = len(ctxs)
	}
	if workers <= 1 {
		return ScoreAll(sc, cs, minSize)
	}
	out := make(Scores, len(ctxs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	work := make(chan ontology.TermID)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx := range work {
				m := sc.ScoreContext(cs, ctx)
				if m == nil {
					continue
				}
				if d := cs.Decay(ctx); d != 1 {
					for id := range m {
						m[id] *= d
					}
				}
				mu.Lock()
				out[ctx] = m
				mu.Unlock()
			}
		}()
	}
	for _, ctx := range ctxs {
		work <- ctx
	}
	close(work)
	wg.Wait()
	return out
}
