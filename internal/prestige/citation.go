package prestige

import (
	"sync"

	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// CitationScorer implements the citation-based prestige function of §3.1: a
// per-context PageRank over the induced citation subgraph — only citations
// between papers inside the context count, so citations from other contexts
// cannot erroneously boost a paper's score.
type CitationScorer struct {
	graph *citegraph.Graph
	opts  citegraph.PageRankOpts

	// scratch pools citegraph arenas so the subgraph + PageRank pipeline
	// reuses its position table, adjacency and rank buffers across the
	// thousands of contexts scored. ScoreAllParallel workers each hold one
	// arena for the duration of a context; results are unaffected (the
	// scratch pipeline is bit-identical to the allocating one).
	scratch sync.Pool

	// CrossContextWeight enables the §7 future-work extension: instead of
	// omitting citations whose other endpoint lies outside the context,
	// they contribute with a weight — higher when the endpoint's context is
	// hierarchically related to this one. Zero (the default) reproduces the
	// paper's main method.
	CrossContextWeight CrossContextWeights
}

// getScratch hands out a pooled arena (usable even on a zero-value scorer).
func (s *CitationScorer) getScratch() *citegraph.Scratch {
	if sc, ok := s.scratch.Get().(*citegraph.Scratch); ok {
		return sc
	}
	return citegraph.NewScratch()
}

// CrossContextWeights configures the §7 extension. All weights in [0,1].
type CrossContextWeights struct {
	// Enabled turns the extension on.
	Enabled bool
	// Related is the weight of edges to papers of hierarchically related
	// contexts (ancestor/descendant of the scored context).
	Related float64
	// Unrelated is the weight of edges to papers of unrelated contexts.
	Unrelated float64
	// Semantic grades the weight continuously instead of the binary
	// related/unrelated split: weight = Unrelated + (Related−Unrelated) ·
	// LinSimilarity(ctx, other). The §7 text sketches exactly this "assign
	// a higher weight the closer the relative" policy.
	Semantic bool
}

// NewCitationScorer builds the scorer over the corpus-wide citation graph.
func NewCitationScorer(c *corpus.Corpus, opts citegraph.PageRankOpts) *CitationScorer {
	return &CitationScorer{graph: GraphFromCorpus(c), opts: opts}
}

// WithOpts returns a scorer with different PageRank options sharing the
// receiver's (immutable) citation graph — ablations sweep options without
// re-extracting the graph from the corpus each time. The clone starts with
// a fresh scratch pool (arenas are cheap; sync.Pool must not be copied).
func (s *CitationScorer) WithOpts(opts citegraph.PageRankOpts) *CitationScorer {
	return &CitationScorer{graph: s.graph, opts: opts, CrossContextWeight: s.CrossContextWeight}
}

// WithCrossContext returns a scorer with the §7 cross-context extension
// configured, sharing the receiver's citation graph.
func (s *CitationScorer) WithCrossContext(w CrossContextWeights) *CitationScorer {
	return &CitationScorer{graph: s.graph, opts: s.opts, CrossContextWeight: w}
}

// Name implements Scorer.
func (s *CitationScorer) Name() string { return "citation" }

// ScoreContext implements Scorer: PageRank over the induced subgraph,
// max-normalised. With the §7 extension enabled, boundary citations add a
// weighted bonus on top of the in-context PageRank.
func (s *CitationScorer) ScoreContext(cs *contextset.ContextSet, ctx ontology.TermID) map[corpus.PaperID]float64 {
	papers := cs.Papers(ctx)
	if len(papers) == 0 {
		return map[corpus.PaperID]float64{}
	}
	sc := s.getScratch()
	defer s.scratch.Put(sc)
	nodes := sc.Ints(len(papers))
	for i, p := range papers {
		nodes[i] = int(p)
	}
	sub, mapping := s.graph.SubgraphInto(nodes, sc)
	pr := citegraph.PageRankScratch(sub, s.opts, sc)
	// mapping and pr alias the arena; copying into the result map releases
	// them for the worker's next context.
	out := make(map[corpus.PaperID]float64, len(mapping))
	for i, orig := range mapping {
		out[corpus.PaperID(orig)] = pr[i]
	}
	if s.CrossContextWeight.Enabled {
		s.addCrossContextBonus(cs, ctx, out)
	}
	maxNormalizeMap(out)
	return out
}

// addCrossContextBonus implements the §7 variation: each citation crossing
// the context boundary contributes a small weighted vote — the weight
// depends on whether the citing/cited paper's contexts are hierarchically
// related to ctx. The bonus is scaled to the average in-context score so it
// perturbs rather than dominates.
func (s *CitationScorer) addCrossContextBonus(cs *contextset.ContextSet, ctx ontology.TermID, scores map[corpus.PaperID]float64) {
	inCtx := cs.PaperSet(ctx)
	var avg float64
	for _, v := range scores {
		avg += v
	}
	if len(scores) > 0 {
		avg /= float64(len(scores))
	}
	onto := cs.Ontology()
	// One neighbor buffer for the whole call, truncated per paper — the
	// in+out concatenation is only read within the iteration.
	neighbors := make([]int32, 0, 64)
	for p := range scores {
		var bonus float64
		neighbors = neighbors[:0]
		neighbors = append(neighbors, s.graph.In(int(p))...)
		neighbors = append(neighbors, s.graph.Out(int(p))...)
		for _, q := range neighbors {
			qid := corpus.PaperID(q)
			if inCtx[qid] {
				continue // in-context edges already counted by PageRank
			}
			w := s.CrossContextWeight.Unrelated
			if s.CrossContextWeight.Semantic {
				best := 0.0
				for _, qctx := range cs.ContextsOf(qid) {
					if lin := onto.LinSimilarity(ctx, qctx); lin > best {
						best = lin
					}
				}
				w += (s.CrossContextWeight.Related - s.CrossContextWeight.Unrelated) * best
			} else {
				for _, qctx := range cs.ContextsOf(qid) {
					if onto.HierarchicallyRelated(ctx, qctx) {
						w = s.CrossContextWeight.Related
						break
					}
				}
			}
			bonus += w
		}
		if bonus > 0 {
			scores[p] += avg * bonus / (bonus + 10) // saturating bonus
		}
	}
}

// ContextSparseness reports the sparseness of a context's induced citation
// graph — the diagnostic the paper uses to explain citation-score weakness.
func (s *CitationScorer) ContextSparseness(cs *contextset.ContextSet, ctx ontology.TermID) float64 {
	papers := cs.Papers(ctx)
	sc := s.getScratch()
	defer s.scratch.Put(sc)
	nodes := sc.Ints(len(papers))
	for i, p := range papers {
		nodes[i] = int(p)
	}
	sub, _ := s.graph.SubgraphInto(nodes, sc)
	return sub.Sparseness()
}

// IsolationFraction returns the fraction of a context's papers with no
// citation edge inside the context at all — the papers PageRank cannot
// differentiate. This is the operative form of the paper's sparseness
// argument: deeper contexts keep fewer of their papers' citations inside
// the context, so more papers are isolated and citation scores degenerate.
func (s *CitationScorer) IsolationFraction(cs *contextset.ContextSet, ctx ontology.TermID) float64 {
	papers := cs.Papers(ctx)
	if len(papers) == 0 {
		return 1
	}
	sc := s.getScratch()
	defer s.scratch.Put(sc)
	nodes := sc.Ints(len(papers))
	for i, p := range papers {
		nodes[i] = int(p)
	}
	sub, _ := s.graph.SubgraphInto(nodes, sc)
	isolated := 0
	for i := 0; i < sub.Len(); i++ {
		if len(sub.Out(i)) == 0 && len(sub.In(i)) == 0 {
			isolated++
		}
	}
	return float64(isolated) / float64(sub.Len())
}

// Graph exposes the underlying corpus-wide citation graph (used by the
// HITS-correlation ablation).
func (s *CitationScorer) Graph() *citegraph.Graph { return s.graph }
