package prestige

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// Matrix is the frozen, query-time form of Scores: a CSR (compressed sparse
// row) score matrix with one row per scored context. Contexts are interned
// into ordinals (sorted by term ID), each row is a packed run of
// paper-ID-sorted (doc, score) columns, and a per-context offset array
// delimits the runs — mirroring the index's postings layout. The query
// merge reads one run per selected context and resolves each hit by binary
// search over the run's int32 doc IDs, instead of chaining a string-keyed
// and an int-keyed map lookup per (context, hit) pair.
//
// A Matrix is immutable and safe for concurrent readers. Construct with
// Scores.Freeze; the map form remains the construction-time builder and the
// Scorer.ScoreContext boundary.
type Matrix struct {
	ctxs    []ontology.TermID
	ord     map[ontology.TermID]int32
	offsets []int32 // len(ctxs)+1; run i is [offsets[i], offsets[i+1])
	docs    []int32
	vals    []float64
	// rowMax[i] is the largest score in run i (0 for an empty run) — the
	// per-context prestige upper bound the search layer's top-k pruning
	// reads. Persisted in the v3 state format; recomputed when loading
	// older files.
	rowMax []float64
}

// Freeze flattens the map form into its CSR matrix. The layout is fully
// deterministic: contexts in ascending term-ID order, each run in ascending
// paper-ID order, scores byte-identical to the map's values.
func (s Scores) Freeze() *Matrix {
	ctxs := s.Contexts()
	m := &Matrix{
		ctxs:    ctxs,
		ord:     make(map[ontology.TermID]int32, len(ctxs)),
		offsets: make([]int32, len(ctxs)+1),
	}
	nnz := 0
	for _, ctx := range ctxs {
		nnz += len(s[ctx])
	}
	m.docs = make([]int32, 0, nnz)
	m.vals = make([]float64, 0, nnz)
	m.rowMax = make([]float64, len(ctxs))
	var row []int32
	for i, ctx := range ctxs {
		m.ord[ctx] = int32(i)
		src := s[ctx]
		row = row[:0]
		for id := range src {
			row = append(row, int32(id))
		}
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		for _, id := range row {
			v := src[corpus.PaperID(id)]
			m.docs = append(m.docs, id)
			m.vals = append(m.vals, v)
			if v > m.rowMax[i] {
				m.rowMax[i] = v
			}
		}
		m.offsets[i+1] = int32(len(m.docs))
	}
	return m
}

// NumContexts returns the number of scored contexts (rows).
func (m *Matrix) NumContexts() int { return len(m.ctxs) }

// NNZ returns the number of stored (context, paper) scores.
func (m *Matrix) NNZ() int { return len(m.docs) }

// Contexts returns the scored contexts sorted by term ID (a copy).
func (m *Matrix) Contexts() []ontology.TermID {
	return append([]ontology.TermID(nil), m.ctxs...)
}

// Ordinal returns the row index of a context, or false when unscored.
func (m *Matrix) Ordinal(ctx ontology.TermID) (int, bool) {
	i, ok := m.ord[ctx]
	return int(i), ok
}

// Run is one context's packed score row: Docs ascending, Vals parallel.
// The slices alias the matrix — read-only. Max is the largest value in
// Vals (0 for an empty run), the row's prestige upper bound.
type Run struct {
	Docs []int32
	Vals []float64
	Max  float64
}

// Get returns the score of a paper in the run (0 when absent) by binary
// search over the sorted doc IDs.
func (r Run) Get(p corpus.PaperID) float64 {
	d := int32(p)
	lo, hi := 0, len(r.Docs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.Docs[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.Docs) && r.Docs[lo] == d {
		return r.Vals[lo]
	}
	return 0
}

// Run returns a context's score row (an empty run when unscored).
func (m *Matrix) Run(ctx ontology.TermID) Run {
	i, ok := m.ord[ctx]
	if !ok {
		return Run{}
	}
	return m.RunAt(int(i))
}

// RunAt returns the score row of the i-th context (Ordinal order).
func (m *Matrix) RunAt(i int) Run {
	lo, hi := m.offsets[i], m.offsets[i+1]
	return Run{Docs: m.docs[lo:hi], Vals: m.vals[lo:hi], Max: m.rowMax[i]}
}

// Get returns the score of a paper in a context (0 when absent), matching
// Scores.Get on the frozen input exactly.
func (m *Matrix) Get(ctx ontology.TermID, p corpus.PaperID) float64 {
	return m.Run(ctx).Get(p)
}

// Slice restricts the matrix to papers with lo <= ID < hi — the per-shard
// prestige state of the sharded serving topology. Every context row is
// kept (possibly empty), so Contexts() — and therefore the engine's
// context-selection metadata, which is built from it — is unchanged: all
// shards select exactly the contexts a single engine would. Within each
// run only the docs in range survive, and the row maximum is recomputed
// over the slice, giving the shard a tighter (still exact, for its own
// papers) prestige upper bound for threshold and top-k pruning.
func (m *Matrix) Slice(lo, hi int) *Matrix {
	out := &Matrix{
		ctxs:    m.ctxs,
		ord:     m.ord,
		offsets: make([]int32, len(m.ctxs)+1),
		rowMax:  make([]float64, len(m.ctxs)),
	}
	dlo, dhi := int32(lo), int32(hi)
	for i := range m.ctxs {
		r := m.RunAt(i)
		// Docs are sorted ascending: binary-search the range bounds.
		a := searchInt32(r.Docs, dlo)
		b := searchInt32(r.Docs, dhi)
		for k := a; k < b; k++ {
			out.docs = append(out.docs, r.Docs[k])
			out.vals = append(out.vals, r.Vals[k])
			if v := r.Vals[k]; v > out.rowMax[i] {
				out.rowMax[i] = v
			}
		}
		out.offsets[i+1] = int32(len(out.docs))
	}
	return out
}

// searchInt32 returns the first index of s whose value is >= v (len(s)
// when none is).
func searchInt32(s []int32, v int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Thaw reconstructs the map form (for code paths that still build on it,
// e.g. the naive reference search). Freeze(Thaw(m)) is the identity.
func (m *Matrix) Thaw() Scores {
	out := make(Scores, len(m.ctxs))
	for i, ctx := range m.ctxs {
		r := m.RunAt(i)
		row := make(map[corpus.PaperID]float64, len(r.Docs))
		for j, d := range r.Docs {
			row[corpus.PaperID(d)] = r.Vals[j]
		}
		out[ctx] = row
	}
	return out
}

// matrixWire is the gob shape of a Matrix: the flat CSR arrays, with each
// run's doc IDs delta-encoded (first absolute, then gaps). Runs are sorted
// ascending, so the gaps are small non-negative varints — this is where the
// v2+ state file beats the nested map form on size, whose keys repeat full
// paper IDs. The ordinal interning table is rebuilt on decode.
//
// RowMax (per-run score maxima, the top-k pruning bounds) joined the wire
// in the v3 state format. Gob matches fields by name, so v2 streams simply
// decode with RowMax empty and the maxima are recomputed — the v2 fallback
// costs one pass over Vals.
type matrixWire struct {
	Ctxs    []ontology.TermID
	Offsets []int32
	Docs    []int32 // per-run delta-encoded
	Vals    []float64
	RowMax  []float64
}

// GobEncode implements gob.GobEncoder with the flat CSR arrays — smaller
// and far faster to decode than the nested map form.
func (m *Matrix) GobEncode() ([]byte, error) {
	docs := make([]int32, len(m.docs))
	for i := 0; i < len(m.ctxs); i++ {
		lo, hi := m.offsets[i], m.offsets[i+1]
		prev := int32(0)
		for k := lo; k < hi; k++ {
			docs[k] = m.docs[k] - prev
			prev = m.docs[k]
		}
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(matrixWire{
		Ctxs: m.ctxs, Offsets: m.offsets, Docs: docs, Vals: m.vals, RowMax: m.rowMax,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (m *Matrix) GobDecode(data []byte) error {
	var w matrixWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if len(w.Offsets) == 0 {
		w.Offsets = []int32{0} // gob drops empty slices; an empty matrix is valid
	}
	if len(w.Offsets) != len(w.Ctxs)+1 || len(w.Docs) != len(w.Vals) {
		return fmt.Errorf("prestige: corrupt matrix: %d contexts, %d offsets, %d docs, %d vals",
			len(w.Ctxs), len(w.Offsets), len(w.Docs), len(w.Vals))
	}
	if n := len(w.Offsets); n > 0 && int(w.Offsets[n-1]) != len(w.Docs) {
		return fmt.Errorf("prestige: corrupt matrix: final offset %d != %d docs", w.Offsets[n-1], len(w.Docs))
	}
	// Undo the per-run delta encoding in place.
	for i := 0; i < len(w.Ctxs); i++ {
		lo, hi := w.Offsets[i], w.Offsets[i+1]
		prev := int32(0)
		for k := lo; k < hi; k++ {
			prev += w.Docs[k]
			w.Docs[k] = prev
		}
	}
	// Row maxima: trust a well-formed v3 stream, recompute otherwise (v2
	// streams lack the field; a corrupt length is repaired the same way).
	if len(w.RowMax) != len(w.Ctxs) {
		w.RowMax = make([]float64, len(w.Ctxs))
		for i := 0; i < len(w.Ctxs); i++ {
			for k := w.Offsets[i]; k < w.Offsets[i+1]; k++ {
				if v := w.Vals[k]; v > w.RowMax[i] {
					w.RowMax[i] = v
				}
			}
		}
	}
	m.ctxs, m.offsets, m.docs, m.vals, m.rowMax = w.Ctxs, w.Offsets, w.Docs, w.Vals, w.RowMax
	m.ord = make(map[ontology.TermID]int32, len(w.Ctxs))
	for i, ctx := range w.Ctxs {
		m.ord[ctx] = int32(i)
	}
	return nil
}
