package prestige

import (
	"sync"

	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/pattern"
)

// PatternScorer implements the pattern-based prestige function of §3.3:
// context patterns (regular + extended) are built from the context's
// training papers, and a paper's prestige is Σ Score(pt)·M(P, pt) over the
// patterns matching it, max-normalised per context.
type PatternScorer struct {
	ix     *pattern.PosIndex
	onto   *ontology.Ontology
	termDF map[string]int
	pcfg   pattern.Config
	mcfg   pattern.MatchConfig

	// sets caches the pattern set per term, since inherited contexts reuse
	// their origin's patterns; mu makes the cache safe for parallel
	// scoring.
	mu   sync.Mutex
	sets map[ontology.TermID]*pattern.Set
}

// NewPatternScorer builds the scorer. The pattern config's Extended flag is
// honoured (the full §3.3 method uses extended patterns; the §4 simplified
// construction does not — that variant lives in contextset).
func NewPatternScorer(ix *pattern.PosIndex, onto *ontology.Ontology, pcfg pattern.Config, mcfg pattern.MatchConfig) *PatternScorer {
	return &PatternScorer{
		ix:     ix,
		onto:   onto,
		termDF: pattern.TermWordDF(onto, ix),
		pcfg:   pcfg,
		mcfg:   mcfg,
		sets:   make(map[ontology.TermID]*pattern.Set),
	}
}

// Name implements Scorer.
func (s *PatternScorer) Name() string { return "pattern" }

// patternsFor returns (building and caching on demand) the pattern set of a
// term, built from the term's annotation evidence papers.
func (s *PatternScorer) patternsFor(c *corpus.Corpus, term ontology.TermID) *pattern.Set {
	s.mu.Lock()
	if set, ok := s.sets[term]; ok {
		s.mu.Unlock()
		return set
	}
	s.mu.Unlock()
	// Build outside the lock: construction is the expensive part and two
	// goroutines occasionally building the same term's set is harmless
	// (identical, deterministic results).
	set := pattern.Build(s.ix, s.onto, term, c.EvidencePapers(term), s.termDF, s.pcfg)
	s.mu.Lock()
	if prev, ok := s.sets[term]; ok {
		set = prev
	} else {
		s.sets[term] = set
	}
	s.mu.Unlock()
	return set
}

// ScoreContext implements Scorer. Contexts that inherited their papers from
// an ancestor are scored with the ancestor's patterns (the decay multiplier
// is applied by ScoreAll).
func (s *PatternScorer) ScoreContext(cs *contextset.ContextSet, ctx ontology.TermID) map[corpus.PaperID]float64 {
	c := s.ix.Analyzer().Corpus()
	term := ctx
	if origin, inherited := cs.InheritedFrom(ctx); inherited {
		term = origin
	}
	set := s.patternsFor(c, term)
	within := cs.PaperSet(ctx)
	scores := set.ScorePapers(s.ix, within, s.mcfg)
	// Papers with no pattern match still belong to the context; give them
	// an explicit zero so separability sees the full population.
	for p := range within {
		if _, ok := scores[p]; !ok {
			scores[p] = 0
		}
	}
	maxNormalizeMap(scores)
	return scores
}
