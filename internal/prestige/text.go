package prestige

import (
	"sync"

	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/vector"
)

// TextWeights are the section/author/reference similarity weights of the
// §3.2 text-based score Sim(PX, PC) = Σ weightᵢ · Simᵢ(PX, PC).
type TextWeights struct {
	Title, Abstract, Body, IndexTerms float64
	Authors                           float64
	References                        float64
	// L0Weight and L1Weight combine the two author-overlap levels.
	L0Weight, L1Weight float64
	// BibWeight combines bibliographic coupling (BibWeight) with
	// co-citation (1−BibWeight) into SimReferences.
	BibWeight float64
}

// DefaultTextWeights returns the weights used by the experiments.
func DefaultTextWeights() TextWeights {
	return TextWeights{
		Title: 0.15, Abstract: 0.20, Body: 0.20, IndexTerms: 0.10,
		Authors: 0.15, References: 0.20,
		L0Weight: 0.7, L1Weight: 0.3,
		BibWeight: 0.5,
	}
}

// TextScorer implements the text-based prestige function of §3.2: a paper's
// prestige in a context is its weighted similarity to the context's
// representative paper across title, abstract, body, index terms, authors
// (level-0 and level-1 overlap) and references (bibliographic coupling +
// co-citation).
type TextScorer struct {
	analyzer *corpus.Analyzer
	graph    *citegraph.Graph
	weights  TextWeights
	coAuthor map[string][]corpus.PaperID

	// bridgePool recycles the level-1 author-overlap bridge sets —
	// Similarity runs once per (paper, context) pair, so the map is worth
	// pooling. Each ScoreAllParallel worker leases its own map per call.
	bridgePool sync.Pool

	// RepSource optionally supplies representative papers from a different
	// context set. The paper's §4 does exactly this: text scores are
	// assigned to pattern-based-set contexts using the representatives
	// defined by the text-based set.
	RepSource *contextset.ContextSet
}

// NewTextScorer builds the scorer; the co-author index for level-1 overlap
// is built eagerly.
func NewTextScorer(a *corpus.Analyzer, weights TextWeights) *TextScorer {
	return &TextScorer{
		analyzer: a,
		graph:    GraphFromCorpus(a.Corpus()),
		weights:  weights,
		coAuthor: a.CoAuthorIndex(),
	}
}

// WithRepSource returns a scorer that draws representative papers from cs
// instead of the scored set, sharing the (immutable) citation graph and
// co-author index with the receiver — cloning avoids rebuilding both and
// leaves the receiver untouched, so cached scorers stay reusable.
func (s *TextScorer) WithRepSource(cs *contextset.ContextSet) *TextScorer {
	return &TextScorer{
		analyzer:  s.analyzer,
		graph:     s.graph,
		weights:   s.weights,
		coAuthor:  s.coAuthor,
		RepSource: cs,
	}
}

// Name implements Scorer.
func (s *TextScorer) Name() string { return "text" }

// ScoreContext implements Scorer. Contexts without a representative paper
// return nil (the paper assigns text scores only where representatives
// exist).
func (s *TextScorer) ScoreContext(cs *contextset.ContextSet, ctx ontology.TermID) map[corpus.PaperID]float64 {
	repSrc := cs
	if s.RepSource != nil {
		repSrc = s.RepSource
	}
	rep, ok := repSrc.Representative(ctx)
	if !ok {
		return nil
	}
	papers := cs.Papers(ctx)
	out := make(map[corpus.PaperID]float64, len(papers))
	for _, p := range papers {
		out[p] = s.Similarity(p, rep)
	}
	// No per-context max-normalisation: the weighted similarity is already
	// in [0,1] (the weights sum to 1), and the paper's separability
	// analysis depends on the raw distribution — upper-level contexts whose
	// representatives characterise them poorly produce small clustered
	// scores, which is exactly the Figure 5.5 effect.
	return out
}

// Similarity computes the §3.2 weighted similarity between two papers.
func (s *TextScorer) Similarity(p, rep corpus.PaperID) float64 {
	if p == rep {
		// The representative characterises the context by definition.
		return 1
	}
	w := s.weights
	sim := w.Title*s.sectionSim(p, rep, corpus.SecTitle) +
		w.Abstract*s.sectionSim(p, rep, corpus.SecAbstract) +
		w.Body*s.sectionSim(p, rep, corpus.SecBody) +
		w.IndexTerms*s.sectionSim(p, rep, corpus.SecIndexTerms) +
		w.Authors*s.AuthorSim(p, rep) +
		w.References*s.ReferenceSim(p, rep)
	return sim
}

func (s *TextScorer) sectionSim(p, q corpus.PaperID, sec corpus.Section) float64 {
	return vector.CosineWithNorms(
		s.analyzer.TFIDF(p, sec), s.analyzer.TFIDF(q, sec),
		s.analyzer.TFIDFNorm(p, sec), s.analyzer.TFIDFNorm(q, sec))
}

// AuthorSim combines Level-0 overlap (shared authors, Jaccard) with Level-1
// overlap (each paper's authors co-write a third paper), per [7].
func (s *TextScorer) AuthorSim(p, q corpus.PaperID) float64 {
	ap := s.analyzer.Features(p).Authors
	aq := s.analyzer.Features(q).Authors
	l0 := authorJaccard(ap, aq)
	l1 := s.levelOneOverlap(p, q, ap, aq)
	return s.weights.L0Weight*l0 + s.weights.L1Weight*l1
}

func authorJaccard(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	inter := 0
	for x := range small {
		if large[x] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// levelOneOverlap counts third papers co-authored by an author of p and an
// author of q, saturating at 3 such bridges.
func (s *TextScorer) levelOneOverlap(p, q corpus.PaperID, ap, aq map[string]bool) float64 {
	// Papers (other than p, q) with an author from p. The set is pooled —
	// this runs once per (paper, context) pair across thousands of contexts.
	bridge, _ := s.bridgePool.Get().(map[corpus.PaperID]bool)
	if bridge == nil {
		bridge = make(map[corpus.PaperID]bool)
	} else {
		clear(bridge)
	}
	defer s.bridgePool.Put(bridge)
	for a := range ap {
		for _, z := range s.coAuthor[a] {
			if z != p && z != q {
				bridge[z] = true
			}
		}
	}
	n := 0
	for z := range bridge {
		az := s.analyzer.Features(z).Authors
		for a := range aq {
			if az[a] {
				n++
				break
			}
		}
		if n >= 3 {
			break
		}
	}
	return float64(n) / 3
}

// ReferenceSim combines bibliographic coupling with co-citation, per [7]:
// SimReferences = BibWeight·Simbib + (1−BibWeight)·Simcoc.
func (s *TextScorer) ReferenceSim(p, q corpus.PaperID) float64 {
	bib := s.graph.BibliographicCoupling(int(p), int(q))
	coc := s.graph.CoCitation(int(p), int(q))
	return s.weights.BibWeight*bib + (1-s.weights.BibWeight)*coc
}
