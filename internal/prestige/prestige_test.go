package prestige

import (
	"testing"

	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
	"ctxsearch/internal/pattern"
)

type fixture struct {
	onto *ontology.Ontology
	c    *corpus.Corpus
	a    *corpus.Analyzer
	ix   *pattern.PosIndex
	text *contextset.ContextSet
	pat  *contextset.ContextSet
}

var cachedFixture *fixture

// buildFixture constructs (once) a generated corpus with both context paper
// sets; prestige tests share it because construction dominates runtime.
func buildFixture(t *testing.T) *fixture {
	t.Helper()
	if cachedFixture != nil {
		return cachedFixture
	}
	o, err := ontology.Generate(ontology.GenConfig{Seed: 5, NumTerms: 70, MaxDepth: 7, SecondParentProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(o, corpus.DefaultGenConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	ix := pattern.NewPosIndex(a)
	cfg := contextset.DefaultConfig()
	cachedFixture = &fixture{
		onto: o, c: c, a: a, ix: ix,
		text: contextset.BuildTextBased(a, o, cfg),
		pat:  contextset.BuildPatternBased(ix, a, o, cfg),
	}
	return cachedFixture
}

func inRange01(t *testing.T, name string, m map[corpus.PaperID]float64) {
	t.Helper()
	var max float64
	for id, v := range m {
		if v < 0 || v > 1.0000001 {
			t.Fatalf("%s: score of %d out of range: %v", name, id, v)
		}
		if v > max {
			max = v
		}
	}
	if len(m) > 0 && max < 0.999999 {
		t.Fatalf("%s: max score %v, want 1 after normalisation", name, max)
	}
}

func TestCitationScorer(t *testing.T) {
	f := buildFixture(t)
	s := NewCitationScorer(f.c, citegraph.PageRankOpts{})
	if s.Name() != "citation" {
		t.Fatal("name wrong")
	}
	scored := 0
	for _, ctx := range f.pat.ContextsWithMinSize(10) {
		m := s.ScoreContext(f.pat, ctx)
		inRange01(t, string(ctx), m)
		if len(m) != f.pat.Size(ctx) {
			t.Fatalf("context %s: scored %d of %d papers", ctx, len(m), f.pat.Size(ctx))
		}
		scored++
	}
	if scored == 0 {
		t.Fatal("no contexts scored")
	}
}

func TestCitationScorerUsesOnlyInContextEdges(t *testing.T) {
	// Hand-built: papers 0,1,2 in context; paper 3 outside cites 2 heavily.
	// In-context, paper 1 is cited by 0 and 2; paper 2 gets no in-context
	// citations, so 1 must outrank 2 regardless of 3's out-of-context vote.
	papers := []*corpus.Paper{
		{ID: 0, Title: "t zero", Abstract: "a", Body: "b", Authors: []string{"x"}, Topics: []ontology.TermID{"GO:2"}, Evidence: true},
		{ID: 1, Title: "t one", Abstract: "a", Body: "b", Authors: []string{"x"}, References: []corpus.PaperID{0}, Topics: []ontology.TermID{"GO:2"}},
		{ID: 2, Title: "t two", Abstract: "a", Body: "b", Authors: []string{"x"}, References: []corpus.PaperID{1, 0}, Topics: []ontology.TermID{"GO:2"}},
		{ID: 3, Title: "t three", Abstract: "a", Body: "b", Authors: []string{"x"}, References: []corpus.PaperID{2}},
	}
	// 0 ← 1, 0 ← 2, 1 ← 2 in-context; 2 ← 3 crosses the boundary.
	c, err := corpus.NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	o := ontology.New()
	_ = o.Add(ontology.Term{ID: "GO:1", Name: "root"})
	_ = o.Add(ontology.Term{ID: "GO:2", Name: "ctx", Parents: []ontology.TermID{"GO:1"}})
	if err := o.Build(); err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	cs := contextset.BuildTextBased(a, o, contextset.Config{TextThreshold: 2}) // only evidence
	// Manually verify context membership via evidence + threshold: context
	// has only paper 0. Extend membership by lowering threshold instead:
	cs = contextset.BuildTextBased(a, o, contextset.Config{TextThreshold: 0.01})
	if !cs.Contains("GO:2", 1) || !cs.Contains("GO:2", 2) {
		t.Skip("fixture too dissimilar for text assignment; skipping")
	}
	s := NewCitationScorer(c, citegraph.PageRankOpts{})
	m := s.ScoreContext(cs, "GO:2")
	if m[0] < m[2] == false {
		t.Fatalf("paper 0 (2 in-context citations) must outrank paper 2 (0 in-context): %v", m)
	}
	if cs.Contains("GO:2", 3) {
		t.Fatal("paper 3 unexpectedly in context")
	}
}

func TestTextScorer(t *testing.T) {
	f := buildFixture(t)
	s := NewTextScorer(f.a, DefaultTextWeights())
	if s.Name() != "text" {
		t.Fatal("name wrong")
	}
	scored := 0
	for _, ctx := range f.text.ContextsWithMinSize(10) {
		m := s.ScoreContext(f.text, ctx)
		if m == nil {
			t.Fatalf("text context %s must have a representative", ctx)
		}
		inRange01(t, string(ctx), m)
		rep, _ := f.text.Representative(ctx)
		if m[rep] != 1 {
			t.Fatalf("representative must score 1, got %v", m[rep])
		}
		scored++
	}
	if scored == 0 {
		t.Fatal("no contexts scored")
	}
	// Pattern-based contexts have no representative → nil.
	for _, ctx := range f.pat.Contexts() {
		if _, ok := f.pat.Representative(ctx); !ok {
			if m := s.ScoreContext(f.pat, ctx); m != nil {
				t.Fatal("context without representative must return nil")
			}
			break
		}
	}
}

func TestTextScorerSimilarityComponents(t *testing.T) {
	papers := []*corpus.Paper{
		{ID: 0, Title: "zinc finger binding", Abstract: "zinc finger study", Body: "binding assay", IndexTerms: []string{"zinc"}, Authors: []string{"ann chen", "bob lee"}, References: nil},
		{ID: 1, Title: "zinc finger binding", Abstract: "zinc finger study", Body: "binding assay", IndexTerms: []string{"zinc"}, Authors: []string{"ann chen", "bob lee"}, References: nil},
		{ID: 2, Title: "steel corrosion", Abstract: "alloys", Body: "metallurgy text", IndexTerms: []string{"steel"}, Authors: []string{"zed quo"}, References: nil},
		{ID: 3, Title: "third paper", Abstract: "misc", Body: "misc", Authors: []string{"ann chen", "carol wu"}},
		{ID: 4, Title: "fourth paper", Abstract: "misc", Body: "misc", Authors: []string{"carol wu", "dave xu"}},
	}
	c, err := corpus.NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.NewAnalyzer(c)
	s := NewTextScorer(a, DefaultTextWeights())
	// Identical twins must be more similar than unrelated papers.
	if s.Similarity(1, 0) <= s.Similarity(2, 0) {
		t.Fatalf("twin sim %v ≤ unrelated sim %v", s.Similarity(1, 0), s.Similarity(2, 0))
	}
	// Author overlap: papers 0 and 1 share all authors → L0 = 1.
	if got := authorJaccard(a.Features(0).Authors, a.Features(1).Authors); got != 1 {
		t.Fatalf("authorJaccard twins = %v", got)
	}
	// Level-1: paper 0 (ann chen) and paper 4 (carol wu) bridge via paper 3.
	l1 := s.levelOneOverlap(0, 4, a.Features(0).Authors, a.Features(4).Authors)
	if l1 <= 0 {
		t.Fatalf("level-1 overlap = %v, want > 0", l1)
	}
	// Self similarity of the representative.
	if s.Similarity(0, 0) != 1 {
		t.Fatal("self similarity must be 1")
	}
}

func TestReferenceSim(t *testing.T) {
	papers := []*corpus.Paper{
		{ID: 0, Title: "a", Abstract: "a", Body: "a", Authors: []string{"x"}},
		{ID: 1, Title: "b", Abstract: "b", Body: "b", Authors: []string{"x"}},
		{ID: 2, Title: "c", Abstract: "c", Body: "c", Authors: []string{"x"}, References: []corpus.PaperID{0, 1}},
		{ID: 3, Title: "d", Abstract: "d", Body: "d", Authors: []string{"x"}, References: []corpus.PaperID{0, 1}},
		{ID: 4, Title: "e", Abstract: "e", Body: "e", Authors: []string{"x"}, References: []corpus.PaperID{2, 3}},
	}
	c, err := corpus.NewCorpus(papers)
	if err != nil {
		t.Fatal(err)
	}
	s := NewTextScorer(corpus.NewAnalyzer(c), DefaultTextWeights())
	// 2 and 3 share both references (bib coupling 1) and are co-cited by 4
	// (co-citation 1) → SimReferences = 1.
	if got := s.ReferenceSim(2, 3); got < 0.999 {
		t.Fatalf("ReferenceSim(2,3) = %v", got)
	}
	if got := s.ReferenceSim(0, 4); got != 0 {
		t.Fatalf("ReferenceSim(0,4) = %v", got)
	}
}

func TestPatternScorer(t *testing.T) {
	f := buildFixture(t)
	s := NewPatternScorer(f.ix, f.onto, pattern.DefaultConfig(), pattern.DefaultMatchConfig())
	if s.Name() != "pattern" {
		t.Fatal("name wrong")
	}
	scored := 0
	for _, ctx := range f.pat.ContextsWithMinSize(10) {
		m := s.ScoreContext(f.pat, ctx)
		if len(m) != f.pat.Size(ctx) {
			t.Fatalf("context %s: scored %d of %d papers", ctx, len(m), f.pat.Size(ctx))
		}
		inRange01(t, string(ctx), m)
		scored++
		if scored >= 10 {
			break // plenty; pattern scoring is the slow path
		}
	}
	if scored == 0 {
		t.Fatal("no contexts scored")
	}
	// Pattern sets must be cached.
	if len(s.sets) == 0 {
		t.Fatal("pattern set cache empty")
	}
}

func TestScoreAllAppliesDecay(t *testing.T) {
	f := buildFixture(t)
	s := NewCitationScorer(f.c, citegraph.PageRankOpts{})
	scores := ScoreAll(s, f.pat, 0)
	for _, ctx := range f.pat.Contexts() {
		if _, inherited := f.pat.InheritedFrom(ctx); !inherited {
			continue
		}
		d := f.pat.Decay(ctx)
		if d >= 1 {
			continue
		}
		// Max score must be ≤ decay (scores were ≤ 1 before damping).
		var max float64
		for _, v := range scores[ctx] {
			if v > max {
				max = v
			}
		}
		if max > d+1e-9 {
			t.Fatalf("context %s: max score %v exceeds decay %v", ctx, max, d)
		}
	}
}

func TestScoresTopK(t *testing.T) {
	s := Scores{"GO:1": {0: 0.9, 1: 0.5, 2: 0.5, 3: 0.1}}
	top := s.TopK("GO:1", 2)
	// k=2 with a tie at the 2nd score: papers 1 and 2 both included.
	if len(top) != 3 {
		t.Fatalf("TopK with tie = %v", top)
	}
	if top[0] != 0 {
		t.Fatalf("top paper = %v", top[0])
	}
	if got := s.TopK("GO:1", 0); got != nil {
		t.Fatal("k=0 must return nil")
	}
	if got := s.TopK("GO:404", 3); got != nil {
		t.Fatal("unknown context must return nil")
	}
	if got := s.TopK("GO:1", 99); len(got) != 4 {
		t.Fatalf("oversized k = %v", got)
	}
}

func TestPropagateMax(t *testing.T) {
	// Hierarchy: GO:1 → GO:2 → GO:3 (chain), paper 7 in all three.
	o := ontology.New()
	_ = o.Add(ontology.Term{ID: "GO:1", Name: "a"})
	_ = o.Add(ontology.Term{ID: "GO:2", Name: "b", Parents: []ontology.TermID{"GO:1"}})
	_ = o.Add(ontology.Term{ID: "GO:3", Name: "c", Parents: []ontology.TermID{"GO:2"}})
	if err := o.Build(); err != nil {
		t.Fatal(err)
	}
	s := Scores{
		"GO:1": {7: 0.2, 8: 0.4},
		"GO:2": {7: 0.3},
		"GO:3": {7: 0.9, 9: 1.0},
	}
	PropagateMax(o, s)
	if s["GO:1"][7] != 0.9 || s["GO:2"][7] != 0.9 {
		t.Fatalf("max not propagated: %v", s)
	}
	// Paper 9 is not in GO:1's set — must not appear.
	if _, ok := s["GO:1"][9]; ok {
		t.Fatal("propagation added papers to ancestor")
	}
	// Paper 8 untouched.
	if s["GO:1"][8] != 0.4 {
		t.Fatal("unrelated score changed")
	}
	// Descendant scores unchanged.
	if s["GO:3"][7] != 0.9 {
		t.Fatal("descendant score changed")
	}
}

func TestPropagateMaxSkipsUnscoredMiddle(t *testing.T) {
	o := ontology.New()
	_ = o.Add(ontology.Term{ID: "GO:1", Name: "a"})
	_ = o.Add(ontology.Term{ID: "GO:2", Name: "b", Parents: []ontology.TermID{"GO:1"}})
	_ = o.Add(ontology.Term{ID: "GO:3", Name: "c", Parents: []ontology.TermID{"GO:2"}})
	if err := o.Build(); err != nil {
		t.Fatal(err)
	}
	// GO:2 not scored (excluded as too small): GO:3's score must still
	// reach GO:1.
	s := Scores{
		"GO:1": {7: 0.1},
		"GO:3": {7: 0.8},
	}
	PropagateMax(o, s)
	if s["GO:1"][7] != 0.8 {
		t.Fatalf("score must skip unscored middle context: %v", s)
	}
}

func TestCrossContextExtension(t *testing.T) {
	f := buildFixture(t)
	base := NewCitationScorer(f.c, citegraph.PageRankOpts{})
	ext := NewCitationScorer(f.c, citegraph.PageRankOpts{})
	ext.CrossContextWeight = CrossContextWeights{Enabled: true, Related: 0.6, Unrelated: 0.1}
	ctxs := f.pat.ContextsWithMinSize(10)
	if len(ctxs) == 0 {
		t.Skip("no large contexts")
	}
	// The extension must change at least one paper's score in at least one
	// context (boundary citations exist in a generated corpus; a single
	// context can be boundary-free).
	changed := false
	for _, ctx := range ctxs {
		mb := base.ScoreContext(f.pat, ctx)
		me := ext.ScoreContext(f.pat, ctx)
		inRange01(t, "ext", me)
		for id, v := range me {
			if v != mb[id] {
				changed = true
				break
			}
		}
		if changed {
			break
		}
	}
	if !changed {
		t.Fatal("cross-context extension had no effect on any context")
	}
}

func TestContextSparseness(t *testing.T) {
	f := buildFixture(t)
	s := NewCitationScorer(f.c, citegraph.PageRankOpts{})
	for _, ctx := range f.pat.ContextsWithMinSize(10)[:1] {
		sp := s.ContextSparseness(f.pat, ctx)
		if sp < 0 || sp > 1 {
			t.Fatalf("sparseness out of range: %v", sp)
		}
	}
}

func TestScoresAccessors(t *testing.T) {
	s := Scores{"GO:2": {1: 0.5}, "GO:1": {2: 0.25}}
	if got := s.Get("GO:2", 1); got != 0.5 {
		t.Fatalf("Get = %v", got)
	}
	if got := s.Get("GO:404", 1); got != 0 {
		t.Fatalf("missing Get = %v", got)
	}
	ctxs := s.Contexts()
	if len(ctxs) != 2 || ctxs[0] != "GO:1" {
		t.Fatalf("Contexts = %v", ctxs)
	}
	if got := s.Values("GO:1"); len(got) != 1 || got[0] != 0.25 {
		t.Fatalf("Values = %v", got)
	}
}
