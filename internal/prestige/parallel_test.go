package prestige

import (
	"reflect"
	"testing"
)

func TestScoreAllParallelMatchesSerial(t *testing.T) {
	f := buildFixture(t)
	for _, sc := range []Scorer{
		NewCitationScorer(f.c, citegraphOpts()),
		NewTextScorer(f.a, DefaultTextWeights()),
	} {
		serial := ScoreAll(sc, f.pat, 10)
		parallel := ScoreAllParallel(sc, f.pat, 10, 4)
		if len(serial) != len(parallel) {
			t.Fatalf("%s: context counts differ: %d vs %d", sc.Name(), len(serial), len(parallel))
		}
		for ctx, sm := range serial {
			pm, ok := parallel[ctx]
			if !ok {
				t.Fatalf("%s: context %s missing in parallel result", sc.Name(), ctx)
			}
			if !reflect.DeepEqual(sm, pm) {
				t.Fatalf("%s: context %s scores differ", sc.Name(), ctx)
			}
		}
	}
}

func TestScoreAllParallelPatternScorer(t *testing.T) {
	// The pattern scorer's lazy cache is exercised concurrently here; run
	// with -race to validate the locking.
	f := buildFixture(t)
	sc := NewPatternScorer(f.ix, f.onto, patternDefaultCfg(), patternDefaultMatch())
	serial := ScoreAll(NewPatternScorer(f.ix, f.onto, patternDefaultCfg(), patternDefaultMatch()), f.pat, 20)
	parallel := ScoreAllParallel(sc, f.pat, 20, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("context counts differ: %d vs %d", len(serial), len(parallel))
	}
	for ctx, sm := range serial {
		if !reflect.DeepEqual(sm, parallel[ctx]) {
			t.Fatalf("context %s scores differ", ctx)
		}
	}
}

func TestScoreAllParallelSingleWorker(t *testing.T) {
	f := buildFixture(t)
	sc := NewCitationScorer(f.c, citegraphOpts())
	serial := ScoreAll(sc, f.pat, 10)
	one := ScoreAllParallel(sc, f.pat, 10, 1)
	if !reflect.DeepEqual(serial, one) {
		t.Fatal("single-worker parallel differs from serial")
	}
}
