package prestige

import (
	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/contextset"
	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// HITSScorer is the alternative citation-based prestige function the
// paper's §3.1 discusses: Kleinberg's authority scores over the per-context
// induced citation subgraph. The paper chose PageRank after [11] found the
// two highly correlated; this scorer exists to reproduce that comparison
// (ablation A2) and as a drop-in alternative.
type HITSScorer struct {
	graph *citegraph.Graph
	// UseHubs scores papers by hub value instead of authority (a survey
	// paper citing many context authorities is a good hub).
	UseHubs bool
}

// NewHITSScorer builds the scorer over the corpus-wide citation graph.
func NewHITSScorer(c *corpus.Corpus) *HITSScorer {
	return &HITSScorer{graph: GraphFromCorpus(c)}
}

// Name implements Scorer.
func (s *HITSScorer) Name() string {
	if s.UseHubs {
		return "hits-hub"
	}
	return "hits-authority"
}

// ScoreContext implements Scorer: HITS over the induced subgraph,
// max-normalised.
func (s *HITSScorer) ScoreContext(cs *contextset.ContextSet, ctx ontology.TermID) map[corpus.PaperID]float64 {
	papers := cs.Papers(ctx)
	if len(papers) == 0 {
		return map[corpus.PaperID]float64{}
	}
	nodes := make([]int, len(papers))
	for i, p := range papers {
		nodes[i] = int(p)
	}
	sub, mapping := s.graph.Subgraph(nodes)
	auth, hub := citegraph.HITS(sub, 0, 0)
	vals := auth
	if s.UseHubs {
		vals = hub
	}
	out := make(map[corpus.PaperID]float64, len(mapping))
	for i, orig := range mapping {
		out[corpus.PaperID(orig)] = vals[i]
	}
	maxNormalizeMap(out)
	return out
}

// TopicSensitiveScorer implements the §6 related-work comparison point:
// Haveliwala's Topic-Sensitive PageRank adapted to contexts. Instead of
// restricting the graph to the context (the paper's method), it runs
// PageRank on the WHOLE citation graph with the teleport biased to the
// context's papers — the paper's citation function "is similar to the
// Topic Sensitive PageRank, but we consider more specific contexts".
// Having both lets the experiments compare graph-restriction against
// teleport-biasing directly.
type TopicSensitiveScorer struct {
	graph *citegraph.Graph
	// D is the teleport probability (default 0.15).
	D float64
	// MaxIter and Tol bound the power iteration.
	MaxIter int
	Tol     float64
}

// NewTopicSensitiveScorer builds the scorer.
func NewTopicSensitiveScorer(c *corpus.Corpus) *TopicSensitiveScorer {
	return &TopicSensitiveScorer{graph: GraphFromCorpus(c), D: 0.15, MaxIter: 60, Tol: 1e-8}
}

// Name implements Scorer.
func (s *TopicSensitiveScorer) Name() string { return "topic-sensitive" }

// ScoreContext implements Scorer: full-graph PageRank with teleport mass
// confined to the context's papers, then read off and max-normalised on the
// context members.
func (s *TopicSensitiveScorer) ScoreContext(cs *contextset.ContextSet, ctx ontology.TermID) map[corpus.PaperID]float64 {
	members := cs.Papers(ctx)
	if len(members) == 0 {
		return map[corpus.PaperID]float64{}
	}
	n := s.graph.Len()
	inCtx := make([]bool, n)
	for _, p := range members {
		inCtx[p] = true
	}
	p := make([]float64, n)
	next := make([]float64, n)
	for _, m := range members {
		p[m] = 1 / float64(len(members))
	}
	link := 1 - s.D
	teleport := s.D / float64(len(members))
	for iter := 0; iter < s.MaxIter; iter++ {
		var dangling float64
		for i := 0; i < n; i++ {
			if len(s.graph.Out(i)) == 0 {
				dangling += p[i]
			}
		}
		// Dangling mass also teleports to the topic set (standard TSPR).
		base := link * dangling / float64(len(members))
		for i := range next {
			next[i] = 0
		}
		for i := 0; i < n; i++ {
			out := s.graph.Out(i)
			if len(out) == 0 {
				continue
			}
			share := link * p[i] / float64(len(out))
			for _, j := range out {
				next[j] += share
			}
		}
		for _, m := range members {
			next[m] += teleport + base
		}
		var delta float64
		for i := range p {
			d := next[i] - p[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		p, next = next, p
		if delta < s.Tol {
			break
		}
	}
	out := make(map[corpus.PaperID]float64, len(members))
	for _, m := range members {
		out[m] = p[m]
	}
	maxNormalizeMap(out)
	return out
}
