package prestige

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"sync"
	"testing"

	"ctxsearch/internal/corpus"
	"ctxsearch/internal/ontology"
)

// TestFreezeMatchesMapAllScorers is the central matrix-equality guarantee:
// for every score function and every scored context, the frozen CSR matrix
// returns exactly (==, not approximately) the score the map form holds, and
// 0 for absent papers and unscored contexts — so swapping the hot path from
// map lookups to matrix runs cannot change a single ranked result.
func TestFreezeMatchesMapAllScorers(t *testing.T) {
	f := buildFixture(t)
	scorers := []Scorer{
		NewCitationScorer(f.c, citegraphOpts()),
		NewTextScorer(f.a, DefaultTextWeights()),
		NewPatternScorer(f.ix, f.onto, patternDefaultCfg(), patternDefaultMatch()),
	}
	for _, sc := range scorers {
		scores := ScoreAll(sc, f.pat, 0)
		m := scores.Freeze()
		if m.NumContexts() != len(scores) {
			t.Fatalf("%s: %d contexts frozen, map has %d", sc.Name(), m.NumContexts(), len(scores))
		}
		nnz := 0
		for ctx, row := range scores {
			run := m.Run(ctx)
			if len(run.Docs) != len(row) {
				t.Fatalf("%s: context %s run has %d docs, map has %d", sc.Name(), ctx, len(run.Docs), len(row))
			}
			nnz += len(row)
			for p, want := range row {
				if got := m.Get(ctx, p); got != want {
					t.Fatalf("%s: %s/%d: matrix %v != map %v", sc.Name(), ctx, p, got, want)
				}
			}
			// Papers of the context absent from the map must read as 0 from
			// both forms.
			for _, p := range f.pat.Papers(ctx) {
				if _, ok := row[p]; !ok {
					if got := run.Get(p); got != 0 {
						t.Fatalf("%s: %s/%d: absent paper scored %v", sc.Name(), ctx, p, got)
					}
				}
			}
		}
		if m.NNZ() != nnz {
			t.Fatalf("%s: NNZ %d != %d map entries", sc.Name(), m.NNZ(), nnz)
		}
		if got := m.Get(ontology.TermID("GO:nosuch"), 0); got != 0 {
			t.Fatalf("%s: unscored context returned %v", sc.Name(), got)
		}
	}
}

func TestFreezeThawRoundTrip(t *testing.T) {
	f := buildFixture(t)
	scores := ScoreAll(NewTextScorer(f.a, DefaultTextWeights()), f.text, 0)
	if got := scores.Freeze().Thaw(); !reflect.DeepEqual(scores, got) {
		t.Fatal("Thaw(Freeze(scores)) differs from scores")
	}
}

func TestMatrixContextsSortedAndOrdinals(t *testing.T) {
	f := buildFixture(t)
	scores := ScoreAll(NewTextScorer(f.a, DefaultTextWeights()), f.text, 0)
	m := scores.Freeze()
	ctxs := m.Contexts()
	for i, ctx := range ctxs {
		if i > 0 && ctxs[i-1] >= ctx {
			t.Fatalf("contexts not strictly ascending at %d: %s >= %s", i, ctxs[i-1], ctx)
		}
		ord, ok := m.Ordinal(ctx)
		if !ok || ord != i {
			t.Fatalf("ordinal of %s = %d,%v, want %d", ctx, ord, ok, i)
		}
		run := m.RunAt(i)
		for j := 1; j < len(run.Docs); j++ {
			if run.Docs[j-1] >= run.Docs[j] {
				t.Fatalf("%s: run docs not strictly ascending at %d", ctx, j)
			}
		}
	}
	if _, ok := m.Ordinal("GO:nosuch"); ok {
		t.Fatal("unscored context has an ordinal")
	}
}

func TestMatrixGobRoundTrip(t *testing.T) {
	f := buildFixture(t)
	for name, scores := range map[string]Scores{
		"text":  ScoreAll(NewTextScorer(f.a, DefaultTextWeights()), f.text, 0),
		"empty": {},
		"tiny":  {"GO:t": {corpus.PaperID(3): 0.5, corpus.PaperID(9): 1}},
	} {
		m := scores.Freeze()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(m); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		var got Matrix
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(scores, got.Thaw()) {
			t.Fatalf("%s: matrix differs after gob round trip", name)
		}
	}
}

// TestMatrixRowMax pins the per-run maxima the search layer's top-k
// pruning bound reads: Freeze computes them, the gob wire preserves them,
// and a legacy (v2) stream lacking the field gets them recomputed.
func TestMatrixRowMax(t *testing.T) {
	f := buildFixture(t)
	scores := ScoreAll(NewTextScorer(f.a, DefaultTextWeights()), f.text, 0)
	m := scores.Freeze()
	check := func(stage string, m *Matrix) {
		t.Helper()
		for i, ctx := range m.ctxs {
			run := m.RunAt(i)
			var want float64
			for _, v := range run.Vals {
				if v > want {
					want = v
				}
			}
			if run.Max != want {
				t.Fatalf("%s: row max of %s = %v, want %v", stage, ctx, run.Max, want)
			}
		}
	}
	check("freeze", m)

	// Full wire round trip keeps the maxima.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	var got Matrix
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatal(err)
	}
	check("round trip", &got)

	// A v2-era stream has no RowMax field: decode must recompute it. Gob
	// matches fields by name, so encoding the wire shape minus RowMax
	// reproduces exactly what a v2 writer emitted.
	type wireV2 struct {
		Ctxs    []ontology.TermID
		Offsets []int32
		Docs    []int32
		Vals    []float64
	}
	docs := make([]int32, len(m.docs))
	for i := 0; i < len(m.ctxs); i++ {
		prev := int32(0)
		for k := m.offsets[i]; k < m.offsets[i+1]; k++ {
			docs[k] = m.docs[k] - prev
			prev = m.docs[k]
		}
	}
	var v2buf bytes.Buffer
	if err := gob.NewEncoder(&v2buf).Encode(wireV2{Ctxs: m.ctxs, Offsets: m.offsets, Docs: docs, Vals: m.vals}); err != nil {
		t.Fatal(err)
	}
	var fromV2 Matrix
	if err := fromV2.GobDecode(v2buf.Bytes()); err != nil {
		t.Fatalf("v2-shaped stream must decode: %v", err)
	}
	check("v2 fallback", &fromV2)
	if !reflect.DeepEqual(scores, fromV2.Thaw()) {
		t.Fatal("v2-shaped stream lost scores")
	}
}

func TestMatrixGobRejectsCorrupt(t *testing.T) {
	var m Matrix
	if err := m.GobDecode([]byte("garbage")); err == nil {
		t.Fatal("garbage must fail to decode")
	}
}

// TestScoreAllParallelArenaStress runs several full parallel scoring passes
// concurrently over one scorer, so its pooled citegraph arenas are handed
// between many workers at once — the race detector's target (make race
// includes this package) — while every pass must still equal the serial
// result exactly.
func TestScoreAllParallelArenaStress(t *testing.T) {
	f := buildFixture(t)
	sc := NewCitationScorer(f.c, citegraphOpts())
	want := ScoreAll(sc, f.pat, 0)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := ScoreAllParallel(sc, f.pat, 0, 8); !reflect.DeepEqual(want, got) {
				t.Error("concurrent ScoreAllParallel diverged from serial")
			}
		}()
	}
	wg.Wait()
}

// TestMatrixSlice pins the sharding contract of the row-sliced matrix: a
// slice keeps every context row (so shard-side context selection sees the
// identical context list), holds exactly the cells of papers in [lo, hi)
// with unchanged values, recomputes row maxima over the restricted rows,
// and a disjoint cover of slices partitions the full matrix's cells.
func TestMatrixSlice(t *testing.T) {
	f := buildFixture(t)
	scores := ScoreAll(NewTextScorer(f.a, DefaultTextWeights()), f.text, 0)
	m := scores.Freeze()
	n := f.c.Len()

	for _, cuts := range [][]int{{0, n}, {0, n / 2, n}, {0, n / 3, 2 * n / 3, n}, {0, 1, n - 1, n}} {
		nnz := 0
		for pi := 0; pi+1 < len(cuts); pi++ {
			lo, hi := cuts[pi], cuts[pi+1]
			s := m.Slice(lo, hi)
			if !reflect.DeepEqual(s.ctxs, m.ctxs) {
				t.Fatalf("cuts %v [%d,%d): sliced context list differs", cuts, lo, hi)
			}
			nnz += s.NNZ()
			for i, ctx := range m.ctxs {
				fullRun := m.RunAt(i)
				run := s.RunAt(i)
				var wantMax float64
				k := 0
				for j, doc := range fullRun.Docs {
					if int(doc) < lo || int(doc) >= hi {
						continue
					}
					if k >= len(run.Docs) || run.Docs[k] != doc || run.Vals[k] != fullRun.Vals[j] {
						t.Fatalf("cuts %v [%d,%d) ctx %s: cell for paper %d missing or wrong", cuts, lo, hi, ctx, doc)
					}
					if fullRun.Vals[j] > wantMax {
						wantMax = fullRun.Vals[j]
					}
					k++
				}
				if k != len(run.Docs) {
					t.Fatalf("cuts %v [%d,%d) ctx %s: %d extra cells", cuts, lo, hi, ctx, len(run.Docs)-k)
				}
				if run.Max != wantMax {
					t.Fatalf("cuts %v [%d,%d) ctx %s: row max %v, want %v", cuts, lo, hi, ctx, run.Max, wantMax)
				}
			}
		}
		if nnz != m.NNZ() {
			t.Fatalf("cuts %v: slices hold %d cells, full matrix %d", cuts, nnz, m.NNZ())
		}
	}

	// Degenerate empty slice: all rows present, all empty.
	empty := m.Slice(5, 5)
	if empty.NNZ() != 0 || empty.NumContexts() != m.NumContexts() {
		t.Fatalf("empty slice: NNZ=%d contexts=%d, want 0 and %d", empty.NNZ(), empty.NumContexts(), m.NumContexts())
	}
}
