package prestige

import (
	"fmt"

	"ctxsearch/internal/ontology"
)

// FromCSR constructs a Matrix directly over caller-provided CSR arrays —
// the zero-copy open path of the v4 state format, where the slices alias a
// memory-mapped file. The matrix borrows them verbatim: it never mutates,
// appends to, or retains a grown copy of any argument, so mapping-backed
// (read-only) memory is safe. The caller must keep the backing storage
// alive for the lifetime of the matrix.
//
// Invariants checked: ctxs strictly ascending (the Freeze order), offsets
// monotone non-decreasing with len(ctxs)+1 entries starting at 0 and ending
// at len(docs), docs/vals/rowMax lengths consistent. Checks are O(rows),
// never O(nnz): per-element content (e.g. ascending doc IDs within a run)
// is the writer's contract, guarded on disk by the section CRCs — scanning
// it here would fault in every page and defeat the O(1) open. Row maxima
// are trusted as given (the v4 writer persists the values Freeze computes).
func FromCSR(ctxs []ontology.TermID, offsets, docs []int32, vals, rowMax []float64) (*Matrix, error) {
	if len(offsets) != len(ctxs)+1 {
		return nil, fmt.Errorf("prestige: %d contexts need %d offsets, have %d", len(ctxs), len(ctxs)+1, len(offsets))
	}
	if len(docs) != len(vals) {
		return nil, fmt.Errorf("prestige: %d docs vs %d vals", len(docs), len(vals))
	}
	if len(rowMax) != len(ctxs) {
		return nil, fmt.Errorf("prestige: %d contexts vs %d row maxima", len(ctxs), len(rowMax))
	}
	if len(ctxs) > 0 && (offsets[0] != 0 || int(offsets[len(ctxs)]) != len(docs)) {
		return nil, fmt.Errorf("prestige: offsets span [%d, %d), want [0, %d)", offsets[0], offsets[len(ctxs)], len(docs))
	}
	if len(ctxs) == 0 && len(docs) != 0 {
		return nil, fmt.Errorf("prestige: %d docs with no contexts", len(docs))
	}
	m := &Matrix{
		ctxs:    ctxs,
		ord:     make(map[ontology.TermID]int32, len(ctxs)),
		offsets: offsets,
		docs:    docs,
		vals:    vals,
		rowMax:  rowMax,
	}
	for i, ctx := range ctxs {
		if i > 0 && ctxs[i-1] >= ctx {
			return nil, fmt.Errorf("prestige: contexts not strictly ascending at row %d (%q)", i, ctx)
		}
		if offsets[i] > offsets[i+1] {
			return nil, fmt.Errorf("prestige: offsets decrease at row %d (%q)", i, ctx)
		}
		m.ord[ctx] = int32(i)
	}
	return m, nil
}

// CSR exposes the matrix's raw arrays for serialization. The slices alias
// the matrix — read-only.
func (m *Matrix) CSR() (ctxs []ontology.TermID, offsets, docs []int32, vals, rowMax []float64) {
	return m.ctxs, m.offsets, m.docs, m.vals, m.rowMax
}
