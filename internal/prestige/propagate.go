package prestige

import (
	"sort"

	"ctxsearch/internal/ontology"
)

// PropagateMax applies the hierarchy rule of §3: a paper residing in
// context ci and in descendants ck…cn of ci takes score max(si, sk, …, sn)
// in ci — a high score in a more specific descendant means high relevance
// to the ancestor. The input is modified in place and returned.
//
// Terms are processed deepest-first, so scores flow transitively through
// intermediate contexts that contain the paper. A descendant's score only
// reaches an ancestor for papers the ancestor actually contains.
func PropagateMax(onto *ontology.Ontology, s Scores) Scores {
	terms := make([]ontology.TermID, 0, len(s))
	for t := range s {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		li, lj := onto.Level(terms[i]), onto.Level(terms[j])
		if li != lj {
			return li > lj // deepest first
		}
		return terms[i] < terms[j]
	})
	for _, t := range terms {
		child := s[t]
		// Walk all proper ancestors; scored ancestors containing the paper
		// take the max. (Direct parents would miss scored grandparents when
		// the parent itself is unscored, e.g. excluded as too small.)
		for _, anc := range onto.Ancestors(t) {
			am, ok := s[anc]
			if !ok {
				continue
			}
			for p, v := range child {
				if cur, in := am[p]; in && v > cur {
					am[p] = v
				}
			}
		}
	}
	return s
}
