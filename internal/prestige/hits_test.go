package prestige

import (
	"testing"

	"ctxsearch/internal/citegraph"
	"ctxsearch/internal/pattern"
	"ctxsearch/internal/stats"
)

func TestHITSScorer(t *testing.T) {
	f := buildFixture(t)
	s := NewHITSScorer(f.c)
	if s.Name() != "hits-authority" {
		t.Fatal("name wrong")
	}
	hub := NewHITSScorer(f.c)
	hub.UseHubs = true
	if hub.Name() != "hits-hub" {
		t.Fatal("hub name wrong")
	}
	scored := 0
	for _, ctx := range f.pat.ContextsWithMinSize(10) {
		m := s.ScoreContext(f.pat, ctx)
		inRange01(t, string(ctx), m)
		if len(m) != f.pat.Size(ctx) {
			t.Fatalf("context %s: scored %d of %d", ctx, len(m), f.pat.Size(ctx))
		}
		hm := hub.ScoreContext(f.pat, ctx)
		inRange01(t, string(ctx)+"/hub", hm)
		scored++
		if scored >= 5 {
			break
		}
	}
	if scored == 0 {
		t.Fatal("no contexts scored")
	}
}

func TestHITSCorrelatesWithPageRank(t *testing.T) {
	// The premise of ablation A2 ([11]): authority and PageRank correlate
	// on citation graphs. Verify on the corpus-wide graph.
	f := buildFixture(t)
	cit := NewCitationScorer(f.c, citegraphOpts())
	hits := NewHITSScorer(f.c)
	var prs, auths []float64
	for _, ctx := range f.pat.ContextsWithMinSize(20) {
		pm := cit.ScoreContext(f.pat, ctx)
		hm := hits.ScoreContext(f.pat, ctx)
		for id, v := range pm {
			prs = append(prs, v)
			auths = append(auths, hm[id])
		}
		break
	}
	if len(prs) < 10 {
		t.Skip("context too small")
	}
	if rho := stats.Spearman(prs, auths); rho < 0.2 {
		t.Fatalf("PageRank/HITS Spearman = %v, expected positive correlation", rho)
	}
}

func TestTopicSensitiveScorer(t *testing.T) {
	f := buildFixture(t)
	s := NewTopicSensitiveScorer(f.c)
	if s.Name() != "topic-sensitive" {
		t.Fatal("name wrong")
	}
	scored := 0
	for _, ctx := range f.pat.ContextsWithMinSize(10) {
		m := s.ScoreContext(f.pat, ctx)
		if len(m) != f.pat.Size(ctx) {
			t.Fatalf("context %s: scored %d of %d", ctx, len(m), f.pat.Size(ctx))
		}
		inRange01(t, string(ctx), m)
		scored++
		if scored >= 3 {
			break // full-graph iteration per context is the slow path
		}
	}
	if scored == 0 {
		t.Fatal("no contexts scored")
	}
}

func TestTopicSensitiveDiffersFromRestricted(t *testing.T) {
	// TSPR sees cross-context citations the restricted PageRank omits, so
	// on a generated corpus the two rankings must differ somewhere.
	f := buildFixture(t)
	restricted := NewCitationScorer(f.c, citegraphOpts())
	tspr := NewTopicSensitiveScorer(f.c)
	for _, ctx := range f.pat.ContextsWithMinSize(15) {
		a := restricted.ScoreContext(f.pat, ctx)
		b := tspr.ScoreContext(f.pat, ctx)
		for id, v := range a {
			if diff := v - b[id]; diff > 1e-6 || diff < -1e-6 {
				return // found a difference — good
			}
		}
	}
	t.Fatal("TSPR identical to restricted PageRank on every context")
}

func TestScorerInterfaceCompliance(t *testing.T) {
	// All five scorers satisfy the Scorer interface.
	f := buildFixture(t)
	for _, sc := range []Scorer{
		NewCitationScorer(f.c, citegraphOpts()),
		NewTextScorer(f.a, DefaultTextWeights()),
		NewHITSScorer(f.c),
		NewTopicSensitiveScorer(f.c),
	} {
		if sc.Name() == "" {
			t.Fatal("empty scorer name")
		}
	}
}

// citegraphOpts returns default PageRank options for tests.
func citegraphOpts() citegraph.PageRankOpts { return citegraph.PageRankOpts{} }

func patternDefaultCfg() pattern.Config        { return pattern.DefaultConfig() }
func patternDefaultMatch() pattern.MatchConfig { return pattern.DefaultMatchConfig() }
